package topk

// Tests of the v1 Store contract shared by both backends: the
// sentinel-error paths of Insert/ApplyBatch and the differential
// guarantee QueryBatch ≡ k sequential TopK calls (byte-identical,
// boundary-straddling batches included, raced by concurrent writers
// under -race).

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

// storeBackends builds one instance of every Store implementation
// over the same point set.
func storeBackends(t *testing.T, pts []Result) map[string]Store {
	t.Helper()
	return map[string]Store{
		"index":   mustLoad(t, Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}, pts),
		"sharded": mustLoadSharded(t, testShardedConfig(4), pts),
	}
}

// TestStoreErrorPaths: every sentinel error, on every backend, and
// the guarantee that a rejected op mutates nothing.
func TestStoreErrorPaths(t *testing.T) {
	gen := workload.NewGen(61)
	pts := toResults(gen.Uniform(2000, 1e6))
	for name, st := range storeBackends(t, pts) {
		t.Run(name, func(t *testing.T) {
			n := st.Len()
			live := st.TopK(math.Inf(-1), math.Inf(1), 1)[0]

			for _, c := range []struct {
				name       string
				pos, score float64
				want       error
			}{
				{"nan position", math.NaN(), 5e9, ErrInvalidPoint},
				{"inf position", math.Inf(1), 5e9, ErrInvalidPoint},
				{"nan score", 5e9, math.NaN(), ErrInvalidPoint},
				{"-inf score", 5e9, math.Inf(-1), ErrInvalidPoint},
				{"occupied position", live.X, 5e9, ErrDuplicatePosition},
				{"occupied position, same score", live.X, live.Score, ErrDuplicatePosition},
				{"live score elsewhere", 5e9, live.Score, ErrDuplicateScore},
			} {
				if err := st.Insert(c.pos, c.score); !errors.Is(err, c.want) {
					t.Errorf("%s: Insert = %v, want %v", c.name, err, c.want)
				}
			}
			if st.Len() != n {
				t.Fatalf("rejected inserts changed Len: %d -> %d", n, st.Len())
			}

			// The same sentinels flow through ApplyBatch, plus
			// ErrNotFound for absent deletes; valid ops in the same
			// batch still apply.
			res := st.ApplyBatch([]BatchOp{
				{X: 5e9, Score: math.NaN()},
				{X: live.X, Score: 6e9},
				{X: 6e9, Score: live.Score},
				{Delete: true, X: -5e9, Score: 1},
				{Delete: true, X: math.NaN(), Score: 1}, // non-finite delete: not found, same as Index
				{X: 7e9, Score: 7e9},
				{Delete: true, X: 7e9, Score: 7e9},
			})
			want := []error{ErrInvalidPoint, ErrDuplicatePosition, ErrDuplicateScore, ErrNotFound, ErrNotFound, nil, nil}
			for i, err := range res {
				if !errors.Is(err, want[i]) {
					t.Errorf("batch op %d: %v, want %v", i, err, want[i])
				}
			}
			if st.Len() != n {
				t.Fatalf("batch left Len %d, want %d", st.Len(), n)
			}

			// After every rejection the store still serves correctly.
			if got := st.TopK(math.Inf(-1), math.Inf(1), 1)[0]; got != live {
				t.Fatalf("top after rejections = %v, want %v", got, live)
			}
		})
	}
}

// TestShardedCrossShardDuplicateScore pins the fleet-wide score
// guard: the duplicate lives on a different shard than the insert
// target, where per-shard structures alone cannot see it.
func TestShardedCrossShardDuplicateScore(t *testing.T) {
	gen := workload.NewGen(62)
	pts := toResults(gen.Uniform(4000, 1e6))
	idx := mustLoadSharded(t, testShardedConfig(4), pts)
	cuts := idx.Boundaries()
	if len(cuts) != 3 {
		t.Fatalf("boundaries: %v", cuts)
	}
	// A score living in the first shard, inserted at a position in the
	// last shard.
	victim := idx.TopK(math.Inf(-1), cuts[0]-1e-9, 1)[0]
	target := (cuts[len(cuts)-1] + 1e6) / 2
	if err := idx.Insert(target, victim.Score); !errors.Is(err, ErrDuplicateScore) {
		t.Fatalf("cross-shard duplicate score: %v, want ErrDuplicateScore", err)
	}
	// Delete the victim and the score becomes free again, anywhere.
	if !idx.Delete(victim.X, victim.Score) {
		t.Fatal("delete victim")
	}
	mustInsert(t, idx, target, victim.Score)
	if got := idx.TopK(target, target, 1); len(got) != 1 || got[0].Score != victim.Score {
		t.Fatalf("reinserted score not served: %v", got)
	}
}

// TestQueryBatchDifferential: QueryBatch must equal k sequential TopK
// calls byte-for-byte on both backends, including batches whose
// queries straddle shard boundaries and degenerate queries.
func TestQueryBatchDifferential(t *testing.T) {
	gen := workload.NewGen(63)
	pts := toResults(gen.Clustered(5000, 4, 1e6))
	backends := storeBackends(t, pts)

	qs := workloadQueries(gen, backends["sharded"].(*Sharded))
	for name, st := range backends {
		t.Run(name, func(t *testing.T) {
			got := st.QueryBatch(qs)
			if len(got) != len(qs) {
				t.Fatalf("got %d answers for %d queries", len(got), len(qs))
			}
			for i, q := range qs {
				want := st.TopK(q.X1, q.X2, q.K)
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("query %d (%+v):\n got %v\nwant %v", i, q, got[i], want)
				}
			}
		})
	}

	// And across backends: batched answers agree between Index and
	// Sharded.
	a := backends["index"].QueryBatch(qs)
	b := backends["sharded"].QueryBatch(qs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("QueryBatch diverged between backends")
	}

	// Empty and nil batches.
	for name, st := range backends {
		if got := st.QueryBatch(nil); got != nil {
			t.Fatalf("%s: QueryBatch(nil) = %v", name, got)
		}
	}
}

// workloadQueries builds a batch mixing random queries, queries
// pinned to every shard boundary, degenerate and NaN queries.
func workloadQueries(gen *workload.Gen, sharded *Sharded) []Query {
	var qs []Query
	for _, q := range gen.Queries(40, 1e6, 0.001, 0.9, 200) {
		qs = append(qs, Query{X1: q.X1, X2: q.X2, K: q.K})
	}
	for _, cut := range sharded.Boundaries() {
		qs = append(qs,
			Query{X1: cut - 1e4, X2: cut + 1e4, K: 17},
			Query{X1: cut, X2: cut + 1e4, K: 5},
			Query{X1: cut - 1e4, X2: cut, K: 5},
		)
	}
	qs = append(qs,
		Query{X1: math.Inf(-1), X2: math.Inf(1), K: 1 << 20}, // all shards, huge k
		Query{X1: 10, X2: 5, K: 3},                           // inverted
		Query{X1: 0, X2: 1e6, K: 0},                          // k = 0
		Query{X1: math.NaN(), X2: 1e6, K: 3},                 // NaN bound
		Query{X1: 2e6, X2: 3e6, K: 3},                        // empty range
	)
	return qs
}

// TestQueryBatchConcurrent is the -race workhorse for the batched
// read path: QueryBatch storms run against concurrent ApplyBatch
// writers and a rebalancer; every answer must be internally ordered
// and every point must belong to its query range.
func TestQueryBatchConcurrent(t *testing.T) {
	idx := mustLoadSharded(t, testShardedConfig(8), toResults(workload.NewGen(64).Uniform(3000, 1e6)))
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGen(int64(100 + w))
			for round := 0; round < 5; round++ {
				ops := make([]BatchOp, 0, 40)
				for _, p := range gen.Uniform(40, 1e5) {
					// Disjoint per-writer bands, outside the preload domain.
					ops = append(ops, BatchOp{X: 2e6 + float64(w)*1e6 + p.X, Score: 10 + float64(w) + p.Score/2})
				}
				for i, err := range idx.ApplyBatch(ops) {
					if err != nil {
						t.Errorf("writer %d op %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := workload.NewGen(int64(200 + g))
			for i := 0; i < 20; i++ {
				var qs []Query
				for _, q := range gen.Queries(8, 6e6, 0.01, 0.5, 30) {
					qs = append(qs, Query{X1: q.X1, X2: q.X2, K: q.K})
				}
				for qi, res := range idx.QueryBatch(qs) {
					for j, p := range res {
						if p.X < qs[qi].X1 || p.X > qs[qi].X2 {
							t.Errorf("point %v outside query %+v", p, qs[qi])
							return
						}
						if j > 0 && res[j].Score > res[j-1].Score {
							t.Error("batched answer out of order under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			idx.Rebalance(4 + i)
		}
	}()
	wg.Wait()
}

// TestIndexApplyBatchMatchesSequential: ApplyBatch on the sequential
// backend is exactly the op-by-op loop.
func TestIndexApplyBatchMatchesSequential(t *testing.T) {
	gen := workload.NewGen(65)
	base := toResults(gen.Uniform(1500, 1e6))
	batched := mustLoad(t, smallCfg(), base)
	looped := mustLoad(t, smallCfg(), base)

	ups := gen.Mix(1200, 800, 0.4, 1e6)
	ops := make([]BatchOp, len(ups))
	for i, u := range ups {
		if u.Delete != nil {
			ops[i] = BatchOp{Delete: true, X: u.Delete.X, Score: u.Delete.Score}
		} else {
			ops[i] = BatchOp{X: u.Insert.X, Score: u.Insert.Score}
		}
	}
	res := batched.ApplyBatch(ops)
	for i, op := range ops {
		var err error
		if op.Delete {
			if !looped.Delete(op.X, op.Score) {
				err = ErrNotFound
			}
		} else {
			err = looped.Insert(op.X, op.Score)
		}
		if !errors.Is(res[i], err) {
			t.Fatalf("op %d: batch %v vs loop %v", i, res[i], err)
		}
	}
	if batched.Len() != looped.Len() {
		t.Fatalf("Len %d vs %d", batched.Len(), looped.Len())
	}
	for _, q := range gen.Queries(40, 1e6, 0.01, 0.7, 60) {
		if !reflect.DeepEqual(batched.TopK(q.X1, q.X2, q.K), looped.TopK(q.X1, q.X2, q.K)) {
			t.Fatalf("divergence on %+v", q)
		}
	}
}

// TestOversizedKClamped: the library read path must clamp a
// caller-supplied k to the points actually available before anything
// allocates — a direct Store user issuing k = MaxInt must get every
// qualifying point back, not an OOM (topkd clamps over HTTP; the
// library has to hold the same line on its own).
func TestOversizedKClamped(t *testing.T) {
	gen := workload.NewGen(81)
	pts := toResults(gen.Uniform(500, 1e6))
	for name, st := range storeBackends(t, pts) {
		for _, k := range []int{501, 1 << 40, math.MaxInt} {
			got := st.TopK(math.Inf(-1), math.Inf(1), k)
			if len(got) != len(pts) {
				t.Fatalf("%s: TopK(k=%d) returned %d points, want %d", name, k, len(got), len(pts))
			}
			for i := 1; i < len(got); i++ {
				if got[i].Score > got[i-1].Score {
					t.Fatalf("%s: TopK(k=%d) out of order", name, k)
				}
			}
			batch := st.QueryBatch([]Query{{X1: math.Inf(-1), X2: math.Inf(1), K: k}})
			if !reflect.DeepEqual(batch[0], got) {
				t.Fatalf("%s: QueryBatch(k=%d) diverged from TopK", name, k)
			}
		}
	}
}

// TestChurnDifferential is the lifecycle differential: randomized
// interleaved inserts, deletes and rebalances drive the sharded
// router through splits AND merges, and after every phase the router
// must answer byte-identically to a sequential Index over the same
// live set, with its invariants intact. Run under -race in CI.
func TestChurnDifferential(t *testing.T) {
	cfg := testShardedConfig(8)
	gen := workload.NewGen(83)
	sharded := mustNewSharded(t, cfg)
	single := mustNew(t, cfg.Config)

	apply := func(ins []Result, delFrac float64, rng *rand.Rand, live []Result) []Result {
		for _, p := range ins {
			mustInsert(t, sharded, p.X, p.Score)
			mustInsert(t, single, p.X, p.Score)
			live = append(live, p)
		}
		for target := int(float64(len(live)) * delFrac); target > 0; target-- {
			j := rng.Intn(len(live))
			p := live[j]
			sok, iok := sharded.Delete(p.X, p.Score), single.Delete(p.X, p.Score)
			if !sok || !iok {
				t.Fatalf("Delete(%v): sharded=%v index=%v", p, sok, iok)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		return live
	}

	checkPhase := func(phase string) {
		t.Helper()
		if err := sharded.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if sharded.Len() != single.Len() {
			t.Fatalf("%s: Len %d vs %d", phase, sharded.Len(), single.Len())
		}
		qs := gen.Queries(50, 1e6, 0.001, 0.9, 150)
		qs = append(qs, workload.QuerySpec{X1: math.Inf(-1), X2: math.Inf(1), K: 5000})
		for _, cut := range sharded.Boundaries() {
			qs = append(qs, workload.QuerySpec{X1: cut - 1e4, X2: cut + 1e4, K: 50})
		}
		for _, q := range qs {
			got, want := sharded.TopK(q.X1, q.X2, q.K), single.TopK(q.X1, q.X2, q.K)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: TopK(%v,%v,%d):\n got %v\nwant %v", phase, q.X1, q.X2, q.K, got, want)
			}
		}
	}

	rng := rand.New(rand.NewSource(84))
	var live []Result

	live = apply(toResults(gen.Uniform(5000, 1e6)), 0, rng, live) // grow: splits
	if sharded.Splits() == 0 {
		t.Fatalf("no splits during growth: %s", sharded)
	}
	checkPhase("grow")
	grown := sharded.NumShards()

	live = apply(nil, 0.9, rng, live) // shrink: merges
	if sharded.Merges() == 0 {
		t.Fatalf("no merges after 90%% deletes: %s", sharded)
	}
	if got := sharded.NumShards(); got >= grown {
		t.Fatalf("NumShards %d did not shrink below split-era %d", got, grown)
	}
	checkPhase("shrink")

	sharded.Rebalance(0) // single is rebalance-free; contents must agree regardless
	checkPhase("rebalance")

	live = apply(toResults(gen.Uniform(2500, 1e6)), 0.3, rng, live) // refill churn
	checkPhase("refill")
	_ = live
}
