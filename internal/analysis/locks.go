package analysis

// Mutex-event scanning shared by the lock-discipline analyzers
// (lockorder, snapshotpin). The invariants they check are phrased in
// terms of the convention the router documents: the guarded type's
// PRIMARY mutex is a field literally named "mu" (shard.mu, Router.mu),
// while auxiliary leaf locks carry descriptive names (scoreMu, subMu,
// statsMu) precisely so they are visibly outside the ordering
// protocol. The scanners therefore match calls of the shape
// `owner.mu.Lock()` and classify them by the owner's named type.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MuOp is one primary-mutex operation.
type MuOp int

const (
	MuLock MuOp = iota
	MuUnlock
	MuRLock
	MuRUnlock
)

// Acquires reports whether the op takes the lock (either mode).
func (op MuOp) Acquires() bool { return op == MuLock || op == MuRLock }

// MuEvent is one `owner.mu.<op>()` call found in a scope.
type MuEvent struct {
	Pos       token.Pos
	Op        MuOp
	OwnerPkg  string // package path of the owner's named type
	OwnerName string // name of the owner's named type ("shard", "Router")
	Deferred  bool   // the call is the operand of a defer statement
}

// FuncScope is one function body analyzed as an independent lock
// scope: a declaration or a function literal. Nested literals are
// separate scopes — a literal's body runs when the literal is invoked,
// not where it is written, so its lock events must not leak into the
// enclosing scope's ordering.
type FuncScope struct {
	// Decl is set for declared functions and methods, Lit for literals.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Name describes the scope for diagnostics.
func (s FuncScope) Name() string {
	if s.Decl != nil {
		return s.Decl.Name.Name
	}
	return "func literal"
}

// Scopes returns every function body in the files, declarations and
// literals alike, each as its own scope.
func Scopes(files []*ast.File) []FuncScope {
	var out []FuncScope
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, FuncScope{Decl: fn, Body: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, FuncScope{Lit: fn, Body: fn.Body})
			}
			return true
		})
	}
	return out
}

// WalkScope visits the nodes of body in source order, excluding the
// bodies of nested function literals, and reports for each call
// whether it is directly deferred.
func WalkScope(body *ast.BlockStmt, visit func(n ast.Node, deferred bool)) {
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false // separate scope; Scopes yields it on its own
		}
		if call, ok := m.(*ast.CallExpr); ok {
			visit(m, deferred[call])
			return true
		}
		visit(m, false)
		return true
	})
}

// MuEvents collects the primary-mutex events of one scope, in source
// order.
func MuEvents(info *types.Info, body *ast.BlockStmt) []MuEvent {
	var out []MuEvent
	WalkScope(body, func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		ev, ok := MuEventOf(info, call)
		if !ok {
			return
		}
		ev.Deferred = deferred
		out = append(out, ev)
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// MuEventOf matches `owner.mu.Lock()` style calls.
func MuEventOf(info *types.Info, call *ast.CallExpr) (MuEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return MuEvent{}, false
	}
	var op MuOp
	switch sel.Sel.Name {
	case "Lock":
		op = MuLock
	case "Unlock":
		op = MuUnlock
	case "RLock":
		op = MuRLock
	case "RUnlock":
		op = MuRUnlock
	default:
		return MuEvent{}, false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok || field.Sel.Name != "mu" {
		return MuEvent{}, false
	}
	tv, ok := info.Types[field.X]
	if !ok {
		return MuEvent{}, false
	}
	pkgPath, name := NamedType(tv.Type)
	if name == "" {
		return MuEvent{}, false
	}
	return MuEvent{Pos: call.Pos(), Op: op, OwnerPkg: pkgPath, OwnerName: name}, true
}
