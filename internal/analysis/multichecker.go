package analysis

// The multichecker driver behind cmd/topkvet: load the requested
// packages once, run every analyzer over each, print findings in the
// file:line:col style every Go tool uses, and exit non-zero when
// anything fired — the shape CI wants from a blocking gate.

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Main runs the analyzer suite as a command: parses flags, loads the
// package patterns given as arguments (default ./...), applies every
// analyzer and exits 0 (clean), 1 (findings) or 2 (operational
// failure: unparseable tree, unknown analyzer, ...). It never returns.
func Main(analyzers ...*Analyzer) {
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array (file/line/col/analyzer/message) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: topkvet [-list] [-skip name,...] [-json] [package patterns]\n"+
				"       topkvet escapecheck [package patterns]\n"+
				"       topkvet benchgate -baseline FILE -fresh FILE\n\n"+
				"Runs the project invariant suite over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	enabled, err := filterAnalyzers(analyzers, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkvet: %v\n", err)
		os.Exit(2)
	}

	diags, err := Run(".", flag.Args(), enabled)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]findingJSON, 0, len(diags))
		for _, d := range diags {
			out = append(out, findingJSON{
				File:     relToCwd(d.Position.Filename),
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "topkvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "topkvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	os.Exit(0)
}

// relToCwd rewrites an absolute finding path relative to the working
// directory when it lies underneath it: GitHub ::error annotations
// only attach to the diff when the file path is repo-relative.
func relToCwd(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// findingJSON is the -json wire shape; CI turns each element into a
// GitHub ::error annotation.
type findingJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// filterAnalyzers drops the skip-listed names, erroring on unknown
// ones (a typo in -skip must not silently disable nothing).
func filterAnalyzers(all []*Analyzer, skip string) ([]*Analyzer, error) {
	if skip == "" {
		return all, nil
	}
	drop := map[string]bool{}
	for _, name := range strings.Split(skip, ",") {
		drop[strings.TrimSpace(name)] = true
	}
	known := map[string]bool{}
	var out []*Analyzer
	for _, a := range all {
		known[a.Name] = true
		if !drop[a.Name] {
			out = append(out, a)
		}
	}
	for name := range drop {
		if name != "" && !known[name] {
			return nil, fmt.Errorf("-skip: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Finding is one printable diagnostic: its resolved position, the
// analyzer that fired, and the message.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run loads patterns relative to dir and applies every analyzer to
// every matched package, returning the findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Position: pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
