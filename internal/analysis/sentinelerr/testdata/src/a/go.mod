module a

go 1.24
