// Testdata for the sentinelerr analyzer. The analyzer is unscoped, so
// a flat package suffices.
package a

import (
	"errors"
	"strings"
)

// ErrNotFound mirrors the module's topk.Err* sentinels.
var ErrNotFound = errors.New("position not found")

// errInternal is package-level but unexported and differently named;
// identity checks against it are out of the rule's scope.
var errInternal = errors.New("internal")

func badIdentity(err error) bool {
	return err == ErrNotFound // want "sentinel ErrNotFound compared with =="
}

func badNegIdentity(err error) bool {
	return err != ErrNotFound // want "sentinel ErrNotFound compared with !="
}

func badText(err error) bool {
	return err.Error() == "position not found" // want "error text compared with =="
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "not found") // want "strings.Contains over err.Error"
}

func badSwitch(err error) string {
	switch err {
	case ErrNotFound: // want "switch case matches sentinel ErrNotFound by identity"
		return "not-found"
	}
	return "other"
}

func goodIs(err error) bool {
	return errors.Is(err, ErrNotFound)
}

func goodNilAndLocal(err error) bool {
	if err == nil {
		return false
	}
	return err == errInternal
}

func goodSwitchIs(err error) string {
	switch {
	case errors.Is(err, ErrNotFound):
		return "not-found"
	}
	return "other"
}
