// Testdata for the sentinelerr analyzer. The analyzer is unscoped, so
// a flat package suffices.
package a

import (
	"context"
	"errors"
	"io"
	"strings"
)

// ErrNotFound mirrors the module's topk.Err* sentinels.
var ErrNotFound = errors.New("position not found")

// errInternal is package-level but unexported and differently named;
// identity checks against it are out of the rule's scope.
var errInternal = errors.New("internal")

func badIdentity(err error) bool {
	return err == ErrNotFound // want "sentinel ErrNotFound compared with =="
}

func badNegIdentity(err error) bool {
	return err != ErrNotFound // want "sentinel ErrNotFound compared with !="
}

func badText(err error) bool {
	return err.Error() == "position not found" // want "error text compared with =="
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "not found") // want "strings.Contains over err.Error"
}

func badSwitch(err error) string {
	switch err {
	case ErrNotFound: // want "switch case matches sentinel ErrNotFound by identity"
		return "not-found"
	}
	return "other"
}

// Foreign sentinels carry no Err prefix, but an exported package-level
// error variable in a dependency is a sentinel by construction — and
// the stdlib wraps too (fs.ErrNotExist behind *PathError).
func badStdlibIdentity(err error) bool {
	return err == io.EOF // want "sentinel io.EOF compared with =="
}

func badStdlibNeg(err error) bool {
	return err != context.Canceled // want "sentinel context.Canceled compared with !="
}

// The alias hop: the dataflow graph traces e back to its io.EOF
// binding, so laundering the sentinel through a local changes nothing.
func badAliasedSentinel(err error) bool {
	e := io.EOF
	return err == e // want "sentinel io.EOF compared with =="
}

func badStdlibSwitch(err error) string {
	switch err {
	case io.EOF: // want "switch case matches sentinel io.EOF by identity"
		return "eof"
	case nil:
		return "ok"
	}
	return "other"
}

func goodIs(err error) bool {
	return errors.Is(err, ErrNotFound)
}

func goodStdlibIs(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, context.Canceled)
}

// goodNilAfterSeed: err is seeded from a sentinel, but `== nil` is the
// one identity check wrapping can't break — the alias trace must not
// flag it.
func goodNilAfterSeed() bool {
	err := io.EOF
	return err == nil
}

func goodNilAndLocal(err error) bool {
	if err == nil {
		return false
	}
	return err == errInternal
}

func goodSwitchIs(err error) string {
	switch {
	case errors.Is(err, ErrNotFound):
		return "not-found"
	}
	return "other"
}
