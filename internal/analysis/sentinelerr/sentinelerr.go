// Package sentinelerr bans string- and identity-matching against the
// module's sentinel errors (topk.ErrConfig, topk.ErrNotFound,
// cluster's ErrNodeDown, ...). Every layer of the stack wraps errors
// with context ("shard 3: %w", "node a:1: %w"), so `err == ErrX`
// silently stops matching the moment a wrapper is introduced — the
// serve layer's errCode mapping only stays correct because it uses
// errors.Is. Matching on err.Error() text is the same bug with extra
// steps.
//
// Flagged anywhere in the tree:
//
//   - `err == ErrX` / `err != ErrX` where ErrX is a package-level
//     error variable named Err*. (Comparisons against nil stay legal.)
//   - the same identity match against a sentinel from ANOTHER package,
//     whatever its name: io.EOF, context.Canceled, sql.ErrNoRows —
//     every exported package-level error variable in a dependency is a
//     sentinel by construction, and the stdlib wraps too (fs.ErrNotExist
//     behind *PathError, context causes behind joined errors).
//   - a comparison against a LOCAL ALIAS of a sentinel (`e := io.EOF;
//     if err == e`), traced through the shared dataflow graph.
//   - `switch err { case ErrX: }` — the same identity match in
//     switch clothing.
//   - comparing or substring-matching `err.Error()` text: `x.Error() ==
//     "..."`, strings.Contains(err.Error(), ...), HasPrefix, HasSuffix.
//
// The fix is always errors.Is(err, ErrX) (or errors.As for typed
// errors).
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the sentinelerr rule.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc:  "compare sentinel errors with errors.Is, never == or err.Error() string matching",
	Run:  run,
}

// aliasDepth bounds the dataflow walk that traces a compared value
// back to a sentinel binding (`e := io.EOF; if err == e`).
const aliasDepth = 3

func run(pass *analysis.Pass) error {
	graph := dataflow.New(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, graph, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, graph, n)
			case *ast.CallExpr:
				checkStringsCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// directSentinelName returns the name of the sentinel error variable
// expr refers to, or "". Two shapes qualify: a package-level error
// variable named Err* in the package under analysis (the module's own
// convention), and ANY package-level error variable from another
// package — io.EOF and context.Canceled carry no Err prefix, but an
// exported error variable in a dependency is a sentinel by
// construction.
func directSentinelName(pass *analysis.Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	// Package-level: declared directly in the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !analysis.IsErrorType(v.Type()) {
		return ""
	}
	if v.Pkg() == pass.Pkg {
		if !strings.HasPrefix(v.Name(), "Err") {
			return ""
		}
		return v.Name()
	}
	return v.Pkg().Name() + "." + v.Name()
}

// sentinelName resolves expr — or, through the dataflow graph, any
// binding it aliases — to a sentinel error variable, returning its
// name or "".
func sentinelName(pass *analysis.Pass, graph *dataflow.Graph, expr ast.Expr) string {
	for _, src := range graph.Sources(pass.TypesInfo, expr, aliasDepth) {
		if name := directSentinelName(pass, src); name != "" {
			return name
		}
	}
	return ""
}

// isNilLiteral reports the untyped nil, which both sides of a legal
// `err == nil` check are allowed to be.
func isNilLiteral(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	return ok && tv.IsNil()
}

// errorTextOf reports whether expr is a call to the error interface's
// Error method — the `err.Error()` in a string match.
func errorTextOf(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsErrorType(tv.Type)
}

func checkBinary(pass *analysis.Pass, graph *dataflow.Graph, n *ast.BinaryExpr) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	// `err == nil` is the one identity check wrapping can't break; the
	// alias trace must not turn it into a finding just because err was
	// seeded from a sentinel somewhere upstream.
	if isNilLiteral(pass, n.X) || isNilLiteral(pass, n.Y) {
		return
	}
	for _, side := range []ast.Expr{n.X, n.Y} {
		if name := sentinelName(pass, graph, side); name != "" {
			pass.Reportf(n.Pos(), "sentinel %s compared with %s; wrapped errors never match — use errors.Is(err, %s)", name, n.Op, name)
			return
		}
	}
	if errorTextOf(pass, n.X) || errorTextOf(pass, n.Y) {
		pass.Reportf(n.Pos(), "error text compared with %s; match the sentinel with errors.Is, not err.Error() strings", n.Op)
	}
}

func checkSwitch(pass *analysis.Pass, graph *dataflow.Graph, n *ast.SwitchStmt) {
	if n.Tag == nil {
		return
	}
	if tv, ok := pass.TypesInfo.Types[n.Tag]; !ok || !analysis.IsErrorType(tv.Type) {
		return
	}
	for _, stmt := range n.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if isNilLiteral(pass, expr) {
				continue
			}
			if name := sentinelName(pass, graph, expr); name != "" {
				pass.Reportf(expr.Pos(), "switch case matches sentinel %s by identity; wrapped errors never match — use errors.Is(err, %s)", name, name)
			}
		}
	}
}

// stringsMatchers are the strings-package predicates that turn error
// text back into control flow.
var stringsMatchers = map[string]bool{"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true}

func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringsMatchers[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if errorTextOf(pass, arg) {
			pass.Reportf(call.Pos(), "strings.%s over err.Error() text; match the sentinel with errors.Is, not string matching", fn.Name())
			return
		}
	}
}
