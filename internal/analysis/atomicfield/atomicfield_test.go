package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "testdata/src/atomicf")
}
