module atomicf

go 1.24
