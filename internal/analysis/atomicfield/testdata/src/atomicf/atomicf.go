// Testdata for the atomicfield analyzer: every copy shape that forks
// an atomic-bearing struct, each with a pointer-shaped compliant twin.
package atomicf

import "sync/atomic"

// counter embeds an atomic directly.
type counter struct {
	hits atomic.Int64
}

// stats embeds counter by value — containment is transitive.
type stats struct {
	ok   counter
	name string
}

// stripes carries atomics through an array element.
type stripes struct {
	cells [8]atomic.Uint64
}

// handle is pointer-like all the way down: copying it shares.
type handle struct {
	c *counter
	m map[string]*stats
}

func badParam(c counter) { // want "parameter of type atomicf.counter is passed by value"
	_ = c
}

func badResult(c *counter) counter { // want "result of type atomicf.counter is passed by value"
	return *c // want "return copies a value containing sync/atomic fields"
}

func (s stats) badReceiver() {} // want "receiver of type atomicf.stats is passed by value"

func badAssign(c *counter) {
	dup := *c // want "assignment copies a value containing sync/atomic fields"
	_ = dup
}

func badFieldCopy(s *stats) {
	ok := s.ok // want "assignment copies a value containing sync/atomic fields"
	_ = ok
}

func badRange(all []stats) {
	for _, s := range all { // want "range value copies an element containing sync/atomic fields"
		_ = s
	}
}

func badCallArg(c *counter) {
	badParam(*c) // want "call argument copies a value containing sync/atomic fields"
}

func badArrayed(st *stripes) {
	cells := st.cells // want "assignment copies a value containing sync/atomic fields"
	_ = cells
}

func badClosure() {
	_ = func(c counter) { _ = c } // want "parameter of type atomicf.counter is passed by value"
}

// goodConstruction: composite literals build in place — nothing to
// fork yet.
func goodConstruction() *stats {
	s := stats{name: "reads"}
	return &s
}

func goodPointer(c *counter) *counter {
	c.hits.Add(1)
	return c
}

func (s *stats) goodReceiver() int64 {
	return s.ok.hits.Load()
}

func goodRange(all []stats) {
	for i := range all {
		all[i].ok.hits.Add(1)
	}
}

// goodHandle: pointer-like containers share the atomics instead of
// copying them.
func goodHandle(h handle) handle {
	dup := h
	return dup
}

func goodPlain(n int) int {
	m := n
	return m
}
