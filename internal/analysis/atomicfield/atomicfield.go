// Package atomicfield bans copying structs that contain sync/atomic
// values — the same discipline vet's copylocks enforces for mutexes,
// applied to the atomic types this module's hot paths are built on
// (the obs histogram's stripe counters, the shard router's epoch).
// A copied atomic.Int64 is a fork: both copies keep accepting atomic
// updates, each sees only its own, and the split is silent — no race
// detector report, just counters that drift. The only sound way to
// hand such a struct around is by pointer.
//
// Flagged, anywhere in the tree:
//
//   - declaring a parameter, result, or method receiver of an
//     atomic-bearing type by value;
//   - assignment copies (`h2 := *h`, `s = t`) — initializing from a
//     composite literal is legal, that is construction, not copying;
//   - `range` clauses whose value variable copies an atomic-bearing
//     element;
//   - passing or returning an atomic-bearing value (a call whose
//     argument or return copies the struct).
//
// Containment is transitive through struct fields and array elements;
// pointers, slices, maps and channels break it (they share, not copy).
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield rule.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "structs containing sync/atomic values move by pointer only; copying forks the counter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.ReturnStmt:
				checkReturnValues(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSignature flags by-value atomic-bearing receivers, parameters
// and results at their declaration sites.
func checkSignature(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(field *ast.Field, kind string) {
		t := typeOf(pass, field.Type)
		if t == nil || isPointerLike(t) || !containsAtomic(t) {
			return
		}
		pass.Reportf(field.Type.Pos(), "%s of type %s is passed by value but contains sync/atomic fields; use a pointer — a copy forks the counters", kind, t.String())
	}
	if recv != nil {
		for _, field := range recv.List {
			report(field, "receiver")
		}
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			report(field, "parameter")
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			report(field, "result")
		}
	}
}

// checkAssign flags `x = y` / `x := y` where the copied value carries
// atomic fields. Composite literals are construction; calls are the
// callee's result landing in place (the callee's by-value result decl
// is where THAT copy gets flagged).
func checkAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		// `_ = x` discards; nothing is forked.
		if len(n.Lhs) == len(n.Rhs) {
			if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		if copiesAtomic(pass, rhs) {
			pass.Reportf(rhs.Pos(), "assignment copies a value containing sync/atomic fields; share it by pointer — a copy forks the counters")
		}
	}
}

func checkRange(pass *analysis.Pass, n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	t := typeOf(pass, n.Value)
	if t == nil || isPointerLike(t) || !containsAtomic(t) {
		return
	}
	pass.Reportf(n.Value.Pos(), "range value copies an element containing sync/atomic fields; range over indices and take pointers instead")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return // len, cap, ... don't copy their operand's payload
		}
	}
	for _, arg := range call.Args {
		if copiesAtomic(pass, arg) {
			pass.Reportf(arg.Pos(), "call argument copies a value containing sync/atomic fields; pass a pointer — a copy forks the counters")
		}
	}
}

func checkReturnValues(pass *analysis.Pass, ret *ast.ReturnStmt) {
	for _, expr := range ret.Results {
		if copiesAtomic(pass, expr) {
			pass.Reportf(expr.Pos(), "return copies a value containing sync/atomic fields; return a pointer — a copy forks the counters")
		}
	}
}

// copiesAtomic reports whether evaluating expr as an assignment source
// copies an atomic-bearing value: the type must contain atomics and
// the expression must read an existing value (composite literals
// construct in place, calls hand over their own result).
func copiesAtomic(pass *analysis.Pass, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return false
	}
	t := typeOf(pass, e)
	return t != nil && !isPointerLike(t) && containsAtomic(t)
}

// isPointerLike reports types whose copy shares rather than forks the
// underlying atomics.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// containsAtomic reports whether t transitively contains a sync/atomic
// value through struct fields and array elements.
func containsAtomic(t types.Type) bool {
	return contains(t, make(map[types.Type]bool))
}

func contains(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
		return contains(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if contains(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return contains(u.Elem(), seen)
	}
	return false
}

// typeOf resolves an expression's type, falling back to the object
// maps for bare identifiers (Types does not record every identifier).
func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}
