package boundedlabel_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/boundedlabel"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, boundedlabel.Analyzer, "testdata/src/b")
}
