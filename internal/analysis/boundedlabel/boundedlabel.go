// Package boundedlabel keeps the telemetry label space closed. The obs
// histogram vecs key series by label string, and every distinct label
// allocates a histogram that lives for the process lifetime — a label
// derived from request data (paths, query params, header values) is an
// unbounded-cardinality memory leak an attacker can drive with a URL
// loop. That is exactly why obs keeps the endpointLabels allowlist and
// funnels paths through obs.EndpointLabel.
//
// The rule, applied at every Vec.Observe / Telemetry.TimeOp call site
// in the tree: the label argument must not be request-derived. The
// label's provenance is traced through the shared dataflow graph
// (internal/analysis/dataflow) to sourceDepth assignment hops, so
// `p := r.URL.Path; q := p; vec.Observe(q, d)` is flagged two hops
// from the request where the old per-analyzer scan stopped after one.
// A label is flagged when any expression in its source chain mentions
// *http.Request, http.Header, *url.URL or url.Values. String
// constants, obs.EndpointLabel(...) results, and config-derived values
// (node addresses, shard names: bounded by deployment, not by
// traffic) all pass — a bounded expression anywhere in the chain
// clears the label, because the value passed through the clamp.
package boundedlabel

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the boundedlabel rule.
var Analyzer = &analysis.Analyzer{
	Name: "boundedlabel",
	Doc:  "metric labels come from the closed allowlist, never from request-derived strings",
	Run:  run,
}

// sourceDepth bounds the provenance walk. Three hops cover every alias
// chain the tree (and its testdata) uses; deeper chains through string
// locals are vanishingly rare and err toward a miss, not a false
// positive.
const sourceDepth = 3

func run(pass *analysis.Pass) error {
	graph := dataflow.New(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			label, method, ok := labelArg(pass, call)
			if !ok {
				return true
			}
			checkLabel(pass, graph, label, method)
			return true
		})
	}
	return nil
}

// labelArg returns the label argument of an obs label-keyed call:
// (*obs.Vec).Observe(label, d) or (*obs.Telemetry).TimeOp(op).
func labelArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, string, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	pkgPath, recvName := analysis.NamedType(sig.Recv().Type())
	if !analysis.PathHasSuffix(pkgPath, "internal/obs") {
		return nil, "", false
	}
	switch {
	case recvName == "Vec" && fn.Name() == "Observe" && len(call.Args) == 2:
		return call.Args[0], "Vec.Observe", true
	case recvName == "Telemetry" && fn.Name() == "TimeOp" && len(call.Args) == 1:
		return call.Args[0], "Telemetry.TimeOp", true
	}
	return nil, "", false
}

// checkLabel traces the label through the dataflow graph and applies
// the rule over the whole source chain: bounded anywhere clears
// (EndpointLabel is the clamp; a constant is closed by definition),
// request-derived anywhere flags.
func checkLabel(pass *analysis.Pass, graph *dataflow.Graph, label ast.Expr, method string) {
	exprs := graph.Sources(pass.TypesInfo, label, sourceDepth)
	for _, e := range exprs {
		if isBounded(pass, e) {
			return
		}
	}
	for _, e := range exprs {
		if mentionsRequestData(pass, e) {
			pass.Reportf(label.Pos(), "%s label derives from request data; label the series from the closed allowlist (a constant or obs.EndpointLabel)", method)
			return
		}
	}
}

// isBounded recognizes the explicitly-safe label sources: untyped or
// typed string constants and the obs.EndpointLabel clamp.
func isBounded(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil &&
		analysis.PathHasSuffix(fn.Pkg().Path(), "internal/obs") && fn.Name() == "EndpointLabel"
}

// mentionsRequestData reports whether any subexpression's type is one
// of the request-carrier types, so r.URL.Path, r.Header.Get(...), and
// q.Get("metric") are all caught via their receiver chains.
func mentionsRequestData(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sub, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		tv, ok := pass.TypesInfo.Types[sub]
		if !ok {
			return true
		}
		pkgPath, name := analysis.NamedType(tv.Type)
		switch pkgPath + "." + name {
		case "net/http.Request", "net/http.Header", "net/url.URL", "net/url.Values":
			found = true
		}
		return !found
	})
	return found
}
