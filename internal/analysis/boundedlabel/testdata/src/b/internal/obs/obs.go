// Testdata stand-in for the real internal/obs telemetry surface: the
// two label-keyed entry points and the allowlist clamp.
package obs

import "time"

type Vec struct{}

func (v *Vec) Observe(label string, d time.Duration) {}

type Telemetry struct {
	HTTP *Vec
}

func (t *Telemetry) TimeOp(op string) func() { return func() {} }

// EndpointLabel clamps arbitrary paths onto the closed label set.
func EndpointLabel(path string) string {
	if path == "/v1/topk" || path == "/v1/batch" {
		return path
	}
	return "other"
}
