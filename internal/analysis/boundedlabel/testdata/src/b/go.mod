module b

go 1.24
