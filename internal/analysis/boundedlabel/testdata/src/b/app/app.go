// Testdata consumer of the obs stand-in: request-derived labels on
// the left, allowlisted and config-derived labels on the right.
package app

import (
	"net/http"
	"time"

	"b/internal/obs"
)

func bad(t *obs.Telemetry, v *obs.Vec, r *http.Request, d time.Duration) {
	v.Observe(r.URL.Path, d) // want "Vec.Observe label derives from request data"

	label := r.URL.Query().Get("metric")
	v.Observe(label, d) // want "Vec.Observe label derives from request data"

	done := t.TimeOp(r.Header.Get("X-Op")) // want "Telemetry.TimeOp label derives from request data"
	done()

	// Two assignment hops from the request: the dataflow chain walks
	// q -> p -> r.URL.Path where the old one-hop scan stopped at p.
	p := r.URL.Path
	q := p
	v.Observe(q, d) // want "Vec.Observe label derives from request data"
}

func good(t *obs.Telemetry, v *obs.Vec, r *http.Request, d time.Duration, nodeAddr string) {
	v.Observe("topk", d)

	endpoint := obs.EndpointLabel(r.URL.Path)
	v.Observe(endpoint, d)

	// Config-derived, bounded by deployment size: out of the rule's
	// scope (mirrors the cluster client labeling by node address).
	v.Observe(nodeAddr, d)

	done := t.TimeOp("rebuild")
	done()
}
