package analysis

// The package loader: the subset of x/tools/go/packages this framework
// needs, built on the go command and the standard type checker.
//
// `go list -export -deps -json` yields, for every package in the
// transitive closure of the requested patterns, its file layout AND
// the path of its compiled export data in the build cache. The target
// packages are then re-parsed from source (we need syntax trees, which
// export data does not carry) and type-checked with go/types against
// an importer that feeds every import from that export data — so a
// load never type-checks more than the packages under analysis, no
// matter how deep their dependency trees go.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// runList invokes `go list` in dir with the given extra arguments and
// decodes the JSON stream.
func runList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,Export,Standard,GoFiles,Error,DepsErrors"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns relative to dir (a module root or any
// directory inside one), compiles their dependency closure for export
// data, and returns the matched non-stdlib packages parsed from source
// and fully type-checked. Packages that fail to list or type-check
// abort the load with an error — an analysis run over a broken tree
// would under-report, not over-report, so it must not look green.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Pass 1: which packages do the patterns name?
	targets, err := runList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.Standard {
			isTarget[p.ImportPath] = true
		}
	}
	if len(isTarget) == 0 {
		return nil, fmt.Errorf("patterns %v matched no packages under %s", patterns, dir)
	}
	// Pass 2: compile the closure and collect export data. -deps also
	// re-lists the targets themselves; their export data is unused (they
	// are re-checked from source) but harmless.
	closure, err := runList(dir, append([]string{"-e", "-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	byPath := map[string]listPkg{}
	for _, p := range closure {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does it compile?)", path)
		}
		return os.Open(exp)
	})

	paths := make([]string, 0, len(isTarget))
	for path := range isTarget {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	var out []*Package
	for _, path := range paths {
		lp, ok := byPath[path]
		if !ok {
			return nil, fmt.Errorf("package %s vanished between list passes", path)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", path, lp.Error.Err)
		}
		for _, de := range lp.DepsErrors {
			return nil, fmt.Errorf("package %s: dependency error: %s", path, de.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("package %s: %v", path, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("package %s: type check: %v", path, err)
		}
		out = append(out, &Package{
			PkgPath:   path,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return out, nil
}
