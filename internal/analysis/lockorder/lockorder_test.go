package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/a")
}
