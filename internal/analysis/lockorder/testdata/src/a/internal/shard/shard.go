// Testdata for the lockorder analyzer: a miniature of the real
// internal/shard lock topology. Package path ends in internal/shard so
// the analyzer's scope gate admits it.
package shard

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type Router struct {
	mu     sync.RWMutex
	shards []*shard
}

// refresh takes the topology write lock correctly (defer-unlocked);
// it exists so callers holding shard.mu can be caught indirectly.
func (r *Router) refresh() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shards = append(r.shards[:0], r.shards...)
}

// badDirect inverts the documented order: topology lock under a shard
// mutex.
func (r *Router) badDirect(s *shard) {
	s.mu.Lock()
	r.mu.RLock() // want "acquires Router.mu while holding shard.mu"
	r.mu.RUnlock()
	s.mu.Unlock()
}

// badIndirect performs the same inversion through a call.
func (r *Router) badIndirect(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.refresh() // want "calls refresh, which acquires Router.mu"
}

// badWrite leaks the topology write lock on any panic before the
// explicit unlock.
func (r *Router) badWrite() { // want "takes Router.mu in write mode without a deferred unlock"
	r.mu.Lock()
	r.shards = nil
	r.mu.Unlock()
}

// goodOrder is the documented discipline: topology lock first, shard
// mutex second, write lock defer-unlocked.
func (r *Router) goodOrder() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.shards {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// goodSequential releases the shard mutex before touching topology.
func (r *Router) goodSequential(s *shard) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	r.refresh()
}
