// Package lockorder enforces the router's documented lock ordering in
// internal/shard: the topology lock (Router.mu) is always acquired
// BEFORE any shard mutex (shard.mu), never after — the mu→shard.mu
// order stated on the Router.mu field — and every topology write lock
// is released with defer, so a panicking lifecycle pass can never
// wedge the fleet (the exact bug class PR 1 fixed by hand after a
// duplicate-position insert panicked mid-update while holding a shard
// mutex).
//
// Two rules:
//
//  1. While a function (or function literal — each is its own scope)
//     holds shard.mu, it must not acquire Router.mu in either mode,
//     directly or by calling a package function that does so. Taking
//     the topology lock under a shard mutex inverts the documented
//     order against every path that locks mu first and then a shard —
//     a deadlock waiting for scheduling.
//
//  2. A `Router.mu.Lock()` (write mode) must be paired with a
//     `defer Router.mu.Unlock()` in the same scope. Explicit unlocks
//     leak the topology lock on any panic between them.
package lockorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "internal/shard: never acquire Router.mu while holding shard.mu; defer-unlock every topology write lock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), "internal/shard") {
		return nil
	}
	scopes := analysis.Scopes(pass.Files)

	// Interprocedural step, one level deep: which declared functions of
	// this package acquire the router lock anywhere in their bodies
	// (function literals included — router helpers run them inline)?
	// Calling one of them while holding a shard mutex is the same
	// inversion as taking the lock directly.
	acquiresRouterMu := map[*types.Func]bool{}
	for _, sc := range scopes {
		if sc.Decl == nil {
			continue
		}
		obj, ok := pass.TypesInfo.Defs[sc.Decl.Name].(*types.Func)
		if !ok {
			continue
		}
		var found bool
		ast.Inspect(sc.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ev, ok := analysis.MuEventOf(pass.TypesInfo, call); ok && isRouter(pass, ev) && ev.Op.Acquires() {
				found = true
			}
			return true
		})
		if found {
			acquiresRouterMu[obj] = true
		}
	}

	for _, sc := range scopes {
		checkScope(pass, sc, acquiresRouterMu)
	}
	return nil
}

// isShard / isRouter match an event's owner against this package's
// guarded types.
func isShard(pass *analysis.Pass, ev analysis.MuEvent) bool {
	return ev.OwnerName == "shard" && ev.OwnerPkg == pass.Pkg.Path()
}

func isRouter(pass *analysis.Pass, ev analysis.MuEvent) bool {
	return ev.OwnerName == "Router" && ev.OwnerPkg == pass.Pkg.Path()
}

// checkScope scans one function body in source order, tracking how
// many shard mutexes are held. A deferred unlock does not release
// within the scope (it runs at return, so the lock is held for the
// rest of the body — exactly what the ordering rule must see).
func checkScope(pass *analysis.Pass, sc analysis.FuncScope, acquiresRouterMu map[*types.Func]bool) {
	shardHeld := 0
	hasWriteLock := false
	hasDeferredUnlock := false

	analysis.WalkScope(sc.Body, func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		ev, isMu := analysis.MuEventOf(pass.TypesInfo, call)
		if !isMu {
			if shardHeld > 0 {
				if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil && acquiresRouterMu[callee] {
					pass.Reportf(call.Pos(), "%s calls %s, which acquires Router.mu, while holding shard.mu; the documented order is mu before shard.mu", sc.Name(), callee.Name())
				}
			}
			return
		}
		ev.Deferred = deferred
		switch {
		case isShard(pass, ev):
			if ev.Deferred {
				return
			}
			if ev.Op == analysis.MuLock {
				shardHeld++
			}
			if ev.Op == analysis.MuUnlock && shardHeld > 0 {
				shardHeld--
			}
		case isRouter(pass, ev):
			if ev.Op.Acquires() && shardHeld > 0 {
				pass.Reportf(ev.Pos, "%s acquires Router.mu while holding shard.mu; the documented order is mu before shard.mu", sc.Name())
			}
			if ev.Op == analysis.MuLock && !ev.Deferred {
				hasWriteLock = true
			}
			if ev.Op == analysis.MuUnlock && ev.Deferred {
				hasDeferredUnlock = true
			}
		}
	})

	if hasWriteLock && !hasDeferredUnlock {
		pass.Reportf(sc.Body.Pos(), "%s takes Router.mu in write mode without a deferred unlock; topology write locks must defer-unlock so panics cannot wedge the fleet", sc.Name())
	}
}
