// Package escape is the dynamic half of the //topk:nomalloc contract:
// it asks the compiler. The allocfree analyzer (the static half)
// rejects allocation sites by shape, but shape analysis cannot see
// what escape analysis decides — a value whose address flows to a
// callee, a variable outliving its frame through a captured pointer.
// So this driver rebuilds the annotated packages with `go build
// -gcflags=-m`, parses the compiler's escape diagnostics ("escapes to
// heap", "moved to heap"), and fails when any diagnostic lands inside
// the line range of a //topk:nomalloc function.
//
// The go command replays cached compiler stderr on repeat builds, so
// the check is stable across warm build caches — verified behavior,
// not hope. Diagnostic paths are printed relative to the build's
// working directory; they are resolved back to absolute paths before
// matching against the annotated ranges collected from the parsed
// tree.
//
// Run as `topkvet escapecheck [patterns]`.
package escape

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Main runs the check as the `topkvet escapecheck` subcommand over
// the patterns in args (default ./...) and returns the process exit
// code: 0 clean, 1 escapes found, 2 operational failure.
func Main(args []string) int {
	fs := flag.NewFlagSet("escapecheck", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: topkvet escapecheck [package patterns]\n\n"+
				"Rebuilds the packages containing //topk:nomalloc functions with\n"+
				"-gcflags=-m and fails on compiler escapes inside annotated bodies.\n")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	findings, checked, err := Check(".", fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkvet escapecheck: %v\n", err)
		return 2
	}
	if checked == 0 {
		fmt.Println("topkvet escapecheck: no //topk:nomalloc functions in scope")
		return 0
	}
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: [escapecheck] %s inside //topk:nomalloc %s\n",
			relPath(f.File), f.Line, f.Col, f.Message, f.Func)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "topkvet escapecheck: %d escape(s) inside %d annotated function(s)\n", len(findings), checked)
		return 1
	}
	fmt.Printf("topkvet escapecheck: %d annotated function(s), no escapes\n", checked)
	return 0
}

// relPath shortens an absolute path to be cwd-relative when possible;
// diagnostics read better and match the compiler's own output.
func relPath(abs string) string {
	wd, err := os.Getwd()
	if err != nil {
		return abs
	}
	if rel, err := filepath.Rel(wd, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return abs
}

// Finding is one compiler-reported escape inside an annotated
// function.
type Finding struct {
	File    string // absolute path
	Line    int
	Col     int
	Func    string // the annotated function the escape lands in
	Message string // the compiler's diagnostic text
}

// span is the file/line extent of one annotated function.
type span struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	name       string
	pkg        string // import path, for the build invocation
}

// diagLine matches the compiler's file:line:col diagnostics.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// Check loads patterns relative to dir, collects every
// //topk:nomalloc function, rebuilds the packages that contain one
// with -gcflags=-m, and returns the escape diagnostics that land
// inside an annotated range. The int return is the number of
// annotated functions found — zero means the gate checked nothing,
// which the caller may want to surface.
func Check(dir string, patterns []string) ([]Finding, int, error) {
	spans, err := annotatedSpans(dir, patterns)
	if err != nil {
		return nil, 0, err
	}
	if len(spans) == 0 {
		return nil, 0, nil
	}

	pkgSet := map[string]bool{}
	for _, s := range spans {
		pkgSet[s.pkg] = true
	}
	var pkgs []string
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	diags, err := buildDiagnostics(dir, pkgs)
	if err != nil {
		return nil, len(spans), err
	}

	var out []Finding
	for _, d := range diags {
		if !strings.Contains(d.Message, "escapes to heap") && !strings.Contains(d.Message, "moved to heap") {
			continue
		}
		for _, s := range spans {
			if d.File == s.file && d.Line >= s.start && d.Line <= s.end {
				out = append(out, Finding{File: d.File, Line: d.Line, Col: d.Col, Func: s.name, Message: d.Message})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, len(spans), nil
}

// annotatedSpans parses the tree and returns the line spans of every
// //topk:nomalloc function.
func annotatedSpans(dir string, patterns []string) ([]span, error) {
	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var spans []span
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !analysis.HasDirective(fn.Doc, analysis.NomallocDirective) {
					continue
				}
				start := pkg.Fset.Position(fn.Pos())
				end := pkg.Fset.Position(fn.End())
				file, err := filepath.Abs(start.Filename)
				if err != nil {
					return nil, err
				}
				spans = append(spans, span{
					file:  file,
					start: start.Line,
					end:   end.Line,
					name:  fn.Name.Name,
					pkg:   pkg.PkgPath,
				})
			}
		}
	}
	return spans, nil
}

// buildDiagnostics rebuilds pkgs with escape-analysis diagnostics on
// and returns every file:line:col line the compiler printed, paths
// resolved to absolute against dir.
func buildDiagnostics(dir string, pkgs []string) ([]Finding, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.Bytes())
	}
	var out []Finding
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, Finding{File: file, Line: lineNo, Col: col, Message: m[4]})
	}
	return out, nil
}
