module esc

go 1.24
