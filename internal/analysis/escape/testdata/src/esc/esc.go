// Testdata for the escapecheck driver. The shapes here are invisible
// to the static allocfree analyzer — no make/new/append/closure in
// sight — and only the compiler's escape analysis catches them.
package esc

// sink keeps escaping pointers reachable so the compiler cannot
// optimize the escape away.
var sink *int

// badEscape promises not to allocate, but &x outlives the frame: the
// compiler moves x to the heap.
//
//topk:nomalloc
func badEscape(n int) *int {
	x := n
	return &x
}

// goodSum is genuinely allocation-free: everything stays in the frame.
//
//topk:nomalloc
func goodSum(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}

// unannotatedEscape escapes identically to badEscape but made no
// promise; the gate checks only annotated functions.
func unannotatedEscape(n int) *int {
	x := n
	sink = &x
	return sink
}
