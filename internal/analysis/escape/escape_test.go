package escape_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/escape"
)

func TestCheckFindsAnnotatedEscapes(t *testing.T) {
	findings, checked, err := escape.Check("testdata/src/esc", []string{"./..."})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if checked != 2 {
		t.Fatalf("checked = %d annotated functions, want 2", checked)
	}
	if len(findings) == 0 {
		t.Fatalf("no findings; want the moved-to-heap escape in badEscape")
	}
	for _, f := range findings {
		if f.Func != "badEscape" {
			t.Errorf("finding in %s (%s:%d: %s); only badEscape should be flagged", f.Func, f.File, f.Line, f.Message)
		}
		if !strings.Contains(f.Message, "heap") {
			t.Errorf("finding message %q does not mention the heap", f.Message)
		}
	}
}

func TestCheckRepeatedBuildStillReports(t *testing.T) {
	// The go command replays cached compiler diagnostics; a warm build
	// cache must not turn the gate green.
	for round := range 2 {
		findings, _, err := escape.Check("testdata/src/esc", []string{"./..."})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(findings) == 0 {
			t.Fatalf("round %d: findings vanished — build cache swallowed the diagnostics", round)
		}
	}
}
