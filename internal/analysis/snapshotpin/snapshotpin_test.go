package snapshotpin_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotpin"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, snapshotpin.Analyzer, "testdata/src/a")
}
