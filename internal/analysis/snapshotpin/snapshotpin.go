// Package snapshotpin enforces the router's lock-free read discipline
// in internal/shard (the PR 4 three-layer design): read-path methods
// serve from one atomically pinned topology snapshot and never touch
// the topology lock, and no code fans out or merges while holding it.
//
// Two rules:
//
//  1. The Router read methods (TopK, Count, QueryBatch, NumShards,
//     Boundaries, Epoch, Stats, String) must route through the
//     snapshot pin — a call to snapshot() or fanOut() somewhere in the
//     method — and must not acquire Router.mu in any mode. A read that
//     takes the topology lock re-creates the pre-PR-4 contention the
//     refactor removed (~200 vs ~18k qps under churn in e17); a read
//     that skips the pin races lifecycle passes.
//
//  2. No function in the package may call the fan-out/merge machinery
//     (Router.fanOut, mergeTopK, or merge.TopK directly) while holding
//     Router.mu. Holding the topology lock across a fan-out blocks
//     every lifecycle pass for the duration of the slowest shard —
//     update paths that hold the read lock coordinate through
//     runParallel instead, which stays legal.
package snapshotpin

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the snapshotpin rule.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotpin",
	Doc:  "internal/shard: read methods pin the topology snapshot and take no topology lock; never fan out or merge under Router.mu",
	Run:  run,
}

// readMethods is the closed list of Router reads the snapshot
// discipline covers. DropCache is deliberately absent: it is an
// administrative mutation documented to hold the read lock so a
// lifecycle pass cannot swap in warm rebuilt shards mid-eviction.
var readMethods = map[string]bool{
	"TopK": true, "Count": true, "QueryBatch": true, "NumShards": true,
	"Boundaries": true, "Epoch": true, "Stats": true, "String": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), "internal/shard") {
		return nil
	}
	for _, sc := range analysis.Scopes(pass.Files) {
		if sc.Decl != nil && isRouterMethod(pass, sc.Decl) && readMethods[sc.Decl.Name.Name] {
			checkReadMethod(pass, sc.Decl)
		}
		checkNoFanOutUnderLock(pass, sc)
	}
	return nil
}

// isRouterMethod reports whether decl is a method with a Router (or
// *Router) receiver from this package.
func isRouterMethod(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[decl.Recv.List[0].Type]
	if !ok {
		return false
	}
	pkgPath, name := analysis.NamedType(tv.Type)
	return name == "Router" && pkgPath == pass.Pkg.Path()
}

// isRouterMu matches events on Router's primary mutex.
func isRouterMu(pass *analysis.Pass, ev analysis.MuEvent) bool {
	return ev.OwnerName == "Router" && ev.OwnerPkg == pass.Pkg.Path()
}

// pinsOrFans reports whether the callee is the snapshot pin or the
// machinery that performs one (fanOut pins internally).
func pinsOrFans(pass *analysis.Pass, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
		return false
	}
	return fn.Name() == "snapshot" || fn.Name() == "fanOut"
}

// isFanOutOrMerge reports whether the callee is banned under the
// topology lock: the package's fan-out entry points or the shared
// merge layer itself.
func isFanOutOrMerge(pass *analysis.Pass, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == pass.Pkg.Path() && (fn.Name() == "fanOut" || fn.Name() == "fanOutTopo" || fn.Name() == "mergeTopK") {
		return true
	}
	return analysis.PathHasSuffix(fn.Pkg().Path(), "internal/merge") && fn.Name() == "TopK"
}

// checkReadMethod applies rule 1 to one read method: whole-body scan,
// nested literals included (the fan-out helpers run them inline).
func checkReadMethod(pass *analysis.Pass, decl *ast.FuncDecl) {
	pinned := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev, isMu := analysis.MuEventOf(pass.TypesInfo, call); isMu {
			if isRouterMu(pass, ev) && ev.Op.Acquires() {
				pass.Reportf(call.Pos(), "read method %s acquires the topology lock; reads must serve from a pinned snapshot (Router.snapshot)", decl.Name.Name)
			}
			return true
		}
		if pinsOrFans(pass, analysis.CalleeFunc(pass.TypesInfo, call)) {
			pinned = true
		}
		return true
	})
	if !pinned {
		pass.Reportf(decl.Name.Pos(), "read method %s never pins the topology snapshot; route reads through Router.snapshot or fanOut", decl.Name.Name)
	}
}

// checkNoFanOutUnderLock applies rule 2 to one scope: linear scan,
// counting Router.mu acquisitions not yet explicitly released (a
// deferred unlock holds for the rest of the body).
func checkNoFanOutUnderLock(pass *analysis.Pass, sc analysis.FuncScope) {
	held := 0
	analysis.WalkScope(sc.Body, func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if ev, isMu := analysis.MuEventOf(pass.TypesInfo, call); isMu {
			if !isRouterMu(pass, ev) || deferred {
				return
			}
			if ev.Op.Acquires() {
				held++
			} else if held > 0 {
				held--
			}
			return
		}
		if held > 0 {
			if fn := analysis.CalleeFunc(pass.TypesInfo, call); isFanOutOrMerge(pass, fn) {
				pass.Reportf(call.Pos(), "%s calls %s while holding the topology lock; pin a snapshot and release the lock before fanning out", sc.Name(), fn.Name())
			}
		}
	})
}
