// Testdata for the snapshotpin analyzer: a miniature of the router's
// snapshot-pinned read path. Package path ends in internal/shard so
// the analyzer's scope gate admits it.
package shard

import (
	"sync"

	"a/internal/merge"
)

type topo struct {
	shards []int
}

type Router struct {
	mu  sync.RWMutex
	cur *topo
}

// snapshot is the pin; reads serve from the *topo it returns.
func (r *Router) snapshot() *topo { return r.cur }

// fanOut pins internally and visits every shard of that snapshot.
func (r *Router) fanOut(per func(int)) {
	t := r.snapshot()
	for _, s := range t.shards {
		per(s)
	}
}

func mergeTopK(a, b []int) []int { return append(a, b...) }

// TopK takes the topology lock instead of pinning — both halves of the
// read discipline broken.
func (r *Router) TopK() []int { // want "read method TopK never pins the topology snapshot"
	r.mu.RLock() // want "read method TopK acquires the topology lock"
	defer r.mu.RUnlock()
	return r.cur.shards
}

// Count is the compliant twin: pin once, read the snapshot, no lock.
func (r *Router) Count() int {
	t := r.snapshot()
	return len(t.shards)
}

// QueryBatch is compliant via fanOut (which pins internally).
func (r *Router) QueryBatch() int {
	n := 0
	r.fanOut(func(s int) { n += s })
	return n
}

// rebalance fans into the merge machinery while holding the topology
// write lock.
func (r *Router) rebalance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cur.shards = mergeTopK(r.cur.shards, nil) // want "rebalance calls mergeTopK while holding the topology lock"
}

// badMerge reaches the shared merge layer directly under the read lock.
func (r *Router) badMerge() []int {
	r.mu.RLock()
	out := merge.TopK(r.cur.shards, nil) // want "badMerge calls TopK while holding the topology lock"
	r.mu.RUnlock()
	return out
}

// goodRebuild releases the lock before merging: pin, unlock, merge.
func (r *Router) goodRebuild() []int {
	r.mu.RLock()
	t := r.cur
	r.mu.RUnlock()
	return merge.TopK(t.shards, nil)
}
