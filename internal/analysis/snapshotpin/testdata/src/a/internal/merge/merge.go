// Testdata stand-in for the real internal/merge layer.
package merge

// TopK is the shared merge entry point the analyzer bans under the
// topology lock.
func TopK(a, b []int) []int { return append(a, b...) }
