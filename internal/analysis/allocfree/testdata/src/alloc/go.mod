module alloc

go 1.24
