// Testdata for the allocfree analyzer: every static allocation shape
// inside an annotated function, each with a compliant twin.
package alloc

type sink struct{ xs []float64 }

var global any

//topk:nomalloc
func badMake(n int) []float64 {
	return make([]float64, n) // want "badMake is //topk:nomalloc but calls make"
}

//topk:nomalloc
func badNew() *sink {
	return new(sink) // want "badNew is //topk:nomalloc but calls new"
}

//topk:nomalloc
func badAppend(s *sink, x float64) {
	s.xs = append(s.xs, x) // want "badAppend is //topk:nomalloc but calls append"
}

//topk:nomalloc
func badClosure(xs []float64) float64 {
	f := func() float64 { return xs[0] } // want "badClosure is //topk:nomalloc but contains a function literal"
	return f()
}

//topk:nomalloc
func badGo(ch chan struct{}) {
	go drain(ch) // want "badGo is //topk:nomalloc but starts a goroutine"
}

//topk:nomalloc
func badAddrLit() *sink {
	return &sink{} // want "badAddrLit is //topk:nomalloc but takes the address of a composite literal"
}

//topk:nomalloc
func badBoxArg(x int) {
	consume(x) // want "badBoxArg is //topk:nomalloc but boxes a int into an interface"
}

//topk:nomalloc
func badBoxAssign(x float64) {
	global = x // want "badBoxAssign is //topk:nomalloc but boxes a float64 into an interface"
}

//topk:nomalloc
func badBoxVar(x int64) {
	var v any = x // want "badBoxVar is //topk:nomalloc but boxes a int64 into an interface"
	_ = v
}

//topk:nomalloc
func badBoxReturn(x uint32) any {
	return x // want "badBoxReturn is //topk:nomalloc but boxes a uint32 into an interface"
}

//topk:nomalloc
func badBoxVariadic(x int) {
	consumeMany("label", x) // want "badBoxVariadic is //topk:nomalloc but boxes a int into an interface"
}

// goodIndexing is the pattern annotated hot loops use instead of
// append: reslice pre-sized backing and assign by index.
//
//topk:nomalloc
func goodIndexing(dst []float64, xs []float64) []float64 {
	dst = dst[:len(xs)]
	for i := range xs {
		dst[i] = xs[i]
	}
	return dst
}

// goodBoxing: pointers, constants, nil, and interface passthrough all
// box without allocating.
//
//topk:nomalloc
func goodBoxing(s *sink, err error) {
	consume(s)
	consume(nil)
	consume("constant")
	consume(err)
	global = s
}

// unannotated allocates freely; the contract is opt-in.
func unannotated(n int) []float64 {
	out := make([]float64, 0, n)
	go func() { _ = out }()
	return append(out, 1)
}

func consume(v any)                   { global = v }
func consumeMany(s string, vs ...any) { _ = s; _ = vs }
func drain(ch chan struct{})          { <-ch }
