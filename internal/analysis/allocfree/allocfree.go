// Package allocfree enforces the static half of the //topk:nomalloc
// contract. A function annotated with the directive is a hot-path
// promise — merge's k-way cursor loop, the histogram Observe path, the
// shard router's snapshot reads — and the promise is "zero allocations
// per call, every call". This analyzer rejects every construct that is
// an allocation site BY SHAPE, before the compiler's escape analysis
// even gets a vote:
//
//   - make, new, append — append is banned even when capacity would
//     suffice at runtime, because "usually doesn't grow" is exactly the
//     regression this gate exists to catch; annotated code indexes into
//     pre-sized backing instead.
//   - function literals and `go` statements — closures capture, and a
//     goroutine allocates its stack.
//   - &CompositeLit — a composite literal whose address is taken heads
//     for the heap the moment it outlives the frame, and proving it
//     doesn't is the escape checker's job, not a reader's.
//   - boxing a non-pointer, non-constant value into an interface
//     (call arguments, assignments, returns) — the conversion
//     materializes the value in the heap-allocated iface data word.
//
// The dynamic half — compiler escape diagnostics via `go build
// -gcflags=-m`, which catches what shape analysis cannot (a &T taken
// in a callee, fmt varargs) — lives in internal/analysis/escape and
// runs as the `topkvet escapecheck` subcommand. The testing half —
// testing.AllocsPerRun == 0 over every annotated function — lives next
// to the annotated code. All three must agree before an annotation is
// believed.
package allocfree

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the allocfree rule.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //topk:nomalloc contain no static allocation sites (make/new/append/closures/go/&lit/interface boxing)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !analysis.HasDirective(fn.Doc, analysis.NomallocDirective) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //topk:nomalloc but starts a goroutine; a new goroutine allocates its stack", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //topk:nomalloc but contains a function literal; closures allocate their captures", name)
			return false // the literal's body is the closure's problem
		case *ast.UnaryExpr:
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "%s is //topk:nomalloc but takes the address of a composite literal; &T{...} is a heap candidate", name)
			}
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					checkBox(pass, name, rhs, typeOf(pass, n.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				break
			}
			dst := typeOf(pass, n.Type)
			for _, v := range n.Values {
				checkBox(pass, name, v, dst)
			}
		case *ast.ReturnStmt:
			checkReturn(pass, name, fn.Type, n)
		}
		return true
	})
}

// checkCall flags allocation builtins and interface boxing at call
// arguments.
func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is //topk:nomalloc but calls %s; allocate the backing outside the annotated function", name, id.Name)
			case "append":
				pass.Reportf(call.Pos(), "%s is //topk:nomalloc but calls append; growth allocates — index into pre-sized backing instead", name)
			}
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion, not a call
	}
	for i, arg := range call.Args {
		checkBox(pass, name, arg, paramType(sig, i, call.Ellipsis.IsValid()))
	}
}

// paramType returns the type the i-th argument lands in, unrolling the
// variadic tail: for f(xs ...T) the arguments past the fixed params
// each box/copy into T (unless the call spreads a slice with ...).
func paramType(sig *types.Signature, i int, spread bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if spread {
			return sig.Params().At(n - 1).Type()
		}
		return sig.Params().At(n - 1).Type().(*types.Slice).Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func checkReturn(pass *analysis.Pass, name string, ft *ast.FuncType, ret *ast.ReturnStmt) {
	if ft.Results == nil {
		return
	}
	var results []types.Type
	for _, field := range ft.Results.List {
		t := typeOf(pass, field.Type)
		k := len(field.Names)
		if k == 0 {
			k = 1
		}
		for range k {
			results = append(results, t)
		}
	}
	if len(ret.Results) != len(results) {
		return // naked return or multi-value call passthrough
	}
	for i, expr := range ret.Results {
		checkBox(pass, name, expr, results[i])
	}
}

// checkBox reports expr converting into a heap-boxed interface value:
// destination is an interface, the source is a concrete non-pointer
// type, and the value is not a compile-time constant (constants box
// into static data, and nil carries nothing).
func checkBox(pass *analysis.Pass, name string, expr ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	e := ast.Unparen(expr)
	if tv, ok := pass.TypesInfo.Types[e]; ok && (tv.Value != nil || tv.IsNil()) {
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if _, isConst := pass.TypesInfo.ObjectOf(id).(*types.Const); isConst {
			return
		}
	}
	src := typeOf(pass, e)
	if src == nil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // interface-to-interface and pointer boxing don't allocate
	}
	pass.Reportf(expr.Pos(), "%s is //topk:nomalloc but boxes a %s into an interface; the conversion allocates the iface payload", name, src.String())
}

// typeOf resolves an expression's type, falling back to the object
// maps for bare identifiers — Types does not record every identifier
// (definitions on the left of := live in Defs only).
func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}
