package allocfree_test

import (
	"testing"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "testdata/src/alloc")
}
