// Package benchgate turns the committed BENCH_*.json baselines into a
// blocking CI check. cmd/topkbench -json writes one row per measured
// configuration of the serving-layer experiments (e15 sharded reads,
// e17 snapshot routing, e18 cluster scatter-gather); this gate diffs a
// fresh run against the committed baseline and fails when a
// configuration regressed:
//
//   - throughput: fresh qps below (1 - maxQPSDrop) of baseline. The
//     default drop budget is deliberately generous (25%) because qps
//     moves with the machine — the gate exists to catch "half the
//     throughput after a refactor", not 3% jitter.
//   - allocations: fresh allocs/op above baseline*allocRatio +
//     allocSlack. allocs/op comes from a process-wide Mallocs delta,
//     so background noise leaks in; the slack absorbs it while still
//     catching a new allocation on a hot path (which shows up as +1
//     or more per op, far above slack).
//
// Rows are matched by (name, goroutines). A row present in the
// baseline but missing from the fresh run is a regression — silently
// dropping a measured configuration is how gates rot. Extra fresh
// rows are fine (new benchmarks land before their baselines). Reports
// from different modes never compare: a -quick run has different
// sweep sizes than a full one, so the gate refuses the diff instead
// of "passing" it.
//
// Run as `topkvet benchgate -baseline BENCH_e15.json -fresh fresh/BENCH_e15.json`.
package benchgate

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Report mirrors the BENCH_<exp>.json shape cmd/topkbench writes.
type Report struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	Rows       []Row  `json:"rows"`
}

// Row is one measured configuration.
type Row struct {
	Name        string  `json:"name"`
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	QPS         float64 `json:"qps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Options are the regression thresholds.
type Options struct {
	// MaxQPSDrop is the tolerated fractional throughput drop (0.25 =
	// fresh may be 25% slower before the gate fires).
	MaxQPSDrop float64
	// AllocRatio is the tolerated multiplicative allocs/op growth.
	AllocRatio float64
	// AllocSlack is the tolerated absolute allocs/op growth on top of
	// the ratio; absorbs MemStats noise on near-zero baselines.
	AllocSlack float64
}

// DefaultOptions are the CI thresholds.
func DefaultOptions() Options {
	return Options{MaxQPSDrop: 0.25, AllocRatio: 1.10, AllocSlack: 0.5}
}

// Regression is one failed comparison.
type Regression struct {
	Experiment string
	Name       string
	Goroutines int
	Reason     string
}

func (r Regression) String() string {
	return fmt.Sprintf("[benchgate] %s %q g=%d: %s", r.Experiment, r.Name, r.Goroutines, r.Reason)
}

type rowKey struct {
	name       string
	goroutines int
}

// Compare diffs fresh against baseline under opts. The error return
// is for structural mismatches (different experiments or modes) that
// make the diff meaningless.
func Compare(baseline, fresh Report, opts Options) ([]Regression, error) {
	if baseline.Experiment != fresh.Experiment {
		return nil, fmt.Errorf("experiment mismatch: baseline %q vs fresh %q", baseline.Experiment, fresh.Experiment)
	}
	if baseline.Quick != fresh.Quick {
		return nil, fmt.Errorf("mode mismatch: baseline quick=%v vs fresh quick=%v — quick and full sweeps are not comparable", baseline.Quick, fresh.Quick)
	}
	freshRows := map[rowKey]Row{}
	for _, r := range fresh.Rows {
		freshRows[rowKey{r.Name, r.Goroutines}] = r
	}
	var regs []Regression
	for _, base := range baseline.Rows {
		cur, ok := freshRows[rowKey{base.Name, base.Goroutines}]
		if !ok {
			regs = append(regs, Regression{
				Experiment: baseline.Experiment, Name: base.Name, Goroutines: base.Goroutines,
				Reason: "row missing from fresh run; a measured configuration disappeared",
			})
			continue
		}
		if floor := base.QPS * (1 - opts.MaxQPSDrop); cur.QPS < floor {
			regs = append(regs, Regression{
				Experiment: baseline.Experiment, Name: base.Name, Goroutines: base.Goroutines,
				Reason: fmt.Sprintf("qps %.0f below floor %.0f (baseline %.0f, budget -%.0f%%)",
					cur.QPS, floor, base.QPS, opts.MaxQPSDrop*100),
			})
		}
		if ceil := base.AllocsPerOp*opts.AllocRatio + opts.AllocSlack; cur.AllocsPerOp > ceil {
			regs = append(regs, Regression{
				Experiment: baseline.Experiment, Name: base.Name, Goroutines: base.Goroutines,
				Reason: fmt.Sprintf("allocs/op %.2f above ceiling %.2f (baseline %.2f)",
					cur.AllocsPerOp, ceil, base.AllocsPerOp),
			})
		}
	}
	return regs, nil
}

// ReadReport loads one BENCH_<exp>.json.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %v", path, err)
	}
	if r.Experiment == "" || len(r.Rows) == 0 {
		return Report{}, fmt.Errorf("%s: not a topkbench report (missing experiment or rows)", path)
	}
	return r, nil
}

// Main runs the gate as the `topkvet benchgate` subcommand and
// returns the process exit code: 0 clean, 1 regressions, 2
// operational failure.
func Main(args []string) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "committed BENCH_<exp>.json to compare against")
	freshPath := fs.String("fresh", "", "freshly generated BENCH_<exp>.json")
	maxDrop := fs.Float64("max-qps-drop", DefaultOptions().MaxQPSDrop, "tolerated fractional qps drop before failing")
	allocRatio := fs.Float64("alloc-ratio", DefaultOptions().AllocRatio, "tolerated multiplicative allocs/op growth")
	allocSlack := fs.Float64("alloc-slack", DefaultOptions().AllocSlack, "tolerated absolute allocs/op growth on top of the ratio")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: topkvet benchgate -baseline BENCH_eXX.json -fresh path/BENCH_eXX.json\n\n"+
				"Diffs a fresh topkbench -json report against the committed baseline and\n"+
				"fails on qps or allocs/op regressions.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" || *freshPath == "" {
		fs.Usage()
		return 2
	}
	baseline, err := ReadReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkvet benchgate: %v\n", err)
		return 2
	}
	fresh, err := ReadReport(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkvet benchgate: %v\n", err)
		return 2
	}
	regs, err := Compare(baseline, fresh, Options{MaxQPSDrop: *maxDrop, AllocRatio: *allocRatio, AllocSlack: *allocSlack})
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkvet benchgate: %v\n", err)
		return 2
	}
	for _, r := range regs {
		fmt.Println(r)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "topkvet benchgate: %d regression(s) in %s (%d baseline rows)\n",
			len(regs), baseline.Experiment, len(baseline.Rows))
		return 1
	}
	fmt.Printf("topkvet benchgate: %s clean (%d rows compared)\n", baseline.Experiment, len(baseline.Rows))
	return 0
}
