package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(exp string, quick bool, rows ...Row) Report {
	return Report{Experiment: exp, Quick: quick, Rows: rows}
}

func row(name string, g int, qps, allocs float64) Row {
	return Row{Name: name, Goroutines: g, Ops: 1000, QPS: qps, AllocsPerOp: allocs}
}

func TestCompareClean(t *testing.T) {
	base := report("e15", false, row("shards=4", 8, 100000, 12))
	fresh := report("e15", false, row("shards=4", 8, 98000, 12.3))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("clean diff produced regressions: %v", regs)
	}
}

func TestCompareQPSDrop(t *testing.T) {
	base := report("e15", false, row("shards=4", 8, 100000, 12))
	fresh := report("e15", false, row("shards=4", 8, 60000, 12))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "qps") {
		t.Fatalf("40%% qps drop not caught: %v", regs)
	}
}

func TestCompareQPSWithinBudget(t *testing.T) {
	base := report("e15", false, row("shards=4", 8, 100000, 12))
	fresh := report("e15", false, row("shards=4", 8, 80000, 12))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("20%% drop is inside the 25%% budget, got %v", regs)
	}
}

func TestCompareAllocGrowth(t *testing.T) {
	base := report("e17", false, row("readers=16", 16, 50000, 2))
	fresh := report("e17", false, row("readers=16", 16, 50000, 4))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "allocs/op") {
		t.Fatalf("doubled allocs/op not caught: %v", regs)
	}
}

func TestCompareAllocNoiseTolerated(t *testing.T) {
	// Near-zero baselines wobble by fractions of an alloc from MemStats
	// noise; the slack absorbs that.
	base := report("e17", false, row("readers=16", 16, 50000, 0.1))
	fresh := report("e17", false, row("readers=16", 16, 50000, 0.4))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-slack alloc noise flagged: %v", regs)
	}
}

func TestCompareMissingRow(t *testing.T) {
	base := report("e18", false, row("nodes=2", 8, 30000, 40), row("nodes=4", 8, 20000, 60))
	fresh := report("e18", false, row("nodes=2", 8, 30000, 40))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "missing") {
		t.Fatalf("vanished configuration not caught: %v", regs)
	}
}

func TestCompareExtraFreshRowOK(t *testing.T) {
	base := report("e18", false, row("nodes=2", 8, 30000, 40))
	fresh := report("e18", false, row("nodes=2", 8, 30000, 40), row("nodes=8", 8, 10000, 90))
	regs, err := Compare(base, fresh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("new fresh row flagged: %v", regs)
	}
}

func TestCompareModeMismatch(t *testing.T) {
	base := report("e15", false, row("shards=4", 8, 100000, 12))
	fresh := report("e15", true, row("shards=4", 8, 100000, 12))
	if _, err := Compare(base, fresh, DefaultOptions()); err == nil {
		t.Fatal("quick-vs-full diff must be refused, not passed")
	}
}

func TestCompareExperimentMismatch(t *testing.T) {
	base := report("e15", false, row("shards=4", 8, 100000, 12))
	fresh := report("e17", false, row("shards=4", 8, 100000, 12))
	if _, err := Compare(base, fresh, DefaultOptions()); err == nil {
		t.Fatal("cross-experiment diff must be refused")
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_e15.json")
	body := `{"experiment":"e15","quick":false,"rows":[{"name":"shards=4","goroutines":8,"ops":1000,"qps":1,"ns_per_op":2,"allocs_per_op":3}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Experiment != "e15" || len(r.Rows) != 1 || r.Rows[0].AllocsPerOp != 3 {
		t.Fatalf("round trip mangled the report: %+v", r)
	}
	if _, err := ReadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"rows":[]}`), 0o644)
	if _, err := ReadReport(bad); err == nil {
		t.Fatal("reports without experiment/rows must be rejected")
	}
}
