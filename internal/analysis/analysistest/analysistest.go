// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` annotations — the
// same contract as golang.org/x/tools/go/analysis/analysistest, on
// this module's dependency-free framework.
//
// Layout: each analyzer keeps `testdata/src/<pkg>/` trees next to its
// test file. Every tree is its own tiny Go module (the go command
// never walks directories named testdata, so they are invisible to
// `go build ./...` at the repo root), and the analyzer is run over
// explicit relative directory patterns inside it. A line expecting a
// finding carries a trailing `// want "regexp"` comment (several
// regexps for several findings); every diagnostic must be wanted and
// every want must be matched, so the testdata doubles as a catalog of
// one violation and one compliant twin per rule.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the module rooted at dir (typically "testdata/src/<name>"),
// analyzes the packages named by patterns (default "./...") with a,
// and asserts the findings equal the // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, dir string, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		t.Fatalf("loading %s %v: %v", dir, patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s match %v", dir, patterns)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		checkDiagnostics(t, pkg.Fset, diags, wants)
	}
}

// want is one expected-finding annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses the `// want "re" ["re" ...]` comments of every
// file in pkg.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(text)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWant splits one or more Go-quoted regexps.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		// Find the closing quote of this Go string literal.
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		lit := s[:end+1]
		s = s[end+1:]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %v", lit, err)
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no regexps")
	}
	return out, nil
}

// checkDiagnostics pairs findings with wants by (file, line) and
// regexp match, then reports both leftovers.
func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.re)
		}
	}
}
