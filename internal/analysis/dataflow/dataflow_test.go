package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one source string as a package and returns what a
// Pass would carry.
func load(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, info
}

// findUse returns the use-site identifier with the given name inside
// the function named fn.
func findUse(t *testing.T, files []*ast.File, info *types.Info, fn, name string) *ast.Ident {
	t.Helper()
	var out *ast.Ident
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == name {
					if _, isUse := info.Uses[id]; isUse {
						out = id
					}
				}
				return true
			})
		}
	}
	if out == nil {
		t.Fatalf("no use of %q in %s", name, fn)
	}
	return out
}

// render pretty-prints an expression set to comparable strings.
func render(fset *token.FileSet, exprs []ast.Expr) map[string]bool {
	out := map[string]bool{}
	for _, e := range exprs {
		start, end := fset.Position(e.Pos()), fset.Position(e.End())
		out[startEnd(start, end)] = true
	}
	return out
}

func startEnd(a, b token.Position) string {
	return a.String() + "-" + b.String()
}

func TestSourcesMultiHop(t *testing.T) {
	src := `package p
func origin() string { return "x" }
func f() string {
	a := origin()
	b := a
	c := b
	return c
}`
	fset, files, info := load(t, src)
	g := New(info, files)
	use := findUse(t, files, info, "f", "c")

	// Depth 1: c -> b only.
	s1 := g.Sources(info, use, 1)
	if len(s1) != 2 {
		t.Fatalf("depth 1: want 2 exprs (c and its binding), got %d: %v", len(s1), render(fset, s1))
	}
	// Depth 3: c -> b -> a -> origin().
	s3 := g.Sources(info, use, 3)
	if len(s3) != 4 {
		t.Fatalf("depth 3: want 4 exprs along the chain, got %d", len(s3))
	}
	found := false
	for _, e := range s3 {
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "origin" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("depth 3 chain never reached the origin() call")
	}
}

func TestSourcesRecordsEveryBinding(t *testing.T) {
	src := `package p
func f(cond bool) string {
	x := "const"
	if cond {
		x = dynamic()
	}
	return x
}
func dynamic() string { return "d" }`
	_, files, info := load(t, src)
	g := New(info, files)
	use := findUse(t, files, info, "f", "x")
	srcs := g.Sources(info, use, 2)
	// x itself + both bindings: the last-write-wins map of the old
	// one-hop scan would have kept only one.
	if len(srcs) != 3 {
		t.Fatalf("want both bindings of x in the chain, got %d exprs", len(srcs))
	}
}

func TestSourcesMultiValueAssign(t *testing.T) {
	src := `package p
func two() (string, int) { return "s", 1 }
func f() string {
	s, _ := two()
	return s
}`
	_, files, info := load(t, src)
	g := New(info, files)
	use := findUse(t, files, info, "f", "s")
	srcs := g.Sources(info, use, 1)
	foundCall := false
	for _, e := range srcs {
		if _, ok := e.(*ast.CallExpr); ok {
			foundCall = true
		}
	}
	if !foundCall {
		t.Fatalf("multi-value binding did not record the producing call")
	}
}

func TestSourcesRangeClause(t *testing.T) {
	src := `package p
func f(items []string) string {
	out := ""
	for _, it := range items {
		out = it
	}
	return out
}`
	_, files, info := load(t, src)
	g := New(info, files)
	use := findUse(t, files, info, "f", "out")
	// out <- it <- items (range operand), three hops of evidence.
	srcs := g.Sources(info, use, 3)
	foundItems := false
	for _, e := range srcs {
		if id, ok := e.(*ast.Ident); ok && id.Name == "items" {
			foundItems = true
		}
	}
	if !foundItems {
		t.Fatalf("range clause did not connect the element var to the range operand")
	}
}

func TestUsesDefUseChain(t *testing.T) {
	src := `package p
func f() int {
	n := 1
	a := n + 1
	b := n + 2
	return a + b
}`
	_, files, info := load(t, src)
	g := New(info, files)
	use := findUse(t, files, info, "f", "n")
	v, _ := info.Uses[use].(*types.Var)
	if v == nil {
		t.Fatal("no var for n")
	}
	if got := len(g.Uses(v)); got != 2 {
		t.Fatalf("want 2 uses of n, got %d", got)
	}
	if got := len(g.Bindings(v)); got != 1 {
		t.Fatalf("want 1 binding of n, got %d", got)
	}
}

func TestFlowsFromCall(t *testing.T) {
	src := `package p
import "context"
func f() context.Context {
	bg := context.Background()
	ctx := wrap(bg)
	return ctx
}
func g(parent context.Context) context.Context {
	ctx := wrap(parent)
	return ctx
}
func wrap(c context.Context) context.Context { return c }`
	_, files, info := load(t, src)
	g := New(info, files)
	isBackground := func(fn *types.Func) bool {
		return fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Background"
	}

	ctxInF := findUse(t, files, info, "f", "ctx")
	if !g.FlowsFromCall(info, ctxInF, 3, isBackground) {
		t.Fatal("f's ctx derives from Background through two hops; not detected")
	}
	ctxInG := findUse(t, files, info, "g", "ctx")
	if g.FlowsFromCall(info, ctxInG, 3, isBackground) {
		t.Fatal("g's ctx derives from its parameter, not Background; false positive")
	}
}

func TestSourcesDepthZero(t *testing.T) {
	src := `package p
func f() int { x := 1; return x }`
	_, files, info := load(t, src)
	g := New(info, files)
	use := findUse(t, files, info, "f", "x")
	if got := g.Sources(info, use, 0); len(got) != 1 {
		t.Fatalf("depth 0 must return only the expression itself, got %d", len(got))
	}
}
