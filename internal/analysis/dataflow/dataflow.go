// Package dataflow is the shared value-flow layer of the analysis
// framework: def-use chains over go/types objects, and bounded
// transitive expansion of an expression into the set of expressions
// whose values can reach it through local assignments.
//
// Before this package each analyzer re-implemented its own provenance
// step — boundedlabel traced exactly one assignment hop with a
// last-write-wins map, sentinelerr saw only the literal comparison
// operand, ctxflow saw only parameters. The graph here replaces those
// ad-hoc scans with one shared, slightly stronger model:
//
//   - every binding of a variable is recorded (AssignStmt, ValueSpec,
//     and range clauses), not just the textually last one, so a value
//     that MAY be request-derived on one path is still visible;
//   - expansion is transitive to a caller-chosen depth, so
//     `p := r.URL.Path; q := p; use(q)` traces back to the request in
//     two hops where the old one-hop scan stopped at `p`;
//   - def-use is exposed in both directions (bindings of a var, uses
//     of a var), so analyzers can ask "where does this value come
//     from" and "where does this value go" with the same graph.
//
// The model is deliberately flow-insensitive and intra-package — the
// same altitude as the rest of the framework (single-package
// syntax+types passes, no SSA). That is exactly enough for the
// invariants checked here: provenance questions ("does this label
// derive from the request", "is this operand a sentinel alias", "is
// there an independent context in reach") where an over-approximation
// errs toward reporting, and the testdata keeps false positives pinned
// to zero on the shapes the tree actually uses.
package dataflow

import (
	"go/ast"
	"go/types"
)

// Graph is the per-package value-flow graph: for every variable, the
// expressions bound to it and the identifiers that read it. Build one
// per pass with New and share it across the file walk.
type Graph struct {
	bindings map[*types.Var][]ast.Expr
	uses     map[*types.Var][]*ast.Ident
}

// New builds the graph for one type-checked package.
func New(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		bindings: map[*types.Var][]ast.Expr{},
		uses:     map[*types.Var][]*ast.Ident{},
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				g.recordAssign(info, n)
			case *ast.ValueSpec:
				g.recordSpec(info, n)
			case *ast.RangeStmt:
				// Key and value are bound from elements of the range
				// operand; the operand expression is their source.
				g.record(info, n.Key, n.X)
				g.record(info, n.Value, n.X)
			case *ast.Ident:
				if v, ok := info.Uses[n].(*types.Var); ok {
					g.uses[v] = append(g.uses[v], n)
				}
			}
			return true
		})
	}
	return g
}

// recordAssign records `lhs = rhs` and `lhs := rhs` bindings. A
// multi-value assignment (`a, b := f()`) binds every left-hand side to
// the producing expression — the value flowed out of that call even if
// the graph cannot name which result.
func (g *Graph) recordAssign(info *types.Info, n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			g.record(info, n.Lhs[i], n.Rhs[i])
		}
		return
	}
	if len(n.Rhs) == 1 {
		for _, lhs := range n.Lhs {
			g.record(info, lhs, n.Rhs[0])
		}
	}
}

// recordSpec records `var x = expr` bindings, including the
// multi-value `var a, b = f()` form.
func (g *Graph) recordSpec(info *types.Info, n *ast.ValueSpec) {
	if len(n.Names) == len(n.Values) {
		for i := range n.Names {
			g.record(info, n.Names[i], n.Values[i])
		}
		return
	}
	if len(n.Values) == 1 {
		for _, name := range n.Names {
			g.record(info, name, n.Values[0])
		}
	}
}

// record binds one LHS expression to src when the LHS is a plain
// identifier naming a variable. Field and index writes (x.f = ...,
// m[k] = ...) are out of the model: they mutate through the variable,
// they do not rebind it.
func (g *Graph) record(info *types.Info, lhs ast.Expr, src ast.Expr) {
	if lhs == nil || src == nil {
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	var v *types.Var
	if dv, ok := info.Defs[id].(*types.Var); ok {
		v = dv
	} else if uv, ok := info.Uses[id].(*types.Var); ok {
		v = uv
	}
	if v == nil {
		return
	}
	g.bindings[v] = append(g.bindings[v], src)
}

// Bindings returns every expression bound to v, in source order.
func (g *Graph) Bindings(v *types.Var) []ast.Expr { return g.bindings[v] }

// Uses returns every identifier that reads v, in source order — the
// use half of the def-use chain.
func (g *Graph) Uses(v *types.Var) []*ast.Ident { return g.uses[v] }

// VarOf resolves an expression to the variable it names: an
// identifier, possibly parenthesized. Nil for anything else.
func VarOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// Sources returns e followed by every expression whose value can flow
// into e through at most depth hops of local assignment: each hop
// resolves the variables named by the frontier expressions and adds
// their bindings. The result is deduplicated and includes e itself, so
// callers can apply one predicate uniformly over "the expression and
// everything it may have come from".
func (g *Graph) Sources(info *types.Info, e ast.Expr, depth int) []ast.Expr {
	out := []ast.Expr{e}
	seenExpr := map[ast.Expr]bool{e: true}
	seenVar := map[*types.Var]bool{}
	frontier := []ast.Expr{e}
	for hop := 0; hop < depth && len(frontier) > 0; hop++ {
		var next []ast.Expr
		for _, f := range frontier {
			for _, v := range varsOf(info, f) {
				if seenVar[v] {
					continue
				}
				seenVar[v] = true
				for _, b := range g.bindings[v] {
					if seenExpr[b] {
						continue
					}
					seenExpr[b] = true
					out = append(out, b)
					next = append(next, b)
				}
			}
		}
		frontier = next
	}
	return out
}

// varsOf collects the variables a frontier expression reads. For a
// plain identifier that is just the named variable; for a composite
// expression every identifier inside it counts — the value was
// computed from all of them.
func varsOf(info *types.Info, e ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// FlowsFromCall reports whether any expression in the ≤depth source
// chain of e contains a call to a function matching match. Analyzers
// use it for "was this value minted by X" questions — e.g. ctxflow's
// "is this context derived from the fresh Background() it is about to
// flag" — without re-implementing the chain walk.
func (g *Graph) FlowsFromCall(info *types.Info, e ast.Expr, depth int, match func(*types.Func) bool) bool {
	for _, src := range g.Sources(info, e, depth) {
		found := false
		ast.Inspect(src, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && match(fn) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// calleeFunc mirrors analysis.CalleeFunc without importing the parent
// package (dataflow sits below it in the layering; analyzers import
// both).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
