module c

go 1.24
