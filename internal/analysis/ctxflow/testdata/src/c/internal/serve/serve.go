// Testdata for the ctxflow analyzer: handlers with a caller context in
// reach must thread it. Package path ends in internal/serve so the
// analyzer's scope gate admits it.
package serve

import (
	"context"
	"net/http"
)

func badHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background"
	_ = ctx
}

func badClosure(ctx context.Context) {
	go func() {
		_ = context.TODO() // want "context.TODO"
	}()
	_ = ctx
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
}

// goodPoller has no caller context in reach; minting Background here
// is the legitimate pattern (mirrors the cluster health prober).
func goodPoller() {
	ctx := context.Background()
	_ = ctx
}

// goodInnerCtx: the closure introduces its own context parameter, so
// the enclosing request context is shadowed by a nearer source — and
// threading that one is what the closure should do.
func goodInnerCtx(r *http.Request) {
	run := func(ctx context.Context) error { return ctx.Err() }
	_ = run(r.Context())
}

type client struct {
	base context.Context
}

// badFieldEvidence has no ctx parameter, but it touches the receiver's
// stored context — independent evidence, traced by the dataflow graph,
// that a caller context is in reach. The old parameter-only rule
// missed this shape entirely.
func (c *client) badFieldEvidence() {
	parent := c.base
	_ = parent
	ctx := context.Background() // want "context.Background"
	_ = ctx
}

// goodMintedOnly mirrors the health prober: the only context-typed
// value in the function is derived from the Background it mints, so it
// is not evidence against itself.
func (c *client) goodMintedOnly() {
	ctx, cancel := withCancel(context.Background())
	defer cancel()
	_ = ctx
}

func withCancel(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(parent)
}
