// Testdata for the ctxflow analyzer: handlers with a caller context in
// reach must thread it. Package path ends in internal/serve so the
// analyzer's scope gate admits it.
package serve

import (
	"context"
	"net/http"
)

func badHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background"
	_ = ctx
}

func badClosure(ctx context.Context) {
	go func() {
		_ = context.TODO() // want "context.TODO"
	}()
	_ = ctx
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
}

// goodPoller has no caller context in reach; minting Background here
// is the legitimate pattern (mirrors the cluster health prober).
func goodPoller() {
	ctx := context.Background()
	_ = ctx
}

// goodInnerCtx: the closure introduces its own context parameter, so
// the enclosing request context is shadowed by a nearer source — and
// threading that one is what the closure should do.
func goodInnerCtx(r *http.Request) {
	run := func(ctx context.Context) error { return ctx.Err() }
	_ = run(r.Context())
}
