// Package ctxflow enforces context threading on the request paths: in
// internal/serve (the HTTP handlers) and internal/cluster (the remote
// Store client), a function that already has a caller context in reach
// must not mint a fresh context.Background() or context.TODO(). A
// background context on a request path detaches the downstream RPC
// from the client: the gateway keeps fanning out to shards for a
// caller that hung up, and per-request deadlines silently stop
// propagating across the tier.
//
// "In reach" is computed from two sources of evidence:
//
//   - a context.Context or *http.Request parameter (the request
//     carries the client disconnect via r.Context()), as before;
//   - any other context-typed value the function actually touches — a
//     receiver field (c.baseCtx), a captured variable, a local bound
//     from one of those — provided the shared dataflow graph
//     (internal/analysis/dataflow) cannot trace that value back to a
//     context.Background()/TODO() minted in the same function. Without
//     the provenance check the prober's own `ctx, cancel :=
//     c.callCtx(context.Background())` would count as evidence against
//     the very call that created it.
//
// Enclosing scopes count: a closure inside a handler captures the
// handler's request, so minting Background there is the same bug.
// Functions with no context in reach (the health prober's periodic
// loop, constructors) are the legitimate home of context.Background
// and stay unflagged.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the ctxflow rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "serve and cluster request paths thread the caller's context; no context.Background with a ctx or request in reach",
	Run:  run,
}

// mintDepth bounds the provenance walk that separates independent
// context evidence from contexts derived from the mint under scrutiny.
const mintDepth = 3

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg.Path()
	if !analysis.PathHasSuffix(pkg, "internal/serve") && !analysis.PathHasSuffix(pkg, "internal/cluster") {
		return nil
	}
	graph := dataflow.New(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				check(pass, graph, fn.Body, ctxSource(pass, fn.Type))
			}
		}
	}
	return nil
}

// ctxSource names the parameter that makes a caller context reachable
// in a function with this signature: a context.Context or an
// *http.Request (via r.Context()). Empty means none.
func ctxSource(pass *analysis.Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		pkgPath, name := analysis.NamedType(tv.Type)
		switch pkgPath + "." + name {
		case "context.Context":
			return "context.Context"
		case "net/http.Request":
			return "*http.Request"
		}
	}
	return ""
}

// check walks one body. source is the innermost reachable context
// parameter ("" if none); closures inherit it — they capture the
// enclosing function's variables — and may introduce their own. When
// no parameter is in reach, independent context-typed evidence in the
// scope (a receiver field, a captured ctx variable) still counts.
func check(pass *analysis.Pass, graph *dataflow.Graph, body *ast.BlockStmt, source string) {
	evidence := source
	if evidence == "" {
		evidence = independentContext(pass, graph, body)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxSource(pass, n.Type)
			if inner == "" {
				inner = evidence
			}
			check(pass, graph, n.Body, inner)
			return false
		case *ast.CallExpr:
			if evidence == "" {
				return true
			}
			if name := freshContext(pass, n); name != "" {
				pass.Reportf(n.Pos(), "context.%s() on a request path with a %s in reach; thread the caller's context instead", name, evidence)
			}
		}
		return true
	})
}

// independentContext scans the scope's own statements (nested function
// literals excluded — they are checked as their own scopes) for a
// context-typed expression that is NOT derived from a Background/TODO
// minted locally, and returns a description of the first one found.
// Empty means the scope has no independent context in reach.
func independentContext(pass *analysis.Pass, graph *dataflow.Graph, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return true
		}
		if pkgPath, name := analysis.NamedType(tv.Type); pkgPath+"."+name != "context.Context" {
			return true
		}
		if graph.FlowsFromCall(pass.TypesInfo, e, mintDepth, isFreshContextFunc) {
			return true // minted here; not independent evidence
		}
		found = "context.Context value (" + exprString(e) + ")"
		return false
	})
	return found
}

// exprString renders the evidence expression for the diagnostic
// without dragging in go/printer: identifiers and one selector level
// cover everything the rule matches.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "ctx"
}

// isFreshContextFunc matches context.Background and context.TODO.
func isFreshContextFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// freshContext reports a call to context.Background or context.TODO.
func freshContext(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !isFreshContextFunc(fn) {
		return ""
	}
	return fn.Name()
}
