// Package ctxflow enforces context threading on the request paths: in
// internal/serve (the HTTP handlers) and internal/cluster (the remote
// Store client), a function that already has a caller context in reach
// — a context.Context parameter, or an *http.Request whose Context()
// carries the client disconnect — must not mint a fresh
// context.Background() or context.TODO(). A background context on a
// request path detaches the downstream RPC from the client: the
// gateway keeps fanning out to shards for a caller that hung up, and
// per-request deadlines silently stop propagating across the tier.
//
// Enclosing scopes count: a closure inside a handler captures the
// handler's request, so minting Background there is the same bug.
// Functions with no context in reach (the health prober's periodic
// loop, constructors) are the legitimate home of context.Background
// and stay unflagged.
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "serve and cluster request paths thread the caller's context; no context.Background with a ctx or request in scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg.Path()
	if !analysis.PathHasSuffix(pkg, "internal/serve") && !analysis.PathHasSuffix(pkg, "internal/cluster") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				check(pass, fn.Body, ctxSource(pass, fn.Type))
			}
		}
	}
	return nil
}

// ctxSource names the parameter that makes a caller context reachable
// in a function with this signature: a context.Context or an
// *http.Request (via r.Context()). Empty means none.
func ctxSource(pass *analysis.Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		pkgPath, name := analysis.NamedType(tv.Type)
		switch pkgPath + "." + name {
		case "context.Context":
			return "context.Context"
		case "net/http.Request":
			return "*http.Request"
		}
	}
	return ""
}

// check walks one body. source is the innermost reachable context
// parameter ("" if none); closures inherit it — they capture the
// enclosing function's variables — and may introduce their own.
func check(pass *analysis.Pass, body *ast.BlockStmt, source string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxSource(pass, n.Type)
			if inner == "" {
				inner = source
			}
			check(pass, n.Body, inner)
			return false
		case *ast.CallExpr:
			if source == "" {
				return true
			}
			if name := freshContext(pass, n); name != "" {
				pass.Reportf(n.Pos(), "context.%s() on a request path with a %s in scope; thread the caller's context instead", name, source)
			}
		}
		return true
	})
}

// freshContext reports a call to context.Background or context.TODO.
func freshContext(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}
