// Package analysis is the project's static-analysis framework: a
// deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API, plus the package loader and
// multichecker driver that run a suite of analyzers over the module.
//
// Why not x/tools itself? The repo builds hermetically — go.mod has no
// requirements and CI needs nothing beyond the toolchain — and the
// subset of the upstream API the project linter needs (typed ASTs per
// package, a Pass, Diagnostics, a testdata harness with // want
// annotations) is tiny. The shapes below match upstream exactly where
// they overlap (Analyzer{Name, Doc, Run}, Pass{Fset, Files, Pkg,
// TypesInfo, Report}), so migrating to x/tools later is a mechanical
// import swap, not a rewrite. What is intentionally NOT mirrored:
// facts, dependencies between analyzers, and suggested fixes — the
// invariants checked here (see cmd/topkvet) are all expressible as
// single-package syntax+types passes.
//
// The loader (load.go) shells out to `go list -export -deps -json` for
// package structure and compiled export data, then parses and
// type-checks the target packages from source with go/types — the same
// strategy x/tools/go/packages uses, minus the cgo and overlay
// machinery this module never needs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker. Mirrors
// x/tools/go/analysis.Analyzer minus facts and requires.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -skip flags; a
	// short lowercase identifier ("lockorder").
	Name string
	// Doc is the one-paragraph rule description shown by `topkvet -list`.
	Doc string
	// Run executes the analyzer on one package. Diagnostics go through
	// pass.Report; the error return is for operational failures only
	// (they abort the run), never for findings.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run. Mirrors the
// x/tools Pass shape.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// prefixes the owning analyzer's name when printing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// PathHasSuffix reports whether a package import path is path-suffix
// anchored at suffix: equal to it, or ending in "/"+suffix. Analyzers
// scope themselves with this ("internal/shard") instead of exact
// paths, so the analysistest testdata modules — whose module prefix
// differs — exercise the same matching as the real tree.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// NamedType returns the package path and name of t's core named type,
// unwrapping one level of pointer and any alias. ("", "") when t is
// not a named type.
func NamedType(t types.Type) (pkgPath, name string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// ReceiverOf returns the expression and named-type identity of a
// method call's receiver: for a call whose Fun is `x.Sel`, it returns
// x and NamedType(typeof x). ok is false for non-selector calls or
// untyped receivers.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (recv ast.Expr, pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found {
		return nil, "", "", false
	}
	pkgPath, name = NamedType(tv.Type)
	if name == "" {
		return nil, "", "", false
	}
	return sel.X, pkgPath, name, true
}

// CalleeFunc resolves a call expression to the function or method
// object it invokes, or nil for calls through function values,
// conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// HasDirective reports whether a doc comment group carries the given
// comment directive. Directives follow the toolchain's convention
// (`//go:noinline`): no space after the slashes, so a prose mention of
// the directive in a regular comment does not arm the rule.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSuffix(c.Text, "\r")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// NomallocDirective marks a function whose body must not allocate: the
// allocfree analyzer rejects static allocation sites inside it, and
// the escapecheck driver rejects compiler-reported escapes to heap.
const NomallocDirective = "//topk:nomalloc"

// IsErrorType reports whether t is the error interface or implements
// it (pointer receivers included, since sentinel values are interface
// values in practice).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}
