// Package verify provides the brute-force reference oracle and shared
// assertion helpers used by integration tests and the experiment
// harness to validate every structure against first principles.
package verify

import (
	"fmt"

	"repro/internal/point"
)

// Oracle is a plain-slice reference implementation of dynamic top-k
// range reporting.
type Oracle struct {
	pts []point.P
}

// NewOracle returns an oracle seeded with pts.
func NewOracle(pts []point.P) *Oracle {
	return &Oracle{pts: append([]point.P(nil), pts...)}
}

// Len returns the live size.
func (o *Oracle) Len() int { return len(o.pts) }

// Insert adds p.
func (o *Oracle) Insert(p point.P) { o.pts = append(o.pts, p) }

// Delete removes p, reporting presence.
func (o *Oracle) Delete(p point.P) bool {
	for i, q := range o.pts {
		if q == p {
			o.pts = append(o.pts[:i], o.pts[i+1:]...)
			return true
		}
	}
	return false
}

// TopK answers a query by scan + sort.
func (o *Oracle) TopK(x1, x2 float64, k int) []point.P {
	return point.TopK(o.pts, x1, x2, k)
}

// Count returns |S ∩ [x1,x2]|.
func (o *Oracle) Count(x1, x2 float64) int {
	n := 0
	for _, p := range o.pts {
		if p.In(x1, x2) {
			n++
		}
	}
	return n
}

// RankOf returns |{p ∈ S∩q : score(p) ≥ tau}|.
func (o *Oracle) RankOf(x1, x2, tau float64) int {
	n := 0
	for _, p := range o.pts {
		if p.In(x1, x2) && p.Score >= tau {
			n++
		}
	}
	return n
}

// Live returns a copy of the live set.
func (o *Oracle) Live() []point.P { return append([]point.P(nil), o.pts...) }

// SameSet reports whether a and b contain the same multiset of points.
func SameSet(a, b []point.P) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[point.P]int, len(a))
	for _, p := range a {
		m[p]++
	}
	for _, p := range b {
		if m[p]--; m[p] < 0 {
			return false
		}
	}
	return true
}

// SortedDesc reports whether pts is sorted by non-increasing score.
func SortedDesc(pts []point.P) bool {
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Score < pts[i].Score {
			return false
		}
	}
	return true
}

// DiffTopK explains the first discrepancy between a structure's answer
// and the oracle's, or returns nil when they agree as sets.
func DiffTopK(got, want []point.P) error {
	if SameSet(got, want) {
		return nil
	}
	if len(got) != len(want) {
		return fmt.Errorf("size mismatch: got %d, want %d", len(got), len(want))
	}
	m := map[point.P]bool{}
	for _, p := range want {
		m[p] = true
	}
	for _, p := range got {
		if !m[p] {
			return fmt.Errorf("unexpected point %+v in answer", p)
		}
	}
	return fmt.Errorf("answer misses expected points")
}
