package verify

import (
	"testing"

	"repro/internal/point"
)

func TestOracleLifecycle(t *testing.T) {
	o := NewOracle([]point.P{{X: 1, Score: 10}, {X: 2, Score: 20}})
	if o.Len() != 2 {
		t.Fatal("len")
	}
	o.Insert(point.P{X: 3, Score: 30})
	if !o.Delete(point.P{X: 1, Score: 10}) {
		t.Fatal("delete")
	}
	if o.Delete(point.P{X: 1, Score: 10}) {
		t.Fatal("double delete")
	}
	got := o.TopK(0, 10, 5)
	if len(got) != 2 || got[0].Score != 30 || got[1].Score != 20 {
		t.Fatalf("topk: %v", got)
	}
	if o.Count(0, 10) != 2 || o.Count(2.5, 10) != 1 {
		t.Fatal("count")
	}
	if o.RankOf(0, 10, 20) != 2 || o.RankOf(0, 10, 25) != 1 {
		t.Fatal("rank")
	}
	live := o.Live()
	live[0] = point.P{X: -1, Score: -1} // must be a copy
	if o.Count(-2, 0) != 0 {
		t.Fatal("Live leaked internal slice")
	}
}

func TestSameSet(t *testing.T) {
	a := []point.P{{X: 1, Score: 1}, {X: 2, Score: 2}, {X: 3, Score: 3}}
	b := []point.P{{X: 3, Score: 3}, {X: 1, Score: 1}, {X: 2, Score: 2}}
	if !SameSet(a, b) {
		t.Fatal("permutation rejected")
	}
	if SameSet(a, b[:2]) {
		t.Fatal("size mismatch accepted")
	}
	c := []point.P{{X: 1, Score: 1}, {X: 2, Score: 2}, {X: 4, Score: 4}}
	if SameSet(a, c) {
		t.Fatal("different set accepted")
	}
	dup1 := []point.P{{X: 1, Score: 1}, {X: 1, Score: 1}}
	dup2 := []point.P{{X: 1, Score: 1}, {X: 2, Score: 2}}
	if SameSet(dup1, dup2) {
		t.Fatal("multiset multiplicity ignored")
	}
}

func TestSortedDesc(t *testing.T) {
	if !SortedDesc([]point.P{{X: 1, Score: 3}, {X: 2, Score: 2}, {X: 3, Score: 2}, {X: 4, Score: 1}}) {
		t.Fatal("sorted rejected")
	}
	if SortedDesc([]point.P{{X: 1, Score: 1}, {X: 2, Score: 2}}) {
		t.Fatal("ascending accepted")
	}
	if !SortedDesc(nil) {
		t.Fatal("empty rejected")
	}
}

func TestDiffTopK(t *testing.T) {
	a := []point.P{{X: 1, Score: 1}, {X: 2, Score: 2}}
	if err := DiffTopK(a, []point.P{{X: 2, Score: 2}, {X: 1, Score: 1}}); err != nil {
		t.Fatalf("equal sets: %v", err)
	}
	if err := DiffTopK(a, a[:1]); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := DiffTopK([]point.P{{X: 1, Score: 1}, {X: 9, Score: 9}}, a); err == nil {
		t.Fatal("wrong point accepted")
	}
}
