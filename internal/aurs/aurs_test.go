package aurs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sliceSet implements Set over a descending-sorted slice, with an
// adversarially sloppy Rank operator controlled by slop ∈ [0,1): it
// returns the element of rank ⌊ρ + slop·(c1·ρ − 1 − ρ)⌋ (clamped), i.e.
// anywhere legal inside [ρ, c1·ρ). It counts operator calls.
type sliceSet struct {
	vals      []float64 // descending
	c1        int
	slop      float64
	maxCalls  int
	rankCalls int
}

func (s *sliceSet) Len() int { return len(s.vals) }

func (s *sliceSet) Max() float64 {
	s.maxCalls++
	return s.vals[0]
}

func (s *sliceSet) Rank(rho float64) float64 {
	s.rankCalls++
	lo := rho
	hi := float64(s.c1)*rho - 1
	r := int(lo + s.slop*(hi-lo))
	if float64(r) < rho {
		// The contract is rank ≥ ρ; flooring lo+slop·(hi−lo) can land at
		// ⌊ρ⌋, one below ⌈ρ⌉, when ρ is fractional and slop is small.
		r = int(math.Ceil(rho))
	}
	if r > len(s.vals) {
		r = len(s.vals)
	}
	if r < 1 {
		r = 1
	}
	return s.vals[r-1]
}

func buildSets(m, minSize, maxSize int, seed int64, c1 int, slop float64) ([]*sliceSet, []float64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[float64]bool{}
	var all []float64
	sets := make([]*sliceSet, m)
	for i := 0; i < m; i++ {
		n := minSize + rng.Intn(maxSize-minSize+1)
		var vals []float64
		for len(vals) < n {
			v := rng.Float64() * 1e9
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
				all = append(all, v)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		sets[i] = &sliceSet{vals: vals, c1: c1, slop: slop}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	return sets, all
}

func unionRank(all []float64, v float64) int {
	return sort.Search(len(all), func(i int) bool { return all[i] < v })
}

func asSets(ss []*sliceSet) []Set {
	out := make([]Set, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func TestSelectGuaranteeExactRank(t *testing.T) {
	// slop=0 → Rank returns exactly rank ⌈ρ⌉.
	for _, m := range []int{1, 2, 5, 16, 64} {
		sets, all := buildSets(m, 200, 400, int64(m), 2, 0)
		for _, k := range []int{1, 3, 10, 50, 100} {
			v := Select(asSets(sets), 2, k)
			r := unionRank(all, v)
			if r < k || r > Bound(2)*k {
				t.Fatalf("m=%d k=%d: rank %d outside [%d,%d]", m, k, r, k, Bound(2)*k)
			}
		}
	}
}

func TestSelectGuaranteeSloppyRank(t *testing.T) {
	for _, slop := range []float64{0.3, 0.7, 0.99} {
		for _, m := range []int{2, 8, 32} {
			sets, all := buildSets(m, 300, 500, int64(m*100), 2, slop)
			for _, k := range []int{1, 7, 40, 120} {
				v := Select(asSets(sets), 2, k)
				r := unionRank(all, v)
				if r < k || r > Bound(2)*k {
					t.Fatalf("slop=%v m=%d k=%d: rank %d outside [%d,%d]",
						slop, m, k, r, k, Bound(2)*k)
				}
			}
		}
	}
}

func TestSelectC1Three(t *testing.T) {
	sets, all := buildSets(6, 400, 600, 42, 3, 0.5)
	for _, k := range []int{1, 5, 25, 100} {
		v := Select(asSets(sets), 3, k)
		r := unionRank(all, v)
		if r < k || r > Bound(3)*k {
			t.Fatalf("k=%d: rank %d outside [%d,%d]", k, r, k, Bound(3)*k)
		}
	}
}

func TestSelectKLessThanM(t *testing.T) {
	// Exercises the Max-pruning branch: m=50 sets, k as small as 1.
	sets, all := buildSets(50, 100, 200, 7, 2, 0.5)
	for _, k := range []int{1, 2, 10, 49} {
		v := Select(asSets(sets), 2, k)
		r := unionRank(all, v)
		if r < k || r > Bound(2)*k {
			t.Fatalf("k=%d: rank %d outside [%d,%d]", k, r, k, Bound(2)*k)
		}
	}
	for _, s := range sets {
		if s.maxCalls == 0 {
			t.Fatal("Max branch not exercised")
		}
	}
}

func TestOperatorCallsLinear(t *testing.T) {
	// Total Rank calls must be O(m): Σ m/c^(j-1) ≤ 2m for c=2, plus one
	// Max per set in the k<m branch.
	for _, m := range []int{4, 16, 64, 256} {
		sets, _ := buildSets(m, 5*m, 6*m, int64(m), 2, 0.2)
		Select(asSets(sets), 2, 2*m) // k ≥ m branch
		total := 0
		for _, s := range sets {
			total += s.rankCalls
			if s.maxCalls != 0 {
				t.Fatalf("m=%d: Max called in k≥m branch", m)
			}
		}
		if total > 2*m+2 {
			t.Fatalf("m=%d: %d Rank calls, want ≤ 2m+2", m, total)
		}
	}
}

func TestPreconditionPanics(t *testing.T) {
	sets, _ := buildSets(3, 50, 60, 1, 2, 0)
	for _, k := range []int{0, -1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", k)
				}
			}()
			Select(asSets(sets), 2, k)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("c1=1 accepted")
			}
		}()
		Select(asSets(sets), 1, 5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty set list accepted")
			}
		}()
		Select(nil, 2, 1)
	}()
}

func TestSingleSet(t *testing.T) {
	sets, all := buildSets(1, 500, 500, 3, 2, 0.9)
	for _, k := range []int{1, 10, 100, 250} {
		v := Select(asSets(sets), 2, k)
		r := unionRank(all, v)
		if r < k || r > Bound(2)*k {
			t.Fatalf("k=%d: rank %d", k, r)
		}
	}
}

// Property: the guarantee holds for random m, k, slop.
func TestQuickSelectGuarantee(t *testing.T) {
	f := func(mRaw, kRaw uint8, slopRaw uint16, seed int64) bool {
		m := int(mRaw)%24 + 1
		slop := float64(slopRaw%1000) / 1000
		sets, all := buildSets(m, 150, 300, seed, 2, slop)
		minLen := sets[0].Len()
		for _, s := range sets {
			if s.Len() < minLen {
				minLen = s.Len()
			}
		}
		k := int(kRaw)%(minLen/2) + 1
		v := Select(asSets(sets), 2, k)
		r := unionRank(all, v)
		return r >= k && r <= Bound(2)*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelect64Sets(b *testing.B) {
	sets, _ := buildSets(64, 500, 700, 1, 2, 0.5)
	ss := asSets(sets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(ss, 2, 128)
	}
}
