// Package aurs implements approximate union-rank selection (§3.1 and the
// appendix of the paper, Lemma 5).
//
// Given m disjoint sets L_1, …, L_m of real values, each accessible only
// through a Max operator and an approximate Rank operator (which, for a
// parameter ρ, returns an element whose rank in L_i falls in [ρ, c1·ρ)),
// and an integer k with 1 ≤ k ≤ min_i |L_i| / c1, Select returns an
// element of ∪L_i whose rank in the union falls in [k, c'·k] for a
// constant c' depending only on c1. The cost is O(m·(cost_max +
// cost_rank)) I/Os, charged by the Set implementations themselves.
//
// The algorithm is the adaptation of Frederickson–Johnson rank selection
// described in the appendix: ⌈log_c m⌉ rounds over a shrinking active
// set, fetching markers of geometrically growing target rank c^j·k/m,
// weighting them by the increase of that target, keeping the ⌈m/c^j⌉
// largest markers as pivots, and finally weighted-selecting the largest
// pivot whose prefix weight reaches k. The k < m case first prunes to
// the k sets whose maxima beat the k-th largest maximum.
package aurs

import (
	"math"
	"sort"
)

// Set is the paper's access interface to one L_i.
type Set interface {
	// Len returns |L_i|. (Metadata; any real implementation keeps a
	// counter, so no I/O is charged for it.)
	Len() int
	// Max returns the largest element of L_i.
	Max() float64
	// Rank returns an element of L_i whose rank (|{e' ≥ e}|, largest has
	// rank 1) falls in [ρ, c1·ρ), clamped to |L_i| when c1·ρ exceeds it.
	Rank(rho float64) float64
}

// Bound returns the approximation constant c' proven in the appendix:
// the returned element's rank lies in [k, c'·k] with c' = c²(2+2c).
func Bound(c1 int) int { return c1 * c1 * (2 + 2*c1) }

// Select performs approximate union-rank selection with approximation
// parameter c1 ≥ 2 (the guarantee of the Rank operators). It panics if
// k violates the precondition 1 ≤ k ≤ min|L_i|/c1 of §3.1 equation (2).
func Select(sets []Set, c1 int, k int) float64 {
	if c1 < 2 {
		panic("aurs: c1 must be ≥ 2")
	}
	if len(sets) == 0 {
		panic("aurs: no sets")
	}
	for _, s := range sets {
		if k < 1 || k > s.Len()/c1 {
			panic("aurs: k outside [1, min|L_i|/c1]")
		}
	}
	m := len(sets)
	if k >= m {
		return selectCore(sets, c1, k)
	}
	// Case k < m: prune with Max.
	type sm struct {
		i   int
		max float64
	}
	sms := make([]sm, m)
	for i, s := range sets {
		sms[i] = sm{i, s.Max()}
	}
	sort.Slice(sms, func(a, b int) bool { return sms[a].max > sms[b].max })
	vPrime := sms[k-1].max
	active := make([]Set, 0, k)
	for _, e := range sms[:k] {
		active = append(active, sets[e.i])
	}
	v := selectCore(active, c1, k)
	return math.Max(v, vPrime)
}

// selectCore is the main (k ≥ m) algorithm.
func selectCore(sets []Set, c1 int, k int) float64 {
	m := len(sets)
	c := float64(c1)

	type pivot struct {
		value  float64
		weight int
	}
	var pivots []pivot

	type marker struct {
		set    int
		value  float64
		weight int
	}
	active := make([]int, m)
	for i := range active {
		active[i] = i
	}
	rounds := 1
	for p := c1; p < m; p *= c1 {
		rounds++
	}
	cj := c // c^j
	prevCeil := 0
	for j := 1; j <= rounds && len(active) > 0; j++ {
		rho := cj * float64(k) / float64(m)
		if rho < 1 {
			rho = 1
		}
		curCeil := int(math.Ceil(cj * float64(k) / float64(m)))
		w := curCeil - prevCeil
		if j == 1 {
			w = curCeil
		}
		if w < 1 {
			w = 1
		}
		prevCeil = curCeil

		markers := make([]marker, 0, len(active))
		for _, i := range active {
			markers = append(markers, marker{set: i, value: sets[i].Rank(rho), weight: w})
		}
		sort.Slice(markers, func(a, b int) bool { return markers[a].value > markers[b].value })

		keep := int(math.Ceil(float64(m) / math.Pow(c, float64(j))))
		if keep > len(markers) {
			keep = len(markers)
		}
		if keep < 1 {
			keep = 1
		}
		next := make([]int, 0, keep)
		for _, mk := range markers[:keep] {
			pivots = append(pivots, pivot{value: mk.value, weight: mk.weight})
			next = append(next, mk.set)
		}
		active = next
		cj *= c
	}

	// Weighted selection (CPU; the pivot list has O(m) entries).
	sort.Slice(pivots, func(a, b int) bool { return pivots[a].value > pivots[b].value })
	prefix := 0
	for _, p := range pivots {
		prefix += p.weight
		if prefix >= k {
			return p.value
		}
	}
	// Observation 1 guarantees a cutoff pivot with prefix weight ≥ k, so
	// this is unreachable for conforming Rank operators.
	panic("aurs: no pivot reached prefix weight k")
}
