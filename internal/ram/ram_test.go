package ram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/point"
)

func genPoints(n int, seed int64) []point.P {
	rng := rand.New(rand.NewSource(seed))
	xs := rng.Perm(n * 4)
	scores := rng.Perm(n * 4)
	pts := make([]point.P, n)
	for i := 0; i < n; i++ {
		pts[i] = point.P{X: float64(xs[i]), Score: float64(scores[i])}
	}
	return pts
}

func sameSet(a, b []point.P) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[point.P]int{}
	for _, p := range a {
		m[p]++
	}
	for _, p := range b {
		if m[p]--; m[p] < 0 {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("len")
	}
	if got := tr.Query(0, 10, 5); got != nil {
		t.Fatalf("query: %v", got)
	}
	if tr.Delete(point.P{X: 1, Score: 1}) {
		t.Fatal("phantom delete")
	}
}

func TestBulkQuery(t *testing.T) {
	pts := genPoints(2000, 1)
	tr := Bulk(pts)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		x1 := rng.Float64() * 8000
		x2 := x1 + rng.Float64()*4000
		k := rng.Intn(60) + 1
		got := tr.Query(x1, x2, k)
		want := point.TopK(pts, x1, x2, k)
		if !sameSet(got, want) {
			t.Fatalf("query %d: got %d want %d", i, len(got), len(want))
		}
	}
}

func TestIncrementalInsert(t *testing.T) {
	pts := genPoints(1500, 3)
	var tr Tree
	for _, p := range pts {
		tr.Insert(p)
	}
	if tr.Len() != 1500 {
		t.Fatalf("len=%d", tr.Len())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 6000
		x2 := x1 + rng.Float64()*3000
		k := rng.Intn(40) + 1
		if !sameSet(tr.Query(x1, x2, k), point.TopK(pts, x1, x2, k)) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestDelete(t *testing.T) {
	pts := genPoints(1000, 5)
	tr := Bulk(pts)
	var live []point.P
	for i, p := range pts {
		if i%3 == 0 {
			if !tr.Delete(p) {
				t.Fatalf("delete %v", p)
			}
		} else {
			live = append(live, p)
		}
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 4000
		x2 := x1 + rng.Float64()*2500
		k := rng.Intn(30) + 1
		if !sameSet(tr.Query(x1, x2, k), point.TopK(live, x1, x2, k)) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestQuerySortedDesc(t *testing.T) {
	tr := Bulk(genPoints(300, 7))
	got := tr.Query(0, 1200, 50)
	for i := 1; i < len(got); i++ {
		if got[i-1].Score < got[i].Score {
			t.Fatal("not descending")
		}
	}
}

func TestComparisonsLogarithmicPlusK(t *testing.T) {
	pts := genPoints(100000, 8)
	tr := Bulk(pts)
	cost := func(k int) int64 {
		tr.Comparisons = 0
		rng := rand.New(rand.NewSource(int64(k)))
		const reps = 50
		for i := 0; i < reps; i++ {
			x1 := rng.Float64() * 2e5
			tr.Query(x1, x1+2e5, k)
		}
		return tr.Comparisons / reps
	}
	c1, c64 := cost(1), cost(64)
	// O(lg n + k): going from k=1 to k=64 should add O(k) work, far less
	// than 64×.
	if c64 > 40*c1+3000 {
		t.Fatalf("cost grew too fast: k=1 → %d, k=64 → %d", c1, c64)
	}
	t.Logf("comparisons: k=1 → %d, k=64 → %d", c1, c64)
}

func TestMixedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var tr Tree
	var live []point.P
	usedX := map[float64]bool{}
	for op := 0; op < 4000; op++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			p := point.P{X: rng.Float64() * 1e5, Score: rng.Float64() * 1e6}
			if usedX[p.X] {
				continue
			}
			usedX[p.X] = true
			live = append(live, p)
			tr.Insert(p)
		} else {
			j := rng.Intn(len(live))
			p := live[j]
			live = append(live[:j], live[j+1:]...)
			delete(usedX, p.X)
			if !tr.Delete(p) {
				t.Fatalf("op %d delete failed", op)
			}
		}
		if op%200 == 100 {
			x1 := rng.Float64() * 1e5
			x2 := x1 + rng.Float64()*4e4
			k := rng.Intn(20) + 1
			if !sameSet(tr.Query(x1, x2, k), point.TopK(live, x1, x2, k)) {
				t.Fatalf("op %d query mismatch", op)
			}
		}
	}
}

func TestQuickModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		rng := rand.New(rand.NewSource(seed))
		var tr Tree
		var live []point.P
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				p := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[p.X] {
					continue
				}
				usedX[p.X] = true
				live = append(live, p)
				tr.Insert(p)
			} else {
				j := int(op/3) % len(live)
				p := live[j]
				live = append(live[:j], live[j+1:]...)
				delete(usedX, p.X)
				if !tr.Delete(p) {
					return false
				}
			}
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 30000)
		x2 := x1 + 20000
		k := int(abs%9) + 1
		return sameSet(tr.Query(x1, x2, k), point.TopK(live, x1, x2, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRAMInsert(b *testing.B) {
	var tr Tree
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(point.P{X: rng.Float64() * 1e9, Score: rng.Float64()})
	}
}

func BenchmarkRAMQueryK64(b *testing.B) {
	tr := Bulk(genPoints(200000, 1))
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 4e5
		tr.Query(x1, x1+2e5, 64)
	}
}
