// Package ram implements the internal-memory baseline of §1.1: a
// pointer-machine structure combining a priority search tree (McCreight
// 1985) with heap selection (Frederickson 1993; realized as best-first
// search, see DESIGN.md substitution 2), answering top-k range queries
// in O(lg n + k) time with O(lg n) updates and O(n) words of space.
//
// The experiments use it as the RAM reference point (E13) and as a fast
// oracle for cross-checking the external structures on large inputs.
//
// The tree is a balanced (by x-rank) binary tree over the points'
// x-coordinates in which every node additionally stores one point by
// max-score priority: each point lives at the highest ancestor of its
// x-position whose priority slot it wins. Rebalancing uses the
// scapegoat/weight-balance scheme (partial rebuilds), which preserves
// O(lg n) amortized updates without rotation-aware priority repair.
package ram

import (
	"math"

	"repro/internal/heap"
	"repro/internal/point"
)

const alpha = 0.7 // weight-balance factor for scapegoat rebuilds

type node struct {
	xkey        float64 // routing key: max x in left subtree
	lo, hi      float64 // x-interval covered
	left, right *node
	size        int // points stored in subtree (= priority slots used)

	has bool    // priority slot occupied
	pt  point.P // the stored point
}

// Tree is the pointer-machine structure. The zero value is an empty
// tree ready to use.
type Tree struct {
	root *node
	n    int
	// Comparisons counts key comparisons, the cost unit of the pointer
	// machine model (E13 measures it).
	Comparisons int64
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.n }

// Insert adds p (distinct x and score assumed, as in the paper).
func (t *Tree) Insert(p point.P) {
	t.n++
	if t.root == nil {
		t.root = &node{xkey: p.X, lo: math.Inf(-1), hi: math.Inf(1), size: 1, has: true, pt: p}
		return
	}
	t.insert(t.root, p)
	t.rebalance()
}

// insert pushes p down from nd, swapping it into any priority slot it
// wins, and extends the tree at the leaf level.
func (t *Tree) insert(nd *node, p point.P) {
	for {
		nd.size++
		if !nd.has {
			nd.has, nd.pt = true, p
			return
		}
		t.Comparisons++
		if p.Score > nd.pt.Score {
			nd.pt, p = p, nd.pt // p takes the slot; the loser descends
		}
		t.Comparisons++
		if nd.left == nil && nd.right == nil {
			// Split this leaf region: the old slot holder stays; the
			// loser opens a child.
			if p.X < nd.xkey {
				nd.left = &node{xkey: p.X, lo: nd.lo, hi: nd.xkey, size: 0, has: false}
				nd = nd.left
			} else {
				nd.right = &node{xkey: p.X, lo: nd.xkey, hi: nd.hi, size: 0, has: false}
				nd = nd.right
			}
			continue
		}
		if p.X < nd.xkey {
			if nd.left == nil {
				nd.left = &node{xkey: p.X, lo: nd.lo, hi: nd.xkey}
			}
			nd = nd.left
		} else {
			if nd.right == nil {
				nd.right = &node{xkey: p.X, lo: nd.xkey, hi: nd.hi}
			}
			nd = nd.right
		}
	}
}

// Delete removes the point with the given x and score, reporting
// whether it was present.
func (t *Tree) Delete(p point.P) bool {
	if !t.delete(t.root, p) {
		return false
	}
	t.n--
	t.rebalance()
	return true
}

func (t *Tree) delete(nd *node, p point.P) bool {
	if nd == nil {
		return false
	}
	t.Comparisons++
	if nd.has && nd.pt == p {
		// Pull up the best child slot holder, cascading.
		t.pullUp(nd)
		t.fixSizes(nd)
		return true
	}
	var ok bool
	if p.X < nd.xkey {
		ok = t.delete(nd.left, p)
	} else {
		ok = t.delete(nd.right, p)
	}
	if ok {
		nd.size--
	}
	return ok
}

// pullUp refills nd's slot with the best point below, recursively.
func (t *Tree) pullUp(nd *node) {
	var best *node
	if nd.left != nil && nd.left.has {
		best = nd.left
	}
	if nd.right != nil && nd.right.has {
		t.Comparisons++
		if best == nil || nd.right.pt.Score > best.pt.Score {
			best = nd.right
		}
	}
	if best == nil {
		nd.has = false
		return
	}
	nd.pt = best.pt
	t.pullUp(best)
}

// fixSizes recomputes sizes along the pulled path (sizes only shrink by
// one somewhere below; a full recompute at nd is O(subtree) — instead we
// walk down decrementing along the pull path, which pullUp lost track
// of; recomputing lazily is simpler and amortized by rebuilds).
func (t *Tree) fixSizes(nd *node) {
	if nd == nil {
		return
	}
	l, r := 0, 0
	if nd.left != nil {
		t.fixSizes(nd.left)
		l = nd.left.size
	}
	if nd.right != nil {
		t.fixSizes(nd.right)
		r = nd.right.size
	}
	stored := 0
	if nd.has {
		stored = 1
	}
	nd.size = l + r + stored
}

// rebalance rebuilds the whole tree when the root is α-unbalanced
// (global variant of the scapegoat scheme: simple and amortized
// O(lg n)… for the purposes of a baseline, O(n) rebuilds every Ω(n)
// updates).
func (t *Tree) rebalance() {
	if t.root == nil {
		return
	}
	l, r := 0, 0
	if t.root.left != nil {
		l = t.root.left.size
	}
	if t.root.right != nil {
		r = t.root.right.size
	}
	if float64(l) <= alpha*float64(t.root.size) && float64(r) <= alpha*float64(t.root.size) {
		return
	}
	pts := make([]point.P, 0, t.n)
	collect(t.root, &pts)
	point.SortByX(pts)
	t.root = build(pts, math.Inf(-1), math.Inf(1))
}

func collect(nd *node, out *[]point.P) {
	if nd == nil {
		return
	}
	if nd.has {
		*out = append(*out, nd.pt)
	}
	collect(nd.left, out)
	collect(nd.right, out)
}

// build constructs a perfectly balanced PST over pts (sorted by x).
func build(pts []point.P, lo, hi float64) *node {
	if len(pts) == 0 {
		return nil
	}
	// Highest point takes the root slot; remaining split at the median x.
	bi := 0
	for i, p := range pts {
		if p.Score > pts[bi].Score {
			bi = i
		}
	}
	best := pts[bi]
	rest := make([]point.P, 0, len(pts)-1)
	rest = append(rest, pts[:bi]...)
	rest = append(rest, pts[bi+1:]...)
	mid := len(rest) / 2
	var xkey float64
	switch {
	case len(rest) == 0:
		xkey = best.X
	default:
		xkey = rest[mid].X
	}
	nd := &node{xkey: xkey, lo: lo, hi: hi, size: len(pts), has: true, pt: best}
	nd.left = build(rest[:mid], lo, xkey)
	nd.right = build(rest[mid:], xkey, hi)
	return nd
}

// Bulk builds a tree over pts.
func Bulk(pts []point.P) *Tree {
	t := &Tree{}
	sorted := append([]point.P(nil), pts...)
	point.SortByX(sorted)
	t.root = build(sorted, math.Inf(-1), math.Inf(1))
	t.n = len(pts)
	return t
}

// src adapts the in-range portion of the PST to heap.Source for
// best-first selection: nodes enter the frontier when their stored point
// lies in [x1,x2]; out-of-range nodes whose interval intersects the
// query are expanded transparently.
type src struct {
	t      *Tree
	x1, x2 float64
	nodes  []*node
}

func (s *src) entryOf(nd *node, out *[]heap.Entry) {
	// Descend past nodes whose slot point is outside [x1,x2] (or empty),
	// emitting the highest in-range slots. Expansion is bounded: every
	// visited node's x-interval intersects the query, and out-of-range
	// slot points only occur on the two boundary paths — O(lg n) extras.
	if nd == nil || !nd.has {
		return
	}
	s.t.Comparisons += 2 // interval test against the query
	if nd.hi < s.x1 || nd.lo > s.x2 {
		return
	}
	s.t.Comparisons += 2 // slot-point containment test
	if nd.pt.In(s.x1, s.x2) {
		ref := int64(len(s.nodes))
		s.nodes = append(s.nodes, nd)
		*out = append(*out, heap.Entry{Ref: ref, Key: nd.pt.Score})
		return
	}
	s.entryOf(nd.left, out)
	s.entryOf(nd.right, out)
}

func (s *src) Roots() []heap.Entry {
	var out []heap.Entry
	s.entryOf(s.t.root, &out)
	return out
}

func (s *src) Children(ref int64) []heap.Entry {
	nd := s.nodes[ref]
	var out []heap.Entry
	s.entryOf(nd.left, &out)
	s.entryOf(nd.right, &out)
	return out
}

// Query returns the k highest-scoring points in [x1,x2], descending,
// in O(lg n + k) comparisons.
func (t *Tree) Query(x1, x2 float64, k int) []point.P {
	if k <= 0 || x1 > x2 || t.root == nil {
		return nil
	}
	s := &src{t: t, x1: x1, x2: x2}
	es := heap.SelectTop(s, k)
	out := make([]point.P, len(es))
	for i, e := range es {
		out[i] = s.nodes[e.Ref].pt
	}
	return out
}
