package pst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/em"
	"repro/internal/point"
)

func genPoints(n int, seed int64) []point.P {
	rng := rand.New(rand.NewSource(seed))
	xs := rng.Perm(n * 4)
	pts := make([]point.P, n)
	scores := rng.Perm(n * 4)
	for i := 0; i < n; i++ {
		pts[i] = point.P{X: float64(xs[i]), Score: float64(scores[i])}
	}
	return pts
}

func newDisk(b int) *em.Disk {
	return em.NewDisk(em.Config{B: b, M: 64 * b})
}

func sameSet(a, b []point.P) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[point.P]int, len(a))
	for _, p := range a {
		m[p]++
	}
	for _, p := range b {
		m[p]--
		if m[p] < 0 {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	p := New(newDisk(16), Options{})
	if p.Len() != 0 || p.Height() != 0 {
		t.Fatalf("empty: %v", p)
	}
	if got := p.Query(0, 100, 5); got != nil {
		t.Fatalf("query on empty: %v", got)
	}
	if p.Delete(point.P{X: 1, Score: 1}) {
		t.Fatal("delete on empty succeeded")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 100, 1000, 5000} {
		p := Bulk(newDisk(16), Options{TrackTokens: true}, genPoints(n, int64(n)))
		if p.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, p.Len())
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkQueryMatchesBrute(t *testing.T) {
	pts := genPoints(2000, 1)
	p := Bulk(newDisk(16), Options{}, pts)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 8000
		x2 := x1 + rng.Float64()*4000
		k := rng.Intn(50) + 1
		got := p.Query(x1, x2, k)
		want := point.TopK(pts, x1, x2, k)
		if !sameSet(got, want) {
			t.Fatalf("query [%v,%v] k=%d: got %d pts, want %d", x1, x2, k, len(got), len(want))
		}
	}
}

func TestQueryReturnsSortedDesc(t *testing.T) {
	pts := genPoints(500, 3)
	p := Bulk(newDisk(16), Options{}, pts)
	got := p.Query(0, 2000, 40)
	for i := 1; i < len(got); i++ {
		if got[i-1].Score < got[i].Score {
			t.Fatal("not sorted by descending score")
		}
	}
}

func TestQueryFewerThanK(t *testing.T) {
	pts := genPoints(100, 4)
	p := Bulk(newDisk(16), Options{}, pts)
	got := p.QueryAll(-1e9, 1e9)
	if !sameSet(got, pts) {
		t.Fatalf("full-range query returned %d of %d", len(got), len(pts))
	}
}

func TestQueryEmptyRange(t *testing.T) {
	p := Bulk(newDisk(16), Options{}, genPoints(100, 5))
	if got := p.Query(5, 4, 10); got != nil {
		t.Fatalf("inverted range: %v", got)
	}
	if got := p.Query(-100, -50, 10); len(got) != 0 {
		t.Fatalf("out-of-domain range: %v", got)
	}
}

func TestInsertIncremental(t *testing.T) {
	pts := genPoints(800, 6)
	p := New(newDisk(16), Options{TrackTokens: true})
	for i, q := range pts {
		p.Insert(q)
		if i%97 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := p.QueryAll(-1e9, 1e9)
	if !sameSet(got, pts) {
		t.Fatalf("live set: %d of %d", len(got), len(pts))
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	// Deletions leave x-coordinates in the base tree (§2); re-inserting
	// the same coordinate must reuse the stale entry.
	p := New(newDisk(16), Options{TrackTokens: true})
	q := point.P{X: 5, Score: 1}
	p.Insert(q)
	if !p.Delete(q) {
		t.Fatal("delete")
	}
	p.Insert(q)
	if p.Len() != 1 {
		t.Fatalf("len=%d", p.Len())
	}
	if got := p.Query(0, 10, 1); len(got) != 1 || got[0] != q {
		t.Fatalf("query: %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBasic(t *testing.T) {
	pts := genPoints(600, 7)
	p := Bulk(newDisk(16), Options{TrackTokens: true}, pts)
	for i, q := range pts {
		if i%3 == 0 {
			if !p.Delete(q) {
				t.Fatalf("delete %v failed", q)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var want []point.P
	for i, q := range pts {
		if i%3 != 0 {
			want = append(want, q)
		}
	}
	if got := p.QueryAll(-1e9, 1e9); !sameSet(got, want) {
		t.Fatalf("after deletes: %d live, want %d", len(got), len(want))
	}
}

func TestDeleteNonexistent(t *testing.T) {
	pts := genPoints(100, 8)
	p := Bulk(newDisk(16), Options{}, pts)
	if p.Delete(point.P{X: -123, Score: 5}) {
		t.Fatal("deleted phantom point")
	}
	if p.Delete(point.P{X: pts[0].X, Score: pts[0].Score + 0.5}) {
		t.Fatal("deleted point with wrong score")
	}
	if p.Len() != 100 {
		t.Fatalf("len changed: %d", p.Len())
	}
}

func TestDeleteAll(t *testing.T) {
	pts := genPoints(300, 9)
	p := Bulk(newDisk(16), Options{TrackTokens: true}, pts)
	for _, q := range pts {
		if !p.Delete(q) {
			t.Fatalf("delete %v", q)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("len=%d", p.Len())
	}
	if got := p.QueryAll(-1e9, 1e9); len(got) != 0 {
		t.Fatalf("ghosts: %v", got)
	}
}

func TestMixedWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := New(newDisk(16), Options{TrackTokens: true})
	live := map[point.P]bool{}
	usedX := map[float64]bool{}
	for i := 0; i < 3000; i++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			q := point.P{X: rng.Float64() * 1e6, Score: rng.Float64() * 1e6}
			if usedX[q.X] {
				continue
			}
			usedX[q.X] = true
			live[q] = true
			p.Insert(q)
		} else {
			for q := range live {
				delete(live, q)
				delete(usedX, q.X)
				if !p.Delete(q) {
					t.Fatalf("delete live point failed at op %d", i)
				}
				break
			}
		}
		if i%251 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var want []point.P
	for q := range live {
		want = append(want, q)
	}
	if got := p.QueryAll(-1e9, 1e9); !sameSet(got, want) {
		t.Fatalf("live mismatch: %d vs %d", len(got), len(want))
	}
}

func TestMixedWorkloadQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := New(newDisk(16), Options{})
	var live []point.P
	usedX := map[float64]bool{}
	for i := 0; i < 2000; i++ {
		switch {
		case rng.Intn(4) > 0 || len(live) == 0:
			q := point.P{X: rng.Float64() * 1e4, Score: rng.Float64() * 1e6}
			if usedX[q.X] {
				continue
			}
			usedX[q.X] = true
			live = append(live, q)
			p.Insert(q)
		default:
			j := rng.Intn(len(live))
			q := live[j]
			live = append(live[:j], live[j+1:]...)
			delete(usedX, q.X)
			p.Delete(q)
		}
		if i%100 == 50 {
			x1 := rng.Float64() * 1e4
			x2 := x1 + rng.Float64()*3e3
			k := rng.Intn(20) + 1
			got := p.Query(x1, x2, k)
			want := point.TopK(live, x1, x2, k)
			if !sameSet(got, want) {
				t.Fatalf("op %d query [%v,%v] k=%d: got %d want %d", i, x1, x2, k, len(got), len(want))
			}
		}
	}
}

func TestSmallPhiCanFail(t *testing.T) {
	// E4 ablation sanity: with φ = 16 the query is exact on adversarial
	// data; this test pins the *correct* behaviour (the bench explores
	// failures at smaller φ).
	pts := genPoints(3000, 12)
	p := Bulk(newDisk(8), Options{Phi: 16}, pts)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		x1 := rng.Float64() * 12000
		x2 := x1 + rng.Float64()*6000
		k := rng.Intn(200) + 1
		got := p.Query(x1, x2, k)
		want := point.TopK(pts, x1, x2, k)
		if !sameSet(got, want) {
			t.Fatalf("phi=16 failed at query %d", i)
		}
	}
}

func TestSpaceLinear(t *testing.T) {
	d := newDisk(32)
	pts := genPoints(20000, 14)
	Bulk(d, Options{}, pts)
	live := d.Stats().BlocksLive
	// O(n/B) with a generous constant: points occupy 2n/B blocks in
	// pilots; tree metadata adds a constant factor.
	bound := int64(20 * 20000 / 32)
	if live > bound {
		t.Fatalf("space %d blocks > %d", live, bound)
	}
}

func TestUpdateIOCostLogarithmic(t *testing.T) {
	// The pool (32 frames) is big enough to hold a few node records but
	// far smaller than the structure, so the measurement reflects disk
	// traffic rather than cache hits.
	d := em.NewDisk(em.Config{B: 32, M: 32 * 32})
	p := New(d, Options{})
	pts := genPoints(4000, 15)
	for _, q := range pts[:2000] {
		p.Insert(q)
	}
	d.DropCache()
	base := d.Stats()
	for _, q := range pts[2000:] {
		p.Insert(q)
	}
	per := float64(d.Stats().Sub(base).IOs()) / 2000
	// Amortized O(log_B n): with height 2–3 and O(1)-block node records
	// the constant envelope below is loose but sub-linear growth is the
	// claim under test (the E2 bench sweeps n to show the shape).
	if per > 150 {
		t.Fatalf("amortized insert cost %.1f I/Os looks super-logarithmic", per)
	}
	t.Logf("amortized insert: %.1f I/Os", per)
}

func TestQueryIOCostScalesWithK(t *testing.T) {
	// Parameters are chosen so the heap selection does not exhaust the
	// query range: the selection budget t = φ(lg n + k/B) must stay
	// below the number of non-empty pilot nodes in range, otherwise both
	// measurements read the whole range and the k-dependence vanishes
	// (k ≫ B lg n is exactly the regime §2 targets).
	d := em.NewDisk(em.Config{B: 8, M: 64 * 8})
	pts := genPoints(50000, 16)
	p := Bulk(d, Options{}, pts)
	cost := func(k int) float64 {
		const reps = 5
		d.DropCache()
		base := d.Stats()
		for i := 0; i < reps; i++ {
			p.Query(math.Inf(-1), math.Inf(1), k)
			d.DropCache()
		}
		return float64(d.Stats().Sub(base).Reads) / reps
	}
	c1, c2 := cost(8), cost(4096)
	// k=4096 (k/B = 512 ≫ lg n) must cost visibly more than k=8, but at
	// most ~linearly in k/B.
	if c2 < 1.2*c1 {
		t.Fatalf("cost not increasing in k: %v vs %v", c1, c2)
	}
	if c2 > 200*c1 {
		t.Fatalf("cost ratio too steep: %v vs %v", c1, c2)
	}
	t.Logf("query I/Os: k=8 → %.0f, k=4096 → %.0f", c1, c2)
}

func TestGlobalRebuildKeepsAnswers(t *testing.T) {
	p := New(newDisk(16), Options{TrackTokens: true})
	pts := genPoints(64, 17)
	for _, q := range pts {
		p.Insert(q)
	}
	// Force many updates to trip global rebuilding repeatedly.
	for round := 0; round < 10; round++ {
		for _, q := range pts {
			p.Delete(q)
		}
		for _, q := range pts {
			p.Insert(q)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := p.QueryAll(-1e9, 1e9); !sameSet(got, pts) {
		t.Fatalf("after rebuild churn: %d live", len(got))
	}
}

func TestBoundaryQueries(t *testing.T) {
	var pts []point.P
	for i := 0; i < 64; i++ {
		pts = append(pts, point.P{X: float64(i), Score: float64(100 + i)})
	}
	p := Bulk(newDisk(8), Options{}, pts)
	cases := []struct {
		x1, x2 float64
		k      int
		want   int
	}{
		{0, 63, 64, 64}, {0, 0, 5, 1}, {63, 63, 5, 1},
		{31.5, 31.6, 3, 0}, {10, 20, 100, 11}, {-5, 5, 3, 3},
	}
	for _, c := range cases {
		got := p.Query(c.x1, c.x2, c.k)
		if len(got) != c.want {
			t.Errorf("query [%v,%v] k=%d: %d points, want %d", c.x1, c.x2, c.k, len(got), c.want)
		}
		want := point.TopK(pts, c.x1, c.x2, c.k)
		if !sameSet(got, want) {
			t.Errorf("query [%v,%v] k=%d wrong set", c.x1, c.x2, c.k)
		}
	}
}

func TestVariousBlockSizes(t *testing.T) {
	for _, b := range []int{8, 16, 64} {
		pts := genPoints(700, int64(b))
		p := Bulk(newDisk(b), Options{TrackTokens: true}, pts)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("B=%d: %v", b, err)
		}
		got := p.Query(0, 1400, 25)
		want := point.TopK(pts, 0, 1400, 25)
		if !sameSet(got, want) {
			t.Fatalf("B=%d query mismatch", b)
		}
	}
}

// Property: any insert/delete interleaving preserves invariants and
// query answers.
func TestQuickPSTModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 150 {
			ops = ops[:150]
		}
		rng := rand.New(rand.NewSource(seed))
		p := New(newDisk(8), Options{TrackTokens: true})
		var live []point.P
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%4 != 0 || len(live) == 0 {
				q := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[q.X] {
					continue
				}
				usedX[q.X] = true
				live = append(live, q)
				p.Insert(q)
			} else {
				j := int(op/4) % len(live)
				q := live[j]
				live = append(live[:j], live[j+1:]...)
				delete(usedX, q.X)
				if !p.Delete(q) {
					return false
				}
			}
		}
		if p.CheckInvariants() != nil {
			return false
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 300)
		x2 := x1 + 200
		k := int(abs%7) + 1
		return sameSet(p.Query(x1, x2, k), point.TopK(live, x1, x2, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAndExtremeCoordinates(t *testing.T) {
	pts := []point.P{
		{X: -1e12, Score: 5}, {X: -3, Score: 9}, {X: 0, Score: 1},
		{X: 2.5, Score: 7}, {X: 1e12, Score: 3},
	}
	p := Bulk(newDisk(8), Options{}, pts)
	got := p.Query(math.Inf(-1), math.Inf(1), 3)
	want := point.TopK(pts, math.Inf(-1), math.Inf(1), 3)
	if !sameSet(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func BenchmarkPSTInsert(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	p := New(d, Options{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(point.P{X: rng.Float64() * 1e9, Score: rng.Float64()})
	}
}

func BenchmarkPSTQueryK64(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	p := Bulk(d, Options{}, genPoints(50000, 1))
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 1e5
		p.Query(x1, x1+2e4, 64)
	}
}
