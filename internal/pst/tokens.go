package pst

// tokens implements the conceptual insertion/deletion tokens of the
// Lemma 3 amortization argument as optional instrumentation. Tokens are
// bookkeeping only — they exist to let tests assert Invariants 1 and 2
// after every operation — so they live entirely in Go memory, keyed by
// pilot handle, and are never charged as I/Os.
//
// Rules (numbered as in the paper):
//  1. a point inserted into pilot(v) gives v an insertion token;
//  2. a point deleted from pilot(v) gives v a deletion token;
//  3. a push-down moving a point from v to child v' moves one insertion
//     token from v to v';
//  4. a pull-up moving a point from child v' to v moves one deletion
//     token from v to v';
//  5. tokens reaching a leaf disappear;
//  6. a draining pull-up at v destroys all tokens in v's subtree;
//  7. reconstruction of a subtree destroys all tokens inside it.
//
// Rules 5 and 7 are automatic here: leaves are excluded from the
// invariant checks, and reconstruction frees the pilot handles that key
// the counters.

import "repro/internal/em"

type tokens struct {
	ins map[em.Handle]int
	del map[em.Handle]int
}

func newTokens() *tokens {
	return &tokens{ins: map[em.Handle]int{}, del: map[em.Handle]int{}}
}

// onInsert applies rule 1.
func (t *tokens) onInsert(v em.Handle) {
	if t == nil {
		return
	}
	t.ins[v]++
}

// onDelete applies rule 2.
func (t *tokens) onDelete(v em.Handle) {
	if t == nil {
		return
	}
	t.del[v]++
}

// onPushDown applies rule 3 for cnt points moved v → child.
func (t *tokens) onPushDown(v, child em.Handle, cnt int) {
	if t == nil {
		return
	}
	t.ins[v] -= cnt
	t.ins[child] += cnt
}

// onPullUp applies rule 4 for cnt points moved child → v.
func (t *tokens) onPullUp(v, child em.Handle, cnt int) {
	if t == nil {
		return
	}
	t.del[v] -= cnt
	t.del[child] += cnt
}

// drop applies rules 6/7 to one node.
func (t *tokens) drop(v em.Handle) {
	if t == nil {
		return
	}
	delete(t.ins, v)
	delete(t.del, v)
}

// dropSubtree destroys all tokens in the T̂ subtree rooted at v
// (rule 6 after a draining pull-up). Traversal uses Peek: the tokens are
// conceptual, so their maintenance must not distort the I/O meter.
func (p *PST) dropTokensBelow(t em.Handle, idx int) {
	if p.tok == nil {
		return
	}
	nd := p.tstore.Peek(t)
	p.tok.drop(nd.vs[idx].pilot)
	m := nd.vs[idx]
	if m.left >= 0 {
		p.dropTokensBelow(t, m.left)
		p.dropTokensBelow(t, m.right)
	} else if m.kid >= 0 {
		p.dropTokensBelow(nd.kids[m.kid], 0)
	}
}
