// Package pst implements the structure of §2 of the paper (Lemma 1): an
// external priority search tree for top-k range reporting with
//
//	space  O(n/B) blocks,
//	query  O(lg n + k/B) I/Os (base-2 logarithm),
//	update O(log_B n) amortized I/Os.
//
// The composed structure of Theorem 1 uses it for k = Ω(B lg n), where
// its query cost collapses to O(k/B).
//
// Layout follows the paper. The base tree T is a weight-balanced B-tree
// on the x-coordinates with leaf capacity and branching parameter B
// (both configurable here). Every internal node u of T carries a binary
// search tree T(u) over its child slabs; concatenating all secondary
// trees yields the big tree T̂ of Figure 1 (a slab leaf of T(u) has as
// its only child the root of T(u') of the corresponding child u'). Every
// T̂ node v stores a pilot set: the highest points of P(v) not stored at
// proper ancestors, holding between B/2 and 2B points unless fewer
// remain, in which case it holds all of them (so an empty pilot set
// implies an empty subtree). The lowest pilot point is the node's
// representative; each T-node u keeps the representatives and pilot
// sizes of all T(u) nodes together in O(1) blocks (the "representative
// blocks"), which is what makes O(log_B n) root-to-leaf descents
// possible.
//
// Updates use the push-down/pull-up discipline of the paper, whose
// amortized cost is bounded by the token argument of Lemma 3; the tokens
// are implemented as optional instrumentation (see tokens.go) and the
// invariants are asserted in tests. Rebalancing rebuilds the subtree
// under the parent of the highest unbalanced node, with pilot grounding
// followed by a bottom-up refill, exactly as §2 prescribes; deleted
// x-coordinates stay in T until a periodic global rebuild.
package pst

import (
	"fmt"
	"math"

	"repro/internal/em"
	"repro/internal/point"
)

// Options configure a PST.
type Options struct {
	// PilotB is the paper's B for pilot-set sizing: pilots hold between
	// PilotB/2 and 2·PilotB points. Defaults to the disk block size.
	PilotB int
	// Branch is the leaf capacity and branching parameter of the base
	// tree T. Defaults to the disk block size.
	Branch int
	// Phi is the constant φ of the query algorithm; Lemma 2 proves
	// correctness for φ = 16, the default. Smaller values are exposed
	// for the ablation experiment E4.
	Phi int
	// TrackTokens enables the Lemma 3 token instrumentation (CPU-side
	// only; never charged as I/O). Tests use it to assert Invariants 1
	// and 2 after every operation.
	TrackTokens bool
	// Adaptive enables early termination of the heap selection — an
	// optimization beyond the paper (ablation experiment): selection
	// stops as soon as k in-range candidates have been collected whose
	// k-th best score dominates every unexplored subtree (each frontier
	// node's subtree scores are bounded by its parent's representative).
	// Answers are identical; only the I/O constant changes.
	Adaptive bool
}

func (o Options) withDefaults(d *em.Disk) Options {
	if o.PilotB <= 0 {
		o.PilotB = d.B()
	}
	if o.PilotB < 4 {
		o.PilotB = 4
	}
	if o.Branch <= 0 {
		o.Branch = d.B()
	}
	if o.Branch < 4 {
		o.Branch = 4
	}
	if o.Phi <= 0 {
		o.Phi = 16
	}
	return o
}

// vmeta is one node of the secondary binary tree T(u), stored inside its
// owning T-node record. Index 0 is the root of T(u).
type vmeta struct {
	parent      int // index in vs; -1 for the root of T(u)
	left, right int // indices in vs; -1 for slab leaves
	kid         int // child index in kids for slab leaves; -1 otherwise
	lo, hi      int // child-index range [lo,hi) covered by this node

	pilot em.Handle // pilot set record (pilot store)
	rep   float64   // representative score; -Inf when the pilot is empty
	size  int       // |pilot|
}

// tnode is one node of the base tree T, bundled with its secondary tree
// and representative block. A leaf (level 0) has no kids and a single
// vmeta; it additionally stores the x-coordinates in its slab.
type tnode struct {
	level    int
	parent   em.Handle // T-parent; NilHandle at the root
	childIdx int       // index of this node in parent.kids
	weight   int       // inserted x-coordinates in the subtree (never decremented)
	lo, hi   float64   // slab [lo, hi)

	kids  []em.Handle // internal: children, left to right
	kidLo []float64   // internal: slab low of each child (kidLo[0] == lo)
	vs    []vmeta     // secondary tree T(u); leaves: exactly one entry
	xs    []float64   // leaves only: sorted x-coordinates (incl. stale)
}

// size reports the record footprint in words: a small header, two words
// per child (handle + slab separator), two words per secondary-tree node
// (the representative block of §2: the representative score, plus one
// word packing the pilot size — ≤ 2B, so ~lg B bits — with the pilot
// record's address), and the leaf x-list. The secondary tree's
// *topology* is not charged: it is the canonical balanced tree over
// len(kids) slabs, fully determined by the fanout, so an implementation
// need not store it (the in-memory vmeta copies exist purely for
// programming convenience). The record is O(Branch) words = O(1) blocks.
func (t *tnode) size() int {
	return 8 + 2*len(t.kids) + 2*len(t.vs) + len(t.xs)
}

// vid addresses one T̂ node: a vmeta inside a tnode.
type vid struct {
	t   em.Handle
	idx int
}

var nilVid = vid{}

func (v vid) valid() bool { return v.t != em.NilHandle }

// PST is the §2 structure. Create with New or Bulk.
type PST struct {
	disk   *em.Disk
	opt    Options
	tstore *em.Store[*tnode]
	pstore *em.Store[[]point.P]

	root em.Handle // root tnode; NilHandle when empty
	n    int       // live points

	// Global rebuilding state: the structure is rebuilt from scratch
	// once the number of updates since the last build exceeds half the
	// size at that build, keeping the height Θ(lg n).
	sizeAtBuild  int
	updatesSince int

	tok *tokens // nil unless Options.TrackTokens
}

// New returns an empty PST on d.
func New(d *em.Disk, opts Options) *PST {
	opts = opts.withDefaults(d)
	p := &PST{
		disk:   d,
		opt:    opts,
		tstore: em.NewStore(d, "pst.t", func(t *tnode) int { return t.size() }),
		pstore: em.NewStore(d, "pst.pilot", func(ps []point.P) int { return 1 + point.WordSize*len(ps) }),
	}
	if opts.TrackTokens {
		p.tok = newTokens()
	}
	return p
}

// Bulk builds a PST over pts (bulk loading = the paper's reconstruction
// algorithm applied to the whole input).
func Bulk(d *em.Disk, opts Options, pts []point.P) *PST {
	p := New(d, opts)
	p.rebuildAll(pts)
	return p
}

// Len returns the number of live points.
func (p *PST) Len() int { return p.n }

// B returns the pilot parameter B.
func (p *PST) B() int { return p.opt.PilotB }

// Phi returns the query constant φ.
func (p *PST) Phi() int { return p.opt.Phi }

// Height returns the number of T levels (0 for an empty structure).
func (p *PST) Height() int {
	if p.root == em.NilHandle {
		return 0
	}
	return p.tstore.Read(p.root).level + 1
}

// lgN returns max(1, ⌈lg n⌉), the paper's lg.
func (p *PST) lgN() int {
	lg := 1
	for v := 2; v < p.n; v *= 2 {
		lg++
	}
	return lg
}

// --- T̂ navigation helpers -------------------------------------------

// vchildren returns the T̂ children of v. Crossing from a slab leaf of
// T(u) into the child T-node costs one tnode read, charged via the
// store; staying inside T(u) is free (nd is already loaded).
func (p *PST) vchildren(nd *tnode, v vid) []vid {
	m := nd.vs[v.idx]
	if m.left >= 0 {
		return []vid{{v.t, m.left}, {v.t, m.right}}
	}
	if m.kid >= 0 {
		return []vid{{nd.kids[m.kid], 0}}
	}
	return nil
}

// vparent returns the T̂ parent of v (reading the parent tnode when v is
// the root of its secondary tree), or nilVid at the global root.
func (p *PST) vparent(nd *tnode, v vid) vid {
	m := nd.vs[v.idx]
	if m.parent >= 0 {
		return vid{v.t, m.parent}
	}
	if nd.parent == em.NilHandle {
		return nilVid
	}
	par := p.tstore.Read(nd.parent)
	for i, pm := range par.vs {
		if pm.kid == nd.childIdx {
			return vid{nd.parent, i}
		}
	}
	panic("pst: broken parent link")
}

// slabOf returns the slab [lo, hi) of v.
func slabOf(nd *tnode, idx int) (float64, float64) {
	m := nd.vs[idx]
	if m.kid >= 0 || m.left >= 0 {
		lo := nd.kidLo[m.lo]
		hi := nd.hi
		if m.hi < len(nd.kids) {
			hi = nd.kidLo[m.hi]
		}
		return lo, hi
	}
	return nd.lo, nd.hi
}

// routeKid returns the child index of nd whose slab contains x.
func routeKid(nd *tnode, x float64) int {
	lo, hi := 0, len(nd.kids)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if nd.kidLo[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// descendVS walks the secondary tree of nd toward x, returning the
// vmeta indices from the root of T(u) to the slab leaf (all in memory).
func descendVS(nd *tnode, x float64) []int {
	var path []int
	i := 0
	for {
		path = append(path, i)
		m := nd.vs[i]
		if m.left < 0 {
			return path
		}
		// Left child covers [lo,mid), right [mid,hi).
		mid := nd.vs[m.left].hi
		if x < nd.kidLo[mid] {
			i = m.left
		} else {
			i = m.right
		}
	}
}

// readPilot loads the pilot set of v.
func (p *PST) readPilot(h em.Handle) []point.P {
	if h == em.NilHandle {
		return nil
	}
	return p.pstore.Read(h)
}

// writePilot stores ps into the pilot record of v (updating rep and size
// inside the owning tnode, which the caller writes back).
func (p *PST) writePilot(nd *tnode, idx int, ps []point.P) {
	m := &nd.vs[idx]
	p.pstore.Write(m.pilot, ps)
	m.size = len(ps)
	m.rep = math.Inf(-1)
	for _, q := range ps {
		if m.rep == math.Inf(-1) || q.Score < m.rep {
			m.rep = q.Score
		}
	}
}

// Stats exposes the underlying disk meter.
func (p *PST) Stats() em.Stats { return p.disk.Stats() }

// String summarizes the structure.
func (p *PST) String() string {
	return fmt.Sprintf("pst{n=%d, height=%d, B=%d, branch=%d}",
		p.n, p.Height(), p.opt.PilotB, p.opt.Branch)
}
