package pst

import (
	"sort"

	"repro/internal/em"
	"repro/internal/point"
)

// Insert adds pt to the structure in O(log_B n) amortized I/Os: one
// root-to-leaf descent of T updating weights and inserting the
// x-coordinate, one descent locating the pilot set that must absorb pt
// (decided per T-node from the representative block, i.e. the rep/size
// fields bundled in the tnode record), push-downs on overflow, and the
// WBB rebuild of the subtree under the parent of the highest unbalanced
// node when one exists.
func (p *PST) Insert(pt point.P) {
	if p.root == em.NilHandle {
		p.rebuildAll([]point.P{pt})
		return
	}
	p.n++

	// Descent 1: weights + x insertion, recording the highest node that
	// becomes unbalanced.
	unbalanced := em.NilHandle
	h := p.root
	for {
		nd := p.tstore.Read(h)
		nd.weight++
		if nd.weight > p.cap(nd.level) && unbalanced == em.NilHandle {
			unbalanced = h
		}
		if nd.level == 0 {
			i := sort.SearchFloat64s(nd.xs, pt.X)
			if i < len(nd.xs) && nd.xs[i] == pt.X {
				// The coordinate is already routable: deletions leave
				// x-coordinates in T (§2), so this is the re-insertion
				// of a previously deleted point — reuse the stale
				// entry. (Inserting an x equal to a LIVE point's x
				// violates the problem's set-of-reals contract; the
				// caller-facing structures reject it.)
				p.tstore.Write(h, nd)
				break
			}
			nd.xs = append(nd.xs, 0)
			copy(nd.xs[i+1:], nd.xs[i:])
			nd.xs[i] = pt.X
			p.tstore.Write(h, nd)
			break
		}
		p.tstore.Write(h, nd)
		h = nd.kids[routeKid(nd, pt.X)]
	}

	// Descent 2: place pt into the topmost pilot set that must hold it.
	p.placePoint(pt)

	// Rebalance: rebuild under the parent of the highest unbalanced
	// node; if the root itself is unbalanced, rebuild globally with a
	// taller tree.
	if unbalanced != em.NilHandle {
		und := p.tstore.Read(unbalanced)
		if und.parent == em.NilHandle {
			p.rebuildAll(p.liveAll())
			return
		}
		p.rebuildSubtree(und.parent)
	}
	p.maybeGlobalRebuild()
}

// placePoint walks the root-to-leaf path of T̂ toward pt.X and inserts
// pt into the first node v where it belongs: a T-leaf (whose pilot holds
// everything not absorbed above), a pilot whose representative pt
// outranks, or a pilot with spare capacity (< B points) whose subtree
// below stores nothing.
//
// The last condition is what keeps Invariant 2 of Lemma 3 inductive: if
// pt were placed below a node v with |pilot(v)| < B and an empty
// subtree, v's "all descendants empty" exemption would vanish with no
// deletion tokens to cover B − |pilot(v)|. Placing pt at v instead is
// legal (nothing below v outranks it) and shrinks B − |pilot(v)|.
func (p *PST) placePoint(pt point.P) {
	h := p.root
	for {
		nd := p.tstore.Read(h)
		for _, idx := range descendVS(nd, pt.X) {
			m := nd.vs[idx]
			takeHere := nd.level == 0 || pt.Score >= m.rep ||
				(m.size < p.opt.PilotB && !p.anyChildNonempty(nd, vid{h, idx}))
			if takeHere {
				ps := append(p.readPilot(m.pilot), pt)
				p.writePilot(nd, idx, ps)
				p.tstore.Write(h, nd)
				p.tok.onInsert(m.pilot)
				if len(ps) > 2*p.opt.PilotB {
					p.pushDown(vid{h, idx})
				}
				return
			}
		}
		nd = p.tstore.Read(h)
		h = nd.kids[routeKid(nd, pt.X)]
	}
}

// Delete removes the point with the given coordinate and score,
// reporting whether it was present. The x-coordinate is deliberately NOT
// removed from the base tree (§2: "we do not remove the x-coordinate of
// p from the base tree T"); stale coordinates disappear at the next
// rebuild touching their leaf.
func (p *PST) Delete(pt point.P) bool {
	if p.root == em.NilHandle {
		return false
	}
	h := p.root
	for {
		nd := p.tstore.Read(h)
		for _, idx := range descendVS(nd, pt.X) {
			m := nd.vs[idx]
			if m.size == 0 || pt.Score < m.rep {
				continue
			}
			// By the layering of pilots along a root-to-leaf path, pt
			// can only live here.
			ps := p.readPilot(m.pilot)
			at := -1
			for i, q := range ps {
				if q.X == pt.X && q.Score == pt.Score {
					at = i
					break
				}
			}
			if at < 0 {
				return false
			}
			ps = append(ps[:at], ps[at+1:]...)
			p.writePilot(nd, idx, ps)
			p.tstore.Write(h, nd)
			p.tok.onDelete(m.pilot)
			p.n--
			p.fixUnderflow(vid{h, idx})
			p.maybeGlobalRebuild()
			return true
		}
		nd = p.tstore.Read(h)
		if nd.level == 0 {
			return false
		}
		h = nd.kids[routeKid(nd, pt.X)]
	}
}

// pushDown restores |pilot(v)| ≤ 2B by moving the lowest |pilot|−B
// points into the pilot sets of v's (at most two) T̂ children, cascading
// as needed.
func (p *PST) pushDown(v vid) {
	nd := p.tstore.Read(v.t)
	m := nd.vs[v.idx]
	ps := p.readPilot(m.pilot)
	if len(ps) <= 2*p.opt.PilotB {
		return
	}
	point.SortByScoreDesc(ps)
	keep := append([]point.P(nil), ps[:p.opt.PilotB]...)
	movers := ps[p.opt.PilotB:]
	p.writePilot(nd, v.idx, keep)
	p.tstore.Write(v.t, nd)

	kids := p.vchildren(nd, v)
	if len(kids) == 0 {
		panic("pst: pilot overflow at a leaf")
	}
	var overflowed []vid
	for _, c := range kids {
		cn := p.tstore.Read(c.t)
		clo, chi := slabOf(cn, c.idx)
		var take []point.P
		for _, q := range movers {
			if q.X >= clo && q.X < chi {
				take = append(take, q)
			}
		}
		if len(take) == 0 {
			continue
		}
		cps := append(p.readPilot(cn.vs[c.idx].pilot), take...)
		p.writePilot(cn, c.idx, cps)
		p.tstore.Write(c.t, cn)
		p.tok.onPushDown(m.pilot, cn.vs[c.idx].pilot, len(take))
		if len(cps) > 2*p.opt.PilotB {
			overflowed = append(overflowed, c)
		}
	}
	for _, c := range overflowed {
		p.pushDown(c)
	}
}

// anyChildNonempty reports whether a T̂ child of v has a non-empty
// pilot. nd must be the loaded record of v.t.
func (p *PST) anyChildNonempty(nd *tnode, v vid) bool {
	for _, c := range p.vchildren(nd, v) {
		var sz int
		if c.t == v.t {
			sz = nd.vs[c.idx].size
		} else {
			sz = p.tstore.Read(c.t).vs[c.idx].size
		}
		if sz > 0 {
			return true
		}
	}
	return false
}

// pullUpOnce performs one pull-up at v: it moves the
// min(B/2, B−|pilot(v)|) highest points of the children's pilot sets
// into pilot(v). It reports whether the pull-up was draining (fewer
// points were available than requested), in which case the entire
// subtree below v is empty and its tokens disappear (rule 6).
func (p *PST) pullUpOnce(v vid) (drained bool) {
	nd := p.tstore.Read(v.t)
	m := nd.vs[v.idx]
	need := p.opt.PilotB / 2
	if r := p.opt.PilotB - m.size; r < need {
		need = r
	}
	if need <= 0 {
		return false
	}
	kids := p.vchildren(nd, v)
	type src struct {
		c  vid
		ps []point.P
	}
	var srcs []src
	var all []point.P
	for _, c := range kids {
		cn := p.tstore.Read(c.t)
		ps := p.readPilot(cn.vs[c.idx].pilot)
		srcs = append(srcs, src{c, ps})
		all = append(all, ps...)
	}
	point.SortByScoreDesc(all)
	drained = len(all) < need
	if len(all) > need {
		all = all[:need]
	}
	if len(all) == 0 {
		return drained
	}
	cut := all[len(all)-1].Score // movers: score ≥ cut
	moved := 0
	for _, s := range srcs {
		var stay, go_ []point.P
		for _, q := range s.ps {
			if q.Score >= cut {
				go_ = append(go_, q)
			} else {
				stay = append(stay, q)
			}
		}
		if len(go_) == 0 {
			continue
		}
		cn := p.tstore.Read(s.c.t)
		p.writePilot(cn, s.c.idx, stay)
		p.tstore.Write(s.c.t, cn)
		p.tok.onPullUp(nd.vs[v.idx].pilot, cn.vs[s.c.idx].pilot, len(go_))
		moved += len(go_)
	}
	if moved != len(all) {
		panic("pst: pull-up cut mismatch")
	}
	nd = p.tstore.Read(v.t)
	ps := append(p.readPilot(nd.vs[v.idx].pilot), all...)
	p.writePilot(nd, v.idx, ps)
	p.tstore.Write(v.t, nd)
	if drained {
		p.dropTokensBelow(v.t, v.idx)
	}
	return drained
}

// fixUnderflow remedies a pilot underflow at v (|pilot| < B/2 while a
// child pilot is non-empty): at most two pull-ups, fixing child
// underflows recursively after each, until |pilot(v)| = B or a draining
// pull-up occurred — the procedure of §2 "Deletion".
func (p *PST) fixUnderflow(v vid) {
	nd := p.tstore.Read(v.t)
	if nd.vs[v.idx].size >= p.opt.PilotB/2 || !p.anyChildNonempty(nd, v) {
		return
	}
	for round := 0; round < 2; round++ {
		drained := p.pullUpOnce(v)
		nd = p.tstore.Read(v.t)
		for _, c := range p.vchildren(nd, v) {
			p.fixUnderflow(c)
		}
		nd = p.tstore.Read(v.t)
		if drained || nd.vs[v.idx].size >= p.opt.PilotB {
			return
		}
	}
}
