package pst

import (
	"math"

	"repro/internal/em"
	"repro/internal/point"
)

// cap returns the weight cap of a level-l node: Branch^(l+1). A node
// whose weight exceeds its cap is unbalanced (the paper's WBB condition;
// the lower bound B^(l+1)/4 cannot be violated here because deletions do
// not remove x-coordinates from T).
func (p *PST) cap(level int) int {
	c := 1
	for i := 0; i <= level; i++ {
		if c > (1<<40)/p.opt.Branch {
			return 1 << 40 // effectively unbounded
		}
		c *= p.opt.Branch
	}
	return c
}

// buildVS constructs the canonical balanced binary search tree over f
// child slabs (the secondary tree T(u) of §2). Index 0 is the root;
// children have larger indices than their parents, so iterating indices
// in decreasing order visits T(u) bottom-up.
func buildVS(f int) []vmeta {
	var vs []vmeta
	var rec func(lo, hi, parent int) int
	rec = func(lo, hi, parent int) int {
		idx := len(vs)
		vs = append(vs, vmeta{parent: parent, left: -1, right: -1, kid: -1, lo: lo, hi: hi, rep: math.Inf(-1)})
		if hi-lo == 1 {
			vs[idx].kid = lo
			return idx
		}
		mid := (lo + hi) / 2
		vs[idx].left = rec(lo, mid, idx)
		vs[idx].right = rec(mid, hi, idx)
		return idx
	}
	rec(0, f, -1)
	return vs
}

// allocPilots allocates an empty pilot record for every vmeta of nd.
func (p *PST) allocPilots(nd *tnode) {
	for i := range nd.vs {
		nd.vs[i].pilot = p.pstore.Alloc(nil)
	}
}

// buildSub constructs a fresh T subtree of the given level over the
// sorted, distinct x-coordinates xs with slab [lo, hi). Pilot sets are
// left empty; the caller grounds points at the leaves and refills.
func (p *PST) buildSub(xs []float64, level int, lo, hi float64) em.Handle {
	if level == 0 {
		nd := &tnode{
			level: 0, lo: lo, hi: hi,
			weight: len(xs),
			xs:     append([]float64(nil), xs...),
			vs:     []vmeta{{parent: -1, left: -1, right: -1, kid: -1, rep: math.Inf(-1)}},
		}
		p.allocPilots(nd)
		return p.tstore.Alloc(nd)
	}
	// Split xs into children of target weight 0.7·cap(level-1): still
	// Ω(cap(level-1)) insert slack before a child overflows, with a
	// fanout of ~1.4·Branch instead of 2·Branch, keeping the node
	// record (and hence every representative-block read) smaller.
	childCap := p.cap(level - 1)
	target := childCap * 7 / 10
	if target < 1 {
		target = 1
	}
	f := (len(xs) + target - 1) / target
	if f < 1 {
		f = 1
	}
	nd := &tnode{level: level, lo: lo, hi: hi, weight: len(xs), vs: buildVS(f)}
	for j := 0; j < f; j++ {
		a, b := j*len(xs)/f, (j+1)*len(xs)/f
		clo := lo
		if j > 0 {
			clo = xs[a]
		}
		chi := hi
		if j < f-1 {
			chi = xs[b]
		}
		kid := p.buildSub(xs[a:b], level-1, clo, chi)
		nd.kids = append(nd.kids, kid)
		nd.kidLo = append(nd.kidLo, clo)
	}
	p.allocPilots(nd)
	h := p.tstore.Alloc(nd)
	for j, kid := range nd.kids {
		p.tstore.Update(kid, func(c **tnode) {
			(*c).parent = h
			(*c).childIdx = j
		})
	}
	return h
}

// collectLeaves appends the leaf tnodes under h in slab order.
func (p *PST) collectLeaves(h em.Handle, out *[]em.Handle) {
	nd := p.tstore.Read(h)
	if nd.level == 0 {
		*out = append(*out, h)
		return
	}
	for _, kid := range nd.kids {
		p.collectLeaves(kid, out)
	}
}

// ground distributes pts (sorted by x) onto the leaf pilot sets of the
// subtree rooted at h: the terminal state of the paper's pilot grounding
// process, reached directly during reconstruction.
func (p *PST) ground(h em.Handle, pts []point.P) {
	var leaves []em.Handle
	p.collectLeaves(h, &leaves)
	i := 0
	for _, lh := range leaves {
		nd := p.tstore.Read(lh)
		j := i
		for j < len(pts) && pts[j].X < nd.hi {
			j++
		}
		if j > i {
			p.writePilot(nd, 0, append([]point.P(nil), pts[i:j]...))
			p.tstore.Write(lh, nd)
		}
		i = j
	}
	if i != len(pts) {
		panic("pst: ground lost points")
	}
}

// refill fills the pilot sets of the subtree rooted at h bottom-up: each
// node is populated "using the same algorithm as treating a pilot set
// underflow", i.e. pull-ups until |pilot| = B or the pull-up drains.
func (p *PST) refill(h em.Handle) {
	nd := p.tstore.Read(h)
	if nd.level > 0 {
		for _, kid := range nd.kids {
			p.refill(kid)
		}
	}
	// Secondary-tree children have larger indices, so decreasing index
	// order is bottom-up within T(u). Leaves already hold their points.
	if nd.level == 0 {
		return
	}
	for idx := len(nd.vs) - 1; idx >= 0; idx-- {
		p.fillPilot(vid{h, idx})
	}
}

// fillPilot tops pilot(v) up to exactly B points via pull-ups during
// reconstruction. Children depleted by a pull-up are re-filled to B
// recursively (not merely to B/2): this is what establishes the base
// case of Lemma 3 — right after reconstruction every node has either
// |pilot| = B or an empty subtree below, so both invariants hold with
// zero tokens.
func (p *PST) fillPilot(v vid) {
	for {
		nd := p.tstore.Read(v.t)
		if nd.vs[v.idx].size >= p.opt.PilotB {
			return
		}
		if p.pullUpOnce(v) {
			return // drained: nothing left below
		}
		for _, c := range p.vchildren(p.tstore.Read(v.t), v) {
			p.fillPilot(c)
		}
	}
}

// freeSubtree releases every tnode and pilot record under h.
func (p *PST) freeSubtree(h em.Handle) {
	nd := p.tstore.Read(h)
	for i := range nd.vs {
		p.tok.drop(nd.vs[i].pilot)
		p.pstore.Free(nd.vs[i].pilot)
	}
	for _, kid := range nd.kids {
		p.freeSubtree(kid)
	}
	p.tstore.Free(h)
}

// collectPoints appends every pilot point stored in the subtree of h.
func (p *PST) collectPoints(h em.Handle, out *[]point.P) {
	nd := p.tstore.Read(h)
	for i := range nd.vs {
		*out = append(*out, p.readPilot(nd.vs[i].pilot)...)
	}
	for _, kid := range nd.kids {
		p.collectPoints(kid, out)
	}
}

// collectXS appends the x-lists of all leaves under h in order.
func (p *PST) collectXS(h em.Handle, out *[]float64) {
	nd := p.tstore.Read(h)
	if nd.level == 0 {
		*out = append(*out, nd.xs...)
		return
	}
	for _, kid := range nd.kids {
		p.collectXS(kid, out)
	}
}

// rebuildSubtree reconstructs the subtree of ûhat: pilot grounding, node
// reconstruction, and bottom-up pilot refill (§2 "Rebalancing"). The
// x-coordinates (including stale ones) and the pilot points stored
// inside the subtree are preserved; points absorbed by pilots above ûhat
// are unaffected.
func (p *PST) rebuildSubtree(uhat em.Handle) {
	// Rule 7 of Lemma 3: reconstruction destroys all tokens in the
	// subtree and creates none — the pull-ups performed by the refill
	// are part of the rebuild, not update-time operations.
	saved := p.tok
	p.tok = nil
	defer func() { p.tok = saved }()

	old := p.tstore.Read(uhat)
	level, lo, hi := old.level, old.lo, old.hi
	parent, childIdx := old.parent, old.childIdx

	var xs []float64
	p.collectXS(uhat, &xs)
	var pts []point.P
	p.collectPoints(uhat, &pts)
	point.SortByX(pts)
	p.freeSubtree(uhat)

	fresh := p.buildSub(xs, level, lo, hi)
	p.ground(fresh, pts)
	p.refill(fresh)

	if parent == em.NilHandle {
		p.root = fresh
	} else {
		p.tstore.Update(fresh, func(c **tnode) {
			(*c).parent = parent
			(*c).childIdx = childIdx
		})
		p.tstore.Update(parent, func(c **tnode) {
			(*c).kids[childIdx] = fresh
		})
	}
}

// rebuildAll reconstructs the entire structure over the live points
// (global rebuilding: resets stale x-coordinates and the height).
func (p *PST) rebuildAll(pts []point.P) {
	saved := p.tok
	p.tok = nil
	defer func() { p.tok = saved }()

	if p.root != em.NilHandle {
		p.freeSubtree(p.root)
		p.root = em.NilHandle
	}
	pts = append([]point.P(nil), pts...)
	point.SortByX(pts)
	p.n = len(pts)
	p.sizeAtBuild = len(pts)
	p.updatesSince = 0
	if len(pts) == 0 {
		return
	}
	xs := make([]float64, len(pts))
	for i, q := range pts {
		xs[i] = q.X
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] == xs[i-1] {
			panic("pst: duplicate x-coordinates (input must be a set of reals)")
		}
	}
	// Smallest root level whose cap leaves at least 2× slack.
	level := 0
	for p.cap(level) < 2*len(xs) && p.cap(level) < 1<<40 {
		level++
	}
	p.root = p.buildSub(xs, level, math.Inf(-1), math.Inf(1))
	p.ground(p.root, pts)
	p.refill(p.root)
}

// FreeAll releases every block of the structure, leaving it empty.
func (p *PST) FreeAll() {
	if p.root != em.NilHandle {
		p.freeSubtree(p.root)
		p.root = em.NilHandle
	}
	p.n = 0
	p.sizeAtBuild = 0
	p.updatesSince = 0
}

// liveAll returns every live point (a full scan, used by the global
// rebuild and by tests).
func (p *PST) liveAll() []point.P {
	if p.root == em.NilHandle {
		return nil
	}
	var pts []point.P
	p.collectPoints(p.root, &pts)
	return pts
}

// maybeGlobalRebuild applies the standard global rebuilding rule: after
// n0/2 updates since the last build (n0 = size at that build), rebuild
// from scratch, keeping the height Θ(lg n).
func (p *PST) maybeGlobalRebuild() {
	p.updatesSince++
	threshold := p.sizeAtBuild / 2
	if threshold < 8 {
		threshold = 8
	}
	if p.updatesSince > threshold {
		p.rebuildAll(p.liveAll())
	}
}
