package pst

import (
	"math"

	"repro/internal/em"
	"repro/internal/heap"
	"repro/internal/point"
)

// packVid encodes a vid as an int64 heap reference (tnode handles are
// small integers; secondary trees have < 2^16 nodes for any sane branch
// parameter).
func packVid(v vid) int64 { return int64(v.t)<<16 | int64(v.idx) }

func unpackVid(r int64) vid { return vid{em.Handle(r >> 16), int(r & 0xffff)} }

// heapSrc exposes the forest of max-heaps H(v), v ∈ Π, as a heap.Source:
// nodes are T̂ nodes with non-empty pilot sets, keyed by the
// y-coordinate of their representative. The heap order holds because
// pilot sets are layered by score along every root-to-leaf path.
type heapSrc struct {
	p     *PST
	roots []vid
}

func (s *heapSrc) Roots() []heap.Entry {
	var out []heap.Entry
	for _, v := range s.roots {
		nd := s.p.tstore.Read(v.t)
		if nd.vs[v.idx].size > 0 {
			out = append(out, heap.Entry{Ref: packVid(v), Key: nd.vs[v.idx].rep})
		}
	}
	return out
}

func (s *heapSrc) Children(ref int64) []heap.Entry {
	v := unpackVid(ref)
	nd := s.p.tstore.Read(v.t)
	var out []heap.Entry
	for _, c := range s.p.vchildren(nd, v) {
		var cm vmeta
		if c.t == v.t {
			cm = nd.vs[c.idx]
		} else {
			cm = s.p.tstore.Read(c.t).vs[c.idx]
		}
		if cm.size > 0 {
			out = append(out, heap.Entry{Ref: packVid(c), Key: cm.rep})
		}
	}
	return out
}

// pathTo returns the T̂ root-to-leaf path whose slabs contain x.
func (p *PST) pathTo(x float64) []vid {
	var path []vid
	h := p.root
	for {
		nd := p.tstore.Read(h)
		for _, idx := range descendVS(nd, x) {
			path = append(path, vid{h, idx})
		}
		if nd.level == 0 {
			return path
		}
		h = nd.kids[routeKid(nd, x)]
	}
}

// Query returns the k highest-scoring points with x ∈ [x1, x2], sorted
// by descending score (all of them if fewer than k qualify), in
// O(lg n + k/B) I/Os — the §2 query algorithm:
//
//  1. descend the two paths π1, π2 and collect their pilot points (Q1);
//  2. identify Π, the hanging children of π'1 ∪ π'2 (below the LCA)
//     whose slabs are covered by q, and view their subtrees as
//     score-ordered max-heaps keyed by pilot representatives;
//  3. extract the φ·(lg n + k/B) largest representatives R (heap
//     selection; Frederickson's bound realized as best-first search);
//  4. gather the pilot sets of the selected nodes (Q2) and of their
//     in-range siblings and children (Q3);
//  5. report the k highest points of Q1 ∪ Q2 ∪ Q3 in q.
//
// Lemma 2 (φ = 16) guarantees Q1 ∪ Q2 ∪ Q3 contains the true top k.
func (p *PST) Query(x1, x2 float64, k int) []point.P {
	if p.root == em.NilHandle || k <= 0 || x1 > x2 {
		return nil
	}
	path1 := p.pathTo(x1)
	path2 := p.pathTo(x2)

	onPath := make(map[vid]bool, len(path1)+len(path2))
	for _, v := range path1 {
		onPath[v] = true
	}
	for _, v := range path2 {
		onPath[v] = true
	}

	seen := make(map[vid]bool)
	var cands []point.P
	collect := func(v vid) {
		if seen[v] {
			return
		}
		seen[v] = true
		nd := p.tstore.Read(v.t)
		for _, q := range p.readPilot(nd.vs[v.idx].pilot) {
			if q.In(x1, x2) {
				cands = append(cands, q)
			}
		}
	}

	// Q1: pilot points on π1 ∪ π2.
	for v := range onPath {
		collect(v)
	}

	// v* = LCA; π'1, π'2 = the portions below (and including) v*.
	lca := 0
	for lca < len(path1) && lca < len(path2) && path1[lca] == path2[lca] {
		lca++
	}
	lca-- // last common index; ≥ 0 since both start at the root
	prime := make(map[vid]bool)
	for _, v := range path1[lca:] {
		prime[v] = true
	}
	for _, v := range path2[lca:] {
		prime[v] = true
	}

	// Π: children of π' nodes, off the paths, with slab ⊆ q.
	covered := func(v vid) bool {
		nd := p.tstore.Read(v.t)
		lo, hi := slabOf(nd, v.idx)
		return lo >= x1 && hi <= math.Nextafter(x2, math.Inf(1))
	}
	var pi []vid
	for v := range prime {
		nd := p.tstore.Read(v.t)
		for _, c := range p.vchildren(nd, v) {
			if !prime[c] && !onPath[c] && covered(c) {
				pi = append(pi, c)
			}
		}
	}

	// Heap selection of the φ·(lg n + ⌈k/B⌉) largest representatives.
	t := p.opt.Phi * (p.lgN() + (k+p.opt.PilotB-1)/p.opt.PilotB)
	src := &heapSrc{p: p, roots: pi}
	var selected []heap.Entry
	if p.opt.Adaptive {
		var complete bool
		selected, complete = p.selectAdaptive(src, t, k, collect, &cands)
		if complete {
			// Early termination proved every unexplored subtree (and
			// hence every would-be Q3 candidate) is dominated by the
			// k-th best candidate already collected.
			point.SortByScoreDesc(cands)
			if k < len(cands) {
				cands = cands[:k]
			}
			return cands
		}
	} else {
		selected = heap.SelectTop(src, t)
	}

	// Q2: pilots of the selected nodes. Q3: pilots of their in-range
	// siblings and of their children.
	inSR := make(map[vid]bool, len(selected))
	for _, e := range selected {
		inSR[unpackVid(e.Ref)] = true
	}
	for _, e := range selected {
		v := unpackVid(e.Ref)
		collect(v)
		nd := p.tstore.Read(v.t)
		for _, c := range p.vchildren(nd, v) {
			collect(c)
		}
		par := p.vparent(nd, v)
		if par.valid() {
			pn := p.tstore.Read(par.t)
			for _, sib := range p.vchildren(pn, par) {
				if sib != v && !inSR[sib] && covered(sib) {
					collect(sib)
				}
			}
		}
	}

	// Report the k highest candidates. The candidate pool has size
	// O(B lg n + k); selecting within it is CPU work on blocks already
	// read.
	point.SortByScoreDesc(cands)
	if k < len(cands) {
		cands = cands[:k]
	}
	return cands
}

// selectAdaptive is heap.SelectTop with the early-termination rule of
// Options.Adaptive. Each selected node's pilot is collected immediately
// through collect (so the pilot read is never repeated), and selection
// stops once the k-th best in-range candidate dominates the upper bound
// of every unexplored subtree — a frontier node's subtree scores never
// exceed its parent's representative, since the parent's pilot holds the
// highest remaining points. complete=true certifies that no Q3 gathering
// is needed: every would-be Q3 node sits in (or below) the frontier.
func (p *PST) selectAdaptive(src *heapSrc, t, k int, collect func(vid), cands *[]point.P) (out []heap.Entry, complete bool) {
	type fe struct {
		e     heap.Entry
		bound float64 // upper bound on every score in the subtree
	}
	var frontier []fe
	for _, e := range src.Roots() {
		// Π roots are bounded only by path pilots (already in Q1).
		frontier = append(frontier, fe{e, math.Inf(1)})
	}
	kth := func() float64 {
		if len(*cands) < k {
			return math.Inf(-1)
		}
		tmp := append([]point.P(nil), *cands...)
		point.SortByScoreDesc(tmp)
		return tmp[k-1].Score
	}
	for len(out) < t && len(frontier) > 0 {
		bi := 0
		for i := range frontier {
			if frontier[i].e.Key > frontier[bi].e.Key {
				bi = i
			}
		}
		top := frontier[bi]
		frontier = append(frontier[:bi], frontier[bi+1:]...)
		out = append(out, top.e)
		v := unpackVid(top.e.Ref)
		collect(v)
		rep := p.tstore.Read(v.t).vs[v.idx].rep
		for _, c := range src.Children(top.e.Ref) {
			frontier = append(frontier, fe{c, rep})
		}
		if len(*cands) >= k {
			cut := kth()
			maxBound := math.Inf(-1)
			for _, f := range frontier {
				if f.bound > maxBound {
					maxBound = f.bound
				}
			}
			if cut >= maxBound {
				return out, true
			}
		}
	}
	return out, len(frontier) == 0
}

// QueryAll is Query with k = n (report everything in range; test helper).
func (p *PST) QueryAll(x1, x2 float64) []point.P { return p.Query(x1, x2, p.n) }

// Report3Sided returns every point p with p.X ∈ [x1, x2] and
// score(p) ≥ tau (unsorted). This is the three-sided reporting query the
// reduction of §3.3 needs: given the threshold produced by approximate
// range k-selection, report the Θ(k) qualifying points and select the
// top k among them for free.
//
// The traversal prunes by the pilot layering: a node whose representative
// (= minimum pilot score) is below tau cannot have qualifying points in
// its subtree beyond its own pilot, so recursion stops there. Interior
// visits are therefore paid for by output (Ω(B/2) qualifying points per
// fully-qualified pilot) plus the two boundary paths.
func (p *PST) Report3Sided(x1, x2, tau float64) []point.P {
	if p.root == em.NilHandle || x1 > x2 {
		return nil
	}
	var out []point.P
	var visit func(v vid)
	visit = func(v vid) {
		nd := p.tstore.Read(v.t)
		m := nd.vs[v.idx]
		lo, hi := slabOf(nd, v.idx)
		if hi <= x1 || lo > x2 || m.size == 0 {
			return
		}
		for _, q := range p.readPilot(m.pilot) {
			if q.In(x1, x2) && q.Score >= tau {
				out = append(out, q)
			}
		}
		if m.rep >= tau {
			for _, c := range p.vchildren(nd, v) {
				visit(c)
			}
		}
	}
	visit(vid{p.root, 0})
	return out
}
