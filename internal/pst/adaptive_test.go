package pst

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/em"
	"repro/internal/point"
)

func TestAdaptiveMatchesExact(t *testing.T) {
	pts := genPoints(3000, 21)
	exact := Bulk(newDisk(16), Options{}, pts)
	adapt := Bulk(newDisk(16), Options{Adaptive: true}, pts)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 150; i++ {
		x1 := rng.Float64() * 12000
		x2 := x1 + rng.Float64()*8000
		k := rng.Intn(300) + 1
		a := exact.Query(x1, x2, k)
		b := adapt.Query(x1, x2, k)
		if !sameSet(a, b) {
			t.Fatalf("query %d [%v,%v] k=%d: adaptive diverged (%d vs %d points)",
				i, x1, x2, k, len(b), len(a))
		}
	}
}

func TestAdaptiveNeverCostsMoreSelections(t *testing.T) {
	pts := genPoints(20000, 23)
	d1 := em.NewDisk(em.Config{B: 32, M: 256 * 32})
	d2 := em.NewDisk(em.Config{B: 32, M: 256 * 32})
	exact := Bulk(d1, Options{}, pts)
	adapt := Bulk(d2, Options{Adaptive: true}, pts)
	cost := func(d *em.Disk, p *PST, k int) float64 {
		rng := rand.New(rand.NewSource(int64(k)))
		d.DropCache()
		base := d.Stats()
		for i := 0; i < 5; i++ {
			x1 := rng.Float64() * 3e4
			p.Query(x1, x1+4e4, k)
			d.DropCache()
		}
		return float64(d.Stats().Sub(base).Reads) / 5
	}
	for _, k := range []int{16, 256, 2048} {
		ce, ca := cost(d1, exact, k), cost(d2, adapt, k)
		if ca > 1.1*ce {
			t.Fatalf("k=%d: adaptive %0.f reads > exact %0.f", k, ca, ce)
		}
		t.Logf("k=%d: exact %.0f reads, adaptive %.0f reads", k, ce, ca)
	}
}

func TestReport3Sided(t *testing.T) {
	pts := genPoints(2000, 24)
	p := Bulk(newDisk(16), Options{}, pts)
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 150; i++ {
		x1 := rng.Float64() * 8000
		x2 := x1 + rng.Float64()*4000
		tau := rng.Float64() * 8000
		got := p.Report3Sided(x1, x2, tau)
		var want []point.P
		for _, q := range pts {
			if q.In(x1, x2) && q.Score >= tau {
				want = append(want, q)
			}
		}
		if !sameSet(got, want) {
			t.Fatalf("3-sided [%v,%v] tau=%v: %d vs %d", x1, x2, tau, len(got), len(want))
		}
	}
}

func TestReport3SidedEdges(t *testing.T) {
	p := Bulk(newDisk(8), Options{}, genPoints(100, 26))
	if got := p.Report3Sided(5, 4, 0); got != nil {
		t.Fatal("inverted range")
	}
	if got := p.Report3Sided(math.Inf(-1), math.Inf(1), math.Inf(1)); len(got) != 0 {
		t.Fatalf("tau=+inf returned %d", len(got))
	}
	all := p.Report3Sided(math.Inf(-1), math.Inf(1), math.Inf(-1))
	if len(all) != 100 {
		t.Fatalf("tau=-inf returned %d", len(all))
	}
	empty := New(newDisk(8), Options{})
	if got := empty.Report3Sided(0, 1, 0); got != nil {
		t.Fatal("empty structure")
	}
}

func TestReport3SidedOutputSensitive(t *testing.T) {
	d := em.NewDisk(em.Config{B: 32, M: 256 * 32})
	pts := genPoints(30000, 27)
	p := Bulk(d, Options{}, pts)
	// High tau (few outputs) must cost far less than low tau (many).
	cost := func(tau float64) float64 {
		d.DropCache()
		base := d.Stats()
		p.Report3Sided(math.Inf(-1), math.Inf(1), tau)
		return float64(d.Stats().Sub(base).Reads)
	}
	cheap := cost(119000) // top ~1%
	costly := cost(-1e18) // everything
	if cheap > costly/4 {
		t.Fatalf("not output-sensitive: few=%v all=%v", cheap, costly)
	}
	t.Logf("3-sided reads: top-1%% → %.0f, all → %.0f", cheap, costly)
}
