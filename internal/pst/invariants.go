package pst

import (
	"fmt"
	"math"

	"repro/internal/em"
	"repro/internal/point"
)

// CheckInvariants validates every structural invariant of §2 (and, when
// token tracking is on, the two invariants of Lemma 3). It is meter-free
// (uses Peek) and intended for tests; it returns the first violation.
//
// Checked properties:
//   - tree shape: parent/child links, slab partition, weight caps,
//     x-lists sorted and within slabs;
//   - pilot sizing: |pilot| ≤ 2B always; |pilot| < B/2 only when the
//     whole T̂ subtree below is empty ("includes all of them");
//   - layering: every pilot point lies in its node's slab, and scores in
//     pilot(v) are all ≥ every score stored strictly below v;
//   - representative blocks: rep = min score of the pilot, size = |pilot|;
//   - empty-pilot rule: an empty pilot implies an empty subtree;
//   - point conservation: the pilots partition the live point set;
//   - Lemma 3, Invariant 1: internal v holds ≥ |pilot(v)| − B insertion
//     tokens; Invariant 2: internal v holds ≥ B − |pilot(v)| deletion
//     tokens unless its subtree below is empty.
func (p *PST) CheckInvariants() error {
	if p.root == em.NilHandle {
		if p.n != 0 {
			return fmt.Errorf("empty tree with n=%d", p.n)
		}
		return nil
	}
	total := 0
	if err := p.checkT(p.root, math.Inf(-1), math.Inf(1), &total); err != nil {
		return err
	}
	if _, err := p.checkV(vid{p.root, 0}, math.Inf(1)); err != nil {
		return err
	}
	if total != p.n {
		return fmt.Errorf("pilot points %d != n %d", total, p.n)
	}
	return nil
}

// checkT validates the base-tree shape under h and accumulates pilot
// point counts.
func (p *PST) checkT(h em.Handle, lo, hi float64, total *int) error {
	nd := p.tstore.Peek(h)
	if nd.lo != lo || nd.hi != hi {
		return fmt.Errorf("tnode %d slab [%v,%v) want [%v,%v)", h, nd.lo, nd.hi, lo, hi)
	}
	if nd.weight > p.cap(nd.level) {
		return fmt.Errorf("tnode %d weight %d exceeds cap %d", h, nd.weight, p.cap(nd.level))
	}
	for i := range nd.vs {
		*total += nd.vs[i].size
		ps := p.pstore.Peek(nd.vs[i].pilot)
		if len(ps) != nd.vs[i].size {
			return fmt.Errorf("tnode %d vs %d size %d != |pilot| %d", h, i, nd.vs[i].size, len(ps))
		}
		if len(ps) > 2*p.opt.PilotB {
			return fmt.Errorf("tnode %d vs %d pilot overflow: %d", h, i, len(ps))
		}
		rep := math.Inf(-1)
		slo, shi := slabOf(nd, i)
		for _, q := range ps {
			if q.X < slo || q.X >= shi {
				return fmt.Errorf("tnode %d vs %d point %v outside slab [%v,%v)", h, i, q, slo, shi)
			}
			if rep == math.Inf(-1) || q.Score < rep {
				rep = q.Score
			}
		}
		if rep != nd.vs[i].rep && !(len(ps) == 0 && math.IsInf(nd.vs[i].rep, -1)) {
			return fmt.Errorf("tnode %d vs %d rep %v want %v", h, i, nd.vs[i].rep, rep)
		}
	}
	if nd.level == 0 {
		for i := 1; i < len(nd.xs); i++ {
			if nd.xs[i-1] >= nd.xs[i] {
				return fmt.Errorf("tnode %d x-list out of order", h)
			}
		}
		if len(nd.xs) > 0 && (nd.xs[0] < lo || nd.xs[len(nd.xs)-1] >= hi) {
			return fmt.Errorf("tnode %d x-list outside slab", h)
		}
		return nil
	}
	if len(nd.kids) == 0 {
		return fmt.Errorf("internal tnode %d without children", h)
	}
	if nd.kidLo[0] != lo {
		return fmt.Errorf("tnode %d kidLo[0]=%v want %v", h, nd.kidLo[0], lo)
	}
	for j, kid := range nd.kids {
		clo := nd.kidLo[j]
		chi := hi
		if j+1 < len(nd.kids) {
			chi = nd.kidLo[j+1]
		}
		cn := p.tstore.Peek(kid)
		if cn.parent != h || cn.childIdx != j {
			return fmt.Errorf("tnode %d kid %d bad parent link", h, j)
		}
		if cn.level != nd.level-1 {
			return fmt.Errorf("tnode %d kid %d level %d want %d", h, j, cn.level, nd.level-1)
		}
		if err := p.checkT(kid, clo, chi, total); err != nil {
			return err
		}
	}
	return nil
}

// checkV validates pilot layering and the Lemma 3 invariants over T̂,
// returning the maximum score stored strictly below v (−Inf if none).
func (p *PST) checkV(v vid, ancestorMin float64) (float64, error) {
	nd := p.tstore.Peek(v.t)
	m := nd.vs[v.idx]
	ps := p.pstore.Peek(m.pilot)

	pilotMin, pilotMax := math.Inf(1), math.Inf(-1)
	for _, q := range ps {
		if q.Score > ancestorMin {
			return 0, fmt.Errorf("layering: score %v above ancestor min %v", q.Score, ancestorMin)
		}
		pilotMin = math.Min(pilotMin, q.Score)
		pilotMax = math.Max(pilotMax, q.Score)
	}
	nextMin := math.Min(ancestorMin, pilotMin)

	belowMax := math.Inf(-1)
	belowNonEmpty := false
	childNonEmpty := false
	for _, c := range p.vchildren(nd, v) {
		cn := p.tstore.Peek(c.t)
		if cn.vs[c.idx].size > 0 {
			childNonEmpty = true
		}
		bm, err := p.checkV(c, nextMin)
		if err != nil {
			return 0, err
		}
		if !math.IsInf(bm, -1) {
			belowNonEmpty = true
			belowMax = math.Max(belowMax, bm)
		}
		if cn.vs[c.idx].size > 0 {
			belowNonEmpty = true
		}
	}
	// Empty pilot ⇒ empty subtree below; < B/2 ⇒ "includes all".
	if len(ps) == 0 && belowNonEmpty {
		return 0, fmt.Errorf("empty pilot with non-empty subtree at %v", v)
	}
	if len(ps) < p.opt.PilotB/2 && childNonEmpty {
		return 0, fmt.Errorf("underflowed pilot (%d < B/2=%d) with non-empty child at %v",
			len(ps), p.opt.PilotB/2, v)
	}
	// Lemma 3 invariants, when tokens are tracked. Leaves are exempt
	// (rule 5), as is any v whose subtree below is empty (Invariant 2).
	if p.tok != nil && nd.level > 0 {
		if got, want := p.tok.ins[m.pilot], len(ps)-p.opt.PilotB; got < want {
			return 0, fmt.Errorf("Invariant 1 violated at %v: %d insertion tokens < %d", v, got, want)
		}
		if belowNonEmpty || childNonEmpty {
			if got, want := p.tok.del[m.pilot], p.opt.PilotB-len(ps); got < want {
				return 0, fmt.Errorf("Invariant 2 violated at %v: %d deletion tokens < %d", v, got, want)
			}
		}
	}
	// The subtree max seen from the parent includes this pilot.
	ret := belowMax
	if len(ps) > 0 {
		ret = math.Max(ret, pilotMax)
	}
	return ret, nil
}

// Live returns all live points (test/bench helper; full scan).
func (p *PST) Live() []point.P { return p.liveAll() }
