package pst

// Stress and adversarial-pattern tests: insertion orders and query
// shapes that maximize rebalancing, push-down cascades and pull-up
// chains, plus degenerate query geometry.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/point"
)

func TestSortedAscendingInserts(t *testing.T) {
	// Monotone x keeps splitting the rightmost leaf: the WBB rebuild
	// path runs constantly.
	p := New(newDisk(8), Options{TrackTokens: true})
	var pts []point.P
	for i := 0; i < 1500; i++ {
		q := point.P{X: float64(i), Score: float64((i * 7919) % 100000)}
		pts = append(pts, q)
		p.Insert(q)
		if i%211 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("at %d: %v", i, err)
			}
		}
	}
	if !sameSet(p.QueryAll(math.Inf(-1), math.Inf(1)), pts) {
		t.Fatal("live set diverged")
	}
}

func TestSortedDescendingInserts(t *testing.T) {
	p := New(newDisk(8), Options{TrackTokens: true})
	for i := 0; i < 1200; i++ {
		p.Insert(point.P{X: float64(-i), Score: float64((i * 104729) % 100000)})
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneScoresAscending(t *testing.T) {
	// Every new point outranks all previous ones: it lands at the top of
	// its path and push-downs cascade maximally.
	p := New(newDisk(8), Options{TrackTokens: true})
	rng := rand.New(rand.NewSource(31))
	var pts []point.P
	for i := 0; i < 1200; i++ {
		q := point.P{X: rng.Float64() * 1e6, Score: float64(i)}
		pts = append(pts, q)
		p.Insert(q)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := p.Query(0, 1e6, 10)
	want := point.TopK(pts, 0, 1e6, 10)
	if !sameSet(got, want) {
		t.Fatal("query after monotone-score stream")
	}
}

func TestDeleteHighestRepeatedly(t *testing.T) {
	// Always deleting the current maximum drains pilot sets top-down:
	// the pull-up machinery runs on every operation.
	pts := genPoints(800, 32)
	p := Bulk(newDisk(8), Options{TrackTokens: true}, pts)
	point.SortByScoreDesc(pts)
	for i, q := range pts {
		if !p.Delete(q) {
			t.Fatalf("delete #%d failed", i)
		}
		if i%97 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletions: %v", i+1, err)
			}
		}
	}
	if p.Len() != 0 {
		t.Fatalf("len=%d", p.Len())
	}
}

func TestDeleteLowestRepeatedly(t *testing.T) {
	pts := genPoints(800, 33)
	p := Bulk(newDisk(8), Options{TrackTokens: true}, pts)
	point.SortByScoreDesc(pts)
	for i := len(pts) - 1; i >= 0; i-- {
		if !p.Delete(pts[i]) {
			t.Fatalf("delete failed")
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAlternatingInsertDeleteSamePoints(t *testing.T) {
	// Re-inserting the same points exercises stale x-coordinates in the
	// base tree (deletions leave them behind by design).
	pts := genPoints(300, 34)
	p := Bulk(newDisk(8), Options{TrackTokens: true}, pts)
	for round := 0; round < 6; round++ {
		for _, q := range pts {
			if !p.Delete(q) {
				t.Fatalf("round %d: delete failed", round)
			}
		}
		for _, q := range pts {
			p.Insert(q)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !sameSet(p.QueryAll(math.Inf(-1), math.Inf(1)), pts) {
		t.Fatal("set diverged after churn rounds")
	}
}

func TestPointQueries(t *testing.T) {
	// Degenerate ranges [x, x] must return exactly the point at x.
	pts := genPoints(500, 35)
	p := Bulk(newDisk(8), Options{}, pts)
	for _, q := range pts[:100] {
		got := p.Query(q.X, q.X, 3)
		if len(got) != 1 || got[0] != q {
			t.Fatalf("point query at %v: %v", q.X, got)
		}
	}
}

func TestHugeKOnSmallRange(t *testing.T) {
	pts := genPoints(400, 36)
	p := Bulk(newDisk(8), Options{}, pts)
	got := p.Query(0, 100, 1<<20)
	want := point.TopK(pts, 0, 100, 1<<20)
	if !sameSet(got, want) {
		t.Fatalf("huge k: %d vs %d", len(got), len(want))
	}
}

func TestSingletonStructure(t *testing.T) {
	p := New(newDisk(8), Options{TrackTokens: true})
	q := point.P{X: 5, Score: 7}
	p.Insert(q)
	if got := p.Query(0, 10, 1); len(got) != 1 || got[0] != q {
		t.Fatalf("singleton query: %v", got)
	}
	if !p.Delete(q) {
		t.Fatal("singleton delete")
	}
	if p.Len() != 0 {
		t.Fatal("len")
	}
	p.Insert(q) // reuse after drain
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredXWithUniformScores(t *testing.T) {
	// Tight x-clusters force deep, narrow subtrees.
	rng := rand.New(rand.NewSource(37))
	p := New(newDisk(8), Options{TrackTokens: true})
	var pts []point.P
	for c := 0; c < 5; c++ {
		center := float64(c) * 1e6
		for i := 0; i < 200; i++ {
			q := point.P{X: center + rng.Float64(), Score: rng.Float64() * 1e6}
			pts = append(pts, q)
			p.Insert(q)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Query exactly one cluster.
	got := p.Query(2e6, 2e6+1, 20)
	want := point.TopK(pts, 2e6, 2e6+1, 20)
	if !sameSet(got, want) {
		t.Fatal("cluster query mismatch")
	}
	// Query the gap between clusters.
	if got := p.Query(2e6+2, 3e6-2, 20); len(got) != 0 {
		t.Fatalf("gap query returned %d", len(got))
	}
}

func TestOptionValidation(t *testing.T) {
	// Degenerate options are clamped, not crashed on.
	p := New(newDisk(8), Options{PilotB: 1, Branch: 1, Phi: -3})
	for i := 0; i < 100; i++ {
		p.Insert(point.P{X: float64(i), Score: float64(i * 31 % 100)})
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Phi() != 16 {
		t.Fatalf("phi=%d", p.Phi())
	}
}
