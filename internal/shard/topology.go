package shard

// This file is the TOPOLOGY layer of the router: an immutable,
// epoch-versioned snapshot of the shard fleet, swapped atomically on
// every split, merge and rebalance, plus every observability read
// served from it.
//
// The snapshot is the concurrency keystone of the three-layer design.
// Readers (TopK, QueryBatch, Count, Boundaries, NumShards, Stats,
// String, DropCache) pin the current snapshot with one atomic load and
// never touch the topology lock — so no read ever contends with a
// lifecycle writer, and a lifecycle writer never waits for in-flight
// fan-outs to drain. Updates still take the topology lock in read mode
// (an update applied to a shard that a concurrent re-partition just
// retired would be silently lost), and lifecycle passes take it in
// write mode; see Router.mu.
//
// Consistency: a read is linearized at the moment it pins the
// snapshot. A split or merge that retires a shard mid-read is
// invisible to that read — the retired shard is still a complete,
// self-consistent machine holding exactly the points it held at
// publish time, and per-shard mutexes keep each machine's internal
// state (including the buffer pool's LRU lists, which queries mutate)
// serialized between the pinned reader and anything else touching it.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"repro/internal/em"
	"repro/internal/point"
)

// topology is one immutable snapshot of the fleet: the shard slice
// (cut positions embedded in it), the epoch that orders snapshots, and
// the transfer history of disks retired by the re-partitions that led
// here. Fields are never mutated after publish; lifecycle passes build
// a fresh value and swap the router's pointer.
type topology struct {
	// epoch increments at every publish. Surfaced by Router.Epoch for
	// operators (topkd exports it as a metric) and tests.
	epoch int64
	// shards is the contiguous cover of the real line, ascending.
	shards []*shard
	// retired accumulates the transfer counters of disks discarded by
	// splits, merges and rebalances up to this snapshot, so aggregate
	// Stats never lose history. Space gauges are stripped at retire
	// time (a discarded disk's blocks die with it).
	retired em.Stats
}

// locate returns the index of the shard covering x.
//
// The binary search is hand-rolled with sort.Search's exact
// semantics (smallest i with the predicate true): sort.Search takes
// the predicate as a closure, and a closure is a static allocation
// site the //topk:nomalloc contract bans — locate runs on every
// routed read.
//
//topk:nomalloc
func (t *topology) locate(x float64) int {
	// First shard with hi > x; lows are contiguous so this is the cover.
	// x = +Inf matches no half-open range and is clamped to the last
	// shard (the same defensive treatment a single Index gives it).
	lo, hi := 0, len(t.shards)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x < t.shards[mid].hi {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(t.shards) {
		lo--
	}
	return lo
}

// publish installs a new snapshot built from the given shard slice and
// retired history. Callers hold mu in write mode (or own the router
// exclusively, at construction time).
func (r *Router) publish(shards []*shard, retired em.Stats) {
	var epoch int64 = 1
	if old := r.topo.Load(); old != nil {
		epoch = old.epoch + 1
	}
	r.topo.Store(&topology{epoch: epoch, shards: shards, retired: retired})
	r.notifyEpoch(uint64(epoch))
}

// notifyEpoch delivers e to every WatchEpoch subscriber without
// blocking the publisher: each subscriber channel coalesces to the
// latest epoch (buffer 1), because the feed's contract is "the
// topology changed, re-read what you need", not a lossless event log.
func (r *Router) notifyEpoch(e uint64) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	for ch := range r.subs {
		sendLatest(ch, e)
	}
}

// sendLatest replaces a channel's buffered value with e. Caller holds
// subMu, which serializes senders with each other and with the close
// in the WatchEpoch unsubscribe goroutine.
func sendLatest(ch chan uint64, e uint64) {
	select {
	case ch <- e:
		return
	default:
	}
	select {
	case <-ch:
	default:
	}
	select {
	case ch <- e:
	default:
	}
}

// WatchEpoch returns a channel that delivers the topology epoch: the
// current value immediately, then the latest epoch after each snapshot
// publish (splits, merges, rebalances, stats resets). Intermediate
// epochs are coalesced — a slow receiver sees the newest value, not a
// backlog — so subscribers can never stall a lifecycle pass. The
// channel is closed when ctx is cancelled. Gateways and caches use it
// to detect member topology changes cheaply instead of polling Stats.
func (r *Router) WatchEpoch(ctx context.Context) <-chan uint64 {
	ch := make(chan uint64, 1)
	r.subMu.Lock()
	if r.subs == nil {
		r.subs = make(map[chan uint64]struct{})
	}
	r.subs[ch] = struct{}{}
	sendLatest(ch, uint64(r.Epoch()))
	r.subMu.Unlock()
	go func() {
		<-ctx.Done()
		r.subMu.Lock()
		delete(r.subs, ch)
		close(ch)
		r.subMu.Unlock()
	}()
	return ch
}

// snapshot pins the current topology. The returned value is immutable;
// per-shard mutexes still guard each shard's machine.
//
//topk:nomalloc
func (r *Router) snapshot() *topology { return r.topo.Load() }

// Epoch returns the current topology epoch — it increments on every
// snapshot publish (splits, merges, rebalances, stats resets).
func (r *Router) Epoch() int64 { return r.snapshot().epoch }

// NumShards returns the current shard count. Served from the snapshot:
// never blocks, never contends with writers.
func (r *Router) NumShards() int { return len(r.snapshot().shards) }

// Boundaries returns the current cut positions (len NumShards−1),
// ascending, from the current snapshot. Tests use it to craft
// boundary-straddling queries.
func (r *Router) Boundaries() []float64 {
	t := r.snapshot()
	cuts := make([]float64, 0, len(t.shards)-1)
	for _, s := range t.shards[1:] {
		cuts = append(cuts, s.lo)
	}
	return cuts
}

// partition cuts sorted (by X) points into up to want contiguous
// shards of near-equal size. Cut positions must fall strictly between
// distinct X values, so fewer shards may result when points repeat a
// prefix... positions are distinct by assumption, but defensively any
// zero-width range is merged left.
func partition(opt Options, sorted []point.P, want int) []*shard {
	if want < 1 {
		want = 1
	}
	if want > len(sorted) {
		want = len(sorted)
	}
	if want <= 1 {
		return []*shard{newShard(opt, opt.diskFor(1), math.Inf(-1), math.Inf(1), sorted)}
	}
	disk := opt.diskFor(want)
	var out []*shard
	lo := math.Inf(-1)
	start := 0
	for i := 0; i < want; i++ {
		end := (i + 1) * len(sorted) / want
		if i == want-1 {
			end = len(sorted)
		}
		if end <= start {
			continue
		}
		hi := math.Inf(1)
		if end < len(sorted) {
			hi = sorted[end].X
			// Distinct positions guarantee sorted[end-1].X < hi; if the
			// chunk boundary repeats a position, extend the chunk.
			for end < len(sorted) && sorted[end-1].X >= hi {
				end++
				if end < len(sorted) {
					hi = sorted[end].X
				} else {
					hi = math.Inf(1)
				}
			}
		}
		out = append(out, newShard(opt, disk, lo, hi, sorted[start:end]))
		lo = hi
		start = end
		if end == len(sorted) {
			break
		}
	}
	return out
}

func addStats(a, b em.Stats) em.Stats {
	return em.Stats{
		Reads:      a.Reads + b.Reads,
		Writes:     a.Writes + b.Writes,
		Allocs:     a.Allocs + b.Allocs,
		Frees:      a.Frees + b.Frees,
		BlocksLive: a.BlocksLive + b.BlocksLive,
		BlocksPeak: a.BlocksPeak + b.BlocksPeak,
	}
}

// transfers strips the space gauges from a discarded disk's meter,
// leaving the form in which it may join the retired history: the
// gauges describe blocks that cease to exist with the disk, so
// keeping them would double-count the fleet footprint against the
// rebuilt shard's fresh disk.
func transfers(st em.Stats) em.Stats {
	st.BlocksLive, st.BlocksPeak = 0, 0
	return st
}

// Stats aggregates the I/O meters of every shard disk in the current
// snapshot plus the transfer counters of disks retired by splits,
// merges and rebalances (retired space gauges are stripped at retire
// time — those blocks die with the disk). BlocksLive is the fleet-wide
// live total; BlocksPeak is the high-water mark of that fleet total as
// observed at Stats calls and topology changes — a total some instant
// actually held, not a sum of per-shard peaks from different instants.
//
// Served from the snapshot: Stats takes no topology lock and never
// contends with updates or lifecycle passes (each shard's mutex is
// still taken briefly, since queries mutate the meters). The only
// operation it must not interleave with is ResetStats — the one path
// that moves counters backward — which statsMu serializes, preserving
// the pre-refactor guarantee that a report never mixes old retired
// history with half-reset meters; concurrent Stats calls share the
// lock.
func (r *Router) Stats() em.Stats {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	t := r.snapshot()
	out := t.retired
	for _, s := range t.shards {
		out = addStats(out, s.meter())
	}
	// Monotone-clamp the transfer counters (see the Router field
	// docs): trailing I/Os charged to retired disks by pinned readers
	// must never make a later report tick backward.
	out.Reads = monotone(&r.repReads, out.Reads)
	out.Writes = monotone(&r.repWrites, out.Writes)
	out.Allocs = monotone(&r.repAllocs, out.Allocs)
	out.Frees = monotone(&r.repFrees, out.Frees)
	out.BlocksPeak = r.observePeak(out.BlocksLive)
	return out
}

// monotone folds v into the reported-value floor and returns the
// floor: the maximum of v and everything reported before.
func monotone(floor *atomic.Int64, v int64) int64 {
	for {
		cur := floor.Load()
		if v <= cur {
			return cur
		}
		if floor.CompareAndSwap(cur, v) {
			return v
		}
	}
}

// ResetStats zeroes every shard's read/write counters and drops the
// retired-meter history (space gauges are kept, matching em). It
// publishes a fresh snapshot with an empty retired history, so it
// takes the topology write lock.
func (r *Router) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	t := r.snapshot()
	for _, s := range t.shards {
		s.mu.Lock()
		s.d.ResetMeter()
		s.mu.Unlock()
	}
	r.repReads.Store(0)
	r.repWrites.Store(0)
	r.repAllocs.Store(0)
	r.repFrees.Store(0)
	r.publish(t.shards, em.Stats{})
}

// DropCache evicts every shard's buffer pool so the next operations
// run cold. Unlike the observability reads it is an administrative
// mutation whose point is to leave the CURRENT fleet cold, so it
// takes the topology read lock: a concurrent lifecycle pass could
// otherwise swap in rebuilt shards between the snapshot pin and the
// eviction loop, leaving their pools warm and a "cold" benchmark
// measuring cache hits.
func (r *Router) DropCache() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.snapshot().shards {
		s.mu.Lock()
		s.d.DropCache()
		s.mu.Unlock()
	}
}

// observeFleetPeak samples the fleet-wide live-block total of the
// current snapshot into the peak watermark. Called after every
// topology change; snapshot readers may be querying the shards
// concurrently, so each meter is read under its shard's mutex.
func (r *Router) observeFleetPeak() {
	var live int64
	for _, s := range r.snapshot().shards {
		live += s.meter().BlocksLive
	}
	r.observePeak(live)
}

// observePeak folds one observation of the fleet live total into the
// peak watermark and returns the watermark.
func (r *Router) observePeak(live int64) int64 {
	return monotone(&r.peak, live)
}

// String summarizes the router and its shards, from the current
// snapshot.
func (r *Router) String() string {
	t := r.snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "shard.Router{n=%d, epoch=%d, shards=%d", r.n.Load(), t.epoch, len(t.shards))
	for i, s := range t.shards {
		fmt.Fprintf(&b, ", s%d[%g,%g)=%d", i, s.lo, s.hi, s.size())
	}
	b.WriteString("}")
	return b.String()
}
