package shard

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/workload"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestMaintenanceLoopCoalescesStrandedIdleFleet is the acceptance test
// for the background loop: a fleet whose tiny shard nothing inline
// will ever repair — no delete lands on it, so no inline hook
// re-examines it — must coalesce from the timer-driven pass alone,
// with zero further writes, and keep answering exactly like before.
func TestMaintenanceLoopCoalescesStrandedIdleFleet(t *testing.T) {
	opt := Options{
		Disk:                em.Config{B: 64},
		Core:                core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards:           4,
		MinSplit:            256,
		MaintenanceInterval: 2 * time.Millisecond,
	}
	// Shard sizes 40 / 400 / 600 / 600: shard 0 is far below the merge
	// floor (128), and coalescing it with shard 1 (combined 440) passes
	// the hysteresis veto (440 < Skew·fair = 820) — the fleet is
	// mergeable, but idle: nothing ever triggers the inline hooks.
	groups := [][]point.P{
		band(40, 0, 10, 0),
		band(400, 100, 100, 1000),
		band(600, 300, 100, 10000),
		band(600, 500, 100, 20000),
	}
	var all []point.P
	for _, g := range groups {
		all = append(all, g...)
	}
	r := mkRouter(opt, groups)
	defer r.Close()
	epoch0 := r.Epoch()

	waitFor(t, 10*time.Second, func() bool { return r.NumShards() == 3 },
		"maintenance loop never coalesced the stranded shard")
	if r.Merges() == 0 {
		t.Fatal("Merges() = 0 after maintenance coalesce")
	}
	if r.Epoch() <= epoch0 {
		t.Fatalf("epoch did not advance across the merge: %d -> %d", epoch0, r.Epoch())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The pass must converge: 3 balanced-enough shards, no further
	// merges or splits on subsequent ticks.
	shards, merges := r.NumShards(), r.Merges()
	time.Sleep(20 * time.Millisecond)
	if r.NumShards() != shards || r.Merges() != merges || r.Splits() != 0 {
		t.Fatalf("maintenance did not converge: %s (merges %d->%d, splits %d)",
			r, merges, r.Merges(), r.Splits())
	}
	// Answers stay byte-identical to the oracle over the same points.
	rng := rand.New(rand.NewSource(1))
	gen := workload.NewGen(2)
	qs := gen.Queries(60, 700, 0.01, 0.9, 150)
	qs = append(qs, straddlers(r, 700, 150, rng)...)
	checkQueries(t, r, all, qs)

	// Close is idempotent, and the loop really stops: no lifecycle
	// activity after Close even if the fleet is made mergeable again.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMaintenanceSplitsSkewedIdleFleet: the loop's skew check is the
// split-side mirror — a shard left overloaded (e.g. because the
// insert burst that overloaded it raced the cap and the fleet later
// shrank) splits on the next tick without waiting for another insert.
func TestMaintenanceSplitsSkewedIdleFleet(t *testing.T) {
	opt := Options{
		Disk:      em.Config{B: 64},
		Core:      core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards: 4,
		MinSplit:  256,
		// No background loop: drive Maintain synchronously.
	}
	// 1400 / 200 / 200: total 1800, fair 450; shard 0 holds > 2·fair.
	r := mkRouter(opt, [][]point.P{
		band(1400, 0, 100, 0),
		band(200, 100, 100, 10000),
		band(200, 200, 100, 20000),
	})
	defer r.Close()
	r.Maintain()
	if r.Splits() == 0 {
		t.Fatalf("Maintain did not split the skewed shard: %s", r)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMaintenanceAdaptiveMergeFloor: in auto mode (MinMerge == 0) the
// maintenance pass re-derives the merge floor from observed per-shard
// space overhead — a fleet of skeleton-dominated survivors raises the
// floor above the static default (never past MinSplit), while a
// balanced fleet keeps the default; a fixed MinMerge is never touched.
func TestMaintenanceAdaptiveMergeFloor(t *testing.T) {
	base := Options{
		Disk:      em.Config{B: 64},
		Core:      core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards: 8,
		MinSplit:  64,
	}
	// Skeleton-heavy: one asymptotic reference shard plus tiny
	// survivors whose footprint is almost all fixed structure.
	r := mkRouter(base, [][]point.P{
		band(2000, 0, 100, 0),
		band(8, 200, 10, 100000),
		band(8, 300, 10, 200000),
		band(8, 400, 10, 300000),
	})
	defer r.Close()
	def := r.defaultFloor()
	if got := r.MergeFloor(); got != def {
		t.Fatalf("initial floor = %d, want default %d", got, def)
	}
	r.updateMergeFloor()
	if got := r.MergeFloor(); got <= def || got > base.MinSplit {
		t.Fatalf("adaptive floor = %d, want in (%d, %d]", got, def, base.MinSplit)
	}

	// Balanced fleet: identical shards observe zero fixed overhead, so
	// the floor stays at the default.
	rb := mkRouter(base, [][]point.P{
		band(500, 0, 100, 0),
		band(500, 100, 100, 10000),
		band(500, 200, 100, 20000),
		band(500, 300, 100, 30000),
	})
	defer rb.Close()
	rb.updateMergeFloor()
	if got := rb.MergeFloor(); got != rb.defaultFloor() {
		t.Fatalf("balanced-fleet floor = %d, want default %d", got, rb.defaultFloor())
	}

	// Fixed MinMerge pins the floor; the updater must not move it.
	fixed := base
	fixed.MinMerge = 37
	rf := mkRouter(fixed, [][]point.P{
		band(2000, 0, 100, 0),
		band(8, 200, 10, 100000),
	})
	defer rf.Close()
	rf.updateMergeFloor()
	if got := rf.MergeFloor(); got != 37 {
		t.Fatalf("fixed floor moved: %d, want 37", got)
	}
}

// TestMaintenanceConcurrentChurn is the randomized concurrent
// differential for the snapshot read path: ApplyBatch writers and a
// Rebalance goroutine race QueryBatch readers while the background
// maintenance loop sweeps the fleet — all under -race — and the final
// state must match the brute-force oracle byte for byte.
func TestMaintenanceConcurrentChurn(t *testing.T) {
	opt := testOptions(8)
	opt.MaintenanceInterval = time.Millisecond
	base := workload.NewGen(81).Uniform(2000, 1e6)
	r := Bulk(opt, base, 4)
	defer r.Close()

	const writers = 4
	survivors := make([][]point.P, writers)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			r.Rebalance(4 + i)
		}
	}()
	var wg chan struct{} = make(chan struct{}, writers+4)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { wg <- struct{}{} }()
			// Each writer owns the position band [w, w+1)·1e6/writers and
			// a disjoint score band, so updates never collide.
			gen := workload.NewGen(int64(300 + w))
			lo := float64(w) * 1e6 / writers
			for round := 0; round < 6; round++ {
				var ops []Op
				for _, p := range gen.Uniform(40, 1e6/writers) {
					ops = append(ops, Op{P: point.P{X: lo + p.X, Score: float64(w) + p.Score/2}})
				}
				for i, err := range r.ApplyBatch(ops) {
					if err != nil {
						t.Errorf("concurrent insert %d: %v", i, err)
						return
					}
				}
				var dels []Op
				for i, op := range ops {
					if i%2 == 0 {
						dels = append(dels, Op{Delete: true, P: op.P})
					} else {
						survivors[w] = append(survivors[w], op.P)
					}
				}
				for i, err := range r.ApplyBatch(dels) {
					if err != nil {
						t.Errorf("concurrent delete %d: %v", i, err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { wg <- struct{}{} }()
			gen := workload.NewGen(int64(400 + g))
			for i := 0; i < 25; i++ {
				specs := gen.Queries(8, 1e6, 0.001, 0.3, 50)
				qs := make([]Query, len(specs))
				for j, q := range specs {
					qs[j] = Query{X1: q.X1, X2: q.X2, K: q.K}
				}
				for j, res := range r.QueryBatch(qs) {
					if len(res) > qs[j].K {
						t.Errorf("answer longer than k: %d > %d", len(res), qs[j].K)
						return
					}
					for m := range res {
						if m > 0 && res[m].Score > res[m-1].Score {
							t.Error("QueryBatch out of order under concurrency")
							return
						}
						if res[m].X < qs[j].X1 || res[m].X > qs[j].X2 {
							t.Error("QueryBatch result outside range")
							return
						}
					}
				}
				r.Stats()
				r.Boundaries()
				r.NumShards()
			}
		}(g)
	}
	for i := 0; i < writers+4; i++ {
		<-wg
	}
	<-done
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Quiesced: the surviving point set is deterministic, so the final
	// router must answer exactly like the oracle.
	live := append([]point.P(nil), base...)
	for _, s := range survivors {
		live = append(live, s...)
	}
	rng := rand.New(rand.NewSource(82))
	gen := workload.NewGen(83)
	qs := gen.Queries(50, 1e6, 0.001, 0.8, 150)
	qs = append(qs, straddlers(r, 1e6, 150, rng)...)
	checkQueries(t, r, live, qs)
}
