package shard

// Tests for the maintenance pass that reclaims over-provisioned
// buffer pools between rebuilds (shrinkPools): pools above the
// re-derived fair split shrink when fleet budget utilization is below
// half, and a well-utilized fleet is never perturbed.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
)

// mkPoolRouter hand-builds a 2-shard router whose shards carry an
// explicit per-shard pool budget — the over/under-provisioned states
// diskFor drift produces between rebuilds, constructed directly.
func mkPoolRouter(opt Options, poolWords int, groups [][]point.P) *Router {
	r := newRouter(opt)
	var shards []*shard
	lo := math.Inf(-1)
	total := 0
	for i, g := range groups {
		point.SortByX(g)
		hi := math.Inf(1)
		if i < len(groups)-1 {
			hi = groups[i+1][0].X
		}
		d := r.opt.Disk
		d.M = poolWords
		shards = append(shards, newShard(r.opt, d, lo, hi, g))
		for _, p := range g {
			r.scores[p.Score] = struct{}{}
		}
		total += len(g)
		lo = hi
	}
	r.publish(shards, em.Stats{})
	r.n.Store(int64(total))
	return r
}

func poolOptions() Options {
	return Options{
		Disk:      em.Config{B: 64, M: 16 * 1024},
		Core:      core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards: 4,
		MinSplit:  256,
		MinMerge:  -1, // isolate the pool pass from merges
	}.withDefaults()
}

// TestMaintainShrinksOverProvisionedPools: two shards built as if for
// a one-shard fleet (full fleet budget each) hold almost no data, so
// fleet budget utilization is far below half; a maintenance pass must
// shrink both pools to the fair split for the current count.
func TestMaintainShrinksOverProvisionedPools(t *testing.T) {
	opt := poolOptions()
	r := mkPoolRouter(opt, opt.Disk.M, [][]point.P{band(20, 0, 100, 0), band(20, 500, 100, 1000)})
	fair := opt.diskFor(2).M
	for i, s := range r.snapshot().shards {
		if s.d.M() != opt.Disk.M {
			t.Fatalf("precondition: shard %d pool = %d, want full budget %d", i, s.d.M(), opt.Disk.M)
		}
	}
	r.Maintain()
	for i, s := range r.snapshot().shards {
		if s.d.M() != fair {
			t.Errorf("shard %d pool = %d words after Maintain, want fair split %d", i, s.d.M(), fair)
		}
	}
	// Re-running is a no-op: nothing is above fair anymore.
	r.Maintain()
	for i, s := range r.snapshot().shards {
		if s.d.M() != fair {
			t.Errorf("second pass moved shard %d pool to %d, want stable %d", i, s.d.M(), fair)
		}
	}
}

// TestMaintainKeepsUtilizedPools: the same over-provisioned split, but
// the shards actually hold enough data to occupy at least half the
// pooled frames — the pass must leave the pools alone, because the
// working set is using the memory the budget over-granted.
func TestMaintainKeepsUtilizedPools(t *testing.T) {
	opt := poolOptions()
	opt.Disk.M = 2 * 1024 // 32 frames per shard at B=64
	pool := opt.Disk.M
	r := mkPoolRouter(opt, pool, [][]point.P{band(2000, 0, 100, 0), band(2000, 500, 100, 10000)})
	// Confirm the fixture produces the high-utilization regime the test
	// is about: every pooled frame backed by live data.
	var cap64, occ int64
	for _, s := range r.snapshot().shards {
		frames := int64(s.d.Frames())
		live := s.d.Stats().BlocksLive
		if live > frames {
			live = frames
		}
		cap64 += frames
		occ += live
	}
	if float64(occ) < poolShrinkUtil*float64(cap64) {
		t.Fatalf("fixture under-utilized (%d/%d frames): grow the bands", occ, cap64)
	}
	r.Maintain()
	for i, s := range r.snapshot().shards {
		if s.d.M() != pool {
			t.Errorf("shard %d pool = %d after Maintain, want untouched %d", i, s.d.M(), pool)
		}
	}
}
