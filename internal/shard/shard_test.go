package shard

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/workload"
)

// testOptions keeps shards in the polylog regime with small tree-shape
// parameters, matching the rest of the test suite at test-sized n.
func testOptions(maxShards int) Options {
	return Options{
		Disk:      em.Config{B: 64},
		Core:      core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards: maxShards,
		MinSplit:  256,
	}
}

// checkQueries compares the router against the brute-force oracle on
// the given queries, requiring exactly equal (ordered) answers.
func checkQueries(t *testing.T, r *Router, all []point.P, qs []workload.QuerySpec) {
	t.Helper()
	for _, q := range qs {
		got := r.TopK(q.X1, q.X2, q.K)
		want := point.TopK(all, q.X1, q.X2, q.K)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%v,%v,%d):\n got %v\nwant %v", q.X1, q.X2, q.K, got, want)
		}
		if gc, wc := r.Count(q.X1, q.X2), len(point.TopK(all, q.X1, q.X2, len(all))); gc != wc {
			t.Fatalf("Count(%v,%v): got %d want %d", q.X1, q.X2, gc, wc)
		}
	}
}

// straddlers builds queries guaranteed to cross every cut position.
func straddlers(r *Router, xMax float64, maxK int, rng *rand.Rand) []workload.QuerySpec {
	var qs []workload.QuerySpec
	for _, cut := range r.Boundaries() {
		w := rng.Float64() * xMax / 4
		qs = append(qs,
			workload.QuerySpec{X1: cut - w, X2: cut + w, K: rng.Intn(maxK) + 1},
			workload.QuerySpec{X1: cut, X2: cut + w, K: rng.Intn(maxK) + 1},
			workload.QuerySpec{X1: cut - w, X2: cut, K: rng.Intn(maxK) + 1},
		)
	}
	// One query spanning every shard at once.
	qs = append(qs, workload.QuerySpec{X1: math.Inf(-1), X2: math.Inf(1), K: maxK})
	return qs
}

func TestBulkDifferentialOracle(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		gen := workload.NewGen(int64(100 + shards))
		pts := gen.Uniform(4000, 1e6)
		r := Bulk(testOptions(shards), pts, shards)
		if got := r.NumShards(); got != shards {
			t.Fatalf("NumShards = %d, want %d", got, shards)
		}
		if r.Len() != len(pts) {
			t.Fatalf("Len = %d, want %d", r.Len(), len(pts))
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		qs := gen.Queries(60, 1e6, 0.001, 0.9, 200)
		qs = append(qs, straddlers(r, 1e6, 200, rng)...)
		checkQueries(t, r, pts, qs)
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusteredDifferentialOracle(t *testing.T) {
	// Clustered data makes quantile cuts land inside hot regions, so
	// boundary-straddling queries dominate.
	gen := workload.NewGen(7)
	pts := gen.Clustered(5000, 4, 1e6)
	r := Bulk(testOptions(6), pts, 6)
	rng := rand.New(rand.NewSource(8))
	qs := gen.Queries(80, 1e6, 0.0005, 0.6, 300)
	qs = append(qs, straddlers(r, 1e6, 300, rng)...)
	checkQueries(t, r, pts, qs)
}

func TestIncrementalUpdatesAndSplit(t *testing.T) {
	gen := workload.NewGen(11)
	r := New(testOptions(8))
	var live []point.P
	for _, p := range gen.Uniform(6000, 1e6) {
		r.Insert(p)
		live = append(live, p)
	}
	if r.NumShards() < 2 {
		t.Fatalf("no splits after 6000 uniform inserts: %s", r)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete a third, uniformly.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		j := rng.Intn(len(live))
		if !r.Delete(live[j]) {
			t.Fatalf("Delete(%v) not found", live[j])
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	if r.Delete(point.P{X: -12345, Score: -1}) {
		t.Fatal("deleted a point that was never inserted")
	}
	qs := gen.Queries(60, 1e6, 0.001, 0.8, 150)
	qs = append(qs, straddlers(r, 1e6, 150, rng)...)
	checkQueries(t, r, live, qs)
}

func TestSkewedInsertsSplitHotShard(t *testing.T) {
	opt := testOptions(8)
	r := New(opt)
	gen := workload.NewGen(13)
	// Everything lands in one narrow region: the covering shard must
	// keep splitting until the cap.
	pts := gen.Uniform(8000, 100.0)
	for _, p := range pts {
		r.Insert(p)
	}
	if got := r.NumShards(); got < 4 {
		t.Fatalf("skewed load produced only %d shards: %s", got, r)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	checkQueries(t, r, pts, straddlers(r, 100.0, 100, rng))
}

func TestRebalancePreservesContents(t *testing.T) {
	gen := workload.NewGen(15)
	pts := gen.Clustered(4000, 2, 1e6)
	r := Bulk(testOptions(8), pts, 2)
	before := r.TopK(math.Inf(-1), math.Inf(1), len(pts))
	r.Rebalance(8)
	if got := r.NumShards(); got != 8 {
		t.Fatalf("NumShards after Rebalance(8) = %d", got)
	}
	after := r.TopK(math.Inf(-1), math.Inf(1), len(pts))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Rebalance changed contents")
	}
	if r.Len() != len(pts) {
		t.Fatalf("Len after rebalance = %d, want %d", r.Len(), len(pts))
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	checkQueries(t, r, pts, straddlers(r, 1e6, 200, rng))

	// Rebalance with a nonsense target defaults to MaxShards instead of
	// collapsing the fleet to one shard.
	r.Rebalance(0)
	if got := r.NumShards(); got != 8 {
		t.Fatalf("NumShards after Rebalance(0) = %d, want MaxShards 8", got)
	}
}

func TestApplyBatchMatchesSequential(t *testing.T) {
	gen := workload.NewGen(17)
	base := gen.Uniform(2000, 1e6)
	r := Bulk(testOptions(4), base, 4)
	seq := append([]point.P(nil), base...)

	updates := gen.Mix(1500, 1000, 0.4, 1e6)
	ops := make([]Op, len(updates))
	for i, u := range updates {
		if u.Delete != nil {
			ops[i] = Op{Delete: true, P: *u.Delete}
		} else {
			ops[i] = Op{P: *u.Insert}
		}
	}
	res := r.ApplyBatch(ops)
	for i, u := range updates {
		if u.Delete != nil {
			for j, p := range seq {
				if p == *u.Delete {
					seq = append(seq[:j], seq[j+1:]...)
					break
				}
			}
			if res[i] != nil {
				t.Fatalf("op %d: batch delete of live point: %v", i, res[i])
			}
		} else {
			seq = append(seq, *u.Insert)
			if res[i] != nil {
				t.Fatalf("op %d: insert: %v", i, res[i])
			}
		}
	}
	if r.Len() != len(seq) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(seq))
	}
	rng := rand.New(rand.NewSource(18))
	qs := gen.Queries(50, 1e6, 0.001, 0.8, 150)
	qs = append(qs, straddlers(r, 1e6, 150, rng)...)
	checkQueries(t, r, seq, qs)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBatchesAndQueries is the -race workhorse: writers
// apply batches over disjoint position bands while readers run TopK,
// Count and Stats, and a rebalancer re-partitions mid-flight.
func TestConcurrentBatchesAndQueries(t *testing.T) {
	const writers = 4
	r := Bulk(testOptions(8), workload.NewGen(19).Uniform(2000, 1e6), 4)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns the position band [w, w+1)·1e6/writers and
			// a disjoint score band, so updates never collide.
			gen := workload.NewGen(int64(100 + w))
			lo := float64(w) * 1e6 / writers
			for round := 0; round < 6; round++ {
				var ops []Op
				for _, p := range gen.Uniform(40, 1e6/writers) {
					ops = append(ops, Op{P: point.P{
						X:     lo + p.X,
						Score: float64(w) + p.Score/2, // bands: [w, w+0.5)
					}})
				}
				res := r.ApplyBatch(ops)
				for i := range res {
					if res[i] != nil {
						t.Errorf("concurrent insert: %v", res[i])
						return
					}
				}
				// Delete half of what this writer just inserted.
				var dels []Op
				for i, op := range ops {
					if i%2 == 0 {
						dels = append(dels, Op{Delete: true, P: op.P})
					}
				}
				res = r.ApplyBatch(dels)
				for i := range res {
					if res[i] != nil {
						t.Errorf("concurrent delete of own point: %v", res[i])
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < 40; i++ {
				x1 := rng.Float64() * 9e5
				got := r.TopK(x1, x1+1e5, 20)
				for j := 1; j < len(got); j++ {
					if got[j].Score > got[j-1].Score {
						t.Error("TopK out of order under concurrency")
						return
					}
				}
				r.Count(x1, x1+2e5)
				r.Stats()
				r.Len()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			r.Rebalance(4 + i)
		}
	}()
	wg.Wait()
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAggregationAcrossSplits(t *testing.T) {
	r := Bulk(testOptions(4), workload.NewGen(21).Uniform(3000, 1e6), 4)
	s := r.Stats()
	if s.Writes == 0 || s.BlocksLive == 0 {
		t.Fatalf("empty aggregate stats after bulk load: %+v", s)
	}
	// Rebalancing retires all four disks; transfer history must survive.
	r.Rebalance(2)
	s2 := r.Stats()
	if s2.Writes < s.Writes {
		t.Fatalf("writes went backwards across rebalance: %d -> %d", s.Writes, s2.Writes)
	}
	r.ResetStats()
	s3 := r.Stats()
	if s3.Reads != 0 || s3.Writes != 0 {
		t.Fatalf("ResetStats left transfers: %+v", s3)
	}
	if s3.BlocksLive == 0 {
		t.Fatal("ResetStats dropped space gauges")
	}
	r.DropCache()
	r.TopK(0, 1e6, 50)
	if r.Stats().Reads == 0 {
		t.Fatal("cold query charged no reads")
	}
}

// TestStatsResetNotTorn: Stats holds no topology lock, so its
// serialization against ResetStats (statsMu) must prevent a report
// from summing old retired history with half-zeroed meters. With no
// other traffic, every report must show either the full pre-reset
// write count or zero — any value strictly between is a torn read.
func TestStatsResetNotTorn(t *testing.T) {
	r := Bulk(testOptions(4), workload.NewGen(25).Uniform(3000, 1e6), 4)
	r.Rebalance(4) // builds retired history, so a tear has two sources to mix
	full := r.Stats().Writes
	if full == 0 {
		t.Fatal("no writes after bulk load + rebalance")
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if w := r.Stats().Writes; w != full && w != 0 {
					t.Errorf("torn Stats: writes = %d, want %d or 0", w, full)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		r.ResetStats()
	}()
	close(start)
	wg.Wait()
	if got := r.Stats().Writes; got != 0 {
		t.Fatalf("writes after reset = %d", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	r := New(testOptions(4))
	if got := r.TopK(0, 1, 5); got != nil {
		t.Fatalf("TopK on empty = %v", got)
	}
	if got := r.Count(0, 1); got != 0 {
		t.Fatalf("Count on empty = %d", got)
	}
	r.Insert(point.P{X: 5, Score: 1})
	if got := r.TopK(10, 0, 5); got != nil {
		t.Fatalf("inverted range = %v", got)
	}
	if got := r.TopK(0, 10, 0); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
	if got := len(r.TopK(math.Inf(-1), math.Inf(1), 10)); got != 1 {
		t.Fatalf("full-range TopK length = %d", got)
	}
	if res := r.ApplyBatch(nil); res != nil {
		t.Fatalf("empty batch = %v", res)
	}

	// NaN bounds on a multi-shard router: locate cannot order NaN, so
	// these must short-circuit instead of crossing the fan-out range.
	rb := Bulk(testOptions(4), workload.NewGen(29).Uniform(1000, 1e6), 4)
	nan := math.NaN()
	for _, q := range [][2]float64{{nan, 50}, {50, nan}, {nan, nan}} {
		if got := rb.TopK(q[0], q[1], 5); got != nil {
			t.Fatalf("TopK(%v,%v) = %v", q[0], q[1], got)
		}
		if got := rb.Count(q[0], q[1]); got != 0 {
			t.Fatalf("Count(%v,%v) = %d", q[0], q[1], got)
		}
	}
}

// TestContractViolationsReturnErrors: duplicate positions, duplicate
// scores (including on a DIFFERENT shard) and non-finite coordinates
// are sentinel errors, nothing panics, nothing is mutated, and —
// critically for a serving layer — every lock is released so the
// router keeps serving.
func TestContractViolationsReturnErrors(t *testing.T) {
	r := Bulk(testOptions(4), workload.NewGen(23).Uniform(1000, 1e6), 4)
	dup := r.TopK(math.Inf(-1), math.Inf(1), 1)[0]

	if err := r.Insert(point.P{X: dup.X, Score: 123456}); !errors.Is(err, core.ErrDuplicatePosition) {
		t.Fatalf("duplicate position: %v", err)
	}
	// The duplicate score lives on whatever shard holds dup; inserting
	// far outside the data domain routes to the last shard — the
	// router-level score set must still catch it.
	if err := r.Insert(point.P{X: 9e9, Score: dup.Score}); !errors.Is(err, core.ErrDuplicateScore) {
		t.Fatalf("cross-shard duplicate score: %v", err)
	}
	if err := r.Insert(point.P{X: math.NaN(), Score: 1}); !errors.Is(err, core.ErrInvalidPoint) {
		t.Fatalf("NaN position: %v", err)
	}
	if err := r.Insert(point.P{X: 1e9, Score: math.Inf(1)}); !errors.Is(err, core.ErrInvalidPoint) {
		t.Fatalf("Inf score: %v", err)
	}
	// The same rejections through the batch path, alongside an op that
	// succeeds.
	res := r.ApplyBatch([]Op{
		{P: point.P{X: dup.X, Score: 654321}},
		{P: point.P{X: 8e9, Score: dup.Score}},
		{P: point.P{X: math.Inf(-1), Score: 2}},
		{Delete: true, P: point.P{X: -4242, Score: 4242}},
		{P: point.P{X: -3, Score: -3}},
	})
	want := []error{core.ErrDuplicatePosition, core.ErrDuplicateScore, core.ErrInvalidPoint, core.ErrNotFound, nil}
	for i, err := range res {
		if !errors.Is(err, want[i]) {
			t.Fatalf("batch op %d: %v, want %v", i, err, want[i])
		}
	}
	if got := r.Len(); got != 1001 {
		t.Fatalf("Len after rejected duplicates = %d, want 1001", got)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The router must still serve every shard: full-range query, point
	// update, batch and rebalance all succeed afterwards.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := r.Count(math.Inf(-1), math.Inf(1)); got < 1000 {
			t.Errorf("Count after rejections = %d", got)
		}
		if err := r.Insert(point.P{X: -1, Score: -1}); err != nil {
			t.Errorf("Insert after rejections: %v", err)
		}
		if !r.Delete(point.P{X: -1, Score: -1}) {
			t.Error("Delete after rejections")
		}
		res := r.ApplyBatch([]Op{{P: point.P{X: -2, Score: -2}}})
		if len(res) != 1 || res[0] != nil {
			t.Errorf("ApplyBatch after rejections: %v", res)
		}
		r.Rebalance(2) // needs the write lock: fails if a read lock leaked
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("router wedged after rejections (leaked lock)")
	}

	// A deleted score is free for reuse anywhere in the fleet.
	if !r.Delete(point.P{X: dup.X, Score: dup.Score}) {
		t.Fatal("delete dup owner")
	}
	if err := r.Insert(point.P{X: 9e9, Score: dup.Score}); err != nil {
		t.Fatalf("reusing freed score: %v", err)
	}
}

// TestQueryBatchMatchesTopK: the multi-query fan-out answers exactly
// like sequential TopK calls on the same topology, boundary
// straddlers and degenerate queries included.
func TestQueryBatchMatchesTopK(t *testing.T) {
	gen := workload.NewGen(27)
	pts := gen.Clustered(5000, 3, 1e6)
	r := Bulk(testOptions(6), pts, 6)
	rng := rand.New(rand.NewSource(28))
	specs := gen.Queries(60, 1e6, 0.001, 0.8, 200)
	specs = append(specs, straddlers(r, 1e6, 200, rng)...)
	qs := make([]Query, 0, len(specs)+3)
	for _, q := range specs {
		qs = append(qs, Query{X1: q.X1, X2: q.X2, K: q.K})
	}
	qs = append(qs,
		Query{X1: 10, X2: 5, K: 3},
		Query{X1: 0, X2: 1e6, K: 0},
		Query{X1: math.NaN(), X2: 1, K: 3},
	)
	got := r.QueryBatch(qs)
	if len(got) != len(qs) {
		t.Fatalf("got %d answers for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		want := r.TopK(q.X1, q.X2, q.K)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d (%+v):\n got %v\nwant %v", i, q, got[i], want)
		}
	}
	if r.QueryBatch(nil) != nil {
		t.Fatal("QueryBatch(nil) != nil")
	}
}

// TestPerShardPoolSizing: the configured Disk.M is a fleet budget,
// divided across shards at build time, with the model's 2B floor.
func TestPerShardPoolSizing(t *testing.T) {
	opt := Options{Disk: em.Config{B: 64, M: 64 * 64}}.withDefaults()
	if got := opt.diskFor(1).M; got != 64*64 {
		t.Fatalf("diskFor(1).M = %d, want %d", got, 64*64)
	}
	if got := opt.diskFor(4).M; got != 64*64/4 {
		t.Fatalf("diskFor(4).M = %d, want %d", got, 64*64/4)
	}
	// Defaults resolve before dividing, so the budget is well-defined.
	def := Options{}.withDefaults()
	if def.Disk.M != em.DefaultM || def.Disk.B != em.DefaultB {
		t.Fatalf("defaulted disk = %+v", def.Disk)
	}
	// A fleet budget smaller than shards·2B still yields legal
	// machines (em clamps to the M ≥ 2B floor); the router must work.
	small := testOptions(8)
	small.Disk.M = 4 * small.Disk.B
	r := Bulk(small, workload.NewGen(29).Uniform(2000, 1e6), 8)
	if r.NumShards() != 8 {
		t.Fatalf("NumShards = %d", r.NumShards())
	}
	rng := rand.New(rand.NewSource(30))
	checkQueries(t, r, workload.NewGen(29).Uniform(2000, 1e6), straddlers(r, 1e6, 50, rng))
}

// mkRouter hand-builds a router with one shard per point group,
// cutting between adjacent groups — direct topology construction for
// policy unit tests (Bulk's equal quantiles can't produce skewed
// fleets). The maintenance loop starts if the options ask for one,
// exactly as the real constructors do.
func mkRouter(opt Options, groups [][]point.P) *Router {
	r := newRouter(opt)
	var shards []*shard
	lo := math.Inf(-1)
	total := 0
	for i, g := range groups {
		point.SortByX(g)
		hi := math.Inf(1)
		if i < len(groups)-1 {
			hi = groups[i+1][0].X
		}
		shards = append(shards, newShard(r.opt, r.opt.diskFor(len(groups)), lo, hi, g))
		for _, p := range g {
			r.scores[p.Score] = struct{}{}
		}
		total += len(g)
		lo = hi
	}
	r.publish(shards, em.Stats{})
	r.n.Store(int64(total))
	r.startMaintenance()
	return r
}

// band generates n points with x in [x0, x0+width) and globally unique
// scores starting at scoreBase.
func band(n int, x0, width, scoreBase float64) []point.P {
	pts := make([]point.P, n)
	for i := range pts {
		pts[i] = point.P{X: x0 + width*float64(i)/float64(n), Score: scoreBase + float64(i)}
	}
	return pts
}

// TestDeleteTriggeredMerge is the lifecycle acceptance test: a fleet
// bulk-loaded to its cap collapses after 90% of the points are
// deleted, contents and invariants intact.
func TestDeleteTriggeredMerge(t *testing.T) {
	gen := workload.NewGen(41)
	pts := gen.Uniform(4000, 1e6)
	r := Bulk(testOptions(8), pts, 8)
	if r.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", r.NumShards())
	}
	live := append([]point.P(nil), pts...)
	rng := rand.New(rand.NewSource(42))
	for len(live) > len(pts)/10 {
		j := rng.Intn(len(live))
		if !r.Delete(live[j]) {
			t.Fatalf("Delete(%v) not found", live[j])
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	if got := r.NumShards(); got >= 8 {
		t.Fatalf("NumShards after 90%% deletes = %d, want < 8: %s", got, r)
	}
	if r.Merges() == 0 {
		t.Fatal("Merges() = 0 after heavy deletes")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(60, 1e6, 0.001, 0.8, 120)
	qs = append(qs, straddlers(r, 1e6, 120, rng)...)
	checkQueries(t, r, live, qs)
}

// TestMergeDisabled: MinMerge < 0 switches merging off — the
// benchmark baseline and an operator escape hatch.
func TestMergeDisabled(t *testing.T) {
	opt := testOptions(8)
	opt.MinMerge = -1
	pts := workload.NewGen(43).Uniform(4000, 1e6)
	r := Bulk(opt, pts, 8)
	for _, p := range pts[:3600] {
		if !r.Delete(p) {
			t.Fatalf("Delete(%v) not found", p)
		}
	}
	if got := r.NumShards(); got != 8 {
		t.Fatalf("NumShards with merging disabled = %d, want 8", got)
	}
	if r.Merges() != 0 {
		t.Fatalf("Merges() = %d with merging disabled", r.Merges())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeHysteresisSkipsSplittableCombination: an emptied shard
// whose only neighbor is heavy enough that the combined shard would
// trip the split policy stays put — merging it would just hand the
// next insert a split, i.e. flapping.
func TestMergeHysteresisSkipsSplittableCombination(t *testing.T) {
	opt := Options{
		Disk:      em.Config{B: 64},
		Core:      core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards: 4,
		MinSplit:  100,
	}
	// Shard sizes 3 / 900 / 300: total 1203, fair share 300.75.
	// Shard 0 (3 pts) is under the MinMerge floor (50); its only
	// neighbor holds 900, and 903 > 2·fair = 601.5 trips splitSize —
	// the merge must be skipped. Shard 2 (300 ≈ fair) is healthy.
	r := mkRouter(opt, [][]point.P{
		band(3, 0, 10, 0),
		band(900, 100, 100, 1000),
		band(300, 300, 100, 10000),
	})
	r.mergeUnderloaded()
	if got := r.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3 (merge should be skipped)", got)
	}
	if r.Merges() != 0 {
		t.Fatalf("Merges() = %d, want 0", r.Merges())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Lighten the heavy neighbor below the threshold (3+250 = 253
	// combined < 2·fair = 276.5) and the pass must now coalesce the
	// tiny shard into it.
	for _, p := range band(900, 100, 100, 1000)[:650] {
		if !r.Delete(p) {
			t.Fatalf("Delete(%v) not found", p)
		}
	}
	r.mergeUnderloaded()
	if got := r.NumShards(); got >= 3 {
		t.Fatalf("NumShards = %d after lightening, want < 3: %s", got, r)
	}
	if r.Merges() == 0 {
		t.Fatal("no merge after neighbor lightened")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMergePicksSmallerNeighbor: the coalescing partner is the
// smaller adjacent shard, keeping merged shards as light as possible.
func TestMergePicksSmallerNeighbor(t *testing.T) {
	opt := Options{
		Disk:      em.Config{B: 64},
		Core:      core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		MaxShards: 8,
		MinSplit:  1 << 20, // splits (and the hysteresis veto) out of the picture
		MinMerge:  50,      // explicit: the default MinSplit/2 would floor everything
	}
	// 400 / 10 / 100: the tiny middle shard must merge right (100),
	// not left (400).
	r := mkRouter(opt, [][]point.P{
		band(400, 0, 100, 0),
		band(10, 100, 100, 1000),
		band(100, 200, 100, 2000),
	})
	r.mergeUnderloaded()
	if got := r.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2: %s", got, r)
	}
	if got := r.snapshot().shards[0].size(); got != 400 {
		t.Fatalf("left shard len = %d, want 400 (merge went left): %s", got, r)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChurnLifecycle drives the full shard lifecycle — splits from
// insert pressure, merges from delete pressure, a mid-life rebalance —
// through randomized interleaved phases, holding the router to the
// brute-force oracle and its invariants after every phase.
func TestChurnLifecycle(t *testing.T) {
	opt := testOptions(8)
	gen := workload.NewGen(45)
	rng := rand.New(rand.NewSource(46))
	r := New(opt)
	var live []point.P

	checkPhase := func(phase string) {
		t.Helper()
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		qs := gen.Queries(40, 1e6, 0.001, 0.8, 100)
		qs = append(qs, straddlers(r, 1e6, 100, rng)...)
		checkQueries(t, r, live, qs)
	}

	insertSome := func(n int) {
		for _, p := range gen.Uniform(n, 1e6) {
			if err := r.Insert(p); err != nil {
				t.Fatalf("Insert(%v): %v", p, err)
			}
			live = append(live, p)
		}
	}
	deleteSome := func(n int) {
		for i := 0; i < n && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			if !r.Delete(live[j]) {
				t.Fatalf("Delete(%v) not found", live[j])
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}

	// Phase 1: grow — splits fire.
	insertSome(5000)
	if r.Splits() == 0 {
		t.Fatalf("no splits after 5000 inserts: %s", r)
	}
	checkPhase("grow")

	// Phase 2: shrink by 90% — merges fire.
	grown := r.NumShards()
	deleteSome(len(live) * 9 / 10)
	if r.Merges() == 0 {
		t.Fatalf("no merges after 90%% deletes: %s", r)
	}
	if got := r.NumShards(); got >= grown {
		t.Fatalf("NumShards %d did not shrink below split-era %d", got, grown)
	}
	checkPhase("shrink")

	// Phase 3: mixed batches, deletes first so scores can recycle.
	for round := 0; round < 4; round++ {
		var dels []Op
		for i := 0; i < 100 && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			dels = append(dels, Op{Delete: true, P: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for i, err := range r.ApplyBatch(dels) {
			if err != nil {
				t.Fatalf("batch delete %d: %v", i, err)
			}
		}
		var ins []Op
		for _, p := range gen.Uniform(150, 1e6) {
			ins = append(ins, Op{P: p})
			live = append(live, p)
		}
		for i, err := range r.ApplyBatch(ins) {
			if err != nil {
				t.Fatalf("batch insert %d: %v", i, err)
			}
		}
	}
	checkPhase("batch churn")

	// Phase 4: rebalance, then churn again on the fresh topology.
	r.Rebalance(0)
	checkPhase("rebalance")
	insertSome(2000)
	deleteSome(len(live) / 2)
	checkPhase("post-rebalance churn")
}

func TestMergeTopKOrder(t *testing.T) {
	lists := [][]point.P{
		{{X: 1, Score: 9}, {X: 2, Score: 5}, {X: 3, Score: 1}},
		{{X: 4, Score: 8}, {X: 5, Score: 7}, {X: 6, Score: 6}},
		nil,
		{{X: 7, Score: 10}},
	}
	got := mergeTopK(lists, 5)
	want := []point.P{{X: 7, Score: 10}, {X: 1, Score: 9}, {X: 4, Score: 8}, {X: 5, Score: 7}, {X: 6, Score: 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeTopK = %v, want %v", got, want)
	}
	if got := mergeTopK([][]point.P{nil, nil}, 3); got != nil {
		t.Fatalf("all-empty merge = %v", got)
	}
}

// TestRouterTopKAddsNoAllocs is the testing half of the
// //topk:nomalloc contract on the routed read path: for an interval
// one shard covers, the router layer (snapshot pin, locate, single-
// shard dispatch) performs ZERO allocations of its own — a routed
// TopK allocates exactly what the underlying Index.Query allocates.
func TestRouterTopKAddsNoAllocs(t *testing.T) {
	pts := workload.NewGen(31).Uniform(4000, 1e6)
	r := Bulk(testOptions(4), pts, 4)
	topo := r.snapshot()
	if len(topo.shards) < 3 {
		t.Fatalf("bulk load produced %d shards; need an interior shard", len(topo.shards))
	}
	s := topo.shards[1]
	x1, x2 := s.lo, s.lo+(s.hi-s.lo)/2
	const k = 10
	if lo, hi := topo.locate(x1), topo.locate(x2); lo != 1 || hi != 1 {
		t.Fatalf("interval [%g,%g] spans shards %d..%d; want it inside shard 1", x1, x2, lo, hi)
	}
	r.TopK(x1, x2, k) // warm the shard's buffer pool

	direct := testing.AllocsPerRun(100, func() {
		s.mu.Lock()
		s.ix.Query(x1, x2, k)
		s.mu.Unlock()
	})
	routed := testing.AllocsPerRun(100, func() {
		r.TopK(x1, x2, k)
	})
	if routed > direct {
		t.Fatalf("routed TopK allocates %.1f/op vs %.1f/op for the bare Index.Query; the router layer must add zero", routed, direct)
	}
}
