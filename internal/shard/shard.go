// Package shard is the concurrent serving layer over the sequential
// Theorem 1 machine: a position-range-partitioned router that owns N
// independent core.Index instances, one simulated EM disk each.
//
// The paper's structure (and the EM model it is analysed in) is
// strictly sequential — core.Index and em.Disk document themselves as
// unsafe for concurrent use, because even a query mutates the buffer
// pool's LRU state. The classical remedy is range partitioning: the
// real line is cut into contiguous shards, each shard is a complete
// Theorem 1 structure over its sub-range with its own disk, buffer
// pool and I/O meter, and every shard is guarded by its own mutex. The
// per-structure bounds then hold per shard (a shard holding n_i points
// answers in O(log_B n_i + k/B) I/Os), while operations on different
// shards proceed in parallel.
//
// The router is organized in three layers, one file each:
//
//   - topology (topology.go): an immutable, epoch-versioned snapshot
//     of the fleet — shard slice, cut positions, retired-meter
//     history — swapped atomically on every split/merge/rebalance.
//     Readers pin a snapshot with one atomic load and never touch the
//     topology lock; observability (Boundaries, NumShards, Stats,
//     String) is served the same way, so it never contends with
//     writers.
//   - execution (execute.go): the parallel fan-out and k-way
//     heap-merge machinery answering TopK/Count/QueryBatch over one
//     pinned snapshot. Per-shard answers — already sorted by
//     descending score — are merged with internal/heap's best-first
//     selection, which preserves the exact descending-score semantics
//     of the unsharded structure (scores are distinct by the paper's
//     standing assumption, so the merged order is unique).
//   - lifecycle (lifecycle.go): the split/merge/rebalance policy, the
//     passes that execute it under the topology write lock, and the
//     background maintenance loop (Options.MaintenanceInterval /
//     Close) that sweeps the fleet on a timer so it keeps adapting —
//     coalescing after heavy deletes, re-deriving the adaptive merge
//     floor — even when no traffic arrives to trigger the inline
//     hooks.
//
// This file holds what the layers share: Options, the shard and
// Router types, the constructors, and the update paths (Insert,
// Delete, ApplyBatch) with their fleet-wide duplicate-score registry.
//
// Shards split when insertion skew concentrates too large a share of
// the live set in one of them (see Options.SkewFactor): the overloaded
// shard's points are scanned out with core.Live, cut at the median
// position, and rebuilt into two halves with core.Bulk — the cost is
// amortized against the insertions that caused the overload, the same
// argument as the paper's global rebuilding. Symmetrically, shards
// merge when deletions leave one underloaded (see Options.MinMerge),
// so a delete-heavy workload cannot degenerate the fleet into many
// near-empty shards each paying fixed per-shard overhead. Rebalance
// re-partitions the whole router into equal quantile shards on demand.
package shard

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
)

// Options configures a Router. The zero value serves from up to 8
// shards of paper-default EM machines.
type Options struct {
	// Disk configures the shard EM machines. Disk.M is the FLEET
	// buffer-pool budget, not a per-shard figure: it is divided evenly
	// across the shards that exist when a shard is (re)built — at bulk
	// load, split and rebalance time — so total fleet memory stays
	// O(M) instead of O(M·shards). Each machine keeps the model's
	// floor of M ≥ 2B (paper footnote 2; em clamps), so at extreme
	// shard counts the fleet total is min 2B·shards.
	Disk em.Config
	// Core configures each shard's Theorem 1 structure.
	Core core.Options
	// MaxShards caps the shard count (default 8). Splitting stops at the
	// cap; Bulk never creates more than this many shards.
	MaxShards int
	// SkewFactor triggers a split when one shard holds more than
	// SkewFactor times the fair share n/MaxShards of the live set
	// (default 2.0). Measuring against the target fleet size rather
	// than the current shard count lets a fresh single-shard router
	// split its way to a balanced fleet as data arrives.
	SkewFactor float64
	// MinSplit is the smallest shard size eligible for splitting
	// (default 512), so tiny indexes stay on one machine.
	MinSplit int
	// MinMerge is the shard size below which a shard is
	// unconditionally considered underloaded and eligible for merging
	// with a neighbor. Above the floor, a shard is underloaded only
	// when it holds less than 1/SkewFactor of the fair share
	// n/MaxShards — the mirror image of the split trigger. The
	// absolute floor matters after heavy deletes: the fair share
	// itself shrinks with n, so without it a fleet of near-empty
	// shards would never coalesce. Negative disables merging entirely
	// (splits still happen).
	//
	// 0 selects AUTO mode: the floor starts at the static default
	// MinSplit/2 and, when the maintenance loop runs, is re-derived
	// each tick from observed per-shard space overhead (never below
	// the default, capped at MinSplit) — see Router.MergeFloor and
	// updateMergeFloor in lifecycle.go.
	//
	// Hysteresis against split/merge flapping is structural: a merge
	// is skipped when the combined shard would itself satisfy the
	// split policy's size test, so no merge can create a shard that an
	// insert would immediately cut back apart; and the default floor
	// of MinSplit/2 keeps the halves produced by a split (each at
	// least MinSplit/2 points) at or above the static merge floor.
	MinMerge int
	// MaintenanceInterval, when positive, starts a background
	// goroutine at construction that runs Maintain every interval:
	// refreshing the adaptive merge floor, coalescing underloaded
	// shards, splitting overloaded ones. It is how a fleet left idle
	// after heavy deletes coalesces without waiting for the next
	// update to trip an inline hook. Stop it with Close. 0 (the
	// default) disables the loop; Maintain can still be called
	// manually.
	MaintenanceInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxShards <= 0 {
		o.MaxShards = 8
	}
	if o.SkewFactor <= 1 {
		o.SkewFactor = 2.0
	}
	if o.MinSplit <= 0 {
		o.MinSplit = 512
	}
	if o.Disk.B <= 0 {
		o.Disk.B = em.DefaultB
	}
	if o.Disk.M <= 0 {
		o.Disk.M = em.DefaultM
	}
	return o
}

// diskFor returns the EM config for one shard of a count-shard fleet:
// the fleet memory budget divided evenly. Resizing happens only when a
// shard is (re)built — existing pools keep their size until the next
// split or rebalance touches them, so the O(M) fleet total is exact
// after a bulk load or rebalance and approximate between them.
func (o Options) diskFor(count int) em.Config {
	d := o.Disk
	if count > 1 {
		d.M /= count
	}
	return d
}

// shard is one partition: a complete sequential EM machine over the
// position range [lo, hi) plus the mutex that serializes access to it.
// lo/hi are immutable after construction (re-partitioning builds new
// shard values), so they may be read without the mutex.
type shard struct {
	mu sync.Mutex
	lo float64 // inclusive; −Inf for the first shard
	hi float64 // exclusive; +Inf for the last shard
	d  *em.Disk
	ix *core.Index
}

// newShard builds one shard over [lo, hi). disk carries the per-shard
// memory share computed by Options.diskFor for the fleet size at build
// time.
func newShard(opt Options, disk em.Config, lo, hi float64, pts []point.P) *shard {
	d := em.NewDisk(disk)
	s := &shard{lo: lo, hi: hi, d: d}
	if len(pts) == 0 {
		s.ix = core.New(d, opt.Core)
	} else {
		s.ix = core.Bulk(d, opt.Core, pts)
	}
	return s
}

// size, live and meter read a shard's machine under its mutex. The
// lifecycle layer uses them for content scans: even under the topology
// write lock, snapshot-pinned readers may be querying the shard (and
// mutating its LRU state and I/O meter) concurrently.
func (s *shard) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Len()
}

func (s *shard) live() []point.P {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Live()
}

func (s *shard) meter() em.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Stats()
}

// Router fans operations out over position-range shards. All methods
// are safe for concurrent use.
type Router struct {
	opt Options

	// mu serializes UPDATES against TOPOLOGY CHANGES. Insert, Delete
	// and ApplyBatch take it in read mode — an update must land on the
	// CURRENT topology, because an update applied to a shard that a
	// concurrent re-partition just retired would be silently lost when
	// the rebuilt replacement takes over. Lifecycle passes (split,
	// merge, rebalance, reset) take it in write mode. Reads do not
	// touch it at all: they pin the topology snapshot below.
	mu sync.RWMutex

	// topo is the current topology snapshot (see topology.go),
	// published under mu in write mode and pinned lock-free by every
	// reader.
	topo atomic.Pointer[topology]

	// n is the live point count, maintained atomically so Len never
	// takes a shard lock.
	n atomic.Int64

	// splits and merges count topology changes since creation —
	// operator-facing lifecycle counters surfaced by cmd/topkd.
	splits atomic.Int64
	merges atomic.Int64

	// statsMu serializes Stats against ResetStats, the one operation
	// that moves meters BACKWARD: readers share it, only ResetStats
	// takes it exclusively, so a report can never mix pre-reset retired
	// history with partially-reset meters. No update or lifecycle path
	// touches it — their counters only grow, and the snapshot keeps a
	// pinned report self-consistent — so observability still never
	// contends with serving traffic.
	statsMu sync.RWMutex

	// repReads/repWrites/repAllocs/repFrees are monotone floors on the
	// REPORTED transfer counters. A reader still pinned to an old
	// snapshot can charge I/Os to a disk after a re-partition captured
	// that disk's meter into the retired history; those trailing I/Os
	// appear in reports made from the old snapshot and vanish from
	// later ones, which would make the Prometheus counters exported by
	// topkd tick backward. Stats clamps each report to the highest
	// value already reported (counters only — BlocksLive/Peak are
	// gauges), trading an undercount bounded by the trailing I/Os for
	// strict monotonicity. Folded under statsMu read locks; ResetStats
	// zeroes the floors under the write lock.
	repReads  atomic.Int64
	repWrites atomic.Int64
	repAllocs atomic.Int64
	repFrees  atomic.Int64

	// peak is the high-water mark of the FLEET-wide live-block total,
	// sampled whenever the fleet total is observed: at Stats calls and
	// after every topology change. Unlike a sum of per-shard peaks
	// (an upper bound no instant ever reached), this is a total some
	// instant actually held.
	peak atomic.Int64

	// mergeFloor is the effective MinMerge floor consulted by the
	// merge policy: Options.MinMerge when positive, else the adaptive
	// floor the maintenance loop maintains (autoFloor set). Atomic so
	// the loop can refresh it while update paths evaluate policy.
	mergeFloor atomic.Int64
	autoFloor  bool

	// scores is the router-level duplicate-score guard: the set of all
	// live scores across the fleet, with its own mutex so parallel
	// batch workers on different shards can consult it. Per-shard
	// structures only see their own sub-range, so without this set an
	// equal score on a different shard would be accepted silently and
	// detonate when a later split or rebalance co-locates the pair.
	scoreMu sync.Mutex
	scores  map[float64]struct{}

	// subMu guards the WatchEpoch subscriber set (topology.go). It is a
	// leaf lock: publish notifies subscribers while holding mu in write
	// mode, and nothing is acquired under it.
	subMu sync.Mutex
	subs  map[chan uint64]struct{}

	// Background maintenance loop state (lifecycle.go).
	maintStop chan struct{}
	maintDone chan struct{}
	closeOnce sync.Once
}

// newRouter allocates a Router with defaulted options, an initialized
// score set and the effective merge floor resolved — everything except
// the initial topology, which each constructor publishes itself.
func newRouter(opt Options) *Router {
	opt = opt.withDefaults()
	r := &Router{opt: opt, scores: map[float64]struct{}{}}
	floor := opt.MinMerge
	if floor == 0 {
		r.autoFloor = true
		floor = r.defaultFloor()
	}
	r.mergeFloor.Store(int64(floor))
	return r
}

// reserveScore claims score for an in-flight insert, reporting false
// if it is already live. The claim must be released if the insert
// fails for another reason (occupied position).
func (r *Router) reserveScore(score float64) bool {
	r.scoreMu.Lock()
	defer r.scoreMu.Unlock()
	if _, dup := r.scores[score]; dup {
		return false
	}
	r.scores[score] = struct{}{}
	return true
}

func (r *Router) releaseScore(score float64) {
	r.scoreMu.Lock()
	delete(r.scores, score)
	r.scoreMu.Unlock()
}

// New returns an empty Router: one shard covering the whole line,
// which splits as skew develops. If Options.MaintenanceInterval is
// positive the background maintenance loop starts immediately; stop
// it with Close.
func New(opt Options) *Router {
	r := newRouter(opt)
	r.publish([]*shard{newShard(r.opt, r.opt.diskFor(1), math.Inf(-1), math.Inf(1), nil)}, em.Stats{})
	r.observeFleetPeak()
	r.startMaintenance()
	return r
}

// Bulk builds a Router over pts, pre-partitioned into min(shards,
// MaxShards) equal quantile ranges (at least one point per shard).
// shards < 1 means "use the (defaulted) MaxShards". pts must satisfy
// the input contract (finite coordinates, distinct positions and
// scores) — the public topk layer validates before calling.
func Bulk(opt Options, pts []point.P, shards int) *Router {
	r := newRouter(opt)
	if shards < 1 || shards > r.opt.MaxShards {
		shards = r.opt.MaxShards
	}
	sorted := append([]point.P(nil), pts...)
	point.SortByX(sorted)
	r.publish(partition(r.opt, sorted, shards), em.Stats{})
	for _, p := range pts {
		r.scores[p.Score] = struct{}{}
	}
	r.n.Store(int64(len(pts)))
	r.observeFleetPeak()
	r.startMaintenance()
	return r
}

// Len returns the number of live points.
func (r *Router) Len() int { return int(r.n.Load()) }

// Insert adds p. Safe for concurrent use. Contract violations return
// sentinel errors before anything is mutated, in the same fixed order
// as core.Index.Insert: core.ErrInvalidPoint, then
// core.ErrDuplicatePosition (checked inside the owning shard), then
// core.ErrDuplicateScore (checked against the router-level score set,
// so an equal score on a DIFFERENT shard is caught too).
//
// All router methods unlock with defer, so even an internal invariant
// panic cannot wedge a shard for future requests.
func (r *Router) Insert(p point.P) error {
	overloaded, err := r.insertLocked(p)
	if err != nil {
		return err
	}
	if overloaded {
		r.splitOverloaded()
	}
	return nil
}

// insertLocked performs the insert under the topology read lock and
// reports whether the target shard came out overloaded.
func (r *Router) insertLocked(p point.P) (bool, error) {
	if !p.Finite() {
		return false, core.ErrInvalidPoint
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.snapshot()
	s := t.shards[t.locate(p.X)]
	ln, err := func() (int, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return r.insertShard(s, p)
	}()
	if err != nil {
		return false, err
	}
	return r.overloaded(t, ln, r.n.Add(1)), nil
}

// insertShard applies the duplicate checks and the insert to s. The
// caller holds the topology read lock and s.mu — the shard lock
// serializes the position check with the insert, and the score
// reservation is atomic on its own mutex, so concurrent duplicate
// inserts race to exactly one success.
func (r *Router) insertShard(s *shard, p point.P) (int, error) {
	if s.ix.Has(p.X) {
		return 0, core.ErrDuplicatePosition
	}
	if !r.reserveScore(p.Score) {
		return 0, core.ErrDuplicateScore
	}
	if err := s.ix.Insert(p); err != nil {
		// Unreachable given the checks above, but never leak the claim.
		r.releaseScore(p.Score)
		return 0, err
	}
	return s.ix.Len(), nil
}

// Delete removes p, reporting whether it was present. Deletions are
// the mirror image of insertions: where Insert re-checks for an
// overloaded shard and splits, Delete re-checks for an underloaded one
// and merges it away.
func (r *Router) Delete(p point.P) bool {
	found, under := r.deleteLocked(p)
	if under {
		r.mergeUnderloaded()
	}
	return found
}

// deleteLocked performs the delete under the topology read lock and
// reports whether the target shard came out mergeable.
func (r *Router) deleteLocked(p point.P) (found, under bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.snapshot()
	si := t.locate(p.X)
	s := t.shards[si]
	ln, ok := func() (int, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.ix.Delete(p) {
			return 0, false
		}
		return s.ix.Len(), true
	}()
	if !ok {
		return false, false
	}
	r.releaseScore(p.Score)
	return true, r.mergeable(t, si, ln, r.n.Add(-1))
}

// Op is one batched update: an insert of P, or a delete of P when
// Delete is set.
type Op struct {
	Delete bool
	P      point.P
}

// ApplyBatch applies ops concurrently, grouping them by target shard
// so each shard is locked once and ops on different shards run in
// parallel goroutines. Per-shard order follows batch order, so a batch
// is equivalent to some sequential interleaving of its ops (any two
// ops on different shards commute: shards hold disjoint position
// ranges). Note the interleaving is not chosen: an insert that reuses
// a score deleted on a DIFFERENT shard in the same batch races the
// delete and may be rejected — issue the deletes in their own batch
// first when recycling scores.
//
// The result reports one error per op: nil for an applied insert or a
// delete that found its point; core.ErrNotFound for a delete of an
// absent point; core.ErrInvalidPoint / core.ErrDuplicatePosition /
// core.ErrDuplicateScore for rejected inserts. A rejected op never
// mutates anything.
func (r *Router) ApplyBatch(ops []Op) []error {
	if len(ops) == 0 {
		return nil
	}
	res := make([]error, len(ops))
	over, under := r.applyBatchLocked(ops, res)
	if over {
		r.splitOverloaded()
	}
	if under {
		r.mergeUnderloaded()
	}
	return res
}

// applyBatchLocked runs the batch under the topology read lock and
// reports whether any touched shard came out overloaded or
// underloaded (splits run before merges; hysteresis in the merge pass
// guarantees the two cannot undo each other). The live counter is
// maintained per op so it stays accurate even if a worker panics
// mid-batch (internal invariant violations only; contract violations
// are rejected per op).
func (r *Router) applyBatchLocked(ops []Op, res []error) (over, under bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.snapshot()
	groups := make(map[int][]int, len(t.shards))
	for i, op := range ops {
		if !op.Delete && !op.P.Finite() {
			// Reject inserts up front: a non-finite score would poison
			// the score set. Non-finite deletes fall through instead —
			// locate clamps NaN/±Inf to a shard and the exact-match
			// delete reports ErrNotFound, matching Index.ApplyBatch.
			res[i] = core.ErrInvalidPoint
			continue
		}
		si := t.locate(op.P.X)
		groups[si] = append(groups[si], i)
	}
	lens := make([]int, len(groups)) // final sizes of touched shards
	sis := make([]int, len(groups))  // their topology indexes
	fns := make([]func(), 0, len(groups))
	nextSlot := 0
	for si, idxs := range groups {
		s, idxs, slot := t.shards[si], idxs, nextSlot
		sis[slot] = si
		nextSlot++
		fns = append(fns, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, i := range idxs {
				if ops[i].Delete {
					if s.ix.Delete(ops[i].P) {
						r.releaseScore(ops[i].P.Score)
						r.n.Add(-1)
					} else {
						res[i] = core.ErrNotFound
					}
					continue
				}
				if _, err := r.insertShard(s, ops[i].P); err != nil {
					res[i] = err
				} else {
					r.n.Add(1)
				}
			}
			lens[slot] = s.ix.Len()
		})
	}
	runParallel(fns)
	total := r.n.Load()
	for slot, ln := range lens {
		if r.overloaded(t, ln, total) {
			over = true
		}
		// All workers are done, so no shard mutex is held and
		// mergeable may probe neighbor sizes.
		if !under && r.mergeable(t, sis[slot], ln, total) {
			under = true
		}
	}
	return over, under
}

// CheckInvariants validates the topology (a contiguous cover of the
// line by 1..MaxShards shards, as maintained by splits, merges and
// rebalances), every shard's structures, that each live point lies
// inside its shard's range, and that the atomic live count and the
// fleet-wide score set match the shards (test helper; takes the write
// lock).
func (r *Router) CheckInvariants() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snapshot()
	if t == nil {
		return fmt.Errorf("nil topology snapshot")
	}
	if len(t.shards) < 1 || len(t.shards) > r.opt.MaxShards {
		return fmt.Errorf("shard count %d outside [1, MaxShards=%d]", len(t.shards), r.opt.MaxShards)
	}
	// The write lock excludes all update paths, so each shard's
	// contents need extracting only once: range membership and score
	// registration are both checked off the same Live() slice. The
	// score set is read under scoreMu taken AFTER the shard mutex is
	// released — never nested with it, so the serving paths' s.mu →
	// scoreMu order has no mirror here.
	total := 0
	prevHi := math.Inf(-1)
	for i, s := range t.shards {
		if i == 0 {
			if !math.IsInf(s.lo, -1) {
				return fmt.Errorf("shard 0 lo = %v, want -Inf", s.lo)
			}
		} else if s.lo != prevHi {
			return fmt.Errorf("shard %d lo = %v, want previous hi %v", i, s.lo, prevHi)
		}
		if i == len(t.shards)-1 && !math.IsInf(s.hi, 1) {
			return fmt.Errorf("last shard hi = %v, want +Inf", s.hi)
		}
		var live []point.P
		if err := func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := s.ix.CheckInvariants(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			live = s.ix.Live()
			total += s.ix.Len()
			return nil
		}(); err != nil {
			return err
		}
		for _, p := range live {
			if p.X < s.lo || p.X >= s.hi {
				return fmt.Errorf("shard %d [%v,%v): stray point x=%v", i, s.lo, s.hi, p.X)
			}
		}
		r.scoreMu.Lock()
		for _, p := range live {
			if _, ok := r.scores[p.Score]; !ok {
				r.scoreMu.Unlock()
				return fmt.Errorf("live score %v missing from router score set", p.Score)
			}
		}
		r.scoreMu.Unlock()
		prevHi = s.hi
	}
	if int64(total) != r.n.Load() {
		return fmt.Errorf("live count %d != atomic n %d", total, r.n.Load())
	}
	r.scoreMu.Lock()
	defer r.scoreMu.Unlock()
	if len(r.scores) != total {
		return fmt.Errorf("score set has %d entries, want %d", len(r.scores), total)
	}
	return nil
}
