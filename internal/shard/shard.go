// Package shard is the concurrent serving layer over the sequential
// Theorem 1 machine: a position-range-partitioned router that owns N
// independent core.Index instances, one simulated EM disk each.
//
// The paper's structure (and the EM model it is analysed in) is
// strictly sequential — core.Index and em.Disk document themselves as
// unsafe for concurrent use, because even a query mutates the buffer
// pool's LRU state. The classical remedy is range partitioning: the
// real line is cut into contiguous shards, each shard is a complete
// Theorem 1 structure over its sub-range with its own disk, buffer
// pool and I/O meter, and every shard is guarded by its own mutex. The
// per-structure bounds then hold per shard (a shard holding n_i points
// answers in O(log_B n_i + k/B) I/Os), while operations on different
// shards proceed in parallel.
//
// Topology (the cut positions) is guarded by a RWMutex taken in read
// mode by every operation and in write mode only when re-partitioning,
// so routing never blocks routing. Queries that straddle cut positions
// fan out to the affected shards in parallel goroutines, each shard
// answering its own top-k; the per-shard answers — already sorted by
// descending score — are k-way merged with internal/heap's best-first
// selection, which preserves the exact descending-score semantics of
// the unsharded structure (scores are distinct by the paper's standing
// assumption, so the merged order is unique).
//
// Shards split when insertion skew concentrates too large a share of
// the live set in one of them (see Options.SkewFactor): the overloaded
// shard's points are scanned out with core.Live, cut at the median
// position, and rebuilt into two halves with core.Bulk — the cost is
// amortized against the insertions that caused the overload, the same
// argument as the paper's global rebuilding. Symmetrically, shards
// merge when deletions leave one underloaded (see Options.MinMerge):
// the shard is coalesced with its smaller adjacent neighbor, the cost
// amortized against the deletions that emptied it, so a delete-heavy
// workload cannot degenerate the fleet into many near-empty shards
// each paying fixed per-shard overhead. Rebalance re-partitions the
// whole router into equal quantile shards on demand.
package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/heap"
	"repro/internal/point"
)

// Options configures a Router. The zero value serves from up to 8
// shards of paper-default EM machines.
type Options struct {
	// Disk configures the shard EM machines. Disk.M is the FLEET
	// buffer-pool budget, not a per-shard figure: it is divided evenly
	// across the shards that exist when a shard is (re)built — at bulk
	// load, split and rebalance time — so total fleet memory stays
	// O(M) instead of O(M·shards). Each machine keeps the model's
	// floor of M ≥ 2B (paper footnote 2; em clamps), so at extreme
	// shard counts the fleet total is min 2B·shards.
	Disk em.Config
	// Core configures each shard's Theorem 1 structure.
	Core core.Options
	// MaxShards caps the shard count (default 8). Splitting stops at the
	// cap; Bulk never creates more than this many shards.
	MaxShards int
	// SkewFactor triggers a split when one shard holds more than
	// SkewFactor times the fair share n/MaxShards of the live set
	// (default 2.0). Measuring against the target fleet size rather
	// than the current shard count lets a fresh single-shard router
	// split its way to a balanced fleet as data arrives.
	SkewFactor float64
	// MinSplit is the smallest shard size eligible for splitting
	// (default 512), so tiny indexes stay on one machine.
	MinSplit int
	// MinMerge is the shard size below which a shard is
	// unconditionally considered underloaded and eligible for merging
	// with a neighbor (default MinSplit/2). Above the floor, a shard is
	// underloaded only when it holds less than 1/SkewFactor of the
	// fair share n/MaxShards — the mirror image of the split trigger.
	// The absolute floor matters after heavy deletes: the fair share
	// itself shrinks with n, so without it a fleet of near-empty
	// shards would never coalesce. Negative disables merging entirely
	// (splits still happen); 0 selects the default.
	//
	// Hysteresis against split/merge flapping is structural: a merge
	// is skipped when the combined shard would itself satisfy the
	// split policy's size test, so no merge can create a shard that an
	// insert would immediately cut back apart; and the default floor
	// of MinSplit/2 keeps the halves produced by a split (each at
	// least MinSplit/2 points) at or above the merge floor.
	MinMerge int
}

func (o Options) withDefaults() Options {
	if o.MaxShards <= 0 {
		o.MaxShards = 8
	}
	if o.SkewFactor <= 1 {
		o.SkewFactor = 2.0
	}
	if o.MinSplit <= 0 {
		o.MinSplit = 512
	}
	if o.MinMerge == 0 {
		o.MinMerge = o.MinSplit / 2
		if o.MinMerge < 1 {
			o.MinMerge = 1
		}
	}
	if o.Disk.B <= 0 {
		o.Disk.B = em.DefaultB
	}
	if o.Disk.M <= 0 {
		o.Disk.M = em.DefaultM
	}
	return o
}

// diskFor returns the EM config for one shard of a count-shard fleet:
// the fleet memory budget divided evenly. Resizing happens only when a
// shard is (re)built — existing pools keep their size until the next
// split or rebalance touches them, so the O(M) fleet total is exact
// after a bulk load or rebalance and approximate between them.
func (o Options) diskFor(count int) em.Config {
	d := o.Disk
	if count > 1 {
		d.M /= count
	}
	return d
}

// shard is one partition: a complete sequential EM machine over the
// position range [lo, hi) plus the mutex that serializes access to it.
// lo/hi are immutable after construction (re-partitioning builds new
// shard values), so they may be read without the mutex by anyone
// holding the router's topology lock.
type shard struct {
	mu sync.Mutex
	lo float64 // inclusive; −Inf for the first shard
	hi float64 // exclusive; +Inf for the last shard
	d  *em.Disk
	ix *core.Index
}

// newShard builds one shard over [lo, hi). disk carries the per-shard
// memory share computed by Options.diskFor for the fleet size at build
// time.
func newShard(opt Options, disk em.Config, lo, hi float64, pts []point.P) *shard {
	d := em.NewDisk(disk)
	s := &shard{lo: lo, hi: hi, d: d}
	if len(pts) == 0 {
		s.ix = core.New(d, opt.Core)
	} else {
		s.ix = core.Bulk(d, opt.Core, pts)
	}
	return s
}

// Router fans operations out over position-range shards. All methods
// are safe for concurrent use.
type Router struct {
	opt Options

	// mu guards the topology (the shards slice and the cut positions
	// embedded in it). Read-locked by every operation; write-locked only
	// by split/Rebalance.
	mu     sync.RWMutex
	shards []*shard

	// n is the live point count, maintained atomically so Len never
	// takes a shard lock.
	n atomic.Int64

	// retired accumulates the transfer counters of disks discarded by
	// splits, merges and rebalances, so aggregate Stats never lose
	// history. Space gauges are stripped at retire time (a discarded
	// disk holds no live blocks once its shard is rebuilt). Guarded by
	// mu (write mode).
	retired em.Stats

	// splits and merges count topology changes since creation —
	// operator-facing lifecycle counters surfaced by cmd/topkd.
	splits atomic.Int64
	merges atomic.Int64

	// peak is the high-water mark of the FLEET-wide live-block total,
	// sampled whenever the fleet total is observed: at Stats calls and
	// after every topology change. Unlike a sum of per-shard peaks
	// (an upper bound no instant ever reached), this is a total some
	// instant actually held.
	peak atomic.Int64

	// scores is the router-level duplicate-score guard: the set of all
	// live scores across the fleet, with its own mutex so parallel
	// batch workers on different shards can consult it. Per-shard
	// structures only see their own sub-range, so without this set an
	// equal score on a different shard would be accepted silently and
	// detonate when a later split or rebalance co-locates the pair.
	scoreMu sync.Mutex
	scores  map[float64]struct{}
}

// reserveScore claims score for an in-flight insert, reporting false
// if it is already live. The claim must be released if the insert
// fails for another reason (occupied position).
func (r *Router) reserveScore(score float64) bool {
	r.scoreMu.Lock()
	defer r.scoreMu.Unlock()
	if _, dup := r.scores[score]; dup {
		return false
	}
	r.scores[score] = struct{}{}
	return true
}

func (r *Router) releaseScore(score float64) {
	r.scoreMu.Lock()
	delete(r.scores, score)
	r.scoreMu.Unlock()
}

// New returns an empty Router: one shard covering the whole line,
// which splits as skew develops.
func New(opt Options) *Router {
	opt = opt.withDefaults()
	r := &Router{
		opt:    opt,
		shards: []*shard{newShard(opt, opt.diskFor(1), math.Inf(-1), math.Inf(1), nil)},
		scores: map[float64]struct{}{},
	}
	r.observeFleetPeak()
	return r
}

// Bulk builds a Router over pts, pre-partitioned into min(shards,
// MaxShards) equal quantile ranges (at least one point per shard).
// shards < 1 means "use the (defaulted) MaxShards". pts must satisfy
// the input contract (finite coordinates, distinct positions and
// scores) — the public topk layer validates before calling.
func Bulk(opt Options, pts []point.P, shards int) *Router {
	opt = opt.withDefaults()
	r := &Router{opt: opt, scores: make(map[float64]struct{}, len(pts))}
	if shards < 1 || shards > opt.MaxShards {
		shards = opt.MaxShards
	}
	sorted := append([]point.P(nil), pts...)
	point.SortByX(sorted)
	r.shards = partition(opt, sorted, shards)
	for _, p := range pts {
		r.scores[p.Score] = struct{}{}
	}
	r.n.Store(int64(len(pts)))
	r.observeFleetPeak()
	return r
}

// partition cuts sorted (by X) points into up to want contiguous
// shards of near-equal size. Cut positions must fall strictly between
// distinct X values, so fewer shards may result when points repeat a
// prefix... positions are distinct by assumption, but defensively any
// zero-width range is merged left.
func partition(opt Options, sorted []point.P, want int) []*shard {
	if want < 1 {
		want = 1
	}
	if want > len(sorted) {
		want = len(sorted)
	}
	if want <= 1 {
		return []*shard{newShard(opt, opt.diskFor(1), math.Inf(-1), math.Inf(1), sorted)}
	}
	disk := opt.diskFor(want)
	var out []*shard
	lo := math.Inf(-1)
	start := 0
	for i := 0; i < want; i++ {
		end := (i + 1) * len(sorted) / want
		if i == want-1 {
			end = len(sorted)
		}
		if end <= start {
			continue
		}
		hi := math.Inf(1)
		if end < len(sorted) {
			hi = sorted[end].X
			// Distinct positions guarantee sorted[end-1].X < hi; if the
			// chunk boundary repeats a position, extend the chunk.
			for end < len(sorted) && sorted[end-1].X >= hi {
				end++
				if end < len(sorted) {
					hi = sorted[end].X
				} else {
					hi = math.Inf(1)
				}
			}
		}
		out = append(out, newShard(opt, disk, lo, hi, sorted[start:end]))
		lo = hi
		start = end
		if end == len(sorted) {
			break
		}
	}
	return out
}

// locate returns the index of the shard covering x. Caller holds mu.
func (r *Router) locate(x float64) int {
	// First shard with hi > x; lows are contiguous so this is the cover.
	// x = +Inf matches no half-open range and is clamped to the last
	// shard (the same defensive treatment a single Index gives it).
	i := sort.Search(len(r.shards), func(i int) bool { return x < r.shards[i].hi })
	if i == len(r.shards) {
		i--
	}
	return i
}

// Len returns the number of live points.
func (r *Router) Len() int { return int(r.n.Load()) }

// NumShards returns the current shard count.
func (r *Router) NumShards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Boundaries returns the current cut positions (len NumShards−1),
// ascending. Tests use it to craft boundary-straddling queries.
func (r *Router) Boundaries() []float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cuts := make([]float64, 0, len(r.shards)-1)
	for _, s := range r.shards[1:] {
		cuts = append(cuts, s.lo)
	}
	return cuts
}

// Insert adds p. Safe for concurrent use. Contract violations return
// sentinel errors before anything is mutated, in the same fixed order
// as core.Index.Insert: core.ErrInvalidPoint, then
// core.ErrDuplicatePosition (checked inside the owning shard), then
// core.ErrDuplicateScore (checked against the router-level score set,
// so an equal score on a DIFFERENT shard is caught too).
//
// All router methods unlock with defer, so even an internal invariant
// panic cannot wedge a shard for future requests.
func (r *Router) Insert(p point.P) error {
	overloaded, err := r.insertLocked(p)
	if err != nil {
		return err
	}
	if overloaded {
		r.splitOverloaded()
	}
	return nil
}

// insertLocked performs the insert under the topology read lock and
// reports whether the target shard came out overloaded.
func (r *Router) insertLocked(p point.P) (bool, error) {
	if !p.Finite() {
		return false, core.ErrInvalidPoint
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.shards[r.locate(p.X)]
	ln, err := func() (int, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return r.insertShard(s, p)
	}()
	if err != nil {
		return false, err
	}
	return r.overloaded(ln, r.n.Add(1)), nil
}

// insertShard applies the duplicate checks and the insert to s. The
// caller holds the topology read lock and s.mu — the shard lock
// serializes the position check with the insert, and the score
// reservation is atomic on its own mutex, so concurrent duplicate
// inserts race to exactly one success.
func (r *Router) insertShard(s *shard, p point.P) (int, error) {
	if s.ix.Has(p.X) {
		return 0, core.ErrDuplicatePosition
	}
	if !r.reserveScore(p.Score) {
		return 0, core.ErrDuplicateScore
	}
	if err := s.ix.Insert(p); err != nil {
		// Unreachable given the checks above, but never leak the claim.
		r.releaseScore(p.Score)
		return 0, err
	}
	return s.ix.Len(), nil
}

// Delete removes p, reporting whether it was present. Deletions are
// the mirror image of insertions: where Insert re-checks for an
// overloaded shard and splits, Delete re-checks for an underloaded one
// and merges it away.
func (r *Router) Delete(p point.P) bool {
	found, under := r.deleteLocked(p)
	if under {
		r.mergeUnderloaded()
	}
	return found
}

// deleteLocked performs the delete under the topology read lock and
// reports whether the target shard came out mergeable.
func (r *Router) deleteLocked(p point.P) (found, under bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	si := r.locate(p.X)
	s := r.shards[si]
	ln, ok := func() (int, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.ix.Delete(p) {
			return 0, false
		}
		return s.ix.Len(), true
	}()
	if !ok {
		return false, false
	}
	r.releaseScore(p.Score)
	return true, r.mergeable(si, ln, r.n.Add(-1))
}

// mergeable reports whether the shard at index si (now holding ln
// points) qualifies for a merge that some pass could actually
// perform: underloaded AND coalescing with at least one adjacent
// neighbor would survive the hysteresis veto. Checking the veto here,
// on the observation path, keeps a wedged shard — one whose only
// neighbors are too heavy to absorb it — from sending every
// subsequent delete through an exclusive write lock for a guaranteed
// no-op pass. Caller holds mu in read mode and no shard mutex (the
// neighbors' mutexes are taken briefly to read their sizes).
func (r *Router) mergeable(si, ln int, total int64) bool {
	if !r.underloaded(ln, total) {
		return false
	}
	for _, ni := range [2]int{si - 1, si + 1} {
		if ni < 0 || ni >= len(r.shards) {
			continue
		}
		nb := r.shards[ni]
		nb.mu.Lock()
		nl := nb.ix.Len()
		nb.mu.Unlock()
		if !r.splitSize(ln+nl, total) {
			return true
		}
	}
	return false
}

// splitSize reports whether a shard of size ln trips the split
// policy's size thresholds (the shard-count cap is checked
// separately): at least MinSplit points and more than SkewFactor times
// the fair share n/MaxShards. Caller holds mu (either mode).
func (r *Router) splitSize(ln int, total int64) bool {
	if ln < r.opt.MinSplit {
		return false
	}
	fair := float64(total) / float64(r.opt.MaxShards)
	return float64(ln) > r.opt.SkewFactor*fair
}

// overloaded applies the split policy to a shard of size ln with the
// given live total. Caller holds mu (either mode).
func (r *Router) overloaded(ln int, total int64) bool {
	return len(r.shards) < r.opt.MaxShards && r.splitSize(ln, total)
}

// underloaded applies the merge policy to a shard of size ln with the
// given live total: below the MinMerge floor a shard always
// qualifies; above it, only when it holds less than 1/SkewFactor of
// the fair share — the mirror image of the split trigger. Caller
// holds mu (either mode).
func (r *Router) underloaded(ln int, total int64) bool {
	if r.opt.MinMerge < 0 || len(r.shards) <= 1 {
		return false
	}
	if ln < r.opt.MinMerge {
		return true
	}
	fair := float64(total) / float64(r.opt.MaxShards)
	return float64(ln) < fair/r.opt.SkewFactor
}

// splitOverloaded re-checks the split policy under the write lock and
// splits every qualifying shard at its median position. Re-checking is
// required: between the RUnlock that observed the overload and this
// write lock, another goroutine may already have split.
func (r *Router) splitOverloaded() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		total := r.n.Load()
		split := false
		for i, s := range r.shards {
			if !r.overloaded(s.ix.Len(), total) {
				continue
			}
			pts := s.ix.Live()
			point.SortByX(pts)
			mid := len(pts) / 2
			// Positions are distinct, so pts[mid-1].X < pts[mid].X and
			// the median is a valid cut strictly inside (lo, hi).
			cut := pts[mid].X
			disk := r.opt.diskFor(len(r.shards) + 1)
			left := newShard(r.opt, disk, s.lo, cut, pts[:mid])
			right := newShard(r.opt, disk, cut, s.hi, pts[mid:])
			r.retire(s)
			r.shards = append(r.shards[:i:i], append([]*shard{left, right}, r.shards[i+1:]...)...)
			r.splits.Add(1)
			r.observeFleetPeak()
			split = true
			break
		}
		if !split {
			return
		}
	}
}

// mergeUnderloaded re-checks the merge policy under the write lock and
// coalesces qualifying shards with their neighbors until none
// qualifies. Re-checking is required for the same reason as in
// splitOverloaded: between the RUnlock that observed the underload and
// this write lock, another goroutine may already have merged (or
// refilled the shard).
func (r *Router) mergeUnderloaded() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.mergeOnce() {
	}
}

// mergeOnce coalesces the smallest underloaded shard with its smaller
// adjacent neighbor and reports whether a merge happened. Candidates
// are tried smallest-first; one is skipped when the combined shard
// would itself trip the split policy's size test (the hysteresis that
// prevents split/merge flapping — e.g. an emptied shard wedged between
// two heavy ones stays put rather than fattening a neighbor the next
// insert would cut apart). Caller holds mu in write mode.
func (r *Router) mergeOnce() bool {
	total := r.n.Load()
	var cand []int
	for i, s := range r.shards {
		if r.underloaded(s.ix.Len(), total) {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		return r.shards[cand[a]].ix.Len() < r.shards[cand[b]].ix.Len()
	})
	for _, i := range cand {
		j := i - 1
		if i == 0 || (i+1 < len(r.shards) && r.shards[i+1].ix.Len() < r.shards[i-1].ix.Len()) {
			j = i + 1
		}
		if r.splitSize(r.shards[i].ix.Len()+r.shards[j].ix.Len(), total) {
			continue
		}
		if j < i {
			i, j = j, i
		}
		r.coalesce(i, j)
		return true
	}
	return false
}

// coalesce replaces adjacent shards lo and lo+1 with one shard over
// their union range, rebuilt with core.Bulk on a fresh disk sized for
// the shrunken fleet. The rebuild cost is amortized against the
// deletions that underloaded the shard — the same argument as the
// paper's global rebuilding. Caller holds mu in write mode.
func (r *Router) coalesce(lo, hi int) {
	a, b := r.shards[lo], r.shards[hi]
	pts := append(a.ix.Live(), b.ix.Live()...)
	point.SortByX(pts)
	merged := newShard(r.opt, r.opt.diskFor(len(r.shards)-1), a.lo, b.hi, pts)
	r.retire(a)
	r.retire(b)
	r.shards = append(r.shards[:lo:lo], append([]*shard{merged}, r.shards[hi+1:]...)...)
	r.merges.Add(1)
	r.observeFleetPeak()
}

// transfers strips the space gauges from a discarded disk's meter,
// leaving the form in which it may join the retired history: the
// gauges describe blocks that cease to exist with the disk, so
// keeping them would double-count the fleet footprint against the
// rebuilt shard's fresh disk.
func transfers(st em.Stats) em.Stats {
	st.BlocksLive, st.BlocksPeak = 0, 0
	return st
}

// retire folds a discarded disk's transfer counters into the retired
// history. Caller holds mu in write mode.
func (r *Router) retire(s *shard) {
	r.retired = addStats(r.retired, transfers(s.d.Stats()))
}

// observeFleetPeak samples the fleet-wide live-block total into the
// peak watermark. Callers hold mu in write mode (or own the router
// exclusively, at construction), so no shard mutex can be concurrently
// held and the meters are stable.
func (r *Router) observeFleetPeak() {
	var live int64
	for _, s := range r.shards {
		live += s.d.Stats().BlocksLive
	}
	r.observePeak(live)
}

// observePeak folds one observation of the fleet live total into the
// peak watermark and returns the watermark.
func (r *Router) observePeak(live int64) int64 {
	for {
		cur := r.peak.Load()
		if live <= cur {
			return cur
		}
		if r.peak.CompareAndSwap(cur, live) {
			return live
		}
	}
}

// Splits returns the number of shard splits since creation.
func (r *Router) Splits() int64 { return r.splits.Load() }

// Merges returns the number of shard merges since creation.
func (r *Router) Merges() int64 { return r.merges.Load() }

// Rebalance re-partitions the router into up to target equal quantile
// shards (capped at MaxShards; target < 1 means MaxShards), preserving
// contents exactly.
func (r *Router) Rebalance(target int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if target < 1 || target > r.opt.MaxShards {
		target = r.opt.MaxShards
	}
	var all []point.P
	retired := r.retired
	for _, s := range r.shards {
		all = append(all, s.ix.Live()...)
		retired = addStats(retired, transfers(s.d.Stats()))
	}
	point.SortByX(all)
	// Build first, commit after: if the rebuild panics (e.g. a
	// contract violation that slipped into the data), the router keeps
	// its old shards and meters instead of double-counting retired
	// stats on a retry.
	shards := partition(r.opt, all, target)
	r.retired = retired
	r.shards = shards
	r.observeFleetPeak()
}

// panicBox carries a recovered panic value across goroutines with a
// single concrete type, as atomic.Value requires.
type panicBox struct{ v any }

// runParallel runs each fn in its own goroutine and waits for all.
// A panic inside a worker (an internal invariant violation — contract
// violations on caller input are rejected with errors before reaching
// here) is captured and re-raised on the caller's goroutine after
// every worker finishes — an unrecovered goroutine panic would kill
// the whole process, and shard locks are released by the workers' own
// defers.
func runParallel(fns []func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	var pv atomic.Value
	for _, f := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					pv.CompareAndSwap(nil, &panicBox{v})
				}
			}()
			f()
		}(f)
	}
	wg.Wait()
	if b := pv.Load(); b != nil {
		panic(b.(*panicBox).v)
	}
}

// listSource adapts a descending-score point list to heap.Source: a
// sorted list is a unary max-heap chain (entry i's only child is
// entry i+1), so heap.Forest + heap.SelectTop perform a k-way merge
// that pops the global maximum at every step. Refs are list indices;
// no I/O is charged (the lists are query results already in memory).
type listSource []point.P

func (l listSource) Roots() []heap.Entry {
	if len(l) == 0 {
		return nil
	}
	return []heap.Entry{{Ref: 0, Key: l[0].Score}}
}

func (l listSource) Children(ref int64) []heap.Entry {
	next := ref + 1
	if next >= int64(len(l)) {
		return nil
	}
	return []heap.Entry{{Ref: next, Key: l[next].Score}}
}

// mergeTopK k-way merges per-shard descending-score lists into the
// global top k, preserving exact order (scores are distinct). k is
// clamped to the merged length first, so an absurd client-supplied k
// cannot drive the output allocation.
func mergeTopK(lists [][]point.P, k int) []point.P {
	nonEmpty := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	if k > total {
		k = total
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		if k < len(nonEmpty[0]) {
			return nonEmpty[0][:k]
		}
		return nonEmpty[0]
	}
	f := &heap.Forest{Sources: make([]heap.Source, len(nonEmpty))}
	for i, l := range nonEmpty {
		f.Sources[i] = listSource(l)
	}
	out := make([]point.P, 0, k)
	for _, e := range heap.SelectTop(f, k) {
		src, ref := heap.SplitRef(e.Ref)
		out = append(out, nonEmpty[src][ref])
	}
	return out
}

// fanOut runs per once for every shard overlapping [x1, x2], holding
// the topology read lock throughout and the shard's mutex around its
// call. setup receives the overlap count first so callers can size
// result slices; slot indexes them 0..count−1 in shard order. With a
// single overlapped shard everything runs on the caller's goroutine;
// otherwise shards proceed in parallel. No query clamping is needed
// anywhere: a shard only stores points inside its range, so the full
// interval selects exactly its part.
func (r *Router) fanOut(x1, x2 float64, setup func(count int), per func(slot int, ix *core.Index)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lo, hi := r.locate(x1), r.locate(x2)
	setup(hi - lo + 1)
	if lo == hi {
		s := r.shards[lo]
		s.mu.Lock()
		defer s.mu.Unlock()
		per(0, s.ix)
		return
	}
	fns := make([]func(), 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		s, slot := r.shards[i], i-lo
		fns = append(fns, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			per(slot, s.ix)
		})
	}
	runParallel(fns)
}

// TopK returns the k highest-scoring points with position in [x1, x2]
// in descending score order, fanning out to every shard the interval
// overlaps in parallel and heap-merging the per-shard answers.
func (r *Router) TopK(x1, x2 float64, k int) []point.P {
	// NaN bounds match nothing; they must be rejected here because they
	// also defeat the x1 > x2 guard and the locate binary search (every
	// comparison with NaN is false), which would cross the fan-out's
	// shard range.
	if k <= 0 || x1 > x2 || math.IsNaN(x1) || math.IsNaN(x2) {
		return nil
	}
	var lists [][]point.P
	r.fanOut(x1, x2,
		func(count int) { lists = make([][]point.P, count) },
		func(slot int, ix *core.Index) { lists[slot] = ix.Query(x1, x2, k) })
	return mergeTopK(lists, k)
}

// Count returns the number of stored points with position in [x1, x2],
// summing overlapped shards in parallel.
func (r *Router) Count(x1, x2 float64) int {
	if x1 > x2 || math.IsNaN(x1) || math.IsNaN(x2) {
		return 0
	}
	var counts []int
	r.fanOut(x1, x2,
		func(count int) { counts = make([]int, count) },
		func(slot int, ix *core.Index) { counts[slot] = ix.Count(x1, x2) })
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// Op is one batched update: an insert of P, or a delete of P when
// Delete is set.
type Op struct {
	Delete bool
	P      point.P
}

// ApplyBatch applies ops concurrently, grouping them by target shard
// so each shard is locked once and ops on different shards run in
// parallel goroutines. Per-shard order follows batch order, so a batch
// is equivalent to some sequential interleaving of its ops (any two
// ops on different shards commute: shards hold disjoint position
// ranges). Note the interleaving is not chosen: an insert that reuses
// a score deleted on a DIFFERENT shard in the same batch races the
// delete and may be rejected — issue the deletes in their own batch
// first when recycling scores.
//
// The result reports one error per op: nil for an applied insert or a
// delete that found its point; core.ErrNotFound for a delete of an
// absent point; core.ErrInvalidPoint / core.ErrDuplicatePosition /
// core.ErrDuplicateScore for rejected inserts. A rejected op never
// mutates anything.
func (r *Router) ApplyBatch(ops []Op) []error {
	if len(ops) == 0 {
		return nil
	}
	res := make([]error, len(ops))
	over, under := r.applyBatchLocked(ops, res)
	if over {
		r.splitOverloaded()
	}
	if under {
		r.mergeUnderloaded()
	}
	return res
}

// applyBatchLocked runs the batch under the topology read lock and
// reports whether any touched shard came out overloaded or
// underloaded (splits run before merges; hysteresis in the merge pass
// guarantees the two cannot undo each other). The live counter is
// maintained per op so it stays accurate even if a worker panics
// mid-batch (internal invariant violations only; contract violations
// are rejected per op).
func (r *Router) applyBatchLocked(ops []Op, res []error) (over, under bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	groups := make(map[int][]int, len(r.shards))
	for i, op := range ops {
		if !op.Delete && !op.P.Finite() {
			// Reject inserts up front: a non-finite score would poison
			// the score set. Non-finite deletes fall through instead —
			// locate clamps NaN/±Inf to a shard and the exact-match
			// delete reports ErrNotFound, matching Index.ApplyBatch.
			res[i] = core.ErrInvalidPoint
			continue
		}
		si := r.locate(op.P.X)
		groups[si] = append(groups[si], i)
	}
	lens := make([]int, len(groups)) // final sizes of touched shards
	sis := make([]int, len(groups))  // their topology indexes
	fns := make([]func(), 0, len(groups))
	nextSlot := 0
	for si, idxs := range groups {
		s, idxs, slot := r.shards[si], idxs, nextSlot
		sis[slot] = si
		nextSlot++
		fns = append(fns, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, i := range idxs {
				if ops[i].Delete {
					if s.ix.Delete(ops[i].P) {
						r.releaseScore(ops[i].P.Score)
						r.n.Add(-1)
					} else {
						res[i] = core.ErrNotFound
					}
					continue
				}
				if _, err := r.insertShard(s, ops[i].P); err != nil {
					res[i] = err
				} else {
					r.n.Add(1)
				}
			}
			lens[slot] = s.ix.Len()
		})
	}
	runParallel(fns)
	total := r.n.Load()
	for slot, ln := range lens {
		if r.overloaded(ln, total) {
			over = true
		}
		// All workers are done, so no shard mutex is held and
		// mergeable may probe neighbor sizes.
		if !under && r.mergeable(sis[slot], ln, total) {
			under = true
		}
	}
	return over, under
}

// Query is one read of a QueryBatch: the k highest-scoring points
// with position in [X1, X2].
type Query struct {
	X1, X2 float64
	K      int
}

// QueryBatch answers qs as one batch under a SINGLE topology read
// lock, amortizing the lock acquisition and goroutine setup that a
// loop of TopK calls would pay per query. Work is grouped by shard —
// each shard's mutex is taken once and its queries run sequentially
// on it (the EM machines are sequential), while distinct shards
// proceed in parallel. Answers are positionally aligned with qs and
// byte-identical to calling TopK once per query on the same topology;
// invalid queries (k ≤ 0, inverted or NaN bounds) yield nil.
func (r *Router) QueryBatch(qs []Query) [][]point.P {
	if len(qs) == 0 {
		return nil
	}
	out := make([][]point.P, len(qs))
	r.mu.RLock()
	defer r.mu.RUnlock()
	type task struct{ qi, slot int }
	tasks := make([][]task, len(r.shards))
	lists := make([][][]point.P, len(qs))
	for qi, q := range qs {
		if q.K <= 0 || q.X1 > q.X2 || math.IsNaN(q.X1) || math.IsNaN(q.X2) {
			continue
		}
		lo, hi := r.locate(q.X1), r.locate(q.X2)
		lists[qi] = make([][]point.P, hi-lo+1)
		for si := lo; si <= hi; si++ {
			tasks[si] = append(tasks[si], task{qi, si - lo})
		}
	}
	var fns []func()
	for si, ts := range tasks {
		if len(ts) == 0 {
			continue
		}
		s, ts := r.shards[si], ts
		fns = append(fns, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, t := range ts {
				q := qs[t.qi]
				lists[t.qi][t.slot] = s.ix.Query(q.X1, q.X2, q.K)
			}
		})
	}
	if len(fns) > 0 {
		runParallel(fns)
	}
	for qi, ls := range lists {
		if ls != nil {
			out[qi] = mergeTopK(ls, qs[qi].K)
		}
	}
	return out
}

func addStats(a, b em.Stats) em.Stats {
	return em.Stats{
		Reads:      a.Reads + b.Reads,
		Writes:     a.Writes + b.Writes,
		Allocs:     a.Allocs + b.Allocs,
		Frees:      a.Frees + b.Frees,
		BlocksLive: a.BlocksLive + b.BlocksLive,
		BlocksPeak: a.BlocksPeak + b.BlocksPeak,
	}
}

// Stats aggregates the I/O meters of every shard disk plus the
// transfer counters of disks retired by splits, merges and rebalances
// (retired space gauges are stripped at retire time — those blocks
// die with the disk). BlocksLive is the fleet-wide live total;
// BlocksPeak is the high-water mark of that fleet total as observed
// at Stats calls and topology changes — a total some instant actually
// held, not a sum of per-shard peaks from different instants.
func (r *Router) Stats() em.Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := r.retired
	for _, s := range r.shards {
		s.mu.Lock()
		out = addStats(out, s.d.Stats())
		s.mu.Unlock()
	}
	out.BlocksPeak = r.observePeak(out.BlocksLive)
	return out
}

// ResetStats zeroes every shard's read/write counters and drops the
// retired-meter history (space gauges are kept, matching em).
func (r *Router) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retired = em.Stats{}
	for _, s := range r.shards {
		s.mu.Lock()
		s.d.ResetMeter()
		s.mu.Unlock()
	}
}

// DropCache evicts every shard's buffer pool so the next operations
// run cold.
func (r *Router) DropCache() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.shards {
		s.mu.Lock()
		s.d.DropCache()
		s.mu.Unlock()
	}
}

// CheckInvariants validates the topology (a contiguous cover of the
// line by 1..MaxShards shards, as maintained by splits, merges and
// rebalances), every shard's structures, that each live point lies
// inside its shard's range, and that the atomic live count and the
// fleet-wide score set match the shards (test helper; takes the write
// lock).
func (r *Router) CheckInvariants() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.shards) < 1 || len(r.shards) > r.opt.MaxShards {
		return fmt.Errorf("shard count %d outside [1, MaxShards=%d]", len(r.shards), r.opt.MaxShards)
	}
	total := 0
	prevHi := math.Inf(-1)
	for i, s := range r.shards {
		if i == 0 {
			if !math.IsInf(s.lo, -1) {
				return fmt.Errorf("shard 0 lo = %v, want -Inf", s.lo)
			}
		} else if s.lo != prevHi {
			return fmt.Errorf("shard %d lo = %v, want previous hi %v", i, s.lo, prevHi)
		}
		if i == len(r.shards)-1 && !math.IsInf(s.hi, 1) {
			return fmt.Errorf("last shard hi = %v, want +Inf", s.hi)
		}
		if err := s.ix.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for _, p := range s.ix.Live() {
			if p.X < s.lo || p.X >= s.hi {
				return fmt.Errorf("shard %d [%v,%v): stray point x=%v", i, s.lo, s.hi, p.X)
			}
		}
		total += s.ix.Len()
		prevHi = s.hi
	}
	if int64(total) != r.n.Load() {
		return fmt.Errorf("live count %d != atomic n %d", total, r.n.Load())
	}
	r.scoreMu.Lock()
	defer r.scoreMu.Unlock()
	if len(r.scores) != total {
		return fmt.Errorf("score set has %d entries, want %d", len(r.scores), total)
	}
	for _, s := range r.shards {
		for _, p := range s.ix.Live() {
			if _, ok := r.scores[p.Score]; !ok {
				return fmt.Errorf("live score %v missing from router score set", p.Score)
			}
		}
	}
	return nil
}

// String summarizes the router and its shards.
func (r *Router) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "shard.Router{n=%d, shards=%d", r.n.Load(), len(r.shards))
	for i, s := range r.shards {
		s.mu.Lock()
		fmt.Fprintf(&b, ", s%d[%g,%g)=%d", i, s.lo, s.hi, s.ix.Len())
		s.mu.Unlock()
	}
	b.WriteString("}")
	return b.String()
}
