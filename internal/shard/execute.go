package shard

// This file is the EXECUTION layer of the router: the parallel fan-out
// machinery that answers reads over one pinned topology snapshot.
// Nothing here touches the topology lock — a read pins the snapshot
// with one atomic load and then deals only in per-shard mutexes (each
// shard is a sequential EM machine whose buffer-pool LRU state even
// queries mutate; DESIGN.md Substitution 1).
//
// The k-way heap-merge that combines per-shard answers lives in
// internal/merge, shared with the network cluster tier
// (internal/cluster) so both layers combine partial answers with the
// same provably-exact code.

import (
	"math"

	"repro/internal/core"
	"repro/internal/merge"
	"repro/internal/point"
)

// runParallel runs each fn in its own goroutine and waits for all,
// re-raising worker panics on the caller's goroutine (merge.Parallel).
func runParallel(fns []func()) { merge.Parallel(fns) }

// mergeTopK k-way merges per-shard descending-score lists into the
// global top k, preserving exact order (merge.TopK; scores are
// distinct, so the merged order is unique).
func mergeTopK(lists [][]point.P, k int) []point.P { return merge.TopK(lists, k) }

// fanOut runs per once for every shard of the pinned snapshot
// overlapping [x1, x2], taking each shard's mutex around its call.
// setup receives the overlap count first so callers can size result
// slices; slot indexes them 0..count−1 in shard order. With a single
// overlapped shard everything runs on the caller's goroutine;
// otherwise shards proceed in parallel. No query clamping is needed
// anywhere: a shard only stores points inside its range, so the full
// interval selects exactly its part.
//
// No topology lock is held at any point — the snapshot is immutable,
// and a lifecycle pass that retires one of its shards mid-fan-out
// cannot invalidate it (the retired machine still holds exactly the
// points it held at pin time).
func (r *Router) fanOut(x1, x2 float64, setup func(count int), per func(slot int, ix *core.Index)) {
	t := r.snapshot()
	r.fanOutTopo(t, t.locate(x1), t.locate(x2), setup, per)
}

// fanOutTopo is fanOut over an already-pinned snapshot and located
// shard range [lo, hi]: callers that need the topology for their own
// routing (TopK's single-shard fast path) pin once and reuse it here
// instead of paying a second atomic load and locate pass.
func (r *Router) fanOutTopo(t *topology, lo, hi int, setup func(count int), per func(slot int, ix *core.Index)) {
	setup(hi - lo + 1)
	if lo == hi {
		s := t.shards[lo]
		s.mu.Lock()
		defer s.mu.Unlock()
		per(0, s.ix)
		return
	}
	fns := make([]func(), 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		s, slot := t.shards[i], i-lo
		fns = append(fns, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			per(slot, s.ix)
		})
	}
	runParallel(fns)
}

// TopK returns the k highest-scoring points with position in [x1, x2]
// in descending score order, fanning out to every shard the interval
// overlaps in parallel and heap-merging the per-shard answers. The
// read is linearized at the moment it pins the topology snapshot.
//
// An interval inside one shard — the common case for range-local
// workloads — takes the topKSingle fast path: no goroutines, no list
// slice, no merge; the router layer adds zero allocations over the
// underlying Index.Query (TestRouterTopKAddsNoAllocs holds it there).
func (r *Router) TopK(x1, x2 float64, k int) []point.P {
	// NaN bounds match nothing; they must be rejected here because they
	// also defeat the x1 > x2 guard and the locate binary search (every
	// comparison with NaN is false), which would cross the fan-out's
	// shard range.
	if k <= 0 || x1 > x2 || math.IsNaN(x1) || math.IsNaN(x2) {
		return nil
	}
	t := r.snapshot()
	lo, hi := t.locate(x1), t.locate(x2)
	if lo == hi {
		return topKSingle(t, lo, x1, x2, k)
	}
	var lists [][]point.P
	r.fanOutTopo(t, lo, hi,
		func(count int) { lists = make([][]point.P, count) },
		func(slot int, ix *core.Index) { lists[slot] = ix.Query(x1, x2, k) })
	return mergeTopK(lists, k)
}

// topKSingle answers a TopK whose interval one shard covers, on the
// caller's goroutine: shard mutex, one Index.Query, done. The
// annotation is the router-layer claim — this frame allocates
// nothing; whatever Index.Query allocates for its own answer is the
// index's budget, not the router's.
//
//topk:nomalloc
func topKSingle(t *topology, i int, x1, x2 float64, k int) []point.P {
	s := t.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Query(x1, x2, k)
}

// Count returns the number of stored points with position in [x1, x2],
// summing overlapped shards in parallel.
func (r *Router) Count(x1, x2 float64) int {
	if x1 > x2 || math.IsNaN(x1) || math.IsNaN(x2) {
		return 0
	}
	var counts []int
	r.fanOut(x1, x2,
		func(count int) { counts = make([]int, count) },
		func(slot int, ix *core.Index) { counts[slot] = ix.Count(x1, x2) })
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// Query is one read of a QueryBatch: the k highest-scoring points
// with position in [X1, X2].
type Query struct {
	X1, X2 float64
	K      int
}

// QueryBatch answers qs as one batch over a SINGLE pinned snapshot,
// amortizing the snapshot pin and goroutine setup that a loop of TopK
// calls would pay per query. Work is grouped by shard — each shard's
// mutex is taken once and its queries run sequentially on it (the EM
// machines are sequential), while distinct shards proceed in
// parallel. Answers are positionally aligned with qs and
// byte-identical to calling TopK once per query on the same topology;
// invalid queries (k ≤ 0, inverted or NaN bounds) yield nil.
func (r *Router) QueryBatch(qs []Query) [][]point.P {
	if len(qs) == 0 {
		return nil
	}
	out := make([][]point.P, len(qs))
	t := r.snapshot()
	type task struct{ qi, slot int }
	tasks := make([][]task, len(t.shards))
	lists := make([][][]point.P, len(qs))
	for qi, q := range qs {
		if q.K <= 0 || q.X1 > q.X2 || math.IsNaN(q.X1) || math.IsNaN(q.X2) {
			continue
		}
		lo, hi := t.locate(q.X1), t.locate(q.X2)
		lists[qi] = make([][]point.P, hi-lo+1)
		for si := lo; si <= hi; si++ {
			tasks[si] = append(tasks[si], task{qi, si - lo})
		}
	}
	var fns []func()
	for si, ts := range tasks {
		if len(ts) == 0 {
			continue
		}
		s, ts := t.shards[si], ts
		fns = append(fns, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, t := range ts {
				q := qs[t.qi]
				lists[t.qi][t.slot] = s.ix.Query(q.X1, q.X2, q.K)
			}
		})
	}
	if len(fns) > 0 {
		runParallel(fns)
	}
	for qi, ls := range lists {
		if ls != nil {
			out[qi] = mergeTopK(ls, qs[qi].K)
		}
	}
	return out
}
