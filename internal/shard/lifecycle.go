package shard

// This file is the LIFECYCLE layer of the router: the split/merge/
// rebalance policy, the passes that execute it under the topology
// write lock, and the background maintenance loop that runs the same
// passes on a timer so the fleet keeps adapting while traffic is idle.
//
// Policy evaluation happens in two places. The update paths observe
// conditions opportunistically (an insert re-checks its shard for
// overload, a delete for underload) and trigger a pass; the
// maintenance loop runs the full pass unconditionally every tick.
// The loop matters because the inline hooks only re-examine the shard
// an update just touched: a tiny shard whose merge was vetoed while
// its neighbor was heavy stays stranded after later deletes lighten
// that neighbor — no delete ever re-examines the tiny shard — until
// either the next delete lands on it or a maintenance tick sweeps the
// whole fleet.
//
// Every pass re-checks its policy under the write lock before acting:
// between the observation (made under a read lock or no lock at all)
// and the write lock, another goroutine may already have acted.
// Content scans (Live/Len/meters) take each shard's mutex even under
// the topology write lock, because snapshot-pinned readers may be
// querying the same shard concurrently.

import (
	"sort"
	"time"

	"repro/internal/point"
)

// splitSize reports whether a shard of size ln trips the split
// policy's size thresholds (the shard-count cap is checked
// separately): at least MinSplit points and more than SkewFactor times
// the fair share n/MaxShards.
func (r *Router) splitSize(ln int, total int64) bool {
	if ln < r.opt.MinSplit {
		return false
	}
	fair := float64(total) / float64(r.opt.MaxShards)
	return float64(ln) > r.opt.SkewFactor*fair
}

// overloaded applies the split policy to a shard of size ln with the
// given live total, against the shard count of topology t.
func (r *Router) overloaded(t *topology, ln int, total int64) bool {
	return len(t.shards) < r.opt.MaxShards && r.splitSize(ln, total)
}

// underloaded applies the merge policy to a shard of size ln with the
// given live total: below the merge floor (static MinMerge, or the
// adaptive floor when MinMerge is 0) a shard always qualifies; above
// it, only when it holds less than 1/SkewFactor of the fair share —
// the mirror image of the split trigger.
func (r *Router) underloaded(t *topology, ln int, total int64) bool {
	if r.opt.MinMerge < 0 || len(t.shards) <= 1 {
		return false
	}
	if ln < int(r.mergeFloor.Load()) {
		return true
	}
	fair := float64(total) / float64(r.opt.MaxShards)
	return float64(ln) < fair/r.opt.SkewFactor
}

// mergeable reports whether the shard at index si (now holding ln
// points) qualifies for a merge that some pass could actually
// perform: underloaded AND coalescing with at least one adjacent
// neighbor would survive the hysteresis veto. Checking the veto here,
// on the observation path, keeps a wedged shard — one whose only
// neighbors are too heavy to absorb it — from sending every
// subsequent delete through an exclusive write lock for a guaranteed
// no-op pass. Caller holds mu in read mode and no shard mutex (the
// neighbors' mutexes are taken briefly to read their sizes).
func (r *Router) mergeable(t *topology, si, ln int, total int64) bool {
	if !r.underloaded(t, ln, total) {
		return false
	}
	for _, ni := range [2]int{si - 1, si + 1} {
		if ni < 0 || ni >= len(t.shards) {
			continue
		}
		if !r.splitSize(ln+t.shards[ni].size(), total) {
			return true
		}
	}
	return false
}

// splitOverloaded re-checks the split policy under the write lock and
// splits every qualifying shard at its median position, publishing a
// new snapshot per split. Re-checking is required: between the
// observation and this write lock, another goroutine may already have
// split.
func (r *Router) splitOverloaded() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		t := r.snapshot()
		total := r.n.Load()
		split := false
		for i, s := range t.shards {
			if !r.overloaded(t, s.size(), total) {
				continue
			}
			pts := s.live()
			point.SortByX(pts)
			mid := len(pts) / 2
			// Positions are distinct, so pts[mid-1].X < pts[mid].X and
			// the median is a valid cut strictly inside (lo, hi).
			cut := pts[mid].X
			disk := r.opt.diskFor(len(t.shards) + 1)
			left := newShard(r.opt, disk, s.lo, cut, pts[:mid])
			right := newShard(r.opt, disk, cut, s.hi, pts[mid:])
			shards := append(t.shards[:i:i], append([]*shard{left, right}, t.shards[i+1:]...)...)
			r.publish(shards, addStats(t.retired, transfers(s.meter())))
			r.splits.Add(1)
			r.observeFleetPeak()
			split = true
			break
		}
		if !split {
			return
		}
	}
}

// mergeUnderloaded re-checks the merge policy under the write lock and
// coalesces qualifying shards with their neighbors until none
// qualifies. Re-checking is required for the same reason as in
// splitOverloaded: between the observation and this write lock,
// another goroutine may already have merged (or refilled the shard).
func (r *Router) mergeUnderloaded() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.mergeOnce() {
	}
}

// mergeOnce coalesces the smallest underloaded shard with its smaller
// adjacent neighbor and reports whether a merge happened. Candidates
// are tried smallest-first; one is skipped when the combined shard
// would itself trip the split policy's size test (the hysteresis that
// prevents split/merge flapping — e.g. an emptied shard wedged between
// two heavy ones stays put rather than fattening a neighbor the next
// insert would cut apart). Caller holds mu in write mode.
func (r *Router) mergeOnce() bool {
	t := r.snapshot()
	total := r.n.Load()
	sizes := make([]int, len(t.shards))
	for i, s := range t.shards {
		sizes[i] = s.size()
	}
	var cand []int
	for i, ln := range sizes {
		if r.underloaded(t, ln, total) {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool { return sizes[cand[a]] < sizes[cand[b]] })
	for _, i := range cand {
		j := i - 1
		if i == 0 || (i+1 < len(t.shards) && sizes[i+1] < sizes[i-1]) {
			j = i + 1
		}
		if r.splitSize(sizes[i]+sizes[j], total) {
			continue
		}
		if j < i {
			i, j = j, i
		}
		r.coalesce(t, i, j)
		return true
	}
	return false
}

// coalesce replaces adjacent shards lo and lo+1 of topology t with one
// shard over their union range, rebuilt with core.Bulk on a fresh disk
// sized for the shrunken fleet, and publishes the new snapshot. The
// rebuild cost is amortized against the deletions that underloaded the
// shard — the same argument as the paper's global rebuilding. Caller
// holds mu in write mode; t is the current snapshot.
func (r *Router) coalesce(t *topology, lo, hi int) {
	a, b := t.shards[lo], t.shards[hi]
	pts := append(a.live(), b.live()...)
	point.SortByX(pts)
	merged := newShard(r.opt, r.opt.diskFor(len(t.shards)-1), a.lo, b.hi, pts)
	retired := addStats(t.retired, addStats(transfers(a.meter()), transfers(b.meter())))
	shards := append(t.shards[:lo:lo], append([]*shard{merged}, t.shards[hi+1:]...)...)
	r.publish(shards, retired)
	r.merges.Add(1)
	r.observeFleetPeak()
}

// Splits returns the number of shard splits since creation.
func (r *Router) Splits() int64 { return r.splits.Load() }

// Merges returns the number of shard merges since creation.
func (r *Router) Merges() int64 { return r.merges.Load() }

// Rebalance re-partitions the router into up to target equal quantile
// shards (capped at MaxShards; target < 1 means MaxShards), preserving
// contents exactly.
func (r *Router) Rebalance(target int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if target < 1 || target > r.opt.MaxShards {
		target = r.opt.MaxShards
	}
	t := r.snapshot()
	var all []point.P
	retired := t.retired
	for _, s := range t.shards {
		all = append(all, s.live()...)
		retired = addStats(retired, transfers(s.meter()))
	}
	point.SortByX(all)
	// Build first, publish after: if the rebuild panics (e.g. a
	// contract violation that slipped into the data), the router keeps
	// its old snapshot and meters instead of double-counting retired
	// stats on a retry.
	shards := partition(r.opt, all, target)
	r.publish(shards, retired)
	r.observeFleetPeak()
}

// MergeFloor returns the effective merge floor currently in force:
// Options.MinMerge when positive, else the adaptive floor maintained
// by the maintenance loop (starting at MinSplit/2).
func (r *Router) MergeFloor() int { return int(r.mergeFloor.Load()) }

// updateMergeFloor re-derives the adaptive merge floor from observed
// per-shard space overhead; it runs only in auto mode (MinMerge == 0)
// and only raises the floor above the static default of MinSplit/2,
// capped at MinSplit.
//
// The estimate: blocks-per-point of the fleet's largest shard is the
// closest observation of the structure's asymptotic O(1/B) space
// constant, so any excess blocks-per-point in a smaller shard is
// fixed skeleton cost — blocks a query visiting the shard pays for
// regardless of how few points it can contribute. The floor is the
// point count at which a shard's payload, at the reference rate,
// reaches adaptiveMargin times its observed fixed cost: below it the
// shard is skeleton-dominated, the degenerate state merging exists to
// repair, so when observed overhead is high the floor rises and the
// maintenance pass coalesces more aggressively.
//
// Raising the floor above MinSplit/2 cannot cause split/merge
// flapping: the structural hysteresis veto (a merge is skipped when
// the combined shard would pass the split size test) is checked
// independently of the floor, so the halves of a fresh split — whose
// combined size just tripped that very test — are never glued back
// together no matter how high the floor sits.
func (r *Router) updateMergeFloor() {
	if !r.autoFloor {
		return
	}
	t := r.snapshot()
	if len(t.shards) < 2 {
		return
	}
	sizes := make([]int, len(t.shards))
	blocks := make([]int64, len(t.shards))
	ref := 0
	for i, s := range t.shards {
		s.mu.Lock()
		sizes[i] = s.ix.Len()
		blocks[i] = s.d.Stats().BlocksLive
		s.mu.Unlock()
		if sizes[i] > sizes[ref] {
			ref = i
		}
	}
	if sizes[ref] == 0 || blocks[ref] == 0 {
		return
	}
	bpp := float64(blocks[ref]) / float64(sizes[ref])
	var fixed float64
	others := 0
	for i := range sizes {
		if i == ref {
			continue
		}
		if f := float64(blocks[i]) - bpp*float64(sizes[i]); f > 0 {
			fixed += f
		}
		others++
	}
	floor := r.defaultFloor()
	if est := int(adaptiveMargin * fixed / float64(others) / bpp); est > floor {
		floor = est
	}
	if floor > r.opt.MinSplit {
		floor = r.opt.MinSplit
	}
	r.mergeFloor.Store(int64(floor))
}

// adaptiveMargin is how many times a shard's payload must outweigh
// its fixed skeleton cost before the adaptive floor considers it
// worth its per-shard visit overhead (the O(log_B n_i) descent and
// fan-out bookkeeping a query pays per shard regardless of yield). A
// shard at the break-even point (payload = skeleton) still spends
// most of each visit on fixed cost; demanding a 4× margin keeps the
// floor conservative without needing per-query instrumentation.
const adaptiveMargin = 4

// defaultFloor is the static merge floor of auto mode: MinSplit/2
// (min 1), the value that keeps split halves at or above the floor.
func (r *Router) defaultFloor() int {
	f := r.opt.MinSplit / 2
	if f < 1 {
		f = 1
	}
	return f
}

// poolShrinkUtil is the fleet budget utilization below which the
// maintenance pass reclaims over-provisioned buffer pools: when the
// fleet's resident working set occupies less than half of the total
// pool frames it has allocated, pools above the re-derived fair split
// are shrunk back to it.
const poolShrinkUtil = 0.5

// shrinkPools reclaims over-provisioned per-shard buffer pools
// between rebuilds. Pool sizes are normally re-derived only when a
// shard is (re)built — diskFor divides the fleet budget by the fleet
// size AT BUILD TIME — so a shard built when the fleet was small keeps
// its large pool while splits grow the fleet around it, pushing the
// fleet total past the O(M) budget. The inverse drift is the working
// set: after heavy deletes the data left in those pools is a fraction
// of their frames.
//
// Each pass re-derives the fair per-shard split of the fleet budget
// for the CURRENT shard count and measures fleet budget utilization —
// resident-capable blocks (live blocks, capped at each pool's frame
// count) as a fraction of total pool frames. Only when utilization has
// dropped below poolShrinkUtil does it act, and then only by
// SHRINKING: every pool larger than the fair split is resized down to
// it (em applies the model's M ≥ 2B floor), evicting overflow with
// write-back charged as usual. Pools below fair are never grown here —
// growth happens at the next rebuild, as always — so a hot,
// well-utilized fleet is never perturbed.
func (r *Router) shrinkPools() {
	// Updates also run under the read lock + shard mutexes, so resizing
	// here cannot race a rebuild (write-locked) or serve path.
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.snapshot()
	fair := r.opt.diskFor(len(t.shards)).M
	type poolView struct {
		s *shard
		m int
	}
	views := make([]poolView, 0, len(t.shards))
	var capBlocks, occBlocks int64
	for _, s := range t.shards {
		s.mu.Lock()
		m := s.d.M()
		frames := int64(s.d.Frames())
		live := s.d.Stats().BlocksLive
		s.mu.Unlock()
		if live > frames {
			live = frames // a pool can never hold more than its frames
		}
		capBlocks += frames
		occBlocks += live
		views = append(views, poolView{s, m})
	}
	if capBlocks == 0 || float64(occBlocks) >= poolShrinkUtil*float64(capBlocks) {
		return
	}
	for _, v := range views {
		if v.m > fair {
			v.s.mu.Lock()
			v.s.d.Resize(fair)
			v.s.mu.Unlock()
		}
	}
}

// Maintain runs one synchronous maintenance pass: refresh the
// adaptive merge floor, coalesce underloaded shards, split overloaded
// ones, and reclaim over-provisioned buffer pools. It is exactly what
// the background loop runs every MaintenanceInterval; exposing it lets
// operators and tests drive the lifecycle deterministically.
func (r *Router) Maintain() {
	r.updateMergeFloor()
	r.mergeUnderloaded()
	r.splitOverloaded()
	r.shrinkPools()
}

// startMaintenance launches the background maintenance goroutine when
// Options.MaintenanceInterval is positive. Called once from the
// constructors before the router is shared.
func (r *Router) startMaintenance() {
	if r.opt.MaintenanceInterval <= 0 {
		return
	}
	r.maintStop = make(chan struct{})
	r.maintDone = make(chan struct{})
	go func() {
		defer close(r.maintDone)
		tick := time.NewTicker(r.opt.MaintenanceInterval)
		defer tick.Stop()
		for {
			select {
			case <-r.maintStop:
				return
			case <-tick.C:
				r.Maintain()
			}
		}
	}()
}

// Close stops the background maintenance goroutine and waits for it to
// exit. It is idempotent and safe to call on a router that never had a
// maintenance loop; the router keeps serving after Close — only the
// timer-driven passes stop.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		if r.maintStop != nil {
			close(r.maintStop)
			<-r.maintDone
		}
	})
	return nil
}
