// Package sketch implements the logarithmic sketch of Sheng and Tao,
// the tool §4.1 of the paper builds on, together with the multi-set
// approximate rank selection of Lemma 7.
//
// Let L be a set of l real values; the rank of e in L is |{e' ∈ L :
// e' ≥ e}| (the largest element has rank 1). A sketch Σ of L is an array
// of ⌊log_c l⌋+1 pivots where the j-th pivot is an element of L whose
// rank falls in the window [c^(j-1), c^j). The paper uses c = 2; the base
// is a parameter here so the ablation bench can vary it.
//
// Lemma 7: given sketches of m disjoint sets and 1 ≤ k ≤ |∪L_i|, a value
// x with rank in [k, c3·k] in the union can be found from the sketches
// alone, where c3 is a constant (c3 = c³ for this implementation; 8 for
// the paper's base 2). Merge implements it:
//
//	For a threshold x, est_i(x) = c^(j-1) where j is the largest pivot
//	index of Σ_i with value ≥ x (0 if none). Validity of the sketches
//	gives est_i(x) ≤ rank_i(x) < c²·est_i(x). Merge returns the largest
//	pivot value x with EST(x) = Σ est_i(x) ≥ k, or -∞ if no pivot
//	qualifies. Lower bound: rank(x) ≥ EST(x) ≥ k. Upper bound: let x'
//	be the next larger candidate (EST(x') < k); moving to x raises one
//	sketch's estimate by at most (c-1)·est_i(x') < (c-1)·k, so
//	EST(x) < c·k and rank(x) < c²·EST(x) < c³·k. For -∞: EST(-∞) ≥
//	|∪L_i|/c, so EST(-∞) < k implies rank(-∞) = |∪L_i| < c·k.
//
// The package also provides Tracked, a sketch with exact per-pivot local
// ranks maintained incrementally under insertions and deletions — the
// bookkeeping that §4.2/§4.3 perform on the compressed sketch set.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// DefaultBase is the rank-window base used by the paper.
const DefaultBase = 2

// Pivot is one sketch entry: an element and (when tracked) its exact
// local rank.
type Pivot struct {
	Value float64
	// Rank is the exact local rank |{e ∈ L : e ≥ Value}|. Static sketches
	// built by Build carry the construction-time rank.
	Rank int
}

// Sketch is a logarithmic sketch: Pivots[j-1] is the paper's Σ[j].
type Sketch struct {
	Base   int
	Pivots []Pivot
}

// NumPivots returns the pivot count required for a set of size l:
// ⌊log_base l⌋ + 1, and 0 for an empty set.
func NumPivots(l, base int) int {
	if l <= 0 {
		return 0
	}
	n, p := 1, base
	for p <= l {
		n++
		p *= base
	}
	return n
}

// WindowLo returns the smallest legal rank of pivot j (1-based): c^(j-1).
func WindowLo(j, base int) int {
	lo := 1
	for i := 1; i < j; i++ {
		lo *= base
	}
	return lo
}

// Build constructs the canonical sketch of the given set with pivot j
// chosen as the element of rank c^(j-1). sortedDesc must be sorted by
// descending value.
func Build(sortedDesc []float64, base int) Sketch {
	if base < 2 {
		panic("sketch: base must be ≥ 2")
	}
	s := Sketch{Base: base}
	for j := 1; j <= NumPivots(len(sortedDesc), base); j++ {
		r := WindowLo(j, base)
		s.Pivots = append(s.Pivots, Pivot{Value: sortedDesc[r-1], Rank: r})
	}
	return s
}

// Validate checks that s is a legal sketch of the set sortedDesc: correct
// pivot count, each pivot present with rank inside its window.
func Validate(s Sketch, sortedDesc []float64) error {
	want := NumPivots(len(sortedDesc), s.Base)
	if len(s.Pivots) != want {
		return fmt.Errorf("sketch: %d pivots, want %d for l=%d", len(s.Pivots), want, len(sortedDesc))
	}
	for j, p := range s.Pivots {
		r := sort.Search(len(sortedDesc), func(i int) bool { return sortedDesc[i] <= p.Value })
		if r >= len(sortedDesc) || sortedDesc[r] != p.Value {
			return fmt.Errorf("sketch: pivot %d value %v not in set", j+1, p.Value)
		}
		rank := r + 1
		lo := WindowLo(j+1, s.Base)
		if rank < lo || rank >= lo*s.Base {
			return fmt.Errorf("sketch: pivot %d rank %d outside [%d,%d)", j+1, rank, lo, lo*s.Base)
		}
	}
	return nil
}

// MergeBound returns the approximation constant c3 guaranteed by Merge
// for the given base: base³.
func MergeBound(base int) int { return base * base * base }

// Merge implements Lemma 7: it returns a value x whose rank in the union
// of the sketched sets lies in [k, MergeBound(base)·k], provided every
// sketch is valid and 1 ≤ k ≤ |∪L_i|. x is either −∞ or an element of
// the union. The I/O cost of reading the m sketches is borne by the
// caller (each sketch occupies O(1) blocks); Merge itself is CPU-only,
// which is free in the EM model.
func Merge(sketches []Sketch, k int) float64 {
	if k < 1 {
		panic("sketch: k must be ≥ 1")
	}
	type cand struct {
		value float64
		si    int // sketch index
		j     int // 1-based pivot index
	}
	var cands []cand
	base := DefaultBase
	for si, s := range sketches {
		if s.Base != 0 {
			base = s.Base
		}
		for j := range s.Pivots {
			cands = append(cands, cand{s.Pivots[j].Value, si, j + 1})
		}
	}
	// Sweep candidates from largest to smallest, maintaining
	// EST = Σ_i est_i incrementally.
	sort.Slice(cands, func(a, b int) bool { return cands[a].value > cands[b].value })
	est := make([]int, len(sketches))
	total := 0
	for _, c := range cands {
		w := WindowLo(c.j, base)
		if w > est[c.si] {
			total += w - est[c.si]
			est[c.si] = w
		}
		if total >= k {
			return c.value
		}
	}
	return math.Inf(-1)
}

// MergeRanked is Merge for rank-encoded sketches, the compressed form of
// §4.1: pivots are identified by their global rank in the ground set G
// (1 = largest) instead of by value, which is all a compressed sketch
// set stores. ranked[i][j-1] is the global rank of the j-th pivot of
// sketch i. The function returns the global rank g* of a pivot whose
// rank within the union of the sketched sets lies in [k, MergeBound·k],
// or 0 to signify −∞ (the union is smaller than base·k).
//
// The algorithm is Merge with the sweep order reversed: ascending global
// rank is descending value.
func MergeRanked(ranked [][]int, base, k int) int {
	if k < 1 {
		panic("sketch: k must be ≥ 1")
	}
	type cand struct {
		grank int
		si    int
		j     int
	}
	var cands []cand
	for si, piv := range ranked {
		for j, g := range piv {
			cands = append(cands, cand{g, si, j + 1})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].grank < cands[b].grank })
	est := make([]int, len(ranked))
	total := 0
	for _, c := range cands {
		w := WindowLo(c.j, base)
		if w > est[c.si] {
			total += w - est[c.si]
			est[c.si] = w
		}
		if total >= k {
			return c.grank
		}
	}
	return 0
}

// Tracked is a sketch whose pivots carry exact local ranks, updated
// incrementally as the underlying set changes. It performs exactly the
// in-memory bookkeeping of §4.2/§4.3: rank shifts on every update,
// expansion/shrink when |L| crosses a power of the base, detection of
// dangling and invalidated pivots. It does not access the set itself;
// when a new or replacement pivot element is needed, the caller supplies
// it (from a B-tree, per the paper).
type Tracked struct {
	Base   int
	Size   int
	Pivots []Pivot
}

// NewTracked returns an empty tracked sketch.
func NewTracked(base int) *Tracked {
	if base < 2 {
		panic("sketch: base must be ≥ 2")
	}
	return &Tracked{Base: base}
}

// BuildTracked constructs a canonical tracked sketch for sortedDesc.
func BuildTracked(sortedDesc []float64, base int) *Tracked {
	s := Build(sortedDesc, base)
	return &Tracked{Base: base, Size: len(sortedDesc), Pivots: s.Pivots}
}

// Sketch returns the static view for merging.
func (t *Tracked) Sketch() Sketch { return Sketch{Base: t.Base, Pivots: t.Pivots} }

// WantPivots returns the required pivot count for the current size.
func (t *Tracked) WantPivots() int { return NumPivots(t.Size, t.Base) }

// NoteInsert records the insertion of v into the set: ranks of pivots
// with value ≤ v shift up by one. It returns true if the sketch must
// expand (|L| reached a new power of the base); the caller then appends
// the minimum element via AppendPivot.
func (t *Tracked) NoteInsert(v float64) (expand bool) {
	t.Size++
	for i := range t.Pivots {
		if t.Pivots[i].Value <= v {
			t.Pivots[i].Rank++
		}
	}
	return t.WantPivots() > len(t.Pivots)
}

// AppendPivot adds the expansion pivot: the element of local rank rank
// (the paper uses the minimum, rank = |L|).
func (t *Tracked) AppendPivot(v float64, rank int) {
	t.Pivots = append(t.Pivots, Pivot{Value: v, Rank: rank})
}

// NoteDelete records the deletion of v: ranks of pivots with value < v
// shift down by one. dangling is the 1-based index of the pivot whose
// element was v itself (0 if none); the caller must replace it via
// SetPivot. If the sketch must shrink, the last pivot is dropped first
// (a dangling last pivot therefore reports 0 after the shrink).
func (t *Tracked) NoteDelete(v float64) (dangling int) {
	t.Size--
	for i := range t.Pivots {
		if t.Pivots[i].Value < v {
			t.Pivots[i].Rank--
		} else if t.Pivots[i].Value == v {
			dangling = i + 1
		}
	}
	if want := t.WantPivots(); want < len(t.Pivots) {
		t.Pivots = t.Pivots[:want]
		if dangling > want {
			dangling = 0
		}
	}
	return dangling
}

// SetPivot replaces pivot j (1-based) with the element v of local rank
// rank. The paper repairs an invalidated Σ[j] with the element of rank
// ⌊(3/2)·c^(j-1)⌋ so that Ω(c^(j-1)) updates are needed to invalidate it
// again; RepairRank computes that target.
func (t *Tracked) SetPivot(j int, v float64, rank int) {
	t.Pivots[j-1] = Pivot{Value: v, Rank: rank}
}

// RepairRank returns the target local rank for repairing pivot j:
// ⌊(3/2)·c^(j-1)⌋, clamped into [1, Size].
func (t *Tracked) RepairRank(j int) int {
	r := 3 * WindowLo(j, t.Base) / 2
	if r < 1 {
		r = 1
	}
	if r > t.Size {
		r = t.Size
	}
	return r
}

// Invalidated returns the 1-based indices of pivots whose exact rank has
// left its window [c^(j-1), c^j).
func (t *Tracked) Invalidated() []int {
	var out []int
	for j := 1; j <= len(t.Pivots); j++ {
		lo := WindowLo(j, t.Base)
		r := t.Pivots[j-1].Rank
		if r < lo || r >= lo*t.Base {
			out = append(out, j)
		}
	}
	return out
}

// WordSize returns the storage footprint in words: one value plus one
// rank per pivot, plus the size counter. (The compressed bit-packed form
// used inside a block is produced by package flgroup.)
func (t *Tracked) WordSize() int { return 1 + 2*len(t.Pivots) }
