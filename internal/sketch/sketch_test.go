package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func descSet(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := map[float64]bool{}
	var out []float64
	for len(out) < n {
		v := rng.Float64() * 1e6
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func TestNumPivots(t *testing.T) {
	cases := []struct{ l, base, want int }{
		{0, 2, 0}, {1, 2, 1}, {2, 2, 2}, {3, 2, 2}, {4, 2, 3},
		{7, 2, 3}, {8, 2, 4}, {1000, 2, 10},
		{1, 4, 1}, {4, 4, 2}, {15, 4, 2}, {16, 4, 3},
	}
	for _, c := range cases {
		if got := NumPivots(c.l, c.base); got != c.want {
			t.Errorf("NumPivots(%d,%d)=%d want %d", c.l, c.base, got, c.want)
		}
	}
}

func TestWindowLo(t *testing.T) {
	for j, want := range []int{1, 2, 4, 8, 16} {
		if got := WindowLo(j+1, 2); got != want {
			t.Errorf("WindowLo(%d,2)=%d want %d", j+1, got, want)
		}
	}
	if got := WindowLo(3, 4); got != 16 {
		t.Errorf("WindowLo(3,4)=%d", got)
	}
}

func TestBuildValidate(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1023, 1024} {
		set := descSet(n, int64(n))
		for _, base := range []int{2, 3, 4} {
			s := Build(set, base)
			if err := Validate(s, set); err != nil {
				t.Fatalf("n=%d base=%d: %v", n, base, err)
			}
		}
	}
}

func TestValidateRejectsBadPivot(t *testing.T) {
	set := descSet(64, 1)
	s := Build(set, 2)
	s.Pivots[3].Value = set[0] // rank 1, outside window [8,16)
	if Validate(s, set) == nil {
		t.Fatal("accepted pivot outside window")
	}
	s = Build(set, 2)
	s.Pivots[0].Value = -1 // not in set
	if Validate(s, set) == nil {
		t.Fatal("accepted foreign pivot")
	}
	s = Build(set, 2)
	s.Pivots = s.Pivots[:len(s.Pivots)-1]
	if Validate(s, set) == nil {
		t.Fatal("accepted short sketch")
	}
}

// unionRank computes the true rank of x in the union of sets.
func unionRank(sets [][]float64, x float64) int {
	r := 0
	for _, set := range sets {
		for _, v := range set {
			if v >= x {
				r++
			}
		}
	}
	return r
}

func TestMergeGuarantee(t *testing.T) {
	for _, base := range []int{2, 4} {
		c3 := MergeBound(base)
		for trial := 0; trial < 30; trial++ {
			rng := rand.New(rand.NewSource(int64(base*1000 + trial)))
			m := rng.Intn(8) + 1
			var sets [][]float64
			var sketches []Sketch
			total := 0
			for i := 0; i < m; i++ {
				n := rng.Intn(300) + 1
				set := descSet(n, int64(trial*100+i))
				sets = append(sets, set)
				sketches = append(sketches, Build(set, base))
				total += n
			}
			for _, k := range []int{1, 2, 3, 5, 10, total / 2, total} {
				if k < 1 || k > total {
					continue
				}
				x := Merge(sketches, k)
				var r int
				if math.IsInf(x, -1) {
					r = total
				} else {
					r = unionRank(sets, x)
				}
				if r < k || r > c3*k {
					t.Fatalf("base=%d trial=%d k=%d: rank %d outside [%d,%d]",
						base, trial, k, r, k, c3*k)
				}
			}
		}
	}
}

func TestMergeSingleSketch(t *testing.T) {
	set := descSet(128, 3)
	s := Build(set, 2)
	for k := 1; k <= 128; k *= 2 {
		x := Merge([]Sketch{s}, k)
		var r int
		if math.IsInf(x, -1) {
			r = 128
		} else {
			r = unionRank([][]float64{set}, x)
		}
		if r < k || r > 8*k {
			t.Fatalf("k=%d rank=%d", k, r)
		}
	}
}

func TestMergeKOnePicksNearMax(t *testing.T) {
	set := descSet(100, 4)
	x := Merge([]Sketch{Build(set, 2)}, 1)
	if r := unionRank([][]float64{set}, x); r < 1 || r > 8 {
		t.Fatalf("k=1 rank=%d", r)
	}
}

func TestMergePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k=0")
		}
	}()
	Merge(nil, 0)
}

func TestTrackedInsertShifts(t *testing.T) {
	set := descSet(64, 5)
	tr := BuildTracked(set, 2)
	// Insert above the max: every pivot rank shifts.
	before := make([]int, len(tr.Pivots))
	for i, p := range tr.Pivots {
		before[i] = p.Rank
	}
	tr.NoteInsert(2e6)
	for i, p := range tr.Pivots {
		if p.Rank != before[i]+1 {
			t.Fatalf("pivot %d rank %d want %d", i, p.Rank, before[i]+1)
		}
	}
	// Insert below the min: no rank shifts.
	tr2 := BuildTracked(set, 2)
	tr2.NoteInsert(-1)
	for i, p := range tr2.Pivots {
		if p.Rank != before[i] {
			t.Fatalf("pivot %d shifted on low insert", i)
		}
	}
}

func TestTrackedExpansion(t *testing.T) {
	set := descSet(7, 6) // next power of 2 is 8
	tr := BuildTracked(set, 2)
	if len(tr.Pivots) != 3 {
		t.Fatalf("pivots=%d", len(tr.Pivots))
	}
	if !tr.NoteInsert(-5) {
		t.Fatal("expansion not signalled at size 8")
	}
	tr.AppendPivot(-5, 8)
	if len(tr.Pivots) != 4 || tr.WantPivots() != 4 {
		t.Fatalf("after expand: %d pivots, want %d", len(tr.Pivots), tr.WantPivots())
	}
	if len(tr.Invalidated()) != 0 {
		t.Fatalf("invalidated after legal expansion: %v", tr.Invalidated())
	}
}

func TestTrackedShrink(t *testing.T) {
	set := descSet(8, 7)
	tr := BuildTracked(set, 2)
	if len(tr.Pivots) != 4 {
		t.Fatalf("pivots=%d", len(tr.Pivots))
	}
	tr.NoteDelete(set[5]) // size 8 -> 7: shrink to 3 pivots
	if len(tr.Pivots) != 3 {
		t.Fatalf("after shrink: %d pivots", len(tr.Pivots))
	}
}

func TestTrackedDanglingPivot(t *testing.T) {
	set := descSet(32, 8)
	tr := BuildTracked(set, 2)
	v := tr.Pivots[2].Value
	d := tr.NoteDelete(v)
	if d != 3 {
		t.Fatalf("dangling=%d want 3", d)
	}
	// Replace with the paper's repair element.
	rr := tr.RepairRank(3)
	tr.SetPivot(3, set[rr-1], rr) // approximately; rank may be off by the delete
	if tr.Size != 31 {
		t.Fatalf("size=%d", tr.Size)
	}
}

func TestTrackedDanglingLastPivotAfterShrink(t *testing.T) {
	set := descSet(8, 9)
	tr := BuildTracked(set, 2)
	last := tr.Pivots[3].Value // rank 8; deleting it shrinks to 3 pivots
	d := tr.NoteDelete(last)
	if d != 0 {
		t.Fatalf("dangling=%d want 0 (pivot dropped by shrink)", d)
	}
	if len(tr.Pivots) != 3 {
		t.Fatalf("pivots=%d", len(tr.Pivots))
	}
}

func TestRepairRankClamped(t *testing.T) {
	tr := NewTracked(2)
	tr.Size = 3
	if got := tr.RepairRank(2); got != 3 {
		t.Fatalf("clamped repair rank=%d want 3", got)
	}
	tr.Size = 100
	if got := tr.RepairRank(3); got != 6 { // ⌊3/2·4⌋
		t.Fatalf("repair rank=%d want 6", got)
	}
}

// model maintains the real set alongside a Tracked sketch and repairs
// pivots exactly as §4.2/§4.3 prescribe.
type model struct {
	set []float64 // descending
	tr  *Tracked
}

func (m *model) rank(v float64) int {
	return sort.Search(len(m.set), func(i int) bool { return m.set[i] <= v }) + 1
}

func (m *model) insert(v float64) {
	if j := sort.Search(len(m.set), func(i int) bool { return m.set[i] <= v }); j < len(m.set) && m.set[j] == v {
		return // distinct-value assumption: ignore duplicates
	}
	i := sort.Search(len(m.set), func(i int) bool { return m.set[i] < v })
	m.set = append(m.set, 0)
	copy(m.set[i+1:], m.set[i:])
	m.set[i] = v
	if m.tr.NoteInsert(v) {
		m.tr.AppendPivot(m.set[len(m.set)-1], len(m.set))
	}
	m.repair()
}

func (m *model) delete(v float64) {
	j := sort.Search(len(m.set), func(i int) bool { return m.set[i] <= v })
	if j >= len(m.set) || m.set[j] != v {
		return
	}
	m.set = append(m.set[:j], m.set[j+1:]...)
	if d := m.tr.NoteDelete(v); d != 0 {
		r := m.tr.RepairRank(d)
		m.tr.SetPivot(d, m.set[r-1], r)
	}
	m.repair()
}

func (m *model) repair() {
	for _, j := range m.tr.Invalidated() {
		r := m.tr.RepairRank(j)
		m.tr.SetPivot(j, m.set[r-1], r)
	}
}

// Property: under arbitrary update sequences with §4-style repairs, the
// tracked sketch stays a valid sketch of the set, and the tracked ranks
// stay exact.
func TestQuickTrackedStaysValid(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &model{set: descSet(16, seed), tr: nil}
		m.tr = BuildTracked(m.set, 2)
		for _, op := range ops {
			if op%3 == 0 && len(m.set) > 4 {
				m.delete(m.set[rng.Intn(len(m.set))])
			} else {
				m.insert(rng.Float64() * 1e6)
			}
			// Exactness of tracked ranks.
			for _, p := range m.tr.Pivots {
				if m.rank(p.Value) != p.Rank {
					return false
				}
			}
			if Validate(m.tr.Sketch(), m.set) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge never violates its rank guarantee on random inputs.
func TestQuickMergeGuarantee(t *testing.T) {
	f := func(sizes []uint8, kRaw uint16, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		var sets [][]float64
		var sketches []Sketch
		total := 0
		for i, szRaw := range sizes {
			n := int(szRaw%200) + 1
			set := descSet(n, seed+int64(i))
			sets = append(sets, set)
			sketches = append(sketches, Build(set, 2))
			total += n
		}
		k := int(kRaw)%total + 1
		x := Merge(sketches, k)
		r := total
		if !math.IsInf(x, -1) {
			r = unionRank(sets, x)
		}
		return r >= k && r <= 8*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWordSize(t *testing.T) {
	tr := BuildTracked(descSet(100, 10), 2)
	if got, want := tr.WordSize(), 1+2*len(tr.Pivots); got != want {
		t.Fatalf("WordSize=%d want %d", got, want)
	}
}

func BenchmarkBuild(b *testing.B) {
	set := descSet(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(set, 2)
	}
}

func BenchmarkMerge16(b *testing.B) {
	var sketches []Sketch
	for i := 0; i < 16; i++ {
		sketches = append(sketches, Build(descSet(512, int64(i)), 2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(sketches, 100)
	}
}
