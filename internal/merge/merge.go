// Package merge holds the scatter-gather primitives shared by every
// fan-out layer of the serving stack: the k-way heap-merge that
// combines per-partition descending-score answers into the global top
// k, and the parallel runner that executes per-partition work with
// panic propagation.
//
// Two layers use it. internal/shard fans a query out to the local
// range-partitioned shards and merges their answers; internal/cluster
// fans the same query out to remote topkd member nodes over HTTP and
// merges THEIR answers. Both merges are byte-identical to what a
// single sequential Index would report, because scores are distinct by
// the paper's standing assumption, so the merged descending order is
// unique — factoring the code here keeps the two layers provably
// identical instead of coincidentally similar.
package merge

import (
	"sync"
	"sync/atomic"

	"repro/internal/heap"
	"repro/internal/point"
)

// listSource adapts a descending-score point list to heap.Source: a
// sorted list is a unary max-heap chain (entry i's only child is
// entry i+1), so heap.Forest + heap.SelectTop perform a k-way merge
// that pops the global maximum at every step. Refs are list indices;
// no I/O is charged (the lists are query results already in memory).
type listSource []point.P

func (l listSource) Roots() []heap.Entry {
	if len(l) == 0 {
		return nil
	}
	return []heap.Entry{{Ref: 0, Key: l[0].Score}}
}

func (l listSource) Children(ref int64) []heap.Entry {
	next := ref + 1
	if next >= int64(len(l)) {
		return nil
	}
	return []heap.Entry{{Ref: next, Key: l[next].Score}}
}

// TopK k-way merges per-partition descending-score lists into the
// global top k, preserving exact order (scores are distinct). k is
// clamped to the merged length first, so an absurd client-supplied k
// cannot drive the output allocation.
func TopK(lists [][]point.P, k int) []point.P {
	nonEmpty := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	if k > total {
		k = total
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		if k < len(nonEmpty[0]) {
			return nonEmpty[0][:k]
		}
		return nonEmpty[0]
	}
	f := &heap.Forest{Sources: make([]heap.Source, len(nonEmpty))}
	for i, l := range nonEmpty {
		f.Sources[i] = listSource(l)
	}
	out := make([]point.P, 0, k)
	for _, e := range heap.SelectTop(f, k) {
		src, ref := heap.SplitRef(e.Ref)
		out = append(out, nonEmpty[src][ref])
	}
	return out
}

// panicBox carries a recovered panic value across goroutines with a
// single concrete type, as atomic.Value requires.
type panicBox struct{ v any }

// Parallel runs each fn in its own goroutine and waits for all.
// A panic inside a worker (an internal invariant violation — contract
// violations on caller input are rejected with errors before reaching
// here) is captured and re-raised on the caller's goroutine after
// every worker finishes — an unrecovered goroutine panic would kill
// the whole process, and locks held by workers are released by the
// workers' own defers.
func Parallel(fns []func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	var pv atomic.Value
	for _, f := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					pv.CompareAndSwap(nil, &panicBox{v})
				}
			}()
			f()
		}(f)
	}
	wg.Wait()
	if b := pv.Load(); b != nil {
		panic(b.(*panicBox).v)
	}
}
