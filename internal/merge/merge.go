// Package merge holds the scatter-gather primitives shared by every
// fan-out layer of the serving stack: the k-way heap-merge that
// combines per-partition descending-score answers into the global top
// k, and the parallel runner that executes per-partition work with
// panic propagation.
//
// Two layers use it. internal/shard fans a query out to the local
// range-partitioned shards and merges their answers; internal/cluster
// fans the same query out to remote topkd member nodes over HTTP and
// merges THEIR answers. Both merges are byte-identical to what a
// single sequential Index would report, because scores are distinct by
// the paper's standing assumption, so the merged descending order is
// unique — factoring the code here keeps the two layers provably
// identical instead of coincidentally similar.
package merge

import (
	"sync"
	"sync/atomic"

	"repro/internal/point"
)

// cursor is one per-list read head in the k-way merge: the next
// candidate's score plus where it lives. Concrete and word-sized on
// purpose — the previous implementation adapted the generic
// heap.Forest, whose container/heap-style interface boxed every
// pushed entry into an interface value, allocating once per merged
// point. The cursor heap keeps the whole merge in two reusable
// slices.
type cursor struct {
	key  float64
	list int32
	idx  int32
}

// Merger owns the reusable backing of a k-way merge: the cursor heap.
// A Merger is not safe for concurrent use; TopK draws them from a
// pool, long-lived callers (the shard router's fan-out) can hold
// their own.
type Merger struct {
	heap []cursor
}

// NewMerger returns an empty Merger; backing grows on first use and
// is reused afterwards.
func NewMerger() *Merger { return &Merger{} }

// mergerPool recycles Mergers across TopK calls so the steady-state
// serving path performs no heap setup per query.
var mergerPool = sync.Pool{New: func() any { return NewMerger() }}

// TopKInto k-way merges per-partition descending-score lists into the
// global top k, preserving exact order (scores are distinct). k is
// clamped to the merged length first, so an absurd client-supplied k
// cannot drive the output allocation. The result is written into dst
// when its capacity suffices (dst is resliced from zero; its previous
// contents are ignored) — a warm Merger with an adequate dst performs
// zero allocations, which the //topk:nomalloc annotations on the loop
// guarantee and TestTopKIntoZeroAllocs enforces.
func (m *Merger) TopKInto(dst []point.P, lists [][]point.P, k int) []point.P {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if k > total {
		k = total
	}
	if k <= 0 {
		return dst[:0]
	}
	// Cold path: grow the output and heap backing outside the
	// annotated loop.
	if cap(dst) < k {
		dst = make([]point.P, 0, k)
	}
	if cap(m.heap) < len(lists) {
		m.heap = make([]cursor, 0, len(lists))
	}
	return m.mergeLoop(dst[:k], lists)
}

// mergeLoop fills dst from the lists through the cursor heap. The
// caller has sized dst to the clamped k and m.heap to len(lists);
// everything here is reslicing and index assignment — append is
// banned in annotated functions even when capacity suffices.
//
//topk:nomalloc
func (m *Merger) mergeLoop(dst []point.P, lists [][]point.P) []point.P {
	h := m.heap[:0]
	for i := range lists {
		if len(lists[i]) > 0 {
			h = h[:len(h)+1]
			h[len(h)-1] = cursor{key: lists[i][0].Score, list: int32(i), idx: 0}
		}
	}
	// Floyd heapify: sift down every internal node.
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	n := 0
	for n < len(dst) && len(h) > 0 {
		top := h[0]
		dst[n] = lists[top.list][top.idx]
		n++
		if next := top.idx + 1; int(next) < len(lists[top.list]) {
			h[0] = cursor{key: lists[top.list][next].Score, list: top.list, idx: next}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
	}
	m.heap = h[:0]
	return dst[:n]
}

// siftDown restores the max-heap property below index i.
//
//topk:nomalloc
func siftDown(h []cursor, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		big := l
		if r := l + 1; r < len(h) && h[r].key > h[l].key {
			big = r
		}
		if h[big].key <= h[i].key {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// TopK k-way merges per-partition descending-score lists into the
// global top k. Semantics are unchanged from the original: nil when
// every list is empty, and a single non-empty list is returned by
// reference (truncated to k), not copied. The merge state comes from
// a pool, so the only steady-state allocation is the result slice
// itself.
func TopK(lists [][]point.P, k int) []point.P {
	nonEmpty := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	if k > total {
		k = total
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		if k < len(nonEmpty[0]) {
			return nonEmpty[0][:k]
		}
		return nonEmpty[0]
	}
	m := mergerPool.Get().(*Merger)
	out := m.TopKInto(make([]point.P, 0, k), nonEmpty, k)
	mergerPool.Put(m)
	return out
}

// panicBox carries a recovered panic value across goroutines with a
// single concrete type, as atomic.Value requires.
type panicBox struct{ v any }

// Parallel runs each fn in its own goroutine and waits for all.
// A panic inside a worker (an internal invariant violation — contract
// violations on caller input are rejected with errors before reaching
// here) is captured and re-raised on the caller's goroutine after
// every worker finishes — an unrecovered goroutine panic would kill
// the whole process, and locks held by workers are released by the
// workers' own defers.
func Parallel(fns []func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	var pv atomic.Value
	for _, f := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					pv.CompareAndSwap(nil, &panicBox{v})
				}
			}()
			f()
		}(f)
	}
	wg.Wait()
	if b := pv.Load(); b != nil {
		panic(b.(*panicBox).v)
	}
}
