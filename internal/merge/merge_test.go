package merge

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/point"
)

// TestTopKMatchesReference checks the heap merge against the
// brute-force reference over randomized partitions: split a point set
// into contiguous score bands (how the cluster tier partitions) and
// position bands (how the shard tier partitions), merge, and compare.
func TestTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]point.P, n)
		for i := range pts {
			// Distinct scores by construction.
			pts[i] = point.P{X: rng.Float64() * 1000, Score: float64(i) + rng.Float64()/2}
		}
		rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		parts := 1 + rng.Intn(6)
		lists := make([][]point.P, parts)
		for i, p := range pts {
			lists[i%parts] = append(lists[i%parts], p)
		}
		for i := range lists {
			point.SortByScoreDesc(lists[i])
		}
		for _, k := range []int{0, 1, 3, n / 2, n, n + 10} {
			got := TopK(lists, k)
			want := point.TopK(pts, -1, 2000, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d parts=%d k=%d: merge mismatch\ngot  %v\nwant %v", trial, parts, k, got, want)
			}
		}
	}
}

// TestTopKIntoMatchesTopK runs the reusable merger against the TopK
// wrapper over randomized partitions; the two paths share the loop but
// differ in backing management, and both must agree element-for-element.
func TestTopKIntoMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMerger()
	var dst []point.P
	for trial := 0; trial < 50; trial++ {
		parts := 2 + rng.Intn(5)
		lists := make([][]point.P, parts)
		n := 0
		for i := range lists {
			ln := rng.Intn(40)
			n += ln
			lists[i] = make([]point.P, ln)
			for j := range lists[i] {
				lists[i][j] = point.P{X: rng.Float64(), Score: rng.Float64()}
			}
			point.SortByScoreDesc(lists[i])
		}
		for _, k := range []int{0, 1, n / 2, n, n + 5} {
			// TopK compacts its argument slice in place; give it a copy.
			listsCopy := make([][]point.P, len(lists))
			copy(listsCopy, lists)
			want := TopK(listsCopy, k)
			dst = m.TopKInto(dst, lists, k)
			if len(dst) != len(want) {
				t.Fatalf("trial %d k=%d: TopKInto len %d, TopK len %d", trial, k, len(dst), len(want))
			}
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("trial %d k=%d idx %d: TopKInto %v, TopK %v", trial, k, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestTopKIntoZeroAllocs is the testing half of the //topk:nomalloc
// contract on the merge loop: a warm Merger with adequate dst capacity
// performs zero allocations per merge.
func TestTopKIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 16
	lists := make([][]point.P, 8)
	for i := range lists {
		lists[i] = make([]point.P, 50)
		for j := range lists[i] {
			lists[i][j] = point.P{X: rng.Float64(), Score: rng.Float64()}
		}
		point.SortByScoreDesc(lists[i])
	}
	m := NewMerger()
	dst := make([]point.P, 0, k)
	dst = m.TopKInto(dst, lists, k) // warm the heap backing
	allocs := testing.AllocsPerRun(100, func() {
		dst = m.TopKInto(dst, lists, k)
	})
	if allocs != 0 {
		t.Fatalf("warm TopKInto allocates %.1f times per run; //topk:nomalloc promises 0", allocs)
	}
}

// TestParallelPanic checks a worker panic is re-raised on the caller.
func TestParallelPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was not propagated")
		}
	}()
	Parallel([]func(){func() {}, func() { panic("boom") }, func() {}})
}
