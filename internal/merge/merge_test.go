package merge

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/point"
)

// TestTopKMatchesReference checks the heap merge against the
// brute-force reference over randomized partitions: split a point set
// into contiguous score bands (how the cluster tier partitions) and
// position bands (how the shard tier partitions), merge, and compare.
func TestTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]point.P, n)
		for i := range pts {
			// Distinct scores by construction.
			pts[i] = point.P{X: rng.Float64() * 1000, Score: float64(i) + rng.Float64()/2}
		}
		rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		parts := 1 + rng.Intn(6)
		lists := make([][]point.P, parts)
		for i, p := range pts {
			lists[i%parts] = append(lists[i%parts], p)
		}
		for i := range lists {
			point.SortByScoreDesc(lists[i])
		}
		for _, k := range []int{0, 1, 3, n / 2, n, n + 10} {
			got := TopK(lists, k)
			want := point.TopK(pts, -1, 2000, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d parts=%d k=%d: merge mismatch\ngot  %v\nwant %v", trial, parts, k, got, want)
			}
		}
	}
}

// TestParallelPanic checks a worker panic is re-raised on the caller.
func TestParallelPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was not propagated")
		}
	}()
	Parallel([]func(){func() {}, func() { panic("boom") }, func() {}})
}
