package obs

// Prometheus text-format (0.0.4) writers for the obs types: histogram
// families with one label dimension, and the Go runtime gauges. The
// serving layer appends these to the counter/gauge families it already
// emits on /v1/metrics; every family carries # HELP and # TYPE lines
// and histogram buckets are cumulative and end at le="+Inf" — the
// serve-layer well-formedness test parses the whole page to prove it.

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
)

// fmtF renders a float for the text format with round-trip precision.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteHistogramVec emits one histogram family with a series per label
// value in v. An empty vec emits the HELP/TYPE header only, so a
// family's presence on the scrape page does not depend on traffic.
func WriteHistogramVec(w io.Writer, name, help, label string, v *Vec) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	if v == nil {
		return
	}
	bounds := Bounds()
	for _, lv := range v.Labels() {
		s := v.Get(lv).Snapshot()
		for i, b := range bounds {
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, lv, fmtF(b), s.Counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, lv, s.Counts[numBounds])
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, label, lv, fmtF(s.Sum.Seconds()))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, lv, s.Count)
	}
}

// WriteHistogram emits one unlabeled latency histogram family (bounds
// in seconds). A nil histogram emits the HELP/TYPE header only.
func WriteHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	if h == nil {
		return
	}
	s := h.Snapshot()
	for i, b := range Bounds() {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtF(b), s.Counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Counts[numBounds])
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtF(s.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WriteCountHistogram emits one unlabeled value histogram family
// (bounds are raw powers of two, not seconds). A nil histogram emits
// the HELP/TYPE header only.
func WriteCountHistogram(w io.Writer, name, help string, h *CountHist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	if h == nil {
		return
	}
	s := h.Snapshot()
	for i, b := range CountBounds() {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtF(b), s.Counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Counts[numBounds])
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtF(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WriteRuntimeMetrics emits the Go runtime gauges: goroutines, heap
// occupancy and GC activity. ReadMemStats stops the world briefly;
// that is fine at scrape frequency.
func WriteRuntimeMetrics(w io.Writer) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtF(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtF(v))
	}
	gauge("topkd_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("topkd_go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(m.HeapAlloc))
	gauge("topkd_go_heap_objects", "Live heap objects.", float64(m.HeapObjects))
	counter("topkd_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(m.PauseTotalNs)/1e9)
	counter("topkd_go_gc_cycles_total", "Completed GC cycles.", float64(m.NumGC))
}
