package obs

// Metrics federation: the gateway scrapes each member's /v1/metrics
// page, parses the Prometheus text format, and merges the families
// into one fleet-wide page. The merge is exact, not approximate:
// every histogram in the fleet uses the identical log-scaled bucket
// boundaries (2^i), so summing per-bucket counts across members loses
// nothing — the federated p99 is the true fleet p99 to within one
// bucket width, same as any single member's. Counters sum; gauges
// (and untyped samples) cannot be meaningfully summed, so they are
// re-emitted per member with a node="addr" label.

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricsPage is one member's raw /v1/metrics response.
type MetricsPage struct {
	Node string // member address, the node label of per-member samples
	Body []byte
}

// Label is one label pair of a sample.
type Label struct {
	Key, Value string
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string // full sample name incl. _bucket/_sum/_count suffix
	Labels []Label
	Value  float64
}

// key returns the canonical identity of the sample inside its family:
// full name plus sorted label pairs (le included, node excluded — the
// caller adds node labels only after merging).
func (s PromSample) key() string {
	ls := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		ls[i] = l.Key + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(ls)
	return s.Name + "{" + strings.Join(ls, ",") + "}"
}

// PromFamily is one parsed metric family: the HELP/TYPE header and the
// samples announced under it, in page order.
type PromFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | untyped
	Samples []PromSample
}

// ParseProm parses a Prometheus text-format (0.0.4) page into families.
// The parser is strict about the shapes this codebase emits: every
// sample must belong to an announced family (histogram samples via
// their _bucket/_sum/_count suffixes), label values are quoted strings,
// and malformed lines are errors rather than skips — a member emitting
// garbage should fail the federation loudly, not vanish from it.
func ParseProm(body []byte) ([]*PromFamily, error) {
	var fams []*PromFamily
	byName := map[string]*PromFamily{}
	family := func(name string) *PromFamily {
		f := byName[name]
		if f == nil {
			f = &PromFamily{Name: name, Type: "untyped"}
			byName[name] = f
			fams = append(fams, f)
		}
		return f
	}
	for ln, line := range strings.Split(string(bytes.TrimRight(body, "\n")), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("prom: line %d: HELP without metric name", ln+1)
			}
			family(name).Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if name == "" || typ == "" {
				return nil, fmt.Errorf("prom: line %d: malformed TYPE line %q", ln+1, line)
			}
			family(name).Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", ln+1, err)
		}
		f := byName[s.Name]
		if f == nil {
			// Histogram samples carry the family name plus a suffix.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(s.Name, suf); ok {
					if bf := byName[base]; bf != nil && bf.Type == "histogram" {
						f = bf
						break
					}
				}
			}
		}
		if f == nil {
			return nil, fmt.Errorf("prom: line %d: sample %q has no family", ln+1, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// parseSampleLine parses `name{k="v",...} value` (labels optional).
func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = line[:i]
		var err error
		s.Labels, err = parseLabels(line[i+1 : j])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("malformed sample %q", line)
		}
	}
	if s.Name == "" {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a label block: k="v",k2="v2".
func parseLabels(in string) ([]Label, error) {
	var out []Label
	for in != "" {
		eq := strings.IndexByte(in, '=')
		if eq < 0 || len(in) < eq+2 || in[eq+1] != '"' {
			return nil, fmt.Errorf("malformed labels")
		}
		key := in[:eq]
		rest := in[eq+1:] // starts at the opening quote
		val, tail, err := unquotePrefix(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, Label{Key: key, Value: val})
		in = tail
		if in != "" {
			if in[0] != ',' {
				return nil, fmt.Errorf("malformed labels")
			}
			in = in[1:]
		}
	}
	return out, nil
}

// unquotePrefix consumes one quoted string from the front of in and
// returns its value plus the remainder.
func unquotePrefix(in string) (string, string, error) {
	if len(in) == 0 || in[0] != '"' {
		return "", "", fmt.Errorf("malformed labels")
	}
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			i++ // skip the escaped byte
		case '"':
			val, err := strconv.Unquote(in[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("malformed labels: %w", err)
			}
			return val, in[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// Federate parses each member page and merges the families into one
// fleet view. Counters and histograms merge by summing samples with
// identical name+labels (lossless for the fixed 2^i buckets); gauges
// and untyped samples are emitted once per member with a node label
// appended. Family order follows first appearance across pages, and
// merged samples keep first-seen order, so per-series histogram
// buckets stay contiguous and ascending.
func Federate(pages []MetricsPage) ([]*PromFamily, error) {
	var fams []*PromFamily
	byName := map[string]*PromFamily{}
	// sums[family][sample key] → index into the family's Samples.
	sums := map[*PromFamily]map[string]int{}
	for _, p := range pages {
		parsed, err := ParseProm(p.Body)
		if err != nil {
			return nil, fmt.Errorf("member %s: %w", p.Node, err)
		}
		for _, pf := range parsed {
			f := byName[pf.Name]
			if f == nil {
				f = &PromFamily{Name: pf.Name, Help: pf.Help, Type: pf.Type}
				byName[pf.Name] = f
				fams = append(fams, f)
				sums[f] = map[string]int{}
			}
			for _, s := range pf.Samples {
				switch f.Type {
				case "counter", "histogram":
					k := s.key()
					if i, ok := sums[f][k]; ok {
						f.Samples[i].Value += s.Value
					} else {
						sums[f][k] = len(f.Samples)
						f.Samples = append(f.Samples, s)
					}
				default: // gauge, untyped: per-member identity matters
					s.Labels = append(append([]Label{}, s.Labels...), Label{Key: "node", Value: p.Node})
					f.Samples = append(f.Samples, s)
				}
			}
		}
	}
	return fams, nil
}

// WriteFamilies renders families back to the text format.
func WriteFamilies(w io.Writer, fams []*PromFamily) {
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type)
		for _, s := range f.Samples {
			if len(s.Labels) == 0 {
				fmt.Fprintf(w, "%s %s\n", s.Name, fmtF(s.Value))
				continue
			}
			parts := make([]string, len(s.Labels))
			for i, l := range s.Labels {
				parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
			}
			fmt.Fprintf(w, "%s{%s} %s\n", s.Name, strings.Join(parts, ","), fmtF(s.Value))
		}
	}
}
