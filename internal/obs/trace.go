package obs

// Request tracing. A Trace is a bounded span tree rooted at the
// serving-layer request; the cluster client hangs one child span per
// member RPC (and one for the merge) off the root, so a gateway query
// yields gateway → per-band member RPC → merge. The trace ID travels
// in the X-Topkd-Trace header: the gateway's client stamps it on every
// member request, the member's middleware adopts it, and both ends
// keep their finished traces in a fixed-size ring served by
// GET /v1/trace/{id}. Traces are sampled (tracing allocates; the
// always-on histograms do not) — a request traces when it arrives with
// the header or when the local sample rate fires.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceHeader is the HTTP header carrying the trace ID across
// processes, request and response.
const TraceHeader = "X-Topkd-Trace"

// ParentSpanHeader carries the ID of the client-side RPC span that
// issued the request. The member's middleware records it on its local
// trace, and the gateway's stitcher later splices the member tree
// under the span with that ID — turning N process-local trees into one
// cross-process tree.
const ParentSpanHeader = "X-Topkd-Parent-Span"

// maxTraceID bounds accepted IDs so a hostile client cannot grow the
// ring's memory arbitrarily through giant header values.
const maxTraceID = 64

// Span is one timed operation inside a trace. Fields are written by
// StartSpan/End and read by Tree after the trace is finished; child
// appends are serialized by the owning Trace.
type Span struct {
	id       string // random 64-bit hex, the stitch point for members
	name     string
	addr     string // member address for RPC spans, "" otherwise
	start    time.Time
	duration time.Duration
	err      string

	mu       sync.Mutex
	children []*Span
}

// newSpanID draws a random 64-bit span ID; collisions across the spans
// of one trace are what matter, and at a handful of RPC spans per
// trace they are negligible.
func newSpanID() string { return fmt.Sprintf("%016x", rand.Uint64()) }

// ID returns the span's unique ID (nil-safe: "" for an un-sampled
// span, which callers must not propagate).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// End closes the span, recording its duration and error (nil-safe, so
// callers can End an un-sampled span unconditionally).
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.duration = time.Since(s.start)
	if err != nil {
		s.err = err.Error()
	}
	s.mu.Unlock()
}

// Trace is one sampled request: an ID and the span tree under it.
type Trace struct {
	ID     string
	Status int // HTTP status of the root request, set at finish
	// ParentSpan is the caller's RPC-span ID when the request arrived
	// with X-Topkd-Parent-Span — the gateway stitches this member trace
	// under that span.
	ParentSpan string
	root       *Span
}

// newTrace builds a trace with the given (or a fresh) ID.
func newTrace(id, rootName string) *Trace {
	if id == "" {
		id = fmt.Sprintf("%016x", rand.Uint64())
	} else if len(id) > maxTraceID {
		id = id[:maxTraceID]
	}
	root := &Span{id: newSpanID(), name: rootName, start: time.Now()}
	return &Trace{ID: id, root: root}
}

// StartSpan opens a child span under the root (nil-safe). Concurrent
// callers — the parallel member fan-out — may start spans at once.
func (t *Trace) StartSpan(name, addr string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{id: newSpanID(), name: name, addr: addr, start: time.Now()}
	t.root.mu.Lock()
	t.root.children = append(t.root.children, sp)
	t.root.mu.Unlock()
	return sp
}

// SpanJSON is the wire shape of a span, the payload of /v1/trace/{id}.
type SpanJSON struct {
	SpanID     string     `json:"span_id"`
	Name       string     `json:"name"`
	Addr       string     `json:"addr,omitempty"`
	Start      time.Time  `json:"start"`
	DurationUS int64      `json:"duration_us"`
	Err        string     `json:"err,omitempty"`
	Children   []SpanJSON `json:"children,omitempty"`
}

// TraceJSON is the wire shape of a finished trace.
type TraceJSON struct {
	ID         string   `json:"id"`
	Status     int      `json:"status"`
	ParentSpan string   `json:"parent_span,omitempty"`
	Root       SpanJSON `json:"root"`
}

func (s *Span) tree() SpanJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SpanJSON{
		SpanID:     s.id,
		Name:       s.name,
		Addr:       s.addr,
		Start:      s.start,
		DurationUS: s.duration.Microseconds(),
		Err:        s.err,
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.tree())
	}
	return out
}

// Tree renders the finished trace for JSON encoding.
func (t *Trace) Tree() TraceJSON {
	return TraceJSON{ID: t.ID, Status: t.Status, ParentSpan: t.ParentSpan, Root: t.root.tree()}
}

// SpanAddrs returns the distinct non-empty member addresses in the
// tree, first-visit order — the fan-out list for trace stitching.
func SpanAddrs(root SpanJSON) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(s SpanJSON)
	walk = func(s SpanJSON) {
		if s.Addr != "" && !seen[s.Addr] {
			seen[s.Addr] = true
			out = append(out, s.Addr)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// Stitch splices each member trace under the span in root whose ID
// matches the member's ParentSpan, mutating root in place. Member
// traces with no parent-span ID, or whose parent is absent from the
// tree (evicted, re-used ID), are skipped. Returns the number of
// subtrees spliced.
func Stitch(root *SpanJSON, members []TraceJSON) int {
	byParent := map[string][]SpanJSON{}
	for _, m := range members {
		if m.ParentSpan != "" {
			byParent[m.ParentSpan] = append(byParent[m.ParentSpan], m.Root)
		}
	}
	// One walk, appending as we go. Each span's original children are
	// visited before the splice grows the slice (the spliced subtrees
	// carry no parent IDs of their own to resolve), so a reallocating
	// append can never stale a pointer the walk still holds.
	n := 0
	var walk func(s *SpanJSON)
	walk = func(s *SpanJSON) {
		for i := 0; i < len(s.Children); i++ {
			walk(&s.Children[i])
		}
		if subs, ok := byParent[s.SpanID]; ok && s.SpanID != "" {
			s.Children = append(s.Children, subs...)
			n += len(subs)
		}
	}
	walk(root)
	return n
}

// ctxKey keys the trace in a context.Context.
type ctxKey struct{}

// WithTrace attaches t to ctx; the cluster client picks it up on the
// far side of the Store interface.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StartSpan opens a child span under ctx's trace, or returns nil (End
// is nil-safe) when the request is not being traced.
func StartSpan(ctx context.Context, name, addr string) *Span {
	return FromContext(ctx).StartSpan(name, addr)
}

// Ring is the bounded in-memory store of finished traces: fixed
// capacity, oldest evicted first, ID-addressable.
type Ring struct {
	mu        sync.Mutex
	buf       []*Trace
	next      int
	byID      map[string]*Trace
	evictions int64
}

// NewRing returns a ring holding up to n finished traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Trace, n), byID: make(map[string]*Trace, n)}
}

// Put stores a finished trace, evicting the oldest when full.
func (r *Ring) Put(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		r.evictions++
		if r.byID[old.ID] == old {
			delete(r.byID, old.ID)
		}
	}
	r.buf[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.buf)
}

// Get returns the trace with the given ID, or nil if it was never
// sampled or has been evicted.
func (r *Ring) Get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Evictions returns the number of finished traces overwritten by
// newer ones — the counter that explains trace_not_found responses.
func (r *Ring) Evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// Tracer owns the sampling decision and the ring of finished traces.
type Tracer struct {
	// Sample is the fraction of header-less requests to trace locally
	// (0 = only propagated traces, ≥ 1 = every request).
	Sample float64
	ring   *Ring
}

// NewTracer returns a tracer sampling at the given rate with a ring of
// ringSize finished traces.
func NewTracer(sample float64, ringSize int) *Tracer {
	return &Tracer{Sample: sample, ring: NewRing(ringSize)}
}

// sampled draws the local sampling decision for a request that arrived
// without a trace header.
func (tr *Tracer) sampled() bool {
	if tr.Sample >= 1 {
		return true
	}
	if tr.Sample <= 0 {
		return false
	}
	return rand.Float64() < tr.Sample
}

// Start begins a trace with the given (or a generated) ID.
func (tr *Tracer) Start(id, rootName string) *Trace {
	return newTrace(id, rootName)
}

// Finish closes the root span, stamps the HTTP status and retains the
// trace in the ring.
func (tr *Tracer) Finish(t *Trace, status int) {
	if t == nil {
		return
	}
	t.root.End(nil)
	t.Status = status
	tr.ring.Put(t)
}

// Get retrieves a finished trace by ID.
func (tr *Tracer) Get(id string) *Trace { return tr.ring.Get(id) }

// RingEvictions returns how many finished traces the ring has evicted.
func (tr *Tracer) RingEvictions() int64 { return tr.ring.Evictions() }
