package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets: observations land in the right log-scaled
// buckets, the snapshot is cumulative, and the +Inf bucket equals the
// count.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)                    // bucket 0 (≤ 1µs)
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(2 * time.Microsecond) // bucket 1
	h.Observe(3 * time.Microsecond) // bucket 2 (≤ 4µs)
	h.Observe(time.Millisecond)     // 1000µs → bucket 10 (≤ 1024µs)
	h.Observe(time.Hour)            // overflow
	h.Observe(-time.Second)         // clamps to 0 → bucket 0

	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Counts[numBounds] != 7 {
		t.Fatalf("+Inf bucket = %d, want 7 (== count)", s.Counts[numBounds])
	}
	if s.Counts[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", s.Counts[0])
	}
	if s.Counts[1] != 4 {
		t.Fatalf("bucket ≤2µs cumulative = %d, want 4", s.Counts[1])
	}
	if s.Counts[2] != 5 {
		t.Fatalf("bucket ≤4µs cumulative = %d, want 5", s.Counts[2])
	}
	if s.Counts[10] != 6 {
		t.Fatalf("bucket ≤1024µs cumulative = %d, want 6", s.Counts[10])
	}
	for i := 1; i < len(s.Counts); i++ {
		if s.Counts[i] < s.Counts[i-1] {
			t.Fatalf("buckets not cumulative at %d: %d < %d", i, s.Counts[i], s.Counts[i-1])
		}
	}
	if want := time.Hour + time.Millisecond + 6*time.Microsecond; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// the merged count must be exact (atomics, not sampling) and the race
// detector must stay quiet.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

// TestQuantile: quantiles of a known distribution land inside the
// owning bucket (log-scaled buckets bound the error to 2x).
func TestQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket (64µs, 128µs]
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // bucket (32.768ms, 65.536ms]
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 64*time.Microsecond || q > 128*time.Microsecond {
		t.Fatalf("p50 = %v, want within (64µs, 128µs]", q)
	}
	if q := s.Quantile(0.99); q < 32*time.Millisecond || q > 66*time.Millisecond {
		t.Fatalf("p99 = %v, want within the 50ms bucket", q)
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestVec: labels create lazily, Get misses return nil, labels sort.
// TestObserveZeroAllocs is the testing half of the //topk:nomalloc
// contract on the histogram hot path: both the bare histogram and a
// warm (label already created) vector record without allocating.
func TestObserveZeroAllocs(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(100, func() {
		h.Observe(42 * time.Microsecond)
	}); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f times per run; //topk:nomalloc promises 0", allocs)
	}

	v := NewVec()
	v.Observe("topk", time.Millisecond) // create the label: the one cold path
	if allocs := testing.AllocsPerRun(100, func() {
		v.Observe("topk", 42*time.Microsecond)
	}); allocs != 0 {
		t.Errorf("warm Vec.Observe allocates %.1f times per run; //topk:nomalloc promises 0", allocs)
	}
}

func TestVec(t *testing.T) {
	v := NewVec()
	v.Observe("b", time.Millisecond)
	v.Observe("a", time.Millisecond)
	v.Observe("a", time.Millisecond)
	if got := v.Labels(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("labels = %v", got)
	}
	if v.Get("missing") != nil {
		t.Fatal("Get(missing) != nil")
	}
	if s := v.Snapshots()["a"]; s.Count != 2 {
		t.Fatalf("a count = %d, want 2", s.Count)
	}
}

// TestRingEviction: the ring holds exactly its capacity, oldest out
// first, and evicted IDs stop resolving.
func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Put(&Trace{ID: fmt.Sprintf("t%d", i), root: &Span{}})
	}
	for i := 0; i < 2; i++ {
		if r.Get(fmt.Sprintf("t%d", i)) != nil {
			t.Fatalf("t%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if r.Get(fmt.Sprintf("t%d", i)) == nil {
			t.Fatalf("t%d missing", i)
		}
	}
}

// TestTraceTree: spans started under a trace (concurrently, like the
// member fan-out) appear as children of the root with durations and
// errors recorded.
func TestTraceTree(t *testing.T) {
	tr := newTrace("", "GET /v1/topk")
	if len(tr.ID) != 16 {
		t.Fatalf("generated ID %q, want 16 hex chars", tr.ID)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.StartSpan("GET /v1/topk", fmt.Sprintf("http://m%d", i))
			if i == 0 {
				sp.End(fmt.Errorf("boom"))
			} else {
				sp.End(nil)
			}
		}(i)
	}
	wg.Wait()
	tr.StartSpan("merge", "").End(nil)
	tree := tr.Tree()
	if len(tree.Root.Children) != 5 {
		t.Fatalf("children = %d, want 5", len(tree.Root.Children))
	}
	errs := 0
	for _, c := range tree.Root.Children {
		if c.Err != "" {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("errored spans = %d, want 1", errs)
	}
	// Nil-safety of the un-sampled path.
	var none *Trace
	none.StartSpan("x", "").End(nil)
}

// TestEndpointLabel: versioned, legacy-alias and admin paths normalize
// to the closed label set; junk collapses to "other".
func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/topk":        "topk",
		"/topk":           "topk",
		"/v1/stats/reset": "stats_reset",
		"/v1/cache/drop":  "cache_drop",
		"/v1/trace/abc12": "trace",
		"/v1/metrics":     "metrics",
		"/metrics":        "metrics",
		"/v1/epoch":       "epoch",
		"/wp-admin.php":   "other",
		"/":               "other",
	}
	for path, want := range cases {
		if got := EndpointLabel(path); got != want {
			t.Fatalf("EndpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestMiddleware: the full pipeline — trace adoption from the request
// header, response echo, histogram recording, ring retention and the
// structured request log carrying the trace ID.
func TestMiddleware(t *testing.T) {
	var buf bytes.Buffer
	tel := New(Options{
		Logger: slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if FromContext(r.Context()) == nil {
			t.Error("handler saw no trace in context")
		}
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(tel.Middleware(inner))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/v1/topk?x1=0&x2=1&k=1", nil)
	req.Header.Set(TraceHeader, "cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "cafe0123" {
		t.Fatalf("response trace header %q, want cafe0123", got)
	}
	tr := tel.Tracer.Get("cafe0123")
	if tr == nil {
		t.Fatal("trace not retained in ring")
	}
	if tr.Status != http.StatusTeapot {
		t.Fatalf("trace status %d, want 418", tr.Status)
	}
	if s := tel.HTTP.Get("topk"); s == nil || s.Snapshot().Count != 1 {
		t.Fatal("endpoint histogram not recorded")
	}
	log := buf.String()
	for _, want := range []string{"trace=cafe0123", "op=topk", "status=418", "msg=request"} {
		if !strings.Contains(log, want) {
			t.Fatalf("request log missing %q:\n%s", want, log)
		}
	}
	if tel.InFlight() != 0 {
		t.Fatalf("in-flight = %d after completion", tel.InFlight())
	}
}

// TestMiddlewareSampling: with rate 0 a header-less request is not
// traced; with rate 1 it is, and the generated ID round-trips through
// the response header into the ring.
func TestMiddlewareSampling(t *testing.T) {
	for _, rate := range []float64{0, 1} {
		tel := New(Options{SampleRate: rate})
		srv := httptest.NewServer(tel.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))
		resp, err := http.Get(srv.URL + "/v1/epoch")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(TraceHeader)
		if rate == 0 {
			if id != "" {
				t.Fatalf("rate 0 issued trace %q", id)
			}
		} else {
			if id == "" {
				t.Fatal("rate 1 issued no trace")
			}
			if tel.Tracer.Get(id) == nil {
				t.Fatalf("trace %q not in ring", id)
			}
		}
		srv.Close()
	}
}

// TestMiddlewareSlowQuery: a request past the threshold logs at warn
// with the slow-query message even when debug logs are filtered out.
func TestMiddlewareSlowQuery(t *testing.T) {
	var buf bytes.Buffer
	tel := New(Options{
		Logger:    slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})),
		SlowQuery: time.Nanosecond,
	})
	srv := httptest.NewServer(tel.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/count?x1=0&x2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	log := buf.String()
	if !strings.Contains(log, "slow query") || !strings.Contains(log, "level=WARN") {
		t.Fatalf("no slow-query warn logged:\n%s", log)
	}
}

// TestWriteHistogramVec: the text format parses the way Prometheus
// expects — HELP/TYPE once, buckets per label cumulative, +Inf last,
// sum and count present; empty vecs emit headers only.
func TestWriteHistogramVec(t *testing.T) {
	v := NewVec()
	v.Observe("topk", 3*time.Microsecond)
	v.Observe("topk", 100*time.Millisecond)
	v.Observe("count", time.Microsecond)
	var b strings.Builder
	WriteHistogramVec(&b, "x_seconds", "help text", "endpoint", v)
	out := b.String()
	if !strings.HasPrefix(out, "# HELP x_seconds help text\n# TYPE x_seconds histogram\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{
		`x_seconds_bucket{endpoint="topk",le="+Inf"} 2`,
		`x_seconds_count{endpoint="topk"} 2`,
		`x_seconds_count{endpoint="count"} 1`,
		`x_seconds_sum{endpoint="count"} 1e-06`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	WriteHistogramVec(&empty, "y_seconds", "h", "op", NewVec())
	if got := empty.String(); got != "# HELP y_seconds h\n# TYPE y_seconds histogram\n" {
		t.Fatalf("empty vec emitted %q", got)
	}
}

// TestWriteRuntimeMetrics: the runtime families are present and carry
// plausible values.
func TestWriteRuntimeMetrics(t *testing.T) {
	var b strings.Builder
	WriteRuntimeMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE topkd_go_goroutines gauge",
		"topkd_go_heap_alloc_bytes ",
		"# TYPE topkd_go_gc_pause_seconds_total counter",
		"topkd_go_gc_cycles_total ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
