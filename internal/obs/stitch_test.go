package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// gatewayTree builds the shape a gateway query leaves behind: a root
// with two member RPC spans (addr set) and a merge span, all carrying
// span IDs.
func gatewayTree() SpanJSON {
	return SpanJSON{
		SpanID: "root0000", Name: "GET /v1/topk",
		Children: []SpanJSON{
			{SpanID: "rpc1", Name: "GET /v1/topk", Addr: "http://m1"},
			{SpanID: "rpc2", Name: "GET /v1/topk", Addr: "http://m2"},
			{SpanID: "mrg1", Name: "merge"},
		},
	}
}

// TestStitch: member traces splice under the RPC span whose ID matches
// their ParentSpan; members with a missing or unknown parent are
// skipped, and the member subtree arrives intact (handler root plus
// its Store-op child).
func TestStitch(t *testing.T) {
	root := gatewayTree()
	members := []TraceJSON{
		{ParentSpan: "rpc1", Root: SpanJSON{
			SpanID: "m1root", Name: "GET /v1/topk",
			Children: []SpanJSON{{SpanID: "m1op", Name: "store.topk"}},
		}},
		{ParentSpan: "rpc2", Root: SpanJSON{SpanID: "m2root", Name: "GET /v1/topk"}},
		{ParentSpan: "", Root: SpanJSON{Name: "headerless"}},         // never spliced
		{ParentSpan: "gone", Root: SpanJSON{Name: "evicted-parent"}}, // unknown parent
	}
	if n := Stitch(&root, members); n != 2 {
		t.Fatalf("spliced = %d, want 2", n)
	}
	rpc1 := root.Children[0]
	if len(rpc1.Children) != 1 || rpc1.Children[0].Name != "GET /v1/topk" {
		t.Fatalf("rpc1 children = %+v, want the member handler root", rpc1.Children)
	}
	if kids := rpc1.Children[0].Children; len(kids) != 1 || kids[0].Name != "store.topk" {
		t.Fatalf("member subtree lost its Store-op child: %+v", kids)
	}
	if got := root.Children[1].Children; len(got) != 1 || got[0].SpanID != "m2root" {
		t.Fatalf("rpc2 children = %+v", got)
	}
	if got := root.Children[2].Children; len(got) != 0 {
		t.Fatalf("merge span grew children: %+v", got)
	}
}

// TestStitchManyUnderOneSpan: several member traces naming the same
// parent (retries) all land under it, after its original children.
func TestStitchManyUnderOneSpan(t *testing.T) {
	root := SpanJSON{
		SpanID: "r", Name: "root",
		Children: []SpanJSON{{SpanID: "rpc", Name: "rpc", Addr: "http://m1",
			Children: []SpanJSON{{SpanID: "orig", Name: "original-child"}}}},
	}
	var members []TraceJSON
	for i := 0; i < 3; i++ {
		members = append(members, TraceJSON{ParentSpan: "rpc",
			Root: SpanJSON{SpanID: fmt.Sprintf("m%d", i), Name: "attempt"}})
	}
	if n := Stitch(&root, members); n != 3 {
		t.Fatalf("spliced = %d, want 3", n)
	}
	kids := root.Children[0].Children
	if len(kids) != 4 || kids[0].Name != "original-child" {
		t.Fatalf("children = %+v, want original first then 3 attempts", kids)
	}
}

// TestSpanAddrs: distinct non-empty addresses in first-visit order —
// the stitcher's fan-out list.
func TestSpanAddrs(t *testing.T) {
	root := SpanJSON{
		Children: []SpanJSON{
			{Addr: "http://m1"},
			{Addr: "http://m2", Children: []SpanJSON{{Addr: "http://m1"}, {Addr: "http://m3"}}},
			{Name: "merge"},
		},
	}
	got := SpanAddrs(root)
	want := []string{"http://m1", "http://m2", "http://m3"}
	if len(got) != len(want) {
		t.Fatalf("addrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addrs = %v, want %v", got, want)
		}
	}
}

// TestSpanIDs: every started span carries a 16-hex ID, distinct from
// its siblings and root, and the JSON tree preserves them.
func TestSpanIDs(t *testing.T) {
	tr := newTrace("", "GET /v1/topk")
	a := tr.StartSpan("GET /v1/topk", "http://m1")
	b := tr.StartSpan("GET /v1/topk", "http://m2")
	a.End(nil)
	b.End(nil)
	if a.ID() == "" || len(a.ID()) != 16 || a.ID() == b.ID() {
		t.Fatalf("span IDs a=%q b=%q, want distinct 16-hex", a.ID(), b.ID())
	}
	var nilSpan *Span
	if nilSpan.ID() != "" {
		t.Fatal("nil span ID should be empty")
	}
	tree := tr.Tree()
	if tree.Root.SpanID == "" || tree.Root.Children[0].SpanID != a.ID() {
		t.Fatalf("tree lost span IDs: %+v", tree.Root)
	}
}

// TestRingEvictionsCounter: the ring counts every overwrite, including
// same-ID replacement, and the tracer surfaces it.
func TestRingEvictionsCounter(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Put(&Trace{ID: fmt.Sprintf("t%d", i), root: &Span{}})
	}
	if got := r.Evictions(); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	tr := NewTracer(0, 1)
	tr.Finish(tr.Start("a", "x"), 200)
	tr.Finish(tr.Start("b", "x"), 200)
	if got := tr.RingEvictions(); got != 1 {
		t.Fatalf("tracer evictions = %d, want 1", got)
	}
}

// TestMiddlewareAdoptsParentSpan: a request arriving with both trace
// and parent-span headers produces a finished trace whose ParentSpan
// is the caller's span ID — the member half of the stitching contract.
func TestMiddlewareAdoptsParentSpan(t *testing.T) {
	tel := New(Options{})
	h := tel.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	req := httptest.NewRequest("GET", "/v1/topk", nil)
	req.Header.Set(TraceHeader, "stitch-test")
	req.Header.Set(ParentSpanHeader, "cafe0123cafe0123")
	h.ServeHTTP(httptest.NewRecorder(), req)

	tr := tel.Tracer.Get("stitch-test")
	if tr == nil {
		t.Fatal("trace not retained")
	}
	if tr.ParentSpan != "cafe0123cafe0123" {
		t.Fatalf("ParentSpan = %q, want the header value", tr.ParentSpan)
	}
	if got := tr.Tree().ParentSpan; got != "cafe0123cafe0123" {
		t.Fatalf("TraceJSON.ParentSpan = %q", got)
	}

	// Without the header the field stays empty (the gateway's own root).
	req2 := httptest.NewRequest("GET", "/v1/topk", nil)
	req2.Header.Set(TraceHeader, "no-parent")
	h.ServeHTTP(httptest.NewRecorder(), req2)
	if tr2 := tel.Tracer.Get("no-parent"); tr2 == nil || tr2.ParentSpan != "" {
		t.Fatalf("headerless request got ParentSpan %v", tr2)
	}
}
