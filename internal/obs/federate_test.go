package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// page builds a minimal member metrics page with one counter, one
// gauge, and one two-bucket histogram whose per-bucket counts are the
// given values.
func page(counter, gauge float64, b1, b2, count uint64, sum float64) []byte {
	var w bytes.Buffer
	w.WriteString("# HELP topkd_requests_total Requests served.\n# TYPE topkd_requests_total counter\n")
	w.WriteString("topkd_requests_total{endpoint=\"topk\"} " + fmtF(counter) + "\n")
	w.WriteString("# HELP topkd_points_live Live points.\n# TYPE topkd_points_live gauge\n")
	w.WriteString("topkd_points_live " + fmtF(gauge) + "\n")
	w.WriteString("# HELP topkd_lat_seconds Latency.\n# TYPE topkd_lat_seconds histogram\n")
	w.WriteString("topkd_lat_seconds_bucket{le=\"0.001\"} " + fmtF(float64(b1)) + "\n")
	w.WriteString("topkd_lat_seconds_bucket{le=\"+Inf\"} " + fmtF(float64(b2)) + "\n")
	w.WriteString("topkd_lat_seconds_sum " + fmtF(sum) + "\n")
	w.WriteString("topkd_lat_seconds_count " + fmtF(float64(count)) + "\n")
	return w.Bytes()
}

// TestParseProm: families come back in page order with types, help and
// samples attached, and histogram suffix samples resolve to the base
// family.
func TestParseProm(t *testing.T) {
	fams, err := ParseProm(page(3, 100, 2, 5, 5, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	if fams[0].Name != "topkd_requests_total" || fams[0].Type != "counter" {
		t.Fatalf("family 0 = %s/%s", fams[0].Name, fams[0].Type)
	}
	if len(fams[0].Samples) != 1 || fams[0].Samples[0].Value != 3 {
		t.Fatalf("counter samples = %+v", fams[0].Samples)
	}
	if got := fams[0].Samples[0].Labels; len(got) != 1 || got[0] != (Label{"endpoint", "topk"}) {
		t.Fatalf("counter labels = %+v", got)
	}
	if fams[2].Type != "histogram" || len(fams[2].Samples) != 4 {
		t.Fatalf("histogram family = %s with %d samples", fams[2].Type, len(fams[2].Samples))
	}
}

// TestParsePromMalformed: garbage pages are loud errors, never silent
// skips — a broken member must fail the federation visibly.
func TestParsePromMalformed(t *testing.T) {
	bad := [][]byte{
		[]byte("orphan_sample 12\n"),                    // sample without a family
		[]byte("# TYPE x counter\nx notanumber\n"),      // bad value
		[]byte("# TYPE x counter\nx{le=\"0.1} 1\n"),     // unterminated label
		[]byte("# TYPE x counter\nx{le=0.1} 1\n"),       // unquoted label value
		[]byte("# HELP  \n"),                            // HELP without a name
		[]byte("# TYPE x counter\nx_bucket{a=\"b\"} 1"), // suffix on a non-histogram
	}
	for i, b := range bad {
		if _, err := ParseProm(b); err == nil {
			t.Errorf("case %d: ParseProm(%q) = nil error, want failure", i, b)
		}
	}
}

// TestFederate: counters and histogram buckets sum exactly across
// members, gauges fan out one sample per member with a node label, and
// a malformed member page fails the whole merge with its node named.
func TestFederate(t *testing.T) {
	pages := []MetricsPage{
		{Node: "127.0.0.1:9001", Body: page(3, 100, 2, 5, 5, 0.25)},
		{Node: "127.0.0.1:9002", Body: page(4, 200, 1, 9, 9, 0.50)},
	}
	fams, err := Federate(pages)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	c := byName["topkd_requests_total"]
	if len(c.Samples) != 1 || c.Samples[0].Value != 7 {
		t.Fatalf("counter merge = %+v, want one sample of 7", c.Samples)
	}

	g := byName["topkd_points_live"]
	if len(g.Samples) != 2 {
		t.Fatalf("gauge fan-out = %d samples, want 2", len(g.Samples))
	}
	want := map[string]float64{"127.0.0.1:9001": 100, "127.0.0.1:9002": 200}
	for _, s := range g.Samples {
		var node string
		for _, l := range s.Labels {
			if l.Key == "node" {
				node = l.Value
			}
		}
		if node == "" || s.Value != want[node] {
			t.Fatalf("gauge sample %+v, want node-labeled with %v", s, want)
		}
	}

	// Histogram exactness: identical 2^i bounds mean per-bucket sums
	// are the true fleet distribution, and _count still equals the
	// +Inf bucket after the merge.
	h := byName["topkd_lat_seconds"]
	got := map[string]float64{}
	for _, s := range h.Samples {
		got[s.key()] = s.Value
	}
	checks := map[string]float64{
		`topkd_lat_seconds_bucket{le="0.001"}`: 3,
		`topkd_lat_seconds_bucket{le="+Inf"}`:  14,
		`topkd_lat_seconds_count{}`:            14,
		`topkd_lat_seconds_sum{}`:              0.75,
	}
	for k, v := range checks {
		if got[k] != v {
			t.Errorf("histogram %s = %v, want %v", k, got[k], v)
		}
	}

	// A broken member fails the merge, naming the node.
	pages[1].Body = []byte("garbage line\n")
	if _, err := Federate(pages); err == nil || !strings.Contains(err.Error(), "127.0.0.1:9002") {
		t.Fatalf("Federate with a garbage page: err = %v, want node-named failure", err)
	}
}

// TestFederateRoundTrip: a federated page renders back to valid text
// format that the same parser accepts — gateways can be scraped by
// other gateways.
func TestFederateRoundTrip(t *testing.T) {
	fams, err := Federate([]MetricsPage{
		{Node: "a:1", Body: page(1, 10, 1, 1, 1, 0.1)},
		{Node: "b:2", Body: page(2, 20, 2, 2, 2, 0.2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var w bytes.Buffer
	WriteFamilies(&w, fams)
	again, err := ParseProm(w.Bytes())
	if err != nil {
		t.Fatalf("re-parsing federated output: %v\n%s", err, w.String())
	}
	if len(again) != len(fams) {
		t.Fatalf("round trip families = %d, want %d", len(again), len(fams))
	}
}

// TestFederateHistogramExact: two real striped histograms observe
// disjoint workloads; federating their rendered pages reproduces the
// bucket vector of one histogram fed both workloads. This is the
// "merge is exact, not approximate" claim as an executable check.
func TestFederateHistogramExact(t *testing.T) {
	var a, b, both Histogram
	for i := 0; i < 500; i++ {
		d := time.Duration(i%700) * time.Microsecond
		a.Observe(d)
		both.Observe(d)
	}
	for i := 0; i < 300; i++ {
		d := time.Duration(i) * 50 * time.Microsecond
		b.Observe(d)
		both.Observe(d)
	}
	render := func(h *Histogram) []byte {
		var w bytes.Buffer
		WriteHistogram(&w, "h_seconds", "test histogram", h)
		return w.Bytes()
	}
	fams, err := Federate([]MetricsPage{
		{Node: "a:1", Body: render(&a)},
		{Node: "b:2", Body: render(&b)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var w bytes.Buffer
	WriteFamilies(&w, fams)
	fed, err := ParseProm(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ParseProm(render(&both))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, s := range direct[0].Samples {
		want[s.key()] = s.Value
	}
	for _, s := range fed[0].Samples {
		wv, ok := want[s.key()]
		if !ok {
			t.Fatalf("federated sample %s absent from direct truth", s.key())
		}
		if strings.HasSuffix(s.Name, "_sum") {
			// _sum crosses the wire as a seconds float and re-adds in a
			// different order; everything countable must match exactly.
			if diff := s.Value - wv; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s = %v, want ≈%v", s.key(), s.Value, wv)
			}
		} else if s.Value != wv {
			t.Errorf("%s = %v, want exactly %v", s.key(), s.Value, wv)
		}
	}
	if len(fed[0].Samples) != len(direct[0].Samples) {
		t.Fatalf("sample count %d, want %d", len(fed[0].Samples), len(direct[0].Samples))
	}
}

// TestCountHist: value observations land log-scaled with exact count
// and sum, and the quantile tracks the distribution.
func TestCountHist(t *testing.T) {
	var h CountHist
	for i := 0; i < 90; i++ {
		h.Observe(16)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := float64(90*16 + 10*1000); s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if s.Counts[4] != 90 { // ≤ 2^4 = 16
		t.Fatalf("bucket ≤16 = %d, want 90", s.Counts[4])
	}
	if q := s.Quantile(0.5); q < 8 || q > 16 {
		t.Fatalf("p50 = %v, want within (8, 16]", q)
	}
	if q := s.Quantile(0.99); q < 512 || q > 1024 {
		t.Fatalf("p99 = %v, want within (512, 1024]", q)
	}
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(7) }); allocs != 0 {
		t.Errorf("CountHist.Observe allocates %.1f times per run; //topk:nomalloc promises 0", allocs)
	}
}
