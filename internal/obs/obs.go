package obs

// Telemetry bundles the per-process observability state — request and
// op histograms, the tracer, the structured logger and the slow-query
// threshold — and provides the HTTP middleware that feeds it. One
// Telemetry per handler tree: internal/serve creates a default one
// when the caller (tests, embedders) does not supply its own, and
// cmd/topkd builds one from its flags.

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Options configures a Telemetry.
type Options struct {
	// Logger receives request logs (debug level; slow queries at warn)
	// and serving-layer error logs. Nil discards.
	Logger *slog.Logger
	// SampleRate is the fraction of header-less requests to trace
	// (0 = only requests carrying X-Topkd-Trace; ≥ 1 = all).
	SampleRate float64
	// TraceRing caps the retained finished traces (default 256).
	TraceRing int
	// SlowQuery, when positive, logs requests at least this slow at
	// warn level.
	SlowQuery time.Duration
}

// Telemetry is the observability state of one handler tree.
type Telemetry struct {
	// Log is the structured logger; never nil (discard by default).
	Log *slog.Logger
	// HTTP records request latency per endpoint label.
	HTTP *Vec
	// Ops records Store operation latency per op (insert, delete,
	// topk, count, apply_batch, query_batch).
	Ops *Vec
	// Tracer owns sampling and the finished-trace ring.
	Tracer *Tracer
	// SlowQuery is the warn-level latency threshold (0 = disabled).
	SlowQuery time.Duration

	inflight atomic.Int64
}

// New builds a Telemetry from o; the zero Options give a discard
// logger, header-only tracing and a 256-trace ring.
func New(o Options) *Telemetry {
	log := o.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	ring := o.TraceRing
	if ring <= 0 {
		ring = 256
	}
	return &Telemetry{
		Log:       log,
		HTTP:      NewVec(),
		Ops:       NewVec(),
		Tracer:    NewTracer(o.SampleRate, ring),
		SlowQuery: o.SlowQuery,
	}
}

// InFlight returns the number of requests currently inside the
// middleware — the gauge behind the shutdown drain summary.
func (t *Telemetry) InFlight() int64 { return t.inflight.Load() }

// endpointLabels is the closed label set of the HTTP histogram;
// anything else (scanner probes, typos) records as "other" so label
// cardinality stays bounded no matter what clients send.
var endpointLabels = map[string]bool{
	"insert": true, "delete": true, "batch": true, "topk": true,
	"count": true, "epoch": true, "range": true, "stats": true,
	"stats_reset": true, "cache_drop": true, "metrics": true,
	"metrics_fleet": true, "trace": true, "outcome": true,
}

// EndpointLabel normalizes a request path to its histogram label:
// "/v1/topk" and the legacy alias "/topk" → "topk", admin twins keep
// their second segment ("stats_reset", "cache_drop"), trace lookups
// drop their ID, and unknown paths collapse to "other".
func EndpointLabel(path string) string {
	p := strings.TrimPrefix(path, "/")
	p = strings.TrimPrefix(p, "v1/")
	seg := strings.SplitN(p, "/", 3)
	label := seg[0]
	if len(seg) > 1 && (seg[1] == "reset" || seg[1] == "drop" || seg[1] == "fleet") {
		label = seg[0] + "_" + seg[1]
	}
	if !endpointLabels[label] {
		return "other"
	}
	return label
}

// statusWriter captures the response status for the request log and
// the trace.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Middleware wraps next with the full per-request pipeline: in-flight
// accounting, per-endpoint latency histogram, trace begin/finish (the
// response echoes the trace ID in X-Topkd-Trace), and the structured
// request log — debug level normally, warn when the request breaches
// the slow-query threshold.
func (t *Telemetry) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		t.inflight.Add(1)
		defer t.inflight.Add(-1)

		var tr *Trace
		if id := r.Header.Get(TraceHeader); id != "" || t.Tracer.sampled() {
			tr = t.Tracer.Start(id, r.Method+" "+r.URL.Path)
			if ps := r.Header.Get(ParentSpanHeader); ps != "" && len(ps) <= maxTraceID {
				tr.ParentSpan = ps
			}
			w.Header().Set(TraceHeader, tr.ID)
			r = r.WithContext(WithTrace(r.Context(), tr))
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)

		d := time.Since(start)
		endpoint := EndpointLabel(r.URL.Path)
		t.HTTP.Observe(endpoint, d)
		t.Tracer.Finish(tr, sw.status)

		lvl := slog.LevelDebug
		msg := "request"
		if t.SlowQuery > 0 && d >= t.SlowQuery {
			lvl = slog.LevelWarn
			msg = "slow query"
		}
		if t.Log.Enabled(r.Context(), lvl) {
			id := ""
			if tr != nil {
				id = tr.ID
			}
			t.Log.LogAttrs(r.Context(), lvl, msg,
				slog.String("trace", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("op", endpoint),
				slog.Int("status", sw.status),
				slog.Duration("dur", d),
			)
		}
	})
}

// TimeOp returns a closure that records the elapsed time under op in
// the Ops histogram — `defer t.TimeOp("topk")()` around a Store call.
func (t *Telemetry) TimeOp(op string) func() {
	start := time.Now()
	return func() { t.Ops.Observe(op, time.Since(start)) }
}

// TimeOpCtx is TimeOp plus a "store.<op>" span on ctx's trace (when
// the request is traced), so member Store operations show up in the
// stitched cross-process tree.
func (t *Telemetry) TimeOpCtx(ctx context.Context, op string) func() {
	start := time.Now()
	sp := startOpSpan(ctx, op)
	return func() {
		t.Ops.Observe(op, time.Since(start))
		sp.End(nil)
	}
}

// startOpSpan opens the Store-op span, or nil when untraced. Split out
// so the string concat only happens on the traced path.
func startOpSpan(ctx context.Context, op string) *Span {
	tr := FromContext(ctx)
	if tr == nil {
		return nil
	}
	return tr.StartSpan("store."+op, "")
}
