// Package obs is the telemetry subsystem of the serving stack:
// lock-cheap latency histograms, request tracing with cross-process
// propagation, structured request logging, and Go runtime gauges —
// threaded through every tier (Index → Sharded → Cluster) by
// internal/serve's middleware and internal/cluster's RPC client.
//
// The design budget is the hot path: a histogram observation is one
// cheap per-thread random draw, two atomic adds and one atomic
// increment on a striped shard — no locks, no allocation — so the
// serving layer can record every request and every member RPC without
// moving the needle on the benchmarks it is measuring (e15 reports the
// on-vs-off delta). Tracing allocates, so it is sampled: a request is
// traced when it carries an X-Topkd-Trace header (propagated from an
// upstream gateway) or when the local sample rate fires.
package obs

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram bucketing: log-scaled, bounds[i] = 2^i microseconds for
// i in [0, numBounds), so the buckets span 1µs to ~16.8s with one
// bits.Len64 to find the bucket. Everything past the last bound lands
// in the overflow (+Inf) bucket.
const (
	numBounds  = 25
	numStripes = 8 // power of two; stripes spread hot-bucket contention
)

// bucketBound returns the upper bound of bucket i as a duration.
func bucketBound(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Bounds returns the bucket upper bounds in seconds, ascending, not
// including the implicit +Inf bucket — the `le` label values of the
// Prometheus export.
func Bounds() []float64 {
	out := make([]float64, numBounds)
	for i := range out {
		out[i] = bucketBound(i).Seconds()
	}
	return out
}

// stripe is one shard of a histogram. Each stripe spans several cache
// lines already (26 counters); the trailing pad keeps the sum/count
// words of adjacent stripes from sharing a line.
type stripe struct {
	counts [numBounds + 1]atomic.Uint64 // last = overflow (+Inf)
	sum    atomic.Int64                 // nanoseconds
	n      atomic.Uint64
	_      [6]uint64
}

// Histogram is a lock-free, striped, log-scaled latency histogram.
// Observe never locks and never allocates; Snapshot merges the stripes
// into one cumulative view. The zero value is ready to use.
type Histogram struct {
	stripes [numStripes]stripe
}

// Observe records one duration. Negative durations clamp to zero.
//
//topk:nomalloc
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	idx := 0
	if us > 0 {
		// Smallest i with us ≤ 2^i.
		idx = bits.Len64(us - 1)
	}
	if idx > numBounds {
		idx = numBounds
	}
	// rand/v2's global generators draw from per-thread state, so the
	// stripe choice is cheap and contention-free.
	s := &h.stripes[rand.Uint32()&(numStripes-1)]
	s.counts[idx].Add(1)
	s.sum.Add(int64(d))
	s.n.Add(1)
}

// Snapshot is a merged, cumulative view of a histogram: Counts[i] is
// the number of observations ≤ the i-th bound, with the final entry
// the +Inf bucket (== Count). Taken against concurrent writers the
// buckets may disagree with Sum by in-flight observations; Count is
// derived from the buckets so that the Prometheus invariant
// (_count == +Inf bucket) always holds.
type Snapshot struct {
	Counts [numBounds + 1]uint64
	Sum    time.Duration
	Count  uint64
}

// Snapshot merges the stripes and cumulates the buckets.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.Sum += time.Duration(st.sum.Load())
	}
	for b := 1; b < len(s.Counts); b++ {
		s.Counts[b] += s.Counts[b-1]
	}
	s.Count = s.Counts[len(s.Counts)-1]
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the owning log-scaled bucket, so the estimate
// is within one bucket width (a factor of 2) of the true value. Zero
// observations estimate zero.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	prev := uint64(0)
	for i, c := range s.Counts {
		if c >= rank {
			var lo time.Duration
			hi := bucketBound(i)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			if i == numBounds {
				// Overflow bucket has no upper bound; report its lower
				// edge — "at least this slow".
				return bucketBound(numBounds - 1)
			}
			frac := float64(rank-prev) / float64(c-prev)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		prev = c
	}
	return bucketBound(numBounds - 1)
}

// CountHist is a lock-free, striped, log-scaled histogram over integer
// values (group sizes, queue depths) rather than durations: bucket i
// holds values ≤ 2^i, reusing the latency histogram's stripes. The
// zero value is ready to use.
type CountHist struct {
	stripes [numStripes]stripe
}

// CountBounds returns the value-histogram bucket upper bounds (raw
// 2^i, not seconds), ascending, excluding the implicit +Inf bucket.
func CountBounds() []float64 {
	out := make([]float64, numBounds)
	for i := range out {
		out[i] = float64(uint64(1) << uint(i))
	}
	return out
}

// Observe records one value. Zero lands in the first bucket.
//
//topk:nomalloc
func (h *CountHist) Observe(v uint64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(v - 1)
	}
	if idx > numBounds {
		idx = numBounds
	}
	s := &h.stripes[rand.Uint32()&(numStripes-1)]
	s.counts[idx].Add(1)
	s.sum.Add(int64(v))
	s.n.Add(1)
}

// ValueSnapshot is the merged cumulative view of a CountHist: Counts[i]
// is the number of observations ≤ 2^i, the final entry the +Inf bucket.
type ValueSnapshot struct {
	Counts [numBounds + 1]uint64
	Sum    float64
	Count  uint64
}

// Snapshot merges the stripes and cumulates the buckets.
func (h *CountHist) Snapshot() ValueSnapshot {
	var s ValueSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.Sum += float64(st.sum.Load())
	}
	for b := 1; b < len(s.Counts); b++ {
		s.Counts[b] += s.Counts[b-1]
	}
	s.Count = s.Counts[len(s.Counts)-1]
	return s
}

// Quantile estimates the q-quantile of the observed values by linear
// interpolation inside the owning bucket (same scheme as the latency
// Snapshot).
func (s ValueSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	prev := uint64(0)
	for i, c := range s.Counts {
		if c >= rank {
			if i == numBounds {
				return float64(uint64(1) << uint(numBounds-1))
			}
			var lo float64
			hi := float64(uint64(1) << uint(i))
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			frac := float64(rank-prev) / float64(c-prev)
			return lo + frac*(hi-lo)
		}
		prev = c
	}
	return float64(uint64(1) << uint(numBounds-1))
}

// Vec is a set of histograms keyed by one label value (endpoint, op,
// member address). Labels are created lazily on first observation;
// lookups take a read lock only.
type Vec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewVec returns an empty histogram vector.
func NewVec() *Vec { return &Vec{m: map[string]*Histogram{}} }

// Observe records d under label, creating the histogram on first use.
// The label space is closed (the boundedlabel analyzer enforces it),
// so the steady state is always the read-lock hit; creation lives in
// its own unannotated method so this path can promise zero
// allocations.
//
//topk:nomalloc
func (v *Vec) Observe(label string, d time.Duration) {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h == nil {
		h = v.create(label)
	}
	h.Observe(d)
}

// create allocates the histogram for a new label — the cold path,
// taken once per label for the process lifetime.
func (v *Vec) create(label string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.m[label]
	if h == nil {
		h = &Histogram{}
		v.m[label] = h
	}
	return h
}

// Get returns the histogram for label, or nil if nothing was observed
// under it.
func (v *Vec) Get(label string) *Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m[label]
}

// Labels returns the observed label values, sorted — the deterministic
// iteration order of the Prometheus export.
func (v *Vec) Labels() []string {
	v.mu.RLock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Snapshots returns a merged snapshot per label.
func (v *Vec) Snapshots() map[string]Snapshot {
	v.mu.RLock()
	hs := make(map[string]*Histogram, len(v.m))
	for l, h := range v.m {
		hs[l] = h
	}
	v.mu.RUnlock()
	out := make(map[string]Snapshot, len(hs))
	for l, h := range hs {
		out[l] = h.Snapshot()
	}
	return out
}
