// Package workload generates the synthetic inputs used by the tests,
// examples and the experiment harness. The paper has no empirical
// section, so distributions are chosen to (a) exercise every structural
// regime (uniform, clustered, correlated) and (b) realize the motivating
// scenario of §1 — "find the 10 best-rated hotels whose prices are
// between 100 and 200 dollars per night" — with plausible shapes.
//
// All generators produce distinct x-coordinates and distinct scores (the
// paper's standing assumption: the input is a *set* of reals, each with
// a distinct score).
package workload

import (
	"math"
	"math/rand"

	"repro/internal/point"
)

// Gen is a deterministic point-stream generator.
type Gen struct {
	rng       *rand.Rand
	usedX     map[float64]bool
	usedScore map[float64]bool
}

// NewGen returns a generator with the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{
		rng:       rand.New(rand.NewSource(seed)),
		usedX:     map[float64]bool{},
		usedScore: map[float64]bool{},
	}
}

// fresh draws until both coordinates are unused.
func (g *Gen) fresh(draw func() (float64, float64)) point.P {
	for {
		x, s := draw()
		if g.usedX[x] || g.usedScore[s] || math.IsNaN(x) || math.IsNaN(s) {
			continue
		}
		g.usedX[x] = true
		g.usedScore[s] = true
		return point.P{X: x, Score: s}
	}
}

// Uniform returns n points with x and score independently uniform in
// [0, xMax) and [0, 1).
func (g *Gen) Uniform(n int, xMax float64) []point.P {
	pts := make([]point.P, n)
	for i := range pts {
		pts[i] = g.fresh(func() (float64, float64) {
			return g.rng.Float64() * xMax, g.rng.Float64()
		})
	}
	return pts
}

// Clustered returns n points grouped into the given number of Gaussian
// x-clusters (hot regions), scores uniform.
func (g *Gen) Clustered(n, clusters int, xMax float64) []point.P {
	if clusters < 1 {
		clusters = 1
	}
	centers := make([]float64, clusters)
	for i := range centers {
		centers[i] = g.rng.Float64() * xMax
	}
	sigma := xMax / float64(clusters) / 8
	pts := make([]point.P, n)
	for i := range pts {
		c := centers[g.rng.Intn(clusters)]
		pts[i] = g.fresh(func() (float64, float64) {
			return c + g.rng.NormFloat64()*sigma, g.rng.Float64()
		})
	}
	return pts
}

// Correlated returns n points whose score tracks x with the given
// correlation rho ∈ [-1, 1] (positive: expensive hotels are well
// rated); rho = 0 degenerates to Uniform.
func (g *Gen) Correlated(n int, xMax, rho float64) []point.P {
	pts := make([]point.P, n)
	for i := range pts {
		pts[i] = g.fresh(func() (float64, float64) {
			x := g.rng.Float64() * xMax
			base := x / xMax
			noise := g.rng.Float64()
			s := rho*base + (1-math.Abs(rho))*noise
			return x, s
		})
	}
	return pts
}

// Adversarial returns n points arranged to stress pilot-set churn in the
// §2 structure: scores descend as x sweeps, so every insertion lands at
// the top of its path and pushes the previous occupant down.
func (g *Gen) Adversarial(n int, xMax float64) []point.P {
	pts := make([]point.P, n)
	for i := range pts {
		i := i
		pts[i] = g.fresh(func() (float64, float64) {
			x := g.rng.Float64() * xMax
			return x, float64(n-i) + g.rng.Float64()*0.5
		})
	}
	return pts
}

// Hotel models §1's motivating example: X is a nightly price (log-normal
// around $140, the shape of real price data) and Score a user rating in
// [0, 10) lightly correlated with price.
type Hotel struct {
	Price  float64
	Rating float64
}

// Hotels returns n synthetic hotels and the same data as points
// (X=price, Score=rating).
func (g *Gen) Hotels(n int) ([]Hotel, []point.P) {
	hs := make([]Hotel, n)
	pts := make([]point.P, n)
	for i := range hs {
		p := g.fresh(func() (float64, float64) {
			price := math.Exp(g.rng.NormFloat64()*0.5 + math.Log(140))
			quality := 0.3*math.Min(price/400, 1) + 0.7*g.rng.Float64()
			return price, quality * 10
		})
		hs[i] = Hotel{Price: p.X, Rating: p.Score}
		pts[i] = p
	}
	return hs, pts
}

// Event models a scored log record: X is a timestamp (monotone with
// jitter), Score a severity/anomaly value with occasional bursts.
type Event struct {
	Timestamp float64
	Severity  float64
}

// Events returns n synthetic log events ordered by time.
func (g *Gen) Events(n int) ([]Event, []point.P) {
	es := make([]Event, n)
	pts := make([]point.P, n)
	t := 0.0
	for i := range es {
		t += g.rng.ExpFloat64()
		burst := 1.0
		if g.rng.Intn(50) == 0 {
			burst = 10
		}
		p := g.fresh(func() (float64, float64) {
			return t + g.rng.Float64()*1e-6, g.rng.ExpFloat64() * burst
		})
		es[i] = Event{Timestamp: p.X, Severity: p.Score}
		pts[i] = p
	}
	return es, pts
}

// QuerySpec is a random query drawn against a workload's x-domain.
type QuerySpec struct {
	X1, X2 float64
	K      int
}

// Queries returns cnt random queries with selectivity in
// [minSel, maxSel] (fraction of the x-domain) and k in [1, maxK].
func (g *Gen) Queries(cnt int, xMax, minSel, maxSel float64, maxK int) []QuerySpec {
	out := make([]QuerySpec, cnt)
	for i := range out {
		sel := minSel + g.rng.Float64()*(maxSel-minSel)
		w := sel * xMax
		x1 := g.rng.Float64() * (xMax - w)
		out[i] = QuerySpec{X1: x1, X2: x1 + w, K: g.rng.Intn(maxK) + 1}
	}
	return out
}

// UpdateMix returns an interleaved stream of inserts and deletes over a
// base set: ops[i].Insert is the point to add when Del is nil. The
// stream keeps roughly steady live size.
type Update struct {
	Insert *point.P
	Delete *point.P
}

// Mix produces ops updates, deleting uniformly from the live set with
// probability delFrac once it exceeds warm points.
func (g *Gen) Mix(ops int, warm int, delFrac float64, xMax float64) []Update {
	var live []point.P
	out := make([]Update, 0, ops)
	for len(out) < ops {
		if len(live) > warm && g.rng.Float64() < delFrac {
			j := g.rng.Intn(len(live))
			p := live[j]
			live = append(live[:j], live[j+1:]...)
			out = append(out, Update{Delete: &p})
			continue
		}
		p := g.fresh(func() (float64, float64) {
			return g.rng.Float64() * xMax, g.rng.Float64()
		})
		live = append(live, p)
		out = append(out, Update{Insert: &p})
	}
	return out
}
