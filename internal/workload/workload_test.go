package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformDistinct(t *testing.T) {
	g := NewGen(1)
	pts := g.Uniform(5000, 1e6)
	xs := map[float64]bool{}
	ss := map[float64]bool{}
	for _, p := range pts {
		if xs[p.X] || ss[p.Score] {
			t.Fatal("duplicate coordinate")
		}
		xs[p.X] = true
		ss[p.Score] = true
		if p.X < 0 || p.X >= 1e6 || p.Score < 0 || p.Score >= 1 {
			t.Fatalf("out of range: %v", p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGen(42).Uniform(100, 1e3)
	b := NewGen(42).Uniform(100, 1e3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewGen(43).Uniform(100, 1e3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestClusteredIsClustered(t *testing.T) {
	g := NewGen(2)
	pts := g.Clustered(4000, 4, 1e6)
	// Measure dispersion: clustered data has most mass in a few narrow
	// bands; count occupied 1%-width buckets.
	occupied := map[int]bool{}
	for _, p := range pts {
		occupied[int(p.X/1e4)] = true
	}
	if len(occupied) > 60 {
		t.Fatalf("%d of 100 buckets occupied — not clustered", len(occupied))
	}
}

func TestCorrelatedSign(t *testing.T) {
	g := NewGen(3)
	corr := func(rho float64) float64 {
		pts := g.Correlated(4000, 1e6, rho)
		var sx, sy, sxy, sxx, syy float64
		n := float64(len(pts))
		for _, p := range pts {
			sx += p.X
			sy += p.Score
			sxy += p.X * p.Score
			sxx += p.X * p.X
			syy += p.Score * p.Score
		}
		return (n*sxy - sx*sy) / math.Sqrt((n*sxx-sx*sx)*(n*syy-sy*sy))
	}
	if c := corr(0.9); c < 0.5 {
		t.Fatalf("rho=0.9 gave sample correlation %.2f", c)
	}
	if c := corr(-0.9); c > -0.5 {
		t.Fatalf("rho=-0.9 gave sample correlation %.2f", c)
	}
}

func TestHotelsShape(t *testing.T) {
	g := NewGen(4)
	hs, pts := g.Hotels(2000)
	if len(hs) != len(pts) {
		t.Fatal("length mismatch")
	}
	for i, h := range hs {
		if h.Price != pts[i].X || h.Rating != pts[i].Score {
			t.Fatal("hotel/point mismatch")
		}
		if h.Price <= 0 || h.Rating < 0 || h.Rating >= 10 {
			t.Fatalf("implausible hotel %+v", h)
		}
	}
}

func TestEventsMonotoneTime(t *testing.T) {
	g := NewGen(5)
	es, _ := g.Events(3000)
	for i := 1; i < len(es); i++ {
		if es[i].Timestamp <= es[i-1].Timestamp {
			t.Fatal("timestamps not increasing")
		}
	}
}

func TestQueriesWithinDomain(t *testing.T) {
	g := NewGen(6)
	for _, q := range g.Queries(500, 1e4, 0.01, 0.5, 32) {
		if q.X1 < 0 || q.X2 > 1e4 || q.X1 > q.X2 {
			t.Fatalf("bad query %+v", q)
		}
		if q.K < 1 || q.K > 32 {
			t.Fatalf("bad k %d", q.K)
		}
		sel := (q.X2 - q.X1) / 1e4
		if sel < 0.0099 || sel > 0.51 {
			t.Fatalf("selectivity %v outside [0.01,0.5]", sel)
		}
	}
}

func TestMixKeepsLiveSizeSteady(t *testing.T) {
	g := NewGen(7)
	ups := g.Mix(5000, 500, 0.5, 1e6)
	live := 0
	peak := 0
	for _, u := range ups {
		if u.Insert != nil {
			live++
		} else {
			live--
		}
		if live > peak {
			peak = live
		}
		if live < 0 {
			t.Fatal("deleted more than inserted")
		}
	}
	if peak > 1500 {
		t.Fatalf("live size drifted to %d with warm=500", peak)
	}
}

func TestMixDeletesOnlyLivePoints(t *testing.T) {
	g := NewGen(8)
	live := map[float64]bool{}
	for _, u := range g.Mix(3000, 200, 0.5, 1e6) {
		if u.Insert != nil {
			live[u.Insert.X] = true
		} else {
			if !live[u.Delete.X] {
				t.Fatal("delete of never-inserted point")
			}
			delete(live, u.Delete.X)
		}
	}
}

func TestAdversarialDescendingScores(t *testing.T) {
	g := NewGen(9)
	pts := g.Adversarial(1000, 1e5)
	// Scores trend downward with the stream index.
	worse := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].Score < pts[i-1].Score {
			worse++
		}
	}
	if worse < 900 {
		t.Fatalf("only %d/999 descending steps", worse)
	}
}

// Property: every generator yields distinct coordinates, whatever the
// seed and size.
func TestQuickAllGeneratorsDistinct(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		g := NewGen(seed)
		var all []struct{ x, s float64 }
		add := func(xs []float64, ss []float64) {
			for i := range xs {
				all = append(all, struct{ x, s float64 }{xs[i], ss[i]})
			}
		}
		for _, pts := range [][]struct{ X, Score float64 }{} {
			_ = pts
		}
		for _, p := range g.Uniform(n, 1e6) {
			add([]float64{p.X}, []float64{p.Score})
		}
		for _, p := range g.Clustered(n, 3, 1e6) {
			add([]float64{p.X}, []float64{p.Score})
		}
		xs := map[float64]bool{}
		ss := map[float64]bool{}
		for _, e := range all {
			if xs[e.x] || ss[e.s] {
				return false
			}
			xs[e.x] = true
			ss[e.s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
