package driver

import (
	"testing"

	topk "repro"
	"repro/internal/workload"
)

func backends(t *testing.T) map[string]topk.Store {
	t.Helper()
	cfg := topk.Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
	idx, err := topk.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := topk.NewSharded(topk.ShardedConfig{Config: cfg, Shards: 4, MinSplit: 256})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]topk.Store{"index": idx, "sharded": sh}
}

// TestApplyUpdatesAndRunBatched drives the same Mix stream through
// both backends in chunks and then measures a batched query sweep —
// the driver layer must work identically against any Store.
func TestApplyUpdatesAndRunBatched(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			gen := workload.NewGen(71)
			ups := gen.Mix(2000, 1200, 0.3, 1e6)
			for i, err := range ApplyUpdates(st, ups, 128) {
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			wantLen := 0
			for _, u := range ups {
				if u.Delete != nil {
					wantLen--
				} else {
					wantLen++
				}
			}
			if st.Len() != wantLen {
				t.Fatalf("Len = %d, want %d", st.Len(), wantLen)
			}

			qs := gen.Queries(64, 1e6, 0.01, 0.5, 40)
			g := 1 // a bare Index is not concurrency-safe
			if name == "sharded" {
				g = 4
			}
			res := RunBatched(st, g, 256, 16, qs)
			if res.Ops != 256 || res.QPS() <= 0 {
				t.Fatalf("implausible throughput: %+v", res)
			}
		})
	}
}
