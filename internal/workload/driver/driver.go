// Package driver is the topk-facing side of the workload harness:
// generators live in the parent package (which stays free of any topk
// dependency so internal tests across the repository can use it), and
// everything here is written purely against the topk.Store interface —
// the same driver code measures the sequential Index, the concurrent
// Sharded fleet, or any future backend behind Store.
package driver

import (
	"sync"
	"sync/atomic"
	"time"

	topk "repro"
	"repro/internal/workload"
)

// ToQueries converts generator QuerySpecs to topk.Query values.
func ToQueries(qs []workload.QuerySpec) []topk.Query {
	out := make([]topk.Query, len(qs))
	for i, q := range qs {
		out[i] = topk.Query{X1: q.X1, X2: q.X2, K: q.K}
	}
	return out
}

// ToBatchOps converts a Mix update stream to Store batch operations.
func ToBatchOps(ups []workload.Update) []topk.BatchOp {
	out := make([]topk.BatchOp, len(ups))
	for i, u := range ups {
		if u.Delete != nil {
			out[i] = topk.BatchOp{Delete: true, X: u.Delete.X, Score: u.Delete.Score}
		} else {
			out[i] = topk.BatchOp{X: u.Insert.X, Score: u.Insert.Score}
		}
	}
	return out
}

// ApplyUpdates drives an update stream through st.ApplyBatch in
// chunks of batchSize (≤ 0 means one batch), returning the per-op
// errors aligned with ups. Chunks are applied in order, so a Mix
// stream that deletes points it inserted earlier stays valid.
func ApplyUpdates(st topk.Store, ups []workload.Update, batchSize int) []error {
	ops := ToBatchOps(ups)
	if batchSize <= 0 || batchSize > len(ops) {
		batchSize = len(ops)
	}
	res := make([]error, 0, len(ops))
	for start := 0; start < len(ops); start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		res = append(res, st.ApplyBatch(ops[start:end])...)
	}
	return res
}

// RunTopK measures per-call read throughput: totalOps TopK calls drawn
// round-robin from qs, issued from the given number of goroutines
// (goroutines > 1 requires a concurrency-safe Store — Sharded or
// Cluster). It is the per-call twin of RunBatched, so the two compare
// directly; being Store-only, the same driver measures a local fleet
// or a network gateway.
func RunTopK(st topk.Store, goroutines, totalOps int, qs []workload.QuerySpec) workload.Throughput {
	return workload.RunConcurrent(goroutines, totalOps, qs, func(q workload.QuerySpec) {
		st.TopK(q.X1, q.X2, q.K)
	})
}

// RunBatched measures batched read throughput: totalOps queries are
// drawn round-robin from qs, issued as QueryBatch calls of batchSize
// from the given number of goroutines (goroutines > 1 requires a
// concurrency-safe Store such as Sharded). The returned Throughput
// counts individual queries (not batches), so it compares directly
// with workload.RunConcurrent's one-query-per-op numbers — the delta
// is what the single-lock-acquisition batch path buys.
func RunBatched(st topk.Store, goroutines, totalOps, batchSize int, qs []workload.QuerySpec) workload.Throughput {
	if goroutines < 1 {
		goroutines = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if totalOps < 1 || len(qs) == 0 {
		return workload.Throughput{Goroutines: goroutines}
	}
	tqs := ToQueries(qs)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]topk.Query, 0, batchSize)
			for {
				lo := next.Add(int64(batchSize)) - int64(batchSize)
				if lo >= int64(totalOps) {
					return
				}
				hi := lo + int64(batchSize)
				if hi > int64(totalOps) {
					hi = int64(totalOps)
				}
				batch = batch[:0]
				for i := lo; i < hi; i++ {
					batch = append(batch, tqs[i%int64(len(tqs))])
				}
				st.QueryBatch(batch)
			}
		}()
	}
	wg.Wait()
	return workload.Throughput{Goroutines: goroutines, Ops: totalOps, Elapsed: time.Since(start)}
}
