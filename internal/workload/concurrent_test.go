package workload

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunConcurrentCompletesAllOps(t *testing.T) {
	gen := NewGen(1)
	qs := gen.Queries(16, 1e6, 0.01, 0.5, 50)
	for _, g := range []int{1, 3, 8} {
		var calls atomic.Int64
		seen := make(map[int]int)
		var mu sync.Mutex
		res := RunConcurrent(g, 500, qs, func(q QuerySpec) {
			calls.Add(1)
			mu.Lock()
			seen[q.K]++
			mu.Unlock()
		})
		if calls.Load() != 500 {
			t.Fatalf("g=%d: %d calls, want 500", g, calls.Load())
		}
		if res.Goroutines != g || res.Ops != 500 {
			t.Fatalf("g=%d: result %+v", g, res)
		}
		if res.Elapsed <= 0 || res.QPS() <= 0 {
			t.Fatalf("g=%d: non-positive timing %+v", g, res)
		}
		if len(seen) == 0 {
			t.Fatal("no queries dispatched")
		}
	}
}

func TestRunConcurrentDegenerate(t *testing.T) {
	qs := NewGen(2).Queries(4, 1e6, 0.1, 0.2, 10)
	if res := RunConcurrent(0, 0, qs, func(QuerySpec) {}); res.Ops != 0 || res.Goroutines != 1 {
		t.Fatalf("degenerate: %+v", res)
	}
	res := RunConcurrent(4, 100, nil, func(QuerySpec) { t.Fatal("called with no queries") })
	if res.Ops != 0 {
		t.Fatalf("no queries: %+v", res)
	}
	if res.QPS() != 0 {
		t.Fatal("QPS of zero-op run")
	}
}

func TestSweepConcurrencyLevels(t *testing.T) {
	qs := NewGen(3).Queries(8, 1e6, 0.01, 0.3, 20)
	var total atomic.Int64
	rs := SweepConcurrency([]int{1, 2, 4}, 200, qs, func(QuerySpec) { total.Add(1) })
	if len(rs) != 3 {
		t.Fatalf("%d results", len(rs))
	}
	for i, g := range []int{1, 2, 4} {
		if rs[i].Goroutines != g || rs[i].Ops != 200 {
			t.Fatalf("level %d: %+v", i, rs[i])
		}
		if rs[i].String() == "" {
			t.Fatal("empty String")
		}
	}
	if total.Load() != 600 {
		t.Fatalf("total calls %d, want 600", total.Load())
	}
	if def := SweepConcurrency(nil, 10, qs, func(QuerySpec) {}); len(def) != len(DefaultLevels) {
		t.Fatalf("default sweep ran %d levels", len(def))
	}
}
