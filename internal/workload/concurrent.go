package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the concurrent side of the workload harness: a driver
// that measures the sustained query throughput of a serving target at
// increasing goroutine counts. The sequential EM structures cannot be
// driven concurrently; the shard layer exists precisely to change
// that, and this driver quantifies by how much.

// Throughput is the outcome of one concurrency level.
type Throughput struct {
	// Goroutines is the number of concurrent workers.
	Goroutines int
	// Ops is the total operations completed across workers.
	Ops int
	// Elapsed is the wall-clock time for the whole level.
	Elapsed time.Duration
}

// QPS returns operations per second of wall-clock time.
func (t Throughput) QPS() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Ops) / t.Elapsed.Seconds()
}

func (t Throughput) String() string {
	return fmt.Sprintf("g=%-3d ops=%-7d elapsed=%-12v qps=%.0f", t.Goroutines, t.Ops, t.Elapsed, t.QPS())
}

// DefaultLevels is the standard concurrency sweep: 1 to 64 goroutines
// in powers of two.
var DefaultLevels = []int{1, 2, 4, 8, 16, 32, 64}

// RunConcurrent executes totalOps calls of do from the given number of
// goroutines, handing out queries round-robin from qs through a shared
// atomic cursor, and reports the measured throughput. do must be safe
// for concurrent use (e.g. a topk.Sharded query; a bare topk.Index is
// not eligible).
func RunConcurrent(goroutines, totalOps int, qs []QuerySpec, do func(QuerySpec)) Throughput {
	if goroutines < 1 {
		goroutines = 1
	}
	if totalOps < 1 || len(qs) == 0 {
		return Throughput{Goroutines: goroutines}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(totalOps) {
					return
				}
				do(qs[i%int64(len(qs))])
			}
		}()
	}
	wg.Wait()
	return Throughput{Goroutines: goroutines, Ops: totalOps, Elapsed: time.Since(start)}
}

// SweepConcurrency runs RunConcurrent once per level and returns the
// per-level results, the table behind the serving-layer scaling
// numbers (queries/sec at 1–64 goroutines).
func SweepConcurrency(levels []int, opsPerLevel int, qs []QuerySpec, do func(QuerySpec)) []Throughput {
	if len(levels) == 0 {
		levels = DefaultLevels
	}
	out := make([]Throughput, 0, len(levels))
	for _, g := range levels {
		out = append(out, RunConcurrent(g, opsPerLevel, qs, do))
	}
	return out
}
