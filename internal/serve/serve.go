// Package serve is the HTTP/JSON face of the serving stack, factored
// out of cmd/topkd so every process shape can mount it: topkd serving
// a local Store, topkd in -gateway mode serving a topk.Cluster, the
// in-process member fleets topkbench -exp e18 and the cluster tests
// boot over httptest.
//
// Handlers are written purely against the topk.Store interface, so the
// backend is the caller's choice; backend-specific introspection
// (shard counts, lifecycle counters, topology epoch) is probed through
// optional interfaces. The API is versioned under /v1 with the
// unversioned paths of the first release kept as thin aliases; newer
// endpoints (/v1/epoch, /v1/range, /v1/stats/reset, /v1/cache/drop)
// exist under /v1 only.
//
// Errors are structured: {"error":{"code":"duplicate_position",
// "message":"..."}} with the code derived from the topk sentinel
// errors (duplicate_position and duplicate_score map to 409,
// invalid_point and malformed requests to 400, out-of-band member
// inserts to 400 out_of_range).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"

	topk "repro"
	"repro/internal/ingest"
	"repro/internal/obs"
)

// Options configures the handler tree beyond the Store itself.
type Options struct {
	// Lo and Hi, when not both zero, declare the score band this
	// process owns as a cluster member: [Lo, Hi), with ±Inf open ends.
	// The band is served under GET /v1/range for gateway discovery, and
	// inserts whose score falls outside it are rejected with a
	// structured 400 (code out_of_range) — a misrouted write must fail
	// loudly rather than silently violate the cluster's partitioning.
	// The zero value means "unbounded": no /v1/range band, no
	// enforcement (the band (-Inf, +Inf) behaves identically).
	Lo, Hi float64

	// Obs is the telemetry state the handler tree records into —
	// latency histograms, traces, request logs. Nil gets a default
	// Telemetry (discard logger, header-only tracing), so telemetry is
	// always on; cmd/topkd supplies one built from its flags.
	Obs *obs.Telemetry

	// AsyncAck switches /v1/insert and /v1/delete to asynchronous
	// acknowledgement: the write is enqueued into the store's batcher
	// and answered immediately with 202 Accepted plus an outcome ID the
	// client can poll at GET /v1/outcome/{id}. Requires the Store to
	// expose the submit surface (topk.Batched does); ignored otherwise,
	// so a misconfigured process degrades to correct sync serving
	// rather than failing writes.
	AsyncAck bool

	// OutcomeCap bounds the async outcome ring: the newest OutcomeCap
	// submissions stay queryable, older ones are evicted (a poll for an
	// evicted ID is a 404, like an evicted trace). 0 means 4096.
	OutcomeCap int
}

// banded reports whether a member band was configured.
func (o Options) banded() bool { return o.Lo != 0 || o.Hi != 0 }

// inBand reports whether score falls inside the member band.
func (o Options) inBand(score float64) bool {
	if !o.banded() {
		return true
	}
	return o.Lo <= score && score < o.Hi
}

// pointReq is the body of /v1/insert and /v1/delete.
type pointReq struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

// resultJSON mirrors topk.Result with lowercase keys.
type resultJSON struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

func toJSON(res []topk.Result) []resultJSON {
	out := make([]resultJSON, len(res))
	for i, p := range res {
		out[i] = resultJSON{X: p.X, Score: p.Score}
	}
	return out
}

// batchOp is one element of a /v1/batch request: op is "insert",
// "delete" (x, score) or "query" (x1, x2, k, optional offset).
type batchOp struct {
	Op     string  `json:"op"`
	X      float64 `json:"x"`
	Score  float64 `json:"score"`
	X1     float64 `json:"x1"`
	X2     float64 `json:"x2"`
	K      int     `json:"k"`
	Offset int     `json:"offset"`
}

// batchItem is one element of a /v1/batch response, aligned with the
// request ops. Updates carry ok (+error when rejected); queries carry
// their results.
type batchItem struct {
	OK      bool         `json:"ok"`
	Error   *errJSON     `json:"error,omitempty"`
	Results []resultJSON `json:"results,omitempty"`
}

// asyncWriter is the submit surface of a group-commit store
// (topk.Batched): enqueue a write, get a pollable outcome future.
type asyncWriter interface {
	SubmitInsert(pos, score float64) topk.Future
	SubmitDelete(pos, score float64) topk.Future
}

// New returns the handler tree over st. Handlers use only the
// topk.Store interface; Sharded- or Cluster-specific introspection is
// probed through optional interfaces (seen through batching wrappers
// via their Unwrap — see probe).
func New(st topk.Store, opt Options) http.Handler {
	t := opt.Obs
	if t == nil {
		t = obs.New(obs.Options{})
	}
	// Async-ack needs somewhere to enqueue: the store's own submit
	// surface, probed on the outer store (the batcher is the wrapper
	// itself, never an inner layer).
	aw, _ := st.(asyncWriter)
	asyncAck := opt.AsyncAck && aw != nil
	outcomes := newOutcomeRing(opt.OutcomeCap)
	mux := http.NewServeMux()

	// writeJSON logs encode failures (a client gone mid-response,
	// usually) through the structured logger instead of dropping them.
	writeJSON := func(w http.ResponseWriter, v any) { writeJSONLog(w, v, t.Log) }

	// handle registers h under /v1/pattern and, as a compatibility
	// alias, under the unversioned path of the first release.
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+pattern, h)
		mux.HandleFunc(method+" "+pattern, h)
	}
	// handleV1 registers h under /v1 only — endpoints newer than the
	// unversioned legacy surface get no alias.
	handleV1 := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+pattern, h)
	}

	handle("POST", "/insert", func(w http.ResponseWriter, r *http.Request) {
		var req pointReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "bad json: %v", err)
			return
		}
		if !opt.inBand(req.Score) {
			httpError(w, http.StatusBadRequest, "out_of_range",
				"score %v outside this member's band [%v, %v)", req.Score, opt.Lo, opt.Hi)
			return
		}
		if asyncAck {
			// Async-ack mode: enqueue into the batcher and answer 202
			// with a pollable outcome ID. The band check above already
			// ran — a misrouted write still fails loudly and
			// synchronously; only in-band writes are deferred.
			f := func() topk.Future {
				defer t.TimeOpCtx(r.Context(), "insert")()
				return aw.SubmitInsert(req.X, req.Score)
			}()
			writeJSONStatus(w, http.StatusAccepted,
				map[string]any{"accepted": true, "outcome": outcomes.add(f)}, t.Log)
			return
		}
		// Insert is atomic check-and-insert under the shard lock, so
		// concurrent duplicates race to one 200 and one 409 — and a
		// duplicate score anywhere in the fleet is a 409 too.
		st := bindStore(st, r)
		err := func() error { defer t.TimeOpCtx(r.Context(), "insert")(); return st.Insert(req.X, req.Score) }()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"ok": true, "n": st.Len()})
	})

	handle("POST", "/delete", func(w http.ResponseWriter, r *http.Request) {
		var req pointReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "bad json: %v", err)
			return
		}
		if asyncAck {
			f := func() topk.Future {
				defer t.TimeOpCtx(r.Context(), "delete")()
				return aw.SubmitDelete(req.X, req.Score)
			}()
			writeJSONStatus(w, http.StatusAccepted,
				map[string]any{"accepted": true, "outcome": outcomes.add(f)}, t.Log)
			return
		}
		st := bindStore(st, r)
		found := func() bool { defer t.TimeOpCtx(r.Context(), "delete")(); return st.Delete(req.X, req.Score) }()
		writeJSON(w, map[string]any{"found": found, "n": st.Len()})
	})

	handle("POST", "/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []batchOp `json:"ops"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "bad json: %v", err)
			return
		}
		items, err := runBatch(r.Context(), bindStore(st, r), opt, t, req.Ops)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		writeJSON(w, map[string]any{"results": items, "n": st.Len()})
	})

	handle("GET", "/topk", func(w http.ResponseWriter, r *http.Request) {
		x1, err1 := queryFloat(r, "x1")
		x2, err2 := queryFloat(r, "x2")
		k, err3 := queryInt(r, "k")
		if err1 != nil || err2 != nil || err3 != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "need float x1, x2 and int k")
			return
		}
		// Pagination for large k: ?offset=N skips the N highest-scoring
		// qualifying points, so a client can walk a huge answer in
		// pages of k without the server ever allocating beyond the live
		// size (the clamp below caps offset+k at n first).
		off := 0
		if s := r.URL.Query().Get("offset"); s != "" {
			var err error
			if off, err = strconv.Atoi(s); err != nil || off < 0 {
				httpError(w, http.StatusBadRequest, "bad_request", "offset must be a non-negative int")
				return
			}
		}
		st := bindStore(st, r)
		res := func() []topk.Result {
			defer t.TimeOpCtx(r.Context(), "topk")()
			return st.TopK(x1, x2, ClampPage(st, off, k))
		}()
		if off < len(res) {
			res = res[off:]
		} else {
			res = nil
		}
		writeJSON(w, map[string]any{"results": toJSON(res), "offset": off})
	})

	handle("GET", "/count", func(w http.ResponseWriter, r *http.Request) {
		x1, err1 := queryFloat(r, "x1")
		x2, err2 := queryFloat(r, "x2")
		if err1 != nil || err2 != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "need float x1 and x2")
			return
		}
		st := bindStore(st, r)
		n := func() int { defer t.TimeOpCtx(r.Context(), "count")(); return st.Count(x1, x2) }()
		writeJSON(w, map[string]any{"count": n})
	})

	// The topology epoch as a cheap change signal: gateways and caches
	// poll it (or a Sharded owner watches WatchEpoch in-process) to
	// detect member topology changes without paying for /v1/stats. The
	// cluster health checker also uses it as its liveness probe.
	// Backends without an epoch (a single Index) report 0 — the
	// endpoint stays probeable on every backend.
	handleV1("GET", "/epoch", func(w http.ResponseWriter, r *http.Request) {
		var e int64
		if ep, ok := probe[interface{ Epoch() int64 }](st); ok {
			e = ep.Epoch()
		}
		writeJSON(w, map[string]any{"epoch": e})
	})

	// The member's score band, for gateway discovery. Open ends are
	// null (JSON cannot carry ±Inf); an unbanded process reports both
	// ends open.
	handleV1("GET", "/range", func(w http.ResponseWriter, r *http.Request) {
		var lo, hi *float64
		if opt.banded() {
			if !math.IsInf(opt.Lo, -1) {
				lo = &opt.Lo
			}
			if !math.IsInf(opt.Hi, 1) {
				hi = &opt.Hi
			}
		}
		writeJSON(w, map[string]any{"lo": lo, "hi": hi, "n": st.Len()})
	})

	// A finished trace's span tree, by ID. The ID comes out of the
	// X-Topkd-Trace response header of the traced request (issued by
	// the middleware, or adopted from the client's own header). On a
	// gateway the local tree — root plus one span per member RPC plus
	// the merge — is stitched: the handler fans back out to the members
	// that served RPCs for this trace, fetches each member's own span
	// tree for the same ID, and splices it under the RPC span that
	// issued it (matched by the X-Topkd-Parent-Span ID the client
	// stamped), so one lookup returns the complete cross-process tree.
	// Traces live in a bounded ring, so a 404 means "never sampled or
	// already evicted", not "never happened"; a member that has evicted
	// (or never sampled) its half degrades that subtree gracefully —
	// the RPC span stays, unspliced.
	handleV1("GET", "/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		tr := t.Tracer.Get(id)
		if tr == nil {
			httpError(w, http.StatusNotFound, "trace_not_found",
				"no finished trace %q (not sampled, or evicted from the ring)", id)
			return
		}
		tree := tr.Tree()
		if tf, ok := probe[traceFetcher](st); ok {
			stitchMembers(r.Context(), tf, id, &tree)
		}
		writeJSON(w, tree)
	})

	// The outcome of an async-acked write, by the ID the 202 response
	// carried. Outcomes live in a bounded ring like traces, so a 404
	// means "unknown or already evicted". A resolved outcome reports
	// done plus either ok or the same structured error the synchronous
	// endpoint would have returned — error fidelity survives the 202.
	handleV1("GET", "/outcome/{id}", func(w http.ResponseWriter, r *http.Request) {
		f, ok := outcomes.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "outcome_not_found",
				"no outcome %q (unknown, or evicted from the ring)", r.PathValue("id"))
			return
		}
		if !f.Ready() {
			writeJSON(w, map[string]any{"done": false})
			return
		}
		if err := f.Err(); err != nil {
			writeJSON(w, map[string]any{"done": true, "ok": false, "error": toErrJSON(err)})
			return
		}
		writeJSON(w, map[string]any{"done": true, "ok": true})
	})

	// Administrative twins of Store.ResetStats/DropCache, so remote
	// operators (and the Cluster client, which must implement the full
	// Store contract over the wire) can reach them.
	handleV1("POST", "/stats/reset", func(w http.ResponseWriter, r *http.Request) {
		st.ResetStats()
		writeJSON(w, map[string]any{"ok": true})
	})
	handleV1("POST", "/cache/drop", func(w http.ResponseWriter, r *http.Request) {
		st.DropCache()
		writeJSON(w, map[string]any{"ok": true})
	})

	// Prometheus text-format metrics, the machine-scrapable twin of the
	// JSON /v1/stats. On the sharded backend everything here is served
	// from the topology snapshot, atomic counters and brief per-shard
	// meter reads — a scrape never takes the topology lock, so it
	// cannot stall lifecycle or update writers (on -backend single the
	// store mutex still serializes the scrape with traffic, like every
	// other request there). On a gateway the same handler reports the
	// cluster-aggregated meters summed across members.
	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := st.Stats()
		var b strings.Builder
		metric := func(name, typ, help string, v int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
		}
		metric("topkd_points_live", "gauge", "Number of live points.", int64(st.Len()))
		metric("topkd_io_reads_total", "counter", "Block reads charged by the simulated EM disks (retired disks included).", s.Reads)
		metric("topkd_io_writes_total", "counter", "Block writes charged by the simulated EM disks (retired disks included).", s.Writes)
		metric("topkd_blocks_live", "gauge", "Disk blocks currently occupied fleet-wide.", s.BlocksLive)
		metric("topkd_blocks_peak", "gauge", "High-water mark of the fleet-wide live-block total.", s.BlocksPeak)
		if sh, ok := probe[interface{ NumShards() int }](st); ok {
			metric("topkd_shards", "gauge", "Current shard count.", int64(sh.NumShards()))
		}
		if lc, ok := probe[interface {
			Splits() int64
			Merges() int64
		}](st); ok {
			metric("topkd_shard_splits_total", "counter", "Automatic shard splits since startup.", lc.Splits())
			metric("topkd_shard_merges_total", "counter", "Automatic shard merges since startup.", lc.Merges())
		}
		if bs, ok := st.(interface{ BatcherStats() topk.BatcherStats }); ok {
			s := bs.BatcherStats()
			metric("topkd_ingest_flushes_total", "counter", "Write groups committed by the ingest batcher.", s.Flushes)
			metric("topkd_ingest_ops_total", "counter", "Single-op writes committed through the ingest batcher.", s.Ops)
			metric("topkd_ingest_group_max", "gauge", "Largest single group the ingest batcher has committed.", s.MaxGroup)
			metric("topkd_ingest_pending", "gauge", "Writes enqueued in the ingest batcher and not yet committed.", s.Pending)
		}
		if it, ok := st.(interface{ IngestTelemetry() *ingest.Telemetry }); ok {
			if tel := it.IngestTelemetry(); tel != nil {
				obs.WriteCountHistogram(&b, "topkd_ingest_group_size",
					"Ops per committed write group (value histogram, power-of-two buckets).", &tel.GroupSize)
				obs.WriteHistogram(&b, "topkd_ingest_flush_duration_seconds",
					"Backend flush latency per committed write group.", &tel.FlushLatency)
				obs.WriteHistogram(&b, "topkd_ingest_backpressure_wait_seconds",
					"Time producers spent driving commits because pending writes exceeded MaxPending.", &tel.BackpressureWait)
				fmt.Fprintf(&b, "# HELP topkd_ingest_flushes_by_reason_total Write groups committed, by the trigger that drove the flush.\n"+
					"# TYPE topkd_ingest_flushes_by_reason_total counter\n")
				for _, rc := range tel.ReasonCounts() {
					fmt.Fprintf(&b, "topkd_ingest_flushes_by_reason_total{reason=%q} %d\n", rc.Reason, rc.N)
				}
			}
		}
		if asyncAck {
			size, ev := outcomes.snapshot()
			metric("topkd_outcome_ring_occupancy", "gauge", "Async-ack outcomes currently retained and queryable.", int64(size))
			metric("topkd_outcome_ring_evictions_total", "counter", "Async-ack outcomes evicted from the bounded ring (the cause of outcome_not_found).", ev)
		}
		metric("topkd_trace_ring_evictions_total", "counter", "Finished traces evicted from the bounded ring (the cause of trace_not_found).", t.Tracer.RingEvictions())
		if ep, ok := probe[interface{ Epoch() int64 }](st); ok {
			// A gauge, not a counter: it tracks the snapshot version,
			// which also advances on stats resets, not only on
			// split/merge/rebalance lifecycle events.
			metric("topkd_topology_epoch", "gauge", "Topology snapshot version; increments on every snapshot publish (splits, merges, rebalances, stats resets).", ep.Epoch())
		}
		if cl, ok := probe[interface {
			Nodes() int
			Ejected() int
		}](st); ok {
			metric("topkd_cluster_nodes", "gauge", "Member nodes configured in the cluster.", int64(cl.Nodes()))
			metric("topkd_cluster_nodes_ejected", "gauge", "Member nodes currently ejected by the health checker.", int64(cl.Ejected()))
		}
		if rf, ok := probe[interface{ ReadFailovers() int64 }](st); ok {
			metric("topkd_cluster_read_failovers_total", "counter", "Reads retried on a replica after the preferred member failed.", rf.ReadFailovers())
		}
		if he, ok := probe[interface {
			Ejections() int64
			Recoveries() int64
		}](st); ok {
			metric("topkd_cluster_ejections_total", "counter", "Ejection episodes begun by the health checker (healthy to ejected transitions).", he.Ejections())
			metric("topkd_cluster_recoveries_total", "counter", "Ejection episodes ended by a member answering again.", he.Recoveries())
		}
		metric("topkd_http_in_flight_requests", "gauge", "Requests currently inside the serving middleware.", t.InFlight())
		obs.WriteHistogramVec(&b, "topkd_http_request_duration_seconds",
			"Request latency by endpoint.", "endpoint", t.HTTP)
		obs.WriteHistogramVec(&b, "topkd_store_op_duration_seconds",
			"Store operation latency by op.", "op", t.Ops)
		if rv, ok := probe[interface{ RPCDurations() *obs.Vec }](st); ok {
			obs.WriteHistogramVec(&b, "topkd_cluster_rpc_duration_seconds",
				"Member RPC latency by member address, as seen by this gateway's cluster client.", "member", rv.RPCDurations())
		}
		obs.WriteRuntimeMetrics(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})

	// Fleet-federated metrics, gateway only: scrape every member's
	// /v1/metrics, merge counters and histograms exactly (every
	// histogram in the fleet shares the identical 2^i bucket
	// boundaries, so summing per-bucket counts is lossless), and label
	// per-member gauges by node address. One scrape yields true fleet
	// p50/p95/p99 instead of N pages to combine client-side. The
	// gateway's own process page stays at /v1/metrics.
	handleV1("GET", "/metrics/fleet", func(w http.ResponseWriter, r *http.Request) {
		ms, ok := probe[metricsScraper](st)
		if !ok {
			httpError(w, http.StatusNotFound, "not_gateway",
				"metrics federation needs a cluster backend (this process serves no members)")
			return
		}
		pages, total := ms.ScrapeMetrics(r.Context())
		fams, err := obs.Federate(pages)
		if err != nil {
			httpError(w, http.StatusBadGateway, "bad_member_page", "federation failed: %v", err)
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP topkd_fleet_members Member nodes configured in the fleet.\n"+
			"# TYPE topkd_fleet_members gauge\ntopkd_fleet_members %d\n", total)
		fmt.Fprintf(&b, "# HELP topkd_fleet_members_scraped Member nodes that answered this federation scrape.\n"+
			"# TYPE topkd_fleet_members_scraped gauge\ntopkd_fleet_members_scraped %d\n", len(pages))
		obs.WriteFamilies(&b, fams)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})

	handle("GET", "/stats", func(w http.ResponseWriter, r *http.Request) {
		s := st.Stats()
		out := map[string]any{
			"n":           st.Len(),
			"reads":       s.Reads,
			"writes":      s.Writes,
			"blocks_live": s.BlocksLive,
			"blocks_peak": s.BlocksPeak,
		}
		if sh, ok := probe[interface{ NumShards() int }](st); ok {
			out["shards"] = sh.NumShards()
		}
		// Shard-lifecycle counters: how many automatic splits and
		// delete-triggered merges the router has performed.
		if lc, ok := probe[interface {
			Splits() int64
			Merges() int64
		}](st); ok {
			out["splits"] = lc.Splits()
			out["merges"] = lc.Merges()
		}
		// Cluster introspection: node counts on a gateway.
		if cl, ok := probe[interface {
			Nodes() int
			Ejected() int
		}](st); ok {
			out["nodes"] = cl.Nodes()
			out["ejected"] = cl.Ejected()
		}
		// Group-commit counters when the store batches writes, plus the
		// write-path telemetry: flush-reason counters and group-size /
		// flush-latency quantiles from the same histograms /v1/metrics
		// exports raw.
		if bs, ok := st.(interface{ BatcherStats() topk.BatcherStats }); ok {
			s := bs.BatcherStats()
			batcher := map[string]any{
				"flushes":   s.Flushes,
				"ops":       s.Ops,
				"max_group": s.MaxGroup,
				"pending":   s.Pending,
			}
			if it, ok := st.(interface{ IngestTelemetry() *ingest.Telemetry }); ok {
				if tel := it.IngestTelemetry(); tel != nil {
					reasons := map[string]int64{}
					for _, rc := range tel.ReasonCounts() {
						reasons[rc.Reason] = rc.N
					}
					batcher["flush_reasons"] = reasons
					if gs := tel.GroupSize.Snapshot(); gs.Count > 0 {
						batcher["group_size"] = map[string]any{
							"count": gs.Count,
							"p50":   gs.Quantile(0.50),
							"p95":   gs.Quantile(0.95),
							"p99":   gs.Quantile(0.99),
						}
					}
					if fl := tel.FlushLatency.Snapshot(); fl.Count > 0 {
						batcher["flush_latency"] = map[string]any{
							"count":  fl.Count,
							"p50_ms": float64(fl.Quantile(0.50)) / 1e6,
							"p95_ms": float64(fl.Quantile(0.95)) / 1e6,
							"p99_ms": float64(fl.Quantile(0.99)) / 1e6,
						}
					}
				}
			}
			if asyncAck {
				size, ev := outcomes.snapshot()
				batcher["outcome_ring"] = map[string]any{"occupancy": size, "evictions": ev}
			}
			out["batcher"] = batcher
		}
		// Latency quantiles per endpoint, estimated from the same
		// histograms /v1/metrics exports raw (so p99 here is within one
		// log-scaled bucket — a factor of 2 — of the true value).
		if snaps := t.HTTP.Snapshots(); len(snaps) > 0 {
			lat := make(map[string]any, len(snaps))
			for ep, s := range snaps {
				lat[ep] = map[string]any{
					"count":  s.Count,
					"p50_ms": float64(s.Quantile(0.50)) / 1e6,
					"p95_ms": float64(s.Quantile(0.95)) / 1e6,
					"p99_ms": float64(s.Quantile(0.99)) / 1e6,
				}
			}
			out["latency"] = lat
		}
		writeJSON(w, out)
	})

	// Middleware order: the recover wrapper sits inside the telemetry
	// middleware, so a panicking handler still records its latency, its
	// 500 status and its request log.
	return t.Middleware(WithRecover(mux))
}

// probe type-asserts st against an optional introspection interface,
// unwrapping batching (or future) decorators along the way: a
// topk.Batched over a Sharded must not hide the shard counters from
// /v1/stats just because a wrapper sits in front. The outer store wins
// when both layers implement T.
func probe[T any](st topk.Store) (T, bool) {
	for st != nil {
		if v, ok := st.(T); ok {
			return v, true
		}
		u, ok := st.(interface{ Unwrap() topk.Store })
		if !ok {
			break
		}
		st = u.Unwrap()
	}
	var zero T
	return zero, false
}

// metricsScraper is the optional gateway surface behind metrics
// federation: fetch every member's raw metrics page (topk.Cluster).
type metricsScraper interface {
	ScrapeMetrics(ctx context.Context) ([]obs.MetricsPage, int)
}

// traceFetcher is the optional gateway surface behind trace stitching:
// fetch one member's span tree for a trace ID (topk.Cluster).
type traceFetcher interface {
	FetchTrace(ctx context.Context, addr, id string) (obs.TraceJSON, error)
}

// stitchMembers completes a gateway trace: every distinct member
// address in the tree served at least one RPC for this trace, so fetch
// each member's own half in parallel and splice the subtrees under the
// RPC spans that issued them. Failures degrade gracefully — a member
// that is down, never sampled the trace, or already evicted it simply
// leaves its RPC span childless.
func stitchMembers(ctx context.Context, tf traceFetcher, id string, tree *obs.TraceJSON) {
	addrs := obs.SpanAddrs(tree.Root)
	if len(addrs) == 0 {
		return
	}
	subs := make([]*obs.TraceJSON, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			if mt, err := tf.FetchTrace(ctx, addr, id); err == nil {
				subs[i] = &mt
			}
		}(i, addr)
	}
	wg.Wait()
	members := make([]obs.TraceJSON, 0, len(subs))
	for _, s := range subs {
		if s != nil {
			members = append(members, *s)
		}
	}
	obs.Stitch(&tree.Root, members)
}

// outcomeRing is the bounded registry of async-acked write outcomes,
// the same eviction shape as the trace ring: the newest cap entries
// stay queryable, older ones age out.
type outcomeRing struct {
	mu        sync.Mutex
	cap       int
	ids       []string // insertion order, oldest first
	m         map[string]topk.Future
	evictions int64
}

func newOutcomeRing(cap int) *outcomeRing {
	if cap <= 0 {
		cap = 4096
	}
	return &outcomeRing{cap: cap, m: make(map[string]topk.Future, cap)}
}

// add registers f and returns its outcome ID, evicting the oldest
// entry when the ring is full.
func (g *outcomeRing) add(f topk.Future) string {
	id := fmt.Sprintf("%016x", rand.Uint64())
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.ids) >= g.cap {
		delete(g.m, g.ids[0])
		g.ids = g.ids[1:]
		g.evictions++
	}
	g.ids = append(g.ids, id)
	g.m[id] = f
	return id
}

func (g *outcomeRing) get(id string) (topk.Future, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.m[id]
	return f, ok
}

// snapshot returns the ring's occupancy and lifetime eviction count —
// the gauges that explain outcome_not_found responses.
func (g *outcomeRing) snapshot() (size int, evictions int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.ids), g.evictions
}

// bindStore gives st the request's context when the backend can carry
// one — the optional WithContext interface, implemented by the gateway
// Cluster so member RPCs inherit the client's deadline, cancellation
// and trace. Local backends, which have no blocking I/O to cancel,
// don't implement it and are returned unchanged.
func bindStore(st topk.Store, r *http.Request) topk.Store {
	if b, ok := st.(interface {
		WithContext(context.Context) topk.Store
	}); ok {
		return b.WithContext(r.Context())
	}
	return st
}

// runBatch executes a mixed /v1/batch payload: the update ops run
// first as one ApplyBatch, then the query ops as one QueryBatch, and
// the per-op outcomes are stitched back into request order. Queries
// therefore observe every update of their own batch (on Sharded, the
// documented caveat applies within the update half: an insert reusing
// a score deleted on another shard in the same batch may lose the
// race and be rejected).
//
// Query ops paginate exactly like GET /v1/topk: offset skips the
// offset highest-scoring qualifying points, the fetch is clamped to
// min(n, offset+k), and a negative offset is a structured 400 for the
// whole batch (like an unknown op — the request itself is malformed).
func runBatch(ctx context.Context, st topk.Store, opt Options, t *obs.Telemetry, ops []batchOp) ([]batchItem, error) {
	updates := make([]topk.BatchOp, 0, len(ops))
	updateAt := make([]int, 0, len(ops))
	queries := make([]topk.Query, 0)
	queryAt := make([]int, 0)
	queryOff := make([]int, 0)
	bandErr := make(map[int]*errJSON)
	for i, op := range ops {
		switch op.Op {
		case "insert":
			if !opt.inBand(op.Score) {
				bandErr[i] = &errJSON{Code: "out_of_range",
					Message: fmt.Sprintf("score %v outside this member's band [%v, %v)", op.Score, opt.Lo, opt.Hi)}
				continue
			}
			updates = append(updates, topk.BatchOp{X: op.X, Score: op.Score})
			updateAt = append(updateAt, i)
		case "delete":
			updates = append(updates, topk.BatchOp{Delete: true, X: op.X, Score: op.Score})
			updateAt = append(updateAt, i)
		case "query":
			if op.Offset < 0 {
				return nil, fmt.Errorf("op %d: offset must be a non-negative int", i)
			}
			queries = append(queries, topk.Query{X1: op.X1, X2: op.X2, K: op.K})
			queryAt = append(queryAt, i)
			queryOff = append(queryOff, op.Offset)
		default:
			return nil, fmt.Errorf("op %d: unknown op %q (want insert, delete or query)", i, op.Op)
		}
	}
	items := make([]batchItem, len(ops))
	for i, e := range bandErr {
		items[i] = batchItem{Error: e}
	}
	applied := func() []error {
		if len(updates) == 0 {
			return nil
		}
		defer t.TimeOpCtx(ctx, "apply_batch")()
		return st.ApplyBatch(updates)
	}()
	for j, err := range applied {
		if err != nil {
			items[updateAt[j]] = batchItem{Error: toErrJSON(err)}
		} else {
			items[updateAt[j]] = batchItem{OK: true}
		}
	}
	// Clamp only now: the batch's own inserts may have grown the live
	// set the queries are about to observe. The fetch covers the
	// skipped offset prefix plus the page, capped at the live size.
	for j := range queries {
		queries[j].K = ClampPage(st, queryOff[j], queries[j].K)
	}
	answered := func() [][]topk.Result {
		if len(queries) == 0 {
			return nil
		}
		defer t.TimeOpCtx(ctx, "query_batch")()
		return st.QueryBatch(queries)
	}()
	for j, res := range answered {
		if off := queryOff[j]; off < len(res) {
			res = res[off:]
		} else {
			res = nil
		}
		items[queryAt[j]] = batchItem{OK: true, Results: toJSON(res)}
	}
	return items, nil
}

// ClampK caps a client k at the live size: k > n returns everything
// anyway, and the selection paths preallocate k-sized buffers, so an
// absurd client k must not size an allocation.
func ClampK(st topk.Store, k int) int {
	if n := st.Len(); k > n {
		return n
	}
	return k
}

// ClampPage sizes the fetch for a paginated read: the offset points
// plus the page of k, capped at the live size. A page that is empty by
// construction — k ≤ 0, or the offset at/past the live size — fetches
// nothing at all, so a cheap request can never force a full
// materialization it then discards. The comparison form avoids
// overflow when a client sends offset and k both near MaxInt.
func ClampPage(st topk.Store, off, k int) int {
	n := st.Len()
	if k <= 0 || off >= n {
		return 0
	}
	if k > n {
		k = n
	}
	if off > n-k {
		return n
	}
	return off + k
}

// WithRecover turns handler panics into JSON 500s. Contract
// violations return errors in API v1, so a panic here is an internal
// invariant failure — the router releases its locks on panic
// (internal/shard unlocks with defer), so one poisoned request cannot
// wedge the fleet; without this middleware net/http would just sever
// the connection.
func WithRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("topkd: %s %s panicked: %v", r.Method, r.URL.Path, v)
				httpError(w, http.StatusInternalServerError, "internal", "internal error: %v", v)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func queryFloat(r *http.Request, key string) (float64, error) {
	return strconv.ParseFloat(r.URL.Query().Get(key), 64)
}

func queryInt(r *http.Request, key string) (int, error) {
	return strconv.Atoi(r.URL.Query().Get(key))
}

// encBuf is a pooled response-encode buffer with a json.Encoder bound
// to it once — the encoder itself allocates on construction, so the
// pool holds the pair, not just the bytes.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// encPoolMax caps what goes back in the pool: one giant response (a
// full topk dump) must not pin its buffer for the life of the process.
const encPoolMax = 64 << 10

// writeJSONLog renders v as the response body through a pooled
// buffer+encoder, logging failures (a vanished client, an unencodable
// value) through the structured logger rather than dropping them.
// Encoding into the buffer first also means an encode error cannot
// leave a half-written 200 on the wire.
func writeJSONLog(w http.ResponseWriter, v any, log *slog.Logger) {
	writeJSONStatus(w, 0, v, log)
}

// writeJSONStatus is writeJSONLog with an explicit status code (0
// means the default 200) — the async-ack path answers 202.
func writeJSONStatus(w http.ResponseWriter, status int, v any, log *slog.Logger) {
	e := encPool.Get().(*encBuf)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		encPool.Put(e)
		log.Error("response encode failed", slog.String("err", err.Error()))
		httpError(w, http.StatusInternalServerError, "internal", "response encode failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status != 0 {
		w.WriteHeader(status)
	}
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		log.Error("response write failed", slog.String("err", err.Error()))
	}
	if e.buf.Cap() <= encPoolMax {
		encPool.Put(e)
	}
}

// errJSON is the structured error body: {"error":{"code":..,"message":..}}.
type errJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errCode maps a topk sentinel error to an HTTP status and a stable
// machine-readable code.
func errCode(err error) (int, string) {
	switch {
	case errors.Is(err, topk.ErrDuplicatePosition):
		return http.StatusConflict, "duplicate_position"
	case errors.Is(err, topk.ErrDuplicateScore):
		return http.StatusConflict, "duplicate_score"
	case errors.Is(err, topk.ErrInvalidPoint):
		return http.StatusBadRequest, "invalid_point"
	case errors.Is(err, topk.ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, topk.ErrNodeDown):
		// A gateway whose member fleet cannot take the write reports
		// the outage instead of masking it as an internal error.
		return http.StatusServiceUnavailable, "node_down"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func toErrJSON(err error) *errJSON {
	_, code := errCode(err)
	return &errJSON{Code: code, Message: err.Error()}
}

// writeErr renders a store error with its mapped status and code.
func writeErr(w http.ResponseWriter, err error) {
	status, code := errCode(err)
	httpError(w, status, code, "%v", err)
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": errJSON{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// LockedIndex serializes a sequential *topk.Index behind the Store
// interface with one mutex. It exists so topkd -backend single can
// answer concurrent HTTP traffic correctly (if slowly) — the measured
// argument for the sharded backend — and so tests and benches can
// mount an Index anywhere a concurrent Store is required.
func LockedIndex(idx *topk.Index) topk.Store { return &lockedStore{idx: idx} }

type lockedStore struct {
	mu  sync.Mutex
	idx *topk.Index
}

func (l *lockedStore) Len() int { l.mu.Lock(); defer l.mu.Unlock(); return l.idx.Len() }
func (l *lockedStore) Insert(pos, score float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Insert(pos, score)
}
func (l *lockedStore) Delete(pos, score float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Delete(pos, score)
}
func (l *lockedStore) ApplyBatch(ops []topk.BatchOp) []error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.ApplyBatch(ops)
}
func (l *lockedStore) TopK(x1, x2 float64, k int) []topk.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.TopK(x1, x2, k)
}
func (l *lockedStore) QueryBatch(qs []topk.Query) [][]topk.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.QueryBatch(qs)
}
func (l *lockedStore) Count(x1, x2 float64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Count(x1, x2)
}
func (l *lockedStore) Stats() topk.Stats { l.mu.Lock(); defer l.mu.Unlock(); return l.idx.Stats() }
func (l *lockedStore) ResetStats()       { l.mu.Lock(); defer l.mu.Unlock(); l.idx.ResetStats() }
func (l *lockedStore) DropCache()        { l.mu.Lock(); defer l.mu.Unlock(); l.idx.DropCache() }
