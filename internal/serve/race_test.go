//go:build race

package serve

// raceEnabled gates allocation-count assertions: the race detector
// instruments allocations and makes sync.Pool deliberately drop items
// to expose misuse, so AllocsPerRun deltas are meaningless under it.
const raceEnabled = true
