package serve

// Endpoint tests for the surface added with the cluster tier:
// /v1/epoch, /v1/range, the admin twins of ResetStats/DropCache,
// offset pagination on /v1/batch query ops, and member band
// enforcement. The pre-existing handler behavior keeps its coverage in
// cmd/topkd's test suite, which mounts this same package.

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	topk "repro"
	"repro/internal/workload"
)

func testStore(t *testing.T, n int) topk.Store {
	t.Helper()
	pts := make([]topk.Result, 0, n)
	for _, p := range workload.NewGen(7).Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
	}
	st, err := topk.LoadSharded(topk.ShardedConfig{
		Config: topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards: 4,
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

func TestEpochEndpoint(t *testing.T) {
	st := testStore(t, 500)
	srv := httptest.NewServer(New(st, Options{}))
	defer srv.Close()
	var out struct {
		Epoch int64 `json:"epoch"`
	}
	if code := getJSON(t, srv.URL+"/v1/epoch", &out); code != 200 {
		t.Fatalf("epoch status %d", code)
	}
	sh := st.(*topk.Sharded)
	if out.Epoch != sh.Epoch() || out.Epoch < 1 {
		t.Fatalf("epoch %d, store says %d", out.Epoch, sh.Epoch())
	}
	sh.Rebalance(2)
	before := out.Epoch
	getJSON(t, srv.URL+"/v1/epoch", &out)
	if out.Epoch <= before {
		t.Fatalf("epoch did not advance after rebalance: %d -> %d", before, out.Epoch)
	}
	// Epoch-less backends still answer (0), keeping the endpoint a
	// universal health probe.
	idx, err := topk.New(topk.Config{})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(New(LockedIndex(idx), Options{}))
	defer single.Close()
	getJSON(t, single.URL+"/v1/epoch", &out)
	if out.Epoch != 0 {
		t.Fatalf("single-backend epoch %d, want 0", out.Epoch)
	}
	// No unversioned alias for the new endpoints.
	if code := getJSON(t, srv.URL+"/epoch", nil); code != 404 {
		t.Fatalf("/epoch alias status %d, want 404", code)
	}
}

func TestRangeEndpoint(t *testing.T) {
	st := testStore(t, 100)
	banded := httptest.NewServer(New(st, Options{Lo: math.Inf(-1), Hi: 5}))
	defer banded.Close()
	var out struct {
		Lo *float64 `json:"lo"`
		Hi *float64 `json:"hi"`
		N  int      `json:"n"`
	}
	getJSON(t, banded.URL+"/v1/range", &out)
	if out.Lo != nil || out.Hi == nil || *out.Hi != 5 || out.N != st.Len() {
		t.Fatalf("banded range = %+v", out)
	}
	unbanded := httptest.NewServer(New(st, Options{}))
	defer unbanded.Close()
	getJSON(t, unbanded.URL+"/v1/range", &out)
	if out.Lo != nil || out.Hi != nil {
		t.Fatalf("unbanded range = %+v, want open ends", out)
	}
}

func TestAdminEndpoints(t *testing.T) {
	st := testStore(t, 2000)
	srv := httptest.NewServer(New(st, Options{}))
	defer srv.Close()
	st.TopK(0, 1e6, 100) // generate some I/O
	if st.Stats().Reads == 0 {
		t.Skip("fixture generated no reads")
	}
	var ok struct {
		OK bool `json:"ok"`
	}
	if code := postJSON(t, srv.URL+"/v1/stats/reset", "", &ok); code != 200 || !ok.OK {
		t.Fatalf("stats/reset: %d %+v", code, ok)
	}
	if r := st.Stats().Reads; r != 0 {
		t.Fatalf("reads = %d after reset", r)
	}
	if code := postJSON(t, srv.URL+"/v1/cache/drop", "", &ok); code != 200 || !ok.OK {
		t.Fatalf("cache/drop: %d %+v", code, ok)
	}
	base := st.Stats().Reads
	st.TopK(0, 1e6, 100)
	if st.Stats().Reads == base {
		t.Fatal("query after cache drop charged no reads — pool not evicted")
	}
}

// TestBatchQueryOffset: query ops in /v1/batch paginate exactly like
// GET /v1/topk — same clamping, same structured-400 on a negative
// offset.
func TestBatchQueryOffset(t *testing.T) {
	st := testStore(t, 1000)
	srv := httptest.NewServer(New(st, Options{}))
	defer srv.Close()

	page := func(off, k int) []topk.Result {
		res := st.TopK(0, 1e6, ClampPage(st, off, k))
		if off < len(res) {
			return res[off:]
		}
		return nil
	}
	var out struct {
		Results []struct {
			OK      bool `json:"ok"`
			Results []struct {
				X     float64 `json:"x"`
				Score float64 `json:"score"`
			} `json:"results"`
		} `json:"results"`
	}
	body := `{"ops":[
		{"op":"query","x1":0,"x2":1e6,"k":5},
		{"op":"query","x1":0,"x2":1e6,"k":5,"offset":5},
		{"op":"query","x1":0,"x2":1e6,"k":5,"offset":100000}]}`
	if code := postJSON(t, srv.URL+"/v1/batch", body, &out); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	for i, off := range []int{0, 5} {
		want := page(off, 5)
		got := out.Results[i].Results
		if len(got) != len(want) {
			t.Fatalf("op %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].X != want[j].X || got[j].Score != want[j].Score {
				t.Fatalf("op %d result %d: (%v,%v) want (%v,%v)", i, j, got[j].X, got[j].Score, want[j].X, want[j].Score)
			}
		}
	}
	// Page 1 and page 2 must tile: no overlap, no gap.
	if out.Results[0].Results[4].Score <= out.Results[1].Results[0].Score {
		t.Fatal("page 2 does not continue strictly below page 1")
	}
	if len(out.Results[2].Results) != 0 {
		t.Fatalf("offset past live size returned %d results", len(out.Results[2].Results))
	}
	// Negative offset: structured 400 for the whole batch, like an
	// unknown op.
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	code := postJSON(t, srv.URL+"/v1/batch", `{"ops":[{"op":"query","x1":0,"x2":1,"k":5,"offset":-1}]}`, &eb)
	if code != 400 || eb.Error.Code != "bad_request" {
		t.Fatalf("negative offset: status %d code %q, want 400 bad_request", code, eb.Error.Code)
	}
}

// TestBandEnforcement: a banded member rejects out-of-band inserts
// with a structured 400 (out_of_range) on both the single and the
// batch path — a misrouted write must fail loudly.
func TestBandEnforcement(t *testing.T) {
	idx, err := topk.NewSharded(topk.ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(idx, Options{Lo: 10, Hi: 20}))
	defer srv.Close()
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if code := postJSON(t, srv.URL+"/v1/insert", `{"x":1,"score":25}`, &eb); code != 400 || eb.Error.Code != "out_of_range" {
		t.Fatalf("out-of-band insert: %d %q", code, eb.Error.Code)
	}
	// Upper bound is exclusive, lower inclusive.
	if code := postJSON(t, srv.URL+"/v1/insert", `{"x":1,"score":20}`, &eb); code != 400 {
		t.Fatalf("score == hi must be out of band, got %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/insert", `{"x":1,"score":10}`, nil); code != 200 {
		t.Fatalf("score == lo must be in band, got %d", code)
	}
	var out struct {
		Results []struct {
			OK    bool `json:"ok"`
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		} `json:"results"`
	}
	body := `{"ops":[{"op":"insert","x":2,"score":15},{"op":"insert","x":3,"score":99},{"op":"delete","x":4,"score":99}]}`
	if code := postJSON(t, srv.URL+"/v1/batch", body, &out); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if !out.Results[0].OK {
		t.Fatalf("in-band batch insert rejected: %+v", out.Results[0])
	}
	if out.Results[1].OK || out.Results[1].Error == nil || out.Results[1].Error.Code != "out_of_range" {
		t.Fatalf("out-of-band batch insert: %+v", out.Results[1])
	}
	// Deletes are not band-checked: a delete of a point that cannot be
	// here reports not_found naturally.
	if out.Results[2].OK || out.Results[2].Error == nil || out.Results[2].Error.Code != "not_found" {
		t.Fatalf("out-of-band batch delete: %+v", out.Results[2])
	}
	if idx.Len() != 2 {
		t.Fatalf("n = %d, want the 2 in-band inserts", idx.Len())
	}
}
