package serve

// Scrape-cleanliness tests for /v1/metrics: a real Prometheus parser
// pass over the whole page — every sample belongs to a family with
// # HELP and # TYPE, histogram buckets are cumulative and end at
// le="+Inf" with _count equal to the +Inf bucket — run against all
// three backends (single, sharded, gateway), plus the optional-
// interface probes that decide which families each backend exports.

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	topk "repro"
	"repro/internal/obs"
	"repro/internal/workload"
)

// promSample is one parsed sample line.
type promSample struct {
	labels map[string]string
	value  float64
}

// promFamily is one metric family: its metadata and samples, in page
// order.
type promFamily struct {
	help, typ string
	samples   []promSample
}

// parseProm parses a Prometheus text-format page, failing the test on
// any malformed line or any sample that belongs to no announced family.
func parseProm(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	family := func(sampleName string) *promFamily {
		if f, ok := fams[sampleName]; ok {
			return f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sampleName, suffix)
			if base != sampleName {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					return f
				}
			}
		}
		t.Fatalf("sample %q has no # HELP/# TYPE family", sampleName)
		return nil
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			if fams[parts[0]] == nil {
				fams[parts[0]] = &promFamily{}
			}
			fams[parts[0]].help = parts[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			if fams[parts[0]] == nil {
				fams[parts[0]] = &promFamily{}
			}
			fams[parts[0]].typ = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		name, labels, value := parsePromSample(t, line)
		family(name).samples = append(family(name).samples, promSample{labels: labels, value: value})
	}
	for name, f := range fams {
		if f.help == "" {
			t.Errorf("family %s has no # HELP", name)
		}
		if f.typ == "" {
			t.Errorf("family %s has no # TYPE", name)
		}
	}
	return fams
}

// parsePromSample splits `name{k="v",...} value` (labels optional).
func parsePromSample(t *testing.T, line string) (string, map[string]string, float64) {
	t.Helper()
	rest := line
	name := rest
	labels := map[string]string{}
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			t.Fatalf("malformed labels in %q", line)
		}
		for _, pair := range strings.Split(rest[i+1:end], ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 || !strings.HasPrefix(kv[1], `"`) || !strings.HasSuffix(kv[1], `"`) {
				t.Fatalf("malformed label %q in %q", pair, line)
			}
			labels[kv[0]] = strings.Trim(kv[1], `"`)
		}
		rest = rest[end+1:]
	} else {
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			name = rest[:i]
			rest = rest[i:]
		} else {
			t.Fatalf("sample line %q has no value", line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return name, labels, v
}

// checkHistograms verifies every histogram family on the page: per
// label set, bucket bounds ascending and counts cumulative, the last
// bucket le="+Inf", and _count equal to the +Inf bucket.
func checkHistograms(t *testing.T, fams map[string]*promFamily) {
	t.Helper()
	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		key := func(labels map[string]string) string {
			parts := make([]string, 0, len(labels))
			for k, v := range labels {
				if k != "le" {
					parts = append(parts, k+"="+v)
				}
			}
			sort.Strings(parts)
			return strings.Join(parts, ",")
		}
		type series struct {
			les    []float64
			counts []float64
			sum    bool
			count  float64
			hasCnt bool
		}
		bySeries := map[string]*series{}
		get := func(labels map[string]string) *series {
			k := key(labels)
			if bySeries[k] == nil {
				bySeries[k] = &series{}
			}
			return bySeries[k]
		}
		// Sample suffix is recoverable from the labels: _bucket carries
		// le; _sum/_count are disambiguated by re-walking the raw page,
		// so instead track them at parse order using the presence of le.
		// We reparse from f.samples knowing WriteHistogramVec's order:
		// buckets..., sum, count per label set.
		for _, s := range f.samples {
			sr := get(s.labels)
			if le, ok := s.labels["le"]; ok {
				v := math.Inf(1)
				if le != "+Inf" {
					var err error
					if v, err = strconv.ParseFloat(le, 64); err != nil {
						t.Fatalf("%s: bad le %q", name, le)
					}
				}
				sr.les = append(sr.les, v)
				sr.counts = append(sr.counts, s.value)
			} else if !sr.sum {
				sr.sum = true
			} else {
				sr.count, sr.hasCnt = s.value, true
			}
		}
		for k, sr := range bySeries {
			if len(sr.les) == 0 {
				t.Fatalf("%s{%s}: no buckets", name, k)
			}
			if !math.IsInf(sr.les[len(sr.les)-1], 1) {
				t.Errorf("%s{%s}: last bucket le=%v, want +Inf", name, k, sr.les[len(sr.les)-1])
			}
			for i := 1; i < len(sr.les); i++ {
				if sr.les[i] <= sr.les[i-1] {
					t.Errorf("%s{%s}: le not ascending at %d", name, k, i)
				}
				if sr.counts[i] < sr.counts[i-1] {
					t.Errorf("%s{%s}: buckets not cumulative at le=%v (%v < %v)",
						name, k, sr.les[i], sr.counts[i], sr.counts[i-1])
				}
			}
			if !sr.sum || !sr.hasCnt {
				t.Errorf("%s{%s}: missing _sum or _count", name, k)
			}
			if inf := sr.counts[len(sr.counts)-1]; sr.count != inf {
				t.Errorf("%s{%s}: _count=%v != +Inf bucket %v", name, k, sr.count, inf)
			}
		}
	}
}

// driveTraffic exercises enough of the surface to populate the request
// and op histograms: reads, writes, a batch and a scrape.
func driveTraffic(t *testing.T, base string) {
	t.Helper()
	getJSON(t, base+"/v1/topk?x1=0&x2=1000000&k=5", nil)
	getJSON(t, base+"/v1/count?x1=0&x2=1000000", nil)
	postJSON(t, base+"/v1/insert", `{"x":-12345.5,"score":-9999.25}`, nil)
	postJSON(t, base+"/v1/batch", `{"ops":[
		{"op":"query","x1":0,"x2":1000,"k":3},
		{"op":"delete","x":-12345.5,"score":-9999.25}]}`, nil)
	getJSON(t, base+"/v1/stats", nil)
}

// scrape fetches /v1/metrics and returns the parsed families after the
// well-formedness checks.
func scrape(t *testing.T, base string) map[string]*promFamily {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
	}
	fams := parseProm(t, string(body))
	checkHistograms(t, fams)
	return fams
}

// bootTestGateway builds a two-member fleet over httptest plus a
// gateway handler in front of a topk.Cluster, all wired with the given
// telemetries (nil entries get defaults).
func bootTestGateway(t *testing.T, gwObs *obs.Telemetry, memberObs []*obs.Telemetry) (*httptest.Server, func()) {
	t.Helper()
	n := 400
	pts := make([]topk.Result, 0, n)
	for _, p := range workload.NewGen(7).Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Score < pts[j].Score })
	cut := pts[n/2].Score
	cfg := topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
	var members []*httptest.Server
	var addrs []string
	bands := [][2]float64{{math.Inf(-1), cut}, {cut, math.Inf(1)}}
	for i, b := range bands {
		var own []topk.Result
		for _, p := range pts {
			if b[0] <= p.Score && p.Score < b[1] {
				own = append(own, p)
			}
		}
		st, err := topk.LoadSharded(topk.ShardedConfig{Config: cfg, Shards: 2}, own)
		if err != nil {
			t.Fatal(err)
		}
		var mo *obs.Telemetry
		if i < len(memberObs) {
			mo = memberObs[i]
		}
		members = append(members, httptest.NewServer(New(st, Options{Lo: b[0], Hi: b[1], Obs: mo})))
		addrs = append(addrs, members[i].URL)
	}
	cl, err := topk.NewCluster(topk.ClusterConfig{Members: addrs, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(New(cl, Options{Obs: gwObs}))
	return gw, func() {
		gw.Close()
		_ = cl.Close()
		for _, m := range members {
			m.Close()
		}
	}
}

// TestMetricsWellFormed runs the parser pass on all three backends.
func TestMetricsWellFormed(t *testing.T) {
	t.Run("single", func(t *testing.T) {
		idx, err := topk.New(topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(New(LockedIndex(idx), Options{}))
		defer srv.Close()
		driveTraffic(t, srv.URL)
		fams := scrape(t, srv.URL)
		for _, name := range []string{
			"topkd_points_live",
			"topkd_http_request_duration_seconds",
			"topkd_store_op_duration_seconds",
			"topkd_http_in_flight_requests",
			"topkd_go_goroutines",
		} {
			if fams[name] == nil {
				t.Errorf("single backend missing family %s", name)
			}
		}
		// A single Index has no shards, no topology, no cluster.
		for _, name := range []string{"topkd_shards", "topkd_topology_epoch", "topkd_cluster_nodes", "topkd_cluster_read_failovers_total", "topkd_cluster_rpc_duration_seconds"} {
			if fams[name] != nil {
				t.Errorf("single backend unexpectedly exports %s", name)
			}
		}
		// The traffic above must actually have landed in the histograms.
		if f := fams["topkd_http_request_duration_seconds"]; f != nil && len(f.samples) == 0 {
			t.Error("request histogram empty after traffic")
		}
	})

	t.Run("sharded", func(t *testing.T) {
		srv := httptest.NewServer(New(testStore(t, 400), Options{}))
		defer srv.Close()
		driveTraffic(t, srv.URL)
		fams := scrape(t, srv.URL)
		for _, name := range []string{"topkd_shards", "topkd_topology_epoch", "topkd_store_op_duration_seconds"} {
			if fams[name] == nil {
				t.Errorf("sharded backend missing family %s", name)
			}
		}
		if fams["topkd_cluster_read_failovers_total"] != nil {
			t.Error("sharded backend unexpectedly exports the failover counter")
		}
	})

	t.Run("gateway", func(t *testing.T) {
		gw, shutdown := bootTestGateway(t, nil, nil)
		defer shutdown()
		driveTraffic(t, gw.URL)
		fams := scrape(t, gw.URL)
		for _, name := range []string{
			"topkd_cluster_nodes",
			"topkd_cluster_nodes_ejected",
			"topkd_cluster_read_failovers_total",
			"topkd_cluster_rpc_duration_seconds",
		} {
			if fams[name] == nil {
				t.Errorf("gateway missing family %s", name)
			}
		}
		// Per-member RPC histograms: both members must appear after the
		// fan-out traffic above.
		rpc := fams["topkd_cluster_rpc_duration_seconds"]
		membersSeen := map[string]bool{}
		for _, s := range rpc.samples {
			if m := s.labels["member"]; m != "" {
				membersSeen[m] = true
			}
		}
		if len(membersSeen) != 2 {
			t.Errorf("rpc histogram covers %d members, want 2 (%v)", len(membersSeen), membersSeen)
		}
		if f := fams["topkd_cluster_read_failovers_total"]; len(f.samples) != 1 || f.samples[0].value != 0 {
			t.Errorf("failovers counter = %+v, want one sample of 0 on a healthy fleet", f.samples)
		}
	})
}

// fetchPage GETs one metrics URL and returns the raw page body.
func fetchPage(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("%s status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestFleetMetrics: the gateway's /v1/metrics/fleet scrapes both
// members and merges their pages — the same parser pass as any single
// page, the fleet gauges present, gauges node-labeled per member, and
// counters/histograms equal to the per-member sums, exactly.
func TestFleetMetrics(t *testing.T) {
	gw, shutdown := bootTestGateway(t, nil, nil)
	defer shutdown()
	driveTraffic(t, gw.URL)

	// Fleet page first: a later direct member scrape bumps the members'
	// own metrics-endpoint histograms, but not the series compared below.
	fleetBody := fetchPage(t, gw.URL+"/v1/metrics/fleet")
	fams := parseProm(t, fleetBody)
	checkHistograms(t, fams)

	if f := fams["topkd_fleet_members"]; f == nil || len(f.samples) != 1 || f.samples[0].value != 2 {
		t.Fatalf("topkd_fleet_members = %+v, want one sample of 2", f)
	}
	if f := fams["topkd_fleet_members_scraped"]; f == nil || len(f.samples) != 1 || f.samples[0].value != 2 {
		t.Fatalf("topkd_fleet_members_scraped = %+v, want one sample of 2", f)
	}

	// Gauges fan out per member with a node label carrying the member
	// address; collect the fleet's view of the member roster from them.
	live := fams["topkd_points_live"]
	if live == nil || len(live.samples) != 2 {
		t.Fatalf("topkd_points_live = %+v, want 2 node-labeled samples", live)
	}
	var memberURLs []string
	liveByNode := map[string]float64{}
	for _, s := range live.samples {
		node := s.labels["node"]
		if node == "" {
			t.Fatalf("fleet gauge sample missing node label: %+v", s)
		}
		memberURLs = append(memberURLs, node)
		liveByNode[node] = s.value
	}

	// Exactness: re-scrape each member directly and check the fleet
	// page against per-member truth — gauges per node, counters and
	// histogram buckets as sums. The endpoint="topk" series are stable
	// between the two scrapes (only metrics-endpoint traffic happened).
	sumLive, sumTopkCount := 0.0, 0.0
	fleetTopkCount := 0.0
	if f := fams["topkd_http_request_duration_seconds"]; f != nil {
		for _, s := range f.samples {
			if s.labels["endpoint"] == "topk" && s.labels["le"] == "+Inf" {
				fleetTopkCount = s.value
			}
		}
	}
	for _, u := range memberURLs {
		mfams := parseProm(t, fetchPage(t, u+"/v1/metrics"))
		ml := mfams["topkd_points_live"]
		if ml == nil || len(ml.samples) != 1 {
			t.Fatalf("member %s points_live = %+v", u, ml)
		}
		if ml.samples[0].value != liveByNode[u] {
			t.Errorf("member %s live=%v but fleet says %v", u, ml.samples[0].value, liveByNode[u])
		}
		sumLive += ml.samples[0].value
		for _, s := range mfams["topkd_http_request_duration_seconds"].samples {
			if s.labels["endpoint"] == "topk" && s.labels["le"] == "+Inf" {
				sumTopkCount += s.value
			}
		}
	}
	if sumLive == 0 {
		t.Fatal("members report zero live points; fixture broken")
	}
	if fleetTopkCount == 0 || fleetTopkCount != sumTopkCount {
		t.Errorf("fleet topk request count %v, want the member sum %v (exact histogram merge)", fleetTopkCount, sumTopkCount)
	}

	// A member emitting garbage fails the federation loudly.
	// (Simulated at the obs layer in TestFederate; here we only check
	// the endpoint is absent on non-gateway backends.)
	srv := httptest.NewServer(New(testStore(t, 100), Options{}))
	defer srv.Close()
	var out struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/v1/metrics/fleet", &out); code != 404 {
		t.Fatalf("non-gateway fleet scrape status %d, want 404", code)
	}
	if out.Error.Code != "not_gateway" {
		t.Fatalf("code %q, want not_gateway", out.Error.Code)
	}
}

// TestStatsLatencyQuantiles: /v1/stats reports per-endpoint p50/p95/p99
// estimated from the same histograms /v1/metrics exports.
func TestStatsLatencyQuantiles(t *testing.T) {
	srv := httptest.NewServer(New(testStore(t, 300), Options{}))
	defer srv.Close()
	driveTraffic(t, srv.URL)
	var out struct {
		Latency map[string]struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50_ms"`
			P95   float64 `json:"p95_ms"`
			P99   float64 `json:"p99_ms"`
		} `json:"latency"`
	}
	if code := getJSON(t, srv.URL+"/v1/stats", &out); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	lat, ok := out.Latency["topk"]
	if !ok {
		t.Fatalf("no latency entry for topk: %v", out.Latency)
	}
	if lat.Count == 0 || lat.P50 <= 0 || lat.P99 < lat.P50 {
		t.Fatalf("implausible quantiles: %+v", lat)
	}
}
