package serve

// Tests for the write-path group-commit surface: async-ack 202s with
// queryable outcomes (error codes intact through the 202), probe
// seeing shard introspection through the Batched wrapper, and the
// pooled response encoder's allocation ceiling.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	topk "repro"
)

func batchedStore(t *testing.T, n int) *topk.Batched {
	t.Helper()
	bt, err := topk.NewBatched(testStore(t, n), topk.BatchedConfig{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bt.Close() })
	return bt
}

// outcomeBody is the /v1/outcome/{id} response shape.
type outcomeBody struct {
	Done  bool     `json:"done"`
	OK    bool     `json:"ok"`
	Error *errJSON `json:"error"`
}

// pollOutcome polls /v1/outcome/{id} until done (bounded).
func pollOutcome(t *testing.T, base, id string) outcomeBody {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var out outcomeBody
		if code := getJSON(t, base+"/v1/outcome/"+id, &out); code != http.StatusOK {
			t.Fatalf("outcome %s: status %d", id, code)
		}
		if out.Done {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("outcome %s never resolved", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncAckFlow drives the 202 path end to end: accepted insert,
// outcome resolves ok, the point is served by reads once committed.
func TestAsyncAckFlow(t *testing.T) {
	bt := batchedStore(t, 50)
	srv := httptest.NewServer(New(bt, Options{AsyncAck: true}))
	defer srv.Close()

	var ack struct {
		Accepted bool   `json:"accepted"`
		Outcome  string `json:"outcome"`
	}
	code := postJSON(t, srv.URL+"/v1/insert", `{"x": 2e6, "score": 2e6}`, &ack)
	if code != http.StatusAccepted {
		t.Fatalf("insert status = %d, want 202", code)
	}
	if !ack.Accepted || ack.Outcome == "" {
		t.Fatalf("ack = %+v, want accepted with an outcome id", ack)
	}
	if out := pollOutcome(t, srv.URL, ack.Outcome); !out.OK || out.Error != nil {
		t.Fatalf("outcome = %+v, want ok", out)
	}

	// The committed write is readable.
	var cnt struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, srv.URL+"/v1/count?x1=1.5e6&x2=3e6", &cnt); code != 200 || cnt.Count != 1 {
		t.Fatalf("count = %d (status %d), want 1", cnt.Count, code)
	}

	// Async delete resolves too; absent point carries not_found.
	code = postJSON(t, srv.URL+"/v1/delete", `{"x": 2e6, "score": 2e6}`, &ack)
	if code != http.StatusAccepted {
		t.Fatalf("delete status = %d, want 202", code)
	}
	if out := pollOutcome(t, srv.URL, ack.Outcome); !out.OK {
		t.Fatalf("delete outcome = %+v, want ok", out)
	}

	// Unknown outcome IDs are structured 404s.
	var e struct {
		Error errJSON `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/v1/outcome/deadbeefdeadbeef", &e); code != http.StatusNotFound {
		t.Fatalf("unknown outcome status = %d, want 404", code)
	}
	if e.Error.Code != "outcome_not_found" {
		t.Fatalf("unknown outcome code = %q", e.Error.Code)
	}
}

// TestIngestTelemetryExported: a batched backend exports the write-path
// families on /v1/metrics (through the standard parser pass) and the
// structured batcher block — flush reasons, group-size and
// flush-latency quantiles, outcome-ring occupancy — on /v1/stats.
func TestIngestTelemetryExported(t *testing.T) {
	bt := batchedStore(t, 50)
	srv := httptest.NewServer(New(bt, Options{AsyncAck: true}))
	defer srv.Close()

	var ack struct {
		Outcome string `json:"outcome"`
	}
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"x": %d, "score": %d}`, 3000000+i, 3000000+i)
		if code := postJSON(t, srv.URL+"/v1/insert", body, &ack); code != http.StatusAccepted {
			t.Fatalf("insert %d status = %d, want 202", i, code)
		}
	}
	pollOutcome(t, srv.URL, ack.Outcome)

	fams := scrape(t, srv.URL)
	for _, name := range []string{
		"topkd_ingest_flushes_total",
		"topkd_ingest_ops_total",
		"topkd_ingest_pending",
		"topkd_ingest_group_size",
		"topkd_ingest_flush_duration_seconds",
		"topkd_ingest_backpressure_wait_seconds",
		"topkd_ingest_flushes_by_reason_total",
		"topkd_outcome_ring_occupancy",
		"topkd_outcome_ring_evictions_total",
		"topkd_trace_ring_evictions_total",
	} {
		if fams[name] == nil {
			t.Errorf("batched backend missing family %s", name)
		}
	}
	reasons := map[string]float64{}
	total := 0.0
	for _, s := range fams["topkd_ingest_flushes_by_reason_total"].samples {
		reasons[s.labels["reason"]] = s.value
		total += s.value
	}
	for _, r := range []string{"slot_winner", "size", "deadline", "backpressure", "direct_fallback", "explicit"} {
		if _, ok := reasons[r]; !ok {
			t.Errorf("flush-reason counter missing label %q: %v", r, reasons)
		}
	}
	if total == 0 {
		t.Error("no flushes attributed to any reason after 5 committed writes")
	}
	if f := fams["topkd_outcome_ring_occupancy"]; len(f.samples) != 1 || f.samples[0].value < 5 {
		t.Errorf("outcome ring occupancy = %+v, want >= 5", f.samples)
	}

	var stats struct {
		Batcher struct {
			Flushes      int64            `json:"flushes"`
			FlushReasons map[string]int64 `json:"flush_reasons"`
			GroupSize    *struct {
				Count uint64 `json:"count"`
			} `json:"group_size"`
			FlushLatency *struct {
				Count uint64 `json:"count"`
			} `json:"flush_latency"`
			OutcomeRing *struct {
				Occupancy int   `json:"occupancy"`
				Evictions int64 `json:"evictions"`
			} `json:"outcome_ring"`
		} `json:"batcher"`
	}
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	b := stats.Batcher
	if len(b.FlushReasons) == 0 {
		t.Error("stats missing batcher.flush_reasons")
	}
	if b.GroupSize == nil || b.GroupSize.Count == 0 {
		t.Errorf("stats batcher.group_size = %+v, want committed groups", b.GroupSize)
	}
	if b.FlushLatency == nil || b.FlushLatency.Count == 0 {
		t.Errorf("stats batcher.flush_latency = %+v, want observations", b.FlushLatency)
	}
	if b.OutcomeRing == nil || b.OutcomeRing.Occupancy < 5 {
		t.Errorf("stats batcher.outcome_ring = %+v, want occupancy >= 5", b.OutcomeRing)
	}
}

// TestAsyncAckErrorFidelity is the satellite pin: every sentinel the
// sync endpoint maps to a code comes back with the same code in the
// async outcome body.
func TestAsyncAckErrorFidelity(t *testing.T) {
	bt := batchedStore(t, 0)
	srv := httptest.NewServer(New(bt, Options{AsyncAck: true}))
	defer srv.Close()

	submit := func(path, body string) string {
		t.Helper()
		var ack struct {
			Outcome string `json:"outcome"`
		}
		if code := postJSON(t, srv.URL+path, body, &ack); code != http.StatusAccepted {
			t.Fatalf("%s status = %d, want 202", path, code)
		}
		return ack.Outcome
	}

	// Seed a point (and wait for it) so duplicates have a target.
	if out := pollOutcome(t, srv.URL, submit("/v1/insert", `{"x": 10, "score": 100}`)); !out.OK {
		t.Fatalf("seed outcome = %+v", out)
	}

	// ErrInvalidPoint is absent by construction: JSON cannot carry NaN
	// or ±Inf, so no HTTP body reaches the store's finiteness check —
	// on the sync path either. Its async round-trip is pinned at the
	// API layer (TestBatchedErrorFidelity in the root package).
	cases := []struct {
		name, path, body, code string
	}{
		{"duplicate position", "/v1/insert", `{"x": 10, "score": 999}`, "duplicate_position"},
		{"duplicate score", "/v1/insert", `{"x": 999, "score": 100}`, "duplicate_score"},
		{"delete absent", "/v1/delete", `{"x": 777, "score": 777}`, "not_found"},
	}
	for _, tc := range cases {
		id := submit(tc.path, tc.body)
		out := pollOutcome(t, srv.URL, id)
		if out.OK || out.Error == nil {
			t.Errorf("%s: outcome = %+v, want structured error", tc.name, out)
			continue
		}
		if out.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, out.Error.Code, tc.code)
		}
	}

	// Band enforcement stays synchronous: a misrouted write is a 400
	// out_of_range even in async-ack mode, never a 202.
	banded := httptest.NewServer(New(bt, Options{Lo: 10, Hi: 20, AsyncAck: true}))
	defer banded.Close()
	var e struct {
		Error errJSON `json:"error"`
	}
	if code := postJSON(t, banded.URL+"/v1/insert", `{"x": 1, "score": 50}`, &e); code != http.StatusBadRequest {
		t.Fatalf("out-of-band async insert status = %d, want 400", code)
	}
	if e.Error.Code != "out_of_range" {
		t.Fatalf("out-of-band async insert code = %q", e.Error.Code)
	}
}

// TestAsyncAckIgnoredWithoutBatcher pins the degrade path: AsyncAck
// over a store with no submit surface serves synchronously.
func TestAsyncAckIgnoredWithoutBatcher(t *testing.T) {
	srv := httptest.NewServer(New(testStore(t, 10), Options{AsyncAck: true}))
	defer srv.Close()
	var out struct {
		OK bool `json:"ok"`
	}
	if code := postJSON(t, srv.URL+"/v1/insert", `{"x": 2e6, "score": 2e6}`, &out); code != 200 || !out.OK {
		t.Fatalf("status %d ok=%v, want sync 200", code, out.OK)
	}
}

// TestProbeSeesThroughBatched: the Batched wrapper must not hide shard
// introspection from /v1/stats, and must add its own batcher block.
func TestProbeSeesThroughBatched(t *testing.T) {
	bt := batchedStore(t, 100)
	if err := bt.Insert(2e6, 2e6); err != nil { // non-trivial batcher stats
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(bt, Options{}))
	defer srv.Close()
	var stats struct {
		Shards  int `json:"shards"`
		Batcher *struct {
			Ops int64 `json:"ops"`
		} `json:"batcher"`
	}
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Shards == 0 {
		t.Fatal("shard count hidden by the Batched wrapper (probe not unwrapping)")
	}
	if stats.Batcher == nil || stats.Batcher.Ops != 1 {
		t.Fatalf("batcher stats = %+v, want ops 1", stats.Batcher)
	}

	// /v1/epoch sees through too.
	var ep struct {
		Epoch int64 `json:"epoch"`
	}
	if code := getJSON(t, srv.URL+"/v1/epoch", &ep); code != 200 || ep.Epoch == 0 {
		t.Fatalf("epoch = %d (status %d), want the inner Sharded's epoch", ep.Epoch, code)
	}
}

// discardRW is a minimal ResponseWriter so the allocation measurement
// below counts the encode path, not httptest recorder bookkeeping.
type discardRW struct{ h http.Header }

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardRW) WriteHeader(int)             {}

// TestWriteJSONPooledAllocs pins the satellite: buffering the response
// (so an encode error can never leave a half-written 200) must come
// from the pool, not from a fresh buffer+encoder per response, and the
// whole pooled path must hold a small absolute allocation ceiling.
func TestWriteJSONPooledAllocs(t *testing.T) {
	if raceEnabled {
		// Race mode makes sync.Pool deliberately drop items to expose
		// misuse, so allocation deltas are meaningless under it.
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	v := map[string]any{"ok": true, "n": 12345}
	w := &discardRW{h: make(http.Header)}

	// Warm the pool so the measurement sees steady state.
	writeJSONLog(w, v, log)

	pooled := testing.AllocsPerRun(200, func() {
		writeJSONLog(w, v, log)
	})
	// The unpooled baseline is the same buffered implementation with a
	// fresh buffer+encoder per response — exactly what the pool
	// eliminates.
	unpooled := testing.AllocsPerRun(200, func() {
		e := &encBuf{}
		e.enc = json.NewEncoder(&e.buf)
		if err := e.enc.Encode(v); err != nil {
			t.Fatal(err)
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(e.buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	})
	if pooled >= unpooled {
		t.Errorf("pooled encode allocs/op = %.1f, unpooled = %.1f — pool buys nothing", pooled, unpooled)
	}
	// Absolute ceiling: the map iteration and its boxed values still
	// allocate inside encoding/json (measured 6/op on go1.24), but the
	// buffer and encoder must come from the pool. A regression
	// re-allocating either per call blows past the headroom.
	if pooled > 8 {
		t.Errorf("pooled encode allocs/op = %.1f, want ≤ 8", pooled)
	}
}
