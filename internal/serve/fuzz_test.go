package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	topk "repro"
)

// fuzzStore builds a small store for fuzz iterations: cheap enough to
// rebuild per input (the batch fuzzer mutates it), big enough that
// queries and pagination have something to chew on.
func fuzzStore(t testing.TB) topk.Store {
	t.Helper()
	idx, err := topk.New(topk.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := idx.Insert(float64(i), float64((i*37)%64)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return LockedIndex(idx)
}

// FuzzTopKQuery drives GET /v1/topk's query parsing (queryFloat,
// queryInt, the offset guard, ClampPage) with arbitrary parameter
// strings. The handler must never panic, must answer only 200 or 400,
// and every 200 must carry well-formed JSON whose results never
// exceed the store size.
func FuzzTopKQuery(f *testing.F) {
	f.Add("0", "100", "5", "")
	f.Add("-1e308", "1e308", "1000000", "3")
	f.Add("NaN", "Inf", "-1", "-1")
	f.Add("", "", "", "")
	f.Add("1e999", "-1e999", "9999999999999999999", "07")
	f.Add("0x1p4", "1_0", "+5", " 2")
	st := fuzzStore(f)
	h := New(st, Options{})
	f.Fuzz(func(t *testing.T, x1, x2, k, offset string) {
		q := url.Values{}
		q.Set("x1", x1)
		q.Set("x2", x2)
		q.Set("k", k)
		if offset != "" {
			q.Set("offset", offset)
		}
		req := httptest.NewRequest("GET", "/v1/topk?"+q.Encode(), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("x1=%q x2=%q k=%q offset=%q: status %d", x1, x2, k, offset, rec.Code)
		}
		if rec.Code == http.StatusOK {
			var out struct {
				Results []json.RawMessage `json:"results"`
				Offset  int               `json:"offset"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("x1=%q x2=%q k=%q offset=%q: bad JSON: %v", x1, x2, k, offset, err)
			}
			if len(out.Results) > st.Len() {
				t.Fatalf("x1=%q x2=%q k=%q offset=%q: %d results from a %d-point store", x1, x2, k, offset, len(out.Results), st.Len())
			}
		}
	})
}

// FuzzBatchJSON throws arbitrary bytes at the POST /v1/batch decoder.
// A fresh store per input keeps iterations independent (accepted
// payloads mutate it). The handler must never panic, must map every
// input to 200 or 400, and a 200 must echo one well-formed result item
// per op.
func FuzzBatchJSON(f *testing.F) {
	f.Add([]byte(`{"ops":[{"op":"insert","pos":100.5,"score":99}]}`))
	f.Add([]byte(`{"ops":[{"op":"query","x1":0,"x2":50,"k":3},{"op":"delete","pos":1,"score":1}]}`))
	f.Add([]byte(`{"ops":[{"op":"insert","pos":1e999}]}`))
	f.Add([]byte(`{"ops":[{"op":"bogus"}]}`))
	f.Add([]byte(`{"ops":[`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte(`{"ops":[{"op":"query","k":-1,"x1":"a"}]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		h := New(fuzzStore(t), Options{})
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("batch %q: status %d (%s)", body, rec.Code, rec.Body.Bytes())
		}
		if rec.Code == http.StatusOK {
			var out struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("batch %q: bad JSON response: %v", body, err)
			}
		}
	})
}
