package serve

// The differential tracing test the obs subsystem exists for: a
// gateway-issued trace ID must surface in the member processes'
// request logs AND in the gateway's own span tree, proving the ID
// propagated client → gateway → member RPC → member middleware and
// that the gateway recorded one span per member hop plus the merge.

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink (member handlers log from
// net/http's per-connection goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func debugTelemetry(sink *syncBuffer, sample float64) *obs.Telemetry {
	return obs.New(obs.Options{
		Logger:     slog.New(slog.NewTextHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug})),
		SampleRate: sample,
	})
}

func TestTraceDifferential(t *testing.T) {
	var gwLog, m0Log, m1Log syncBuffer
	gwObs := debugTelemetry(&gwLog, 1) // sample every request
	memberObs := []*obs.Telemetry{debugTelemetry(&m0Log, 0), debugTelemetry(&m1Log, 0)}
	gw, shutdown := bootTestGateway(t, gwObs, memberObs)
	defer shutdown()

	run := func(clientID string) {
		t.Helper()
		req, err := http.NewRequest("GET", gw.URL+"/v1/topk?x1=0&x2=1000000&k=5", nil)
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set(obs.TraceHeader, clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(obs.TraceHeader)
		if id == "" {
			t.Fatal("gateway issued no trace ID")
		}
		if clientID != "" && id != clientID {
			t.Fatalf("gateway echoed %q, want the client's %q", id, clientID)
		}

		// Differential leg 1: the ID reached both members' request logs
		// (every band answers a TopK fan-out).
		for i, lg := range []*syncBuffer{&m0Log, &m1Log} {
			if !strings.Contains(lg.String(), "trace="+id) {
				t.Errorf("member %d request log does not carry trace %s:\n%s", i, id, lg.String())
			}
		}
		// ...and the gateway's own log.
		if !strings.Contains(gwLog.String(), "trace="+id) {
			t.Errorf("gateway request log does not carry trace %s", id)
		}

		// Differential leg 2: the gateway's span tree for the same ID
		// has one member-RPC span per band plus the merge span — and,
		// since /v1/trace stitches, each RPC span must carry the
		// member's own handler subtree spliced beneath it. The member
		// middleware finishes its trace a beat after its response body
		// is on the wire, so poll briefly before judging.
		var tree obs.TraceJSON
		stitched := false
		for deadline := time.Now().Add(5 * time.Second); ; {
			if code := getJSON(t, gw.URL+"/v1/trace/"+id, &tree); code != 200 {
				t.Fatalf("trace lookup status %d", code)
			}
			stitched = true
			for _, sp := range tree.Root.Children {
				if sp.Addr != "" && len(sp.Children) == 0 {
					stitched = false
				}
			}
			if stitched || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if tree.ID != id {
			t.Fatalf("trace tree ID %q, want %q", tree.ID, id)
		}
		rpcAddrs := map[string]bool{}
		merges := 0
		for _, sp := range tree.Root.Children {
			switch {
			case sp.Name == "merge":
				merges++
			case sp.Addr != "":
				if !strings.Contains(sp.Name, "/v1/topk") {
					t.Errorf("member span %q, want a /v1/topk RPC", sp.Name)
				}
				rpcAddrs[sp.Addr] = true
				// The spliced member subtree: handler root named like the
				// RPC, with the Store-op span recorded inside the member
				// process beneath it.
				if len(sp.Children) != 1 {
					t.Errorf("RPC span to %s has %d spliced subtrees, want 1: %+v", sp.Addr, len(sp.Children), sp.Children)
					continue
				}
				member := sp.Children[0]
				if member.Name != "GET /v1/topk" {
					t.Errorf("member subtree under %s rooted at %q, want the member handler span", sp.Addr, member.Name)
				}
				ops := 0
				for _, c := range member.Children {
					if c.Name == "store.topk" {
						ops++
					}
				}
				if ops != 1 {
					t.Errorf("member subtree under %s has %d store.topk spans, want 1: %+v", sp.Addr, ops, member.Children)
				}
			}
		}
		if len(rpcAddrs) != 2 {
			t.Errorf("span tree covers %d members, want 2: %+v", len(rpcAddrs), tree.Root.Children)
		}
		if merges != 1 {
			t.Errorf("span tree has %d merge spans, want 1", merges)
		}
		if tree.Root.DurationUS <= 0 {
			t.Errorf("root span duration %dus, want > 0", tree.Root.DurationUS)
		}
	}

	// Gateway-issued ID (sampled at the gateway)...
	run("")
	// ...and a client-supplied ID, adopted end to end.
	run("client-supplied-trace-0042")
}

// TestTraceNotFound: unknown IDs are a structured 404, and members
// (sample rate 0, no incoming header) hold no trace ring entries.
func TestTraceNotFound(t *testing.T) {
	srv := httptest.NewServer(New(testStore(t, 100), Options{}))
	defer srv.Close()
	var out struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/v1/trace/nope", &out); code != 404 {
		t.Fatalf("status %d, want 404", code)
	}
	if out.Error.Code != "trace_not_found" {
		t.Fatalf("code %q, want trace_not_found", out.Error.Code)
	}
}

// failingValue makes json.Encoder.Encode fail without a broken socket.
type failingValue struct{}

func (failingValue) MarshalJSON() ([]byte, error) { return nil, fmt.Errorf("refusing to marshal") }

// TestWriteJSONLogsEncodeError: encode failures land in the structured
// logger instead of being dropped.
func TestWriteJSONLogsEncodeError(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	writeJSONLog(httptest.NewRecorder(), failingValue{}, logger)
	got := buf.String()
	if !strings.Contains(got, "response encode failed") || !strings.Contains(got, "refusing to marshal") {
		t.Fatalf("encode error not logged: %q", got)
	}
}
