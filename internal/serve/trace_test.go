package serve

// The differential tracing test the obs subsystem exists for: a
// gateway-issued trace ID must surface in the member processes'
// request logs AND in the gateway's own span tree, proving the ID
// propagated client → gateway → member RPC → member middleware and
// that the gateway recorded one span per member hop plus the merge.

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink (member handlers log from
// net/http's per-connection goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func debugTelemetry(sink *syncBuffer, sample float64) *obs.Telemetry {
	return obs.New(obs.Options{
		Logger:     slog.New(slog.NewTextHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug})),
		SampleRate: sample,
	})
}

func TestTraceDifferential(t *testing.T) {
	var gwLog, m0Log, m1Log syncBuffer
	gwObs := debugTelemetry(&gwLog, 1) // sample every request
	memberObs := []*obs.Telemetry{debugTelemetry(&m0Log, 0), debugTelemetry(&m1Log, 0)}
	gw, shutdown := bootTestGateway(t, gwObs, memberObs)
	defer shutdown()

	run := func(clientID string) {
		t.Helper()
		req, err := http.NewRequest("GET", gw.URL+"/v1/topk?x1=0&x2=1000000&k=5", nil)
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set(obs.TraceHeader, clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(obs.TraceHeader)
		if id == "" {
			t.Fatal("gateway issued no trace ID")
		}
		if clientID != "" && id != clientID {
			t.Fatalf("gateway echoed %q, want the client's %q", id, clientID)
		}

		// Differential leg 1: the ID reached both members' request logs
		// (every band answers a TopK fan-out).
		for i, lg := range []*syncBuffer{&m0Log, &m1Log} {
			if !strings.Contains(lg.String(), "trace="+id) {
				t.Errorf("member %d request log does not carry trace %s:\n%s", i, id, lg.String())
			}
		}
		// ...and the gateway's own log.
		if !strings.Contains(gwLog.String(), "trace="+id) {
			t.Errorf("gateway request log does not carry trace %s", id)
		}

		// Differential leg 2: the gateway's span tree for the same ID
		// has one member-RPC span per band plus the merge span.
		var tree obs.TraceJSON
		if code := getJSON(t, gw.URL+"/v1/trace/"+id, &tree); code != 200 {
			t.Fatalf("trace lookup status %d", code)
		}
		if tree.ID != id {
			t.Fatalf("trace tree ID %q, want %q", tree.ID, id)
		}
		rpcAddrs := map[string]bool{}
		merges := 0
		for _, sp := range tree.Root.Children {
			switch {
			case sp.Name == "merge":
				merges++
			case sp.Addr != "":
				if !strings.Contains(sp.Name, "/v1/topk") {
					t.Errorf("member span %q, want a /v1/topk RPC", sp.Name)
				}
				rpcAddrs[sp.Addr] = true
			}
		}
		if len(rpcAddrs) != 2 {
			t.Errorf("span tree covers %d members, want 2: %+v", len(rpcAddrs), tree.Root.Children)
		}
		if merges != 1 {
			t.Errorf("span tree has %d merge spans, want 1", merges)
		}
		if tree.Root.DurationUS <= 0 {
			t.Errorf("root span duration %dus, want > 0", tree.Root.DurationUS)
		}
	}

	// Gateway-issued ID (sampled at the gateway)...
	run("")
	// ...and a client-supplied ID, adopted end to end.
	run("client-supplied-trace-0042")
}

// TestTraceNotFound: unknown IDs are a structured 404, and members
// (sample rate 0, no incoming header) hold no trace ring entries.
func TestTraceNotFound(t *testing.T) {
	srv := httptest.NewServer(New(testStore(t, 100), Options{}))
	defer srv.Close()
	var out struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/v1/trace/nope", &out); code != 404 {
		t.Fatalf("status %d, want 404", code)
	}
	if out.Error.Code != "trace_not_found" {
		t.Fatalf("code %q, want trace_not_found", out.Error.Code)
	}
}

// failingValue makes json.Encoder.Encode fail without a broken socket.
type failingValue struct{}

func (failingValue) MarshalJSON() ([]byte, error) { return nil, fmt.Errorf("refusing to marshal") }

// TestWriteJSONLogsEncodeError: encode failures land in the structured
// logger instead of being dropped.
func TestWriteJSONLogsEncodeError(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	writeJSONLog(httptest.NewRecorder(), failingValue{}, logger)
	got := buf.String()
	if !strings.Contains(got, "response encode failed") || !strings.Contains(got, "refusing to marshal") {
		t.Fatalf("encode error not logged: %q", got)
	}
}
