// Package core assembles Theorem 1 of the paper: a dynamic structure
// for top-k range reporting with O(n/B) space, O(log_B n + k/B) query
// I/Os, and O(log_B n) amortized update I/Os — improving the O(log²_B n)
// updates of the prior state of the art.
//
// Per §1.2, three components are combined with global rebuilding:
//
//  1. k ≥ B·lg n — the external priority search tree of §2
//     (internal/pst, Lemma 1): its O(lg n + k/B) query cost is O(k/B)
//     in this regime.
//  2. lg n ≤ B^(1/6), i.e. B ≥ lg⁶n — the structure of [14]
//     (internal/shengtao), whose O(lg²_B n) amortized update cost is
//     already O(log_B n) when the base-B logarithm is that large.
//  3. B < lg⁶n and k < B·lg n < lg⁷n — the polylogarithmic-k structure
//     of §3.3 (internal/polylog, Lemma 4), driven through the standard
//     reduction: approximate range k-selection produces a threshold τ
//     with between k and O(k) in-range points at or above it; a
//     three-sided reporting query on the §2 tree retrieves them; the
//     top k among them is selected for free in memory.
//
// Every update is applied to both maintained structures (two linear-
// space structures are still linear space, and two O(log_B n) updates
// are still O(log_B n)). When n doubles or halves relative to the size
// fixed at the last build, everything is rebuilt from scratch with
// N := 2n, exactly as the paper's appendix prescribes.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/polylog"
	"repro/internal/pst"
	"repro/internal/shengtao"
)

// Sentinel errors of the insert/update path. They are defined here —
// the lowest layer that understands the paper's input contract (a set
// of reals with distinct scores) — and re-exported by the public topk
// package so every serving layer speaks the same vocabulary.
var (
	// ErrInvalidPoint rejects NaN/±Inf coordinates.
	ErrInvalidPoint = errors.New("invalid point: position and score must be finite")
	// ErrDuplicatePosition rejects an insert at an occupied position.
	ErrDuplicatePosition = errors.New("position already present")
	// ErrDuplicateScore rejects an insert whose score is already live.
	ErrDuplicateScore = errors.New("score already present")
	// ErrNotFound reports a batched delete of an absent point.
	ErrNotFound = errors.New("point not found")
)

// Regime identifies which small-k component serves queries below the
// k-threshold.
type Regime int

const (
	// RegimeAuto selects per the paper: shengtao when B ≥ lg⁶N, polylog
	// otherwise.
	RegimeAuto Regime = iota
	// RegimePolylog forces the §3.3 structure (Lemma 4).
	RegimePolylog
	// RegimeBaseline forces the [14] structure.
	RegimeBaseline
)

func (r Regime) String() string {
	switch r {
	case RegimePolylog:
		return "polylog(§3.3)"
	case RegimeBaseline:
		return "baseline[14]"
	default:
		return "auto"
	}
}

// Options tune the composition; zero values follow the paper.
type Options struct {
	// Regime selects the small-k component.
	Regime Regime
	// KThreshold overrides the B·lg n dispatch threshold (0 = paper's).
	KThreshold int
	// PST passes through to the §2 structure.
	PST pst.Options
	// PolylogF / PolylogLeafCap override §3.3 shape parameters (0 =
	// paper's f = √(B·lg N) and b = f·l·B; tests shrink them to keep
	// multi-level trees at small n).
	PolylogF       int
	PolylogLeafCap int
}

// Index is the Theorem 1 structure. Create with New or Bulk.
type Index struct {
	d   *em.Disk
	opt Options

	n int
	// N is fixed in [n, 4n] between global rebuilds.
	N int

	tree   *pst.PST
	poly   *polylog.Tree  // small-k component in the polylog regime
	base   *shengtao.Tree // small-k component in the baseline regime
	regime Regime         // resolved regime for the current build

	// positions and scores are the duplicate guards behind Insert's
	// error contract. They live in Go memory outside the I/O-charged
	// model — like the I/O meter itself they are serving-layer
	// bookkeeping, not part of the paper's structure (the in-model
	// alternative is a Count probe at O(log_B n) extra I/Os per
	// insert, which would distort the measured update bounds).
	positions map[float64]struct{}
	scores    map[float64]struct{}
}

// New returns an empty index on d.
func New(d *em.Disk, opt Options) *Index {
	ix := &Index{d: d, opt: opt}
	ix.build(nil)
	return ix
}

// Bulk builds an index over pts.
func Bulk(d *em.Disk, opt Options, pts []point.P) *Index {
	ix := &Index{d: d, opt: opt}
	ix.build(pts)
	return ix
}

// Len returns the number of live points.
func (ix *Index) Len() int { return ix.n }

// lg is the paper's lg: max(1, ⌈log2 x⌉).
func lg(x int) int {
	l := 1
	for v := 2; v < x; v *= 2 {
		l++
	}
	return l
}

// KThreshold returns the current dispatch threshold B·lg N (queries
// with k at or above it go to the §2 structure).
func (ix *Index) KThreshold() int {
	if ix.opt.KThreshold > 0 {
		return ix.opt.KThreshold
	}
	return ix.d.B() * lg(ix.N)
}

// CurrentRegime reports which small-k component is active.
func (ix *Index) CurrentRegime() Regime { return ix.regime }

// resolveRegime applies the §1.2 case analysis for the current N.
func (ix *Index) resolveRegime() Regime {
	if ix.opt.Regime != RegimeAuto {
		return ix.opt.Regime
	}
	l := float64(lg(ix.N))
	if float64(ix.d.B()) >= math.Pow(l, 6) {
		return RegimeBaseline
	}
	return RegimePolylog
}

// build (re)constructs everything over pts with N := max(2·|pts|, 16).
func (ix *Index) build(pts []point.P) {
	if ix.tree != nil {
		// Free the previous build's blocks.
		ix.freeAll()
	}
	ix.n = len(pts)
	ix.N = 2 * len(pts)
	if ix.N < 16 {
		ix.N = 16
	}
	ix.regime = ix.resolveRegime()
	ix.positions = make(map[float64]struct{}, len(pts))
	ix.scores = make(map[float64]struct{}, len(pts))
	for _, p := range pts {
		ix.positions[p.X] = struct{}{}
		ix.scores[p.Score] = struct{}{}
	}
	ix.tree = pst.Bulk(ix.d, ix.opt.PST, pts)
	switch ix.regime {
	case RegimeBaseline:
		ix.base = shengtao.Bulk(ix.d, shengtao.Options{K: ix.KThreshold()}, pts)
		ix.poly = nil
	default:
		ix.poly = polylog.Bulk(ix.d, polylog.Options{
			L:       ix.KThreshold(),
			N:       ix.N,
			F:       ix.opt.PolylogF,
			LeafCap: ix.opt.PolylogLeafCap,
		}, pts)
		ix.base = nil
	}
}

func (ix *Index) freeAll() {
	// The PST and polylog tree own many stores; rebuilding simply drops
	// them and lets their blocks be freed by reconstruction. For exact
	// space accounting the PST frees its subtree; the small structures
	// free node-by-node.
	if ix.base != nil {
		ix.base.Free()
	}
	// pst and polylog blocks are freed by their Bulk/rebuild paths; the
	// simplest exact route is to rebuild fresh structures on the same
	// disk after releasing the old ones.
	if ix.tree != nil {
		ix.tree.FreeAll()
	}
	if ix.poly != nil {
		ix.poly.FreeAll()
	}
}

// maybeRebuild applies global rebuilding: rebuild when n has doubled or
// halved relative to the last build.
func (ix *Index) maybeRebuild() {
	if ix.n > ix.N || 4*ix.n < ix.N {
		ix.build(ix.live())
	}
}

// live collects the current point set (used only during rebuilds, whose
// cost global rebuilding amortizes).
func (ix *Index) live() []point.P { return ix.tree.Live() }

// Live returns the current point set as an O(n/B) scan of the §2 tree.
// The shard layer uses it to re-partition an index when splitting; its
// cost is amortized against the updates that made the split necessary,
// the same argument as global rebuilding.
func (ix *Index) Live() []point.P { return ix.live() }

// Has reports whether a live point occupies position x (O(1), no I/O:
// the guard maps are Go-memory bookkeeping).
func (ix *Index) Has(x float64) bool {
	_, ok := ix.positions[x]
	return ok
}

// HasScore reports whether score is live (O(1), no I/O).
func (ix *Index) HasScore(score float64) bool {
	_, ok := ix.scores[score]
	return ok
}

// Insert adds p in O(log_B n) amortized I/Os. Contract violations are
// rejected with a sentinel error BEFORE anything is mutated — an
// in-flight violation would leave the two maintained structures
// diverged and poison every later rebuild. Checks run in a fixed
// order: ErrInvalidPoint, then ErrDuplicatePosition, then
// ErrDuplicateScore.
func (ix *Index) Insert(p point.P) error {
	if !p.Finite() {
		return ErrInvalidPoint
	}
	if ix.Has(p.X) {
		return ErrDuplicatePosition
	}
	if ix.HasScore(p.Score) {
		return ErrDuplicateScore
	}
	ix.tree.Insert(p)
	if ix.poly != nil {
		ix.poly.Insert(p)
	}
	if ix.base != nil {
		ix.base.Insert(p)
	}
	ix.positions[p.X] = struct{}{}
	ix.scores[p.Score] = struct{}{}
	ix.n++
	ix.maybeRebuild()
	return nil
}

// Delete removes p, reporting whether it was present, in O(log_B n)
// amortized I/Os.
func (ix *Index) Delete(p point.P) bool {
	if !ix.tree.Delete(p) {
		return false
	}
	delete(ix.positions, p.X)
	delete(ix.scores, p.Score)
	if ix.poly != nil && !ix.poly.Delete(p) {
		panic("core: structures diverged on delete")
	}
	if ix.base != nil && !ix.base.Delete(p) {
		panic("core: structures diverged on delete")
	}
	ix.n--
	ix.maybeRebuild()
	return true
}

// Query returns the k highest-scoring points with x ∈ [x1, x2], sorted
// by descending score (all of them if fewer qualify), in
// O(log_B n + k/B) I/Os.
func (ix *Index) Query(x1, x2 float64, k int) []point.P {
	if k <= 0 || x1 > x2 || ix.n == 0 {
		return nil
	}
	if k > ix.n {
		// Clamp before anything sizes a buffer by k: no query can
		// return more than n points, and the selection paths
		// preallocate k-proportional buffers — an absurd caller k must
		// not drive an allocation. The answer is unchanged (k ≥ n
		// already reported every qualifying point).
		k = ix.n
	}
	if k >= ix.KThreshold() {
		// Regime 1: k ≥ B·lg n — the §2 structure's O(lg n + k/B) is
		// O(k/B) here.
		return ix.tree.Query(x1, x2, k)
	}
	tau, ok := ix.smallSelect(x1, x2, k)
	if !ok {
		// Fewer than k points in range: report them all. The three-
		// sided query with τ = −∞ reads exactly the in-range points.
		out := ix.tree.Report3Sided(x1, x2, math.Inf(-1))
		point.SortByScoreDesc(out)
		return out
	}
	// Reduction: τ has between k and O(k) in-range points at or above
	// it; fetch them with a three-sided query and keep the top k.
	out := ix.tree.Report3Sided(x1, x2, tau)
	if len(out) < k {
		// Defensive: approximate selection under-delivered (cannot
		// happen for in-regime parameters; see polylog docs). Degrade
		// to the exact path.
		out = ix.tree.Query(x1, x2, k)
		return out
	}
	point.SortByScoreDesc(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// smallSelect runs approximate range k-selection on the active small-k
// component.
func (ix *Index) smallSelect(x1, x2 float64, k int) (float64, bool) {
	if ix.poly != nil {
		return ix.poly.SelectApprox(x1, x2, k)
	}
	pt, ok := ix.base.SelectApprox(x1, x2, k)
	if !ok {
		return 0, false
	}
	return pt.Score, true
}

// Count returns |S ∩ [x1,x2]|.
func (ix *Index) Count(x1, x2 float64) int {
	if ix.poly != nil {
		return ix.poly.Count(x1, x2)
	}
	return ix.base.Count(x1, x2)
}

// Stats exposes the disk meter.
func (ix *Index) Stats() em.Stats { return ix.d.Stats() }

// CheckInvariants validates both maintained structures (test helper).
func (ix *Index) CheckInvariants() error {
	if err := ix.tree.CheckInvariants(); err != nil {
		return fmt.Errorf("pst: %w", err)
	}
	if ix.poly != nil {
		if err := ix.poly.CheckInvariants(); err != nil {
			return fmt.Errorf("polylog: %w", err)
		}
	}
	if ix.base != nil {
		if err := ix.base.CheckInvariants(); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if len(ix.positions) != ix.n || len(ix.scores) != ix.n {
		return fmt.Errorf("duplicate guards out of sync: %d positions, %d scores, n=%d",
			len(ix.positions), len(ix.scores), ix.n)
	}
	for _, p := range ix.live() {
		if !ix.Has(p.X) || !ix.HasScore(p.Score) {
			return fmt.Errorf("live point %v missing from duplicate guards", p)
		}
	}
	return nil
}

// String summarizes the composition.
func (ix *Index) String() string {
	return fmt.Sprintf("core.Index{n=%d, N=%d, kThreshold=%d, regime=%s}",
		ix.n, ix.N, ix.KThreshold(), ix.regime)
}
