package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/verify"
	"repro/internal/workload"
)

func newDisk(b int) *em.Disk { return em.NewDisk(em.Config{B: b, M: 64 * b}) }

// testOpts keeps the polylog component multi-level at test scale.
func testOpts() Options {
	return Options{Regime: RegimePolylog, PolylogF: 4, PolylogLeafCap: 64}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(newDisk(32), testOpts())
	if ix.Len() != 0 {
		t.Fatal("not empty")
	}
	if got := ix.Query(0, 10, 5); got != nil {
		t.Fatalf("query: %v", got)
	}
	if ix.Delete(point.P{X: 1, Score: 1}) {
		t.Fatal("phantom delete")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkSmallKQueries(t *testing.T) {
	gen := workload.NewGen(1)
	pts := gen.Uniform(3000, 1e5)
	ix := Bulk(newDisk(32), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(150, 1e5, 0.05, 0.6, 20) {
		got := ix.Query(q.X1, q.X2, q.K)
		want := oracle.TopK(q.X1, q.X2, q.K)
		if err := verify.DiffTopK(got, want); err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		if !verify.SortedDesc(got) {
			t.Fatalf("query %+v: unsorted", q)
		}
	}
}

func TestBulkLargeKQueries(t *testing.T) {
	gen := workload.NewGen(2)
	pts := gen.Uniform(3000, 1e5)
	ix := Bulk(newDisk(32), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	thr := ix.KThreshold()
	for _, k := range []int{thr, thr + 5, 2 * thr, 2900, 3000, 4000} {
		got := ix.Query(1e4, 9e4, k)
		want := oracle.TopK(1e4, 9e4, k)
		if err := verify.DiffTopK(got, want); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestThresholdDispatch(t *testing.T) {
	ix := Bulk(newDisk(32), testOpts(), workload.NewGen(3).Uniform(1000, 1e4))
	thr := ix.KThreshold()
	if thr != 32*11 { // B=32, lg(2000) = 11
		t.Fatalf("threshold %d, want %d", thr, 32*11)
	}
	if ix.CurrentRegime() != RegimePolylog {
		t.Fatalf("regime %v", ix.CurrentRegime())
	}
}

func TestAutoRegimeSelection(t *testing.T) {
	// Tiny lg n with huge B → baseline regime; the reverse → polylog.
	d := em.NewDisk(em.Config{B: 4096, M: 64 * 4096})
	ix := New(d, Options{Regime: RegimeAuto})
	if ix.CurrentRegime() != RegimeBaseline {
		t.Fatalf("B=4096 n=0: regime %v, want baseline (lg⁶N = %d ≤ B)", ix.CurrentRegime(), 4*4*4*4*4*4)
	}
	d2 := em.NewDisk(em.Config{B: 8, M: 64 * 8})
	ix2 := New(d2, Options{Regime: RegimeAuto})
	if ix2.CurrentRegime() != RegimePolylog {
		t.Fatalf("B=8: regime %v, want polylog", ix2.CurrentRegime())
	}
}

func TestBaselineRegimeQueries(t *testing.T) {
	gen := workload.NewGen(4)
	pts := gen.Uniform(1500, 1e5)
	ix := Bulk(newDisk(32), Options{Regime: RegimeBaseline}, pts)
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(100, 1e5, 0.05, 0.5, 25) {
		if err := verify.DiffTopK(ix.Query(q.X1, q.X2, q.K), oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
	}
}

func TestIncrementalMixedWorkload(t *testing.T) {
	gen := workload.NewGen(5)
	ix := New(newDisk(32), testOpts())
	oracle := verify.NewOracle(nil)
	for i, u := range gen.Mix(3000, 500, 0.4, 1e5) {
		if u.Insert != nil {
			ix.Insert(*u.Insert)
			oracle.Insert(*u.Insert)
		} else {
			if got, want := ix.Delete(*u.Delete), oracle.Delete(*u.Delete); got != want {
				t.Fatalf("op %d: delete %v vs %v", i, got, want)
			}
		}
		if i%250 == 125 {
			q := gen.Queries(1, 1e5, 0.1, 0.5, 15)[0]
			if err := verify.DiffTopK(ix.Query(q.X1, q.X2, q.K), oracle.TopK(q.X1, q.X2, q.K)); err != nil {
				t.Fatalf("op %d query: %v", i, err)
			}
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != oracle.Len() {
		t.Fatalf("len %d vs %d", ix.Len(), oracle.Len())
	}
}

func TestGlobalRebuildTriggers(t *testing.T) {
	gen := workload.NewGen(6)
	pts := gen.Uniform(200, 1e4)
	ix := Bulk(newDisk(32), testOpts(), pts)
	n0 := ix.N
	// Grow past N: a rebuild must fire and answers stay correct.
	more := gen.Uniform(300, 1e4)
	for _, p := range more {
		ix.Insert(p)
	}
	if ix.N == n0 {
		t.Fatal("no rebuild after doubling")
	}
	oracle := verify.NewOracle(append(pts, more...))
	for _, q := range gen.Queries(40, 1e4, 0.1, 0.6, 12) {
		if err := verify.DiffTopK(ix.Query(q.X1, q.X2, q.K), oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("post-rebuild query: %v", err)
		}
	}
	// Shrink to a quarter: rebuild fires again.
	all := oracle.Live()
	for _, p := range all[:400] {
		ix.Delete(p)
		oracle.Delete(p)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.Queries(40, 1e4, 0.1, 0.6, 12) {
		if err := verify.DiffTopK(ix.Query(q.X1, q.X2, q.K), oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("post-shrink query: %v", err)
		}
	}
}

func TestCount(t *testing.T) {
	gen := workload.NewGen(7)
	pts := gen.Uniform(800, 1e4)
	ix := Bulk(newDisk(32), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(100, 1e4, 0.05, 0.7, 5) {
		if got, want := ix.Count(q.X1, q.X2), oracle.Count(q.X1, q.X2); got != want {
			t.Fatalf("count [%v,%v]: %d want %d", q.X1, q.X2, got, want)
		}
	}
}

func TestFullRangeAllK(t *testing.T) {
	gen := workload.NewGen(8)
	pts := gen.Uniform(500, 1e4)
	ix := Bulk(newDisk(16), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	for k := 1; k <= 520; k += 13 {
		got := ix.Query(math.Inf(-1), math.Inf(1), k)
		want := oracle.TopK(math.Inf(-1), math.Inf(1), k)
		if err := verify.DiffTopK(got, want); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestCorrelatedAndClusteredWorkloads(t *testing.T) {
	gen := workload.NewGen(9)
	for name, pts := range map[string][]point.P{
		"clustered":  gen.Clustered(1200, 6, 1e5),
		"correlated": gen.Correlated(1200, 1e5, 0.8),
		"anti":       gen.Correlated(1200, 1e5, -0.8),
	} {
		ix := Bulk(newDisk(32), testOpts(), pts)
		oracle := verify.NewOracle(pts)
		for _, q := range gen.Queries(60, 1e5, 0.05, 0.5, 16) {
			if err := verify.DiffTopK(ix.Query(q.X1, q.X2, q.K), oracle.TopK(q.X1, q.X2, q.K)); err != nil {
				t.Fatalf("%s %+v: %v", name, q, err)
			}
		}
	}
}

func TestSpaceLinear(t *testing.T) {
	d := newDisk(64)
	gen := workload.NewGen(10)
	pts := gen.Uniform(20000, 1e6)
	Bulk(d, Options{Regime: RegimePolylog, PolylogF: 4, PolylogLeafCap: 512}, pts)
	live := d.Stats().BlocksLive
	// Two linear structures plus metadata; generous envelope.
	if bound := int64(40 * 20000 / 64); live > bound {
		t.Fatalf("space %d blocks > %d", live, bound)
	}
	t.Logf("space: %d blocks for n=20000, B=64 (n/B = %d)", live, 20000/64)
}

func TestUpdateIOCost(t *testing.T) {
	d := newDisk(64)
	ix := New(d, Options{Regime: RegimePolylog, PolylogF: 4, PolylogLeafCap: 512})
	gen := workload.NewGen(11)
	pts := gen.Uniform(4000, 1e6)
	for _, p := range pts[:2000] {
		ix.Insert(p)
	}
	d.DropCache()
	base := d.Stats()
	for _, p := range pts[2000:] {
		ix.Insert(p)
	}
	per := float64(d.Stats().Sub(base).IOs()) / 2000
	if per > 400 {
		t.Fatalf("amortized insert %.1f I/Os", per)
	}
	t.Logf("amortized insert: %.1f I/Os", per)
}

// Property: the composed index agrees with the oracle on arbitrary
// update interleavings and ks straddling the threshold.
func TestQuickIndexModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 80 {
			ops = ops[:80]
		}
		rng := rand.New(rand.NewSource(seed))
		ix := New(newDisk(8), Options{Regime: RegimePolylog, PolylogF: 3, PolylogLeafCap: 16})
		oracle := verify.NewOracle(nil)
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%4 != 0 || oracle.Len() == 0 {
				p := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[p.X] {
					continue
				}
				usedX[p.X] = true
				ix.Insert(p)
				oracle.Insert(p)
			} else {
				live := oracle.Live()
				p := live[int(op/4)%len(live)]
				delete(usedX, p.X)
				if !ix.Delete(p) {
					return false
				}
				oracle.Delete(p)
			}
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 30000)
		x2 := x1 + 25000
		for _, k := range []int{1, 3, int(abs%50) + 1, ix.KThreshold(), ix.KThreshold() + 10} {
			if verify.DiffTopK(ix.Query(x1, x2, k), oracle.TopK(x1, x2, k)) != nil {
				return false
			}
		}
		return ix.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexInsert(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	ix := New(d, Options{Regime: RegimePolylog, PolylogF: 4, PolylogLeafCap: 512})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(point.P{X: rng.Float64() * 1e9, Score: rng.Float64()})
	}
}

func BenchmarkIndexQuerySmallK(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	ix := Bulk(d, Options{Regime: RegimePolylog, PolylogF: 4, PolylogLeafCap: 512},
		workload.NewGen(1).Uniform(20000, 1e6))
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 5e5
		ix.Query(x1, x1+3e5, 10)
	}
}
