package core

// Focused tests of the §3.3 reduction path (approximate selection →
// three-sided reporting → in-memory top-k), including the defensive
// degradation branch and threshold-straddling behaviour.

import (
	"math"
	"testing"

	"repro/internal/em"
	"repro/internal/verify"
	"repro/internal/workload"
)

func TestReductionPathServesSmallK(t *testing.T) {
	gen := workload.NewGen(200)
	pts := gen.Uniform(2000, 1e5)
	ix := Bulk(newDisk(32), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	// k = 1 is the extreme of the reduction path (τ near the maximum).
	for _, q := range gen.Queries(80, 1e5, 0.02, 0.9, 1) {
		got := ix.Query(q.X1, q.X2, 1)
		want := oracle.TopK(q.X1, q.X2, 1)
		if err := verify.DiffTopK(got, want); err != nil {
			t.Fatalf("k=1 %+v: %v", q, err)
		}
	}
}

func TestReductionAtThresholdBoundary(t *testing.T) {
	gen := workload.NewGen(201)
	pts := gen.Uniform(3000, 1e5)
	ix := Bulk(newDisk(16), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	thr := ix.KThreshold()
	for _, k := range []int{thr - 2, thr - 1, thr, thr + 1, thr + 2} {
		got := ix.Query(1e3, 9e4, k)
		want := oracle.TopK(1e3, 9e4, k)
		if err := verify.DiffTopK(got, want); err != nil {
			t.Fatalf("k=%d (threshold %d): %v", k, thr, err)
		}
	}
}

func TestReductionSparseRange(t *testing.T) {
	// Ranges with very few points exercise the "fewer than k in range"
	// branch (three-sided report with τ = −∞).
	gen := workload.NewGen(202)
	pts := gen.Clustered(1500, 3, 1e6)
	ix := Bulk(newDisk(32), testOpts(), pts)
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(120, 1e6, 0.001, 0.02, 30) {
		got := ix.Query(q.X1, q.X2, q.K)
		want := oracle.TopK(q.X1, q.X2, q.K)
		if err := verify.DiffTopK(got, want); err != nil {
			t.Fatalf("sparse %+v: %v", q, err)
		}
	}
}

func TestReductionIOCostSmallK(t *testing.T) {
	d := em.NewDisk(em.Config{B: 64, M: 256 * 64})
	gen := workload.NewGen(203)
	pts := gen.Uniform(30000, 1e6)
	ix := Bulk(d, Options{Regime: RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048}, pts)
	d.DropCache()
	base := d.Stats()
	const queries = 10
	for i := 0; i < queries; i++ {
		x1 := float64(i) * 3e4
		ix.Query(x1, x1+5e5, 8)
		d.DropCache()
	}
	per := float64(d.Stats().Sub(base).Reads) / queries
	// O(log_B n + k/B): with B=64 and n=30000 the prediction is ~2.5 +
	// 0.1; measured constants include AURS probes and the 3-sided
	// report of O(k) points. The envelope guards against regressions to
	// scanning behaviour (which would cost thousands of reads).
	if per > 500 {
		t.Fatalf("small-k query cost %.1f reads", per)
	}
	t.Logf("small-k query: %.1f reads", per)
}

func TestQueryInvalidInputs(t *testing.T) {
	ix := Bulk(newDisk(32), testOpts(), workload.NewGen(204).Uniform(200, 1e4))
	if got := ix.Query(5, 4, 3); got != nil {
		t.Fatal("inverted range")
	}
	if got := ix.Query(0, 10, 0); got != nil {
		t.Fatal("k=0")
	}
	if got := ix.Query(0, 10, -5); got != nil {
		t.Fatal("negative k")
	}
	if got := ix.Query(math.Inf(-1), math.Inf(1), 5); len(got) != 5 {
		t.Fatalf("full range k=5: %d", len(got))
	}
}
