package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/em"
)

// memTree is an in-memory heap-ordered binary tree Source that counts
// Children calls (the I/O proxy for selection-cost assertions).
type memTree struct {
	keys     []float64 // array-embedded, heap-ordered
	expanded int
}

func newMemTree(n int, seed int64) *memTree {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	es := make([]Entry, n)
	for i := range keys {
		keys[i] = rng.Float64()
		es[i] = Entry{Key: keys[i]}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(es, i)
	}
	for j := range keys {
		keys[j] = es[j].Key
	}
	return &memTree{keys: keys}
}

func (m *memTree) Roots() []Entry {
	if len(m.keys) == 0 {
		return nil
	}
	return []Entry{{Ref: 0, Key: m.keys[0]}}
}

func (m *memTree) Children(ref int64) []Entry {
	m.expanded++
	var out []Entry
	for _, c := range []int64{2*ref + 1, 2*ref + 2} {
		if c < int64(len(m.keys)) {
			out = append(out, Entry{Ref: c, Key: m.keys[c]})
		}
	}
	return out
}

func sortedDesc(keys []float64) []float64 {
	out := append([]float64(nil), keys...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func TestSelectTopCorrect(t *testing.T) {
	m := newMemTree(500, 1)
	want := sortedDesc(m.keys)
	for _, tt := range []int{1, 2, 10, 100, 500, 600} {
		got := SelectTop(m, tt)
		wantN := tt
		if wantN > 500 {
			wantN = 500
		}
		if len(got) != wantN {
			t.Fatalf("t=%d: got %d entries", tt, len(got))
		}
		for i, e := range got {
			if e.Key != want[i] {
				t.Fatalf("t=%d: entry %d key %v want %v", tt, i, e.Key, want[i])
			}
		}
	}
}

func TestSelectTopZeroAndEmpty(t *testing.T) {
	m := newMemTree(10, 2)
	if got := SelectTop(m, 0); got != nil {
		t.Fatalf("t=0 returned %v", got)
	}
	empty := &memTree{}
	if got := SelectTop(empty, 5); len(got) != 0 {
		t.Fatalf("empty heap returned %v", got)
	}
}

func TestSelectTopExpansionLinear(t *testing.T) {
	m := newMemTree(100000, 3)
	for _, tt := range []int{1, 16, 256, 4096} {
		m.expanded = 0
		SelectTop(m, tt)
		if m.expanded > tt {
			t.Fatalf("t=%d: %d expansions, want ≤ t", tt, m.expanded)
		}
	}
}

func TestForestMerges(t *testing.T) {
	a, b, c := newMemTree(50, 4), newMemTree(70, 5), newMemTree(30, 6)
	all := append(append(append([]float64(nil), a.keys...), b.keys...), c.keys...)
	want := sortedDesc(all)[:40]
	got := TopKeys(&Forest{Sources: []Source{a, b, c}}, 40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forest top-40[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestExternalHeapOrderAndSelect(t *testing.T) {
	d := em.NewDisk(em.Config{B: 16, M: 128})
	rng := rand.New(rand.NewSource(7))
	var entries []Entry
	var keys []float64
	for i := 0; i < 333; i++ {
		k := rng.Float64()
		entries = append(entries, Entry{Ref: int64(i), Key: k})
		keys = append(keys, k)
	}
	h := NewExternal(d, "h", entries)
	if !h.CheckHeapOrder() {
		t.Fatal("heap order violated")
	}
	want := sortedDesc(keys)[:50]
	got := TopKeys(h, 50)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("external top[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestExternalPayloadPreserved(t *testing.T) {
	d := em.NewDisk(em.Config{B: 16, M: 128})
	entries := []Entry{{Ref: 100, Key: 3}, {Ref: 200, Key: 1}, {Ref: 300, Key: 2}}
	h := NewExternal(d, "h", entries)
	top := SelectTop(h, 1)
	if len(top) != 1 || top[0].Key != 3 {
		t.Fatalf("top: %v", top)
	}
	if p := h.Payload(top[0].Ref); p.Ref != 100 {
		t.Fatalf("payload ref %d want 100", p.Ref)
	}
}

func TestExternalSelectionIOCost(t *testing.T) {
	d := em.NewDisk(em.Config{B: 16, M: 64}) // 4 frames: forces misses
	rng := rand.New(rand.NewSource(8))
	var entries []Entry
	for i := 0; i < 4096; i++ {
		entries = append(entries, Entry{Ref: int64(i), Key: rng.Float64()})
	}
	h := NewExternal(d, "h", entries)
	d.DropCache()
	base := d.Stats()
	tSel := 64
	SelectTop(h, tSel)
	reads := d.Stats().Sub(base).Reads
	// Each emitted entry triggers ≤ 1 expansion = ≤ 2 child chunk reads +
	// its own chunk; allow 4·t as the O(t) envelope.
	if reads > int64(4*tSel) {
		t.Fatalf("selection of %d cost %d reads, want O(t)", tSel, reads)
	}
}

func TestConcatFigure2(t *testing.T) {
	// Reproduce Figure 2's shape: heaps rooted at Π nodes, concatenated
	// by a binary heap over their roots; selection sees the union.
	d := em.NewDisk(em.Config{B: 16, M: 256})
	a, b, c, e := newMemTree(40, 9), newMemTree(60, 10), newMemTree(25, 11), newMemTree(90, 12)
	ch := Concat(d, "cat", []Source{a, b, c, e})
	defer ch.Free()
	all := append(append(append(append([]float64(nil), a.keys...), b.keys...), c.keys...), e.keys...)
	want := sortedDesc(all)[:70]
	got := TopKeys(ch, 70)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concat top[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestConcatEmptySources(t *testing.T) {
	d := em.NewDisk(em.Config{B: 16, M: 128})
	ch := Concat(d, "cat", []Source{&memTree{}, &memTree{}})
	defer ch.Free()
	if got := SelectTop(ch, 3); len(got) != 0 {
		t.Fatalf("empty concat returned %v", got)
	}
}

func TestExternalFreeReleases(t *testing.T) {
	d := em.NewDisk(em.Config{B: 16, M: 128})
	var entries []Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{Key: float64(i)})
	}
	h := NewExternal(d, "h", entries)
	h.Free()
	if live := d.Stats().BlocksLive; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}

// Property: SelectTop returns exactly the t largest keys for arbitrary
// heap contents and t.
func TestQuickSelectTop(t *testing.T) {
	f := func(raw []float64, tRaw uint8) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		m := &memTree{keys: append([]float64(nil), raw...)}
		es := make([]Entry, len(raw))
		for j, k := range raw {
			es[j] = Entry{Key: k}
		}
		for i := len(es)/2 - 1; i >= 0; i-- {
			siftDown(es, i)
		}
		for j := range m.keys {
			m.keys[j] = es[j].Key
		}
		tt := int(tRaw)%(len(raw)+2) + 1
		got := SelectTop(m, tt)
		want := sortedDesc(m.keys)
		if tt < len(want) {
			want = want[:tt]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Floyd make-heap always yields a valid max-heap.
func TestQuickMakeHeapValid(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 500 {
			raw = raw[:500]
		}
		d := em.NewDisk(em.Config{B: 16, M: 256})
		entries := make([]Entry, len(raw))
		for i, k := range raw {
			entries[i] = Entry{Ref: int64(i), Key: k}
		}
		h := NewExternal(d, "h", entries)
		return h.CheckHeapOrder()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectTop256(b *testing.B) {
	m := newMemTree(1<<18, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectTop(m, 256)
	}
}

func BenchmarkMakeHeap(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, 8192)
	for i := range entries {
		entries[i] = Entry{Ref: int64(i), Key: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewExternal(d, "h", entries)
		h.Free()
	}
}
