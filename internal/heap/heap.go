// Package heap provides the max-heap machinery of the §2 query
// algorithm: heap concatenation (Figure 2 of the paper) and extraction
// of the t largest keys from a heap-ordered structure.
//
// The paper invokes Frederickson's 1993 algorithm, which extracts the
// top t of a binary max-heap in O(t) CPU time. In the EM model CPU is
// free; SelectTop runs a best-first search with an in-memory priority
// queue that expands at most t nodes and therefore performs O(t) I/Os —
// the bound §2 needs (the paper cites Frederickson only to keep the CPU
// cost linear; see DESIGN.md, substitution 2). Heap nodes are navigated
// through the Source interface so that the structure of §2 (the tree T̂
// with pilot representatives as keys) can expose itself as a heap
// without materializing one.
//
// The package also provides External, a concrete array-embedded binary
// max-heap stored in disk blocks with Floyd's linear-time make-heap, the
// "linear-time make-heap algorithm" of footnote 4, used to concatenate
// the heaps rooted at the nodes of Π (Figure 2) and in experiment E12.
package heap

import (
	stdheap "container/heap"
	"sort"

	"repro/internal/em"
)

// Entry is a heap element: an opaque reference and its sort key.
type Entry struct {
	Ref int64
	Key float64
}

// Source exposes a max-heap-ordered forest: every child's key is ≤ its
// parent's. Implementations charge their own I/Os (typically one block
// read per Children call).
type Source interface {
	// Roots returns the forest's root entries.
	Roots() []Entry
	// Children returns the child entries of ref.
	Children(ref int64) []Entry
}

// pq is an in-memory max-PQ of entries (CPU-side, free in the model).
type pq []Entry

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].Key > p[j].Key }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(Entry)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// SelectTop returns the t largest entries reachable from src, in
// descending key order (fewer if the heap is smaller). It expands
// exactly one node per emitted entry, so the I/O cost is O(t) times the
// per-node access cost of src.
func SelectTop(src Source, t int) []Entry {
	if t <= 0 {
		return nil
	}
	var frontier pq
	for _, e := range src.Roots() {
		frontier = append(frontier, e)
	}
	stdheap.Init(&frontier)
	out := make([]Entry, 0, t)
	for len(out) < t && frontier.Len() > 0 {
		e := stdheap.Pop(&frontier).(Entry)
		out = append(out, e)
		for _, c := range src.Children(e.Ref) {
			stdheap.Push(&frontier, c)
		}
	}
	return out
}

// Forest merges several sources into one (the trivial side of Figure 2:
// the concatenated heap H behaves exactly like the forest of the heaps
// H(v), v ∈ Π). Refs are namespaced by source index.
type Forest struct {
	Sources []Source
}

const forestShift = 40 // source index in high bits, ref in low bits

// SplitRef decomposes a Forest ref into its source index and the
// source's own ref, for callers that need to map selected entries back
// to the source they came from.
func SplitRef(ref int64) (source int, sourceRef int64) {
	return int(ref >> forestShift), ref & (1<<forestShift - 1)
}

// Roots implements Source.
func (f *Forest) Roots() []Entry {
	var out []Entry
	for i, s := range f.Sources {
		for _, e := range s.Roots() {
			out = append(out, Entry{Ref: int64(i)<<forestShift | e.Ref, Key: e.Key})
		}
	}
	return out
}

// Children implements Source.
func (f *Forest) Children(ref int64) []Entry {
	i := ref >> forestShift
	var out []Entry
	for _, e := range f.Sources[i].Children(ref & (1<<forestShift - 1)) {
		out = append(out, Entry{Ref: i<<forestShift | e.Ref, Key: e.Key})
	}
	return out
}

// External is an array-embedded binary max-heap on disk. The entry array
// is chunked into blocks of B() entries each; accessing entry i costs a
// block I/O for chunk i/B on a cold buffer pool.
type External struct {
	store *em.Store[[]Entry]
	chunk int // entries per chunk
	ids   []em.Handle
	n     int
}

// chunkWords is the size of a chunk in words (2 words per entry).
func chunkWords(es []Entry) int { return 2 * len(es) }

// NewExternal builds an External heap holding the given entries,
// heap-ordered with Floyd's bottom-up make-heap (O(n/B) I/Os when the
// buffer pool holds the working set; O(n) node touches regardless, each
// O(1/B) amortized with blocked layout).
func NewExternal(d *em.Disk, name string, entries []Entry) *External {
	h := &External{
		store: em.NewStore(d, name, chunkWords),
		chunk: d.B() / 2,
		n:     len(entries),
	}
	if h.chunk < 1 {
		h.chunk = 1
	}
	buf := append([]Entry(nil), entries...)
	// Floyd's make-heap in memory (CPU free), then write out in chunks.
	for i := len(buf)/2 - 1; i >= 0; i-- {
		siftDown(buf, i)
	}
	for i := 0; i < len(buf); i += h.chunk {
		end := i + h.chunk
		if end > len(buf) {
			end = len(buf)
		}
		h.ids = append(h.ids, h.store.Alloc(append([]Entry(nil), buf[i:end]...)))
	}
	return h
}

func siftDown(buf []Entry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(buf) && buf[l].Key > buf[m].Key {
			m = l
		}
		if r < len(buf) && buf[r].Key > buf[m].Key {
			m = r
		}
		if m == i {
			return
		}
		buf[i], buf[m] = buf[m], buf[i]
		i = m
	}
}

// Len returns the number of entries.
func (h *External) Len() int { return h.n }

// at reads entry i, charging a block I/O on a pool miss.
func (h *External) at(i int) Entry {
	return h.store.Read(h.ids[i/h.chunk])[i%h.chunk]
}

// Roots implements Source: refs are array indices.
func (h *External) Roots() []Entry {
	if h.n == 0 {
		return nil
	}
	e := h.at(0)
	return []Entry{{Ref: 0, Key: e.Key}}
}

// Children implements Source.
func (h *External) Children(ref int64) []Entry {
	var out []Entry
	for _, c := range []int64{2*ref + 1, 2*ref + 2} {
		if c < int64(h.n) {
			e := h.at(int(c))
			out = append(out, Entry{Ref: c, Key: e.Key})
		}
	}
	return out
}

// Payload returns the entry stored at heap position ref (its original
// Ref field, which Roots/Children replace with positions).
func (h *External) Payload(ref int64) Entry { return h.at(int(ref)) }

// Free releases all chunks.
func (h *External) Free() {
	for _, id := range h.ids {
		h.store.Free(id)
	}
	h.ids = nil
	h.n = 0
}

// CheckHeapOrder verifies the max-heap property (meter-free test helper).
func (h *External) CheckHeapOrder() bool {
	for i := 1; i < h.n; i++ {
		if h.store.Peek(h.ids[i/h.chunk])[i%h.chunk].Key >
			h.store.Peek(h.ids[(i-1)/2/h.chunk])[((i-1)/2)%h.chunk].Key {
			return false
		}
	}
	return true
}

// Concat builds the concatenation of Figure 2: an External binary
// max-heap over the roots of the given sources. Selecting from the
// returned ConcatHeap explores root entries through the small heap and
// then descends into the original sources.
func Concat(d *em.Disk, name string, sources []Source) *ConcatHeap {
	f := &Forest{Sources: sources}
	roots := f.Roots()
	return &ConcatHeap{top: NewExternal(d, name, roots), forest: f}
}

// ConcatHeap is the result of Concat: a two-layer heap whose upper layer
// is a materialized binary heap over the forest's roots and whose lower
// layers are the forest's own subtrees.
type ConcatHeap struct {
	top    *External
	forest *Forest
}

// refs ≥ concatLow address forest nodes; below, positions in top.
const concatLow = int64(1) << 62

// Roots implements Source.
func (c *ConcatHeap) Roots() []Entry { return c.top.Roots() }

// Children implements Source. A top-layer node's children are its two
// heap children plus the forest children of the root it carries.
func (c *ConcatHeap) Children(ref int64) []Entry {
	if ref >= concatLow {
		var out []Entry
		for _, e := range c.forest.Children(ref - concatLow) {
			out = append(out, Entry{Ref: e.Ref + concatLow, Key: e.Key})
		}
		return out
	}
	out := c.top.Children(ref)
	carried := c.top.Payload(ref)
	for _, e := range c.forest.Children(carried.Ref) {
		out = append(out, Entry{Ref: e.Ref + concatLow, Key: e.Key})
	}
	return out
}

// Free releases the materialized top layer.
func (c *ConcatHeap) Free() { c.top.Free() }

// TopKeys is a convenience for tests: the t largest keys of src, sorted
// descending.
func TopKeys(src Source, t int) []float64 {
	es := SelectTop(src, t)
	keys := make([]float64, len(es))
	for i, e := range es {
		keys[i] = e.Key
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(keys)))
	return keys
}
