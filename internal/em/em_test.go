package em

import (
	"testing"
	"testing/quick"
)

type rec struct {
	words int
	tag   int
}

func recStore(d *Disk) *Store[rec] {
	return NewStore(d, "rec", func(r rec) int { return r.words })
}

func TestConfigDefaults(t *testing.T) {
	d := NewDisk(Config{})
	if d.B() != DefaultB || d.M() != DefaultM {
		t.Fatalf("defaults: B=%d M=%d", d.B(), d.M())
	}
	d = NewDisk(Config{B: 100, M: 50})
	if d.M() != 200 {
		t.Fatalf("M floor: got %d, want 2B=200", d.M())
	}
	if d.Frames() != 2 {
		t.Fatalf("frames: got %d, want 2", d.Frames())
	}
}

func TestSpanFor(t *testing.T) {
	d := NewDisk(Config{B: 16, M: 64})
	cases := []struct{ words, span int }{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3},
	}
	for _, c := range cases {
		if got := d.SpanFor(c.words); got != c.span {
			t.Errorf("SpanFor(%d)=%d, want %d", c.words, got, c.span)
		}
	}
}

func TestAllocChargesNoRead(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64})
	s := recStore(d)
	s.Alloc(rec{words: 8})
	st := d.Stats()
	if st.Reads != 0 {
		t.Fatalf("fresh alloc charged %d reads", st.Reads)
	}
	if st.Allocs != 1 || st.BlocksLive != 1 {
		t.Fatalf("stats after alloc: %+v", st)
	}
}

func TestReadHitMissAccounting(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 16}) // 2 frames
	s := recStore(d)
	a := s.Alloc(rec{words: 8, tag: 1})
	b := s.Alloc(rec{words: 8, tag: 2})
	c := s.Alloc(rec{words: 8, tag: 3}) // evicts a (dirty -> 1 write)

	base := d.Stats()
	s.Read(b) // hit
	s.Read(c) // hit
	if got := d.Stats().Sub(base); got.Reads != 0 {
		t.Fatalf("hits charged %d reads", got.Reads)
	}
	s.Read(a) // miss: 1 read, evicts one dirty resident -> 1 write
	got := d.Stats().Sub(base)
	if got.Reads != 1 {
		t.Fatalf("miss charged %d reads, want 1", got.Reads)
	}
	if got.Writes != 1 {
		t.Fatalf("eviction of dirty resident charged %d writes, want 1", got.Writes)
	}
}

func TestWriteThrough(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64, WriteThrough: true})
	s := recStore(d)
	h := s.Alloc(rec{words: 8})
	base := d.Stats()
	s.Write(h, rec{words: 8, tag: 9})
	got := d.Stats().Sub(base)
	if got.Writes != 1 {
		t.Fatalf("write-through write charged %d writes, want 1", got.Writes)
	}
	d.DropCache()
	if extra := d.Stats().Sub(base).Writes; extra != 1 {
		t.Fatalf("drop-cache double-charged writes: %d", extra)
	}
}

func TestMultiBlockObjectCosts(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64}) // 8 frames
	s := recStore(d)
	h := s.Alloc(rec{words: 20}) // span 3
	d.DropCache()
	base := d.Stats()
	s.Read(h)
	if got := d.Stats().Sub(base).Reads; got != 3 {
		t.Fatalf("3-block read charged %d reads", got)
	}
}

func TestObjectLargerThanMemoryStreams(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 16}) // 2 frames
	s := recStore(d)
	h := s.Alloc(rec{words: 80}) // span 10 > frames
	base := d.Stats()
	s.Read(h)
	s.Read(h) // not cacheable: charged again
	if got := d.Stats().Sub(base).Reads; got != 20 {
		t.Fatalf("streamed reads charged %d, want 20", got)
	}
}

func TestResizeTracksSpace(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 640})
	s := recStore(d)
	h := s.Alloc(rec{words: 8})
	if d.Stats().BlocksLive != 1 {
		t.Fatalf("live=%d", d.Stats().BlocksLive)
	}
	s.Write(h, rec{words: 24})
	if d.Stats().BlocksLive != 3 {
		t.Fatalf("after grow live=%d, want 3", d.Stats().BlocksLive)
	}
	s.Write(h, rec{words: 4})
	if d.Stats().BlocksLive != 1 {
		t.Fatalf("after shrink live=%d, want 1", d.Stats().BlocksLive)
	}
	if d.Stats().BlocksPeak != 3 {
		t.Fatalf("peak=%d, want 3", d.Stats().BlocksPeak)
	}
	s.Free(h)
	if d.Stats().BlocksLive != 0 {
		t.Fatalf("after free live=%d", d.Stats().BlocksLive)
	}
}

func TestFreeEvictsResident(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64})
	s := recStore(d)
	h := s.Alloc(rec{words: 8})
	s.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("read of freed handle did not panic")
		}
	}()
	s.Read(h)
}

func TestUpdateReadModifyWrite(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64})
	s := recStore(d)
	h := s.Alloc(rec{words: 8, tag: 1})
	s.Update(h, func(r *rec) { r.tag = 42 })
	if got := s.Peek(h).tag; got != 42 {
		t.Fatalf("update lost: tag=%d", got)
	}
}

func TestResetMeterKeepsSpace(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64})
	s := recStore(d)
	s.Alloc(rec{words: 8})
	d.DropCache()
	d.ResetMeter()
	st := d.Stats()
	if st.Reads != 0 || st.Writes != 0 || st.Allocs != 0 {
		t.Fatalf("meter not reset: %+v", st)
	}
	if st.BlocksLive != 1 {
		t.Fatalf("space lost on reset: %+v", st)
	}
}

func TestLRUOrderIsRecency(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 24}) // 3 frames
	s := recStore(d)
	a := s.Alloc(rec{words: 8, tag: 1})
	b := s.Alloc(rec{words: 8, tag: 2})
	c := s.Alloc(rec{words: 8, tag: 3})
	s.Read(a) // recency: a, c, b
	base := d.Stats()
	s.Alloc(rec{words: 8, tag: 4}) // evicts b
	s.Read(a)
	s.Read(c)
	if got := d.Stats().Sub(base).Reads; got != 0 {
		t.Fatalf("a/c should be resident, charged %d reads", got)
	}
	s.Read(b)
	if got := d.Stats().Sub(base).Reads; got != 1 {
		t.Fatalf("b should have been evicted, charged %d reads", got)
	}
}

func TestTwoStoresShareOnePool(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 16}) // 2 frames
	s1 := recStore(d)
	s2 := recStore(d)
	a := s1.Alloc(rec{words: 8})
	s2.Alloc(rec{words: 8})
	s2.Alloc(rec{words: 8}) // a evicted
	base := d.Stats()
	s1.Read(a)
	if got := d.Stats().Sub(base).Reads; got != 1 {
		t.Fatalf("cross-store eviction missing: %d reads", got)
	}
}

func TestGrowWhileResidentEvictsOthers(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 32}) // 4 frames
	s := recStore(d)
	a := s.Alloc(rec{words: 8})
	bh := s.Alloc(rec{words: 8})
	c := s.Alloc(rec{words: 8})
	// Grow a to 3 blocks while resident: b or c must be evicted to make
	// room, but a itself must survive.
	s.Write(a, rec{words: 24})
	base := d.Stats()
	s.Read(a)
	if got := d.Stats().Sub(base).Reads; got != 0 {
		t.Fatalf("grown object was evicted by its own growth: %d reads", got)
	}
	// At most one of b, c can still be resident (4 frames, a takes 3).
	s.Read(bh)
	s.Read(c)
	if got := d.Stats().Sub(base).Reads; got < 1 {
		t.Fatalf("no eviction happened for growth: %d reads", got)
	}
}

func TestPeekChargesNothing(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 16})
	s := recStore(d)
	h := s.Alloc(rec{words: 8})
	d.DropCache()
	base := d.Stats()
	s.Peek(h)
	if got := d.Stats().Sub(base); got.Reads != 0 || got.Writes != 0 {
		t.Fatalf("peek charged I/O: %+v", got)
	}
}

func TestStatsSubAndIOs(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4, BlocksLive: 7, BlocksPeak: 9}
	b := Stats{Reads: 3, Writes: 1}
	got := a.Sub(b)
	if got.Reads != 7 || got.Writes != 3 || got.IOs() != 10 {
		t.Fatalf("sub: %+v", got)
	}
	if got.BlocksLive != 7 || got.BlocksPeak != 9 {
		t.Fatalf("sub dropped gauges: %+v", got)
	}
}

// Property: space accounting never drifts — after any interleaving of
// alloc/resize/free, BlocksLive equals the sum of spans of live objects.
func TestQuickSpaceAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDisk(Config{B: 8, M: 64})
		s := recStore(d)
		live := map[Handle]int{}
		for _, op := range ops {
			words := int(op%40) + 1
			switch {
			case op%3 == 0 || len(live) == 0:
				h := s.Alloc(rec{words: words})
				live[h] = d.SpanFor(words)
			case op%3 == 1:
				for h := range live {
					s.Write(h, rec{words: words})
					live[h] = d.SpanFor(words)
					break
				}
			default:
				for h := range live {
					s.Free(h)
					delete(live, h)
					break
				}
			}
		}
		var want int64
		for _, sp := range live {
			want += int64(sp)
		}
		return d.Stats().BlocksLive == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the meter is monotone — reads and writes never decrease.
func TestQuickMeterMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDisk(Config{B: 8, M: 16})
		s := recStore(d)
		var hs []Handle
		prev := d.Stats()
		for _, op := range ops {
			switch {
			case op%4 == 0 || len(hs) == 0:
				hs = append(hs, s.Alloc(rec{words: int(op%20) + 1}))
			case op%4 == 1:
				s.Read(hs[int(op)%len(hs)])
			case op%4 == 2:
				s.Write(hs[int(op)%len(hs)], rec{words: int(op%20) + 1})
			default:
				d.DropCache()
			}
			cur := d.Stats()
			if cur.Reads < prev.Reads || cur.Writes < prev.Writes {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStoreReadHit(b *testing.B) {
	d := NewDisk(Config{B: 64, M: 1024})
	s := recStore(d)
	h := s.Alloc(rec{words: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(h)
	}
}

func BenchmarkStoreReadMissEvict(b *testing.B) {
	d := NewDisk(Config{B: 64, M: 128}) // 2 frames
	s := recStore(d)
	hs := []Handle{
		s.Alloc(rec{words: 64}), s.Alloc(rec{words: 64}),
		s.Alloc(rec{words: 64}), s.Alloc(rec{words: 64}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(hs[i%len(hs)])
	}
}

// TestDiskResize checks pool re-sizing: shrinking evicts LRU victims
// (charging write-back for dirty objects), the M >= 2B floor applies,
// and the disk keeps serving afterwards.
func TestDiskResize(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64}) // 8 one-block frames
	s := recStore(d)
	var hs []Handle
	for i := 0; i < 8; i++ {
		hs = append(hs, s.Alloc(rec{words: 8, tag: i})) // all resident, dirty
	}
	base := d.Stats()
	d.Resize(32)
	if d.M() != 32 || d.Frames() != 4 {
		t.Fatalf("after Resize(32): M=%d frames=%d, want 32/4", d.M(), d.Frames())
	}
	if w := d.Stats().Writes - base.Writes; w != 4 {
		t.Fatalf("shrink evicted %d dirty writes, want 4", w)
	}
	// Floor: M is clamped to 2B like NewDisk.
	d.Resize(1)
	if d.M() != 16 || d.Frames() != 2 {
		t.Fatalf("after Resize(1): M=%d frames=%d, want floor 16/2", d.M(), d.Frames())
	}
	// Growth is also allowed (the shard layer only shrinks, but the
	// primitive is symmetric) and the disk still serves every object.
	d.Resize(64)
	if d.Frames() != 8 {
		t.Fatalf("after Resize(64): frames=%d, want 8", d.Frames())
	}
	for _, h := range hs {
		if got := s.Read(h); got.words != 8 {
			t.Fatalf("read after resize: %+v", got)
		}
	}
	if live := d.Stats().BlocksLive; live != 8 {
		t.Fatalf("BlocksLive=%d, want 8 (resize must not touch space gauges)", live)
	}
}
