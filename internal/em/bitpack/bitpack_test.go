package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidth(t *testing.T) {
	cases := []struct {
		n uint64
		w int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := Width(c.n); got != c.w {
			t.Errorf("Width(%d)=%d, want %d", c.n, got, c.w)
		}
	}
}

func TestRoundTripFixedWidth(t *testing.T) {
	for _, width := range []int{1, 3, 7, 8, 13, 31, 32, 33, 63, 64} {
		w := NewWriter()
		var vals []uint64
		rng := rand.New(rand.NewSource(int64(width)))
		mask := ^uint64(0)
		if width < 64 {
			mask = (1 << uint(width)) - 1
		}
		for i := 0; i < 100; i++ {
			v := rng.Uint64() & mask
			vals = append(vals, v)
			w.Put(v, width)
		}
		r := NewReader(w.Words())
		for i, want := range vals {
			if got := r.Get(width); got != want {
				t.Fatalf("width %d item %d: got %d want %d", width, i, got, want)
			}
		}
	}
}

func TestRoundTripMixedWidths(t *testing.T) {
	type field struct {
		v     uint64
		width int
	}
	rng := rand.New(rand.NewSource(7))
	var fields []field
	w := NewWriter()
	for i := 0; i < 500; i++ {
		width := rng.Intn(64) + 1
		mask := ^uint64(0)
		if width < 64 {
			mask = (1 << uint(width)) - 1
		}
		f := field{rng.Uint64() & mask, width}
		fields = append(fields, f)
		w.Put(f.v, width)
	}
	r := NewReader(w.Words())
	for i, f := range fields {
		if got := r.Get(f.width); got != f.v {
			t.Fatalf("field %d: got %d want %d (width %d)", i, got, f.v, f.width)
		}
	}
}

func TestBitsCount(t *testing.T) {
	w := NewWriter()
	if w.Bits() != 0 {
		t.Fatalf("empty bits=%d", w.Bits())
	}
	w.Put(1, 5)
	if w.Bits() != 5 {
		t.Fatalf("bits=%d want 5", w.Bits())
	}
	w.Put(1, 64)
	if w.Bits() != 69 {
		t.Fatalf("bits=%d want 69", w.Bits())
	}
	if len(w.Words()) != 2 {
		t.Fatalf("words=%d want 2", len(w.Words()))
	}
}

func TestSeek(t *testing.T) {
	w := NewWriter()
	for i := uint64(0); i < 20; i++ {
		w.Put(i, 9)
	}
	r := NewReader(w.Words())
	r.Seek(9 * 13)
	if got := r.Get(9); got != 13 {
		t.Fatalf("seek read got %d want 13", got)
	}
	if r.Pos() != 9*14 {
		t.Fatalf("pos=%d", r.Pos())
	}
}

func TestPutRejectsOversizedValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized value")
		}
	}()
	NewWriter().Put(8, 3)
}

func TestPutRejectsBadWidth(t *testing.T) {
	for _, width := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for width %d", width)
				}
			}()
			NewWriter().Put(0, width)
		}()
	}
}

func TestReadPastEndPanics(t *testing.T) {
	w := NewWriter()
	w.Put(3, 2)
	r := NewReader(w.Words())
	r.Get(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic reading past end")
		}
	}()
	r.Get(63)
}

// Property: any sequence of (value, width) pairs round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint64, widths []uint8) bool {
		n := len(raw)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter()
		vals := make([]uint64, n)
		ws := make([]int, n)
		for i := 0; i < n; i++ {
			ws[i] = int(widths[i]%64) + 1
			mask := ^uint64(0)
			if ws[i] < 64 {
				mask = (1 << uint(ws[i])) - 1
			}
			vals[i] = raw[i] & mask
			w.Put(vals[i], ws[i])
		}
		r := NewReader(w.Words())
		for i := 0; i < n; i++ {
			if r.Get(ws[i]) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: storage is tight — total words = ceil(total bits / 64).
func TestQuickTightStorage(t *testing.T) {
	f := func(widths []uint8) bool {
		w := NewWriter()
		bits := 0
		for _, x := range widths {
			width := int(x%64) + 1
			w.Put(0, width)
			bits += width
		}
		want := (bits + 63) / 64
		return len(w.Words()) == want && w.Bits() == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	w := NewWriter()
	for i := 0; i < b.N; i++ {
		w.Put(uint64(i)&1023, 10)
	}
}

func BenchmarkGet(b *testing.B) {
	w := NewWriter()
	for i := 0; i < 4096; i++ {
		w.Put(uint64(i)&1023, 10)
	}
	words := w.Words()
	b.ResetTimer()
	r := NewReader(words)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			r.Seek(0)
		}
		r.Get(10)
	}
}
