// Package bitpack encodes sequences of fixed-width unsigned fields into
// machine words. Section 4 of the paper packs a compressed sketch set
// (f·lg l pivots of 2·lg(fl) bits each) and a compressed prefix set
// (f·√B·log_B(fl) entries of O(lg(fl)) bits each) into a single block;
// this package is used to perform that packing for real, so the "fits in
// one block" claims are verified bit-for-bit rather than assumed.
package bitpack

import "fmt"

// Width returns the number of bits needed to represent values in [0, n],
// with a minimum of 1.
func Width(n uint64) int {
	w := 1
	for n >>= 1; n != 0; n >>= 1 {
		w++
	}
	return w
}

// Writer appends fixed- or variable-width fields to a word slice.
type Writer struct {
	words []uint64
	// bit is the write cursor within the last word, 0..63.
	bit int
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Put appends the low width bits of v.
func (w *Writer) Put(v uint64, width int) {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("bitpack: invalid width %d", width))
	}
	if width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("bitpack: value %d does not fit in %d bits", v, width))
	}
	if w.bit == 0 {
		w.words = append(w.words, 0)
	}
	last := len(w.words) - 1
	w.words[last] |= v << uint(w.bit)
	if w.bit+width > 64 {
		w.words = append(w.words, v>>uint(64-w.bit))
	}
	w.bit = (w.bit + width) % 64
}

// Bits returns the number of bits written so far.
func (w *Writer) Bits() int {
	if len(w.words) == 0 {
		return 0
	}
	if w.bit == 0 {
		return len(w.words) * 64
	}
	return (len(w.words)-1)*64 + w.bit
}

// Words returns the packed words. The slice is owned by the writer; copy
// before further Put calls if retention is needed.
func (w *Writer) Words() []uint64 { return w.words }

// Reader extracts fields written by a Writer, in order.
type Reader struct {
	words []uint64
	pos   int // absolute bit position
}

// NewReader reads from the given packed words.
func NewReader(words []uint64) *Reader { return &Reader{words: words} }

// Get reads the next width-bit field.
func (r *Reader) Get(width int) uint64 {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("bitpack: invalid width %d", width))
	}
	word, off := r.pos/64, r.pos%64
	if word >= len(r.words) {
		panic("bitpack: read past end")
	}
	v := r.words[word] >> uint(off)
	if off+width > 64 {
		if word+1 >= len(r.words) {
			panic("bitpack: read past end")
		}
		v |= r.words[word+1] << uint(64-off)
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	r.pos += width
	return v
}

// Seek moves the read cursor to an absolute bit position.
func (r *Reader) Seek(bit int) { r.pos = bit }

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }
