// Package em simulates the external-memory (EM) model of Aggarwal and
// Vitter, the cost model in which the paper's bounds are stated.
//
// A machine has M words of internal memory and a disk of unbounded size
// formatted into blocks of B words. An I/O transfers one block between
// disk and memory; CPU computation is free. The package provides:
//
//   - Disk: the simulated device. It owns an I/O meter and a buffer pool
//     of M/B frames with LRU replacement. Object payloads live in Go
//     memory, but every access to an object that is not resident in the
//     pool charges one read I/O per block the object spans, and every
//     eviction of a dirty object charges one write I/O per block —
//     exactly the accounting of the model.
//   - Store[T]: a typed object store bound to a Disk. Each object reports
//     its size in words; the store derives the number of blocks it spans
//     and enforces capacity invariants declared by callers.
//
// All structures in this repository allocate their nodes through stores
// on a shared Disk so one experiment has a single, coherent I/O meter.
package em

import (
	"container/list"
	"fmt"
)

// Word is the machine word of the model. The paper requires a word of
// Ω(lg n) bits; 64 bits comfortably covers every input size used here.
type Word = uint64

// DefaultB and DefaultM are the block and memory sizes (in words) used
// when a Config field is zero. M = Ω(B) per the model; 16 frames is small
// enough that buffer-pool hits do not mask the asymptotic I/O behaviour.
const (
	DefaultB = 64
	DefaultM = 16 * DefaultB
)

// Config describes an EM machine.
type Config struct {
	// B is the block size in words.
	B int
	// M is the memory size in words. The buffer pool has M/B frames.
	M int
	// WriteThrough, if set, charges write I/Os at write time instead of
	// at eviction time. Accounting totals are identical for workloads
	// that eventually evict everything; write-back (the default) matches
	// the model's "write B words in memory to a disk block" phrasing.
	WriteThrough bool
}

func (c Config) withDefaults() Config {
	if c.B <= 0 {
		c.B = DefaultB
	}
	if c.M <= 0 {
		c.M = DefaultM
	}
	if c.M < 2*c.B {
		// The model demands M ≥ 2B (footnote 2 of the paper).
		c.M = 2 * c.B
	}
	return c
}

// Stats is a snapshot of the I/O meter.
type Stats struct {
	// Reads counts block transfers from disk to memory.
	Reads int64
	// Writes counts block transfers from memory to disk.
	Writes int64
	// Allocs and Frees count object (not block) lifecycle events.
	Allocs int64
	Frees  int64
	// BlocksLive is the number of disk blocks currently occupied.
	BlocksLive int64
	// BlocksPeak is the high-water mark of BlocksLive.
	BlocksPeak int64
}

// IOs returns total block transfers (reads + writes).
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Sub returns the delta s - t, leaving the space gauges from s.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:      s.Reads - t.Reads,
		Writes:     s.Writes - t.Writes,
		Allocs:     s.Allocs - t.Allocs,
		Frees:      s.Frees - t.Frees,
		BlocksLive: s.BlocksLive,
		BlocksPeak: s.BlocksPeak,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d ios=%d live=%d peak=%d",
		s.Reads, s.Writes, s.IOs(), s.BlocksLive, s.BlocksPeak)
}

// Handle identifies an object within its Store.
type Handle int64

// NilHandle is the zero, never-allocated handle.
const NilHandle Handle = 0

// resident is one buffer-pool entry: an object currently in memory.
type resident struct {
	key   poolKey
	span  int // blocks occupied while resident
	dirty bool
}

type poolKey struct {
	store  int32
	handle Handle
}

// Disk is a simulated EM machine: meter + buffer pool.
//
// Disk is not safe for concurrent use; the model is sequential and so are
// all algorithms in the paper. Wrap with external locking if needed.
type Disk struct {
	cfg    Config
	stats  Stats
	frames int // pool capacity in blocks

	used    int // blocks currently resident
	lru     *list.List
	present map[poolKey]*list.Element

	nextStore int32
	spanOf    map[poolKey]int // live object spans, for space accounting
}

// NewDisk creates a Disk for the given configuration.
func NewDisk(cfg Config) *Disk {
	cfg = cfg.withDefaults()
	return &Disk{
		cfg:     cfg,
		frames:  cfg.M / cfg.B,
		lru:     list.New(),
		present: make(map[poolKey]*list.Element),
		spanOf:  make(map[poolKey]int),
	}
}

// B returns the block size in words.
func (d *Disk) B() int { return d.cfg.B }

// M returns the memory size in words.
func (d *Disk) M() int { return d.cfg.M }

// Frames returns the buffer-pool capacity in blocks.
func (d *Disk) Frames() int { return d.frames }

// Stats returns a snapshot of the I/O meter.
func (d *Disk) Stats() Stats { return d.stats }

// Resize re-derives the buffer pool for a new memory budget of m
// words, applying the same floor as NewDisk (M ≥ 2B, footnote 2 of
// the paper). Shrinking evicts LRU victims until residency fits the
// new frame count, charging write I/Os for dirty evictions exactly as
// any other eviction would — the model's cost of giving memory back.
// The shard maintenance loop uses it to reclaim pools left
// over-provisioned by fleet growth between rebuilds.
func (d *Disk) Resize(m int) {
	if m < 2*d.cfg.B {
		m = 2 * d.cfg.B
	}
	d.cfg.M = m
	d.frames = m / d.cfg.B
	for d.used > d.frames && d.lru.Len() > 0 {
		d.evictOne()
	}
}

// ResetMeter zeroes the read/write/alloc/free counters, keeping space
// gauges. Used by benches to separate build cost from query cost.
func (d *Disk) ResetMeter() {
	d.stats.Reads, d.stats.Writes = 0, 0
	d.stats.Allocs, d.stats.Frees = 0, 0
}

// DropCache evicts everything from the buffer pool (writing back dirty
// objects), so the next access to any object is a cold read. Benches call
// this to measure cold-cache query costs.
func (d *Disk) DropCache() {
	for d.lru.Len() > 0 {
		d.evictOne()
	}
}

// SpanFor returns how many blocks an object of size words occupies.
func (d *Disk) SpanFor(words int) int {
	if words <= 0 {
		return 1
	}
	return (words + d.cfg.B - 1) / d.cfg.B
}

func (d *Disk) evictOne() {
	back := d.lru.Back()
	if back == nil {
		panic("em: buffer pool empty during eviction")
	}
	r := back.Value.(*resident)
	if r.dirty && !d.cfg.WriteThrough {
		d.stats.Writes += int64(r.span)
	}
	d.used -= r.span
	delete(d.present, r.key)
	d.lru.Remove(back)
}

func (d *Disk) ensureRoom(span int) {
	for d.used+span > d.frames && d.lru.Len() > 0 {
		d.evictOne()
	}
}

// touch makes the object resident, charging read I/Os on a miss and
// write I/Os per the write policy. span is the object's current span;
// dirty marks the access as a mutation.
func (d *Disk) touch(key poolKey, span int, dirty bool) {
	if span > d.frames {
		// An object larger than memory cannot be cached; every access
		// streams it. Charge and do not insert.
		d.stats.Reads += int64(span)
		if dirty {
			d.stats.Writes += int64(span)
		}
		return
	}
	if el, ok := d.present[key]; ok {
		r := el.Value.(*resident)
		if r.span != span {
			// Object grew or shrank while resident; adjust occupancy.
			d.ensureRoomExcept(span-r.span, el)
			d.used += span - r.span
			r.span = span
		}
		if dirty {
			if d.cfg.WriteThrough {
				d.stats.Writes += int64(span)
			} else {
				r.dirty = true
			}
		}
		d.lru.MoveToFront(el)
		return
	}
	d.ensureRoom(span)
	d.stats.Reads += int64(span)
	r := &resident{key: key, span: span}
	if dirty {
		if d.cfg.WriteThrough {
			d.stats.Writes += int64(span)
		} else {
			r.dirty = true
		}
	}
	d.present[key] = d.lru.PushFront(r)
	d.used += span
}

func (d *Disk) ensureRoomExcept(extra int, keep *list.Element) {
	for d.used+extra > d.frames && d.lru.Len() > 1 {
		back := d.lru.Back()
		if back == keep {
			back = back.Prev()
			if back == nil {
				return
			}
		}
		r := back.Value.(*resident)
		if r.dirty && !d.cfg.WriteThrough {
			d.stats.Writes += int64(r.span)
		}
		d.used -= r.span
		delete(d.present, r.key)
		d.lru.Remove(back)
	}
}

// createFresh registers a newly allocated object: it is written in memory
// and will be charged as a write on eviction (write-back) or now
// (write-through). It does not charge a read: the object was produced in
// memory, not loaded.
func (d *Disk) createFresh(key poolKey, span int) {
	d.stats.Allocs++
	d.stats.BlocksLive += int64(span)
	if d.stats.BlocksLive > d.stats.BlocksPeak {
		d.stats.BlocksPeak = d.stats.BlocksLive
	}
	d.spanOf[key] = span
	if span > d.frames {
		d.stats.Writes += int64(span)
		return
	}
	if _, ok := d.present[key]; ok {
		panic("em: double allocation of handle")
	}
	d.ensureRoom(span)
	r := &resident{key: key, span: span, dirty: !d.cfg.WriteThrough}
	if d.cfg.WriteThrough {
		d.stats.Writes += int64(span)
	}
	d.present[key] = d.lru.PushFront(r)
	d.used += span
}

func (d *Disk) resize(key poolKey, span int) {
	old := d.spanOf[key]
	d.spanOf[key] = span
	d.stats.BlocksLive += int64(span - old)
	if d.stats.BlocksLive > d.stats.BlocksPeak {
		d.stats.BlocksPeak = d.stats.BlocksLive
	}
}

func (d *Disk) release(key poolKey) {
	span := d.spanOf[key]
	delete(d.spanOf, key)
	d.stats.Frees++
	d.stats.BlocksLive -= int64(span)
	if el, ok := d.present[key]; ok {
		r := el.Value.(*resident)
		d.used -= r.span
		delete(d.present, key)
		d.lru.Remove(el)
	}
}

// Store is a typed object store on a Disk. The zero value is unusable;
// create stores with NewStore.
type Store[T any] struct {
	disk   *Disk
	id     int32
	name   string
	sizeOf func(T) int
	next   Handle
	objs   map[Handle]T
}

// NewStore registers a store named name on d. sizeOf reports an object's
// size in words; it decides how many blocks (I/Os) each access costs.
func NewStore[T any](d *Disk, name string, sizeOf func(T) int) *Store[T] {
	d.nextStore++
	return &Store[T]{
		disk:   d,
		id:     d.nextStore,
		name:   name,
		sizeOf: sizeOf,
		objs:   make(map[Handle]T),
	}
}

// Disk returns the disk the store is bound to.
func (s *Store[T]) Disk() *Disk { return s.disk }

// Len returns the number of live objects.
func (s *Store[T]) Len() int { return len(s.objs) }

// Alloc stores v as a fresh object and returns its handle.
func (s *Store[T]) Alloc(v T) Handle {
	s.next++
	h := s.next
	s.objs[h] = v
	s.disk.createFresh(poolKey{s.id, h}, s.disk.SpanFor(s.sizeOf(v)))
	return h
}

// Read loads the object (charging I/Os on a pool miss) and returns it.
// The returned value aliases the stored one for pointer-typed T; callers
// that mutate through it must follow with Write to charge the write.
func (s *Store[T]) Read(h Handle) T {
	v, ok := s.objs[h]
	if !ok {
		panic(fmt.Sprintf("em: %s: read of dead handle %d", s.name, h))
	}
	s.disk.touch(poolKey{s.id, h}, s.disk.SpanFor(s.sizeOf(v)), false)
	return v
}

// Write replaces the object's value, charging I/Os per the write policy
// and re-deriving its span from the new size.
func (s *Store[T]) Write(h Handle, v T) {
	if _, ok := s.objs[h]; !ok {
		panic(fmt.Sprintf("em: %s: write of dead handle %d", s.name, h))
	}
	s.objs[h] = v
	key := poolKey{s.id, h}
	span := s.disk.SpanFor(s.sizeOf(v))
	s.disk.resize(key, span)
	s.disk.touch(key, span, true)
}

// Update applies f to the stored object in place; it is Read followed by
// Write with a single pool interaction for each.
func (s *Store[T]) Update(h Handle, f func(*T)) {
	v := s.Read(h)
	f(&v)
	s.Write(h, v)
}

// Free releases the object and its blocks.
func (s *Store[T]) Free(h Handle) {
	if _, ok := s.objs[h]; !ok {
		panic(fmt.Sprintf("em: %s: free of dead handle %d", s.name, h))
	}
	delete(s.objs, h)
	s.disk.release(poolKey{s.id, h})
}

// Peek returns the object without touching the buffer pool or the meter.
// It exists for invariant checkers and debug rendering only; algorithm
// code must use Read.
func (s *Store[T]) Peek(h Handle) T {
	v, ok := s.objs[h]
	if !ok {
		panic(fmt.Sprintf("em: %s: peek of dead handle %d", s.name, h))
	}
	return v
}

// Handles returns all live handles in unspecified order (meter-free;
// for checkers and rebuilds that already account their cost).
func (s *Store[T]) Handles() []Handle {
	hs := make([]Handle, 0, len(s.objs))
	for h := range s.objs {
		hs = append(hs, h)
	}
	return hs
}
