package shengtao

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/em"
	"repro/internal/point"
)

func newDisk(b int) *em.Disk { return em.NewDisk(em.Config{B: b, M: 64 * b}) }

func genPoints(n int, seed int64) []point.P {
	rng := rand.New(rand.NewSource(seed))
	xs := rng.Perm(n * 4)
	scores := rng.Perm(n * 4)
	pts := make([]point.P, n)
	for i := 0; i < n; i++ {
		pts[i] = point.P{X: float64(xs[i]), Score: float64(scores[i])}
	}
	return pts
}

func sameSet(a, b []point.P) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[point.P]int{}
	for _, p := range a {
		m[p]++
	}
	for _, p := range b {
		if m[p]--; m[p] < 0 {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	tr := New(newDisk(16), Options{})
	if tr.Len() != 0 {
		t.Fatal("not empty")
	}
	if got := tr.Query(0, 10, 3); got != nil {
		t.Fatalf("query: %v", got)
	}
	if tr.Delete(point.P{X: 1, Score: 2}) {
		t.Fatal("phantom delete")
	}
	if _, ok := tr.SelectApprox(0, 10, 1); ok {
		t.Fatal("select on empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertQueryMatchesBrute(t *testing.T) {
	pts := genPoints(1500, 1)
	tr := Bulk(newDisk(16), Options{K: 64}, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 6000
		x2 := x1 + rng.Float64()*3000
		k := rng.Intn(64) + 1
		got := tr.Query(x1, x2, k)
		want := point.TopK(pts, x1, x2, k)
		if !sameSet(got, want) {
			t.Fatalf("query %d: got %d want %d", i, len(got), len(want))
		}
	}
}

func TestSelectApproxExactRank(t *testing.T) {
	pts := genPoints(800, 3)
	tr := Bulk(newDisk(16), Options{K: 50}, pts)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		x1 := rng.Float64() * 3000
		x2 := x1 + rng.Float64()*2000
		k := rng.Intn(50) + 1
		got, ok := tr.SelectApprox(x1, x2, k)
		want := point.TopK(pts, x1, x2, k)
		if !ok {
			if len(want) >= k {
				t.Fatalf("select failed with %d in range", len(want))
			}
			continue
		}
		if got != want[len(want)-1] || len(want) != k {
			t.Fatalf("select k=%d got %v want %v", k, got, want[len(want)-1])
		}
	}
}

func TestDeleteAndRefill(t *testing.T) {
	pts := genPoints(900, 5)
	tr := Bulk(newDisk(16), Options{K: 32}, pts)
	var live []point.P
	for i, p := range pts {
		if i%2 == 0 {
			if !tr.Delete(p) {
				t.Fatalf("delete %v", p)
			}
		} else {
			live = append(live, p)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		x1 := rng.Float64() * 3600
		x2 := x1 + rng.Float64()*2000
		k := rng.Intn(32) + 1
		if !sameSet(tr.Query(x1, x2, k), point.TopK(live, x1, x2, k)) {
			t.Fatalf("post-delete query %d mismatch", i)
		}
	}
}

func TestCount(t *testing.T) {
	pts := genPoints(700, 7)
	tr := Bulk(newDisk(16), Options{}, pts)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 2800
		x2 := x1 + rng.Float64()*1500
		want := 0
		for _, p := range pts {
			if p.In(x1, x2) {
				want++
			}
		}
		if got := tr.Count(x1, x2); got != want {
			t.Fatalf("count [%v,%v]=%d want %d", x1, x2, got, want)
		}
	}
}

func TestKTooLargePanics(t *testing.T) {
	tr := Bulk(newDisk(16), Options{K: 8}, genPoints(50, 9))
	defer func() {
		if recover() == nil {
			t.Fatal("k > K accepted")
		}
	}()
	tr.Query(0, 1000, 9)
}

func TestDuplicateXPanics(t *testing.T) {
	tr := New(newDisk(16), Options{})
	tr.Insert(point.P{X: 3, Score: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate accepted")
		}
	}()
	tr.Insert(point.P{X: 3, Score: 2})
}

func TestUpdateCostGrowsWithK(t *testing.T) {
	// The baseline's defining property (E2): update cost scales with the
	// list capacity K, unlike Theorem 1's structure.
	cost := func(k int) float64 {
		d := em.NewDisk(em.Config{B: 32, M: 16 * 32})
		tr := New(d, Options{K: k})
		pts := genPoints(2000, 10)
		for _, p := range pts[:1000] {
			tr.Insert(p)
		}
		d.DropCache()
		base := d.Stats()
		for _, p := range pts[1000:] {
			tr.Insert(p)
		}
		return float64(d.Stats().Sub(base).IOs()) / 1000
	}
	small, large := cost(8), cost(256)
	if large < 1.5*small {
		t.Fatalf("update cost did not grow with K: %.1f vs %.1f", small, large)
	}
	t.Logf("amortized insert: K=8 → %.1f I/Os, K=256 → %.1f I/Os", small, large)
}

func TestMixedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(newDisk(16), Options{K: 24})
	var live []point.P
	usedX := map[float64]bool{}
	for op := 0; op < 2500; op++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			p := point.P{X: rng.Float64() * 1e4, Score: rng.Float64() * 1e6}
			if usedX[p.X] {
				continue
			}
			usedX[p.X] = true
			live = append(live, p)
			tr.Insert(p)
		} else {
			j := rng.Intn(len(live))
			p := live[j]
			live = append(live[:j], live[j+1:]...)
			delete(usedX, p.X)
			tr.Delete(p)
		}
		if op%333 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
		if op%100 == 50 {
			x1 := rng.Float64() * 1e4
			x2 := x1 + rng.Float64()*4e3
			k := rng.Intn(24) + 1
			if !sameSet(tr.Query(x1, x2, k), point.TopK(live, x1, x2, k)) {
				t.Fatalf("op %d query mismatch", op)
			}
		}
	}
}

// Property: model equivalence under arbitrary interleavings.
func TestQuickModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 120 {
			ops = ops[:120]
		}
		rng := rand.New(rand.NewSource(seed))
		tr := New(newDisk(8), Options{K: 16, Fanout: 4, LeafCap: 6})
		var live []point.P
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				p := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[p.X] {
					continue
				}
				usedX[p.X] = true
				live = append(live, p)
				tr.Insert(p)
			} else {
				j := int(op/3) % len(live)
				p := live[j]
				live = append(live[:j], live[j+1:]...)
				delete(usedX, p.X)
				if !tr.Delete(p) {
					return false
				}
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 30000)
		x2 := x1 + 20000
		k := int(abs%16) + 1
		return sameSet(tr.Query(x1, x2, k), point.TopK(live, x1, x2, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBaselineInsert(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	tr := New(d, Options{K: 64})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(point.P{X: rng.Float64() * 1e9, Score: rng.Float64()})
	}
}

func BenchmarkBaselineQuery(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	tr := Bulk(d, Options{K: 64}, genPoints(20000, 1))
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 4e4
		tr.Query(x1, x1+1e4, 32)
	}
}
