// Package shengtao provides the prior-art structure the paper improves
// on and composes with: the dynamic top-k/approximate-range-k-selection
// structure of Sheng and Tao (PODS 2012), reference [14].
//
// [14] is a separate paper; per DESIGN.md (substitution 3) this package
// is a faithful *interface and cost-profile* reconstruction rather than
// a line-by-line port: a weight-tracked search tree over x-coordinates
// in which every internal node stores, per child, the top-K scores of
// that child's subtree ("top-lists"). It supports:
//
//   - Query(q, k): exact top-k range reporting for k ≤ K;
//   - SelectApprox(q, k): range k-selection (exact, hence trivially
//     within any approximation bound) for k ≤ K;
//
// with O(log_B n) node visits per query and updates that rewrite one
// node record per level — each record is Θ(fK/B) blocks, so the
// amortized update cost is ω(log_B n) and grows with K, reproducing the
// super-logarithmic update profile that Theorem 1 eliminates (the E2
// experiment measures exactly this gap). The roles [14] plays in the
// paper are all served: comparison baseline (§1.1), leaf-level
// approximate range k-selection structure (§3.3, K = c2·l there), and
// the full fallback structure for the B ≥ lg⁶n regime (K = B·lg n
// there, since k ≥ B·lg n is handled by the §2 structure).
package shengtao

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/em"
	"repro/internal/point"
)

// Options configure the tree.
type Options struct {
	// K is the top-list capacity: queries support k ≤ K.
	K int
	// Fanout is the maximum children per internal node.
	Fanout int
	// LeafCap is the maximum points per leaf.
	LeafCap int
}

func (o Options) withDefaults(d *em.Disk) Options {
	if o.K <= 0 {
		o.K = d.B()
	}
	if o.Fanout <= 0 {
		o.Fanout = 8
	}
	if o.Fanout < 4 {
		o.Fanout = 4
	}
	if o.LeafCap <= 0 {
		o.LeafCap = d.B()
	}
	if o.LeafCap < 4 {
		o.LeafCap = 4
	}
	return o
}

type node struct {
	leaf     bool
	parent   em.Handle
	childIdx int
	lo, hi   float64
	weight   int // live points in the subtree

	// internal nodes
	kids  []em.Handle
	kidLo []float64
	lists [][]point.P // per child: top-K of the child's subtree, score-desc

	// leaves
	pts []point.P // sorted by x
}

func (n *node) size() int {
	s := 8 + 2*len(n.kids) + point.WordSize*len(n.pts)
	for _, l := range n.lists {
		s += 1 + point.WordSize*len(l)
	}
	return s
}

// Tree is the [14]-style structure. Create with New or Bulk.
type Tree struct {
	d     *em.Disk
	opt   Options
	store *em.Store[*node]
	root  em.Handle
	n     int
}

// New returns an empty tree.
func New(d *em.Disk, opt Options) *Tree {
	opt = opt.withDefaults(d)
	t := &Tree{
		d: d, opt: opt,
		store: em.NewStore(d, "st.node", func(n *node) int { return n.size() }),
	}
	t.root = t.store.Alloc(&node{leaf: true, lo: math.Inf(-1), hi: math.Inf(1)})
	return t
}

// Bulk builds a tree over pts.
func Bulk(d *em.Disk, opt Options, pts []point.P) *Tree {
	t := New(d, opt)
	for _, p := range pts {
		t.Insert(p)
	}
	return t
}

// Len returns the number of live points.
func (t *Tree) Len() int { return t.n }

// Free releases every node of the tree.
func (t *Tree) Free() {
	var rec func(h em.Handle)
	rec = func(h em.Handle) {
		nd := t.store.Read(h)
		for _, kid := range nd.kids {
			rec(kid)
		}
		t.store.Free(h)
	}
	rec(t.root)
	t.root = em.NilHandle
	t.n = 0
}

// K returns the top-list capacity (max supported query k).
func (t *Tree) K() int { return t.opt.K }

// MaxK is an alias used by callers choosing a regime.
func (t *Tree) MaxK() int { return t.opt.K }

func routeKid(nd *node, x float64) int {
	lo, hi := 0, len(nd.kids)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if nd.kidLo[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// topOf derives a node's subtree top-K list from its own record.
func (t *Tree) topOf(nd *node) []point.P {
	var all []point.P
	if nd.leaf {
		all = append(all, nd.pts...)
	} else {
		for _, l := range nd.lists {
			all = append(all, l...)
		}
	}
	point.SortByScoreDesc(all)
	if len(all) > t.opt.K {
		all = all[:t.opt.K]
	}
	return append([]point.P(nil), all...)
}

// refreshUp recomputes the top-list for h inside each of its ancestors,
// bottom-up.
func (t *Tree) refreshUp(h em.Handle) {
	for {
		nd := t.store.Read(h)
		if nd.parent == em.NilHandle {
			return
		}
		top := t.topOf(nd)
		par := t.store.Read(nd.parent)
		par.lists[nd.childIdx] = top
		t.store.Write(nd.parent, par)
		h = nd.parent
	}
}

// Insert adds p. It panics on a duplicate x-coordinate (the input is a
// set of reals).
func (t *Tree) Insert(p point.P) {
	h := t.root
	for {
		nd := t.store.Read(h)
		nd.weight++
		if nd.leaf {
			i := sort.Search(len(nd.pts), func(i int) bool { return nd.pts[i].X >= p.X })
			if i < len(nd.pts) && nd.pts[i].X == p.X {
				panic(fmt.Sprintf("shengtao: duplicate x %v", p.X))
			}
			nd.pts = append(nd.pts, point.P{})
			copy(nd.pts[i+1:], nd.pts[i:])
			nd.pts[i] = p
			t.store.Write(h, nd)
			break
		}
		t.store.Write(h, nd)
		h = nd.kids[routeKid(nd, p.X)]
	}
	t.n++
	t.refreshUp(h)
	t.splitIfNeeded(h)
}

// Delete removes p, reporting whether it was present.
func (t *Tree) Delete(p point.P) bool {
	// Locate first (so weights are only changed when p exists).
	h := t.root
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			found := false
			for i, q := range nd.pts {
				if q.X == p.X && q.Score == p.Score {
					nd.pts = append(nd.pts[:i], nd.pts[i+1:]...)
					found = true
					break
				}
			}
			if !found {
				return false
			}
			nd.weight--
			t.store.Write(h, nd)
			break
		}
		h = nd.kids[routeKid(nd, p.X)]
	}
	// Decrement weights on the path and refresh lists.
	leaf := h
	nd := t.store.Read(h)
	for nd.parent != em.NilHandle {
		par := t.store.Read(nd.parent)
		par.weight--
		t.store.Write(nd.parent, par)
		nd = par
	}
	t.n--
	t.refreshUp(leaf)
	return true
}

// splitIfNeeded splits an overfull leaf and cascades splits upward.
func (t *Tree) splitIfNeeded(h em.Handle) {
	for h != em.NilHandle {
		nd := t.store.Read(h)
		over := (nd.leaf && len(nd.pts) > t.opt.LeafCap) ||
			(!nd.leaf && len(nd.kids) > t.opt.Fanout)
		if !over {
			return
		}
		right := &node{leaf: nd.leaf, hi: nd.hi}
		if nd.leaf {
			mid := len(nd.pts) / 2
			right.pts = append([]point.P(nil), nd.pts[mid:]...)
			right.lo = right.pts[0].X
			nd.pts = nd.pts[:mid]
			right.weight = len(right.pts)
			nd.weight = len(nd.pts)
		} else {
			mid := len(nd.kids) / 2
			right.kids = append([]em.Handle(nil), nd.kids[mid:]...)
			right.kidLo = append([]float64(nil), nd.kidLo[mid:]...)
			right.lists = append([][]point.P(nil), nd.lists[mid:]...)
			right.lo = right.kidLo[0]
			nd.kids = nd.kids[:mid]
			nd.kidLo = nd.kidLo[:mid]
			nd.lists = nd.lists[:mid]
			w := 0
			for _, l := range right.kids {
				cw := t.store.Read(l).weight
				w += cw
			}
			right.weight = w
			nd.weight -= w
		}
		nd.hi = right.lo
		rh := t.store.Alloc(right)
		if !right.leaf {
			for j, kid := range right.kids {
				t.store.Update(kid, func(c **node) {
					(*c).parent = rh
					(*c).childIdx = j
				})
			}
		}

		if nd.parent == em.NilHandle {
			// Grow a new root.
			parent := &node{
				lo: math.Inf(-1), hi: math.Inf(1),
				weight: nd.weight + right.weight,
				kids:   []em.Handle{h, rh},
				kidLo:  []float64{math.Inf(-1), right.lo},
			}
			ph := t.store.Alloc(parent)
			nd.parent, nd.childIdx = ph, 0
			t.store.Write(h, nd)
			t.store.Update(rh, func(c **node) {
				(*c).parent, (*c).childIdx = ph, 1
			})
			parent.lists = [][]point.P{t.topOf(t.store.Read(h)), t.topOf(t.store.Read(rh))}
			t.store.Write(ph, parent)
			t.root = ph
			return
		}

		par := t.store.Read(nd.parent)
		j := nd.childIdx
		par.kids = append(par.kids, em.NilHandle)
		par.kidLo = append(par.kidLo, 0)
		par.lists = append(par.lists, nil)
		copy(par.kids[j+2:], par.kids[j+1:])
		copy(par.kidLo[j+2:], par.kidLo[j+1:])
		copy(par.lists[j+2:], par.lists[j+1:])
		par.kids[j+1] = rh
		par.kidLo[j+1] = right.lo
		t.store.Write(nd.parent, par)
		t.store.Write(h, nd)
		t.store.Update(rh, func(c **node) { (*c).parent = nd.parent })
		// Reindex children right of j and refresh both halves' lists.
		for jj := j + 1; jj < len(par.kids); jj++ {
			t.store.Update(par.kids[jj], func(c **node) { (*c).childIdx = jj })
		}
		par = t.store.Read(nd.parent)
		par.lists[j] = t.topOf(t.store.Read(h))
		par.lists[j+1] = t.topOf(t.store.Read(rh))
		t.store.Write(nd.parent, par)

		h = nd.parent
	}
}

// candidates collects the query-range candidate points: the full
// top-lists of every canonical child (maximal subtree inside q) plus the
// in-range points of the ≤ 2 boundary leaves. For k ≤ K this superset
// provably contains the top k of S ∩ q.
func (t *Tree) candidates(x1, x2 float64) []point.P {
	var out []point.P
	var walk func(h em.Handle)
	walk = func(h em.Handle) {
		nd := t.store.Read(h)
		if nd.leaf {
			for _, p := range nd.pts {
				if p.In(x1, x2) {
					out = append(out, p)
				}
			}
			return
		}
		for j, kid := range nd.kids {
			clo := nd.kidLo[j]
			chi := nd.hi
			if j+1 < len(nd.kids) {
				chi = nd.kidLo[j+1]
			}
			if chi <= x1 || clo > x2 {
				continue
			}
			if clo >= x1 && chi <= math.Nextafter(x2, math.Inf(1)) {
				out = append(out, nd.lists[j]...) // canonical: list suffices
				continue
			}
			walk(kid) // boundary child: recurse
		}
	}
	walk(t.root)
	return out
}

// Query returns the top k points in [x1, x2] by score, descending.
// k must be ≤ K().
func (t *Tree) Query(x1, x2 float64, k int) []point.P {
	if k <= 0 || x1 > x2 || t.n == 0 {
		return nil
	}
	if k > t.opt.K {
		panic(fmt.Sprintf("shengtao: k=%d exceeds list capacity K=%d", k, t.opt.K))
	}
	cands := t.candidates(x1, x2)
	point.SortByScoreDesc(cands)
	if k < len(cands) {
		cands = cands[:k]
	}
	return cands
}

// SelectApprox performs range k-selection: it returns a point e of S∩q
// such that between k and O(k) points of S∩q have score ≥ score(e).
// This reconstruction is exact (the returned point has rank exactly k),
// which trivially satisfies any approximation bound. ok is false when
// |S∩q| < k. k must be ≤ K().
func (t *Tree) SelectApprox(x1, x2 float64, k int) (point.P, bool) {
	if k <= 0 || x1 > x2 {
		return point.P{}, false
	}
	if k > t.opt.K {
		panic(fmt.Sprintf("shengtao: k=%d exceeds list capacity K=%d", k, t.opt.K))
	}
	cands := t.candidates(x1, x2)
	if len(cands) < k {
		return point.P{}, false
	}
	point.SortByScoreDesc(cands)
	return cands[k-1], true
}

// All returns every live point (full scan; used by callers that rebuild
// or verify, costing O(n/B) I/Os which such callers amortize).
func (t *Tree) All() []point.P {
	var out []point.P
	var rec func(h em.Handle)
	rec = func(h em.Handle) {
		nd := t.store.Read(h)
		if nd.leaf {
			out = append(out, nd.pts...)
			return
		}
		for _, kid := range nd.kids {
			rec(kid)
		}
	}
	rec(t.root)
	return out
}

// Count returns |S ∩ [x1,x2]| in O(log_B n) node visits using subtree
// weights.
func (t *Tree) Count(x1, x2 float64) int {
	if x1 > x2 {
		return 0
	}
	total := 0
	var walk func(h em.Handle)
	walk = func(h em.Handle) {
		nd := t.store.Read(h)
		if nd.leaf {
			for _, p := range nd.pts {
				if p.In(x1, x2) {
					total++
				}
			}
			return
		}
		for j, kid := range nd.kids {
			clo := nd.kidLo[j]
			chi := nd.hi
			if j+1 < len(nd.kids) {
				chi = nd.kidLo[j+1]
			}
			if chi <= x1 || clo > x2 {
				continue
			}
			if clo >= x1 && chi <= math.Nextafter(x2, math.Inf(1)) {
				total += t.store.Read(kid).weight
				continue
			}
			walk(kid)
		}
	}
	walk(t.root)
	return total
}

// CheckInvariants validates shape, weights, list contents and ordering
// (meter-free test helper).
func (t *Tree) CheckInvariants() error {
	var rec func(h em.Handle, lo, hi float64) (int, []point.P, error)
	rec = func(h em.Handle, lo, hi float64) (int, []point.P, error) {
		nd := t.store.Peek(h)
		if nd.lo != lo || nd.hi != hi {
			return 0, nil, fmt.Errorf("node %d slab [%v,%v) want [%v,%v)", h, nd.lo, nd.hi, lo, hi)
		}
		if nd.leaf {
			for i := 1; i < len(nd.pts); i++ {
				if nd.pts[i-1].X >= nd.pts[i].X {
					return 0, nil, fmt.Errorf("leaf %d x order", h)
				}
			}
			for _, p := range nd.pts {
				if p.X < lo || p.X >= hi {
					return 0, nil, fmt.Errorf("leaf %d point outside slab", h)
				}
			}
			if nd.weight != len(nd.pts) {
				return 0, nil, fmt.Errorf("leaf %d weight %d != %d", h, nd.weight, len(nd.pts))
			}
			return len(nd.pts), append([]point.P(nil), nd.pts...), nil
		}
		total := 0
		var all []point.P
		for j, kid := range nd.kids {
			clo := nd.kidLo[j]
			chi := hi
			if j+1 < len(nd.kids) {
				chi = nd.kidLo[j+1]
			}
			cn := t.store.Peek(kid)
			if cn.parent != h || cn.childIdx != j {
				return 0, nil, fmt.Errorf("node %d kid %d link", h, j)
			}
			w, sub, err := rec(kid, clo, chi)
			if err != nil {
				return 0, nil, err
			}
			total += w
			all = append(all, sub...)
			// lists[j] must be exactly the top-min(K,w) of the subtree.
			point.SortByScoreDesc(sub)
			want := t.opt.K
			if len(sub) < want {
				want = len(sub)
			}
			if len(nd.lists[j]) != want {
				return 0, nil, fmt.Errorf("node %d list %d len %d want %d", h, j, len(nd.lists[j]), want)
			}
			for i := 0; i < want; i++ {
				if nd.lists[j][i] != sub[i] {
					return 0, nil, fmt.Errorf("node %d list %d entry %d mismatch", h, j, i)
				}
			}
		}
		if nd.weight != total {
			return 0, nil, fmt.Errorf("node %d weight %d != %d", h, nd.weight, total)
		}
		return total, all, nil
	}
	total, _, err := rec(t.root, math.Inf(-1), math.Inf(1))
	if err != nil {
		return err
	}
	if total != t.n {
		return fmt.Errorf("n=%d, counted %d", t.n, total)
	}
	return nil
}
