// Package point defines the element type shared by every structure in
// the repository: a one-dimensional point with a real-valued score.
//
// Following the paper (§2), a top-k query has a natural geometric
// interpretation: map each element e to the planar point (e, score(e));
// then the query reports the k highest points in the vertical slab
// q × (−∞, ∞). Both coordinates are float64 and scores are assumed
// distinct, the standard assumption that makes top-k results unique.
package point

import (
	"math"
	"sort"
)

// P is an input element: position X with score Score.
type P struct {
	X     float64
	Score float64
}

// Finite reports whether both coordinates are real numbers (no NaN,
// no ±Inf). The paper's input is a set of reals; non-finite values
// additionally break position routing and map-based duplicate guards
// (NaN is unequal to itself), so every insert path rejects them first.
func (p P) Finite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Score) && !math.IsInf(p.Score, 0)
}

// Less orders by X, breaking ties by score (ties in X can occur; ties in
// score are excluded by the distinct-score assumption).
func Less(a, b P) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Score < b.Score
}

// In reports whether p lies in the closed interval [x1, x2].
func (p P) In(x1, x2 float64) bool { return x1 <= p.X && p.X <= x2 }

// SortByX sorts ps ascending by X (score tiebreak).
func SortByX(ps []P) {
	sort.Slice(ps, func(i, j int) bool { return Less(ps[i], ps[j]) })
}

// SortByScoreDesc sorts ps by descending score.
func SortByScoreDesc(ps []P) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Score > ps[j].Score })
}

// TopK returns the k highest-scoring points of ps that lie in [x1, x2],
// sorted by descending score. If fewer than k qualify, all are returned.
// It is the brute-force reference semantics of the problem statement.
func TopK(ps []P, x1, x2 float64, k int) []P {
	if k <= 0 {
		return nil
	}
	var in []P
	for _, p := range ps {
		if p.In(x1, x2) {
			in = append(in, p)
		}
	}
	SortByScoreDesc(in)
	if k < len(in) {
		in = in[:k]
	}
	return in
}

// WordSize is the storage footprint of one point in machine words
// (two float64 fields).
const WordSize = 2
