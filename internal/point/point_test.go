package point

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLess(t *testing.T) {
	cases := []struct {
		a, b P
		want bool
	}{
		{P{1, 5}, P{2, 3}, true},
		{P{2, 3}, P{1, 5}, false},
		{P{1, 3}, P{1, 5}, true},
		{P{1, 5}, P{1, 3}, false},
		{P{1, 5}, P{1, 5}, false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%v,%v)=%v", c.a, c.b, got)
		}
	}
}

func TestIn(t *testing.T) {
	p := P{X: 5}
	for _, c := range []struct {
		x1, x2 float64
		want   bool
	}{
		{4, 6, true}, {5, 5, true}, {5, 6, true}, {4, 5, true},
		{6, 7, false}, {1, 4.999, false}, {6, 4, false},
	} {
		if got := p.In(c.x1, c.x2); got != c.want {
			t.Errorf("In(%v,%v)=%v", c.x1, c.x2, got)
		}
	}
}

func TestSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]P, 200)
	for i := range ps {
		ps[i] = P{X: rng.Float64(), Score: rng.Float64()}
	}
	SortByX(ps)
	if !sort.SliceIsSorted(ps, func(i, j int) bool { return Less(ps[i], ps[j]) }) {
		t.Fatal("SortByX")
	}
	SortByScoreDesc(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Score < ps[i].Score {
			t.Fatal("SortByScoreDesc")
		}
	}
}

func TestTopK(t *testing.T) {
	ps := []P{{1, 10}, {2, 30}, {3, 20}, {4, 40}, {10, 99}}
	got := TopK(ps, 1, 4, 2)
	if len(got) != 2 || got[0] != (P{4, 40}) || got[1] != (P{2, 30}) {
		t.Fatalf("TopK: %v", got)
	}
	if got := TopK(ps, 1, 4, 100); len(got) != 4 {
		t.Fatalf("k beyond size: %v", got)
	}
	if got := TopK(ps, 1, 4, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	if got := TopK(ps, 1, 4, -3); got != nil {
		t.Fatalf("k<0: %v", got)
	}
	if got := TopK(ps, 5, 9, 3); len(got) != 0 {
		t.Fatalf("empty range: %v", got)
	}
}

// Property: TopK output is sorted descending, within range, of size
// min(k, |in range|), and dominates every in-range point it excludes.
func TestQuickTopK(t *testing.T) {
	f := func(raw []uint32, kRaw uint8, loRaw, spanRaw uint16) bool {
		ps := make([]P, len(raw))
		for i, r := range raw {
			ps[i] = P{X: float64(r % 1000), Score: float64(r) + float64(i)/1e6}
		}
		x1 := float64(loRaw % 1000)
		x2 := x1 + float64(spanRaw%1000)
		k := int(kRaw)%20 + 1
		got := TopK(ps, x1, x2, k)
		inRange := 0
		minGot := 0.0
		for i, p := range got {
			if !p.In(x1, x2) {
				return false
			}
			if i > 0 && got[i-1].Score < p.Score {
				return false
			}
			minGot = p.Score
		}
		for _, p := range ps {
			if p.In(x1, x2) {
				inRange++
			}
		}
		want := k
		if inRange < k {
			want = inRange
		}
		if len(got) != want {
			return false
		}
		if len(got) == k {
			// No excluded in-range point may beat the k-th.
			seen := map[P]bool{}
			for _, p := range got {
				seen[p] = true
			}
			for _, p := range ps {
				if p.In(x1, x2) && !seen[p] && p.Score > minGot {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
