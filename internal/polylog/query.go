package polylog

import (
	"math"
	"sort"

	"repro/internal/aurs"
	"repro/internal/em"
	"repro/internal/point"
)

// piece is one canonical element of the range decomposition: either a
// multi-slab [a1,a2] at an internal node (leaf == NilHandle means
// unused) or a boundary leaf.
type piece struct {
	node   em.Handle
	a1, a2 int  // 1-based child range (multi-slabs)
	isLeaf bool // boundary leaf: select within [x1,x2] directly
}

// decompose returns the canonical pieces covering [x1, x2]: maximal
// multi-slabs at the nodes of the two boundary paths, plus the (at most
// two) boundary leaves.
func (t *Tree) decompose(x1, x2 float64) []piece {
	var pieces []piece
	var walk func(h em.Handle)
	walk = func(h em.Handle) {
		nd := t.store.Read(h)
		if nd.leaf {
			pieces = append(pieces, piece{node: h, isLeaf: true})
			return
		}
		// Contiguous run of fully-covered children → one multi-slab;
		// partially covered children → recurse.
		runStart := -1
		flush := func(end int) {
			if runStart >= 0 {
				pieces = append(pieces, piece{node: h, a1: runStart + 1, a2: end})
				runStart = -1
			}
		}
		for j := range nd.kids {
			clo := nd.kidLo[j]
			chi := nd.hi
			if j+1 < len(nd.kids) {
				chi = nd.kidLo[j+1]
			}
			switch {
			case chi <= x1 || clo > x2:
				flush(j)
			case clo >= x1 && chi <= math.Nextafter(x2, math.Inf(1)):
				if runStart < 0 {
					runStart = j
				}
			default:
				flush(j)
				walk(nd.kids[j])
			}
		}
		flush(len(nd.kids))
	}
	walk(t.root)
	return pieces
}

// slabSet adapts a multi-slab piece to the aurs.Set interface: Len and
// Max in O(1) I/Os from the (f,c2l)-structure's blocks, Rank in
// O(log_B(fl)) via the compressed sketch set. The ranks are taken in
// ∪G_ui, which agrees with the subtree union up to rank c2·l — the
// region AURS probes under its precondition (footnote 6 of the paper).
type slabSet struct {
	g      *aursGroup
	a1, a2 int
}

type aursGroup struct {
	fl interface {
		CountIn(a1, a2 int) int
		MaxIn(a1, a2 int) (float64, bool)
		Select(a1, a2, k int) float64
		Bound() int
	}
}

func (s slabSet) Len() int { return s.g.fl.CountIn(s.a1, s.a2) }

func (s slabSet) Max() float64 {
	v, ok := s.g.fl.MaxIn(s.a1, s.a2)
	if !ok {
		return math.Inf(-1)
	}
	return v
}

func (s slabSet) Rank(rho float64) float64 {
	k := int(math.Ceil(rho))
	if k < 1 {
		k = 1
	}
	if n := s.Len(); k > n {
		k = n
	}
	return s.g.fl.Select(s.a1, s.a2, k)
}

// SelectApprox performs approximate range k-selection: it returns a
// score τ such that between k and O(k)·(approximation constant) points
// of S∩[x1,x2] have score ≥ τ. ok is false when |S∩q| < k. k must be
// ≤ L().
//
// In-regime (every multi-slab large enough for the AURS precondition)
// the cost is O(log_B n) I/Os; otherwise the exact fallback described in
// the package comment fires.
func (t *Tree) SelectApprox(x1, x2 float64, k int) (float64, bool) {
	if k < 1 || k > t.opt.L {
		panic("polylog: k outside [1, L]")
	}
	if x1 > x2 || t.n == 0 {
		return 0, false
	}
	pieces := t.decompose(x1, x2)

	// Every candidate emitted below has rank ≥ k within its own piece
	// group, which is what makes max{candidates} a valid lower bound;
	// pieces holding fewer than k elements are pooled into one exactly
	// merged group so that collectively small pieces still produce a
	// rank-≥-k candidate when they hold the answer together.
	c1 := 8 // flgroup Select bound for base 2
	var slabs []aurs.Set
	var cands []float64
	var merged []float64
	for _, pc := range pieces {
		if pc.isLeaf {
			in := t.leafInRange(pc.node, x1, x2)
			if len(in) >= k {
				point.SortByScoreDesc(in)
				cands = append(cands, in[k-1].Score)
			} else {
				for _, p := range in {
					merged = append(merged, p.Score)
				}
			}
			continue
		}
		ss := slabSet{g: &aursGroup{fl: t.fl[pc.node]}, a1: pc.a1, a2: pc.a2}
		n := ss.Len()
		switch {
		case n >= c1*k:
			slabs = append(slabs, ss) // AURS precondition holds
		case n >= k:
			// Too small for AURS but big enough to own the answer:
			// probe its (f,c2l)-structure directly (rank ∈ [k, 8k]).
			t.Fallbacks++
			cands = append(cands, t.fl[pc.node].Select(pc.a1, pc.a2, k))
		case n > 0:
			t.Fallbacks++
			merged = append(merged, t.fl[pc.node].TopIn(pc.a1, pc.a2, n)...)
		}
	}
	if len(slabs) > 0 {
		cands = append(cands, aurs.Select(slabs, c1, k))
	}
	if len(merged) >= k {
		sort.Sort(sort.Reverse(sort.Float64Slice(merged)))
		cands = append(cands, merged[k-1])
	}
	if len(cands) == 0 || t.Count(x1, x2) < k {
		return 0, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c > best {
			best = c
		}
	}
	return best, true
}

// Count returns |S ∩ [x1,x2]| using subtree weights plus boundary-leaf
// counts, in O(log_B n) I/Os.
func (t *Tree) Count(x1, x2 float64) int {
	if x1 > x2 {
		return 0
	}
	total := 0
	var walk func(h em.Handle)
	walk = func(h em.Handle) {
		nd := t.store.Read(h)
		if nd.leaf {
			total += t.leafCount(h, x1, x2)
			return
		}
		for j, kid := range nd.kids {
			clo := nd.kidLo[j]
			chi := nd.hi
			if j+1 < len(nd.kids) {
				chi = nd.kidLo[j+1]
			}
			if chi <= x1 || clo > x2 {
				continue
			}
			if clo >= x1 && chi <= math.Nextafter(x2, math.Inf(1)) {
				total += t.store.Read(kid).weight
				continue
			}
			walk(kid)
		}
	}
	walk(t.root)
	return total
}

// SelectBound returns the worst-case approximation factor of
// SelectApprox on the in-regime path: the returned score τ has between k
// and SelectBound()·k points of S∩q at or above it. It combines the
// AURS bound c' = c1²(2+2c1) with the ≤ 3 candidate pieces (one AURS
// aggregate + two boundary leaves, whose selection here is exact).
func (t *Tree) SelectBound() int { return aurs.Bound(8) + 2 }
