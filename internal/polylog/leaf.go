package polylog

import (
	"fmt"
	"sort"

	"repro/internal/em"
	"repro/internal/point"
)

// Leaf storage: a leaf node's points live in x-sorted chunks of at most
// chunkCap points (one block each), addressed through the leaf node's
// kids/kidLo arrays. An update touches one chunk (O(1) I/Os); a
// boundary-range read touches only the overlapping chunks.
//
// The paper places a full structure of [14] at every leaf because its
// leaves hold b = f·l·B points and need in-leaf approximate range
// k-selection in O(log_B b) I/Os. Our leaf selection reads the
// overlapping chunks and selects exactly in memory, costing
// O(|leaf ∩ q|/B + log) I/Os — identical for boundary leaves, whose
// qualifying portion a reporting query pays for anyway, and strictly
// better on updates (the toplists reconstruction of our [14] substitute
// would cost O(K/B) per update; see DESIGN.md substitution 3).

// chunkCap returns the points per chunk (one block).
func (t *Tree) chunkCap() int {
	c := (t.d.B() - 1) / point.WordSize
	if c < 4 {
		c = 4
	}
	return c
}

// leafInsert adds p to leaf h, splitting its chunk if needed.
func (t *Tree) leafInsert(h em.Handle, p point.P) {
	nd := t.store.Read(h)
	if len(nd.kids) == 0 {
		ch := t.chunks.Alloc([]point.P{p})
		nd.kids = []em.Handle{ch}
		nd.kidLo = []float64{nd.lo}
		t.store.Write(h, nd)
		return
	}
	j := routeKid(nd, p.X)
	ps := t.chunks.Read(nd.kids[j])
	i := sort.Search(len(ps), func(i int) bool { return ps[i].X >= p.X })
	if i < len(ps) && ps[i].X == p.X {
		panic(fmt.Sprintf("polylog: duplicate x %v", p.X))
	}
	ps = append(ps, point.P{})
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	if len(ps) <= t.chunkCap() {
		t.chunks.Write(nd.kids[j], ps)
		return
	}
	mid := len(ps) / 2
	right := append([]point.P(nil), ps[mid:]...)
	t.chunks.Write(nd.kids[j], append([]point.P(nil), ps[:mid]...))
	rh := t.chunks.Alloc(right)
	nd.kids = append(nd.kids, em.NilHandle)
	nd.kidLo = append(nd.kidLo, 0)
	copy(nd.kids[j+2:], nd.kids[j+1:])
	copy(nd.kidLo[j+2:], nd.kidLo[j+1:])
	nd.kids[j+1] = rh
	nd.kidLo[j+1] = right[0].X
	t.store.Write(h, nd)
}

// leafDelete removes p from leaf h, reporting presence. Emptied chunks
// are retired.
func (t *Tree) leafDelete(h em.Handle, p point.P) bool {
	nd := t.store.Read(h)
	if len(nd.kids) == 0 {
		return false
	}
	j := routeKid(nd, p.X)
	ps := t.chunks.Read(nd.kids[j])
	for i, q := range ps {
		if q.X == p.X && q.Score == p.Score {
			ps = append(ps[:i], ps[i+1:]...)
			if len(ps) == 0 && len(nd.kids) > 1 {
				t.chunks.Free(nd.kids[j])
				nd.kids = append(nd.kids[:j], nd.kids[j+1:]...)
				nd.kidLo = append(nd.kidLo[:j], nd.kidLo[j+1:]...)
				nd.kidLo[0] = nd.lo
				t.store.Write(h, nd)
			} else {
				t.chunks.Write(nd.kids[j], ps)
			}
			return true
		}
	}
	return false
}

// leafInRange returns the leaf's points with x ∈ [x1, x2], reading only
// overlapping chunks.
func (t *Tree) leafInRange(h em.Handle, x1, x2 float64) []point.P {
	nd := t.store.Read(h)
	var out []point.P
	for j, ch := range nd.kids {
		clo := nd.kidLo[j]
		chi := nd.hi
		if j+1 < len(nd.kids) {
			chi = nd.kidLo[j+1]
		}
		if chi <= x1 || clo > x2 {
			continue
		}
		for _, p := range t.chunks.Read(ch) {
			if p.In(x1, x2) {
				out = append(out, p)
			}
		}
	}
	return out
}

// leafAll returns every point of the leaf.
func (t *Tree) leafAll(h em.Handle) []point.P {
	nd := t.store.Read(h)
	var out []point.P
	for _, ch := range nd.kids {
		out = append(out, t.chunks.Read(ch)...)
	}
	return out
}

// leafCount counts the leaf's points in [x1, x2].
func (t *Tree) leafCount(h em.Handle, x1, x2 float64) int {
	return len(t.leafInRange(h, x1, x2))
}

// leafSelect returns the point of exact score-rank k among the leaf's
// points in [x1, x2].
func (t *Tree) leafSelect(h em.Handle, x1, x2 float64, k int) (point.P, bool) {
	in := t.leafInRange(h, x1, x2)
	if len(in) < k || k < 1 {
		return point.P{}, false
	}
	point.SortByScoreDesc(in)
	return in[k-1], true
}

// leafLen returns the number of points stored at the leaf.
func (t *Tree) leafLen(h em.Handle) int {
	nd := t.store.Read(h)
	n := 0
	for _, ch := range nd.kids {
		n += len(t.chunks.Read(ch))
	}
	return n
}

// setLeafPoints bulk-loads pts (sorted by x) into half-full chunks of a
// fresh leaf.
func (t *Tree) setLeafPoints(h em.Handle, pts []point.P) {
	nd := t.store.Read(h)
	per := t.chunkCap() / 2
	if per < 1 {
		per = 1
	}
	for i := 0; i < len(pts); i += per {
		end := i + per
		if end > len(pts) {
			end = len(pts)
		}
		ch := t.chunks.Alloc(append([]point.P(nil), pts[i:end]...))
		lo := nd.lo
		if i > 0 {
			lo = pts[i].X
		}
		nd.kids = append(nd.kids, ch)
		nd.kidLo = append(nd.kidLo, lo)
	}
	t.store.Write(h, nd)
}

// freeLeafChunks releases the leaf's chunk records.
func (t *Tree) freeLeafChunks(h em.Handle) {
	nd := t.store.Read(h)
	for _, ch := range nd.kids {
		t.chunks.Free(ch)
	}
}
