// Package polylog implements the structure of §3.3 of the paper
// (Lemma 4): approximate range k-selection — and through the standard
// reduction, top-k range reporting — for k ≤ l with l = O(polylg n), in
// O(n/B) space, O(log_B n) query I/Os and O(log_B n) amortized update
// I/Os. Theorem 1 uses it in the hardest regime B < lg⁶n, where
// k < B·lg n < lg⁷n is polylogarithmic.
//
// Layout, following §3.3 and the appendix update algorithm:
//
//   - a weight-balanced base tree over the x-coordinates with branching
//     parameter f = √(B·lg n) and leaf capacity b = f·l·B;
//   - for every node u, the set G_u of the c2·l highest scores in u's
//     subtree, kept in a score B-tree at u;
//   - at every internal node, an (f, c2·l)-structure of Lemma 6
//     (package flgroup) over (G_u1, …, G_uf), which also supplies the
//     range-maximum capability of the "slightly augmented B-tree";
//   - at every leaf, the leaf's points in x-sorted one-block chunks
//     supporting exact in-leaf range k-selection (see leaf.go for why
//     this meets the role the paper assigns to the [14] leaf
//     structures at lower update cost).
//
// A query decomposes q into O(log_f n) canonical multi-slabs plus at
// most two boundary leaves, runs AURS (package aurs, Lemma 5) over the
// multi-slabs — Rank and Max implemented by the (f,c2l)-structures in
// O(log_B(fl)) I/Os each — performs leaf-level k-selection at the
// boundary leaves, and returns the maximum of the candidates.
//
// Degenerate regime: the AURS precondition k ≤ min|S_m|/c1 always holds
// in the paper's parameter regime because every canonical multi-slab
// contains a child subtree of weight ≥ b/4 = f·l·B/4 ≫ c2·l (footnote
// 6). At test scales with tiny subtrees the precondition can fail; the
// query then falls back to an exact merge of the pieces' top-k lists
// (flgroup.TopIn), preserving correctness at a higher I/O cost. The
// fallback is counted and reported so experiments can confirm it never
// fires in-regime.
package polylog

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/btree"
	"repro/internal/em"
	"repro/internal/flgroup"
	"repro/internal/point"
)

// Options configure the structure.
type Options struct {
	// L is the paper's l: queries support k ≤ L.
	L int
	// F is the branching parameter (paper: √(B·lg n)). 0 derives it from
	// the disk block size and N.
	F int
	// LeafCap is the leaf capacity (paper: f·l·B). 0 derives it. Values
	// are clamped to keep test-scale trees non-trivial.
	LeafCap int
	// N is the size hint used to derive F (paper: N ∈ [n, 4n], fixed
	// between global rebuilds).
	N int
}

func (o Options) withDefaults(d *em.Disk) Options {
	if o.L <= 0 {
		o.L = 16
	}
	if o.N <= 0 {
		o.N = 1 << 16
	}
	if o.F <= 0 {
		lg := math.Log2(float64(o.N))
		if lg < 1 {
			lg = 1
		}
		o.F = int(math.Sqrt(float64(d.B()) * lg))
	}
	if o.F < 2 {
		o.F = 2
	}
	if o.LeafCap <= 0 {
		o.LeafCap = o.F * o.L * d.B()
	}
	if o.LeafCap < 8 {
		o.LeafCap = 8
	}
	return o
}

// c2 is the constant of the (f,l)-problem (§3.2); G_u holds c2·l scores.
// flgroup guarantees rank ∈ [k, base³·k] = [k, 8k], so c2 = 8.
const c2 = 8

type node struct {
	leaf     bool
	parent   em.Handle
	childIdx int
	lo, hi   float64
	weight   int // live points in subtree

	kids  []em.Handle
	kidLo []float64
}

func (n *node) size() int { return 8 + 2*len(n.kids) }

// Tree is the §3.3 structure. Create with New.
type Tree struct {
	d     *em.Disk
	opt   Options
	store *em.Store[*node]
	root  em.Handle
	n     int

	// Per-node secondary structures, keyed by node handle. (Their disk
	// footprint is charged by their own stores.)
	gu     map[em.Handle]*btree.Tree    // score B-tree on G_u
	fl     map[em.Handle]*flgroup.Group // internal nodes
	chunks *em.Store[[]point.P]         // leaf point chunks

	// Fallbacks counts queries that left the AURS fast path (degenerate
	// regime detection, experiment E11).
	Fallbacks int
}

// New returns an empty structure.
func New(d *em.Disk, opt Options) *Tree {
	opt = opt.withDefaults(d)
	t := &Tree{
		d: d, opt: opt,
		store: em.NewStore(d, "pl.node", func(n *node) int { return n.size() }),
		gu:    map[em.Handle]*btree.Tree{},
		fl:    map[em.Handle]*flgroup.Group{},
	}
	t.chunks = em.NewStore(d, "pl.chunk", func(ps []point.P) int { return 1 + point.WordSize*len(ps) })
	t.root = t.newLeaf(math.Inf(-1), math.Inf(1))
	return t
}

// Bulk builds the structure over pts.
func Bulk(d *em.Disk, opt Options, pts []point.P) *Tree {
	t := New(d, opt)
	for _, p := range pts {
		t.Insert(p)
	}
	return t
}

// Len returns the number of live points; L the query cap.
func (t *Tree) Len() int { return t.n }
func (t *Tree) L() int   { return t.opt.L }

// guCap is |G_u| at capacity.
func (t *Tree) guCap() int { return c2 * t.opt.L }

func (t *Tree) newLeaf(lo, hi float64) em.Handle {
	h := t.store.Alloc(&node{leaf: true, lo: lo, hi: hi})
	t.gu[h] = btree.New(t.d, fmt.Sprintf("pl.gu%d", h))
	return h
}

func routeKid(nd *node, x float64) int {
	lo, hi := 0, len(nd.kids)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if nd.kidLo[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// --- updates ----------------------------------------------------------

// Insert adds p in O(log_B n) amortized I/Os (appendix update
// algorithm): descend to the leaf, update its [14] structure, then fix
// the G sets bottom-up, entering p's score wherever it ranks in the top
// c2·l of an ancestor's subtree.
func (t *Tree) Insert(p point.P) {
	h := t.root
	for {
		nd := t.store.Read(h)
		nd.weight++
		t.store.Write(h, nd)
		if nd.leaf {
			break
		}
		h = nd.kids[routeKid(nd, p.X)]
	}
	t.n++
	t.leafInsert(h, p)
	t.bubbleInsert(h, p.Score)
	t.splitIfNeeded(h)
}

// bubbleInsert enters score s into G_u along the leaf-to-root path for
// as long as it ranks in the top c2·l, maintaining the parents' flgroup
// sets in lockstep with the score B-trees.
func (t *Tree) bubbleInsert(h em.Handle, s float64) {
	for h != em.NilHandle {
		g := t.gu[h]
		full := g.Len() >= t.guCap()
		if full {
			mn, _ := g.Min()
			if s <= mn {
				return // s does not enter G_u, so nor any ancestor's
			}
			t.removeFromG(h, mn)
		}
		t.addToG(h, s)
		h = t.store.Read(h).parent
	}
}

// addToG inserts s into G_u's score B-tree and the parent's flgroup.
func (t *Tree) addToG(h em.Handle, s float64) {
	t.gu[h].Insert(s)
	nd := t.store.Read(h)
	if nd.parent != em.NilHandle {
		t.fl[nd.parent].Insert(nd.childIdx+1, s)
	}
}

// removeFromG removes s from G_u and the parent's flgroup.
func (t *Tree) removeFromG(h em.Handle, s float64) {
	t.gu[h].Delete(s)
	nd := t.store.Read(h)
	if nd.parent != em.NilHandle {
		t.fl[nd.parent].Delete(nd.childIdx+1, s)
	}
}

// Delete removes p, reporting whether it was present.
func (t *Tree) Delete(p point.P) bool {
	// Locate the leaf.
	h := t.root
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			break
		}
		h = nd.kids[routeKid(nd, p.X)]
	}
	if !t.leafDelete(h, p) {
		return false
	}
	t.n--
	// Decrement weights along the path.
	for w := h; w != em.NilHandle; {
		nd := t.store.Read(w)
		nd.weight--
		t.store.Write(w, nd)
		w = nd.parent
	}
	// Fix the G sets bottom-up: wherever score(p) was a member of G_u,
	// remove it and refill with the next-best score of u's subtree.
	for u := h; u != em.NilHandle; {
		g := t.gu[u]
		if !g.Contains(p.Score) {
			return true // not in G_u ⇒ not in any ancestor's
		}
		t.removeFromG(u, p.Score)
		nd := t.store.Read(u)
		if refill, ok := t.nextBest(u, nd); ok {
			t.addToG(u, refill)
		}
		u = nd.parent
	}
	return true
}

// nextBest returns the (|G_u|+1)-th best score of u's subtree, i.e. the
// element to promote into G_u after a removal, if the subtree has one.
// For internal nodes it is the (|G_u|+1)-th of ∪G_ui, read exactly from
// the flgroup's B-tree on G; for leaves it comes from the [14]
// structure.
func (t *Tree) nextBest(u em.Handle, nd *node) (float64, bool) {
	want := t.gu[u].Len() + 1
	if nd.leaf {
		if want > nd.weight {
			return 0, false
		}
		pt, ok := t.leafSelect(u, math.Inf(-1), math.Inf(1), want)
		if !ok {
			return 0, false
		}
		return pt.Score, true
	}
	return t.fl[u].SelectExact(want)
}

// --- splits -----------------------------------------------------------

// splitIfNeeded splits an overfull leaf and cascades upward, rebuilding
// the secondary structures of the split node and its parent as the
// appendix prescribes.
func (t *Tree) splitIfNeeded(h em.Handle) {
	for h != em.NilHandle {
		nd := t.store.Read(h)
		over := (nd.leaf && nd.weight > t.opt.LeafCap) ||
			(!nd.leaf && len(nd.kids) > 2*t.opt.F)
		if !over {
			return
		}
		var left, right em.Handle
		if nd.leaf {
			left, right = t.splitLeaf(h, nd)
		} else {
			left, right = t.splitInternal(h, nd)
		}

		if nd.parent == em.NilHandle {
			// New root above the two halves.
			ln, rn := t.store.Read(left), t.store.Read(right)
			root := &node{
				lo: math.Inf(-1), hi: math.Inf(1),
				weight: ln.weight + rn.weight,
				kids:   []em.Handle{left, right},
				kidLo:  []float64{math.Inf(-1), rn.lo},
			}
			rh := t.store.Alloc(root)
			t.store.Update(left, func(c **node) { (*c).parent, (*c).childIdx = rh, 0 })
			t.store.Update(right, func(c **node) { (*c).parent, (*c).childIdx = rh, 1 })
			t.gu[rh] = btree.New(t.d, fmt.Sprintf("pl.gu%d", rh))
			t.rebuildSecondary(rh)
			t.root = rh
			return
		}

		// Splice the two halves into the parent and rebuild its
		// secondary structures (fanout changed).
		par := t.store.Read(nd.parent)
		j := nd.childIdx
		rlo := t.store.Read(right).lo
		par.kids = append(par.kids, em.NilHandle)
		par.kidLo = append(par.kidLo, 0)
		copy(par.kids[j+2:], par.kids[j+1:])
		copy(par.kidLo[j+2:], par.kidLo[j+1:])
		par.kids[j] = left
		par.kids[j+1] = right
		par.kidLo[j+1] = rlo
		t.store.Write(nd.parent, par)
		t.store.Update(left, func(c **node) { (*c).parent, (*c).childIdx = nd.parent, j })
		t.store.Update(right, func(c **node) { (*c).parent, (*c).childIdx = nd.parent, j+1 })
		for jj := j + 2; jj < len(par.kids); jj++ {
			t.store.Update(par.kids[jj], func(c **node) { (*c).childIdx = jj })
		}
		t.rebuildSecondary(nd.parent)
		h = nd.parent
	}
}

// splitLeaf splits leaf h in half by x, rebuilding both halves' chunk
// stores and G sets. The handle h is retired.
func (t *Tree) splitLeaf(h em.Handle, nd *node) (em.Handle, em.Handle) {
	all := t.leafAll(h)
	point.SortByX(all)
	mid := len(all) / 2
	lh := t.newLeaf(nd.lo, all[mid].X)
	rh := t.newLeaf(all[mid].X, nd.hi)
	t.setLeafPoints(lh, all[:mid])
	t.setLeafPoints(rh, all[mid:])
	t.rebuildLeafG(lh)
	t.rebuildLeafG(rh)
	t.store.Update(lh, func(c **node) { (*c).weight = mid })
	t.store.Update(rh, func(c **node) { (*c).weight = len(all) - mid })
	t.retire(h)
	return lh, rh
}

// splitInternal splits internal node h in half by child index. The
// handle h is retired; both halves get fresh secondary structures.
func (t *Tree) splitInternal(h em.Handle, nd *node) (em.Handle, em.Handle) {
	mid := len(nd.kids) / 2
	mk := func(kids []em.Handle, kidLo []float64, lo, hi float64) em.Handle {
		n := &node{lo: lo, hi: hi,
			kids:  append([]em.Handle(nil), kids...),
			kidLo: append([]float64(nil), kidLo...),
		}
		n.kidLo[0] = lo
		nh := t.store.Alloc(n)
		w := 0
		for j, kid := range n.kids {
			t.store.Update(kid, func(c **node) { (*c).parent, (*c).childIdx = nh, j })
			w += t.store.Read(kid).weight
		}
		t.store.Update(nh, func(c **node) { (*c).weight = w })
		t.gu[nh] = btree.New(t.d, fmt.Sprintf("pl.gu%d", nh))
		t.rebuildSecondary(nh)
		return nh
	}
	lh := mk(nd.kids[:mid], nd.kidLo[:mid], nd.lo, nd.kidLo[mid])
	rh := mk(nd.kids[mid:], nd.kidLo[mid:], nd.kidLo[mid], nd.hi)
	t.retire(h)
	return lh, rh
}

// rebuildSecondary reconstructs node u's flgroup over its children's G
// sets and recomputes G_u (top c2·l of ∪G_ui) in its score B-tree.
func (t *Tree) rebuildSecondary(u em.Handle) {
	nd := t.store.Read(u)
	if old, ok := t.fl[u]; ok {
		old.Free()
	}
	g := flgroup.New(t.d, len(nd.kids), t.guCap())
	var all []float64
	for j, kid := range nd.kids {
		scores := t.gu[kid].Keys()
		for _, s := range scores {
			g.Insert(j+1, s)
			all = append(all, s)
		}
	}
	t.fl[u] = g
	// G_u = top c2·l of the union.
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	if len(all) > t.guCap() {
		all = all[:t.guCap()]
	}
	gu := t.gu[u]
	for _, s := range gu.Keys() {
		gu.Delete(s)
	}
	for _, s := range all {
		gu.Insert(s)
	}
	// Propagate the recomputed G_u into the parent's flgroup.
	if nd.parent != em.NilHandle {
		pg := t.fl[nd.parent]
		i := nd.childIdx + 1
		for pg.SizeOf(i) > 0 {
			v, _ := pg.MaxOf(i)
			pg.Delete(i, v)
		}
		for _, s := range all {
			pg.Insert(i, s)
		}
	}
}

// rebuildLeafG recomputes a leaf's G set from its [14] structure.
func (t *Tree) rebuildLeafG(h em.Handle) {
	gu := t.gu[h]
	for _, s := range gu.Keys() {
		gu.Delete(s)
	}
	all := t.leafAll(h)
	point.SortByScoreDesc(all)
	if len(all) > t.guCap() {
		all = all[:t.guCap()]
	}
	for _, p := range all {
		gu.Insert(p.Score)
	}
}

// FreeAll releases every node and secondary structure.
func (t *Tree) FreeAll() {
	var rec func(h em.Handle)
	rec = func(h em.Handle) {
		nd := t.store.Read(h)
		if !nd.leaf { // leaf kids are chunk handles, retired by retire
			for _, kid := range nd.kids {
				rec(kid)
			}
		}
		t.retire(h)
	}
	rec(t.root)
	t.root = em.NilHandle
	t.n = 0
}

// retire frees a node and its secondary structures.
func (t *Tree) retire(h em.Handle) {
	if g, ok := t.gu[h]; ok {
		g.Free()
		delete(t.gu, h)
	}
	if g, ok := t.fl[h]; ok {
		g.Free()
		delete(t.fl, h)
	}
	if t.store.Peek(h).leaf {
		t.freeLeafChunks(h)
	}
	t.store.Free(h)
}
