package polylog

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/em"
	"repro/internal/point"
)

func newDisk(b int) *em.Disk { return em.NewDisk(em.Config{B: b, M: 64 * b}) }

func genPoints(n int, seed int64) []point.P {
	rng := rand.New(rand.NewSource(seed))
	xs := rng.Perm(n * 4)
	scores := rng.Perm(n * 4)
	pts := make([]point.P, n)
	for i := 0; i < n; i++ {
		pts[i] = point.P{X: float64(xs[i]), Score: float64(scores[i])}
	}
	return pts
}

// rankIn computes |{p ∈ pts ∩ q : score ≥ τ}|.
func rankIn(pts []point.P, x1, x2, tau float64) int {
	r := 0
	for _, p := range pts {
		if p.In(x1, x2) && p.Score >= tau {
			r++
		}
	}
	return r
}

// smallOpts keeps trees several levels deep at test scale.
func smallOpts(l int) Options {
	return Options{L: l, F: 4, LeafCap: 32}
}

func TestEmpty(t *testing.T) {
	tr := New(newDisk(32), smallOpts(8))
	if tr.Len() != 0 {
		t.Fatal("not empty")
	}
	if _, ok := tr.SelectApprox(0, 10, 1); ok {
		t.Fatal("select on empty")
	}
	if tr.Delete(point.P{X: 1, Score: 1}) {
		t.Fatal("phantom delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertInvariants(t *testing.T) {
	tr := New(newDisk(32), smallOpts(8))
	pts := genPoints(600, 1)
	for i, p := range pts {
		tr.Insert(p)
		if i%89 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 600 {
		t.Fatalf("len=%d", tr.Len())
	}
}

func TestSelectApproxGuarantee(t *testing.T) {
	pts := genPoints(1200, 2)
	tr := Bulk(newDisk(32), smallOpts(16), pts)
	rng := rand.New(rand.NewSource(3))
	bound := tr.SelectBound()
	for i := 0; i < 150; i++ {
		x1 := rng.Float64() * 4800
		x2 := x1 + rng.Float64()*3000
		k := rng.Intn(16) + 1
		tau, ok := tr.SelectApprox(x1, x2, k)
		inRange := rankIn(pts, x1, x2, -1e18)
		if !ok {
			if inRange >= k {
				t.Fatalf("query %d: select failed with %d in range ≥ k=%d", i, inRange, k)
			}
			continue
		}
		r := rankIn(pts, x1, x2, tau)
		// The fallback path can widen the bound by the number of small
		// pieces; allow bound + O(lg n) pieces × k.
		loose := (bound + 12) * k
		if r < k || r > loose {
			t.Fatalf("query %d [%v,%v] k=%d: rank %d outside [%d,%d]", i, x1, x2, k, r, k, loose)
		}
	}
}

func TestCount(t *testing.T) {
	pts := genPoints(800, 4)
	tr := Bulk(newDisk(32), smallOpts(8), pts)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 3200
		x2 := x1 + rng.Float64()*1600
		want := 0
		for _, p := range pts {
			if p.In(x1, x2) {
				want++
			}
		}
		if got := tr.Count(x1, x2); got != want {
			t.Fatalf("count [%v,%v]=%d want %d", x1, x2, got, want)
		}
	}
}

func TestDeleteInvariants(t *testing.T) {
	pts := genPoints(500, 6)
	tr := Bulk(newDisk(32), smallOpts(8), pts)
	for i, p := range pts {
		if i%2 == 0 {
			if !tr.Delete(p) {
				t.Fatalf("delete %v", p)
			}
		}
		if i%101 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d ops: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 250 {
		t.Fatalf("len=%d", tr.Len())
	}
}

func TestDeleteNonexistent(t *testing.T) {
	pts := genPoints(100, 7)
	tr := Bulk(newDisk(32), smallOpts(8), pts)
	if tr.Delete(point.P{X: -5, Score: 3}) {
		t.Fatal("phantom delete")
	}
	if tr.Delete(point.P{X: pts[0].X, Score: pts[0].Score + 1}) {
		t.Fatal("wrong-score delete")
	}
}

func TestSelectAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New(newDisk(32), smallOpts(12))
	var live []point.P
	usedX := map[float64]bool{}
	for op := 0; op < 1500; op++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			p := point.P{X: rng.Float64() * 1e4, Score: rng.Float64() * 1e6}
			if usedX[p.X] {
				continue
			}
			usedX[p.X] = true
			live = append(live, p)
			tr.Insert(p)
		} else {
			j := rng.Intn(len(live))
			p := live[j]
			live = append(live[:j], live[j+1:]...)
			delete(usedX, p.X)
			if !tr.Delete(p) {
				t.Fatalf("op %d: delete failed", op)
			}
		}
		if op%150 == 75 {
			x1 := rng.Float64() * 1e4
			x2 := x1 + rng.Float64()*4e3
			k := rng.Intn(12) + 1
			tau, ok := tr.SelectApprox(x1, x2, k)
			inRange := rankIn(live, x1, x2, -1e18)
			if !ok {
				if inRange >= k {
					t.Fatalf("op %d: select failed, %d ≥ k", op, inRange)
				}
				continue
			}
			r := rankIn(live, x1, x2, tau)
			if r < k || r > (tr.SelectBound()+12)*k {
				t.Fatalf("op %d: rank %d for k=%d", op, r, k)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInRegimeNoFallback(t *testing.T) {
	// With a leaf capacity far above c2·l·c1, every canonical multi-slab
	// is large and the AURS fast path must serve every query.
	pts := genPoints(4000, 9)
	tr := Bulk(newDisk(64), Options{L: 4, F: 4, LeafCap: 400}, pts)
	rng := rand.New(rand.NewSource(10))
	tr.Fallbacks = 0
	for i := 0; i < 100; i++ {
		x1 := rng.Float64() * 4000
		x2 := x1 + 4000 + rng.Float64()*8000
		k := rng.Intn(4) + 1
		if _, ok := tr.SelectApprox(x1, x2, k); !ok {
			continue
		}
	}
	if tr.Fallbacks > 0 {
		t.Fatalf("fallback fired %d times in-regime", tr.Fallbacks)
	}
}

func TestSelectIOCost(t *testing.T) {
	d := newDisk(64)
	pts := genPoints(4000, 11)
	tr := Bulk(d, Options{L: 4, F: 4, LeafCap: 400}, pts)
	d.DropCache()
	base := d.Stats()
	const queries = 20
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < queries; i++ {
		x1 := rng.Float64() * 4000
		tr.SelectApprox(x1, x1+8000, 4)
		d.DropCache()
	}
	per := float64(d.Stats().Sub(base).Reads) / queries
	// O(log_B n) with modest constants: the decomposition touches O(lg_f n)
	// nodes, each probed O(1) times by AURS.
	if per > 400 {
		t.Fatalf("select cost %.1f reads looks super-logarithmic", per)
	}
	t.Logf("select cost: %.1f reads", per)
}

func TestUpdateIOCost(t *testing.T) {
	d := newDisk(64)
	tr := New(d, Options{L: 4, F: 4, LeafCap: 400})
	pts := genPoints(3000, 13)
	for _, p := range pts[:1500] {
		tr.Insert(p)
	}
	d.DropCache()
	base := d.Stats()
	for _, p := range pts[1500:] {
		tr.Insert(p)
	}
	per := float64(d.Stats().Sub(base).IOs()) / 1500
	if per > 250 {
		t.Fatalf("amortized insert %.1f I/Os", per)
	}
	t.Logf("amortized insert: %.1f I/Os", per)
}

func TestQuickPolylogModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 100 {
			ops = ops[:100]
		}
		rng := rand.New(rand.NewSource(seed))
		tr := New(newDisk(32), Options{L: 6, F: 3, LeafCap: 16})
		var live []point.P
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%4 != 0 || len(live) == 0 {
				p := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[p.X] {
					continue
				}
				usedX[p.X] = true
				live = append(live, p)
				tr.Insert(p)
			} else {
				j := int(op/4) % len(live)
				p := live[j]
				live = append(live[:j], live[j+1:]...)
				delete(usedX, p.X)
				if !tr.Delete(p) {
					return false
				}
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		if len(live) == 0 {
			return true
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 30000)
		x2 := x1 + 25000
		k := int(abs%6) + 1
		tau, ok := tr.SelectApprox(x1, x2, k)
		inRange := rankIn(live, x1, x2, -1e18)
		if !ok {
			return inRange < k
		}
		r := rankIn(live, x1, x2, tau)
		return r >= k && r <= (tr.SelectBound()+12)*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveMatches(t *testing.T) {
	pts := genPoints(400, 14)
	tr := Bulk(newDisk(32), smallOpts(8), pts)
	live := tr.Live()
	if len(live) != len(pts) {
		t.Fatalf("live %d want %d", len(live), len(pts))
	}
	point.SortByX(live)
	want := append([]point.P(nil), pts...)
	point.SortByX(want)
	for i := range want {
		if live[i] != want[i] {
			t.Fatalf("entry %d: %v want %v", i, live[i], want[i])
		}
	}
	_ = sort.Float64s
}

func BenchmarkPolylogInsert(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	tr := New(d, Options{L: 8, F: 4, LeafCap: 400})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(point.P{X: rng.Float64() * 1e9, Score: rng.Float64()})
	}
}

func BenchmarkPolylogSelect(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	tr := Bulk(d, Options{L: 8, F: 4, LeafCap: 400}, genPoints(10000, 1))
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 2e4
		tr.SelectApprox(x1, x1+2e4, 8)
	}
}
