package polylog

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/em"
	"repro/internal/point"
)

// CheckInvariants validates the §3.3 structure against first principles
// (meter-free test helper):
//
//   - base-tree shape: slab partition, parent links, weights;
//   - every leaf's [14] structure holds exactly the leaf's points;
//   - G_u is exactly the top min(c2·l, weight) scores of u's subtree;
//   - each internal node's flgroup mirrors its children's G sets
//     (delegating deep checks to flgroup.CheckInvariants).
func (t *Tree) CheckInvariants() error {
	var rec func(h em.Handle, lo, hi float64) ([]float64, error)
	rec = func(h em.Handle, lo, hi float64) ([]float64, error) {
		nd := t.store.Peek(h)
		if nd.lo != lo || nd.hi != hi {
			return nil, fmt.Errorf("node %d slab [%v,%v) want [%v,%v)", h, nd.lo, nd.hi, lo, hi)
		}
		var scores []float64
		if nd.leaf {
			pts := t.leafAll(h)
			sorted := append([]point.P(nil), pts...)
			point.SortByX(sorted)
			for i := range pts {
				if pts[i] != sorted[i] {
					return nil, fmt.Errorf("leaf %d chunks out of x order", h)
				}
			}
			if len(pts) != nd.weight {
				return nil, fmt.Errorf("leaf %d weight %d, holds %d", h, nd.weight, len(pts))
			}
			for _, p := range pts {
				if p.X < lo || p.X >= hi {
					return nil, fmt.Errorf("leaf %d point %v outside slab", h, p)
				}
				scores = append(scores, p.Score)
			}
		} else {
			fl, ok := t.fl[h]
			if !ok {
				return nil, fmt.Errorf("internal %d missing flgroup", h)
			}
			if err := fl.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("internal %d flgroup: %w", h, err)
			}
			w := 0
			for j, kid := range nd.kids {
				clo := nd.kidLo[j]
				chi := hi
				if j+1 < len(nd.kids) {
					chi = nd.kidLo[j+1]
				}
				cn := t.store.Peek(kid)
				if cn.parent != h || cn.childIdx != j {
					return nil, fmt.Errorf("node %d kid %d bad link", h, j)
				}
				sub, err := rec(kid, clo, chi)
				if err != nil {
					return nil, err
				}
				w += cn.weight
				scores = append(scores, sub...)
				// flgroup set j+1 must equal the child's G set.
				kg := t.gu[kid].Keys()
				if fl.SizeOf(j+1) != len(kg) {
					return nil, fmt.Errorf("node %d set %d size %d, child G %d",
						h, j+1, fl.SizeOf(j+1), len(kg))
				}
				for _, s := range kg {
					if !fl.Contains(j+1, s) {
						return nil, fmt.Errorf("node %d set %d missing score %v", h, j+1, s)
					}
				}
			}
			if nd.weight != w {
				return nil, fmt.Errorf("node %d weight %d, children sum %d", h, nd.weight, w)
			}
		}
		// G_u = top min(c2·l, |subtree|) scores of the subtree.
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := t.guCap()
		if len(sorted) < want {
			want = len(sorted)
		}
		gk := t.gu[h].Keys()
		if len(gk) != want {
			return nil, fmt.Errorf("node %d |G_u|=%d want %d", h, len(gk), want)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(gk)))
		for i := 0; i < want; i++ {
			if gk[i] != sorted[i] {
				return nil, fmt.Errorf("node %d G_u entry %d: %v want %v", h, i, gk[i], sorted[i])
			}
		}
		return scores, nil
	}
	scores, err := rec(t.root, math.Inf(-1), math.Inf(1))
	if err != nil {
		return err
	}
	if len(scores) != t.n {
		return fmt.Errorf("n=%d, counted %d", t.n, len(scores))
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Live returns all live points (test helper; full scan).
func (t *Tree) Live() []point.P {
	var out []point.P
	var rec func(h em.Handle)
	rec = func(h em.Handle) {
		nd := t.store.Peek(h)
		if nd.leaf {
			out = append(out, t.leafAll(h)...)
			return
		}
		for _, kid := range nd.kids {
			rec(kid)
		}
	}
	rec(t.root)
	return out
}
