package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectFlush is a Flush backend that records every group and returns
// a per-op error computed by errFor (nil errFor = all nil).
type collectFlush struct {
	mu     sync.Mutex
	groups [][]Op
	errFor func(Op) error
}

func (c *collectFlush) flush(ops []Op) []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups = append(c.groups, append([]Op(nil), ops...))
	errs := make([]error, len(ops))
	if c.errFor != nil {
		for i, op := range ops {
			errs[i] = c.errFor(op)
		}
	}
	return errs
}

func (c *collectFlush) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, g := range c.groups {
		n += len(g)
	}
	return n
}

func TestDoDeliversPerOpErrors(t *testing.T) {
	errOdd := errors.New("odd score")
	c := &collectFlush{errFor: func(op Op) error {
		if int(op.Score)%2 == 1 {
			return errOdd
		}
		return nil
	}}
	b := New(Options{Flush: c.flush})
	defer b.Close()
	for i := 0; i < 50; i++ {
		err := b.Do(Op{X: float64(i), Score: float64(i)})
		if i%2 == 1 {
			if !errors.Is(err, errOdd) {
				t.Fatalf("op %d: got %v, want errOdd", i, err)
			}
		} else if err != nil {
			t.Fatalf("op %d: got %v, want nil", i, err)
		}
	}
	if got := c.total(); got != 50 {
		t.Fatalf("flushed %d ops, want 50", got)
	}
}

// Concurrent sync writers must each get exactly their own op's error,
// however the ops were grouped.
func TestConcurrentSyncErrorFidelity(t *testing.T) {
	errNeg := errors.New("negative")
	c := &collectFlush{errFor: func(op Op) error {
		if op.X < 0 {
			return errNeg
		}
		return nil
	}}
	b := New(Options{Flush: c.flush})
	defer b.Close()
	const writers, per = 16, 100
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				x := float64(w*per + i)
				if i%3 == 0 {
					x = -x - 1
				}
				err := b.Do(Op{X: x})
				want := x < 0
				if got := errors.Is(err, errNeg); got != want {
					bad.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d ops got the wrong outcome", n)
	}
	if got := c.total(); got != writers*per {
		t.Fatalf("flushed %d ops, want %d", got, writers*per)
	}
	if s := b.Stats(); s.Pending != 0 || s.Ops != writers*per {
		t.Fatalf("stats = %+v, want pending 0, ops %d", s, writers*per)
	}
}

// An async Submit with no Wait must commit via the window trigger.
func TestWindowTriggerCommitsAsyncOps(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: 2 * time.Millisecond})
	defer b.Close()
	f := b.Submit(Op{X: 1})
	select {
	case <-f.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("async op never committed (window trigger dead)")
	}
	if !f.Ready() || f.Err() != nil {
		t.Fatalf("ready=%v err=%v, want ready nil", f.Ready(), f.Err())
	}
}

// Filling MaxBatch must commit without waiting out a long window.
func TestSizeTriggerBeatsWindow(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: time.Hour, MaxBatch: 8})
	defer b.Close()
	futs := make([]*Future, 16)
	for i := range futs {
		futs[i] = b.Submit(Op{X: float64(i)})
	}
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-time.After(2 * time.Second):
			t.Fatalf("op %d never committed (size trigger dead)", i)
		}
	}
}

// Close with a part-filled stripe must flush the pending group: no
// accepted-then-dropped writes.
func TestCloseFlushesPartFilledStripe(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: time.Hour, MaxBatch: 1 << 20})
	futs := make([]*Future, 5)
	for i := range futs {
		futs[i] = b.Submit(Op{X: float64(i)})
	}
	if got := c.total(); got != 0 {
		t.Fatalf("flushed %d ops before Close, want 0 (window is an hour)", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.total(); got != 5 {
		t.Fatalf("flushed %d ops after Close, want 5", got)
	}
	for i, f := range futs {
		if !f.Ready() {
			t.Fatalf("op %d future unresolved after Close", i)
		}
	}
	// After Close the batcher passes through: each Submit commits.
	f := b.Submit(Op{X: 99})
	select {
	case <-f.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("post-Close submit stranded")
	}
	if got := c.total(); got != 6 {
		t.Fatalf("flushed %d ops after post-Close submit, want 6", got)
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// Mixed sync/async churn under the race detector: every op commits
// exactly once, nothing strands, stats balance.
func TestConcurrentStress(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: 200 * time.Microsecond, MaxBatch: 64})
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var tail []*Future
			for i := 0; i < per; i++ {
				op := Op{X: float64(w*per + i), Delete: i%5 == 0}
				if i%2 == 0 {
					if err := b.Do(op); err != nil {
						t.Errorf("do: %v", err)
					}
				} else {
					tail = append(tail, b.Submit(op))
				}
			}
			for _, f := range tail {
				if err := f.Wait(); err != nil {
					t.Errorf("wait: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.total(); got != writers*per {
		t.Fatalf("flushed %d ops, want %d", got, writers*per)
	}
	s := b.Stats()
	if s.Ops != writers*per || s.Pending != 0 {
		t.Fatalf("stats = %+v, want ops %d pending 0", s, writers*per)
	}
	if s.MaxGroup < 1 || s.Flushes < 1 {
		t.Fatalf("stats = %+v, want at least one flush", s)
	}
}

// A group must contain more than one op when writers overlap a slow
// commit — the group-commit property itself.
func TestGroupsFormUnderConcurrency(t *testing.T) {
	c := &collectFlush{}
	slow := func(ops []Op) []error {
		time.Sleep(time.Millisecond)
		return c.flush(ops)
	}
	b := New(Options{Flush: slow})
	defer b.Close()
	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := b.Do(Op{X: float64(w*per + i)}); err != nil {
					t.Errorf("do: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if s := b.Stats(); s.MaxGroup < 2 {
		t.Fatalf("max group %d, want ≥ 2 (writers never coalesced)", s.MaxGroup)
	}
}

// A backend that violates the one-error-per-op contract must fail the
// whole group loudly rather than misattribute outcomes.
func TestShortFlushFailsGroup(t *testing.T) {
	b := New(Options{Flush: func(ops []Op) []error { return nil }, Window: -1})
	defer b.Close()
	err := b.Do(Op{X: 1})
	if err == nil {
		t.Fatal("want a contract-violation error, got nil")
	}
}

// A panicking backend must resolve parked futures and release the
// commit slot before the panic propagates — a poisoned flush must not
// wedge later writers.
func TestFlushPanicReleasesSlot(t *testing.T) {
	var calls atomic.Int64
	b := New(Options{Flush: func(ops []Op) []error {
		if calls.Add(1) == 1 {
			panic("poisoned")
		}
		return make([]error, len(ops))
	}, Window: -1})
	defer b.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		_ = b.Do(Op{X: 1})
	}()
	// The slot must still work.
	done := make(chan error, 1)
	go func() { done <- b.Do(Op{X: 2}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-panic do: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slot wedged after flush panic")
	}
}

// Sync throughput must not be bounded by the window: W/window would be
// far below what chained leader commits deliver.
func TestSyncPathIgnoresWindow(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: time.Hour})
	defer b.Close()
	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := b.Do(Op{X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("100 sync ops took %v — sync path is waiting the window", el)
	}
}

func TestStatsString(t *testing.T) {
	// Smoke: Options defaults round stripes up to a power of two.
	b := New(Options{Flush: func(ops []Op) []error { return make([]error, len(ops)) }, Stripes: 5, Window: -1})
	defer b.Close()
	if got := len(b.strs); got != 8 {
		t.Fatalf("stripes = %d, want 8", got)
	}
	for i := 0; i < 3; i++ {
		if err := b.Do(Op{X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := b.Stats()
	if s.Ops != 3 {
		t.Fatalf("stats ops = %d, want 3", s.Ops)
	}
	_ = fmt.Sprintf("%+v", s)
}
