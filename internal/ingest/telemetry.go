package ingest

// Write-path telemetry: which trigger fired each flush, how big the
// groups ran, how long a flush took, and how long producers stalled in
// backpressure. The histograms are the striped lock-free obs types, so
// recording them sits on the commit path (one flush per group, already
// serialized by the slot) and on the backpressure path (already a
// stall) — never on the warm enqueue path, which stays allocation- and
// observation-free.

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FlushReason identifies the trigger that drove a group commit.
type FlushReason int

const (
	// ReasonSlotWinner: a parked sync caller won the commit slot and
	// led the flush (the self-clocking group-commit path).
	ReasonSlotWinner FlushReason = iota
	// ReasonSize: the background flusher committed because MaxBatch
	// ops were already pending.
	ReasonSize
	// ReasonDeadline: the background flusher committed after waiting
	// out Window.
	ReasonDeadline
	// ReasonBackpressure: a producer over MaxPending drove the commit
	// itself.
	ReasonBackpressure
	// ReasonDirect: a Submit racing Close committed its own op in
	// pass-through mode.
	ReasonDirect
	// ReasonExplicit: an explicit Commit call (Flush API, Close drain).
	ReasonExplicit

	numReasons
)

// reasonNames are the Prometheus label values, indexed by FlushReason.
var reasonNames = [numReasons]string{
	"slot_winner", "size", "deadline", "backpressure", "direct_fallback", "explicit",
}

// String returns the reason's metric label.
func (r FlushReason) String() string {
	if r < 0 || r >= numReasons {
		return "unknown"
	}
	return reasonNames[r]
}

// Telemetry is the batcher's observability state. All fields are safe
// for concurrent use; the zero value is ready.
type Telemetry struct {
	// GroupSize is the distribution of committed group sizes (ops per
	// flush).
	GroupSize obs.CountHist
	// FlushLatency is the distribution of backend Flush call durations.
	FlushLatency obs.Histogram
	// BackpressureWait is the distribution of time producers spent
	// driving commits because pending exceeded MaxPending.
	BackpressureWait obs.Histogram

	reasons [numReasons]atomic.Int64
}

// ReasonCount is one flush-reason counter.
type ReasonCount struct {
	Reason string
	N      int64
}

// ReasonCounts returns the per-reason flush counters in declaration
// order (deterministic for the metrics export).
func (t *Telemetry) ReasonCounts() []ReasonCount {
	out := make([]ReasonCount, numReasons)
	for i := range out {
		out[i] = ReasonCount{Reason: reasonNames[i], N: t.reasons[i].Load()}
	}
	return out
}

// observeFlush records one committed group. Nil-safe so the commit
// path can call it unconditionally.
func (t *Telemetry) observeFlush(reason FlushReason, size int, d time.Duration) {
	if t == nil {
		return
	}
	t.GroupSize.Observe(uint64(size))
	t.FlushLatency.Observe(d)
	t.reasons[reason].Add(1)
}
