package ingest

import (
	"testing"
	"time"
)

// reasonCount pulls one reason's counter out of the snapshot.
func reasonCount(t *testing.T, tel *Telemetry, name string) int64 {
	t.Helper()
	for _, rc := range tel.ReasonCounts() {
		if rc.Reason == name {
			return rc.N
		}
	}
	t.Fatalf("reason %q missing from ReasonCounts", name)
	return 0
}

// TestReasonSlotWinner: a synchronous Do with no background flusher
// parks, wins the commit slot, and the flush is attributed to the
// slot-winner trigger.
func TestReasonSlotWinner(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: -1})
	defer b.Close()
	if err := b.Do(Op{X: 1, Score: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reasonCount(t, b.Telemetry(), "slot_winner"); got != 1 {
		t.Fatalf("slot_winner = %d, want 1", got)
	}
}

// TestReasonSize: with MaxBatch=1 the background flusher finds the
// size trigger already satisfied at wake-up and commits without
// touching the window timer.
func TestReasonSize(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, MaxBatch: 1, Window: time.Hour})
	defer b.Close()
	f := b.Submit(Op{X: 1, Score: 1})
	select {
	case <-f.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("size trigger never fired")
	}
	if got := reasonCount(t, b.Telemetry(), "size"); got != 1 {
		t.Fatalf("size = %d, want 1", got)
	}
}

// TestReasonDeadline: one lone async op under a large MaxBatch commits
// only when the window expires.
func TestReasonDeadline(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: 2 * time.Millisecond})
	defer b.Close()
	f := b.Submit(Op{X: 1, Score: 1})
	select {
	case <-f.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("window trigger never fired")
	}
	if got := reasonCount(t, b.Telemetry(), "deadline"); got != 1 {
		t.Fatalf("deadline = %d, want 1", got)
	}
}

// TestReasonBackpressure: a producer over MaxPending drives the commit
// itself, and the stall is recorded in the backpressure-wait histogram.
func TestReasonBackpressure(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: -1, MaxPending: 1})
	defer b.Close()
	f := b.Submit(Op{X: 1, Score: 1})
	if !f.Ready() {
		t.Fatal("backpressure commit should have resolved the op synchronously")
	}
	tel := b.Telemetry()
	if got := reasonCount(t, tel, "backpressure"); got != 1 {
		t.Fatalf("backpressure = %d, want 1", got)
	}
	if s := tel.BackpressureWait.Snapshot(); s.Count != 1 {
		t.Fatalf("backpressure wait observations = %d, want 1", s.Count)
	}
}

// TestReasonDirect: a Submit after Close commits its own op in
// pass-through mode.
func TestReasonDirect(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: -1})
	b.Close()
	f := b.Submit(Op{X: 1, Score: 1})
	if !f.Ready() {
		t.Fatal("post-Close submit should commit immediately")
	}
	if got := reasonCount(t, b.Telemetry(), "direct_fallback"); got != 1 {
		t.Fatalf("direct_fallback = %d, want 1", got)
	}
}

// TestReasonExplicit: an explicit Commit drains the pending group and
// is attributed as such; the group-size and flush-latency histograms
// record the committed group.
func TestReasonExplicit(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: -1})
	defer b.Close()
	for i := 0; i < 3; i++ {
		b.Submit(Op{X: float64(i), Score: float64(i)})
	}
	b.Commit()
	tel := b.Telemetry()
	if got := reasonCount(t, tel, "explicit"); got != 1 {
		t.Fatalf("explicit = %d, want 1", got)
	}
	gs := tel.GroupSize.Snapshot()
	if gs.Count != 1 || gs.Sum != 3 {
		t.Fatalf("group size histogram count=%d sum=%v, want one group of 3", gs.Count, gs.Sum)
	}
	if fl := tel.FlushLatency.Snapshot(); fl.Count != 1 {
		t.Fatalf("flush latency observations = %d, want 1", fl.Count)
	}
	// An empty Commit records nothing.
	b.Commit()
	if got := reasonCount(t, tel, "explicit"); got != 1 {
		t.Fatalf("empty commit bumped the counter to %d", got)
	}
}

// TestReasonString: labels match declaration order and out-of-range
// values collapse to "unknown".
func TestReasonString(t *testing.T) {
	cases := map[FlushReason]string{
		ReasonSlotWinner:   "slot_winner",
		ReasonSize:         "size",
		ReasonDeadline:     "deadline",
		ReasonBackpressure: "backpressure",
		ReasonDirect:       "direct_fallback",
		ReasonExplicit:     "explicit",
		FlushReason(99):    "unknown",
		FlushReason(-1):    "unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Fatalf("FlushReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

// TestTelemetryDisabled: DisableTelemetry nils the surface without
// changing batching behavior.
func TestTelemetryDisabled(t *testing.T) {
	c := &collectFlush{}
	b := New(Options{Flush: c.flush, Window: -1, DisableTelemetry: true, MaxPending: 1})
	defer b.Close()
	if b.Telemetry() != nil {
		t.Fatal("Telemetry() should be nil when disabled")
	}
	if err := b.Do(Op{X: 1, Score: 1}); err != nil {
		t.Fatal(err)
	}
	// The backpressure path must also tolerate the nil telemetry.
	if f := b.Submit(Op{X: 2, Score: 2}); !f.Ready() {
		t.Fatal("backpressure commit with telemetry disabled")
	}
}

// TestEnqueueZeroAllocs is the testing leg of the //topk:nomalloc
// contract on the warm enqueue path: once a stripe's buffers have
// reached steady-state capacity, enqueue performs no allocation —
// with telemetry enabled, since none of it sits on this path.
func TestEnqueueZeroAllocs(t *testing.T) {
	b := New(Options{Flush: func(ops []Op) []error { return make([]error, len(ops)) },
		Window: -1, Stripes: 1, MaxPending: 1 << 20})
	defer b.Close()

	// Warm the stripe past any size this test reaches, then drain it:
	// commitSlotHeld truncates in place, so capacity is retained.
	for i := 0; i < 1024; i++ {
		b.Submit(Op{X: float64(i), Score: float64(i)})
	}
	b.Commit()

	const runs = 100
	futs := make([]*Future, 0, runs+2)
	for i := 0; i < runs+2; i++ {
		futs = append(futs, &Future{b: b, done: make(chan struct{})})
	}
	next := 0
	if allocs := testing.AllocsPerRun(runs, func() {
		b.enqueue(Op{X: 1, Score: 2}, futs[next])
		next++
	}); allocs != 0 {
		t.Errorf("warm enqueue allocates %.1f times per run; //topk:nomalloc promises 0", allocs)
	}
	b.Commit() // resolve the hand-built futures before Close
}
