// Package ingest is the write-path group-commit layer: it coalesces
// concurrent single-op writes into grouped flushes so the per-op
// coordination cost — an HTTP request on the cluster tier, a topology
// RLock plus a shard mutex in process — amortizes across the group.
//
// The design is classic leader-based group commit. Producers append
// ops to per-P striped buffers (the stripe pick mirrors the obs
// histogram trick: a per-thread cheap random source indexes a
// power-of-two stripe array, so concurrent producers rarely share a
// stripe mutex). A single commit slot — a one-token channel —
// serializes flushes. A synchronous caller parks on its op's future
// AND races for the slot: whichever parked caller wins becomes the
// leader, drains every stripe into one group, flushes it with a single
// backend call, delivers each op's own error to its future, and
// releases the slot to the next leader. Group size is therefore
// self-clocking — it grows exactly with how many writers overlapped
// one commit — and a lone writer degenerates to a direct call plus a
// channel handoff, not to a deadline wait.
//
// Asynchronous producers (Submit without Wait) rely on the background
// flusher instead: it commits a pending group once it has waited
// Window (the latency bound when traffic is sparse) or immediately
// when MaxBatch ops are already pending (the memory bound when it is
// not). When pending ops exceed MaxPending, producers lend a hand by
// trying the commit slot themselves — backpressure by making the
// writers pay, rather than an unbounded queue.
//
// Error fidelity is exact: Flush returns one error per op, positional
// (the ApplyBatch contract), and each future receives precisely the
// error its op produced — so a batched Insert reports the same
// sentinel an unbatched one would have, matchable with errors.Is.
package ingest

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Op is one coalesced write: an insert of (X, Score), or a delete when
// Delete is set. It mirrors topk.BatchOp without importing the root
// package (the root package is the one importing us).
type Op struct {
	Delete   bool
	X, Score float64
}

// Future is the per-op outcome handle. The submitting caller parks on
// Wait; the serving layer's async-ack mode polls Ready/Err instead and
// reports the outcome over HTTP.
type Future struct {
	b    *Batcher
	done chan struct{}
	err  error // written once, before done closes
}

// Done returns a channel closed when the op's group has committed.
func (f *Future) Done() <-chan struct{} { return f.done }

// Ready reports whether the op's group has committed.
func (f *Future) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Err returns the op's outcome once Ready: nil for applied, else
// exactly the error the backend returned for this op. Before the group
// commits it returns nil — callers must check Ready (or use Wait,
// which blocks for the real outcome).
func (f *Future) Err() error {
	if !f.Ready() {
		return nil
	}
	return f.err
}

// Wait parks until the op's group commits and returns its outcome.
// Parked callers drive commits themselves: the first to win the commit
// slot becomes the leader and flushes the whole pending group, so sync
// throughput is bounded by commit latency, never by Window.
func (f *Future) Wait() error {
	b := f.b
	for {
		select {
		case <-f.done:
			return f.err
		case <-b.slot:
			// Leader: commit the current group. Our op was enqueued
			// before Wait, and the drain sweeps every stripe, so after
			// this commit f is resolved (by us, or by a previous leader
			// that beat us to it) and the next select returns. The token
			// goes back via defer so a panicking flush cannot strand it.
			func() {
				defer func() { b.slot <- struct{}{} }()
				b.commitSlotHeld(ReasonSlotWinner)
			}()
		}
	}
}

// Options configures a Batcher. Flush is mandatory; everything else
// has serving-tuned defaults.
type Options struct {
	// Flush commits one group, returning exactly one error per op,
	// positionally aligned (the ApplyBatch contract). Calls are
	// serialized by the commit slot, so Flush may reuse internal
	// buffers across calls. The ops slice is owned by the Batcher and
	// invalid after Flush returns.
	Flush func(ops []Op) []error
	// MaxBatch is the size trigger: the background flusher commits
	// immediately once this many ops are pending instead of waiting
	// out the window. It is a trigger, not a hard group ceiling — ops
	// that arrive while a commit is in flight join the next group,
	// however many there are. Default 256.
	MaxBatch int
	// Window is the deadline trigger: the longest an op waits for
	// company before the background flusher commits its group. It
	// bounds async latency only — sync callers chain commits through
	// the slot and never wait it. Default 1ms; negative disables the
	// background flusher entirely (sync-only operation).
	Window time.Duration
	// Stripes is the enqueue-buffer stripe count, rounded up to a
	// power of two. Default 8.
	Stripes int
	// MaxPending is the backpressure bound: a producer that observes
	// more pending ops tries to drive a commit itself instead of
	// queueing further. Default 4×MaxBatch.
	MaxPending int
	// DisableTelemetry turns off the write-path histograms and
	// flush-reason counters (Telemetry() returns nil). Used by the e15
	// overhead experiment to measure the on-vs-off delta.
	DisableTelemetry bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Window == 0 {
		o.Window = time.Millisecond
	}
	if o.Stripes <= 0 {
		o.Stripes = 8
	}
	n := 1
	for n < o.Stripes {
		n <<= 1
	}
	o.Stripes = n
	if o.MaxPending <= 0 {
		o.MaxPending = 4 * o.MaxBatch
	}
	return o
}

// stripe is one enqueue buffer. The padding keeps neighboring stripes
// off one cache line, the same layout trick as the obs histogram
// stripes — contention is the whole reason the buffers are striped.
type stripe struct {
	mu   sync.Mutex
	ops  []Op
	futs []*Future
	_    [8]uint64
}

// Stats is a snapshot of the batcher's lifetime counters.
type Stats struct {
	// Flushes is the number of non-empty groups committed.
	Flushes int64
	// Ops is the total ops committed across all groups.
	Ops int64
	// MaxGroup is the largest single group committed.
	MaxGroup int64
	// Pending is the ops currently enqueued and not yet committed.
	Pending int64
}

// Batcher coalesces concurrent ops into grouped flushes. Create with
// New; the zero value is not usable. A Batcher must not be copied
// after first use (it owns mutexes and atomics).
type Batcher struct {
	opt  Options
	mask uint32
	strs []stripe

	// slot is the commit slot: a one-token channel. Holding the token
	// grants the exclusive right to drain-and-flush; parked sync
	// callers, the background flusher and Close all race for it.
	slot chan struct{}
	// wake coalesces "ops are pending" signals to the background
	// flusher (capacity 1; a failed non-blocking send means a token is
	// already there, and the flusher's next drain happens after that
	// token is consumed — so every enqueued op is eventually swept).
	wake chan struct{}
	stop chan struct{}
	fin  chan struct{}

	closed  atomic.Bool
	pending atomic.Int64

	flushes  atomic.Int64
	flushed  atomic.Int64
	maxGroup atomic.Int64

	// Group assembly buffers, reused across commits; guarded by slot
	// ownership, not a mutex.
	gops  []Op
	gfuts []*Future

	// tel is the write-path telemetry, nil when disabled. Never
	// reassigned after New, so reads need no synchronization.
	tel *Telemetry
}

// New returns a running Batcher over opt.Flush.
func New(opt Options) *Batcher {
	if opt.Flush == nil {
		panic("ingest: Options.Flush is required")
	}
	opt = opt.withDefaults()
	b := &Batcher{
		opt:  opt,
		mask: uint32(opt.Stripes - 1),
		strs: make([]stripe, opt.Stripes),
		slot: make(chan struct{}, 1),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		fin:  make(chan struct{}),
	}
	if !opt.DisableTelemetry {
		b.tel = &Telemetry{}
	}
	b.slot <- struct{}{}
	if opt.Window > 0 {
		go b.run()
	} else {
		close(b.fin)
	}
	return b
}

// Submit enqueues op and returns its future without waiting. The op
// commits when a parked caller drives the slot, when the background
// flusher's window or size trigger fires, or at Close — whichever
// comes first.
func (b *Batcher) Submit(op Op) *Future {
	f := &Future{b: b, done: make(chan struct{})}
	n := b.enqueue(op, f)
	if b.closed.Load() {
		// Late submit racing Close: the final drain may already have
		// swept this stripe, and the flusher is gone — commit here so
		// the op passes straight through instead of stranding. (The
		// stripe mutex orders us after the final drain, which the
		// closed store precedes, so this branch is reached exactly
		// when it must be.)
		b.commit(ReasonDirect)
		return f
	}
	select {
	case b.wake <- struct{}{}:
	default:
	}
	if n >= int64(b.opt.MaxPending) {
		if b.tel != nil {
			start := time.Now()
			b.tryCommit(ReasonBackpressure)
			b.tel.BackpressureWait.Observe(time.Since(start))
		} else {
			b.tryCommit(ReasonBackpressure)
		}
	}
	return f
}

// enqueue appends (op, f) to a random stripe and returns the new
// pending depth. This is the warm write path — steady state the
// stripe's backing arrays already have capacity (commitSlotHeld
// truncates them in place), so the append is two stores under a
// striped mutex with no allocation; growth is split into the cold
// unannotated method below.
//
//topk:nomalloc
func (b *Batcher) enqueue(op Op, f *Future) int64 {
	s := &b.strs[rand.Uint32()&b.mask]
	s.mu.Lock()
	i := len(s.ops)
	if i < cap(s.ops) && i < cap(s.futs) {
		s.ops = s.ops[:i+1]
		s.ops[i] = op
		s.futs = s.futs[:i+1]
		s.futs[i] = f
	} else {
		s.grow(op, f)
	}
	s.mu.Unlock()
	return b.pending.Add(1)
}

// grow is the cold append path, taken while a stripe's buffers are
// still warming up to the process's steady-state group size.
func (s *stripe) grow(op Op, f *Future) {
	s.ops = append(s.ops, op)
	s.futs = append(s.futs, f)
}

// Do submits op and waits for its group to commit — the synchronous
// write path. It returns exactly the error an unbatched call would
// have: nil, or the backend's sentinel for this op.
func (b *Batcher) Do(op Op) error { return b.Submit(op).Wait() }

// Commit drives one group commit now: acquire the slot, drain every
// stripe, flush, deliver. A no-op when nothing is pending.
func (b *Batcher) Commit() { b.commit(ReasonExplicit) }

// commit is Commit with the flush-reason attribution threaded through.
func (b *Batcher) commit(reason FlushReason) {
	<-b.slot
	defer func() { b.slot <- struct{}{} }()
	b.commitSlotHeld(reason)
}

// tryCommit commits only if the slot is free — the backpressure path,
// where a producer lends a hand but never queues behind the slot.
func (b *Batcher) tryCommit(reason FlushReason) {
	select {
	case <-b.slot:
	default:
		return
	}
	defer func() { b.slot <- struct{}{} }()
	b.commitSlotHeld(reason)
}

// commitSlotHeld drains all stripes into one group and flushes it.
// The caller holds the commit slot token.
func (b *Batcher) commitSlotHeld(reason FlushReason) {
	ops := b.gops[:0]
	futs := b.gfuts[:0]
	for i := range b.strs {
		s := &b.strs[i]
		s.mu.Lock()
		ops = append(ops, s.ops...)
		futs = append(futs, s.futs...)
		s.ops = s.ops[:0]
		for j := range s.futs {
			s.futs[j] = nil // don't retain futures past delivery
		}
		s.futs = s.futs[:0]
		s.mu.Unlock()
	}
	b.gops, b.gfuts = ops, futs
	if len(ops) == 0 {
		return
	}
	b.pending.Add(-int64(len(ops)))

	var flushStart time.Time
	if b.tel != nil {
		flushStart = time.Now()
	}
	var errs []error
	func() {
		defer func() {
			if v := recover(); v != nil {
				// A panicking backend must not strand parked callers:
				// deliver the failure, then propagate (the Commit defer
				// restores the slot token on the way out).
				for _, f := range futs {
					f.err = fmt.Errorf("ingest: flush panicked: %v", v)
					close(f.done)
				}
				panic(v)
			}
		}()
		errs = b.opt.Flush(ops)
	}()
	if len(errs) != len(ops) {
		// Contract violation by the backend; fail every op loudly
		// rather than misattribute outcomes positionally.
		err := fmt.Errorf("ingest: flush returned %d errors for %d ops", len(errs), len(ops))
		for _, f := range futs {
			f.err = err
			close(f.done)
		}
		return
	}
	for i, f := range futs {
		f.err = errs[i]
		close(f.done)
	}
	b.flushes.Add(1)
	b.flushed.Add(int64(len(ops)))
	if g := int64(len(ops)); g > b.maxGroup.Load() {
		b.maxGroup.Store(g) // serialized by the slot; no CAS loop needed
	}
	if b.tel != nil {
		b.tel.observeFlush(reason, len(ops), time.Since(flushStart))
	}
}

// run is the background flusher: the async deadline (Window) and size
// (MaxBatch) triggers. Sync callers never depend on it — they chain
// commits through the slot themselves.
func (b *Batcher) run() {
	defer close(b.fin)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-b.stop:
			return
		case <-b.wake:
		}
		// Let a sparse group gather company for up to Window; a group
		// already at MaxBatch commits immediately.
		reason := ReasonSize
		if b.pending.Load() < int64(b.opt.MaxBatch) {
			reason = ReasonDeadline
			timer.Reset(b.opt.Window)
			select {
			case <-b.stop:
				if !timer.Stop() {
					<-timer.C
				}
				return // Close performs the final drain after we exit
			case <-timer.C:
			}
		}
		b.commit(reason)
		if b.pending.Load() > 0 {
			// Ops arrived during the commit; make sure a wake token
			// exists so they are swept without waiting for a producer.
			select {
			case b.wake <- struct{}{}:
			default:
			}
		}
	}
}

// Close stops the background flusher, commits every pending op — a
// part-filled stripe included — and returns. Accepted ops are never
// dropped: anything enqueued before Close commits here, and a Submit
// racing Close commits itself (see Submit). After Close the Batcher
// keeps working in pass-through mode: each Submit flushes promptly via
// its own commit. Idempotent and safe for concurrent use.
func (b *Batcher) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		close(b.stop)
	}
	<-b.fin
	b.Commit()
	return nil
}

// Telemetry returns the batcher's write-path telemetry, or nil when
// Options.DisableTelemetry was set.
func (b *Batcher) Telemetry() *Telemetry { return b.tel }

// Stats snapshots the lifetime counters.
func (b *Batcher) Stats() Stats {
	return Stats{
		Flushes:  b.flushes.Load(),
		Ops:      b.flushed.Load(),
		MaxGroup: b.maxGroup.Load(),
		Pending:  b.pending.Load(),
	}
}
