// Package btree implements an external-memory B-tree over float64 keys,
// augmented with subtree counts so that rank and selection queries run in
// O(log_B n) I/Os.
//
// The paper leans on such trees throughout §3 and §4: a B-tree on G to
// convert a global rank to an element (§4.1), B-trees on each G_i for
// local-rank selection (§4.2), score B-trees for the update algorithm of
// §3.3, and "a (slightly augmented) B-tree" for range-maximum queries on
// G_{u1} ∪ … ∪ G_{uf}. This package provides all of those capabilities:
//
//   - Insert / Delete / Contains           O(log_B n)
//   - RankDesc (rank = |{e' ≥ e}|, as defined in §3.1)
//   - SelectDesc (element of a given descending rank)
//   - CountRange, MaxInRange (the augmented range-max of §3.3)
//
// Keys are assumed distinct, matching the paper's distinct-score
// assumption.
//
// The tree is leaf-oriented: internal nodes store, per child, the child's
// maximum key and subtree count. Every node occupies one disk block.
package btree

import (
	"fmt"
	"math"

	"repro/internal/em"
)

// node is one B-tree node. Leaves store data keys in ascending order;
// internal nodes store one router (max key of subtree) and one count per
// child, aligned with kids.
type node struct {
	leaf   bool
	keys   []float64   // leaf: data; internal: per-child max key
	kids   []em.Handle // internal only
	counts []int       // internal only: per-child subtree size
}

func (n *node) size() int {
	if n.leaf {
		return 1 + len(n.keys)
	}
	return 1 + 3*len(n.keys)
}

func (n *node) total() int {
	if n.leaf {
		return len(n.keys)
	}
	t := 0
	for _, c := range n.counts {
		t += c
	}
	return t
}

// Tree is an order-statistic external B-tree. Create with New.
type Tree struct {
	store   *em.Store[*node]
	root    em.Handle
	n       int
	leafCap int // max keys in a leaf
	kidCap  int // max children of an internal node
	height  int
}

// New creates an empty tree on d. Node capacities are derived from the
// block size so each node fits in one block.
func New(d *em.Disk, name string) *Tree {
	leafCap := d.B() - 1
	if leafCap < 4 {
		leafCap = 4
	}
	kidCap := (d.B() - 1) / 3
	if kidCap < 4 {
		kidCap = 4
	}
	t := &Tree{
		store:   em.NewStore(d, name, func(n *node) int { return n.size() }),
		leafCap: leafCap,
		kidCap:  kidCap,
		height:  1,
	}
	t.root = t.store.Alloc(&node{leaf: true})
	return t
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.n }

// Height returns the number of levels (a lone leaf has height 1).
func (t *Tree) Height() int { return t.height }

// Free releases every node of the tree.
func (t *Tree) Free() {
	var rec func(h em.Handle)
	rec = func(h em.Handle) {
		nd := t.store.Read(h)
		if !nd.leaf {
			for _, k := range nd.kids {
				rec(k)
			}
		}
		t.store.Free(h)
	}
	rec(t.root)
	t.root = em.NilHandle
	t.n = 0
}

// childFor returns the index of the child a key k belongs to: the first
// child whose router (max key) is ≥ k, or the last child.
func childFor(nd *node, k float64) int {
	lo, hi := 0, len(nd.keys)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafInsertPos returns the index at which k should sit in a leaf.
func leafInsertPos(nd *node, k float64) int {
	lo, hi := 0, len(nd.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether k is present.
func (t *Tree) Contains(k float64) bool {
	h := t.root
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			i := leafInsertPos(nd, k)
			return i < len(nd.keys) && nd.keys[i] == k
		}
		i := childFor(nd, k)
		h = nd.kids[i]
	}
}

// Insert adds k. It panics if k is already present (keys are distinct by
// the problem's standing assumption; callers enforce it).
func (t *Tree) Insert(k float64) {
	moreKid, grew := t.insertAt(t.root, k)
	if grew {
		old := t.store.Read(t.root)
		more := t.store.Read(moreKid)
		root := &node{
			keys:   []float64{maxKeyOf(old), maxKeyOf(more)},
			kids:   []em.Handle{t.root, moreKid},
			counts: []int{old.total(), more.total()},
		}
		t.root = t.store.Alloc(root)
		t.height++
	}
	t.n++
}

func maxKeyOf(nd *node) float64 {
	if len(nd.keys) == 0 {
		return math.Inf(-1)
	}
	return nd.keys[len(nd.keys)-1]
}

// insertAt inserts k under h. If h splits, the new right sibling's handle
// is returned with grew=true.
func (t *Tree) insertAt(h em.Handle, k float64) (em.Handle, bool) {
	nd := t.store.Read(h)
	if nd.leaf {
		i := leafInsertPos(nd, k)
		if i < len(nd.keys) && nd.keys[i] == k {
			panic(fmt.Sprintf("btree: duplicate key %v", k))
		}
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = k
		if len(nd.keys) <= t.leafCap {
			t.store.Write(h, nd)
			return em.NilHandle, false
		}
		mid := len(nd.keys) / 2
		right := &node{leaf: true, keys: append([]float64(nil), nd.keys[mid:]...)}
		nd.keys = nd.keys[:mid]
		t.store.Write(h, nd)
		return t.store.Alloc(right), true
	}

	i := childFor(nd, k)
	newKid, grew := t.insertAt(nd.kids[i], k)
	// Refresh router and count for child i.
	child := t.store.Read(nd.kids[i])
	nd.keys[i] = maxKeyOf(child)
	nd.counts[i] = child.total()
	if grew {
		nc := t.store.Read(newKid)
		nd.keys = append(nd.keys, 0)
		nd.kids = append(nd.kids, em.NilHandle)
		nd.counts = append(nd.counts, 0)
		copy(nd.keys[i+2:], nd.keys[i+1:])
		copy(nd.kids[i+2:], nd.kids[i+1:])
		copy(nd.counts[i+2:], nd.counts[i+1:])
		nd.keys[i+1] = maxKeyOf(nc)
		nd.kids[i+1] = newKid
		nd.counts[i+1] = nc.total()
	}
	if len(nd.kids) <= t.kidCap {
		t.store.Write(h, nd)
		return em.NilHandle, false
	}
	mid := len(nd.kids) / 2
	right := &node{
		keys:   append([]float64(nil), nd.keys[mid:]...),
		kids:   append([]em.Handle(nil), nd.kids[mid:]...),
		counts: append([]int(nil), nd.counts[mid:]...),
	}
	nd.keys = nd.keys[:mid]
	nd.kids = nd.kids[:mid]
	nd.counts = nd.counts[:mid]
	t.store.Write(h, nd)
	return t.store.Alloc(right), true
}

// Delete removes k and reports whether it was present.
func (t *Tree) Delete(k float64) bool {
	ok := t.deleteAt(t.root, k)
	if !ok {
		return false
	}
	t.n--
	// Collapse a root with a single child.
	for {
		root := t.store.Read(t.root)
		if root.leaf || len(root.kids) > 1 {
			break
		}
		child := root.kids[0]
		t.store.Free(t.root)
		t.root = child
		t.height--
	}
	return true
}

func (t *Tree) minKids() int { return (t.kidCap + 1) / 2 }
func (t *Tree) minKeys() int { return (t.leafCap + 1) / 2 }

func (t *Tree) deleteAt(h em.Handle, k float64) bool {
	nd := t.store.Read(h)
	if nd.leaf {
		i := leafInsertPos(nd, k)
		if i >= len(nd.keys) || nd.keys[i] != k {
			return false
		}
		nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
		t.store.Write(h, nd)
		return true
	}
	i := childFor(nd, k)
	if !t.deleteAt(nd.kids[i], k) {
		return false
	}
	child := t.store.Read(nd.kids[i])
	nd.keys[i] = maxKeyOf(child)
	nd.counts[i] = child.total()
	t.rebalanceChild(h, nd, i)
	return true
}

// rebalanceChild restores the minimum-occupancy invariant of child i of
// nd (handle h), borrowing from or merging with a sibling. nd is written
// back in all paths.
func (t *Tree) rebalanceChild(h em.Handle, nd *node, i int) {
	child := t.store.Read(nd.kids[i])
	deficient := false
	if child.leaf {
		deficient = len(child.keys) < t.minKeys()
	} else {
		deficient = len(child.kids) < t.minKids()
	}
	if !deficient || len(nd.kids) == 1 {
		t.store.Write(h, nd)
		return
	}
	// Prefer the left sibling; fall back to the right.
	j := i - 1
	if j < 0 {
		j = i + 1
	}
	sib := t.store.Read(nd.kids[j])
	canBorrow := false
	if sib.leaf {
		canBorrow = len(sib.keys) > t.minKeys()
	} else {
		canBorrow = len(sib.kids) > t.minKids()
	}
	if canBorrow {
		if j < i { // borrow last from left sibling
			if child.leaf {
				last := sib.keys[len(sib.keys)-1]
				sib.keys = sib.keys[:len(sib.keys)-1]
				child.keys = append([]float64{last}, child.keys...)
			} else {
				nk := len(sib.kids) - 1
				child.keys = append([]float64{sib.keys[nk]}, child.keys...)
				child.kids = append([]em.Handle{sib.kids[nk]}, child.kids...)
				child.counts = append([]int{sib.counts[nk]}, child.counts...)
				sib.keys, sib.kids, sib.counts = sib.keys[:nk], sib.kids[:nk], sib.counts[:nk]
			}
		} else { // borrow first from right sibling
			if child.leaf {
				first := sib.keys[0]
				sib.keys = sib.keys[1:]
				child.keys = append(child.keys, first)
			} else {
				child.keys = append(child.keys, sib.keys[0])
				child.kids = append(child.kids, sib.kids[0])
				child.counts = append(child.counts, sib.counts[0])
				sib.keys, sib.kids, sib.counts = sib.keys[1:], sib.kids[1:], sib.counts[1:]
			}
		}
		t.store.Write(nd.kids[i], child)
		t.store.Write(nd.kids[j], sib)
		nd.keys[i] = maxKeyOf(child)
		nd.counts[i] = child.total()
		nd.keys[j] = maxKeyOf(sib)
		nd.counts[j] = sib.total()
		t.store.Write(h, nd)
		return
	}
	// Merge child into sibling (or vice versa): keep the left one.
	l, r := i, j
	if j < i {
		l, r = j, i
	}
	left := t.store.Read(nd.kids[l])
	right := t.store.Read(nd.kids[r])
	left.keys = append(left.keys, right.keys...)
	if !left.leaf {
		left.kids = append(left.kids, right.kids...)
		left.counts = append(left.counts, right.counts...)
	}
	t.store.Write(nd.kids[l], left)
	t.store.Free(nd.kids[r])
	nd.keys[l] = maxKeyOf(left)
	nd.counts[l] = left.total()
	nd.keys = append(nd.keys[:r], nd.keys[r+1:]...)
	nd.kids = append(nd.kids[:r], nd.kids[r+1:]...)
	nd.counts = append(nd.counts[:r], nd.counts[r+1:]...)
	t.store.Write(h, nd)
}

// Max returns the largest key, if any.
func (t *Tree) Max() (float64, bool) {
	if t.n == 0 {
		return 0, false
	}
	h := t.root
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			return nd.keys[len(nd.keys)-1], true
		}
		h = nd.kids[len(nd.kids)-1]
	}
}

// Min returns the smallest key, if any.
func (t *Tree) Min() (float64, bool) {
	if t.n == 0 {
		return 0, false
	}
	h := t.root
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			return nd.keys[0], true
		}
		h = nd.kids[0]
	}
}

// CountGE returns |{e ∈ tree : e ≥ k}|.
func (t *Tree) CountGE(k float64) int {
	h := t.root
	cnt := 0
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			i := leafInsertPos(nd, k)
			return cnt + len(nd.keys) - i
		}
		i := childFor(nd, k)
		for j := i + 1; j < len(nd.counts); j++ {
			cnt += nd.counts[j]
		}
		h = nd.kids[i]
	}
}

// RankDesc returns the rank of k as defined in §3.1: |{e' ≥ k}|. The
// largest element has rank 1. k need not be present (the result is then
// the rank k would have counting strictly greater elements, plus nothing
// for itself).
func (t *Tree) RankDesc(k float64) int { return t.CountGE(k) }

// SelectDesc returns the key of descending rank r (1 = largest).
func (t *Tree) SelectDesc(r int) (float64, bool) {
	if r < 1 || r > t.n {
		return 0, false
	}
	// Descending rank r = ascending index n-r (0-based).
	idx := t.n - r
	h := t.root
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			return nd.keys[idx], true
		}
		for i, c := range nd.counts {
			if idx < c {
				h = nd.kids[i]
				break
			}
			idx -= c
		}
	}
}

// CountRange returns |{e : lo ≤ e ≤ hi}|.
func (t *Tree) CountRange(lo, hi float64) int {
	if lo > hi {
		return 0
	}
	return t.CountGE(lo) - t.CountGE(math.Nextafter(hi, math.Inf(1)))
}

// MaxInRange returns the largest key in [lo, hi], if any. This is the
// "slightly augmented" range-max capability §3.3 requires of the B-tree
// on G_{u1} ∪ … ∪ G_{uf}; with max-key routers it descends one path.
func (t *Tree) MaxInRange(lo, hi float64) (float64, bool) {
	if t.n == 0 || lo > hi {
		return 0, false
	}
	h := t.root
	// cand tracks the best predecessor-of-hi seen on the descent: when we
	// descend into child i, the max key of child i-1 (router i-1, which is
	// < hi by choice of i) is the answer should child i hold nothing ≤ hi.
	cand, haveCand := 0.0, false
	for {
		nd := t.store.Read(h)
		if nd.leaf {
			i := leafInsertPos(nd, math.Nextafter(hi, math.Inf(1))) - 1
			if i >= 0 {
				if nd.keys[i] >= lo {
					return nd.keys[i], true
				}
				return 0, false
			}
			if haveCand && cand >= lo {
				return cand, true
			}
			return 0, false
		}
		i := childFor(nd, hi)
		if i > 0 {
			cand, haveCand = nd.keys[i-1], true
		}
		h = nd.kids[i]
	}
}

// AscendRange visits keys in [lo, hi] in ascending order until visit
// returns false.
func (t *Tree) AscendRange(lo, hi float64, visit func(float64) bool) {
	t.ascend(t.root, lo, hi, visit)
}

func (t *Tree) ascend(h em.Handle, lo, hi float64, visit func(float64) bool) bool {
	nd := t.store.Read(h)
	if nd.leaf {
		for _, k := range nd.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return false
			}
			if !visit(k) {
				return false
			}
		}
		return true
	}
	for i, kid := range nd.kids {
		if nd.keys[i] < lo {
			continue
		}
		if !t.ascend(kid, lo, hi, visit) {
			return false
		}
		if nd.keys[i] > hi {
			return false
		}
	}
	return true
}

// Keys returns all keys ascending (test/debug helper; costs a full scan).
func (t *Tree) Keys() []float64 {
	out := make([]float64, 0, t.n)
	t.AscendRange(math.Inf(-1), math.Inf(1), func(k float64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// CheckInvariants validates structural invariants (router correctness,
// counts, ordering, occupancy) without charging I/Os. Test helper.
func (t *Tree) CheckInvariants() error {
	var rec func(h em.Handle, depth int) (int, float64, error)
	rec = func(h em.Handle, depth int) (int, float64, error) {
		nd := t.store.Peek(h)
		if nd.leaf {
			if depth != t.height {
				return 0, 0, fmt.Errorf("leaf at depth %d, height %d", depth, t.height)
			}
			for i := 1; i < len(nd.keys); i++ {
				if nd.keys[i-1] >= nd.keys[i] {
					return 0, 0, fmt.Errorf("leaf keys out of order")
				}
			}
			return len(nd.keys), maxKeyOf(nd), nil
		}
		if len(nd.kids) != len(nd.keys) || len(nd.kids) != len(nd.counts) {
			return 0, 0, fmt.Errorf("internal arity mismatch")
		}
		total := 0
		for i, kid := range nd.kids {
			c, mx, err := rec(kid, depth+1)
			if err != nil {
				return 0, 0, err
			}
			if c != nd.counts[i] {
				return 0, 0, fmt.Errorf("count mismatch: have %d want %d", nd.counts[i], c)
			}
			if mx != nd.keys[i] {
				return 0, 0, fmt.Errorf("router mismatch: have %v want %v", nd.keys[i], mx)
			}
			if i > 0 && nd.keys[i-1] >= nd.keys[i] {
				return 0, 0, fmt.Errorf("routers out of order")
			}
			total += c
		}
		return total, maxKeyOf(nd), nil
	}
	total, _, err := rec(t.root, 1)
	if err != nil {
		return err
	}
	if total != t.n {
		return fmt.Errorf("size mismatch: counted %d, Len=%d", total, t.n)
	}
	return nil
}
