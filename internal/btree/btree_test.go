package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/em"
)

func newTestTree(b int) *Tree {
	d := em.NewDisk(em.Config{B: b, M: 8 * b})
	return New(d, "t")
}

func fill(t *testing.T, tr *Tree, keys []float64) {
	t.Helper()
	for _, k := range keys {
		tr.Insert(k)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after fill: %v", err)
	}
}

func permutedInts(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]float64, n)
	for i := range ks {
		ks[i] = float64(i)
	}
	rng.Shuffle(n, func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	return ks
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(16)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty: len=%d h=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := tr.SelectDesc(1); ok {
		t.Fatal("SelectDesc on empty")
	}
	if tr.Contains(3) {
		t.Fatal("Contains on empty")
	}
	if tr.Delete(3) {
		t.Fatal("Delete on empty")
	}
}

func TestInsertContains(t *testing.T) {
	tr := newTestTree(16)
	fill(t, tr, permutedInts(500, 1))
	for i := 0; i < 500; i++ {
		if !tr.Contains(float64(i)) {
			t.Fatalf("missing %d", i)
		}
	}
	if tr.Contains(500) || tr.Contains(-1) || tr.Contains(3.5) {
		t.Fatal("phantom key")
	}
	if tr.Len() != 500 {
		t.Fatalf("len=%d", tr.Len())
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	tr := newTestTree(16)
	tr.Insert(7)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	tr.Insert(7)
}

func TestMinMax(t *testing.T) {
	tr := newTestTree(8)
	fill(t, tr, permutedInts(300, 2))
	if mx, _ := tr.Max(); mx != 299 {
		t.Fatalf("max=%v", mx)
	}
	if mn, _ := tr.Min(); mn != 0 {
		t.Fatalf("min=%v", mn)
	}
}

func TestRankDesc(t *testing.T) {
	tr := newTestTree(16)
	fill(t, tr, permutedInts(100, 3))
	for i := 0; i < 100; i++ {
		want := 100 - i // |{e >= i}| among 0..99
		if got := tr.RankDesc(float64(i)); got != want {
			t.Fatalf("RankDesc(%d)=%d, want %d", i, got, want)
		}
	}
	if got := tr.RankDesc(98.5); got != 1 {
		t.Fatalf("RankDesc(98.5)=%d", got)
	}
	if got := tr.RankDesc(99.5); got != 0 {
		t.Fatalf("RankDesc(99.5)=%d", got)
	}
	if got := tr.RankDesc(1000); got != 0 {
		t.Fatalf("RankDesc(1000)=%d", got)
	}
	if got := tr.RankDesc(-5); got != 100 {
		t.Fatalf("RankDesc(-5)=%d", got)
	}
}

func TestSelectDesc(t *testing.T) {
	tr := newTestTree(16)
	fill(t, tr, permutedInts(128, 4))
	for r := 1; r <= 128; r++ {
		k, ok := tr.SelectDesc(r)
		if !ok || k != float64(128-r) {
			t.Fatalf("SelectDesc(%d)=%v,%v", r, k, ok)
		}
	}
	if _, ok := tr.SelectDesc(0); ok {
		t.Fatal("rank 0 accepted")
	}
	if _, ok := tr.SelectDesc(129); ok {
		t.Fatal("rank beyond n accepted")
	}
}

func TestRankSelectInverse(t *testing.T) {
	tr := newTestTree(16)
	rng := rand.New(rand.NewSource(5))
	seen := map[float64]bool{}
	for len(seen) < 400 {
		k := rng.Float64() * 1e6
		if !seen[k] {
			seen[k] = true
			tr.Insert(k)
		}
	}
	for r := 1; r <= tr.Len(); r += 7 {
		k, ok := tr.SelectDesc(r)
		if !ok {
			t.Fatalf("select %d failed", r)
		}
		if got := tr.RankDesc(k); got != r {
			t.Fatalf("rank(select(%d))=%d", r, got)
		}
	}
}

func TestDeleteHalf(t *testing.T) {
	tr := newTestTree(8)
	keys := permutedInts(600, 6)
	fill(t, tr, keys)
	for i, k := range keys {
		if i%2 == 0 {
			if !tr.Delete(k) {
				t.Fatalf("delete %v failed", k)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
	if tr.Len() != 300 {
		t.Fatalf("len=%d", tr.Len())
	}
	for i, k := range keys {
		if got := tr.Contains(k); got != (i%2 == 1) {
			t.Fatalf("contains(%v)=%v at i=%d", k, got, i)
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := newTestTree(8)
	keys := permutedInts(250, 7)
	fill(t, tr, keys)
	for _, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("delete %v", k)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after drain: len=%d h=%d", tr.Len(), tr.Height())
	}
	fill(t, tr, permutedInts(100, 8))
	if tr.Len() != 100 {
		t.Fatalf("reuse len=%d", tr.Len())
	}
}

func TestCountRange(t *testing.T) {
	tr := newTestTree(16)
	fill(t, tr, permutedInts(200, 9))
	cases := []struct {
		lo, hi float64
		want   int
	}{
		{0, 199, 200}, {50, 59, 10}, {50, 50, 1}, {50.5, 50.9, 0},
		{-10, -1, 0}, {199, 300, 1}, {150, 100, 0}, {-5, 1000, 200},
	}
	for _, c := range cases {
		if got := tr.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%v,%v)=%d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestMaxInRange(t *testing.T) {
	tr := newTestTree(8)
	fill(t, tr, []float64{2, 4, 8, 16, 32, 64, 128, 256, 512})
	cases := []struct {
		lo, hi float64
		want   float64
		ok     bool
	}{
		{0, 1000, 512, true}, {3, 100, 64, true}, {5, 7, 0, false},
		{8, 8, 8, true}, {9, 15, 0, false}, {100, 50, 0, false},
		{513, 1000, 0, false}, {0, 2, 2, true}, {33, 63, 0, false},
		{17, 32, 32, true},
	}
	for _, c := range cases {
		got, ok := tr.MaxInRange(c.lo, c.hi)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("MaxInRange(%v,%v)=%v,%v want %v,%v", c.lo, c.hi, got, ok, c.want, c.ok)
		}
	}
}

func TestMaxInRangeDense(t *testing.T) {
	tr := newTestTree(8)
	fill(t, tr, permutedInts(300, 10))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		lo := rng.Float64()*320 - 10
		hi := lo + rng.Float64()*100
		got, ok := tr.MaxInRange(lo, hi)
		want, wok := bruteMaxInRange(300, lo, hi)
		if ok != wok || (ok && got != want) {
			t.Fatalf("MaxInRange(%v,%v)=%v,%v want %v,%v", lo, hi, got, ok, want, wok)
		}
	}
}

func bruteMaxInRange(n int, lo, hi float64) (float64, bool) {
	best, ok := 0.0, false
	for i := 0; i < n; i++ {
		k := float64(i)
		if k >= lo && k <= hi && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func TestAscendRange(t *testing.T) {
	tr := newTestTree(8)
	fill(t, tr, permutedInts(100, 12))
	var got []float64
	tr.AscendRange(10, 20, func(k float64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("ascend got %v", got)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatal("not sorted")
	}
	// Early stop.
	count := 0
	tr.AscendRange(0, 99, func(float64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop count=%d", count)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := newTestTree(64) // leafCap 63, kidCap 21
	fill(t, tr, permutedInts(20000, 13))
	// log_21(20000/63) ≈ 1.9 → height should be small.
	if tr.Height() > 4 {
		t.Fatalf("height %d too large for n=20000, B=64", tr.Height())
	}
}

func TestIOCostLogarithmic(t *testing.T) {
	d := em.NewDisk(em.Config{B: 64, M: 4 * 64}) // tiny pool: 4 frames
	tr := New(d, "t")
	for _, k := range permutedInts(20000, 14) {
		tr.Insert(k)
	}
	d.DropCache()
	base := d.Stats()
	const queries = 100
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < queries; i++ {
		tr.Contains(rng.Float64() * 20000)
		d.DropCache()
	}
	per := float64(d.Stats().Sub(base).Reads) / queries
	if per > float64(tr.Height())+1 {
		t.Fatalf("per-query reads %.1f exceeds height %d", per, tr.Height())
	}
}

func TestSpaceLinear(t *testing.T) {
	d := em.NewDisk(em.Config{B: 64, M: 16 * 64})
	tr := New(d, "t")
	n := 30000
	for _, k := range permutedInts(n, 16) {
		tr.Insert(k)
	}
	live := d.Stats().BlocksLive
	// n keys / (leafCap/2) leaves minimum; allow generous constant.
	bound := int64(6 * n / d.B())
	if live > bound {
		t.Fatalf("space %d blocks exceeds %d (n=%d, B=%d)", live, bound, n, d.B())
	}
}

func TestFreeReleasesBlocks(t *testing.T) {
	d := em.NewDisk(em.Config{B: 16, M: 128})
	tr := New(d, "t")
	for _, k := range permutedInts(500, 17) {
		tr.Insert(k)
	}
	tr.Free()
	if live := d.Stats().BlocksLive; live != 0 {
		t.Fatalf("blocks leaked: %d", live)
	}
}

func TestSmallBlockSizes(t *testing.T) {
	for _, b := range []int{8, 12, 16, 32} {
		tr := newTestTree(b)
		keys := permutedInts(400, int64(b))
		fill(t, tr, keys)
		for i := 0; i < 400; i += 3 {
			if !tr.Delete(float64(i)) {
				t.Fatalf("B=%d delete %d", b, i)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("B=%d: %v", b, err)
		}
	}
}

// Property: tree behaves identically to a sorted-slice model under random
// insert/delete/rank/select interleavings.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []int16) bool {
		tr := newTestTree(8)
		var model []float64
		for _, op := range ops {
			k := float64(int(op) % 200)
			idx := sort.SearchFloat64s(model, k)
			present := idx < len(model) && model[idx] == k
			switch {
			case op%2 == 0 && !present:
				tr.Insert(k)
				model = append(model, 0)
				copy(model[idx+1:], model[idx:])
				model[idx] = k
			case op%2 == 1:
				got := tr.Delete(k)
				if got != present {
					return false
				}
				if present {
					model = append(model[:idx], model[idx+1:]...)
				}
			}
			if tr.Len() != len(model) {
				return false
			}
			if got := tr.CountGE(k); got != len(model)-sort.SearchFloat64s(model, k) {
				return false
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		got := tr.Keys()
		if len(got) != len(model) {
			return false
		}
		for i := range got {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: SelectDesc(RankDesc(k)) == k for all present keys.
func TestQuickRankSelectDuality(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := newTestTree(16)
		seen := map[float64]bool{}
		for _, r := range raw {
			k := float64(r)
			if !seen[k] {
				seen[k] = true
				tr.Insert(k)
			}
		}
		for k := range seen {
			r := tr.RankDesc(k)
			got, ok := tr.SelectDesc(r)
			if !ok || got != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAscendMatchesInfRange(t *testing.T) {
	tr := newTestTree(16)
	fill(t, tr, permutedInts(50, 18))
	var got []float64
	tr.AscendRange(math.Inf(-1), math.Inf(1), func(k float64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 50 {
		t.Fatalf("full ascend len=%d", len(got))
	}
}

func BenchmarkInsert(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	tr := New(d, "t")
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64() + float64(i))
	}
}

func BenchmarkRankDesc(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	tr := New(d, "t")
	for _, k := range permutedInts(50000, 2) {
		tr.Insert(k)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RankDesc(rng.Float64() * 50000)
	}
}
