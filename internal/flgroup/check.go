package flgroup

import (
	"fmt"
	"math"

	"repro/internal/sketch"
)

// CheckInvariants verifies the compressed state against the B-trees,
// meter-free (test helper):
//
//   - sketch sizes match |G_i|; pivot counts match NumPivots;
//   - every pivot's stored global and local ranks are exact, and the
//     local rank lies in its window [base^(j−1), base^j);
//   - the prefix block holds exactly the global ranks of the top
//     min(prefLen, |G_i|) elements of each G_i, in order;
//   - the maxima block matches each G_i's maximum;
//   - |G| equals Σ|G_i|.
func (g *Group) CheckInvariants() error {
	s := g.decodeSketches(g.blocks.Peek(g.skb))
	pref := g.decodePrefix(g.blocks.Peek(g.pfb))
	mx := g.blocks.Peek(g.mxb)

	total := 0
	for i := 0; i < g.f; i++ {
		n := g.gis[i].Len()
		total += n
		if s.sizes[i] != n {
			return fmt.Errorf("set %d: sketch size %d, B-tree %d", i+1, s.sizes[i], n)
		}
		if want := sketch.NumPivots(n, g.base); len(s.piv[i]) != want {
			return fmt.Errorf("set %d: %d pivots, want %d", i+1, len(s.piv[i]), want)
		}
		for j, p := range s.piv[i] {
			v, ok := g.g.SelectDesc(p.G)
			if !ok {
				return fmt.Errorf("set %d pivot %d: global rank %d out of range", i+1, j+1, p.G)
			}
			if !g.gis[i].Contains(v) {
				return fmt.Errorf("set %d pivot %d: element %v not in G_%d", i+1, j+1, v, i+1)
			}
			if lr := g.gis[i].RankDesc(v); lr != p.L {
				return fmt.Errorf("set %d pivot %d: local rank %d, true %d", i+1, j+1, p.L, lr)
			}
			lo := sketch.WindowLo(j+1, g.base)
			if p.L < lo || p.L >= lo*g.base {
				return fmt.Errorf("set %d pivot %d: local rank %d outside [%d,%d)", i+1, j+1, p.L, lo, lo*g.base)
			}
		}
		wantPref := g.prefLen
		if n < wantPref {
			wantPref = n
		}
		if len(pref[i]) != wantPref {
			return fmt.Errorf("set %d: prefix len %d, want %d", i+1, len(pref[i]), wantPref)
		}
		for r, gr := range pref[i] {
			v, ok := g.gis[i].SelectDesc(r + 1)
			if !ok {
				return fmt.Errorf("set %d prefix %d: local select failed", i+1, r+1)
			}
			if got := g.g.RankDesc(v); got != gr {
				return fmt.Errorf("set %d prefix %d: stored global %d, true %d", i+1, r+1, gr, got)
			}
		}
		if n > 0 {
			m, _ := g.gis[i].Max()
			if math.Float64frombits(mx[i]) != m {
				return fmt.Errorf("set %d: maxima block %v, true %v", i+1, math.Float64frombits(mx[i]), m)
			}
		}
	}
	if total != g.g.Len() {
		return fmt.Errorf("|G|=%d, Σ|G_i|=%d", g.g.Len(), total)
	}
	return nil
}
