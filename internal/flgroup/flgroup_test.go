package flgroup

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/em"
)

func newDisk(b int) *em.Disk { return em.NewDisk(em.Config{B: b, M: 32 * b}) }

// model mirrors the group as plain slices for oracle checks.
type model struct {
	sets [][]float64
}

func (m *model) insert(i int, v float64) { m.sets[i-1] = append(m.sets[i-1], v) }

func (m *model) delete(i int, v float64) {
	s := m.sets[i-1]
	for j, x := range s {
		if x == v {
			m.sets[i-1] = append(s[:j], s[j+1:]...)
			return
		}
	}
}

func (m *model) unionRank(a1, a2 int, v float64) int {
	r := 0
	for i := a1 - 1; i < a2; i++ {
		for _, x := range m.sets[i] {
			if x >= v {
				r++
			}
		}
	}
	return r
}

func (m *model) unionLen(a1, a2 int) int {
	n := 0
	for i := a1 - 1; i < a2; i++ {
		n += len(m.sets[i])
	}
	return n
}

func (m *model) unionMax(a1, a2 int) (float64, bool) {
	best, ok := 0.0, false
	for i := a1 - 1; i < a2; i++ {
		for _, x := range m.sets[i] {
			if !ok || x > best {
				best, ok = x, true
			}
		}
	}
	return best, ok
}

func fillGroup(g *Group, m *model, perSet int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[float64]bool{}
	for i := 1; i <= g.F(); i++ {
		for j := 0; j < perSet; j++ {
			v := rng.Float64() * 1e9
			if seen[v] {
				j--
				continue
			}
			seen[v] = true
			g.Insert(i, v)
			m.insert(i, v)
		}
	}
}

func TestEmptyGroup(t *testing.T) {
	g := New(newDisk(64), 4, 32)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 || g.SizeOf(1) != 0 {
		t.Fatal("not empty")
	}
	if _, ok := g.MaxIn(1, 4); ok {
		t.Fatal("max of empty")
	}
	if got := g.CountIn(1, 4); got != 0 {
		t.Fatalf("count %d", got)
	}
}

func TestInsertInvariants(t *testing.T) {
	g := New(newDisk(64), 6, 64)
	m := &model{sets: make([][]float64, 6)}
	rng := rand.New(rand.NewSource(1))
	seen := map[float64]bool{}
	for op := 0; op < 300; op++ {
		i := rng.Intn(6) + 1
		if g.SizeOf(i) >= 64 {
			continue
		}
		v := rng.Float64() * 1e9
		if seen[v] {
			continue
		}
		seen[v] = true
		g.Insert(i, v)
		m.insert(i, v)
		if op%23 == 0 {
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectGuarantee(t *testing.T) {
	g := New(newDisk(64), 8, 128)
	m := &model{sets: make([][]float64, 8)}
	fillGroup(g, m, 100, 2)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a1 := rng.Intn(8) + 1
		a2 := a1 + rng.Intn(8-a1+1)
		un := m.unionLen(a1, a2)
		k := rng.Intn(un) + 1
		x := g.Select(a1, a2, k)
		var r int
		if math.IsInf(x, -1) {
			r = un
		} else {
			r = m.unionRank(a1, a2, x)
		}
		if r < k || r > g.Bound()*k {
			t.Fatalf("trial %d: [%d,%d] k=%d rank %d outside [%d,%d]",
				trial, a1, a2, k, r, k, g.Bound()*k)
		}
	}
}

func TestMaxIn(t *testing.T) {
	g := New(newDisk(64), 5, 40)
	m := &model{sets: make([][]float64, 5)}
	fillGroup(g, m, 30, 4)
	for a1 := 1; a1 <= 5; a1++ {
		for a2 := a1; a2 <= 5; a2++ {
			got, ok := g.MaxIn(a1, a2)
			want, wok := m.unionMax(a1, a2)
			if ok != wok || got != want {
				t.Fatalf("MaxIn(%d,%d)=%v,%v want %v,%v", a1, a2, got, ok, want, wok)
			}
		}
	}
}

func TestMaxInOneIO(t *testing.T) {
	d := newDisk(64)
	g := New(d, 8, 64)
	m := &model{sets: make([][]float64, 8)}
	fillGroup(g, m, 50, 5)
	d.DropCache()
	base := d.Stats()
	g.MaxIn(2, 7)
	if got := d.Stats().Sub(base).Reads; got > 4 {
		t.Fatalf("MaxIn cost %d reads, want O(1)", got)
	}
}

func TestDeleteInvariants(t *testing.T) {
	g := New(newDisk(64), 6, 80)
	m := &model{sets: make([][]float64, 6)}
	fillGroup(g, m, 60, 6)
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 250; op++ {
		i := rng.Intn(6) + 1
		if len(m.sets[i-1]) == 0 {
			continue
		}
		v := m.sets[i-1][rng.Intn(len(m.sets[i-1]))]
		if !g.Delete(i, v) {
			t.Fatalf("op %d: delete %v from %d failed", op, v, i)
		}
		m.delete(i, v)
		if op%19 == 0 {
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonexistent(t *testing.T) {
	g := New(newDisk(64), 3, 16)
	g.Insert(1, 5)
	if g.Delete(1, 6) {
		t.Fatal("deleted phantom")
	}
	if g.Delete(2, 5) {
		t.Fatal("deleted from wrong set")
	}
	if !g.Delete(1, 5) {
		t.Fatal("delete failed")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainAndRefill(t *testing.T) {
	g := New(newDisk(64), 4, 32)
	m := &model{sets: make([][]float64, 4)}
	fillGroup(g, m, 24, 8)
	for i := 1; i <= 4; i++ {
		for _, v := range append([]float64(nil), m.sets[i-1]...) {
			g.Delete(i, v)
			m.delete(i, v)
		}
	}
	if g.Len() != 0 {
		t.Fatalf("len=%d", g.Len())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	fillGroup(g, m, 10, 9)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAfterChurn(t *testing.T) {
	g := New(newDisk(64), 6, 96)
	m := &model{sets: make([][]float64, 6)}
	fillGroup(g, m, 50, 10)
	rng := rand.New(rand.NewSource(11))
	seen := map[float64]bool{}
	for op := 0; op < 600; op++ {
		i := rng.Intn(6) + 1
		if rng.Intn(2) == 0 && len(m.sets[i-1]) > 5 {
			v := m.sets[i-1][rng.Intn(len(m.sets[i-1]))]
			g.Delete(i, v)
			m.delete(i, v)
		} else if g.SizeOf(i) < 96 {
			v := rng.Float64() * 1e9
			if seen[v] {
				continue
			}
			seen[v] = true
			g.Insert(i, v)
			m.insert(i, v)
		}
		if op%50 == 25 {
			a1 := rng.Intn(6) + 1
			a2 := a1 + rng.Intn(6-a1+1)
			un := m.unionLen(a1, a2)
			if un == 0 {
				continue
			}
			k := rng.Intn(un) + 1
			x := g.Select(a1, a2, k)
			r := un
			if !math.IsInf(x, -1) {
				r = m.unionRank(a1, a2, x)
			}
			if r < k || r > g.Bound()*k {
				t.Fatalf("op %d: rank %d outside [%d,%d]", op, r, k, g.Bound()*k)
			}
		}
	}
}

func TestQueryIOCost(t *testing.T) {
	d := newDisk(64)
	g := New(d, 8, 128)
	m := &model{sets: make([][]float64, 8)}
	fillGroup(g, m, 100, 12)
	d.DropCache()
	base := d.Stats()
	const queries = 20
	for q := 0; q < queries; q++ {
		g.Select(1, 8, q*40+1)
		d.DropCache()
	}
	per := float64(d.Stats().Sub(base).Reads) / queries
	// One sketch-block read (possibly spanning a few blocks) + one
	// B-tree descent of height ~2.
	if per > 15 {
		t.Fatalf("per-query reads %.1f, want O(log_B(fl))", per)
	}
	t.Logf("select cost: %.1f reads", per)
}

func TestCompressedBlocksFitInOneBlock(t *testing.T) {
	// §4.1: f·lg l·2lg(fl) bits fit in a block of B·64 bits; §4.4: the
	// prefix set too. Verify bit-for-bit in the paper's regime
	// f ≤ √B·lg^ε N with l = polylg N. With B = 1024 words and N = 2^20:
	// f = 32 ≤ √1024·lg^ε, l = 400 ≈ lg²N.
	d := em.NewDisk(em.Config{B: 1024, M: 32 * 1024})
	g := New(d, 32, 400)
	rng := rand.New(rand.NewSource(13))
	seen := map[float64]bool{}
	for i := 1; i <= 32; i++ {
		for j := 0; j < 400; j++ {
			v := rng.Float64()
			if seen[v] {
				j--
				continue
			}
			seen[v] = true
			g.Insert(i, v)
		}
	}
	sb, pb := g.SketchBits()
	blockBits := 1024 * 64
	if sb > blockBits {
		t.Fatalf("sketch set %d bits > block %d bits", sb, blockBits)
	}
	if pb > blockBits {
		t.Fatalf("prefix set %d bits > block %d bits", pb, blockBits)
	}
	t.Logf("sketch=%d bits, prefix=%d bits, block=%d bits", sb, pb, blockBits)
}

func TestPrefLenFormula(t *testing.T) {
	d := em.NewDisk(em.Config{B: 256, M: 8 * 256})
	g := New(d, 16, 200)
	want := int(math.Sqrt(256) * (math.Log(16*200) / math.Log(256)))
	if g.PrefLen() != want {
		t.Fatalf("prefLen=%d want %d", g.PrefLen(), want)
	}
}

func TestBase4(t *testing.T) {
	g := NewBase(newDisk(64), 4, 64, 4)
	m := &model{sets: make([][]float64, 4)}
	fillGroup(g, m, 50, 14)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 20, 100} {
		x := g.Select(1, 4, k)
		r := m.unionLen(1, 4)
		if !math.IsInf(x, -1) {
			r = m.unionRank(1, 4, x)
		}
		if r < k || r > g.Bound()*k {
			t.Fatalf("k=%d rank %d bound %d", k, r, g.Bound())
		}
	}
}

func TestPanicOnOverfill(t *testing.T) {
	g := New(newDisk(64), 2, 3)
	g.Insert(1, 1)
	g.Insert(1, 2)
	g.Insert(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("overfill accepted")
		}
	}()
	g.Insert(1, 4)
}

func TestPanicOnDuplicate(t *testing.T) {
	g := New(newDisk(64), 2, 8)
	g.Insert(1, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate accepted")
		}
	}()
	g.Insert(2, 7)
}

// Property: invariants and the select guarantee survive arbitrary
// interleavings.
func TestQuickGroupModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 120 {
			ops = ops[:120]
		}
		rng := rand.New(rand.NewSource(seed))
		g := New(newDisk(64), 4, 48)
		m := &model{sets: make([][]float64, 4)}
		seen := map[float64]bool{}
		for _, op := range ops {
			i := int(op)%4 + 1
			if op%3 == 0 && len(m.sets[i-1]) > 0 {
				v := m.sets[i-1][int(op/3)%len(m.sets[i-1])]
				if !g.Delete(i, v) {
					return false
				}
				m.delete(i, v)
			} else if g.SizeOf(i) < 48 {
				v := rng.Float64() * 1e9
				if seen[v] {
					continue
				}
				seen[v] = true
				g.Insert(i, v)
				m.insert(i, v)
			}
		}
		if g.CheckInvariants() != nil {
			return false
		}
		un := m.unionLen(1, 4)
		if un == 0 {
			return true
		}
		k := int(uint64(seed)%uint64(un)) + 1
		x := g.Select(1, 4, k)
		r := un
		if !math.IsInf(x, -1) {
			r = m.unionRank(1, 4, x)
		}
		return r >= k && r <= g.Bound()*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStability(t *testing.T) {
	// Guard against accidental reliance on map iteration order anywhere:
	// two identically-built groups answer identically.
	build := func() *Group {
		g := New(newDisk(64), 4, 32)
		rng := rand.New(rand.NewSource(99))
		for i := 1; i <= 4; i++ {
			for j := 0; j < 20; j++ {
				g.Insert(i, rng.Float64())
			}
		}
		return g
	}
	a, b := build(), build()
	for k := 1; k <= 60; k += 7 {
		if a.Select(1, 4, k) != b.Select(1, 4, k) {
			t.Fatalf("nondeterministic select at k=%d", k)
		}
	}
	_ = sort.Float64s
}

func BenchmarkGroupInsertDelete(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	g := New(d, 8, 256)
	rng := rand.New(rand.NewSource(1))
	var vals [][]float64
	vals = make([][]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si := i%8 + 1
		if len(vals[si-1]) >= 250 {
			v := vals[si-1][0]
			vals[si-1] = vals[si-1][1:]
			g.Delete(si, v)
		}
		v := rng.Float64() + float64(i)
		vals[si-1] = append(vals[si-1], v)
		g.Insert(si, v)
	}
}

func BenchmarkGroupSelect(b *testing.B) {
	d := em.NewDisk(em.Config{B: 64, M: 64 * 64})
	g := New(d, 8, 256)
	rng := rand.New(rand.NewSource(2))
	for i := 1; i <= 8; i++ {
		for j := 0; j < 200; j++ {
			g.Insert(i, rng.Float64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Select(1, 8, i%1000+1)
	}
}
