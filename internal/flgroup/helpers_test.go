package flgroup

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/em"
)

func buildHelperGroup(t *testing.T) (*Group, *model) {
	t.Helper()
	g := New(em.NewDisk(em.Config{B: 64, M: 32 * 64}), 5, 60)
	m := &model{sets: make([][]float64, 5)}
	fillGroup(g, m, 40, 77)
	return g, m
}

func TestMinMaxOf(t *testing.T) {
	g, m := buildHelperGroup(t)
	for i := 1; i <= 5; i++ {
		set := append([]float64(nil), m.sets[i-1]...)
		sort.Float64s(set)
		mn, ok := g.MinOf(i)
		if !ok || mn != set[0] {
			t.Fatalf("MinOf(%d)=%v,%v want %v", i, mn, ok, set[0])
		}
		mx, ok := g.MaxOf(i)
		if !ok || mx != set[len(set)-1] {
			t.Fatalf("MaxOf(%d)=%v,%v want %v", i, mx, ok, set[len(set)-1])
		}
	}
	empty := New(em.NewDisk(em.Config{B: 64, M: 32 * 64}), 2, 8)
	if _, ok := empty.MinOf(1); ok {
		t.Fatal("MinOf on empty set")
	}
}

func TestContains(t *testing.T) {
	g, m := buildHelperGroup(t)
	for i := 1; i <= 5; i++ {
		for _, v := range m.sets[i-1][:5] {
			if !g.Contains(i, v) {
				t.Fatalf("Contains(%d,%v)=false", i, v)
			}
			other := i%5 + 1
			if g.Contains(other, v) {
				t.Fatalf("Contains(%d,%v)=true for foreign set", other, v)
			}
		}
	}
}

func TestSelectExact(t *testing.T) {
	g, m := buildHelperGroup(t)
	var all []float64
	for _, s := range m.sets {
		all = append(all, s...)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	for r := 1; r <= len(all); r += 17 {
		v, ok := g.SelectExact(r)
		if !ok || v != all[r-1] {
			t.Fatalf("SelectExact(%d)=%v,%v want %v", r, v, ok, all[r-1])
		}
	}
	if _, ok := g.SelectExact(len(all) + 1); ok {
		t.Fatal("SelectExact beyond size")
	}
	if _, ok := g.SelectExact(0); ok {
		t.Fatal("SelectExact(0)")
	}
}

func TestTopIn(t *testing.T) {
	g, m := buildHelperGroup(t)
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 50; trial++ {
		a1 := rng.Intn(5) + 1
		a2 := a1 + rng.Intn(5-a1+1)
		mm := rng.Intn(30) + 1
		got := g.TopIn(a1, a2, mm)
		var want []float64
		for i := a1 - 1; i < a2; i++ {
			want = append(want, m.sets[i]...)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if mm < len(want) {
			want = want[:mm]
		}
		if len(got) != len(want) {
			t.Fatalf("TopIn(%d,%d,%d): %d items want %d", a1, a2, mm, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("TopIn entry %d: %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestTopInMoreThanAvailable(t *testing.T) {
	g := New(em.NewDisk(em.Config{B: 64, M: 32 * 64}), 2, 8)
	g.Insert(1, 3)
	g.Insert(2, 5)
	got := g.TopIn(1, 2, 10)
	if len(got) != 2 || got[0] != 5 || got[1] != 3 {
		t.Fatalf("TopIn over-ask: %v", got)
	}
}

func TestFreeReleasesEverything(t *testing.T) {
	d := em.NewDisk(em.Config{B: 64, M: 32 * 64})
	g := New(d, 4, 32)
	rng := rand.New(rand.NewSource(79))
	for i := 1; i <= 4; i++ {
		for j := 0; j < 20; j++ {
			g.Insert(i, rng.Float64())
		}
	}
	g.Free()
	if live := d.Stats().BlocksLive; live != 0 {
		t.Fatalf("leaked %d blocks", live)
	}
}
