// Package flgroup implements the approximate (f,l)-group k-selection
// structure of §4 of the paper (Lemma 6), together with the prefix-set
// structure of Lemma 8.
//
// The input is an (f,l)-group G = (G_1, …, G_f): f disjoint sets of at
// most l real values each. A query (q=[α1,α2], k) returns a value whose
// rank in ∪_{i∈q} G_i falls in [k, c2·k], where c2 is a constant. The
// structure occupies O(fl/B) blocks and supports queries, insertions and
// deletions in O(log_B(fl)) I/Os (amortized for updates).
//
// Components, exactly as §4 lays them out:
//
//   - a B-tree on every G_i (local rank ↔ element, §4.2);
//   - a B-tree on G = ∪G_i (global rank ↔ element, §4.1);
//   - the compressed sketch set: one logarithmic sketch per G_i, each
//     pivot described only by its global rank in G and its local rank in
//     G_i, bit-packed into a single block (§4.1). Queries read this one
//     block, run the Lemma 7 merge in memory on the rank-encoded pivots,
//     and convert the resulting global rank to an element through the
//     B-tree on G;
//   - the compressed prefix set of Lemma 8: the global ranks of the
//     √B·log_B(fl) largest elements of every G_i, bit-packed into one
//     block, so a batch of local→global rank conversions (needed when
//     many small-window pivots invalidate at once) costs a single I/O;
//   - a per-set maxima array in one block, the "slightly augmented
//     B-tree" capability of §3.3: the maximum of G_{α1} ∪ … ∪ G_{α2} in
//     O(1) I/Os.
//
// Updates follow §4.2/§4.3: global/local ranks of all pivots shift
// deterministically given (r_new, i), so the new compressed sketch set
// is deduced in memory and written back in one I/O; sketches expand or
// shrink when |G_i| crosses a power of the base; invalidated pivots are
// repaired with the element of local rank ⌊(3/2)·base^(j−1)⌋, fetched
// from the prefix block when the target is inside the prefix and from
// the B-trees otherwise.
//
// One deliberate deviation from the paper's prose, documented here
// because tests pin it: Lemma 8's insertion step says "if e_new should
// not enter P_i, the insertion is complete", but an insertion anywhere
// shifts the global ranks of prefix elements ranked below e_new in other
// sets too. This implementation always applies the global-rank shift
// (one extra read-modify-write of the prefix block, bound unchanged).
package flgroup

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/btree"
	"repro/internal/em"
	"repro/internal/em/bitpack"
	"repro/internal/sketch"
)

// Group is the (f,l)-structure. Create with New.
type Group struct {
	d    *em.Disk
	f, l int
	base int

	prefLen int // √B·log_B(fl), the Lemma 8 prefix length

	gis []*btree.Tree // B-tree per G_i
	g   *btree.Tree   // B-tree on G

	blocks *em.Store[[]uint64]
	skb    em.Handle // compressed sketch set
	pfb    em.Handle // compressed prefix set
	mxb    em.Handle // per-set maxima (float64 bits)

	wG, wL int // bit widths for global and local ranks
}

// Bound returns the approximation constant c2: a query's result has rank
// in [k, Bound()·k] in the queried union.
func (g *Group) Bound() int { return sketch.MergeBound(g.base) }

// New creates an empty (f,l)-group structure on d with the paper's
// sketch base 2.
func New(d *em.Disk, f, l int) *Group {
	return NewBase(d, f, l, sketch.DefaultBase)
}

// NewBase creates the structure with an explicit sketch base (for the
// base ablation experiment).
func NewBase(d *em.Disk, f, l, base int) *Group {
	if f < 1 || l < 1 {
		panic("flgroup: f and l must be positive")
	}
	logB := math.Log(float64(f)*float64(l)) / math.Log(float64(d.B()))
	if logB < 1 {
		logB = 1
	}
	prefLen := int(math.Sqrt(float64(d.B())) * logB)
	if prefLen < 1 {
		prefLen = 1
	}
	if prefLen > l {
		prefLen = l
	}
	g := &Group{
		d: d, f: f, l: l, base: base,
		prefLen: prefLen,
		g:       btree.New(d, "flg.G"),
		blocks:  em.NewStore(d, "flg.blk", func(w []uint64) int { return max(1, len(w)) }),
		wG:      bitpack.Width(uint64(f*l + 1)),
		wL:      bitpack.Width(uint64(l + 1)),
	}
	for i := 0; i < f; i++ {
		g.gis = append(g.gis, btree.New(d, fmt.Sprintf("flg.G%d", i)))
	}
	g.skb = g.blocks.Alloc(g.encodeSketches(emptySketches(f)))
	g.pfb = g.blocks.Alloc(g.encodePrefix(make([][]int, f)))
	g.mxb = g.blocks.Alloc(make([]uint64, f))
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// F and L return the structure's parameters.
func (g *Group) F() int { return g.f }
func (g *Group) L() int { return g.l }

// Len returns |G|.
func (g *Group) Len() int { return g.g.Len() }

// SizeOf returns |G_i| (i is 1-based, as in the paper's α indices).
func (g *Group) SizeOf(i int) int { return g.gis[i-1].Len() }

// --- compressed representations --------------------------------------

// pivotR is a rank-encoded pivot: global rank in G, local rank in G_i.
type pivotR struct{ G, L int }

// sketches is the decoded compressed sketch set.
type sketches struct {
	sizes []int
	piv   [][]pivotR
}

func emptySketches(f int) *sketches {
	return &sketches{sizes: make([]int, f), piv: make([][]pivotR, f)}
}

// encodeSketches bit-packs the sketch set: per set, its size followed by
// NumPivots(size) (G, L) pairs. Pivot counts are derived from sizes, so
// no length fields are needed.
func (g *Group) encodeSketches(s *sketches) []uint64 {
	w := bitpack.NewWriter()
	for i := 0; i < g.f; i++ {
		w.Put(uint64(s.sizes[i]), g.wL)
		for _, p := range s.piv[i] {
			w.Put(uint64(p.G), g.wG)
			w.Put(uint64(p.L), g.wL)
		}
	}
	return append([]uint64(nil), w.Words()...)
}

func (g *Group) decodeSketches(words []uint64) *sketches {
	r := bitpack.NewReader(words)
	s := emptySketches(g.f)
	for i := 0; i < g.f; i++ {
		s.sizes[i] = int(r.Get(g.wL))
		n := sketch.NumPivots(s.sizes[i], g.base)
		for j := 0; j < n; j++ {
			s.piv[i] = append(s.piv[i], pivotR{G: int(r.Get(g.wG)), L: int(r.Get(g.wL))})
		}
	}
	return s
}

// encodePrefix bit-packs the prefix set: per set, min(prefLen, |G_i|)
// global ranks in decreasing-value order; the local rank of entry r is
// implicitly r+1. Entry counts are derived from the sketch sizes, so a
// small explicit count per set is stored to keep the block
// self-contained.
func (g *Group) encodePrefix(pref [][]int) []uint64 {
	w := bitpack.NewWriter()
	for i := 0; i < g.f; i++ {
		w.Put(uint64(len(pref[i])), g.wL)
		for _, gr := range pref[i] {
			w.Put(uint64(gr), g.wG)
		}
	}
	return append([]uint64(nil), w.Words()...)
}

func (g *Group) decodePrefix(words []uint64) [][]int {
	r := bitpack.NewReader(words)
	pref := make([][]int, g.f)
	for i := 0; i < g.f; i++ {
		n := int(r.Get(g.wL))
		for j := 0; j < n; j++ {
			pref[i] = append(pref[i], int(r.Get(g.wG)))
		}
	}
	return pref
}

// SketchBits returns the bit size of the compressed sketch set and the
// prefix set, for the §4.1/§4.4 "fits in one block" verification
// (experiment E9).
func (g *Group) SketchBits() (sketchBits, prefixBits int) {
	s := g.blocks.Peek(g.skb)
	p := g.blocks.Peek(g.pfb)
	return 64 * len(s), 64 * len(p)
}

// PrefLen returns the Lemma 8 prefix length √B·log_B(fl).
func (g *Group) PrefLen() int { return g.prefLen }

// --- queries ----------------------------------------------------------

// Select returns a value x whose rank in G_{α1} ∪ … ∪ G_{α2} falls in
// [k, Bound()·k] (α 1-based inclusive, 1 ≤ k ≤ |union|). x is −∞ when
// the union holds fewer than base·k values. Cost: one block read for the
// compressed sketch set plus an O(log_B(fl)) B-tree descent to convert
// the selected global rank to an element.
func (g *Group) Select(a1, a2, k int) float64 {
	if a1 < 1 || a2 > g.f || a1 > a2 {
		panic("flgroup: bad set range")
	}
	if k < 1 {
		panic("flgroup: k must be ≥ 1")
	}
	s := g.decodeSketches(g.blocks.Read(g.skb))
	ranked := make([][]int, 0, a2-a1+1)
	for i := a1 - 1; i < a2; i++ {
		gr := make([]int, len(s.piv[i]))
		for j, p := range s.piv[i] {
			gr[j] = p.G
		}
		ranked = append(ranked, gr)
	}
	gstar := sketch.MergeRanked(ranked, g.base, k)
	if gstar == 0 {
		return math.Inf(-1)
	}
	v, ok := g.g.SelectDesc(gstar)
	if !ok {
		panic("flgroup: stale global rank in sketch block")
	}
	return v
}

// MaxIn returns the maximum of G_{α1} ∪ … ∪ G_{α2} in O(1) I/Os (one
// block holding per-set maxima), with ok=false when the union is empty.
func (g *Group) MaxIn(a1, a2 int) (float64, bool) {
	if a1 < 1 || a2 > g.f || a1 > a2 {
		panic("flgroup: bad set range")
	}
	mx := g.blocks.Read(g.mxb)
	s := g.decodeSketches(g.blocks.Read(g.skb))
	best, ok := 0.0, false
	for i := a1 - 1; i < a2; i++ {
		if s.sizes[i] == 0 {
			continue
		}
		v := math.Float64frombits(mx[i])
		if !ok || v > best {
			best, ok = v, true
		}
	}
	return best, ok
}

// CountIn returns |G_{α1} ∪ … ∪ G_{α2}| in one block read.
func (g *Group) CountIn(a1, a2 int) int {
	s := g.decodeSketches(g.blocks.Read(g.skb))
	n := 0
	for i := a1 - 1; i < a2; i++ {
		n += s.sizes[i]
	}
	return n
}

// Free releases every block the structure occupies.
func (g *Group) Free() {
	for _, tr := range g.gis {
		tr.Free()
	}
	g.g.Free()
	g.blocks.Free(g.skb)
	g.blocks.Free(g.pfb)
	g.blocks.Free(g.mxb)
}

// MinOf returns the smallest element of G_i (1-based), if any.
func (g *Group) MinOf(i int) (float64, bool) { return g.gis[i-1].Min() }

// MaxOf returns the largest element of G_i (1-based), if any.
func (g *Group) MaxOf(i int) (float64, bool) { return g.gis[i-1].Max() }

// Contains reports whether v is present in G_i (1-based).
func (g *Group) Contains(i int, v float64) bool { return g.gis[i-1].Contains(v) }

// SelectExact returns the element of exact rank r in the FULL union G
// (not a sub-range), through the B-tree on G in O(log_B(fl)) I/Os. The
// §3.3 update algorithm uses it to find the (c2·l+1)-th score of a
// subtree when refilling G_u after a deletion.
func (g *Group) SelectExact(r int) (float64, bool) { return g.g.SelectDesc(r) }

// TopIn returns the m largest elements of G_{α1} ∪ … ∪ G_{α2} in
// descending order. It costs O((α2−α1+1)·(m + log_B l)) I/Os (per-set
// B-tree walks) and exists for the degenerate-regime fallback of the
// §3.3 query, where subtrees are too small for the AURS precondition;
// in-regime queries never call it.
func (g *Group) TopIn(a1, a2, m int) []float64 {
	var out []float64
	for i := a1 - 1; i < a2; i++ {
		take := m
		if n := g.gis[i].Len(); take > n {
			take = n
		}
		for r := 1; r <= take; r++ {
			v, _ := g.gis[i].SelectDesc(r)
			out = append(out, v)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	if len(out) > m {
		out = out[:m]
	}
	return out
}

// --- updates ----------------------------------------------------------

// globalRankOf returns the current global rank of a present element.
func (g *Group) globalRankOf(v float64) int { return g.g.RankDesc(v) }

// fetchGlobal returns the global rank of the element of local rank r in
// G_i (0-based i), using the prefix block when r is inside the prefix
// (1 I/O) and the B-trees otherwise (O(log_B(fl)) I/Os). pref may be nil
// to force the B-tree path.
func (g *Group) fetchGlobal(i, r int, pref [][]int) (int, float64) {
	if pref != nil && r <= len(pref[i]) {
		gr := pref[i][r-1]
		v, ok := g.g.SelectDesc(gr)
		if !ok {
			panic("flgroup: stale prefix entry")
		}
		return gr, v
	}
	v, ok := g.gis[i].SelectDesc(r)
	if !ok {
		panic("flgroup: local rank out of range")
	}
	return g.g.RankDesc(v), v
}

// repair fixes all invalidated pivots of sketch i (local rank outside
// [base^(j−1), base^j)), replacing each with the element of local rank
// ⌊(3/2)·base^(j−1)⌋ per §4.2.
func (g *Group) repair(s *sketches, i int, pref [][]int) {
	for j := 1; j <= len(s.piv[i]); j++ {
		lo := sketch.WindowLo(j, g.base)
		L := s.piv[i][j-1].L
		if L >= lo && L < lo*g.base {
			continue
		}
		target := 3 * lo / 2
		if target < 1 {
			target = 1
		}
		if target > s.sizes[i] {
			target = s.sizes[i]
		}
		gr, _ := g.fetchGlobal(i, target, pref)
		s.piv[i][j-1] = pivotR{G: gr, L: target}
	}
}

// Insert adds v to G_i (1-based), in O(log_B(fl)) amortized I/Os.
func (g *Group) Insert(i int, v float64) {
	i--
	if g.gis[i].Len() >= g.l {
		panic("flgroup: G_i full (caller must keep |G_i| ≤ l)")
	}
	if g.g.Contains(v) {
		panic("flgroup: duplicate value across the group")
	}
	rnew := g.g.CountGE(v) + 1 // global rank of v once inserted

	// B-trees first so rank fetches below see the new element.
	g.g.Insert(v)
	g.gis[i].Insert(v)

	// Compressed sketch set: deduce the new one from (r_new, i) — §4.2.
	s := g.decodeSketches(g.blocks.Read(g.skb))
	for si := range s.piv {
		for j := range s.piv[si] {
			if s.piv[si][j].G >= rnew {
				s.piv[si][j].G++
				if si == i {
					s.piv[si][j].L++
				}
			}
		}
	}
	s.sizes[i]++
	if want := sketch.NumPivots(s.sizes[i], g.base); want > len(s.piv[i]) {
		// Σ_i expands: the new pivot is the smallest element of G_i.
		mn, _ := g.gis[i].Min()
		s.piv[i] = append(s.piv[i], pivotR{G: g.g.RankDesc(mn), L: s.sizes[i]})
	}

	// Prefix set (Lemma 8): shift global ranks everywhere; splice v into
	// P_i if it ranks inside the prefix.
	pref := g.decodePrefix(g.blocks.Read(g.pfb))
	for si := range pref {
		for j := range pref[si] {
			if pref[si][j] >= rnew {
				pref[si][j]++
			}
		}
	}
	lnew := g.gis[i].RankDesc(v)
	if lnew <= g.prefLen {
		at := lnew - 1
		pref[i] = append(pref[i], 0)
		copy(pref[i][at+1:], pref[i][at:])
		pref[i][at] = rnew
		if len(pref[i]) > g.prefLen {
			pref[i] = pref[i][:g.prefLen]
		}
	} else if len(pref[i]) < g.prefLen && len(pref[i]) < s.sizes[i] {
		// Prefix was short only because G_i was small; extend it.
		gr, _ := g.fetchGlobal(i, len(pref[i])+1, nil)
		pref[i] = append(pref[i], gr)
	}

	// Repair invalidated pivots of Σ_i, then persist everything.
	g.repair(s, i, pref)
	g.blocks.Write(g.skb, g.encodeSketches(s))
	g.blocks.Write(g.pfb, g.encodePrefix(pref))

	// Maxima block.
	mx := g.blocks.Read(g.mxb)
	if s.sizes[i] == 1 || v > math.Float64frombits(mx[i]) {
		mx[i] = math.Float64bits(v)
		g.blocks.Write(g.mxb, mx)
	}
}

// Delete removes v from G_i (1-based), reporting whether it was present.
func (g *Group) Delete(i int, v float64) bool {
	i--
	if !g.gis[i].Contains(v) {
		return false
	}
	rold := g.globalRankOf(v)

	g.g.Delete(v)
	g.gis[i].Delete(v)

	// §4.3: deduce the new compressed sketch set from (r_old, i).
	s := g.decodeSketches(g.blocks.Read(g.skb))
	dangling := 0
	for j := range s.piv[i] {
		if s.piv[i][j].G == rold {
			dangling = j + 1
		}
	}
	for si := range s.piv {
		for j := range s.piv[si] {
			if s.piv[si][j].G > rold {
				s.piv[si][j].G--
				if si == i {
					s.piv[si][j].L--
				}
			}
		}
	}
	s.sizes[i]--
	if want := sketch.NumPivots(s.sizes[i], g.base); want < len(s.piv[i]) {
		s.piv[i] = s.piv[i][:want] // Σ_i shrinks
		if dangling > want {
			dangling = 0
		}
	}

	// Prefix set: shift, remove v from P_i if present, refill the tail.
	pref := g.decodePrefix(g.blocks.Read(g.pfb))
	for si := range pref {
		for j := range pref[si] {
			if si == i && pref[si][j] == rold {
				pref[si] = append(pref[si][:j], pref[si][j+1:]...)
				break
			}
		}
		for j := range pref[si] {
			if pref[si][j] > rold {
				pref[si][j]--
			}
		}
	}
	if len(pref[i]) < g.prefLen && len(pref[i]) < s.sizes[i] {
		gr, _ := g.fetchGlobal(i, len(pref[i])+1, nil)
		pref[i] = append(pref[i], gr)
	}

	// Replace a dangling pivot, then repair any invalidated ones.
	if dangling > 0 {
		lo := sketch.WindowLo(dangling, g.base)
		target := 3 * lo / 2
		if target < 1 {
			target = 1
		}
		if target > s.sizes[i] {
			target = s.sizes[i]
		}
		gr, _ := g.fetchGlobal(i, target, pref)
		s.piv[i][dangling-1] = pivotR{G: gr, L: target}
	}
	g.repair(s, i, pref)
	g.blocks.Write(g.skb, g.encodeSketches(s))
	g.blocks.Write(g.pfb, g.encodePrefix(pref))

	// Maxima block.
	mx := g.blocks.Read(g.mxb)
	if s.sizes[i] == 0 {
		mx[i] = 0
		g.blocks.Write(g.mxb, mx)
	} else if math.Float64frombits(mx[i]) == v {
		nm, _ := g.gis[i].Max()
		mx[i] = math.Float64bits(nm)
		g.blocks.Write(g.mxb, mx)
	}
	return true
}
