package cluster

// This file is the health half of the client tier: per-node failure
// accounting with temporary ejection, and the background prober that
// keeps the picture current while traffic is idle.
//
// The policy is deliberately simple and fail-fast:
//
//   - every failed request (inline traffic or background probe) counts
//     one consecutive failure against the node; any success resets it;
//   - at EjectAfter consecutive failures the node is EJECTED for
//     EjectFor: reads stop preferring it (alternate replicas are tried
//     first; an ejected node is only attempted as a last resort when
//     every replica of its group is ejected too), and writes to its
//     group fail fast with ErrNodeDown instead of risking replica
//     divergence;
//   - ejection expires by itself: after EjectFor the node is eligible
//     again, and the next success clears the failure count while the
//     next failure re-ejects it immediately.
//
// The prober uses GET /v1/epoch — the cheapest stateless read a member
// serves, doubling as the remote end of the epoch change feed — so an
// idle gateway discovers both failures and recoveries without waiting
// for traffic to stumble over them.

import (
	"context"
	"time"
)

// markFailed records one failed interaction with the node, ejecting it
// once the consecutive-failure threshold is reached. The first
// ejection of an episode (zero → non-zero deadline) bumps the
// ejections counter and emits a structured event; extending an
// existing window does not.
func (c *Cluster) markFailed(n *node) {
	n.mu.Lock()
	n.fails++
	fails := n.fails
	ejected := false
	var deadline time.Time
	if fails >= c.cfg.EjectAfter {
		ejected = n.ejectedUntil.IsZero()
		deadline = time.Now().Add(c.cfg.EjectFor)
		n.ejectedUntil = deadline
	}
	n.mu.Unlock()
	if ejected {
		c.ejections.Add(1)
		c.log.Warn("member ejected",
			"node", n.addr,
			"consecutive_failures", fails,
			"eject_deadline", deadline)
	}
}

// markUp records one successful interaction, clearing failure state.
// A success on a node with a standing ejection window — expired or
// not — closes the episode: recoveries bumps and an event is emitted.
func (c *Cluster) markUp(n *node) {
	n.mu.Lock()
	recovered := !n.ejectedUntil.IsZero()
	fails := n.fails
	n.fails = 0
	n.ejectedUntil = time.Time{}
	n.mu.Unlock()
	if recovered {
		c.recoveries.Add(1)
		c.log.Info("member recovered",
			"node", n.addr,
			"consecutive_failures", fails)
	}
}

// isEjected reports whether the node is inside an ejection window.
func (n *node) isEjected() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Now().Before(n.ejectedUntil)
}

// Nodes returns the number of member nodes configured.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Ejected returns how many member nodes are currently ejected.
func (c *Cluster) Ejected() int {
	out := 0
	for _, n := range c.nodes {
		if n.isEjected() {
			out++
		}
	}
	return out
}

// ReadFailovers returns how many reads succeeded only after failing
// over from a preferred replica to an alternate — the operator-facing
// signal that a group is limping on reduced redundancy.
func (c *Cluster) ReadFailovers() int64 { return c.failovers.Load() }

// Ejections returns how many ejection episodes have begun — each a
// healthy→ejected transition, not a window extension.
func (c *Cluster) Ejections() int64 { return c.ejections.Load() }

// Recoveries returns how many ejection episodes have ended with the
// node answering again.
func (c *Cluster) Recoveries() int64 { return c.recoveries.Load() }

// startProber launches the background health loop when the config asks
// for one. Called once from New before the cluster is shared.
func (c *Cluster) startProber() {
	if c.cfg.HealthInterval <= 0 {
		return
	}
	c.probeStop = make(chan struct{})
	c.probeDone = make(chan struct{})
	go func() {
		defer close(c.probeDone)
		tick := time.NewTicker(c.cfg.HealthInterval)
		defer tick.Stop()
		for {
			select {
			case <-c.probeStop:
				return
			case <-tick.C:
				c.probeAll()
			}
		}
	}()
}

// probeAll health-checks every node once, in parallel, each under the
// configured request timeout.
func (c *Cluster) probeAll() {
	fns := make([]func(), 0, len(c.nodes))
	for _, n := range c.nodes {
		n := n
		fns = append(fns, func() {
			ctx, cancel := c.callCtx(context.Background())
			defer cancel()
			if err := n.probe(ctx); err != nil {
				c.markFailed(n)
			} else {
				c.markUp(n)
			}
		})
	}
	parallel(fns)
}

// Close stops the background health prober, if one was started, and
// releases pooled connections. Idempotent; the cluster keeps serving
// after Close — only the timer-driven probing stops.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		if c.probeStop != nil {
			close(c.probeStop)
			<-c.probeDone
		}
		if t, ok := c.transport.(interface{ CloseIdleConnections() }); ok {
			t.CloseIdleConnections()
		}
	})
	return nil
}
