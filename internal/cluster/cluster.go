// Package cluster is the distributed serving tier: a client-side
// router that composes remote topkd member processes — each owning a
// contiguous SCORE band of the data — into one logical top-k store.
//
// Where internal/shard partitions the POSITION axis across in-process
// EM machines, the cluster partitions the SCORE axis across network
// processes: an update routes to the single member (replica group)
// owning its score, and a range read fans out to every group — any
// band may hold qualifying points for any position interval — with the
// per-member answers k-way heap-merged by the same internal/merge code
// the local shard router uses. Score partitioning is what makes the
// fleet-wide duplicate-SCORE check free: equal scores always route to
// the same member, whose local store rejects the duplicate
// authoritatively; the gateway additionally keeps its own
// position/score sets so duplicates it has seen fail fast without a
// network round trip.
//
// Members with an identical declared band form a REPLICA GROUP. Reads
// prefer healthy replicas round-robin and fail over to alternates when
// one errors; writes are applied to every replica of the owning group
// and fail fast with ErrNodeDown when any replica is ejected or
// unreachable — consistency-first for writes, availability-first for
// reads. Nothing else is replicated: there is no write-ahead log and
// no catch-up, so a replica that missed writes while down must be
// reloaded before rejoining (see DESIGN.md "cluster tier").
//
// Consistency: the gateway assumes a SINGLE WRITER (one gateway
// process). Reads hold no cross-member snapshot — each member answers
// from its own sequential state — so concurrent updates may be partly
// visible; a quiescent cluster answers byte-identically to a single
// Index over the union of the members' data.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/point"
)

// parallel runs fns concurrently and re-raises worker panics on the
// caller (merge.Parallel — the same runner the shard fan-out uses).
func parallel(fns []func()) { merge.Parallel(fns) }

// Config configures a Cluster client.
type Config struct {
	// Members lists member base URLs (host:port or http://host:port).
	// Each member declares its score band via GET /v1/range; members
	// with identical bands form a replica group, and the groups must
	// tile the score line contiguously from -Inf to +Inf.
	Members []string
	// Timeout bounds every member request (default 5s). Each call gets
	// its own deadline-carrying context, threaded down to the socket.
	Timeout time.Duration
	// HealthInterval runs the background prober every interval
	// (GET /v1/epoch per member). 0 disables the loop; inline request
	// failures still feed the same ejection accounting.
	HealthInterval time.Duration
	// EjectAfter is the consecutive-failure threshold at which a member
	// is temporarily ejected (default 3).
	EjectAfter int
	// EjectFor is how long an ejection lasts (default 10s).
	EjectFor time.Duration
	// Transport overrides the pooled HTTP transport (tests; nil = a
	// dedicated pooled transport owned — and closed — by the cluster).
	Transport http.RoundTripper
	// Logger receives structured health events (member ejected /
	// recovered). Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.EjectFor <= 0 {
		c.EjectFor = 10 * time.Second
	}
	return c
}

// group is one replica group: the nodes that all declared the same
// score band [lo, hi).
type group struct {
	lo, hi float64
	nodes  []*node
	// next rotates the preferred read replica so load spreads across
	// the group.
	next atomic.Uint64
}

// Cluster is the client-side router over the member fleet. All methods
// are safe for concurrent use.
type Cluster struct {
	cfg       Config
	transport http.RoundTripper
	groups    []*group // ascending by lo; contiguous tiling of the line
	nodes     []*node  // every member, replicas included

	// n is the gateway's view of the live count: synced from the
	// members at construction, maintained on successful writes
	// (single-writer assumption).
	n atomic.Int64

	// failovers counts reads that succeeded on an alternate replica.
	failovers atomic.Int64

	// ejections / recoveries count ejection episodes beginning and
	// ending (health.go); log receives the matching structured events.
	ejections  atomic.Int64
	recoveries atomic.Int64
	log        *slog.Logger

	// rpc records member RPC latency per member address; every node
	// shares it. The serving layer exports it from a gateway's
	// /v1/metrics as topkd_cluster_rpc_duration_seconds.
	rpc *obs.Vec

	// dupMu guards the gateway-side duplicate registries. Score
	// routing makes member-local duplicate-score checks fleet-wide
	// already; these sets exist to (a) reject duplicates the gateway
	// has seen without a network hop and (b) catch duplicate POSITIONS
	// across score bands, which no single member can see. They only
	// know points written through this gateway — preloaded data is
	// still covered for scores (same-band routing) but not for
	// positions; see DESIGN.md.
	dupMu     sync.Mutex
	positions map[float64]struct{}
	scores    map[float64]struct{}

	// Background prober state (health.go).
	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// New dials every member, discovers the fleet layout from their
// declared bands, validates it (contiguous tiling; replicas agree on
// their live count) and returns the router. Construction fails with an
// ErrNodeDown-wrapped error when a member is unreachable — a gateway
// must not guess at a layout it could not confirm.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: no members configured")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	hc := &http.Client{Transport: transport}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	c := &Cluster{
		cfg:       cfg,
		transport: transport,
		positions: map[float64]struct{}{},
		scores:    map[float64]struct{}{},
		rpc:       obs.NewVec(),
		log:       log,
	}
	seen := map[string]bool{}
	for _, m := range cfg.Members {
		addr := strings.TrimRight(strings.TrimSpace(m), "/")
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty member address in %q", cfg.Members)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: duplicate member %s", addr)
		}
		seen[addr] = true
		c.nodes = append(c.nodes, &node{addr: addr, hc: hc, rpc: c.rpc})
	}

	// Discover each member's band, in parallel.
	ranges := make([]rangeResp, len(c.nodes))
	errs := make([]error, len(c.nodes))
	fns := make([]func(), len(c.nodes))
	for i, n := range c.nodes {
		i, n := i, n
		fns[i] = func() {
			ctx, cancel := c.callCtx(context.Background())
			defer cancel()
			ranges[i], errs[i] = n.fetchRange(ctx)
		}
	}
	parallel(fns)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: member %s: %w", c.nodes[i].addr, err)
		}
	}

	// Group replicas by identical band and validate the tiling.
	byBand := map[[2]float64]*group{}
	bandN := map[[2]float64]int{}
	for i, n := range c.nodes {
		lo, hi := ranges[i].bounds()
		if !(lo < hi) {
			return nil, fmt.Errorf("cluster: member %s declares empty band [%v, %v)", n.addr, lo, hi)
		}
		key := [2]float64{lo, hi}
		g, ok := byBand[key]
		if !ok {
			g = &group{lo: lo, hi: hi}
			byBand[key] = g
			bandN[key] = ranges[i].N
			c.groups = append(c.groups, g)
		} else if bandN[key] != ranges[i].N {
			// Replicas must start identical; a count mismatch means one
			// of them missed writes and needs reloading before joining.
			return nil, fmt.Errorf("cluster: replicas of band [%v, %v) disagree on live count (%d vs %d at %s)",
				lo, hi, bandN[key], ranges[i].N, n.addr)
		}
		g.nodes = append(g.nodes, n)
	}
	sort.Slice(c.groups, func(a, b int) bool { return c.groups[a].lo < c.groups[b].lo })
	prevHi := math.Inf(-1)
	for i, g := range c.groups {
		if i == 0 {
			if !math.IsInf(g.lo, -1) {
				return nil, fmt.Errorf("cluster: score line not covered below %v (first band [%v, %v))", g.lo, g.lo, g.hi)
			}
		} else if g.lo != prevHi {
			return nil, fmt.Errorf("cluster: bands [..., %v) and [%v, ...) leave a gap or overlap", prevHi, g.lo)
		}
		prevHi = g.hi
	}
	if !math.IsInf(prevHi, 1) {
		return nil, fmt.Errorf("cluster: score line not covered above %v", prevHi)
	}

	total := 0
	for _, n := range bandN {
		total += n
	}
	c.n.Store(int64(total))
	c.startProber()
	return c, nil
}

// callCtx derives the per-request context: the caller's cancellation
// plus the configured timeout.
func (c *Cluster) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, c.cfg.Timeout)
}

// locate returns the index of the group owning score. Only finite
// scores reach here: ApplyBatch rejects non-finite inserts
// (ErrInvalidPoint) and answers non-finite deletes (ErrNotFound)
// before routing.
func (c *Cluster) locate(score float64) int {
	i := sort.Search(len(c.groups), func(i int) bool { return score < c.groups[i].hi })
	if i == len(c.groups) {
		i--
	}
	return i
}

// Len returns the gateway's view of the live point count.
func (c *Cluster) Len() int { return int(c.n.Load()) }

// Groups returns the number of distinct score bands.
func (c *Cluster) Groups() int { return len(c.groups) }

// Boundaries returns the score cut positions between bands (len
// Groups-1), ascending — the cluster twin of Sharded.Boundaries.
func (c *Cluster) Boundaries() []float64 {
	cuts := make([]float64, 0, len(c.groups)-1)
	for _, g := range c.groups[1:] {
		cuts = append(cuts, g.lo)
	}
	return cuts
}

// readFrom runs call against g's replicas until one succeeds: healthy
// replicas first, rotated round-robin, ejected ones only as a last
// resort. A replica that fails with a node-level error is marked
// (feeding the ejection accounting) and the next is tried; a
// rejection-type error aborts immediately — the member answered, and
// an alternate would answer the same. Returns nil on success, the
// rejection, or an ErrNodeDown-wrapped error when every replica
// failed.
func (c *Cluster) readFrom(ctx context.Context, g *group, call func(ctx context.Context, n *node) error) error {
	start := int(g.next.Add(1))
	order := make([]*node, 0, len(g.nodes))
	var ejected []*node
	for i := 0; i < len(g.nodes); i++ {
		n := g.nodes[(start+i)%len(g.nodes)]
		if n.isEjected() {
			ejected = append(ejected, n)
		} else {
			order = append(order, n)
		}
	}
	order = append(order, ejected...)
	attempts := 0
	for _, n := range order {
		cctx, cancel := c.callCtx(ctx)
		err := call(cctx, n)
		cancel()
		if err == nil {
			c.markUp(n)
			if attempts > 0 {
				c.failovers.Add(1)
			}
			return nil
		}
		if !errors.Is(err, ErrNodeDown) {
			return err
		}
		c.markFailed(n)
		attempts++
	}
	return fmt.Errorf("cluster: band [%g, %g): %w: all %d replicas failed", g.lo, g.hi, ErrNodeDown, len(g.nodes))
}

// TopK returns the k highest-scoring points with position in [x1, x2]
// in descending score order: a scatter to one replica of every band (a
// position interval can hold qualifying points in any score band) and
// a k-way heap-merge of the per-band answers — the same merge the
// local shard router uses, so the combined order is exactly an
// Index's. A band whose every replica is down contributes nothing
// (reads degrade to partial answers rather than failing; see
// ReadFailovers and Ejected for the operator's view).
func (c *Cluster) TopK(ctx context.Context, x1, x2 float64, k int) []point.P {
	if k <= 0 || x1 > x2 || math.IsNaN(x1) || math.IsNaN(x2) {
		return nil
	}
	lists := make([][]point.P, len(c.groups))
	fns := make([]func(), len(c.groups))
	for gi, g := range c.groups {
		gi, g := gi, g
		fns[gi] = func() {
			_ = c.readFrom(ctx, g, func(cctx context.Context, n *node) error {
				res, err := n.topk(cctx, x1, x2, k)
				if err != nil {
					return err
				}
				lists[gi] = res
				return nil
			})
		}
	}
	parallel(fns)
	sp := obs.StartSpan(ctx, "merge", "")
	res := merge.TopK(lists, k)
	sp.End(nil)
	return res
}

// Query is one read of a QueryBatch.
type Query struct {
	X1, X2 float64
	K      int
}

// QueryBatch answers qs as one batch: each band's replica receives the
// whole (sanitized) query list in a single /v1/batch request, then
// every query's per-band answers are heap-merged. Answers align
// positionally with qs and match a loop of TopK calls; invalid queries
// (k ≤ 0, inverted or NaN bounds) yield nil without touching the
// network.
func (c *Cluster) QueryBatch(ctx context.Context, qs []Query) [][]point.P {
	if len(qs) == 0 {
		return nil
	}
	out := make([][]point.P, len(qs))
	valid := make([]int, 0, len(qs))
	wire := make([]wireOp, 0, len(qs))
	for qi, q := range qs {
		if q.K <= 0 || q.X1 > q.X2 || math.IsNaN(q.X1) || math.IsNaN(q.X2) {
			continue
		}
		valid = append(valid, qi)
		// JSON cannot carry ±Inf; the widest finite bounds select the
		// same (finite) points.
		wire = append(wire, wireOp{Op: "query", X1: sanitizeBound(q.X1), X2: sanitizeBound(q.X2), K: q.K})
	}
	if len(valid) == 0 {
		return out
	}
	lists := make([][][]point.P, len(qs))
	for _, qi := range valid {
		lists[qi] = make([][]point.P, len(c.groups))
	}
	fns := make([]func(), len(c.groups))
	for gi, g := range c.groups {
		gi, g := gi, g
		fns[gi] = func() {
			_ = c.readFrom(ctx, g, func(cctx context.Context, n *node) error {
				items, err := n.batch(cctx, wire)
				if err != nil {
					return err
				}
				for j, item := range items {
					lists[valid[j]][gi] = toPoints(item.Results)
				}
				return nil
			})
		}
	}
	parallel(fns)
	sp := obs.StartSpan(ctx, "merge", "")
	for _, qi := range valid {
		out[qi] = merge.TopK(lists[qi], qs[qi].K)
	}
	sp.End(nil)
	return out
}

// Count returns the number of live points with position in [x1, x2],
// summing one replica per band.
func (c *Cluster) Count(ctx context.Context, x1, x2 float64) int {
	if x1 > x2 || math.IsNaN(x1) || math.IsNaN(x2) {
		return 0
	}
	counts := make([]int, len(c.groups))
	fns := make([]func(), len(c.groups))
	for gi, g := range c.groups {
		gi, g := gi, g
		fns[gi] = func() {
			_ = c.readFrom(ctx, g, func(cctx context.Context, n *node) error {
				cnt, err := n.count(cctx, x1, x2)
				if err != nil {
					return err
				}
				counts[gi] = cnt
				return nil
			})
		}
	}
	parallel(fns)
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	return total
}

// Op is one batched update: an insert of P, or a delete when Delete is
// set.
type Op struct {
	Delete bool
	P      point.P
}

// Insert adds p under the Store error contract, routed by score to the
// owning band and applied to every replica there. Check order matches
// the local backends: ErrInvalidPoint, then ErrDuplicatePosition
// (gateway registry — the one check score routing cannot delegate to a
// member), then ErrDuplicateScore (gateway registry fast path, member
// authoritative). ErrNodeDown when the owning band cannot take the
// write.
func (c *Cluster) Insert(ctx context.Context, p point.P) error {
	return c.ApplyBatch(ctx, []Op{{P: p}})[0]
}

// Delete removes p, reporting whether it was present. A delete the
// owning band cannot serve (node down) reports false — the bool-only
// Store signature cannot distinguish outage from absence; use
// ApplyBatch to observe ErrNodeDown explicitly.
func (c *Cluster) Delete(ctx context.Context, p point.P) bool {
	return c.ApplyBatch(ctx, []Op{{Delete: true, P: p}})[0] == nil
}

// pending is one batch op that passed the gateway-side checks and is
// headed for the wire, with the registry bookkeeping needed to undo
// its optimistic effects if the member rejects it.
type pending struct {
	op     int
	insert bool
	p      point.P
	// For deletes: whether the gateway registries contained the
	// position/score (removed optimistically, restored on not-found).
	hadPos, hadScore bool
}

// ApplyBatch applies a mixed batch: ops route by score to their owning
// band, each band's sub-batch ships as one /v1/batch applied to EVERY
// replica of the group, and per-op outcomes are stitched back into
// batch order. In-band order follows batch order; ops on different
// bands ship in parallel and commute only when they touch different
// points — like Sharded.ApplyBatch, the interleaving across partitions
// is not chosen, so an insert reusing the score of a same-batch delete
// is safe (same band, ordered) but one reusing a same-batch deleted
// POSITION from a different band may race it at the gateway registry.
//
// Per-op outcomes: nil for applied ops; ErrNotFound for absent
// deletes; ErrInvalidPoint / ErrDuplicatePosition / ErrDuplicateScore
// for rejected inserts; ErrNodeDown for every op of a band whose group
// was ejected, unreachable, or answered inconsistently. When a
// multi-replica group fails mid-write the replicas may have diverged —
// the gateway never papers over that: the ops report ErrNodeDown and
// the operator reloads the failed replica (DESIGN.md, failure
// semantics).
func (c *Cluster) ApplyBatch(ctx context.Context, ops []Op) []error {
	if len(ops) == 0 {
		return nil
	}
	res := make([]error, len(ops))
	perGroup := make([][]pending, len(c.groups))
	perWire := make([][]wireOp, len(c.groups))

	// Gateway-side pass, in batch order under one registry lock:
	// reject inserts duplicating anything this gateway knows, and
	// optimistically apply the batch's own effects so a later insert
	// can reuse an earlier delete's identity (the member applies the
	// same order authoritatively).
	c.dupMu.Lock()
	for i, op := range ops {
		if !op.P.Finite() {
			if op.Delete {
				// A non-finite point can never be live (inserts reject
				// them), so the exact-match answer is known without a
				// network hop — and JSON could not carry the coordinates
				// anyway. Matches Index/Sharded: ErrNotFound.
				res[i] = core.ErrNotFound
			} else {
				res[i] = core.ErrInvalidPoint
			}
			continue
		}
		gi := c.locate(op.P.Score)
		if op.Delete {
			_, hp := c.positions[op.P.X]
			if hp {
				delete(c.positions, op.P.X)
			}
			_, hs := c.scores[op.P.Score]
			if hs {
				delete(c.scores, op.P.Score)
			}
			perGroup[gi] = append(perGroup[gi], pending{op: i, p: op.P, hadPos: hp, hadScore: hs})
			perWire[gi] = append(perWire[gi], wireOp{Op: "delete", X: op.P.X, Score: op.P.Score})
			continue
		}
		if _, dup := c.positions[op.P.X]; dup {
			res[i] = core.ErrDuplicatePosition
			continue
		}
		if _, dup := c.scores[op.P.Score]; dup {
			res[i] = core.ErrDuplicateScore
			continue
		}
		c.positions[op.P.X] = struct{}{}
		c.scores[op.P.Score] = struct{}{}
		perGroup[gi] = append(perGroup[gi], pending{op: i, insert: true, p: op.P})
		perWire[gi] = append(perWire[gi], wireOp{Op: "insert", X: op.P.X, Score: op.P.Score})
	}
	c.dupMu.Unlock()

	var fns []func()
	for gi := range perGroup {
		if len(perGroup[gi]) == 0 {
			continue
		}
		gi := gi
		fns = append(fns, func() { c.applyGroup(ctx, c.groups[gi], perGroup[gi], perWire[gi], res) })
	}
	if len(fns) > 0 {
		parallel(fns)
	}
	return res
}

// applyGroup ships one band's sub-batch to every replica of g and
// reconciles outcomes into res. Writes are consistency-first: any
// ejected replica fails the whole sub-batch up front (writing around a
// downed replica would silently diverge the group), and any transport
// failure or cross-replica disagreement reports ErrNodeDown.
func (c *Cluster) applyGroup(ctx context.Context, g *group, pds []pending, wire []wireOp, res []error) {
	fail := func(err error) {
		c.rollback(pds, res)
		for _, pd := range pds {
			res[pd.op] = err
		}
	}
	for _, n := range g.nodes {
		if n.isEjected() {
			fail(fmt.Errorf("cluster: band [%g, %g): member %s ejected: %w", g.lo, g.hi, n.addr, ErrNodeDown))
			return
		}
	}
	items := make([][]wireItem, len(g.nodes))
	errs := make([]error, len(g.nodes))
	fns := make([]func(), len(g.nodes))
	for ri, n := range g.nodes {
		ri, n := ri, n
		fns[ri] = func() {
			cctx, cancel := c.callCtx(ctx)
			defer cancel()
			items[ri], errs[ri] = n.batch(cctx, wire)
			if errs[ri] != nil && errors.Is(errs[ri], ErrNodeDown) {
				c.markFailed(n)
			} else {
				c.markUp(n)
			}
		}
	}
	parallel(fns)
	for _, err := range errs {
		if err != nil {
			fail(fmt.Errorf("cluster: band [%g, %g) write failed (replicas may need reload): %w", g.lo, g.hi, err))
			return
		}
	}
	// All replicas answered; they must agree op by op (they hold
	// identical data under the single-writer regime).
	for j := range pds {
		for ri := 1; ri < len(items); ri++ {
			if items[ri][j].OK != items[0][j].OK {
				fail(fmt.Errorf("cluster: band [%g, %g): replicas disagree on op %d — group diverged, reload required: %w",
					g.lo, g.hi, pds[j].op, ErrNodeDown))
				return
			}
		}
	}
	var undo []pending
	for j, pd := range pds {
		item := items[0][j]
		if item.OK {
			if pd.insert {
				c.n.Add(1)
			} else {
				c.n.Add(-1)
			}
			continue
		}
		if item.Error != nil {
			res[pd.op] = errFromCode(item.Error.Code, item.Error.Message)
		} else {
			res[pd.op] = fmt.Errorf("cluster: band [%g, %g): op %d rejected without a code", g.lo, g.hi, pd.op)
		}
		undo = append(undo, pd)
	}
	if len(undo) > 0 {
		c.rollback(undo, nil)
	}
}

// rollback undoes the optimistic registry effects of pending ops whose
// writes did not land: failed inserts release their reservations,
// failed deletes restore what they removed. When res is non-nil only
// ops without an outcome yet are rolled back (group-level failure);
// with res nil the caller passes exactly the ops to undo.
func (c *Cluster) rollback(pds []pending, res []error) {
	c.dupMu.Lock()
	defer c.dupMu.Unlock()
	for _, pd := range pds {
		if res != nil && res[pd.op] != nil {
			continue
		}
		if pd.insert {
			delete(c.positions, pd.p.X)
			delete(c.scores, pd.p.Score)
			continue
		}
		if pd.hadPos {
			c.positions[pd.p.X] = struct{}{}
		}
		if pd.hadScore {
			c.scores[pd.p.Score] = struct{}{}
		}
	}
}

// Stats is the cluster-aggregated meter view: the simulated-disk
// counters summed across EVERY member (replicas included — each does
// its own real I/O), plus the gateway's live count.
type Stats struct {
	Reads, Writes, BlocksLive, BlocksPeak int64
}

// Stats sums the I/O meters of every reachable member. Unreachable
// members are marked for the health accounting and contribute nothing
// — an aggregate over a degraded fleet undercounts rather than blocks.
func (c *Cluster) Stats(ctx context.Context) Stats {
	per := make([]statsResp, len(c.nodes))
	ok := make([]bool, len(c.nodes))
	fns := make([]func(), len(c.nodes))
	for i, n := range c.nodes {
		i, n := i, n
		fns[i] = func() {
			cctx, cancel := c.callCtx(ctx)
			defer cancel()
			s, err := n.stats(cctx)
			if err != nil {
				c.markFailed(n)
				return
			}
			c.markUp(n)
			per[i], ok[i] = s, true
		}
	}
	parallel(fns)
	var out Stats
	for i := range per {
		if !ok[i] {
			continue
		}
		out.Reads += per[i].Reads
		out.Writes += per[i].Writes
		out.BlocksLive += per[i].BlocksLive
		out.BlocksPeak += per[i].BlocksPeak
	}
	return out
}

// ResetStats zeroes every reachable member's counters (best-effort).
func (c *Cluster) ResetStats(ctx context.Context) {
	c.adminFanOut(ctx, (*node).resetStats)
}

// DropCache evicts every reachable member's buffer pools (best-effort).
func (c *Cluster) DropCache(ctx context.Context) {
	c.adminFanOut(ctx, (*node).dropCache)
}

func (c *Cluster) adminFanOut(ctx context.Context, call func(*node, context.Context) error) {
	fns := make([]func(), len(c.nodes))
	for i, n := range c.nodes {
		i, n := i, n
		_ = i
		fns[i] = func() {
			cctx, cancel := c.callCtx(ctx)
			defer cancel()
			if err := call(n, cctx); err != nil {
				c.markFailed(n)
			} else {
				c.markUp(n)
			}
		}
	}
	parallel(fns)
}

// RPCDurations returns the per-member RPC latency histograms — every
// member request this client issued, keyed by member address.
func (c *Cluster) RPCDurations() *obs.Vec { return c.rpc }

// ScrapeMetrics fetches every member's raw /v1/metrics page in
// parallel — the federation leg of the gateway's /v1/metrics/fleet.
// Unreachable members are skipped (and fed into the same ejection
// accounting as any failed request); the second return is the total
// member count so the caller can report fleet coverage.
func (c *Cluster) ScrapeMetrics(ctx context.Context) ([]obs.MetricsPage, int) {
	pages := make([]*obs.MetricsPage, len(c.nodes))
	fns := make([]func(), len(c.nodes))
	for i, n := range c.nodes {
		i, n := i, n
		fns[i] = func() {
			cctx, cancel := c.callCtx(ctx)
			defer cancel()
			body, err := n.getRaw(cctx, "/v1/metrics")
			if err != nil {
				c.markFailed(n)
				return
			}
			c.markUp(n)
			pages[i] = &obs.MetricsPage{Node: n.addr, Body: body}
		}
	}
	parallel(fns)
	out := make([]obs.MetricsPage, 0, len(pages))
	for _, p := range pages {
		if p != nil {
			out = append(out, *p)
		}
	}
	return out, len(c.nodes)
}

// FetchTrace fetches the member at addr's span tree for the given
// trace ID — the stitching leg of the gateway's /v1/trace/{id}. The
// addr must match a configured member (it comes from an RPC span this
// client created, so a mismatch means the trace outlived a topology).
func (c *Cluster) FetchTrace(ctx context.Context, addr, id string) (obs.TraceJSON, error) {
	var out obs.TraceJSON
	var target *node
	for _, n := range c.nodes {
		if n.addr == addr {
			target = n
			break
		}
	}
	if target == nil {
		return out, fmt.Errorf("cluster: no member %s", addr)
	}
	cctx, cancel := c.callCtx(ctx)
	defer cancel()
	err := target.get(cctx, "/v1/trace/"+url.PathEscape(id), &out)
	return out, err
}

// String summarizes the fleet layout.
func (c *Cluster) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster.Cluster{n=%d, bands=%d", c.n.Load(), len(c.groups))
	for i, g := range c.groups {
		fmt.Fprintf(&b, ", b%d[%g,%g)x%d", i, g.lo, g.hi, len(g.nodes))
	}
	b.WriteString("}")
	return b.String()
}
