package cluster

// This file is the wire half of the client tier: the JSON types
// mirroring internal/serve's /v1 responses, and the mapping from the
// structured error envelope back to the library's sentinel errors, so
// a rejection that crossed the network is indistinguishable (via
// errors.Is) from one raised by a local backend.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/point"
)

// ErrNodeDown reports that a member node could not serve a request:
// unreachable, timed out, returned a transport-level failure, or is
// currently ejected by the health checker. It is re-exported as
// topk.ErrNodeDown; match with errors.Is.
var ErrNodeDown = errors.New("cluster: node down")

// resultJSON is one reported point. (Single-point /v1/insert and
// /v1/delete have no wire types here: every gateway update travels
// through /v1/batch, one request per band sub-batch.)
type resultJSON struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

type topkResp struct {
	Results []resultJSON `json:"results"`
}

type countResp struct {
	Count int `json:"count"`
}

type statsResp struct {
	N          int   `json:"n"`
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	BlocksLive int64 `json:"blocks_live"`
	BlocksPeak int64 `json:"blocks_peak"`
}

// rangeResp is GET /v1/range: the member's score band, open (infinite)
// ends encoded as null, plus its live count for the construction-time
// replica sanity check.
type rangeResp struct {
	Lo *float64 `json:"lo"`
	Hi *float64 `json:"hi"`
	N  int      `json:"n"`
}

func (r rangeResp) bounds() (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if r.Lo != nil {
		lo = *r.Lo
	}
	if r.Hi != nil {
		hi = *r.Hi
	}
	return lo, hi
}

type epochResp struct {
	Epoch int64 `json:"epoch"`
}

// wireOp is one element of a POST /v1/batch request.
type wireOp struct {
	Op    string  `json:"op"`
	X     float64 `json:"x,omitempty"`
	Score float64 `json:"score,omitempty"`
	X1    float64 `json:"x1,omitempty"`
	X2    float64 `json:"x2,omitempty"`
	K     int     `json:"k,omitempty"`
}

// wireErr is the structured error envelope's payload.
type wireErr struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// wireItem is one element of a /v1/batch response.
type wireItem struct {
	OK      bool         `json:"ok"`
	Error   *wireErr     `json:"error,omitempty"`
	Results []resultJSON `json:"results,omitempty"`
}

type batchReq struct {
	Ops []wireOp `json:"ops"`
}

type batchResp struct {
	Results []wireItem `json:"results"`
	N       int        `json:"n"`
}

// errBody is the structured error envelope.
type errBody struct {
	Error wireErr `json:"error"`
}

// errFromCode maps a structured error code back to the sentinel the
// member's local store raised, preserving errors.Is across the wire.
// Unknown codes surface as plain errors (a member running newer code
// than the gateway), never as ErrNodeDown — the node answered, the
// request was just rejected.
func errFromCode(code, msg string) error {
	switch code {
	case "duplicate_position":
		return fmt.Errorf("%w (remote: %s)", core.ErrDuplicatePosition, msg)
	case "duplicate_score":
		return fmt.Errorf("%w (remote: %s)", core.ErrDuplicateScore, msg)
	case "invalid_point":
		return fmt.Errorf("%w (remote: %s)", core.ErrInvalidPoint, msg)
	case "not_found":
		return fmt.Errorf("%w (remote: %s)", core.ErrNotFound, msg)
	default:
		return fmt.Errorf("cluster: member rejected request: %s (%s)", msg, code)
	}
}

// toPoints decodes wire results into points. Empty in, nil out, so the
// gateway agrees byte-for-byte with local backends on no-hit queries.
func toPoints(rs []resultJSON) []point.P {
	if len(rs) == 0 {
		return nil
	}
	out := make([]point.P, len(rs))
	for i, r := range rs {
		out[i] = point.P{X: r.X, Score: r.Score}
	}
	return out
}

// sanitizeBound maps an infinite query bound to the widest finite
// float64. JSON cannot carry ±Inf, and every stored position is finite
// by the input contract, so [-MaxFloat64, +MaxFloat64] selects exactly
// the same points as (-Inf, +Inf) — the substitution is invisible in
// answers. NaN never reaches here (invalid queries are answered nil
// locally).
func sanitizeBound(x float64) float64 {
	if math.IsInf(x, -1) {
		return -math.MaxFloat64
	}
	if math.IsInf(x, 1) {
		return math.MaxFloat64
	}
	return x
}
