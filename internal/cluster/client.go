package cluster

// This file is the HTTP half of one member node: a node owns its base
// URL and health state and speaks internal/serve's /v1 surface through
// the cluster's shared, pooled transport. Every call takes a context
// that already carries the per-request deadline (Cluster.callCtx), so
// cancellation and timeouts thread end-to-end from the gateway's
// caller down to the member's socket.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/point"
)

// node is one member process of the cluster.
type node struct {
	addr string // normalized base URL, e.g. http://host:port
	hc   *http.Client
	// rpc is the cluster-shared per-member latency vec; do records
	// every request under this node's address.
	rpc *obs.Vec

	// Health state (health.go): consecutive failures and the ejection
	// deadline, guarded by mu.
	mu           sync.Mutex
	fails        int
	ejectedUntil time.Time
}

// get issues a GET and decodes the 200 body into out.
func (n *node) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.addr+path, nil)
	if err != nil {
		return fmt.Errorf("%s: %w: %v", n.addr, ErrNodeDown, err)
	}
	return n.do(req, out)
}

// post issues a POST with a JSON body and decodes the 200 body into out.
func (n *node) post(ctx context.Context, path string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return fmt.Errorf("%s: encode: %w", n.addr, err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.addr+path, &buf)
	if err != nil {
		return fmt.Errorf("%s: %w: %v", n.addr, ErrNodeDown, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return n.do(req, out)
}

// do executes the request. Transport failures and 5xx responses wrap
// ErrNodeDown (the member is unreachable or broken); structured non-2xx
// envelopes map back to the library sentinels (the member answered and
// rejected — not a node failure).
//
// Telemetry rides along here, on the one choke point every member
// request passes through: the duration lands in the per-member latency
// vec, and when the context carries a trace the ID is stamped on the
// outgoing request (the member's middleware adopts it, so both ends
// retain the same trace) with one child span per RPC hung off the
// gateway's root.
func (n *node) do(req *http.Request, out any) (err error) {
	if tr := obs.FromContext(req.Context()); tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID)
	}
	sp := obs.StartSpan(req.Context(), req.Method+" "+req.URL.Path, n.addr)
	if id := sp.ID(); id != "" {
		// The member records this span as its trace's parent, and the
		// gateway's stitcher splices the member tree back under it.
		req.Header.Set(obs.ParentSpanHeader, id)
	}
	start := time.Now()
	defer func() {
		if n.rpc != nil {
			n.rpc.Observe(n.addr, time.Since(start))
		}
		sp.End(err)
	}()
	resp, err := n.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%s: %w: %v", n.addr, ErrNodeDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		var eb errBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Code != "" && resp.StatusCode < 500 {
			return errFromCode(eb.Error.Code, eb.Error.Message)
		}
		return fmt.Errorf("%s: %w: http %d: %s", n.addr, ErrNodeDown, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A 200 with an undecodable body is a broken member, not a
		// rejection.
		return fmt.Errorf("%s: %w: bad response body: %v", n.addr, ErrNodeDown, err)
	}
	return nil
}

// fetchRange asks the member for its declared score band.
func (n *node) fetchRange(ctx context.Context) (rangeResp, error) {
	var r rangeResp
	err := n.get(ctx, "/v1/range", &r)
	return r, err
}

// probe is the health check: the cheapest stateless read the member
// serves. /v1/epoch exists on every backend (0 when the backend has no
// topology), so a probe failure always means the PROCESS is in
// trouble, never that the backend is the wrong flavor.
func (n *node) probe(ctx context.Context) error {
	var e epochResp
	return n.get(ctx, "/v1/epoch", &e)
}

// topk runs one remote TopK. Bounds travel as URL query parameters, so
// ±Inf survives (strconv round-trips "Inf", unlike JSON bodies) —
// provided they are URL-escaped: a bare "+Inf" would decode as " Inf",
// '+' being the form encoding of space.
func (n *node) topk(ctx context.Context, x1, x2 float64, k int) ([]point.P, error) {
	q := url.Values{}
	q.Set("x1", fmtFloat(x1))
	q.Set("x2", fmtFloat(x2))
	q.Set("k", strconv.Itoa(k))
	var r topkResp
	if err := n.get(ctx, "/v1/topk?"+q.Encode(), &r); err != nil {
		return nil, err
	}
	return toPoints(r.Results), nil
}

// count runs one remote Count.
func (n *node) count(ctx context.Context, x1, x2 float64) (int, error) {
	q := url.Values{}
	q.Set("x1", fmtFloat(x1))
	q.Set("x2", fmtFloat(x2))
	var r countResp
	if err := n.get(ctx, "/v1/count?"+q.Encode(), &r); err != nil {
		return 0, err
	}
	return r.Count, nil
}

// batch runs one remote /v1/batch, returning the per-op items aligned
// with ops.
func (n *node) batch(ctx context.Context, ops []wireOp) ([]wireItem, error) {
	var r batchResp
	if err := n.post(ctx, "/v1/batch", batchReq{Ops: ops}, &r); err != nil {
		return nil, err
	}
	if len(r.Results) != len(ops) {
		return nil, fmt.Errorf("%s: %w: batch returned %d items for %d ops", n.addr, ErrNodeDown, len(r.Results), len(ops))
	}
	return r.Results, nil
}

// stats fetches the member's meter snapshot.
func (n *node) stats(ctx context.Context) (statsResp, error) {
	var r statsResp
	err := n.get(ctx, "/v1/stats", &r)
	return r, err
}

// resetStats and dropCache are the administrative fan-out legs.
func (n *node) resetStats(ctx context.Context) error {
	return n.post(ctx, "/v1/stats/reset", nil, nil)
}

func (n *node) dropCache(ctx context.Context) error {
	return n.post(ctx, "/v1/cache/drop", nil, nil)
}

// getRaw issues a GET and returns the raw 200 body — the metrics
// scrape leg, where the payload is a Prometheus text page rather than
// JSON. Non-200 responses and transport failures wrap ErrNodeDown.
func (n *node) getRaw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.addr+path, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %v", n.addr, ErrNodeDown, err)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %v", n.addr, ErrNodeDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return nil, fmt.Errorf("%s: %w: http %d: %s", n.addr, ErrNodeDown, resp.StatusCode, data)
	}
	return io.ReadAll(resp.Body)
}

// fmtFloat renders a float64 for a URL query parameter with exact
// round-trip precision.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
