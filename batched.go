package topk

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ingest"
)

// This file is the public face of the write-path group-commit layer
// (internal/ingest): Batched wraps any Store and coalesces concurrent
// single-op Insert/Delete calls into grouped ApplyBatch flushes, so
// the per-op coordination cost — an HTTP round trip on the cluster
// tier, a topology RLock plus a shard mutex in process — amortizes
// across the group. See DESIGN.md ("Write path: group commit").

// BatchedConfig tunes the group-commit layer. The zero value gives
// serving defaults (256-op size trigger, 1ms window, 8 stripes).
type BatchedConfig struct {
	// Window bounds how long an async op waits for company before the
	// background flusher commits its group. Sync callers (Insert,
	// Delete, Do-style) never wait it — they drive commits themselves.
	// 0 means the 1ms default; negative disables the background
	// flusher (sync-only operation, Submit* futures then resolve only
	// when a sync caller or Flush drives a commit).
	Window time.Duration
	// MaxBatch is the size trigger: a pending group this large commits
	// immediately instead of waiting out the window. 0 means 256.
	MaxBatch int
	// Stripes is the enqueue-buffer stripe count (rounded up to a
	// power of two). 0 means 8.
	Stripes int
	// MaxPending is the backpressure bound: a producer observing more
	// pending ops tries to drive a commit itself. 0 means 4×MaxBatch.
	MaxPending int
	// DisableTelemetry turns off the batcher's write-path telemetry
	// (group-size/flush-latency histograms, flush-reason counters).
	// Exists so the instrumentation-overhead experiment (e15) can
	// difference the two configurations; serving always leaves it on.
	DisableTelemetry bool
}

// BatcherStats snapshots the group-commit counters of a Batched store.
type BatcherStats struct {
	// Flushes is the number of non-empty groups committed.
	Flushes int64
	// Ops is the total ops committed across all groups.
	Ops int64
	// MaxGroup is the largest single group committed.
	MaxGroup int64
	// Pending is the ops currently enqueued and not yet committed.
	Pending int64
}

// Future is the outcome handle of an asynchronous SubmitInsert or
// SubmitDelete: resolved when the op's group commits, carrying exactly
// the error the equivalent direct call would have returned.
type Future struct {
	f *ingest.Future
}

// Done returns a channel closed when the op's group has committed.
func (f Future) Done() <-chan struct{} { return f.f.Done() }

// Ready reports whether the op's group has committed.
func (f Future) Ready() bool { return f.f.Ready() }

// Err returns the op's outcome once Ready — nil for applied, else the
// same sentinel the direct call would have returned (errors.Is
// compatible). Before the group commits it returns nil; check Ready,
// or use Wait for the blocking form.
func (f Future) Err() error { return f.f.Err() }

// Wait parks until the op's group commits and returns its outcome.
func (f Future) Wait() error { return f.f.Wait() }

// Batched wraps a Store with write-path group commit: concurrent
// Insert/Delete calls coalesce into grouped ApplyBatch flushes against
// the inner store. Reads pass through untouched. Error semantics are
// exact — a batched Insert returns the same sentinel an unbatched one
// would have (ErrInvalidPoint, ErrDuplicatePosition,
// ErrDuplicateScore; ErrNotFound for deletes via SubmitDelete).
//
// Two write modes share one batcher. The synchronous mode (Insert,
// Delete — the Store interface) parks the caller on a per-op future
// until its group commits; groups are self-clocking, sized by how many
// writers overlapped one commit, and a lone writer degenerates to a
// direct call. The asynchronous mode (SubmitInsert, SubmitDelete)
// returns a Future immediately; the background flusher commits on a
// size-or-deadline trigger, and cmd/topkd surfaces this as HTTP 202
// plus a queryable outcome.
//
// Caveat (inherited from ApplyBatch on Sharded): a group mixing a
// delete of score s with an insert reusing score s may order them
// across shards either way. Synchronous callers who wait for the
// delete before inserting are unaffected — the commit of the delete's
// group happens before the insert is submitted.
type Batched struct {
	inner Store
	b     *ingest.Batcher
	buf   []BatchOp // flush conversion buffer; flushes are serialized by the commit slot
}

// Batched is a Store; compile-time assertion (works over any Store:
// Index must be wrapped in a concurrency-safe guard first — e.g.
// serve.LockedIndex — since the batcher is called concurrently).
var _ Store = (*Batched)(nil)

// NewBatched wraps st with the group-commit write path.
func NewBatched(st Store, cfg BatchedConfig) (*Batched, error) {
	if st == nil {
		return nil, fmt.Errorf("%w: nil store", ErrConfig)
	}
	if cfg.MaxBatch < 0 || cfg.Stripes < 0 || cfg.MaxPending < 0 {
		return nil, fmt.Errorf("%w: negative batcher bound", ErrConfig)
	}
	bt := &Batched{inner: st}
	bt.b = ingest.New(ingest.Options{
		Flush:            bt.flush,
		MaxBatch:         cfg.MaxBatch,
		Window:           cfg.Window,
		Stripes:          cfg.Stripes,
		MaxPending:       cfg.MaxPending,
		DisableTelemetry: cfg.DisableTelemetry,
	})
	return bt, nil
}

// flush commits one group via the inner store's ApplyBatch. Calls are
// serialized by the batcher's commit slot, so the conversion buffer is
// safely reused across flushes.
func (bt *Batched) flush(ops []ingest.Op) []error {
	buf := bt.buf[:0]
	for _, op := range ops {
		buf = append(buf, BatchOp{Delete: op.Delete, X: op.X, Score: op.Score})
	}
	bt.buf = buf
	return bt.inner.ApplyBatch(buf)
}

// Insert adds (pos, score) through the group-commit path, parking
// until the group commits. The error contract matches the inner
// store's Insert exactly.
func (bt *Batched) Insert(pos, score float64) error {
	return bt.b.Do(ingest.Op{X: pos, Score: score})
}

// Delete removes (pos, score) through the group-commit path, parking
// until the group commits. It reports whether the point was present,
// matching the inner store's Delete contract.
func (bt *Batched) Delete(pos, score float64) bool {
	return bt.b.Do(ingest.Op{Delete: true, X: pos, Score: score}) == nil
}

// SubmitInsert enqueues an insert and returns immediately; the Future
// resolves when the op's group commits.
func (bt *Batched) SubmitInsert(pos, score float64) Future {
	return Future{f: bt.b.Submit(ingest.Op{X: pos, Score: score})}
}

// SubmitDelete enqueues a delete and returns immediately; the Future
// resolves to nil if the point was present, ErrNotFound otherwise.
func (bt *Batched) SubmitDelete(pos, score float64) Future {
	return Future{f: bt.b.Submit(ingest.Op{Delete: true, X: pos, Score: score})}
}

// Flush drives one group commit now, draining every pending op. Useful
// before a read that must observe prior async submissions.
func (bt *Batched) Flush() { bt.b.Commit() }

// ApplyBatch passes through: the caller already grouped the ops. A
// pending group is flushed first so ops submitted before this call are
// not reordered after it.
func (bt *Batched) ApplyBatch(ops []BatchOp) []error {
	bt.b.Commit()
	return bt.inner.ApplyBatch(ops)
}

// Len reports the live size after flushing pending writes.
func (bt *Batched) Len() int {
	bt.b.Commit()
	return bt.inner.Len()
}

// Reads pass through to the inner store. They do NOT flush pending
// async ops — an op acknowledged with 202 is readable only once its
// group commits (bounded by Window); call Flush first for
// read-your-writes.

// TopK passes through to the inner store.
func (bt *Batched) TopK(x1, x2 float64, k int) []Result { return bt.inner.TopK(x1, x2, k) }

// QueryBatch passes through to the inner store.
func (bt *Batched) QueryBatch(qs []Query) [][]Result { return bt.inner.QueryBatch(qs) }

// Count passes through to the inner store.
func (bt *Batched) Count(x1, x2 float64) int { return bt.inner.Count(x1, x2) }

// Stats passes through to the inner store.
func (bt *Batched) Stats() Stats { return bt.inner.Stats() }

// ResetStats passes through to the inner store.
func (bt *Batched) ResetStats() { bt.inner.ResetStats() }

// DropCache passes through to the inner store.
func (bt *Batched) DropCache() { bt.inner.DropCache() }

// BatcherStats snapshots the group-commit counters.
func (bt *Batched) BatcherStats() BatcherStats {
	s := bt.b.Stats()
	return BatcherStats{Flushes: s.Flushes, Ops: s.Ops, MaxGroup: s.MaxGroup, Pending: s.Pending}
}

// IngestTelemetry returns the batcher's write-path telemetry — group
// sizes, flush latency, flush-reason counters, backpressure waits.
// The serving layer probes this to export the topkd_ingest_* families.
func (bt *Batched) IngestTelemetry() *ingest.Telemetry { return bt.b.Telemetry() }

// Unwrap returns the inner store, so serving-layer probes for
// backend-specific surface (NumShards, Epoch, Nodes, ...) see through
// the batching wrapper.
func (bt *Batched) Unwrap() Store { return bt.inner }

// Close flushes every pending op, stops the background flusher, and
// closes the inner store if it has a Close. After Close the wrapper
// keeps working in pass-through mode (each write commits itself).
func (bt *Batched) Close() error {
	if err := bt.b.Close(); err != nil {
		return err
	}
	if c, ok := bt.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// WithContext returns a view whose reads and explicit ApplyBatch are
// bound to ctx (when the inner store supports binding — the cluster
// tier does); single-op writes keep flowing through the shared
// batcher, whose flushes are not per-caller and so cannot carry one
// caller's context.
func (bt *Batched) WithContext(ctx context.Context) Store {
	in, ok := bt.inner.(interface{ WithContext(context.Context) Store })
	if !ok {
		return bt
	}
	return &boundBatched{Batched: bt, view: in.WithContext(ctx)}
}

// boundBatched is the ctx-bound view of a Batched store: reads go to
// the bound inner view, writes to the shared batcher.
type boundBatched struct {
	*Batched
	view Store
}

func (bb *boundBatched) TopK(x1, x2 float64, k int) []Result { return bb.view.TopK(x1, x2, k) }
func (bb *boundBatched) QueryBatch(qs []Query) [][]Result    { return bb.view.QueryBatch(qs) }
func (bb *boundBatched) Count(x1, x2 float64) int            { return bb.view.Count(x1, x2) }
func (bb *boundBatched) ApplyBatch(ops []BatchOp) []error {
	bb.b.Commit()
	return bb.view.ApplyBatch(ops)
}
func (bb *boundBatched) Len() int {
	bb.b.Commit()
	return bb.view.Len()
}
