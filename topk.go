// Package topk is a dynamic, I/O-efficient index for one-dimensional
// top-k range reporting, reproducing Yufei Tao's PODS 2014 paper
// "A Dynamic I/O-Efficient Structure for One-Dimensional Top-k Range
// Reporting" (arXiv:1208.4516).
//
// The problem: maintain a set S of n points on the real line, each with
// a distinct score, under insertions and deletions, so that a query
// (q = [x1,x2], k) returns the k points of S ∩ q with the highest
// scores. In the external-memory model (block size B words), the index
// achieves the paper's Theorem 1 bounds:
//
//	space   O(n/B) blocks
//	query   O(log_B n + k/B) I/Os
//	update  O(log_B n) amortized I/Os
//
// improving on the O(log²_B n) updates of the prior state of the art.
//
// Usage:
//
//	idx, err := topk.New(topk.Config{})
//	if err != nil { ... }
//	if err := idx.Insert(142.50, 9.1); err != nil { ... } // e.g. price, rating
//	if err := idx.Insert(99.99, 8.4); err != nil { ... }
//	best := idx.TopK(100, 200, 10) // ten best-rated in [100,200]
//
// Misuse returns sentinel errors (ErrDuplicatePosition,
// ErrDuplicateScore, ErrInvalidPoint, ErrConfig) instead of
// panicking; see store.go for the Store interface both backends
// implement.
//
// The disk is simulated (DESIGN.md, substitution 1): I/Os are counted
// through an LRU buffer pool exactly as the Aggarwal–Vitter model
// prescribes, and Stats exposes the meter so applications and the
// experiment harness can observe block transfers directly.
//
// An Index is a single sequential EM machine. For concurrent serving,
// Sharded range-partitions the line across several independent EM
// machines, fans queries out in parallel and heap-merges the answers,
// returning exactly what a single Index would; cmd/topkd serves it
// over HTTP. See DESIGN.md for the architecture.
package topk

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/pst"
)

// Config configures an Index. The zero value follows the paper's
// defaults on a 64-word-block simulated disk.
type Config struct {
	// BlockWords is B, the block size in words (default 64).
	BlockWords int
	// MemoryWords is M, the buffer-pool memory in words (default 16·B).
	MemoryWords int
	// Phi is the §2 query constant φ (default 16, the value Lemma 2
	// proves correct; exposed for the E4 ablation).
	Phi int
	// ForcePolylog / ForceBaseline pin the small-k component instead of
	// the paper's automatic B-vs-lg⁶n regime test. At most one may be
	// set.
	ForcePolylog  bool
	ForceBaseline bool
	// PolylogF and PolylogLeafCap shrink the §3.3 tree shape for small
	// inputs (0 = the paper's f = √(B·lg n), b = f·l·B, which keep the
	// tree a single leaf until n is very large).
	PolylogF       int
	PolylogLeafCap int
}

// validate reports ErrConfig-wrapped errors for contradictory
// settings.
func (cfg Config) validate() error {
	if cfg.ForcePolylog && cfg.ForceBaseline {
		return fmt.Errorf("%w: ForcePolylog and ForceBaseline are mutually exclusive", ErrConfig)
	}
	return nil
}

// Result is one reported point.
type Result struct {
	X     float64
	Score float64
}

// Index is a dynamic top-k range reporting index. Create with New; an
// Index is not safe for concurrent use (the EM model is sequential —
// even queries mutate the buffer pool's LRU state). Use Sharded for
// concurrent serving.
type Index struct {
	disk *em.Disk
	ix   *core.Index
}

// New returns an empty Index, or ErrConfig on a contradictory Config.
func New(cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := em.NewDisk(em.Config{B: cfg.BlockWords, M: cfg.MemoryWords})
	return &Index{disk: d, ix: core.New(d, coreOptions(cfg))}, nil
}

// Load returns an Index bulk-loaded with the given points. Besides
// config problems, it rejects inputs violating the paper's standing
// assumptions — non-finite coordinates, duplicate positions or
// duplicate scores — with the corresponding sentinel error.
func Load(cfg Config, pts []Result) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := validatePoints(pts); err != nil {
		return nil, err
	}
	d := em.NewDisk(em.Config{B: cfg.BlockWords, M: cfg.MemoryWords})
	ps := make([]point.P, len(pts))
	for i, r := range pts {
		ps[i] = point.P{X: r.X, Score: r.Score}
	}
	return &Index{disk: d, ix: core.Bulk(d, coreOptions(cfg), ps)}, nil
}

func coreOptions(cfg Config) core.Options {
	opt := core.Options{
		PST:            pst.Options{Phi: cfg.Phi},
		PolylogF:       cfg.PolylogF,
		PolylogLeafCap: cfg.PolylogLeafCap,
	}
	if cfg.ForcePolylog {
		opt.Regime = core.RegimePolylog
	}
	if cfg.ForceBaseline {
		opt.Regime = core.RegimeBaseline
	}
	return opt
}

// Len returns the number of points currently stored.
func (x *Index) Len() int { return x.ix.Len() }

// Insert adds the point (pos, score). Positions and scores are
// distinct across the live set (the paper's standing assumption; see
// §1 footnote 1 for the standard reductions when they are not):
// violations return ErrDuplicatePosition / ErrDuplicateScore, and
// non-finite coordinates return ErrInvalidPoint. A failed insert
// mutates nothing.
func (x *Index) Insert(pos, score float64) error {
	return x.ix.Insert(point.P{X: pos, Score: score})
}

// Delete removes the point (pos, score), reporting whether it was
// present.
func (x *Index) Delete(pos, score float64) bool {
	return x.ix.Delete(point.P{X: pos, Score: score})
}

// ApplyBatch applies the operations in order (an Index is one
// sequential machine — there is nothing to parallelize) and returns
// one error per op under the Store contract: nil for applied ops,
// ErrNotFound for deletes of absent points, the Insert sentinels for
// rejected inserts. A rejected op mutates nothing; later ops still
// run.
func (x *Index) ApplyBatch(ops []BatchOp) []error {
	if len(ops) == 0 {
		return nil
	}
	res := make([]error, len(ops))
	for i, op := range ops {
		if op.Delete {
			if !x.Delete(op.X, op.Score) {
				res[i] = ErrNotFound
			}
		} else {
			res[i] = x.Insert(op.X, op.Score)
		}
	}
	return res
}

// TopK returns the k highest-scoring points with position in [x1, x2],
// in descending score order; if fewer than k qualify, all are returned.
// k ≤ 0, inverted or NaN bounds return nil.
func (x *Index) TopK(x1, x2 float64, k int) []Result {
	if math.IsNaN(x1) || math.IsNaN(x2) {
		return nil
	}
	return toResults(x.ix.Query(x1, x2, k))
}

// toResults converts internal points; empty in, nil out, so both
// backends agree byte-for-byte on no-hit queries.
func toResults(pts []point.P) []Result {
	if len(pts) == 0 {
		return nil
	}
	out := make([]Result, len(pts))
	for i, p := range pts {
		out[i] = Result{X: p.X, Score: p.Score}
	}
	return out
}

// QueryBatch answers qs as a sequential loop of TopK calls, aligned
// positionally with qs — the Store contract's batched read on a
// single machine (Sharded amortizes real lock and fan-out costs;
// here the batch form exists so callers are backend-agnostic).
func (x *Index) QueryBatch(qs []Query) [][]Result {
	if len(qs) == 0 {
		return nil
	}
	out := make([][]Result, len(qs))
	for i, q := range qs {
		out[i] = x.TopK(q.X1, q.X2, q.K)
	}
	return out
}

// Count returns the number of stored points with position in [x1, x2].
func (x *Index) Count(x1, x2 float64) int { return x.ix.Count(x1, x2) }

// Stats is a snapshot of the simulated disk's I/O meter.
type Stats struct {
	// Reads and Writes count block transfers.
	Reads, Writes int64
	// BlocksLive is the current disk footprint in blocks.
	BlocksLive int64
	// BlocksPeak is the footprint high-water mark.
	BlocksPeak int64
}

// Stats returns the current I/O meter.
func (x *Index) Stats() Stats {
	s := x.disk.Stats()
	return Stats{Reads: s.Reads, Writes: s.Writes, BlocksLive: s.BlocksLive, BlocksPeak: s.BlocksPeak}
}

// ResetStats zeroes the read/write counters (space gauges are kept), so
// callers can meter individual phases.
func (x *Index) ResetStats() { x.disk.ResetMeter() }

// DropCache evicts the buffer pool so the next operations run cold —
// useful when measuring worst-case query I/Os.
func (x *Index) DropCache() { x.disk.DropCache() }

// BlockSize returns B in words.
func (x *Index) BlockSize() int { return x.disk.B() }

// KThreshold returns the k value at which queries switch from the
// small-k machinery (§3.3 / [14]) to the §2 priority search tree
// (B·lg n, per §1.2).
func (x *Index) KThreshold() int { return x.ix.KThreshold() }

// Regime describes which small-k component is active ("polylog(§3.3)"
// or "baseline[14]").
func (x *Index) Regime() string { return x.ix.CurrentRegime().String() }

// String summarizes the index.
func (x *Index) String() string {
	return fmt.Sprintf("topk.Index{n=%d, B=%d, %s}", x.Len(), x.BlockSize(), x.ix)
}
