// Package topk is a dynamic, I/O-efficient index for one-dimensional
// top-k range reporting, reproducing Yufei Tao's PODS 2014 paper
// "A Dynamic I/O-Efficient Structure for One-Dimensional Top-k Range
// Reporting" (arXiv:1208.4516).
//
// The problem: maintain a set S of n points on the real line, each with
// a distinct score, under insertions and deletions, so that a query
// (q = [x1,x2], k) returns the k points of S ∩ q with the highest
// scores. In the external-memory model (block size B words), the index
// achieves the paper's Theorem 1 bounds:
//
//	space   O(n/B) blocks
//	query   O(log_B n + k/B) I/Os
//	update  O(log_B n) amortized I/Os
//
// improving on the O(log²_B n) updates of the prior state of the art.
//
// Usage:
//
//	idx := topk.New(topk.Config{})
//	idx.Insert(142.50, 9.1) // e.g. price, rating
//	idx.Insert(99.99, 8.4)
//	best := idx.TopK(100, 200, 10) // ten best-rated in [100,200]
//
// The disk is simulated (DESIGN.md, substitution 1): I/Os are counted
// through an LRU buffer pool exactly as the Aggarwal–Vitter model
// prescribes, and Stats exposes the meter so applications and the
// experiment harness can observe block transfers directly.
//
// An Index is a single sequential EM machine. For concurrent serving,
// Sharded range-partitions the line across several independent EM
// machines, fans queries out in parallel and heap-merges the answers,
// returning exactly what a single Index would; cmd/topkd serves it
// over HTTP. See DESIGN.md for the architecture.
package topk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/pst"
)

// Config configures an Index. The zero value follows the paper's
// defaults on a 64-word-block simulated disk.
type Config struct {
	// BlockWords is B, the block size in words (default 64).
	BlockWords int
	// MemoryWords is M, the buffer-pool memory in words (default 16·B).
	MemoryWords int
	// Phi is the §2 query constant φ (default 16, the value Lemma 2
	// proves correct; exposed for the E4 ablation).
	Phi int
	// ForcePolylog / ForceBaseline pin the small-k component instead of
	// the paper's automatic B-vs-lg⁶n regime test. At most one may be
	// set.
	ForcePolylog  bool
	ForceBaseline bool
	// PolylogF and PolylogLeafCap shrink the §3.3 tree shape for small
	// inputs (0 = the paper's f = √(B·lg n), b = f·l·B, which keep the
	// tree a single leaf until n is very large).
	PolylogF       int
	PolylogLeafCap int
}

// Result is one reported point.
type Result struct {
	X     float64
	Score float64
}

// Index is a dynamic top-k range reporting index. Create with New; an
// Index is not safe for concurrent use (the EM model is sequential —
// even queries mutate the buffer pool's LRU state). Use Sharded for
// concurrent serving.
type Index struct {
	disk *em.Disk
	ix   *core.Index
}

// New returns an empty Index.
func New(cfg Config) *Index {
	if cfg.ForcePolylog && cfg.ForceBaseline {
		panic("topk: ForcePolylog and ForceBaseline are mutually exclusive")
	}
	d := em.NewDisk(em.Config{B: cfg.BlockWords, M: cfg.MemoryWords})
	return &Index{disk: d, ix: core.New(d, coreOptions(cfg))}
}

// Load returns an Index bulk-loaded with the given points.
func Load(cfg Config, pts []Result) *Index {
	if cfg.ForcePolylog && cfg.ForceBaseline {
		panic("topk: ForcePolylog and ForceBaseline are mutually exclusive")
	}
	d := em.NewDisk(em.Config{B: cfg.BlockWords, M: cfg.MemoryWords})
	ps := make([]point.P, len(pts))
	for i, r := range pts {
		ps[i] = point.P{X: r.X, Score: r.Score}
	}
	return &Index{disk: d, ix: core.Bulk(d, coreOptions(cfg), ps)}
}

func coreOptions(cfg Config) core.Options {
	opt := core.Options{
		PST:            pst.Options{Phi: cfg.Phi},
		PolylogF:       cfg.PolylogF,
		PolylogLeafCap: cfg.PolylogLeafCap,
	}
	if cfg.ForcePolylog {
		opt.Regime = core.RegimePolylog
	}
	if cfg.ForceBaseline {
		opt.Regime = core.RegimeBaseline
	}
	return opt
}

// Len returns the number of points currently stored.
func (x *Index) Len() int { return x.ix.Len() }

// Insert adds the point (pos, score). Positions and scores must be
// distinct across the live set (the paper's standing assumption; see
// §1 footnote 1 for the standard reductions when they are not).
func (x *Index) Insert(pos, score float64) {
	x.ix.Insert(point.P{X: pos, Score: score})
}

// Delete removes the point (pos, score), reporting whether it was
// present.
func (x *Index) Delete(pos, score float64) bool {
	return x.ix.Delete(point.P{X: pos, Score: score})
}

// TopK returns the k highest-scoring points with position in [x1, x2],
// in descending score order; if fewer than k qualify, all are returned.
func (x *Index) TopK(x1, x2 float64, k int) []Result {
	pts := x.ix.Query(x1, x2, k)
	out := make([]Result, len(pts))
	for i, p := range pts {
		out[i] = Result{X: p.X, Score: p.Score}
	}
	return out
}

// Count returns the number of stored points with position in [x1, x2].
func (x *Index) Count(x1, x2 float64) int { return x.ix.Count(x1, x2) }

// Stats is a snapshot of the simulated disk's I/O meter.
type Stats struct {
	// Reads and Writes count block transfers.
	Reads, Writes int64
	// BlocksLive is the current disk footprint in blocks.
	BlocksLive int64
	// BlocksPeak is the footprint high-water mark.
	BlocksPeak int64
}

// Stats returns the current I/O meter.
func (x *Index) Stats() Stats {
	s := x.disk.Stats()
	return Stats{Reads: s.Reads, Writes: s.Writes, BlocksLive: s.BlocksLive, BlocksPeak: s.BlocksPeak}
}

// ResetStats zeroes the read/write counters (space gauges are kept), so
// callers can meter individual phases.
func (x *Index) ResetStats() { x.disk.ResetMeter() }

// DropCache evicts the buffer pool so the next operations run cold —
// useful when measuring worst-case query I/Os.
func (x *Index) DropCache() { x.disk.DropCache() }

// BlockSize returns B in words.
func (x *Index) BlockSize() int { return x.disk.B() }

// KThreshold returns the k value at which queries switch from the
// small-k machinery (§3.3 / [14]) to the §2 priority search tree
// (B·lg n, per §1.2).
func (x *Index) KThreshold() int { return x.ix.KThreshold() }

// Regime describes which small-k component is active ("polylog(§3.3)"
// or "baseline[14]").
func (x *Index) Regime() string { return x.ix.CurrentRegime().String() }

// String summarizes the index.
func (x *Index) String() string {
	return fmt.Sprintf("topk.Index{n=%d, B=%d, %s}", x.Len(), x.BlockSize(), x.ix)
}
