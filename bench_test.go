package topk

// One testing.B benchmark per experiment of EXPERIMENTS.md (E1–E13).
// Each bench reports ios/op — block transfers on the simulated disk, the
// unit of every bound in the paper — alongside Go's ns/op. The richer
// parameter sweeps (tables with multiple n, k, B rows) live in
// cmd/topkbench; these benches pin one representative configuration per
// experiment so `go test -bench=.` regenerates the headline numbers.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/aurs"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/flgroup"
	"repro/internal/heap"
	"repro/internal/point"
	"repro/internal/pst"
	"repro/internal/ram"
	"repro/internal/shengtao"
	"repro/internal/sketch"
	"repro/internal/workload"
)

const benchB = 64

func benchDisk() *em.Disk { return em.NewDisk(em.Config{B: benchB, M: 256 * benchB}) }

func reportIOs(b *testing.B, d *em.Disk, base em.Stats) {
	b.ReportMetric(float64(d.Stats().Sub(base).IOs())/float64(b.N), "ios/op")
}

// BenchmarkE1Theorem1Query: composed query at k below the threshold.
func BenchmarkE1Theorem1Query(b *testing.B) {
	d := benchDisk()
	pts := workload.NewGen(1).Uniform(1<<15, 1e6)
	ix := core.Bulk(d, core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048}, pts)
	rng := rand.New(rand.NewSource(2))
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 4e5
		ix.Query(x1, x1+5e5, 16)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE1Theorem1QueryLargeK: same index, k above the threshold
// (served by the §2 structure).
func BenchmarkE1Theorem1QueryLargeK(b *testing.B) {
	d := benchDisk()
	pts := workload.NewGen(1).Uniform(1<<15, 1e6)
	ix := core.Bulk(d, core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048}, pts)
	k := 2 * ix.KThreshold()
	rng := rand.New(rand.NewSource(3))
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 2e5
		ix.Query(x1, x1+7e5, k)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE2Theorem1Update vs BenchmarkE2BaselineUpdate: the paper's
// headline improvement.
func BenchmarkE2Theorem1Update(b *testing.B) {
	d := benchDisk()
	gen := workload.NewGen(4)
	ix := core.Bulk(d, core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		gen.Uniform(1<<14, 1e6))
	extra := gen.Uniform(1<<16, 1e6)
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(extra[i%len(extra)])
		if i%len(extra) == len(extra)-1 {
			b.Fatalf("bench exhausted distinct points")
		}
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

func BenchmarkE2BaselineUpdate(b *testing.B) {
	d := benchDisk()
	gen := workload.NewGen(4)
	n := 1 << 14
	tr := shengtao.Bulk(d, shengtao.Options{K: benchB * 14}, gen.Uniform(n, 1e6))
	extra := gen.Uniform(1<<16, 1e6)
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(extra[i%len(extra)])
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE3PSTQuery: the §2 structure alone, k in its regime.
func BenchmarkE3PSTQuery(b *testing.B) {
	d := benchDisk()
	p := pst.Bulk(d, pst.Options{}, workload.NewGen(5).Uniform(1<<15, 1e6))
	rng := rand.New(rand.NewSource(6))
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 2e5
		p.Query(x1, x1+7e5, 2048)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE4PhiAblation: φ=4 instead of the proven 16 (answers checked
// in cmd/topkbench; here only the cost side).
func BenchmarkE4PhiAblation(b *testing.B) {
	d := benchDisk()
	p := pst.Bulk(d, pst.Options{Phi: 4}, workload.NewGen(7).Uniform(1<<15, 1e6))
	rng := rand.New(rand.NewSource(8))
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 2e5
		p.Query(x1, x1+7e5, 2048)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE4AdaptiveSelection: the early-termination ablation.
func BenchmarkE4AdaptiveSelection(b *testing.B) {
	d := benchDisk()
	p := pst.Bulk(d, pst.Options{Adaptive: true}, workload.NewGen(7).Uniform(1<<15, 1e6))
	rng := rand.New(rand.NewSource(8))
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 2e5
		p.Query(x1, x1+7e5, 2048)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE5PSTChurnWithTokens: update cost with the Lemma 3
// instrumentation on (tokens are CPU-only; ios/op must match E2's ours).
func BenchmarkE5PSTChurnWithTokens(b *testing.B) {
	d := benchDisk()
	p := pst.Bulk(d, pst.Options{TrackTokens: true}, workload.NewGen(9).Uniform(1<<13, 1e6))
	extra := workload.NewGen(10).Uniform(1<<16, 2e6)
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(extra[i%len(extra)])
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE6AURS: union-rank selection over 64 sets.
func BenchmarkE6AURS(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	var sets []aurs.Set
	for i := 0; i < 64; i++ {
		vals := make([]float64, 600)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		sets = append(sets, benchSet{vals, rng})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aurs.Select(sets, 2, i%128+1)
	}
}

type benchSet struct {
	vals []float64
	rng  *rand.Rand
}

func (s benchSet) Len() int     { return len(s.vals) }
func (s benchSet) Max() float64 { return s.vals[0] }
func (s benchSet) Rank(rho float64) float64 {
	lo := int(math.Ceil(rho))
	hi := 2*lo - 1
	r := lo + s.rng.Intn(hi-lo+1)
	if r > len(s.vals) {
		r = len(s.vals)
	}
	return s.vals[r-1]
}

// BenchmarkE7FLGroupSelect / Update: the Lemma 6 structure.
func BenchmarkE7FLGroupSelect(b *testing.B) {
	d := benchDisk()
	g := flgroup.New(d, 16, 512)
	rng := rand.New(rand.NewSource(12))
	for i := 1; i <= 16; i++ {
		for j := 0; j < 400; j++ {
			g.Insert(i, rng.Float64()+float64(i*512+j))
		}
	}
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Select(1, 16, i%512+1)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

func BenchmarkE7FLGroupUpdate(b *testing.B) {
	d := benchDisk()
	g := flgroup.New(d, 16, 512)
	rng := rand.New(rand.NewSource(13))
	for i := 1; i <= 16; i++ {
		for j := 0; j < 400; j++ {
			g.Insert(i, rng.Float64()+float64(i*512+j))
		}
	}
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si := i%16 + 1
		v := rng.Float64() + float64(1e7+i)
		g.Insert(si, v)
		g.Delete(si, v)
		if i%8 == 7 {
			d.DropCache()
		}
	}
	b.StopTimer()
	d.DropCache()
	reportIOs(b, d, base)
}

// BenchmarkE8SketchMerge: the Lemma 7 merge over 16 sketches (CPU-only;
// the one block read it needs is charged by callers).
func BenchmarkE8SketchMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	var sketches []sketch.Sketch
	for i := 0; i < 16; i++ {
		vals := make([]float64, 512)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		sketches = append(sketches, sketch.Build(vals, 2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketch.Merge(sketches, i%4096+1)
	}
}

// BenchmarkE9PrefixBatchRank: Lemma 8 — a Select whose pivot repairs hit
// the compressed prefix block.
func BenchmarkE9PrefixBatchRank(b *testing.B) {
	d := em.NewDisk(em.Config{B: 1024, M: 64 * 1024})
	g := flgroup.New(d, 32, 400)
	rng := rand.New(rand.NewSource(15))
	for i := 1; i <= 32; i++ {
		for j := 0; j < 300; j++ {
			g.Insert(i, rng.Float64()+float64(i*400+j))
		}
	}
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Select(1, 32, i%200+1)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE10Space: build cost per point; blocks/point reported.
func BenchmarkE10Space(b *testing.B) {
	gen := workload.NewGen(16)
	pts := gen.Uniform(1<<14, 1e6)
	b.ResetTimer()
	var blocksPerPoint float64
	for i := 0; i < b.N; i++ {
		d := benchDisk()
		core.Bulk(d, core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048}, pts)
		blocksPerPoint = float64(d.Stats().BlocksLive) / float64(len(pts))
	}
	b.ReportMetric(blocksPerPoint*benchB, "blocks/(n/B)")
}

// BenchmarkE11RegimeDispatch: query cost exactly at the two sides of the
// k = B·lg n crossover.
func BenchmarkE11RegimeDispatch(b *testing.B) {
	d := benchDisk()
	ix := core.Bulk(d, core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048},
		workload.NewGen(17).Uniform(1<<15, 1e6))
	thr := ix.KThreshold()
	rng := rand.New(rand.NewSource(18))
	d.DropCache()
	base := d.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 2e5
		k := thr - 1
		if i%2 == 1 {
			k = thr
		}
		ix.Query(x1, x1+6e5, k)
		d.DropCache()
	}
	b.StopTimer()
	reportIOs(b, d, base)
}

// BenchmarkE12HeapConcat: Figure 2 — concatenation plus selection.
func BenchmarkE12HeapConcat(b *testing.B) {
	d := benchDisk()
	rng := rand.New(rand.NewSource(19))
	var sources []heap.Source
	for i := 0; i < 8; i++ {
		entries := make([]heap.Entry, 512)
		for j := range entries {
			entries[j] = heap.Entry{Ref: int64(j), Key: rng.Float64()}
		}
		sources = append(sources, heap.NewExternal(d, "bench", entries))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := heap.Concat(d, "cat", sources)
		heap.SelectTop(cat, 64)
		cat.Free()
	}
}

// BenchmarkE13RAMQuery: the pointer-machine baseline.
func BenchmarkE13RAMQuery(b *testing.B) {
	tr := ram.Bulk(workload.NewGen(20).Uniform(1<<17, 1e6))
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Float64() * 4e5
		tr.Query(x1, x1+4e5, 64)
	}
	b.StopTimer()
	b.ReportMetric(float64(tr.Comparisons)/float64(b.N), "cmps/op")
}

// BenchmarkShardedTopK: throughput of the shard/serve layer — one
// query stream against varying shard counts and client goroutine
// counts. With one shard every query serializes on that shard's
// mutex; with more shards, queries on disjoint ranges proceed in
// parallel, which is the serving-layer speedup this bench tracks
// (qps alongside ns/op).
func BenchmarkShardedTopK(b *testing.B) {
	gen := workload.NewGen(22)
	pts := make([]Result, 0, 1<<14)
	for _, p := range gen.Uniform(1<<14, 1e6) {
		pts = append(pts, Result{X: p.X, Score: p.Score})
	}
	// Narrow, serving-shaped queries: most land on one shard, so
	// throughput can scale with goroutines instead of every query
	// fanning out to (and briefly locking) the whole fleet.
	queries := gen.Queries(256, 1e6, 0.0005, 0.02, 64)
	for _, shards := range []int{1, 4, 8} {
		idx := mustLoadSharded(b, ShardedConfig{
			Config: Config{BlockWords: benchB, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
			Shards: shards,
		}, pts)
		for _, g := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, g), func(b *testing.B) {
				res := workload.RunConcurrent(g, b.N, queries, func(q workload.QuerySpec) {
					idx.TopK(q.X1, q.X2, q.K)
				})
				b.ReportMetric(res.QPS(), "qps")
			})
		}
	}
}

// benchStores builds both Store backends over the same load for the
// batch-path benchmarks.
func benchStores(b *testing.B, n int) map[string]Store {
	pts := toResults(workload.NewGen(23).Uniform(n, 1e6))
	return map[string]Store{
		"index": mustLoad(b, Config{BlockWords: benchB, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}, pts),
		"sharded": mustLoadSharded(b, ShardedConfig{
			Config: Config{BlockWords: benchB, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
			Shards: 8,
		}, pts),
	}
}

// BenchmarkQueryBatch: the batched read path on both backends — one
// op is a 16-query batch; qps counts individual queries. On Sharded
// this is the single-topology-lock fan-out the v1 API added; compare
// with BenchmarkShardedTopK's per-query numbers. CI runs this with
// -benchtime=1x as a smoke test so the batch path cannot silently
// rot.
func BenchmarkQueryBatch(b *testing.B) {
	const batch = 16
	gen := workload.NewGen(24)
	specs := gen.Queries(256, 1e6, 0.0005, 0.02, 64)
	qs := make([]Query, len(specs))
	for i, q := range specs {
		qs[i] = Query{X1: q.X1, X2: q.X2, K: q.K}
	}
	for name, st := range benchStores(b, 1<<14) {
		b.Run(name, func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				lo := (i * batch) % (len(qs) - batch)
				st.QueryBatch(qs[lo : lo+batch])
			}
			b.ReportMetric(float64(b.N*batch)/time.Since(start).Seconds(), "qps")
		})
	}
}

// BenchmarkApplyBatch: the batched write path on both backends — one
// op is a 64-op mixed insert/delete batch (each batch deletes what it
// inserted, keeping the index at steady state).
func BenchmarkApplyBatch(b *testing.B) {
	const batch = 64
	for name, st := range benchStores(b, 1<<13) {
		b.Run(name, func(b *testing.B) {
			gen := workload.NewGen(25)
			ins := make([]BatchOp, batch)
			del := make([]BatchOp, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh points per round, far outside the preload domain
				// so they never collide with it.
				for j, p := range gen.Uniform(batch, 1e6) {
					ins[j] = BatchOp{X: 2e6 + p.X, Score: 2 + p.Score}
					del[j] = BatchOp{Delete: true, X: 2e6 + p.X, Score: 2 + p.Score}
				}
				for _, errs := range [][]error{st.ApplyBatch(ins), st.ApplyBatch(del)} {
					for _, err := range errs {
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

var _ = point.P{} // keep the import for helper extensions

// BenchmarkChurnLifecycle: the full shard lifecycle — bulk load a
// full fleet, batch-delete 90% (driving merges), then query the
// shrunken survivor set — with the merge policy on vs off. Reports
// the post-churn shard count; CI runs this with -benchtime=1x as a
// smoke test so the delete/merge path cannot silently rot.
func BenchmarkChurnLifecycle(b *testing.B) {
	gen := workload.NewGen(26)
	pts := toResults(gen.Uniform(1<<12, 1e6))
	specs := gen.Queries(64, 1e6, 0.0005, 0.02, 32)
	for _, mode := range []struct {
		name     string
		minMerge int
	}{{"merge=on", 0}, {"merge=off", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			var shards float64
			for i := 0; i < b.N; i++ {
				cfg := testShardedConfig(8)
				cfg.MinMerge = mode.minMerge
				st := mustLoadSharded(b, cfg, pts)
				del := make([]BatchOp, 0, len(pts)*9/10)
				for j, p := range pts {
					if j%10 != 0 {
						del = append(del, BatchOp{Delete: true, X: p.X, Score: p.Score})
					}
				}
				for _, err := range st.ApplyBatch(del) {
					if err != nil {
						b.Fatal(err)
					}
				}
				if err := st.CheckInvariants(); err != nil {
					b.Fatal(err)
				}
				for _, q := range specs {
					st.TopK(q.X1, q.X2, q.K)
				}
				shards += float64(st.NumShards())
			}
			b.ReportMetric(shards/float64(b.N), "shards")
		})
	}
}
