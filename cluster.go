package topk

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/point"
)

// ErrNodeDown reports that a cluster member could not serve a request:
// unreachable, timed out, broken, or temporarily ejected by the health
// checker. Writes surface it through Insert/ApplyBatch; reads never
// do — they fail over to alternate replicas and degrade to partial
// answers when a whole band is dark. Match with errors.Is.
var ErrNodeDown = cluster.ErrNodeDown

// ClusterConfig configures a Cluster client — the third Store backend,
// serving from remote topkd member processes instead of in-process
// structures.
type ClusterConfig struct {
	// Members lists member base URLs (host:port or http://host:port).
	// Each member declares its score band via GET /v1/range (topkd
	// -range lo:hi); members sharing a band form a replica group, and
	// the bands must tile the score line contiguously (-Inf to +Inf).
	Members []string
	// Timeout bounds every member request (default 5s); each call
	// carries its own deadline context end-to-end.
	Timeout time.Duration
	// HealthInterval, when positive, starts a background prober
	// (GET /v1/epoch per member per interval) so an idle gateway still
	// notices failures and recoveries. Stop it with Close.
	HealthInterval time.Duration
	// EjectAfter is the consecutive-failure count at which a member is
	// temporarily ejected (default 3); EjectFor is for how long
	// (default 10s). While ejected, reads prefer alternates and writes
	// to the member's band fail fast with ErrNodeDown.
	EjectAfter int
	EjectFor   time.Duration
	// Transport overrides the pooled HTTP transport (tests).
	Transport http.RoundTripper
	// Logger receives structured health events — member ejected /
	// recovered, with node address, consecutive failures and the eject
	// deadline. Nil discards.
	Logger *slog.Logger
}

// Cluster is the distributed serving tier behind the Store interface:
// a client-side router over remote topkd members, each owning a
// contiguous score band. Updates route by score to the owning band
// (applied to every replica there); TopK/QueryBatch scatter to one
// replica per band and k-way heap-merge the answers with the same
// internal/merge code the local Sharded router uses, so a quiescent
// cluster answers byte-identically to a single Index over the union of
// the members' data.
//
// Operational semantics differ from the in-process backends — reads
// fail over between replicas and degrade to partial answers when a
// whole band is unreachable; writes are consistency-first and report
// ErrNodeDown instead of diverging replicas; the gateway assumes it is
// the single writer. See DESIGN.md ("cluster tier") for routing,
// failure semantics and what is NOT replicated.
type Cluster struct {
	c *cluster.Cluster
}

// Cluster implements Store like the in-process backends.
var _ Store = (*Cluster)(nil)

// NewCluster dials cfg.Members, discovers each member's score band,
// validates the fleet layout (contiguous tiling; replicas agree) and
// returns the router. Configuration mistakes report ErrConfig-wrapped
// errors; an unreachable member reports ErrNodeDown — a gateway must
// not guess at a layout it could not confirm.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("%w: cluster needs at least one member", ErrConfig)
	}
	c, err := cluster.New(cluster.Config{
		Members:        cfg.Members,
		Timeout:        cfg.Timeout,
		HealthInterval: cfg.HealthInterval,
		EjectAfter:     cfg.EjectAfter,
		EjectFor:       cfg.EjectFor,
		Transport:      cfg.Transport,
		Logger:         cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Len returns the gateway's view of the live point count (synced from
// the members at construction, maintained on successful writes).
func (c *Cluster) Len() int { return c.c.Len() }

// Insert adds (pos, score) under the same error contract as the local
// backends — ErrInvalidPoint, ErrDuplicatePosition, ErrDuplicateScore,
// checked in that order — plus ErrNodeDown when the owning band cannot
// take the write. A failed insert mutates nothing.
func (c *Cluster) Insert(pos, score float64) error {
	return c.c.Insert(context.Background(), point.P{X: pos, Score: score})
}

// Delete removes (pos, score), reporting whether it was present. The
// bool-only signature cannot distinguish an outage from absence: a
// delete the owning band cannot serve reports false; use ApplyBatch to
// observe ErrNodeDown explicitly.
func (c *Cluster) Delete(pos, score float64) bool {
	return c.c.Delete(context.Background(), point.P{X: pos, Score: score})
}

// ApplyBatch applies a mixed batch, routing ops by score and shipping
// each band's sub-batch as one network request per replica. Outcomes
// follow the Store contract, with ErrNodeDown for every op of a band
// whose replica group was ejected, unreachable, or disagreed.
func (c *Cluster) ApplyBatch(ops []BatchOp) []error {
	cops := make([]cluster.Op, len(ops))
	for i, op := range ops {
		cops[i] = cluster.Op{Delete: op.Delete, P: point.P{X: op.X, Score: op.Score}}
	}
	return c.c.ApplyBatch(context.Background(), cops)
}

// TopK returns the k highest-scoring points with position in [x1, x2]
// in descending score order — the same answer as a single Index on the
// same point set, scatter-gathered across the member fleet. A band
// whose every replica is down contributes nothing: reads degrade to
// partial answers rather than erroring (the Store read signature has
// no error channel); watch Ejected and ReadFailovers to detect it.
func (c *Cluster) TopK(x1, x2 float64, k int) []Result {
	return toResults(c.c.TopK(context.Background(), x1, x2, k))
}

// QueryBatch answers many queries at once: each band's replica gets
// the whole query list in one request, then per-query answers are
// heap-merged. Positionally aligned with qs, byte-identical to TopK
// per query.
func (c *Cluster) QueryBatch(qs []Query) [][]Result {
	if len(qs) == 0 {
		return nil
	}
	cqs := make([]cluster.Query, len(qs))
	for i, q := range qs {
		cqs[i] = cluster.Query{X1: q.X1, X2: q.X2, K: q.K}
	}
	lists := c.c.QueryBatch(context.Background(), cqs)
	out := make([][]Result, len(lists))
	for i, l := range lists {
		out[i] = toResults(l)
	}
	return out
}

// Count returns the number of live points with position in [x1, x2],
// summed across one replica per band.
func (c *Cluster) Count(x1, x2 float64) int {
	return c.c.Count(context.Background(), x1, x2)
}

// Stats sums the simulated-disk meters across every reachable member
// (replicas included — each performs its own I/O). cmd/topkd exports
// the same aggregate on a gateway's /v1/stats and /v1/metrics.
func (c *Cluster) Stats() Stats {
	s := c.c.Stats(context.Background())
	return Stats{Reads: s.Reads, Writes: s.Writes, BlocksLive: s.BlocksLive, BlocksPeak: s.BlocksPeak}
}

// ResetStats zeroes every reachable member's counters (best-effort).
func (c *Cluster) ResetStats() { c.c.ResetStats(context.Background()) }

// DropCache evicts every reachable member's buffer pools so the next
// operations run cold (best-effort).
func (c *Cluster) DropCache() { c.c.DropCache(context.Background()) }

// Nodes returns the number of member nodes configured (replicas
// included).
func (c *Cluster) Nodes() int { return c.c.Nodes() }

// Groups returns the number of distinct score bands.
func (c *Cluster) Groups() int { return c.c.Groups() }

// Boundaries returns the score cut positions between bands (len
// Groups-1), ascending — the cluster twin of Sharded.Boundaries, used
// by tests to craft band-straddling data.
func (c *Cluster) Boundaries() []float64 { return c.c.Boundaries() }

// Ejected returns how many members the health checker currently has
// ejected.
func (c *Cluster) Ejected() int { return c.c.Ejected() }

// ReadFailovers returns how many reads succeeded only after failing
// over to an alternate replica — the signal that a band is limping on
// reduced redundancy.
func (c *Cluster) ReadFailovers() int64 { return c.c.ReadFailovers() }

// RPCDurations returns the per-member RPC latency histograms recorded
// by this gateway's client, keyed by member address. The serving layer
// probes this to export topkd_cluster_rpc_duration_seconds.
func (c *Cluster) RPCDurations() *obs.Vec { return c.c.RPCDurations() }

// Ejections returns how many ejection episodes the health checker has
// begun (healthy→ejected transitions, not window extensions).
func (c *Cluster) Ejections() int64 { return c.c.Ejections() }

// Recoveries returns how many ejection episodes ended with the member
// answering again.
func (c *Cluster) Recoveries() int64 { return c.c.Recoveries() }

// ScrapeMetrics fetches every reachable member's raw /v1/metrics page
// in parallel, returning the pages plus the total configured member
// count. The serving layer probes this to build a gateway's
// /v1/metrics/fleet federation.
func (c *Cluster) ScrapeMetrics(ctx context.Context) ([]obs.MetricsPage, int) {
	return c.c.ScrapeMetrics(ctx)
}

// FetchTrace fetches the member at addr's finished span tree for the
// given trace ID — the fan-out leg of the gateway's stitched
// /v1/trace/{id}.
func (c *Cluster) FetchTrace(ctx context.Context, addr, id string) (obs.TraceJSON, error) {
	return c.c.FetchTrace(ctx, addr, id)
}

// WithContext returns a Store view of the cluster whose operations
// carry ctx down to every member RPC — deadline, cancellation and any
// obs trace propagate end-to-end. The Store interface itself has no
// context parameters (the in-process backends have nothing to cancel),
// so the serving layer probes for this method and binds each request's
// context before dispatching. The view shares all state with c; only
// the context differs.
func (c *Cluster) WithContext(ctx context.Context) Store {
	return boundCluster{outer: c, ctx: ctx}
}

// boundCluster is a Cluster view with a bound request context.
type boundCluster struct {
	outer *Cluster
	ctx   context.Context
}

var _ Store = boundCluster{}

func (b boundCluster) Len() int { return b.outer.Len() }
func (b boundCluster) Insert(pos, score float64) error {
	return b.outer.c.Insert(b.ctx, point.P{X: pos, Score: score})
}
func (b boundCluster) Delete(pos, score float64) bool {
	return b.outer.c.Delete(b.ctx, point.P{X: pos, Score: score})
}
func (b boundCluster) ApplyBatch(ops []BatchOp) []error {
	cops := make([]cluster.Op, len(ops))
	for i, op := range ops {
		cops[i] = cluster.Op{Delete: op.Delete, P: point.P{X: op.X, Score: op.Score}}
	}
	return b.outer.c.ApplyBatch(b.ctx, cops)
}
func (b boundCluster) TopK(x1, x2 float64, k int) []Result {
	return toResults(b.outer.c.TopK(b.ctx, x1, x2, k))
}
func (b boundCluster) QueryBatch(qs []Query) [][]Result {
	if len(qs) == 0 {
		return nil
	}
	cqs := make([]cluster.Query, len(qs))
	for i, q := range qs {
		cqs[i] = cluster.Query{X1: q.X1, X2: q.X2, K: q.K}
	}
	lists := b.outer.c.QueryBatch(b.ctx, cqs)
	out := make([][]Result, len(lists))
	for i, l := range lists {
		out[i] = toResults(l)
	}
	return out
}
func (b boundCluster) Count(x1, x2 float64) int { return b.outer.c.Count(b.ctx, x1, x2) }
func (b boundCluster) Stats() Stats {
	s := b.outer.c.Stats(b.ctx)
	return Stats{Reads: s.Reads, Writes: s.Writes, BlocksLive: s.BlocksLive, BlocksPeak: s.BlocksPeak}
}
func (b boundCluster) ResetStats() { b.outer.c.ResetStats(b.ctx) }
func (b boundCluster) DropCache()  { b.outer.c.DropCache(b.ctx) }

// Close stops the background health prober, if one was started, and
// releases pooled connections. Idempotent; the cluster keeps serving
// after Close.
func (c *Cluster) Close() error { return c.c.Close() }

// String summarizes the fleet layout.
func (c *Cluster) String() string { return c.c.String() }
