// Command quickstart is the minimal end-to-end walkthrough of the v1
// public API: build a Store, query it (single and batched), mutate
// it, handle the error contract, and inspect the I/O meter of the
// simulated external-memory disk. Everything below the constructor
// uses only the topk.Store interface, so switching the backend to the
// concurrent Sharded fleet is a one-line change.
package main

import (
	"errors"
	"fmt"
	"log"

	topk "repro"
)

func main() {
	idx, err := topk.New(topk.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var st topk.Store = idx // or: topk.NewSharded(topk.ShardedConfig{...})

	// A tiny catalogue: (position, score) pairs. Think of position as a
	// price and score as a quality rating — the paper's §1 example.
	items := []struct{ pos, score float64 }{
		{120.00, 8.7}, {145.50, 9.2}, {99.99, 8.1}, {180.25, 7.4},
		{210.00, 9.8}, {131.40, 6.9}, {175.10, 9.0}, {88.00, 7.8},
		{160.75, 8.3}, {240.00, 9.5},
	}
	for _, it := range items {
		if err := st.Insert(it.pos, it.score); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d items\n\n", st.Len())

	// Misuse is an error, not a panic: the position 120.00 is taken,
	// and so is the score 9.2 (scores are distinct by the paper's
	// standing assumption).
	if err := st.Insert(120.00, 5.0); errors.Is(err, topk.ErrDuplicatePosition) {
		fmt.Printf("re-insert at 120.00 rejected: %v\n", err)
	}
	if err := st.Insert(300.00, 9.2); errors.Is(err, topk.ErrDuplicateScore) {
		fmt.Printf("re-used score 9.2 rejected: %v\n\n", err)
	}

	// Top-3 by score among items positioned in [100, 200].
	fmt.Println("top-3 in [100, 200]:")
	for i, r := range st.TopK(100, 200, 3) {
		fmt.Printf("  %d. pos=%.2f score=%.1f\n", i+1, r.X, r.Score)
	}

	// Updates are first-class: delete the current winner and re-query.
	best := st.TopK(100, 200, 1)[0]
	st.Delete(best.X, best.Score)
	fmt.Printf("\ndeleted (%.2f, %.1f); new top-3:\n", best.X, best.Score)
	for i, r := range st.TopK(100, 200, 3) {
		fmt.Printf("  %d. pos=%.2f score=%.1f\n", i+1, r.X, r.Score)
	}

	// Batched reads: several price bands answered in one call (on the
	// sharded backend this runs under a single topology lock).
	fmt.Println("\nbest item per band, one QueryBatch:")
	bands := []topk.Query{{X1: 80, X2: 140, K: 1}, {X1: 140, X2: 200, K: 1}, {X1: 200, X2: 260, K: 1}}
	for i, res := range st.QueryBatch(bands) {
		fmt.Printf("  [%3.0f, %3.0f]: pos=%.2f score=%.1f\n",
			bands[i].X1, bands[i].X2, res[0].X, res[0].Score)
	}

	// The disk meter shows block transfers — the unit all of the
	// paper's bounds are stated in.
	s := st.Stats()
	fmt.Printf("\nI/O meter: %d reads, %d writes, %d blocks live\n",
		s.Reads, s.Writes, s.BlocksLive)
}
