// Command quickstart is the minimal end-to-end walkthrough of the topk
// public API: build an index, query it, mutate it, and inspect the I/O
// meter of the simulated external-memory disk.
package main

import (
	"fmt"

	topk "repro"
)

func main() {
	idx := topk.New(topk.Config{})

	// A tiny catalogue: (position, score) pairs. Think of position as a
	// price and score as a quality rating — the paper's §1 example.
	items := []struct{ pos, score float64 }{
		{120.00, 8.7}, {145.50, 9.2}, {99.99, 8.1}, {180.25, 7.4},
		{210.00, 9.8}, {131.40, 6.9}, {175.10, 9.0}, {88.00, 7.8},
		{160.75, 8.3}, {240.00, 9.5},
	}
	for _, it := range items {
		idx.Insert(it.pos, it.score)
	}
	fmt.Printf("indexed %d items (block size %d words)\n\n", idx.Len(), idx.BlockSize())

	// Top-3 by score among items positioned in [100, 200].
	fmt.Println("top-3 in [100, 200]:")
	for i, r := range idx.TopK(100, 200, 3) {
		fmt.Printf("  %d. pos=%.2f score=%.1f\n", i+1, r.X, r.Score)
	}

	// Updates are first-class: delete the current winner and re-query.
	best := idx.TopK(100, 200, 1)[0]
	idx.Delete(best.X, best.Score)
	fmt.Printf("\ndeleted (%.2f, %.1f); new top-3:\n", best.X, best.Score)
	for i, r := range idx.TopK(100, 200, 3) {
		fmt.Printf("  %d. pos=%.2f score=%.1f\n", i+1, r.X, r.Score)
	}

	// The disk meter shows block transfers — the unit all of the
	// paper's bounds are stated in.
	s := idx.Stats()
	fmt.Printf("\nI/O meter: %d reads, %d writes, %d blocks live\n",
		s.Reads, s.Writes, s.BlocksLive)
}
