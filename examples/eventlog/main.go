// Command eventlog maintains a sliding-window top-k view over a stream
// of scored log events: the index holds the last W events by timestamp,
// and an operator dashboard repeatedly asks for "the k most severe
// events in the last minute/hour". This exercises the dynamic side of
// the structure — every arriving event is an insertion and every
// expired event a deletion, the workload Theorem 1's O(log_B n) update
// bound is about. Ingest runs in batches through topk.Store.ApplyBatch
// and the dashboard reads both horizons with one QueryBatch, the way a
// real collector amortizes per-call overheads.
package main

import (
	"fmt"
	"log"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	const (
		stream = 60000 // events in the replayed stream
		window = 20000 // sliding-window size
		chunk  = 500   // ingest batch size
	)
	gen := workload.NewGen(7)
	events, _ := gen.Events(stream)

	idx, err := topk.New(topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	if err != nil {
		log.Fatal(err)
	}
	var st topk.Store = idx

	fmt.Printf("replaying %d events through a %d-event sliding window, %d-event batches\n\n",
		stream, window, chunk)
	var updates int64
	st.ResetStats()
	for start := 0; start < len(events); start += chunk {
		end := start + chunk
		if end > len(events) {
			end = len(events)
		}
		// One batch ingests the chunk's arrivals and retires the events
		// that slid out of the window.
		var ops []topk.BatchOp
		for i := start; i < end; i++ {
			ops = append(ops, topk.BatchOp{X: events[i].Timestamp, Score: events[i].Severity})
			if i >= window {
				old := events[i-window]
				ops = append(ops, topk.BatchOp{Delete: true, X: old.Timestamp, Score: old.Severity})
			}
		}
		for i, err := range st.ApplyBatch(ops) {
			if err != nil {
				log.Fatalf("batch op %d: %v", i, err)
			}
		}
		updates += int64(len(ops))

		// Dashboard refresh every 10k events: top severities over two
		// trailing horizons, fetched with a single batched read.
		if end%10000 == 0 && end > window {
			now := events[end-1].Timestamp
			horizons := []topk.Query{
				{X1: now - 60, X2: now, K: 5},
				{X1: now - 600, X2: now, K: 5},
			}
			for hi, top := range st.QueryBatch(horizons) {
				h := horizons[hi]
				fmt.Printf("t=%9.1f  last %4.0fs: %d events, worst severities:",
					now, h.X2-h.X1, st.Count(h.X1, h.X2))
				for _, r := range top {
					fmt.Printf(" %.2f", r.Score)
				}
				fmt.Println()
			}
		}
	}
	s := st.Stats()
	fmt.Printf("\nstream done: %d live events, %d updates, %.1f I/Os amortized per update\n",
		st.Len(), updates, float64(s.Reads+s.Writes)/float64(updates))
}
