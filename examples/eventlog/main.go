// Command eventlog maintains a sliding-window top-k view over a stream
// of scored log events: the index holds the last W events by timestamp,
// and an operator dashboard repeatedly asks for "the k most severe
// events in the last minute/hour". This exercises the dynamic side of
// the structure — every arriving event is an insertion and every
// expired event a deletion, the workload Theorem 1's O(log_B n) update
// bound is about.
package main

import (
	"fmt"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	const (
		stream = 60000 // events in the replayed stream
		window = 20000 // sliding-window size
	)
	gen := workload.NewGen(7)
	events, _ := gen.Events(stream)

	idx := topk.New(topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})

	fmt.Printf("replaying %d events through a %d-event sliding window\n\n", stream, window)
	var updates int64
	idx.ResetStats()
	for i, ev := range events {
		idx.Insert(ev.Timestamp, ev.Severity)
		updates++
		if i >= window {
			old := events[i-window]
			idx.Delete(old.Timestamp, old.Severity)
			updates++
		}
		// Dashboard refresh every 10k events: top severities over two
		// trailing horizons.
		if i > window && i%10000 == 0 {
			now := ev.Timestamp
			for _, horizon := range []float64{60, 600} {
				top := idx.TopK(now-horizon, now, 5)
				fmt.Printf("t=%9.1f  last %4.0fs: %d events, worst severities:",
					now, horizon, idx.Count(now-horizon, now))
				for _, r := range top {
					fmt.Printf(" %.2f", r.Score)
				}
				fmt.Println()
			}
		}
	}
	s := idx.Stats()
	fmt.Printf("\nstream done: %d live events, %d updates, %.1f I/Os amortized per update\n",
		idx.Len(), updates, float64(s.Reads+s.Writes)/float64(updates))
}
