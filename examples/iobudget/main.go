// Command iobudget demonstrates the I/O accounting and regime machinery
// that make this a reproduction of an external-memory paper rather than
// a plain in-memory index: it shows how query cost decomposes into the
// O(log_B n) search term and the O(k/B) output term, where the
// composed structure switches between its §3.3 and §2 components
// (k ≷ B·lg n), and how the block size B changes everything. Queries
// and the meter run through the topk.Store interface; the concrete
// *Index handle is kept only for the regime introspection (KThreshold,
// Regime, BlockSize) that single-machine diagnostics are about.
package main

import (
	"fmt"
	"log"
	"math"

	topk "repro"
	"repro/internal/workload"
)

func buildIdx(b, n int) *topk.Index {
	gen := workload.NewGen(42)
	idx, err := topk.New(topk.Config{BlockWords: b, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range gen.Uniform(n, 1e6) {
		if err := idx.Insert(p.X, p.Score); err != nil {
			log.Fatal(err)
		}
	}
	return idx
}

func coldQueryReads(st topk.Store, x1, x2 float64, k, reps int) float64 {
	st.ResetStats()
	total := int64(0)
	for i := 0; i < reps; i++ {
		st.DropCache()
		before := st.Stats().Reads
		st.TopK(x1, x2, k)
		total += st.Stats().Reads - before
	}
	return float64(total) / float64(reps)
}

func main() {
	const n = 40000
	idx := buildIdx(64, n)
	fmt.Printf("index: n=%d, B=%d, k-threshold B·lg n = %d, small-k regime %s\n\n",
		n, idx.BlockSize(), idx.KThreshold(), idx.Regime())

	fmt.Println("query cost vs k (cold cache, range = middle 50% of the domain):")
	fmt.Printf("%8s %12s %14s %s\n", "k", "read I/Os", "k/B term", "component")
	for _, k := range []int{1, 8, 64, 512, idx.KThreshold(), 4 * idx.KThreshold()} {
		comp := "§3.3 selection + reduction"
		if k >= idx.KThreshold() {
			comp = "§2 priority search tree"
		}
		reads := coldQueryReads(idx, 25e4, 75e4, k, 5)
		fmt.Printf("%8d %12.1f %14.1f %s\n", k, reads, float64(k)/float64(idx.BlockSize()), comp)
	}

	fmt.Println("\nupdate cost vs n (amortized over one 2000-op ApplyBatch, predicted shape log_B n):")
	fmt.Printf("%10s %14s %12s\n", "n", "I/Os/insert", "log_B n")
	gen := workload.NewGen(1)
	for _, sz := range []int{4000, 16000, 64000} {
		idx := buildIdxFrom(gen, sz)
		var st topk.Store = idx
		extra := gen.Uniform(2000, 1e6)
		ops := make([]topk.BatchOp, len(extra))
		for i, p := range extra {
			ops[i] = topk.BatchOp{X: p.X, Score: p.Score}
		}
		st.ResetStats()
		for i, err := range st.ApplyBatch(ops) {
			if err != nil {
				log.Fatalf("batch insert %d: %v", i, err)
			}
		}
		s := st.Stats()
		fmt.Printf("%10d %14.1f %12.2f\n", sz,
			float64(s.Reads+s.Writes)/2000, math.Log(float64(sz))/math.Log(64))
	}

	fmt.Println("\nsame index contents, varying block size B (k=64, cold):")
	fmt.Printf("%6s %12s %12s\n", "B", "read I/Os", "blocks live")
	for _, b := range []int{16, 64, 256} {
		idx := buildIdx(b, 20000)
		reads := coldQueryReads(idx, 25e4, 75e4, 64, 5)
		fmt.Printf("%6d %12.1f %12d\n", b, reads, idx.Stats().BlocksLive)
	}
}

// buildIdxFrom builds an index of sz points drawn from gen (shared
// across sizes so the stream stays duplicate-free).
func buildIdxFrom(gen *workload.Gen, sz int) *topk.Index {
	idx, err := topk.New(topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range gen.Uniform(sz, 1e6) {
		if err := idx.Insert(p.X, p.Score); err != nil {
			log.Fatal(err)
		}
	}
	return idx
}
