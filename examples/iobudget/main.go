// Command iobudget demonstrates the I/O accounting and regime machinery
// that make this a reproduction of an external-memory paper rather than
// a plain in-memory index: it shows how query cost decomposes into the
// O(log_B n) search term and the O(k/B) output term, where the
// composed structure switches between its §3.3 and §2 components
// (k ≷ B·lg n), and how the block size B changes everything.
package main

import (
	"fmt"
	"math"

	topk "repro"
	"repro/internal/workload"
)

func buildIdx(b, n int) *topk.Index {
	gen := workload.NewGen(42)
	idx := topk.New(topk.Config{BlockWords: b, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	for _, p := range gen.Uniform(n, 1e6) {
		idx.Insert(p.X, p.Score)
	}
	return idx
}

func coldQueryReads(idx *topk.Index, x1, x2 float64, k, reps int) float64 {
	idx.ResetStats()
	total := int64(0)
	for i := 0; i < reps; i++ {
		idx.DropCache()
		before := idx.Stats().Reads
		idx.TopK(x1, x2, k)
		total += idx.Stats().Reads - before
	}
	return float64(total) / float64(reps)
}

func main() {
	const n = 40000
	idx := buildIdx(64, n)
	fmt.Printf("index: n=%d, B=%d, k-threshold B·lg n = %d, small-k regime %s\n\n",
		n, idx.BlockSize(), idx.KThreshold(), idx.Regime())

	fmt.Println("query cost vs k (cold cache, range = middle 50% of the domain):")
	fmt.Printf("%8s %12s %14s %s\n", "k", "read I/Os", "k/B term", "component")
	for _, k := range []int{1, 8, 64, 512, idx.KThreshold(), 4 * idx.KThreshold()} {
		comp := "§3.3 selection + reduction"
		if k >= idx.KThreshold() {
			comp = "§2 priority search tree"
		}
		reads := coldQueryReads(idx, 25e4, 75e4, k, 5)
		fmt.Printf("%8d %12.1f %14.1f %s\n", k, reads, float64(k)/float64(idx.BlockSize()), comp)
	}

	fmt.Println("\nupdate cost vs n (amortized over 2000 inserts, predicted shape log_B n):")
	fmt.Printf("%10s %14s %12s\n", "n", "I/Os/insert", "log_B n")
	gen := workload.NewGen(1)
	for _, sz := range []int{4000, 16000, 64000} {
		idx := topk.New(topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
		pts := gen.Uniform(sz+2000, 1e6)
		for _, p := range pts[:sz] {
			idx.Insert(p.X, p.Score)
		}
		idx.ResetStats()
		for _, p := range pts[sz:] {
			idx.Insert(p.X, p.Score)
		}
		s := idx.Stats()
		fmt.Printf("%10d %14.1f %12.2f\n", sz,
			float64(s.Reads+s.Writes)/2000, math.Log(float64(sz))/math.Log(64))
	}

	fmt.Println("\nsame index contents, varying block size B (k=64, cold):")
	fmt.Printf("%6s %12s %12s\n", "B", "read I/Os", "blocks live")
	for _, b := range []int{16, 64, 256} {
		idx := buildIdx(b, 20000)
		reads := coldQueryReads(idx, 25e4, 75e4, 64, 5)
		fmt.Printf("%6d %12.1f %12d\n", b, reads, idx.Stats().BlocksLive)
	}
}
