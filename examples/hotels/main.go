// Command hotels realizes the paper's §1 motivating scenario: "find the
// 10 best-rated hotels whose prices are between 100 and 200 dollars per
// night". It loads a synthetic hotel catalogue (log-normal prices,
// ratings lightly correlated with price), serves a mix of interactive
// queries, applies live updates (price changes re-index the hotel), and
// reports the I/O cost per operation. The serving code is written
// against topk.Store, so the same program runs on the concurrent
// sharded backend with the -sharded flag.
package main

import (
	"flag"
	"fmt"
	"log"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	sharded := flag.Bool("sharded", false, "serve from the concurrent sharded backend")
	flag.Parse()

	const nHotels = 50000
	gen := workload.NewGen(2024)
	hotels, _ := gen.Hotels(nHotels)

	cfg := topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
	pts := make([]topk.Result, len(hotels))
	for i, h := range hotels {
		pts[i] = topk.Result{X: h.Price, Score: h.Rating}
	}
	var st topk.Store
	var err error
	if *sharded {
		st, err = topk.LoadSharded(topk.ShardedConfig{Config: cfg, Shards: 8}, pts)
	} else {
		st, err = topk.Load(cfg, pts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d hotels indexed (sharded=%v)\n\n", st.Len(), *sharded)

	// The §1 query.
	st.ResetStats()
	st.DropCache()
	fmt.Println("ten best-rated hotels with price in [$100, $200]:")
	for i, r := range st.TopK(100, 200, 10) {
		fmt.Printf("  %2d. $%7.2f  rating %.2f\n", i+1, r.X, r.Score)
	}
	s := st.Stats()
	fmt.Printf("  → answered in %d read I/Os (n=%d)\n\n", s.Reads, st.Len())

	// Price bands of varying selectivity, answered as one QueryBatch.
	bands := []topk.Query{
		{X1: 50, X2: 90, K: 5}, {X1: 90, X2: 140, K: 5},
		{X1: 140, X2: 220, K: 5}, {X1: 220, X2: 500, K: 5},
	}
	st.ResetStats()
	st.DropCache()
	for i, top := range st.QueryBatch(bands) {
		b := bands[i]
		fmt.Printf("band [$%.0f,$%.0f]: %5d hotels, best rating %.2f\n",
			b.X1, b.X2, st.Count(b.X1, b.X2), top[0].Score)
	}
	fmt.Printf("  → all four bands in %d reads via one QueryBatch\n", st.Stats().Reads)

	// Live repricing: hotels move between bands without rebuilds. The
	// deletes go in their own batch before the inserts — a re-used
	// rating score must be released before it is re-inserted (on the
	// sharded backend the two may land on different shards, and ops in
	// one batch are unordered across shards).
	fmt.Println("\nrepricing 1000 hotels (batched delete + insert):")
	st.ResetStats()
	dels := make([]topk.BatchOp, 1000)
	ins := make([]topk.BatchOp, 1000)
	for i := 0; i < 1000; i++ {
		h := hotels[i]
		dels[i] = topk.BatchOp{Delete: true, X: h.Price, Score: h.Rating}
		ins[i] = topk.BatchOp{X: h.Price * 1.07, Score: h.Rating}
		hotels[i].Price = h.Price * 1.07
	}
	for i, err := range st.ApplyBatch(dels) {
		if err != nil {
			log.Fatalf("repricing delete %d: %v", i, err)
		}
	}
	for i, err := range st.ApplyBatch(ins) {
		// A repriced value can collide with another hotel's price;
		// nudge until the position is free, as a real re-indexer would.
		for err != nil {
			ins[i].X += 0.0001
			hotels[i].Price = ins[i].X
			err = st.Insert(ins[i].X, ins[i].Score)
		}
	}
	s = st.Stats()
	fmt.Printf("  → %d I/Os total, %.1f amortized per update\n",
		s.Reads+s.Writes, float64(s.Reads+s.Writes)/2000)

	fmt.Println("\nten best-rated in [$100,$200] after repricing:")
	for i, r := range st.TopK(100, 200, 10) {
		fmt.Printf("  %2d. $%7.2f  rating %.2f\n", i+1, r.X, r.Score)
	}
}
