// Command hotels realizes the paper's §1 motivating scenario: "find the
// 10 best-rated hotels whose prices are between 100 and 200 dollars per
// night". It loads a synthetic hotel catalogue (log-normal prices,
// ratings lightly correlated with price), serves a mix of interactive
// queries, applies live updates (price changes re-index the hotel), and
// reports the I/O cost per operation.
package main

import (
	"fmt"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	const nHotels = 50000
	gen := workload.NewGen(2024)
	hotels, _ := gen.Hotels(nHotels)

	idx := topk.New(topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	for _, h := range hotels {
		idx.Insert(h.Price, h.Rating)
	}
	fmt.Printf("catalogue: %d hotels indexed; %s; k-threshold %d\n\n",
		idx.Len(), idx.Regime(), idx.KThreshold())

	// The §1 query.
	idx.ResetStats()
	idx.DropCache()
	fmt.Println("ten best-rated hotels with price in [$100, $200]:")
	for i, r := range idx.TopK(100, 200, 10) {
		fmt.Printf("  %2d. $%7.2f  rating %.2f\n", i+1, r.X, r.Score)
	}
	s := idx.Stats()
	fmt.Printf("  → answered in %d read I/Os (n=%d, B=%d)\n\n", s.Reads, idx.Len(), idx.BlockSize())

	// Price bands of varying selectivity.
	for _, band := range [][2]float64{{50, 90}, {90, 140}, {140, 220}, {220, 500}} {
		idx.ResetStats()
		idx.DropCache()
		top := idx.TopK(band[0], band[1], 5)
		s := idx.Stats()
		fmt.Printf("band [$%.0f,$%.0f]: %5d hotels, best rating %.2f, top-5 in %d reads\n",
			band[0], band[1], idx.Count(band[0], band[1]), top[0].Score, s.Reads)
	}

	// Live repricing: hotels move between bands without rebuilds.
	fmt.Println("\nrepricing 1000 hotels (delete + insert each):")
	idx.ResetStats()
	for i := 0; i < 1000; i++ {
		h := hotels[i]
		idx.Delete(h.Price, h.Rating)
		newPrice := h.Price * 1.07
		for !tryInsert(idx, newPrice, h.Rating) {
			newPrice += 0.0001
		}
		hotels[i].Price = newPrice
	}
	s = idx.Stats()
	fmt.Printf("  → %d I/Os total, %.1f amortized per update\n",
		s.Reads+s.Writes, float64(s.Reads+s.Writes)/2000)

	fmt.Println("\nten best-rated in [$100,$200] after repricing:")
	for i, r := range idx.TopK(100, 200, 10) {
		fmt.Printf("  %2d. $%7.2f  rating %.2f\n", i+1, r.X, r.Score)
	}
}

// tryInsert inserts unless the price collides with an existing point
// (positions must be distinct).
func tryInsert(idx *topk.Index, pos, score float64) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	idx.Insert(pos, score)
	return true
}
