package topk

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// batchedOp is one recorded churn op with the outcome the batched
// store reported, for sequential replay against the direct oracle.
type batchedOp struct {
	del      bool
	x, score float64
	err      error // insert outcome
	present  bool  // delete outcome
}

// errCategory buckets an error by sentinel so outcomes compare by
// errors.Is, never by string.
func errCategory(err error) string {
	switch {
	case err == nil:
		return "nil"
	case errors.Is(err, ErrInvalidPoint):
		return "invalid_point"
	case errors.Is(err, ErrDuplicatePosition):
		return "duplicate_position"
	case errors.Is(err, ErrDuplicateScore):
		return "duplicate_score"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	default:
		return "other"
	}
}

// dumpAll snapshots the full live point set in descending score order.
func dumpAll(st Store) []Result {
	return st.TopK(math.Inf(-1), math.Inf(1), st.Len())
}

// TestBatchedDifferential is the acceptance test for the group-commit
// write path: a Batched-wrapped Sharded must end byte-identical to a
// direct Sharded after randomized concurrent churn, with every per-op
// outcome (success, sentinel error, delete presence) identical to what
// the sequential oracle reports. Workers own disjoint position and
// score bands, so each worker's op stream is deterministic regardless
// of how the batcher interleaves workers into groups. Run with -race.
func TestBatchedDifferential(t *testing.T) {
	const workers, opsPer, band = 8, 150, 1e4

	direct := mustNewSharded(t, testShardedConfig(4))
	inner := mustNewSharded(t, testShardedConfig(4))
	bt, err := NewBatched(inner, BatchedConfig{Window: 200 * time.Microsecond, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()

	// Concurrent churn through the batched store, recording outcomes.
	recs := make([][]batchedOp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lo := float64(w) * band
			var live []batchedOp // this worker's successfully inserted points
			for i := 0; i < opsPer; i++ {
				var op batchedOp
				if len(live) > 0 && rng.Float64() < 0.35 {
					// Delete: half the time a live point, half a missing one.
					if rng.Float64() < 0.5 {
						j := rng.Intn(len(live))
						op = batchedOp{del: true, x: live[j].x, score: live[j].score}
						live = append(live[:j], live[j+1:]...)
					} else {
						op = batchedOp{del: true, x: lo + rng.Float64()*band, score: lo + rng.Float64()*band}
					}
					op.present = bt.Delete(op.x, op.score)
				} else {
					op = batchedOp{x: lo + rng.Float64()*band, score: lo + rng.Float64()*band}
					if rng.Float64() < 0.1 && len(live) > 0 {
						// Provoke a duplicate (position or score) on purpose.
						j := rng.Intn(len(live))
						if rng.Float64() < 0.5 {
							op.x = live[j].x
						} else {
							op.score = live[j].score
						}
					}
					if rng.Float64() < 0.05 {
						op.x = math.NaN() // provoke ErrInvalidPoint
					}
					op.err = bt.Insert(op.x, op.score)
					if op.err == nil {
						live = append(live, op)
					}
				}
				recs[w] = append(recs[w], op)
			}
		}(w)
	}
	wg.Wait()

	// Sequential replay per worker against the oracle: outcomes must
	// match category-for-category (bands are disjoint, so per-worker
	// order fully determines each outcome).
	for w, ops := range recs {
		for i, op := range ops {
			if op.del {
				if got := direct.Delete(op.x, op.score); got != op.present {
					t.Fatalf("worker %d op %d: Delete(%v,%v) batched=%v direct=%v",
						w, i, op.x, op.score, op.present, got)
				}
			} else {
				got := direct.Insert(op.x, op.score)
				if gc, wc := errCategory(got), errCategory(op.err); gc != wc {
					t.Fatalf("worker %d op %d: Insert(%v,%v) batched=%q direct=%q",
						w, i, op.x, op.score, wc, gc)
				}
			}
		}
	}

	// Final states byte-identical.
	if got, want := dumpAll(bt), dumpAll(direct); !reflect.DeepEqual(got, want) {
		t.Fatalf("final dump diverged: batched %d pts, direct %d pts", len(got), len(want))
	}
	if s := bt.BatcherStats(); s.Pending != 0 || s.Ops == 0 {
		t.Fatalf("batcher stats = %+v, want drained and non-trivial", s)
	}
}

// TestBatchedAsyncDifferential drives the async path (SubmitInsert,
// unique points only so op order across workers is immaterial), then
// proves Flush makes everything visible and the state matches a direct
// ApplyBatch of the same set.
func TestBatchedAsyncDifferential(t *testing.T) {
	const workers, opsPer = 8, 100

	direct := mustNewSharded(t, testShardedConfig(4))
	inner := mustNewSharded(t, testShardedConfig(4))
	bt, err := NewBatched(inner, BatchedConfig{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()

	var wg sync.WaitGroup
	futs := make([][]Future, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				x := float64(w*opsPer+i) + 0.5
				futs[w] = append(futs[w], bt.SubmitInsert(x, x*2))
			}
		}(w)
	}
	wg.Wait()
	bt.Flush()
	for w := range futs {
		for i, f := range futs[w] {
			if !f.Ready() {
				t.Fatalf("worker %d op %d unresolved after Flush", w, i)
			}
			if err := f.Err(); err != nil {
				t.Fatalf("worker %d op %d: %v", w, i, err)
			}
		}
	}

	var ops []BatchOp
	for w := 0; w < workers; w++ {
		for i := 0; i < opsPer; i++ {
			x := float64(w*opsPer+i) + 0.5
			ops = append(ops, BatchOp{X: x, Score: x * 2})
		}
	}
	for i, err := range direct.ApplyBatch(ops) {
		if err != nil {
			t.Fatalf("direct op %d: %v", i, err)
		}
	}
	if got, want := dumpAll(bt), dumpAll(direct); !reflect.DeepEqual(got, want) {
		t.Fatalf("async dump diverged: batched %d pts, direct %d pts", len(got), len(want))
	}
}

// TestBatchedErrorFidelity pins the satellite requirement: every
// sentinel a direct Insert/Delete produces round-trips identically
// through the sync batched path and through async futures, matched
// with errors.Is — never strings.
func TestBatchedErrorFidelity(t *testing.T) {
	inner := mustNewSharded(t, testShardedConfig(2))
	bt, err := NewBatched(inner, BatchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()

	if err := bt.Insert(10, 100); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		x, score float64
		want     error
	}{
		{"ok", 11, 101, nil},
		{"duplicate position", 10, 999, ErrDuplicatePosition},
		{"duplicate score", 999, 100, ErrDuplicateScore},
		{"nan position", math.NaN(), 102, ErrInvalidPoint},
		{"inf score", 12, math.Inf(1), ErrInvalidPoint},
	}
	for _, tc := range cases {
		got := bt.Insert(tc.x, tc.score)
		if tc.want == nil {
			if got != nil {
				t.Errorf("sync %s: got %v, want nil", tc.name, got)
			}
		} else if !errors.Is(got, tc.want) {
			t.Errorf("sync %s: got %v, want %v", tc.name, got, tc.want)
		}
	}

	// Async futures carry the same sentinels. The dup insert and the
	// delete of the same position go in separate groups — within one
	// group ApplyBatch order is the batcher's to choose.
	fDup := bt.SubmitInsert(10, 555)
	fBad := bt.SubmitInsert(math.Inf(-1), 556)
	for _, f := range []Future{fDup, fBad} {
		_ = f.Wait()
	}
	fOkDel := bt.SubmitDelete(10, 100)
	fNoDel := bt.SubmitDelete(777, 777)
	for _, f := range []Future{fOkDel, fNoDel} {
		_ = f.Wait()
	}
	if !errors.Is(fDup.Err(), ErrDuplicatePosition) {
		t.Errorf("async dup position: got %v", fDup.Err())
	}
	if !errors.Is(fBad.Err(), ErrInvalidPoint) {
		t.Errorf("async invalid point: got %v", fBad.Err())
	}
	if fOkDel.Err() != nil {
		t.Errorf("async delete live: got %v, want nil", fOkDel.Err())
	}
	if !errors.Is(fNoDel.Err(), ErrNotFound) {
		t.Errorf("async delete absent: got %v, want ErrNotFound", fNoDel.Err())
	}

	// Sync Delete mirrors the direct bool contract.
	if bt.Delete(999, 12345) {
		t.Error("Delete of absent point reported present")
	}
	if err := bt.Insert(50, 51); err != nil {
		t.Fatal(err)
	}
	if !bt.Delete(50, 51) {
		t.Error("Delete of live point reported absent")
	}
}

// TestBatchedConfigValidation pins the ErrConfig surface.
func TestBatchedConfigValidation(t *testing.T) {
	if _, err := NewBatched(nil, BatchedConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil store: got %v, want ErrConfig", err)
	}
	if _, err := NewBatched(mustNewSharded(t, testShardedConfig(1)), BatchedConfig{MaxBatch: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative MaxBatch: got %v, want ErrConfig", err)
	}
}

// TestBatchedUnwrapAndViews covers the probe surface: Unwrap exposes
// the inner store, WithContext passthrough works on stores without
// binding, and reads flow through.
func TestBatchedUnwrapAndViews(t *testing.T) {
	inner := mustNewSharded(t, testShardedConfig(2))
	bt, err := NewBatched(inner, BatchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	if bt.Unwrap() != Store(inner) {
		t.Fatal("Unwrap did not return the inner store")
	}
	for i := 0; i < 20; i++ {
		if err := bt.Insert(float64(i), float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := bt.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	if got := bt.Count(5, 10); got != inner.Count(5, 10) {
		t.Fatalf("Count mismatch: %d vs %d", got, inner.Count(5, 10))
	}
	if got := bt.TopK(0, 100, 3); !reflect.DeepEqual(got, inner.TopK(0, 100, 3)) {
		t.Fatal("TopK mismatch through wrapper")
	}
	qs := []Query{{X1: 0, X2: 100, K: 5}}
	if got := bt.QueryBatch(qs); !reflect.DeepEqual(got, inner.QueryBatch(qs)) {
		t.Fatal("QueryBatch mismatch through wrapper")
	}
}
