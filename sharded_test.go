package topk

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

func testShardedConfig(shards int) ShardedConfig {
	return ShardedConfig{
		Config:   Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards:   shards,
		MinSplit: 256,
	}
}

// TestShardedMatchesIndex is the acceptance test: on identical point
// sets, Sharded must return byte-identical results to a single Index
// for randomized queries, including boundary-straddling ones, under
// interleaved updates.
func TestShardedMatchesIndex(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		gen := workload.NewGen(int64(40 + shards))
		pts := toResults(gen.Uniform(3000, 1e6))
		single := mustLoad(t, Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}, pts)
		sharded := mustLoadSharded(t, testShardedConfig(shards), pts)

		check := func(x1, x2 float64, k int) {
			t.Helper()
			got := sharded.TopK(x1, x2, k)
			want := single.TopK(x1, x2, k)
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d TopK(%v,%v,%d):\n got %v\nwant %v", shards, x1, x2, k, got, want)
			}
			if gc, wc := sharded.Count(x1, x2), single.Count(x1, x2); gc != wc {
				t.Fatalf("shards=%d Count(%v,%v): got %d want %d", shards, x1, x2, gc, wc)
			}
		}

		for _, q := range gen.Queries(80, 1e6, 0.001, 0.9, 250) {
			check(q.X1, q.X2, q.K)
		}
		check(math.Inf(-1), math.Inf(1), 3000)

		// Interleave updates through both and re-check.
		for _, u := range gen.Mix(800, 600, 0.4, 1e6) {
			if u.Delete != nil {
				sok := single.Delete(u.Delete.X, u.Delete.Score)
				dok := sharded.Delete(u.Delete.X, u.Delete.Score)
				if sok != dok {
					t.Fatalf("Delete divergence: single=%v sharded=%v", sok, dok)
				}
			} else {
				mustInsert(t, single, u.Insert.X, u.Insert.Score)
				mustInsert(t, sharded, u.Insert.X, u.Insert.Score)
			}
		}
		if single.Len() != sharded.Len() {
			t.Fatalf("Len divergence: %d vs %d", single.Len(), sharded.Len())
		}
		for _, q := range gen.Queries(60, 1e6, 0.001, 0.8, 200) {
			check(q.X1, q.X2, q.K)
		}
	}
}

func TestShardedApplyBatchAndConcurrentReads(t *testing.T) {
	idx := mustNewSharded(t, testShardedConfig(8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGen(int64(w + 1))
			// Disjoint position and score bands per writer.
			for round := 0; round < 4; round++ {
				ops := make([]BatchOp, 0, 50)
				for _, p := range gen.Uniform(50, 1000) {
					ops = append(ops, BatchOp{X: float64(w)*1000 + p.X, Score: float64(w) + p.Score/2})
				}
				for i, err := range idx.ApplyBatch(ops) {
					if err != nil {
						t.Errorf("batch insert %d: %v", i, err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 50)))
			for i := 0; i < 30; i++ {
				x1 := rng.Float64() * 3500
				res := idx.TopK(x1, x1+500, 10)
				for j := 1; j < len(res); j++ {
					if res[j].Score > res[j-1].Score {
						t.Error("descending order violated under concurrency")
						return
					}
				}
				idx.Count(x1, x1+500)
			}
		}(g)
	}
	wg.Wait()
	if got, want := idx.Len(), 4*4*50; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestLoadShardedDefaults: a zero ShardedConfig must honor the
// documented defaults — LoadSharded pre-partitions into 8 quantile
// shards, not a single serialized one.
func TestLoadShardedDefaults(t *testing.T) {
	gen := workload.NewGen(31)
	pts := toResults(gen.Uniform(4000, 1e6))
	idx := mustLoadSharded(t, ShardedConfig{
		Config: Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
	}, pts)
	if got := idx.NumShards(); got != 8 {
		t.Fatalf("NumShards with zero config = %d, want the default 8", got)
	}
	if idx.Len() != len(pts) {
		t.Fatalf("Len = %d", idx.Len())
	}
	if got := len(idx.Boundaries()); got != 7 {
		t.Fatalf("Boundaries len = %d, want 7", got)
	}
}

// TestMergeAfterHeavyDeletes is the public acceptance test for the
// shard lifecycle: bulk-load a full 8-shard fleet, delete 90% of the
// points through the Store interface, and the fleet must coalesce —
// fewer shards than the split era, invariants intact, answers still
// byte-identical to a sequential Index over the survivors.
func TestMergeAfterHeavyDeletes(t *testing.T) {
	gen := workload.NewGen(71)
	pts := toResults(gen.Uniform(4000, 1e6))
	sharded := mustLoadSharded(t, testShardedConfig(8), pts)
	if sharded.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", sharded.NumShards())
	}
	for _, p := range pts[:3600] {
		if !sharded.Delete(p.X, p.Score) {
			t.Fatalf("Delete(%v) not found", p)
		}
	}
	if got := sharded.NumShards(); got >= 8 {
		t.Fatalf("NumShards after 90%% deletes = %d, want < 8: %s", got, sharded)
	}
	if sharded.Merges() == 0 {
		t.Fatal("Merges() = 0 after heavy deletes")
	}
	if err := sharded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	single := mustLoad(t, testShardedConfig(8).Config, pts[3600:])
	for _, q := range gen.Queries(60, 1e6, 0.001, 0.9, 150) {
		got, want := sharded.TopK(q.X1, q.X2, q.K), single.TopK(q.X1, q.X2, q.K)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%v,%v,%d):\n got %v\nwant %v", q.X1, q.X2, q.K, got, want)
		}
	}
	if got, want := sharded.Len(), 400; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestShardedStatsAndRebalance(t *testing.T) {
	gen := workload.NewGen(9)
	pts := toResults(gen.Clustered(2000, 3, 1e6))
	idx := mustLoadSharded(t, testShardedConfig(4), pts)
	if idx.NumShards() != 4 {
		t.Fatalf("NumShards = %d", idx.NumShards())
	}
	if s := idx.Stats(); s.Writes == 0 || s.BlocksLive == 0 {
		t.Fatalf("implausible stats after load: %+v", s)
	}
	before := idx.TopK(math.Inf(-1), math.Inf(1), len(pts))
	idx.Rebalance(2)
	if idx.NumShards() != 2 {
		t.Fatalf("NumShards after Rebalance(2) = %d", idx.NumShards())
	}
	after := idx.TopK(math.Inf(-1), math.Inf(1), len(pts))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Rebalance changed contents")
	}
	idx.ResetStats()
	idx.DropCache()
	idx.TopK(0, 1e6, 20)
	if idx.Stats().Reads == 0 {
		t.Fatal("cold query charged no reads")
	}
	if idx.String() == "" {
		t.Fatal("empty String")
	}
}
