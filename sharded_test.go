package topk

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func testShardedConfig(shards int) ShardedConfig {
	return ShardedConfig{
		Config:   Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards:   shards,
		MinSplit: 256,
	}
}

// TestShardedMatchesIndex is the acceptance test: on identical point
// sets, Sharded must return byte-identical results to a single Index
// for randomized queries, including boundary-straddling ones, under
// interleaved updates.
func TestShardedMatchesIndex(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		gen := workload.NewGen(int64(40 + shards))
		pts := toResults(gen.Uniform(3000, 1e6))
		single := mustLoad(t, Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}, pts)
		sharded := mustLoadSharded(t, testShardedConfig(shards), pts)

		check := func(x1, x2 float64, k int) {
			t.Helper()
			got := sharded.TopK(x1, x2, k)
			want := single.TopK(x1, x2, k)
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d TopK(%v,%v,%d):\n got %v\nwant %v", shards, x1, x2, k, got, want)
			}
			if gc, wc := sharded.Count(x1, x2), single.Count(x1, x2); gc != wc {
				t.Fatalf("shards=%d Count(%v,%v): got %d want %d", shards, x1, x2, gc, wc)
			}
		}

		for _, q := range gen.Queries(80, 1e6, 0.001, 0.9, 250) {
			check(q.X1, q.X2, q.K)
		}
		check(math.Inf(-1), math.Inf(1), 3000)

		// Interleave updates through both and re-check.
		for _, u := range gen.Mix(800, 600, 0.4, 1e6) {
			if u.Delete != nil {
				sok := single.Delete(u.Delete.X, u.Delete.Score)
				dok := sharded.Delete(u.Delete.X, u.Delete.Score)
				if sok != dok {
					t.Fatalf("Delete divergence: single=%v sharded=%v", sok, dok)
				}
			} else {
				mustInsert(t, single, u.Insert.X, u.Insert.Score)
				mustInsert(t, sharded, u.Insert.X, u.Insert.Score)
			}
		}
		if single.Len() != sharded.Len() {
			t.Fatalf("Len divergence: %d vs %d", single.Len(), sharded.Len())
		}
		for _, q := range gen.Queries(60, 1e6, 0.001, 0.8, 200) {
			check(q.X1, q.X2, q.K)
		}
	}
}

func TestShardedApplyBatchAndConcurrentReads(t *testing.T) {
	idx := mustNewSharded(t, testShardedConfig(8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGen(int64(w + 1))
			// Disjoint position and score bands per writer.
			for round := 0; round < 4; round++ {
				ops := make([]BatchOp, 0, 50)
				for _, p := range gen.Uniform(50, 1000) {
					ops = append(ops, BatchOp{X: float64(w)*1000 + p.X, Score: float64(w) + p.Score/2})
				}
				for i, err := range idx.ApplyBatch(ops) {
					if err != nil {
						t.Errorf("batch insert %d: %v", i, err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 50)))
			for i := 0; i < 30; i++ {
				x1 := rng.Float64() * 3500
				res := idx.TopK(x1, x1+500, 10)
				for j := 1; j < len(res); j++ {
					if res[j].Score > res[j-1].Score {
						t.Error("descending order violated under concurrency")
						return
					}
				}
				idx.Count(x1, x1+500)
			}
		}(g)
	}
	wg.Wait()
	if got, want := idx.Len(), 4*4*50; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestLoadShardedDefaults: a zero ShardedConfig must honor the
// documented defaults — LoadSharded pre-partitions into 8 quantile
// shards, not a single serialized one.
func TestLoadShardedDefaults(t *testing.T) {
	gen := workload.NewGen(31)
	pts := toResults(gen.Uniform(4000, 1e6))
	idx := mustLoadSharded(t, ShardedConfig{
		Config: Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
	}, pts)
	if got := idx.NumShards(); got != 8 {
		t.Fatalf("NumShards with zero config = %d, want the default 8", got)
	}
	if idx.Len() != len(pts) {
		t.Fatalf("Len = %d", idx.Len())
	}
	if got := len(idx.Boundaries()); got != 7 {
		t.Fatalf("Boundaries len = %d, want 7", got)
	}
}

// TestMergeAfterHeavyDeletes is the public acceptance test for the
// shard lifecycle: bulk-load a full 8-shard fleet, delete 90% of the
// points through the Store interface, and the fleet must coalesce —
// fewer shards than the split era, invariants intact, answers still
// byte-identical to a sequential Index over the survivors.
func TestMergeAfterHeavyDeletes(t *testing.T) {
	gen := workload.NewGen(71)
	pts := toResults(gen.Uniform(4000, 1e6))
	sharded := mustLoadSharded(t, testShardedConfig(8), pts)
	if sharded.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", sharded.NumShards())
	}
	for _, p := range pts[:3600] {
		if !sharded.Delete(p.X, p.Score) {
			t.Fatalf("Delete(%v) not found", p)
		}
	}
	if got := sharded.NumShards(); got >= 8 {
		t.Fatalf("NumShards after 90%% deletes = %d, want < 8: %s", got, sharded)
	}
	if sharded.Merges() == 0 {
		t.Fatal("Merges() = 0 after heavy deletes")
	}
	if err := sharded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	single := mustLoad(t, testShardedConfig(8).Config, pts[3600:])
	for _, q := range gen.Queries(60, 1e6, 0.001, 0.9, 150) {
		got, want := sharded.TopK(q.X1, q.X2, q.K), single.TopK(q.X1, q.X2, q.K)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%v,%v,%d):\n got %v\nwant %v", q.X1, q.X2, q.K, got, want)
		}
	}
	if got, want := sharded.Len(), 400; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestMaintenancePassCoalescesStrandedFleet drives the public API
// into a state the inline lifecycle hooks can never repair, then
// proves one maintenance pass repairs it with zero further writes.
//
// The construction: shard 0 is drained while its only neighbor is
// heavy, so every inline merge check hits the hysteresis veto (the
// combined shard would trip the split test). Then the neighbor is
// drained — but an inline check only re-examines the shard a delete
// just touched, and the neighbor itself never becomes underloaded, so
// shard 0 stays stranded no matter how long the fleet sits idle.
// That asymmetry is exactly why the timer-driven pass exists.
func TestMaintenancePassCoalescesStrandedFleet(t *testing.T) {
	cfg := testShardedConfig(4) // MinSplit 256 → merge floor 128; Skew 2
	gen := workload.NewGen(91)
	pts := toResults(gen.Uniform(4000, 1e6))
	sharded := mustLoadSharded(t, cfg, pts)
	defer sharded.Close()
	cuts := sharded.Boundaries()
	if len(cuts) != 3 {
		t.Fatalf("Boundaries = %v", cuts)
	}
	shardOf := func(x float64) int {
		i := 0
		for i < len(cuts) && x >= cuts[i] {
			i++
		}
		return i
	}
	var live []Result

	// Overload shard 1 at the shard cap (no splits can fire) so the
	// veto pins shard 0 in place during the next phase. The first 700
	// synthetic points survive the whole test; the rest are drained in
	// the lightening phase below.
	for i := 0; i < 3000; i++ {
		x := cuts[0] + (cuts[1]-cuts[0])*float64(i+1)/3001
		mustInsert(t, sharded, x, 1000+float64(i))
		if i < 700 {
			live = append(live, Result{X: x, Score: 1000 + float64(i)})
		}
	}

	// Drain shard 0 to 50 points: every delete observes it underloaded,
	// but merging into the 4000-point neighbor is always vetoed.
	kept := 0
	for _, p := range pts {
		switch shardOf(p.X) {
		case 0:
			if kept < 50 {
				kept++
				live = append(live, p)
				continue
			}
			if !sharded.Delete(p.X, p.Score) {
				t.Fatalf("Delete(%v) not found", p)
			}
		case 1:
			// Drain the original shard-1 members too; the synthetic
			// overload points above keep the shard heavy meanwhile.
			if !sharded.Delete(p.X, p.Score) {
				t.Fatalf("Delete(%v) not found", p)
			}
		default:
			live = append(live, p)
		}
	}
	// Now lighten shard 1 (4000 → 700): it never becomes underloaded
	// itself, so no inline check ever re-examines stranded shard 0.
	for i := 700; i < 3000; i++ {
		x := cuts[0] + (cuts[1]-cuts[0])*float64(i+1)/3001
		if !sharded.Delete(x, 1000+float64(i)) {
			t.Fatalf("Delete(synthetic %d) not found", i)
		}
	}

	if got := sharded.NumShards(); got != 4 {
		t.Fatalf("fleet not stranded: NumShards = %d, want 4: %s", got, sharded)
	}
	if sharded.Merges() != 0 || sharded.Splits() != 0 {
		t.Fatalf("unexpected lifecycle activity: splits=%d merges=%d", sharded.Splits(), sharded.Merges())
	}

	// One maintenance pass — zero further writes — must coalesce the
	// stranded shard into its now-light neighbor.
	epoch := sharded.Epoch()
	sharded.Maintain()
	if got := sharded.NumShards(); got != 3 {
		t.Fatalf("NumShards after Maintain = %d, want 3: %s", got, sharded)
	}
	if sharded.Merges() != 1 {
		t.Fatalf("Merges after Maintain = %d, want 1", sharded.Merges())
	}
	if sharded.Epoch() <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, sharded.Epoch())
	}
	if err := sharded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Answers stay byte-identical to a sequential Index over the
	// surviving points.
	if got, want := sharded.Len(), len(live); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	single := mustLoad(t, cfg.Config, live)
	qs := gen.Queries(60, 1e6, 0.001, 0.9, 150)
	for _, q := range qs {
		got, want := sharded.TopK(q.X1, q.X2, q.K), single.TopK(q.X1, q.X2, q.K)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%v,%v,%d):\n got %v\nwant %v", q.X1, q.X2, q.K, got, want)
		}
	}
}

// TestMaintenanceBackgroundLoopPublic: the config knob wires through —
// a Sharded built with MaintenanceInterval runs the loop, coalesces a
// delete-heavy fleet while idle, and Close (idempotent) stops it.
func TestMaintenanceBackgroundLoopPublic(t *testing.T) {
	cfg := testShardedConfig(8)
	cfg.MaintenanceInterval = 2 * time.Millisecond
	gen := workload.NewGen(93)
	pts := toResults(gen.Uniform(4000, 1e6))
	idx := mustLoadSharded(t, cfg, pts)
	defer idx.Close()
	for _, p := range pts[:3600] {
		if !idx.Delete(p.X, p.Score) {
			t.Fatalf("Delete(%v) not found", p)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for idx.NumShards() >= 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := idx.NumShards(); got >= 8 {
		t.Fatalf("NumShards = %d after heavy deletes with maintenance on", got)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedStatsAndRebalance(t *testing.T) {
	gen := workload.NewGen(9)
	pts := toResults(gen.Clustered(2000, 3, 1e6))
	idx := mustLoadSharded(t, testShardedConfig(4), pts)
	if idx.NumShards() != 4 {
		t.Fatalf("NumShards = %d", idx.NumShards())
	}
	if s := idx.Stats(); s.Writes == 0 || s.BlocksLive == 0 {
		t.Fatalf("implausible stats after load: %+v", s)
	}
	before := idx.TopK(math.Inf(-1), math.Inf(1), len(pts))
	idx.Rebalance(2)
	if idx.NumShards() != 2 {
		t.Fatalf("NumShards after Rebalance(2) = %d", idx.NumShards())
	}
	after := idx.TopK(math.Inf(-1), math.Inf(1), len(pts))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Rebalance changed contents")
	}
	idx.ResetStats()
	idx.DropCache()
	idx.TopK(0, 1e6, 20)
	if idx.Stats().Reads == 0 {
		t.Fatal("cold query charged no reads")
	}
	if idx.String() == "" {
		t.Fatal("empty String")
	}
}

// TestWatchEpoch covers the minimal epoch change feed: the current
// epoch arrives immediately, every later topology publish is
// observable (coalesced to the latest value, never blocking the
// publisher), and cancellation closes the channel.
func TestWatchEpoch(t *testing.T) {
	idx := mustNewSharded(t, testShardedConfig(4))
	for i := 0; i < 100; i++ {
		if err := idx.Insert(float64(i), float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := idx.WatchEpoch(ctx)
	select {
	case e := <-ch:
		if e != uint64(idx.Epoch()) {
			t.Fatalf("first delivery %d, want current epoch %d", e, idx.Epoch())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no immediate delivery of the current epoch")
	}
	before := uint64(idx.Epoch())
	// Several rapid publishes: the subscriber must observe the newest
	// epoch without requiring one delivery per publish.
	idx.Rebalance(2)
	idx.Rebalance(4)
	idx.ResetStats() // also publishes
	want := uint64(idx.Epoch())
	if want <= before {
		t.Fatalf("epoch did not advance: %d -> %d", before, want)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case e := <-ch:
			if e == want {
				goto cancelled
			}
			if e < before {
				t.Fatalf("stale epoch %d delivered after %d", e, before)
			}
		case <-deadline:
			t.Fatalf("latest epoch %d never delivered", want)
		}
	}
cancelled:
	cancel()
	deadline = time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed, as promised
			}
		case <-deadline:
			t.Fatal("channel not closed after cancel")
		}
	}
}
