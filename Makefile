# Single entry points for the checks CI runs, so the analysis gate is
# reproducible locally with the same commands and versions.
#
#   make check         build + unit tests
#   make analysis      offline static gate: gofmt, go vet, topkvet,
#                      escapecheck
#   make ci-analysis   full gate: analysis + staticcheck + govulncheck
#   make gate-negative plant violations in a scratch copy, assert the
#                      allocation/atomics gates actually fail
#   make benchgate     full e15/e17/e18/e19 run, diffed against the
#                      committed BENCH_*.json baselines
#   make fuzz-smoke    10s per fuzz target, crashers fail the run
#   make fleet-smoke   boot a real 3-member fleet + gateway, assert
#                      stitched traces and federated metrics end to end
#
# staticcheck and govulncheck are external, version-pinned tools;
# `make tools` installs them (needs network once). The offline targets
# never require them.

STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4
FUZZTIME := 10s

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all check build test race fmt-check vet topkvet escapecheck \
	analysis gate-negative benchgate staticcheck govulncheck \
	ci-analysis fuzz-smoke fleet-smoke tools

all: check analysis

check: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# gofmt -l lists every unformatted file, test files and testdata
# modules included; any output fails the gate.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	go vet ./...

# The project invariant suite (lock ordering, snapshot pinning,
# sentinel comparison, label cardinality, context threading,
# allocation-free hot paths, atomics copy discipline).
topkvet:
	go run ./cmd/topkvet ./...

# Compiler-escape leg of the //topk:nomalloc gate: rebuilds with
# -gcflags=-m and fails on any heap escape inside an annotated
# function. Complements the allocfree analyzer, which sees allocation
# shapes but not escape decisions.
escapecheck:
	go run ./cmd/topkvet escapecheck ./...

analysis: fmt-check vet topkvet escapecheck

# Negative test of the gates: copy the tree to a scratch dir, plant
# one violation per gate (static alloc, heap escape, atomic-struct
# copy), and assert each gate fails with findings.
gate-negative:
	sh scripts/gate_negative.sh

# Bench regression gate: run the four serving-layer experiments in
# full mode into a scratch dir and diff against the committed
# baselines. Wall-clock qps on a small shared-core container swings
# with host load by tens of percent across EVERY experiment (measured
# over a day: uniform 0.7-1.0x ratios with identical allocs), so the
# qps budgets are wide — 50% for the in-process benches, 60% for the
# HTTP-fleet ones — and catch only collapse-class regressions (a lost
# amortization, a serialized fan-out). The tight signal is allocs/op
# (10%+0.5 budget): hardware-independent, stable to a fraction of a
# percent run to run, and a single new allocation on a hot path
# fails it even when throughput looks fine.
BENCH_FRESH_DIR := $(or $(RUNNER_TEMP),/tmp)/topk-bench-fresh
benchgate:
	mkdir -p $(BENCH_FRESH_DIR)
	go run ./cmd/topkbench -exp e15 -json -out $(BENCH_FRESH_DIR)
	go run ./cmd/topkbench -exp e17 -json -out $(BENCH_FRESH_DIR)
	go run ./cmd/topkbench -exp e18 -json -out $(BENCH_FRESH_DIR)
	go run ./cmd/topkbench -exp e19 -json -out $(BENCH_FRESH_DIR)
	go run ./cmd/topkvet benchgate -baseline BENCH_e15.json -fresh $(BENCH_FRESH_DIR)/BENCH_e15.json -max-qps-drop 0.5
	go run ./cmd/topkvet benchgate -baseline BENCH_e17.json -fresh $(BENCH_FRESH_DIR)/BENCH_e17.json -max-qps-drop 0.5
	go run ./cmd/topkvet benchgate -baseline BENCH_e18.json -fresh $(BENCH_FRESH_DIR)/BENCH_e18.json -max-qps-drop 0.6
	go run ./cmd/topkvet benchgate -baseline BENCH_e19.json -fresh $(BENCH_FRESH_DIR)/BENCH_e19.json -max-qps-drop 0.6

staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not found; run 'make tools' (needs network)" >&2; exit 1; }
	staticcheck ./...

govulncheck:
	@command -v govulncheck >/dev/null 2>&1 || { \
		echo "govulncheck not found; run 'make tools' (needs network)" >&2; exit 1; }
	govulncheck ./...

ci-analysis: analysis staticcheck govulncheck

# One short fuzz pass per target; go test exits non-zero on a crasher
# and writes it to testdata/fuzz for replay.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzParseRange -fuzztime=$(FUZZTIME) ./cmd/topkd
	go test -run='^$$' -fuzz=FuzzTopKQuery -fuzztime=$(FUZZTIME) ./internal/serve
	go test -run='^$$' -fuzz=FuzzBatchJSON -fuzztime=$(FUZZTIME) ./internal/serve

# Process-level observability smoke: real listeners, real scrapes —
# what the in-process httptest suites can't exercise.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Pinned installs, skipped when the binary is already on PATH (the CI
# cache restores $(GOBIN) keyed on this Makefile).
tools:
	@command -v staticcheck >/dev/null 2>&1 || \
		go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	@command -v govulncheck >/dev/null 2>&1 || \
		go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
