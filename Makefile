# Single entry points for the checks CI runs, so the analysis gate is
# reproducible locally with the same commands and versions.
#
#   make check        build + unit tests
#   make analysis     offline static gate: gofmt, go vet, topkvet
#   make ci-analysis  full gate: analysis + staticcheck + govulncheck
#   make fuzz-smoke   10s per fuzz target, crashers fail the run
#
# staticcheck and govulncheck are external, version-pinned tools;
# `make tools` installs them (needs network once). The offline targets
# never require them.

STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4
FUZZTIME := 10s

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all check build test race fmt-check vet topkvet analysis \
	staticcheck govulncheck ci-analysis fuzz-smoke tools

all: check analysis

check: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# gofmt -l lists every unformatted file, test files and testdata
# modules included; any output fails the gate.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	go vet ./...

# The project invariant suite (lock ordering, snapshot pinning,
# sentinel comparison, label cardinality, context threading).
topkvet:
	go run ./cmd/topkvet ./...

analysis: fmt-check vet topkvet

staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not found; run 'make tools' (needs network)" >&2; exit 1; }
	staticcheck ./...

govulncheck:
	@command -v govulncheck >/dev/null 2>&1 || { \
		echo "govulncheck not found; run 'make tools' (needs network)" >&2; exit 1; }
	govulncheck ./...

ci-analysis: analysis staticcheck govulncheck

# One short fuzz pass per target; go test exits non-zero on a crasher
# and writes it to testdata/fuzz for replay.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzParseRange -fuzztime=$(FUZZTIME) ./cmd/topkd
	go test -run='^$$' -fuzz=FuzzTopKQuery -fuzztime=$(FUZZTIME) ./internal/serve
	go test -run='^$$' -fuzz=FuzzBatchJSON -fuzztime=$(FUZZTIME) ./internal/serve

# Pinned installs, skipped when the binary is already on PATH (the CI
# cache restores $(GOBIN) keyed on this Makefile).
tools:
	@command -v staticcheck >/dev/null 2>&1 || \
		go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	@command -v govulncheck >/dev/null 2>&1 || \
		go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
