#!/usr/bin/env sh
# End-to-end observability smoke over a real 3-member fleet: boot three
# topkd members plus a gateway as separate processes, write through the
# gateway, run a traced query, then assert (a) the stitched trace on
# the gateway shows every member's handler subtree spliced under its
# RPC span, and (b) /v1/metrics/fleet federates all three member pages.
# This is the process-level check the in-process httptest suites can't
# give: real listeners, real headers, real scrapes.
set -eu

root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
scratch=$(mktemp -d)

base_port=${FLEET_SMOKE_PORT:-18080}
gw_port=$base_port
m1_port=$((base_port + 1))
m2_port=$((base_port + 2))
m3_port=$((base_port + 3))

pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	for pid in $pids; do
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$scratch"
}
trap cleanup EXIT INT TERM

fail() {
	echo "fleet-smoke: FAIL: $1" >&2
	shift
	for f in "$@"; do
		echo "--- $f" >&2
		cat "$f" >&2 || true
	done
	exit 1
}

(cd "$root" && go build -o "$scratch/topkd" ./cmd/topkd)

# Three members splitting the score axis, plus the gateway in front.
"$scratch/topkd" -addr "127.0.0.1:$m1_port" -range :34 -n 0 >"$scratch/m1.log" 2>&1 &
pids="$pids $!"
"$scratch/topkd" -addr "127.0.0.1:$m2_port" -range 34:67 -n 0 >"$scratch/m2.log" 2>&1 &
pids="$pids $!"
"$scratch/topkd" -addr "127.0.0.1:$m3_port" -range 67: -n 0 >"$scratch/m3.log" 2>&1 &
pids="$pids $!"

wait_up() {
	i=0
	until curl -fsS "http://127.0.0.1:$1/v1/epoch" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -le 100 ] || fail "port $1 never came up" "$scratch"/*.log
		sleep 0.1
	done
}
# The gateway validates its members at boot, so they must answer first.
for port in $m1_port $m2_port $m3_port; do
	wait_up "$port"
done
"$scratch/topkd" -addr "127.0.0.1:$gw_port" -trace-sample 1 \
	-gateway "127.0.0.1:$m1_port,127.0.0.1:$m2_port,127.0.0.1:$m3_port" \
	>"$scratch/gw.log" 2>&1 &
pids="$pids $!"
wait_up "$gw_port"

gw="http://127.0.0.1:$gw_port"

# Writes through the gateway land on the right bands.
for pair in '1 10' '2 50' '3 90'; do
	x=${pair% *}
	score=${pair#* }
	curl -fsS -X POST "$gw/v1/insert" \
		-d "{\"x\": $x, \"score\": $score}" >/dev/null ||
		fail "insert x=$x score=$score rejected" "$scratch"/*.log
done

# One traced query fanning out to every band.
trace_id="fleet-smoke-trace"
curl -fsS -H "X-Topkd-Trace: $trace_id" \
	"$gw/v1/topk?x1=0&x2=100&k=3" >"$scratch/topk.json"
jq -e '.results | length == 3' "$scratch/topk.json" >/dev/null ||
	fail "topk returned wrong results" "$scratch/topk.json"

# The stitched trace: one RPC span per member, each carrying the
# member's own handler subtree (name + at least one Store-op child).
# The member middleware finishes its local trace a beat after the RPC
# response, so allow a few retries before judging.
stitched=""
for _ in 1 2 3 4 5 6 7 8 9 10; do
	curl -fsS "$gw/v1/trace/$trace_id" >"$scratch/trace.json" || true
	if jq -e '
		[.root.children[] | select(.addr != null and .addr != "")] as $rpcs |
		($rpcs | length) == 3 and
		([$rpcs[] | .children | length] | min) >= 1 and
		([$rpcs[] | .children[0].name] | all(. == "GET /v1/topk")) and
		([$rpcs[] | .children[0].children[]?.name] | map(select(. == "store.topk")) | length) == 3
	' "$scratch/trace.json" >/dev/null 2>&1; then
		stitched=yes
		break
	fi
	sleep 0.2
done
[ -n "$stitched" ] || fail "stitched trace incomplete" "$scratch/trace.json" "$scratch/gw.log"
echo "fleet-smoke: stitched trace OK (3 member subtrees under their RPC spans)"

# Federated metrics: the gateway page merges all three member pages.
curl -fsS "$gw/v1/metrics/fleet" >"$scratch/fleet.prom"
grep -q '^topkd_fleet_members 3$' "$scratch/fleet.prom" ||
	fail "fleet page missing topkd_fleet_members 3" "$scratch/fleet.prom"
grep -q '^topkd_fleet_members_scraped 3$' "$scratch/fleet.prom" ||
	fail "fleet page missing topkd_fleet_members_scraped 3" "$scratch/fleet.prom"
nodes=$(grep -c '^topkd_points_live{node=' "$scratch/fleet.prom" || true)
[ "$nodes" -eq 3 ] || fail "fleet page has $nodes node-labeled live gauges, want 3" "$scratch/fleet.prom"
grep -q '^topkd_http_request_duration_seconds_bucket' "$scratch/fleet.prom" ||
	fail "fleet page lost the federated request histogram" "$scratch/fleet.prom"
echo "fleet-smoke: federated metrics OK (3 members merged)"

echo "fleet-smoke: PASS"
