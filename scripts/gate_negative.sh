#!/usr/bin/env sh
# Negative test of the //topk:nomalloc and atomics gates: copy the
# tree into a scratch dir, plant one violation per gate, and assert
# the gate FAILS with findings (exit 1 exactly — an exit 2 would mean
# the plant broke the build, which proves nothing). A gate that
# cannot be shown to fail is not a gate.
set -eu

root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT INT TERM

# A real binary, not `go run`: go run collapses every nonzero child
# exit to 1, which would make an operational failure (exit 2 — e.g. a
# plant that broke the build) indistinguishable from findings (exit 1).
topkvet="$scratch/topkvet"
(cd "$root" && go build -o "$topkvet" ./cmd/topkvet)

copy_tree() {
	rm -rf "$scratch/repo"
	mkdir -p "$scratch/repo"
	(cd "$root" && tar --exclude-vcs --exclude=.git -cf - .) | tar -C "$scratch/repo" -xf -
}

# expect_findings <description> <command...>: the command must exit 1
# (findings), not 0 (gate missed the plant) and not 2+ (plant or gate
# broke).
expect_findings() {
	desc=$1
	shift
	set +e
	(cd "$scratch/repo" && "$@" >/dev/null 2>&1)
	rc=$?
	set -e
	if [ "$rc" -ne 1 ]; then
		echo "gate-negative: $desc: expected exit 1 (findings), got $rc" >&2
		exit 1
	fi
	echo "gate-negative: $desc: correctly failed the gate"
}

merge_go="$scratch/repo/internal/merge/merge.go"
marker='	h := m.heap\[:0\]'

# 1. Static allocation site inside an annotated function: the
#    allocfree analyzer must flag the planted make.
copy_tree
grep -q "^$marker\$" "$merge_go" || {
	echo "gate-negative: mergeLoop marker line not found; update this script" >&2
	exit 1
}
sed -i "s/^$marker\$/\t_ = make([]int, 1)\n\th := m.heap[:0]/" "$merge_go"
expect_findings "planted make in //topk:nomalloc mergeLoop (allocfree)" \
	"$topkvet" ./internal/merge/

# 2. Compiler-visible escape, invisible to shape analysis: only
#    escapecheck (-gcflags=-m) can see the moved-to-heap local.
copy_tree
sed -i 's/^var mergerPool/var gateLeak *int\n\nvar mergerPool/' "$merge_go"
sed -i "s/^$marker\$/\tvar leak int\n\tgateLeak = \\&leak\n\th := m.heap[:0]/" "$merge_go"
expect_findings "planted heap escape in //topk:nomalloc mergeLoop (escapecheck)" \
	"$topkvet" escapecheck ./internal/merge/

# 3. By-value copy of an atomic-bearing struct: atomicfield must flag
#    the planted accessor returning a histogram stripe by value.
copy_tree
cat >>"$scratch/repo/internal/obs/hist.go" <<'EOF'

func gateCopyStripe(h *Histogram) stripe { return h.stripes[0] }
EOF
expect_findings "planted stripe copy in obs (atomicfield)" \
	"$topkvet" ./internal/obs/

echo "gate-negative: all planted violations were caught"
