package topk

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/point"
	"repro/internal/verify"
	"repro/internal/workload"
)

func smallCfg() Config {
	return Config{BlockWords: 32, ForcePolylog: true, PolylogF: 4, PolylogLeafCap: 64}
}

func toPoints(rs []Result) []point.P {
	out := make([]point.P, len(rs))
	for i, r := range rs {
		out[i] = point.P{X: r.X, Score: r.Score}
	}
	return out
}

// Test-side constructors: the error returns are part of the API under
// test, so every helper asserts them.
func mustNew(t testing.TB, cfg Config) *Index {
	t.Helper()
	idx, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustLoad(t testing.TB, cfg Config, pts []Result) *Index {
	t.Helper()
	idx, err := Load(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustNewSharded(t testing.TB, cfg ShardedConfig) *Sharded {
	t.Helper()
	idx, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustLoadSharded(t testing.TB, cfg ShardedConfig, pts []Result) *Sharded {
	t.Helper()
	idx, err := LoadSharded(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustInsert(t testing.TB, st Store, pos, score float64) {
	t.Helper()
	if err := st.Insert(pos, score); err != nil {
		t.Fatalf("Insert(%v, %v): %v", pos, score, err)
	}
}

func insertAll(t testing.TB, st Store, pts []point.P) {
	t.Helper()
	for _, p := range pts {
		mustInsert(t, st, p.X, p.Score)
	}
}

func TestQuickstartFlow(t *testing.T) {
	idx := mustNew(t, Config{})
	mustInsert(t, idx, 142.50, 9.1)
	mustInsert(t, idx, 99.99, 8.4)
	mustInsert(t, idx, 180.00, 7.7)
	mustInsert(t, idx, 250.00, 9.9)
	best := idx.TopK(100, 200, 10)
	if len(best) != 2 {
		t.Fatalf("got %d results", len(best))
	}
	if best[0].Score != 9.1 || best[1].Score != 7.7 {
		t.Fatalf("wrong order: %v", best)
	}
	if idx.Count(100, 200) != 2 {
		t.Fatal("count")
	}
	if !idx.Delete(142.50, 9.1) {
		t.Fatal("delete")
	}
	if got := idx.TopK(100, 200, 1); got[0].Score != 7.7 {
		t.Fatalf("after delete: %v", got)
	}
}

func TestLoadMatchesOracle(t *testing.T) {
	gen := workload.NewGen(1)
	pts := gen.Uniform(2500, 1e5)
	idx := mustLoad(t, smallCfg(), toResults(pts))
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(120, 1e5, 0.05, 0.6, 40) {
		got := toPoints(idx.TopK(q.X1, q.X2, q.K))
		if err := verify.DiffTopK(got, oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
	}
}

func TestStatsMeterMoves(t *testing.T) {
	idx := mustLoad(t, smallCfg(), toResults(workload.NewGen(2).Uniform(2000, 1e5)))
	idx.ResetStats()
	idx.DropCache()
	before := idx.Stats()
	idx.TopK(1e4, 6e4, 10)
	after := idx.Stats()
	if after.Reads <= before.Reads {
		t.Fatal("query charged no reads on a cold cache")
	}
	if after.BlocksLive <= 0 {
		t.Fatal("no live blocks")
	}
}

// TestConfigValidation: contradictory configs are ErrConfig errors
// from every constructor, not panics.
func TestConfigValidation(t *testing.T) {
	bad := Config{ForcePolylog: true, ForceBaseline: true}
	if _, err := New(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("New: %v, want ErrConfig", err)
	}
	if _, err := Load(bad, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("Load: %v, want ErrConfig", err)
	}
	if _, err := NewSharded(ShardedConfig{Config: bad}); !errors.Is(err, ErrConfig) {
		t.Fatalf("NewSharded: %v, want ErrConfig", err)
	}
	if _, err := LoadSharded(ShardedConfig{Config: bad}, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("LoadSharded: %v, want ErrConfig", err)
	}
}

// TestLoadValidatesPoints: bulk loads reject contract-violating
// inputs with the matching sentinel.
func TestLoadValidatesPoints(t *testing.T) {
	cases := []struct {
		name string
		pts  []Result
		want error
	}{
		{"nan position", []Result{{X: math.NaN(), Score: 1}}, ErrInvalidPoint},
		{"inf score", []Result{{X: 1, Score: math.Inf(1)}}, ErrInvalidPoint},
		{"duplicate position", []Result{{X: 1, Score: 1}, {X: 1, Score: 2}}, ErrDuplicatePosition},
		{"duplicate score", []Result{{X: 1, Score: 1}, {X: 2, Score: 1}}, ErrDuplicateScore},
	}
	for _, c := range cases {
		if _, err := Load(smallCfg(), c.pts); !errors.Is(err, c.want) {
			t.Errorf("Load %s: %v, want %v", c.name, err, c.want)
		}
		if _, err := LoadSharded(ShardedConfig{Config: smallCfg()}, c.pts); !errors.Is(err, c.want) {
			t.Errorf("LoadSharded %s: %v, want %v", c.name, err, c.want)
		}
	}
}

func TestRegimeAndThresholdExposed(t *testing.T) {
	idx := mustLoad(t, smallCfg(), toResults(workload.NewGen(3).Uniform(500, 1e4)))
	if idx.KThreshold() <= 0 {
		t.Fatal("threshold")
	}
	if idx.Regime() != "polylog(§3.3)" {
		t.Fatalf("regime %q", idx.Regime())
	}
	if idx.BlockSize() != 32 {
		t.Fatalf("B=%d", idx.BlockSize())
	}
}

func TestReinsertionCycle(t *testing.T) {
	// Delete/re-insert cycles of the same keys must work: the §2 tree
	// keeps stale x-coordinates by design, and every layer has to cope.
	idx := mustNew(t, smallCfg())
	gen := workload.NewGen(77)
	pts := gen.Uniform(300, 1e4)
	insertAll(t, idx, pts)
	for round := 0; round < 4; round++ {
		for _, p := range pts {
			if !idx.Delete(p.X, p.Score) {
				t.Fatalf("round %d: delete failed", round)
			}
		}
		insertAll(t, idx, pts)
	}
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(40, 1e4, 0.1, 0.6, 12) {
		got := toPoints(idx.TopK(q.X1, q.X2, q.K))
		if err := verify.DiffTopK(got, oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("after cycles: %v", err)
		}
	}
}

func TestQuickPublicAPI(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		rng := rand.New(rand.NewSource(seed))
		idx := mustNew(t, Config{BlockWords: 8, ForcePolylog: true, PolylogF: 3, PolylogLeafCap: 16})
		oracle := verify.NewOracle(nil)
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%4 != 0 || oracle.Len() == 0 {
				p := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[p.X] {
					continue
				}
				usedX[p.X] = true
				if err := idx.Insert(p.X, p.Score); err != nil {
					return false
				}
				oracle.Insert(p)
			} else {
				live := oracle.Live()
				p := live[int(op/4)%len(live)]
				delete(usedX, p.X)
				if !idx.Delete(p.X, p.Score) {
					return false
				}
				oracle.Delete(p)
			}
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 30000)
		k := int(abs%9) + 1
		got := toPoints(idx.TopK(x1, x1+25000, k))
		return verify.DiffTopK(got, oracle.TopK(x1, x1+25000, k)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
