package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/point"
	"repro/internal/verify"
	"repro/internal/workload"
)

func smallCfg() Config {
	return Config{BlockWords: 32, ForcePolylog: true, PolylogF: 4, PolylogLeafCap: 64}
}

func toResults(pts []point.P) []Result {
	out := make([]Result, len(pts))
	for i, p := range pts {
		out[i] = Result{X: p.X, Score: p.Score}
	}
	return out
}

func toPoints(rs []Result) []point.P {
	out := make([]point.P, len(rs))
	for i, r := range rs {
		out[i] = point.P{X: r.X, Score: r.Score}
	}
	return out
}

func TestQuickstartFlow(t *testing.T) {
	idx := New(Config{})
	idx.Insert(142.50, 9.1)
	idx.Insert(99.99, 8.4)
	idx.Insert(180.00, 7.7)
	idx.Insert(250.00, 9.9)
	best := idx.TopK(100, 200, 10)
	if len(best) != 2 {
		t.Fatalf("got %d results", len(best))
	}
	if best[0].Score != 9.1 || best[1].Score != 7.7 {
		t.Fatalf("wrong order: %v", best)
	}
	if idx.Count(100, 200) != 2 {
		t.Fatal("count")
	}
	if !idx.Delete(142.50, 9.1) {
		t.Fatal("delete")
	}
	if got := idx.TopK(100, 200, 1); got[0].Score != 7.7 {
		t.Fatalf("after delete: %v", got)
	}
}

func TestLoadMatchesOracle(t *testing.T) {
	gen := workload.NewGen(1)
	pts := gen.Uniform(2500, 1e5)
	idx := Load(smallCfg(), toResults(pts))
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(120, 1e5, 0.05, 0.6, 40) {
		got := toPoints(idx.TopK(q.X1, q.X2, q.K))
		if err := verify.DiffTopK(got, oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
	}
}

func TestStatsMeterMoves(t *testing.T) {
	idx := Load(smallCfg(), toResults(workload.NewGen(2).Uniform(2000, 1e5)))
	idx.ResetStats()
	idx.DropCache()
	before := idx.Stats()
	idx.TopK(1e4, 6e4, 10)
	after := idx.Stats()
	if after.Reads <= before.Reads {
		t.Fatal("query charged no reads on a cold cache")
	}
	if after.BlocksLive <= 0 {
		t.Fatal("no live blocks")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting regime flags accepted")
		}
	}()
	New(Config{ForcePolylog: true, ForceBaseline: true})
}

func TestRegimeAndThresholdExposed(t *testing.T) {
	idx := Load(smallCfg(), toResults(workload.NewGen(3).Uniform(500, 1e4)))
	if idx.KThreshold() <= 0 {
		t.Fatal("threshold")
	}
	if idx.Regime() != "polylog(§3.3)" {
		t.Fatalf("regime %q", idx.Regime())
	}
	if idx.BlockSize() != 32 {
		t.Fatalf("B=%d", idx.BlockSize())
	}
}

func TestReinsertionCycle(t *testing.T) {
	// Delete/re-insert cycles of the same keys must work: the §2 tree
	// keeps stale x-coordinates by design, and every layer has to cope.
	idx := New(smallCfg())
	gen := workload.NewGen(77)
	pts := gen.Uniform(300, 1e4)
	for _, p := range pts {
		idx.Insert(p.X, p.Score)
	}
	for round := 0; round < 4; round++ {
		for _, p := range pts {
			if !idx.Delete(p.X, p.Score) {
				t.Fatalf("round %d: delete failed", round)
			}
		}
		for _, p := range pts {
			idx.Insert(p.X, p.Score)
		}
	}
	oracle := verify.NewOracle(pts)
	for _, q := range gen.Queries(40, 1e4, 0.1, 0.6, 12) {
		got := toPoints(idx.TopK(q.X1, q.X2, q.K))
		if err := verify.DiffTopK(got, oracle.TopK(q.X1, q.X2, q.K)); err != nil {
			t.Fatalf("after cycles: %v", err)
		}
	}
}

func TestQuickPublicAPI(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		rng := rand.New(rand.NewSource(seed))
		idx := New(Config{BlockWords: 8, ForcePolylog: true, PolylogF: 3, PolylogLeafCap: 16})
		oracle := verify.NewOracle(nil)
		usedX := map[float64]bool{}
		for _, op := range ops {
			if op%4 != 0 || oracle.Len() == 0 {
				p := point.P{X: float64(op) + rng.Float64(), Score: rng.Float64() * 1e6}
				if usedX[p.X] {
					continue
				}
				usedX[p.X] = true
				idx.Insert(p.X, p.Score)
				oracle.Insert(p)
			} else {
				live := oracle.Live()
				p := live[int(op/4)%len(live)]
				delete(usedX, p.X)
				if !idx.Delete(p.X, p.Score) {
					return false
				}
				oracle.Delete(p)
			}
		}
		abs := seed
		if abs < 0 {
			abs = -abs
		}
		x1 := float64(abs % 30000)
		k := int(abs%9) + 1
		got := toPoints(idx.TopK(x1, x1+25000, k))
		return verify.DiffTopK(got, oracle.TopK(x1, x1+25000, k)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
