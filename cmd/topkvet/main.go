// Command topkvet runs the project's invariant suite — the custom
// analyzers under internal/analysis — over a set of package patterns,
// defaulting to ./... . It is the static gate CI runs next to
// staticcheck and govulncheck: exit 0 means every checked invariant
// holds, exit 1 lists findings in file:line:col form, exit 2 is an
// operational failure (unparseable tree, unknown -skip name).
//
// Usage:
//
//	go run ./cmd/topkvet ./...
//	go run ./cmd/topkvet -list
//	go run ./cmd/topkvet -skip ctxflow ./internal/serve/...
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/boundedlabel"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/sentinelerr"
	"repro/internal/analysis/snapshotpin"
)

func main() {
	analysis.Main(
		lockorder.Analyzer,
		snapshotpin.Analyzer,
		sentinelerr.Analyzer,
		boundedlabel.Analyzer,
		ctxflow.Analyzer,
	)
}
