// Command topkvet runs the project's invariant suite — the custom
// analyzers under internal/analysis — over a set of package patterns,
// defaulting to ./... . It is the static gate CI runs next to
// staticcheck and govulncheck: exit 0 means every checked invariant
// holds, exit 1 lists findings in file:line:col form, exit 2 is an
// operational failure (unparseable tree, unknown -skip name).
//
// Two subcommands go beyond single-package static analysis:
//
//	topkvet escapecheck   asks the compiler (-gcflags=-m) whether any
//	                      //topk:nomalloc function allocates
//	topkvet benchgate     diffs a fresh topkbench -json report against
//	                      the committed BENCH_*.json baseline
//
// Usage:
//
//	go run ./cmd/topkvet ./...
//	go run ./cmd/topkvet -list
//	go run ./cmd/topkvet -json ./...
//	go run ./cmd/topkvet -skip ctxflow ./internal/serve/...
//	go run ./cmd/topkvet escapecheck ./...
//	go run ./cmd/topkvet benchgate -baseline BENCH_e15.json -fresh fresh/BENCH_e15.json
package main

import (
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/benchgate"
	"repro/internal/analysis/boundedlabel"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/escape"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/sentinelerr"
	"repro/internal/analysis/snapshotpin"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "escapecheck":
			os.Exit(escape.Main(os.Args[2:]))
		case "benchgate":
			os.Exit(benchgate.Main(os.Args[2:]))
		}
	}
	analysis.Main(
		lockorder.Analyzer,
		snapshotpin.Analyzer,
		sentinelerr.Analyzer,
		boundedlabel.Analyzer,
		ctxflow.Analyzer,
		allocfree.Analyzer,
		atomicfield.Analyzer,
	)
}
